// Topk: the §6.2 scenario — a user wants several alternative regions to
// choose from, not just the single best one. We run the top-k LCMSR query
// on the USANW-style dataset and show that the k regions are disjoint
// alternatives ranked by total relevance.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	db, err := repro.USANWLike(5, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("USANW-style dataset: %d nodes, %d edges, %d objects\n\n",
		db.NumNodes(), db.NumEdges(), db.NumObjects())

	rng := rand.New(rand.NewSource(17))
	queries, err := db.GenQueries(rng, 1, 3, 150e6 /* 150 km² */, 15000 /* 15 km */)
	if err != nil {
		log.Fatal(err)
	}
	q := queries[0]
	fmt.Printf("query: keywords=%v, ∆=%.0f km\n\n", q.Keywords, q.Delta/1000)

	const k = 3
	for _, method := range []repro.Method{repro.MethodTGEN, repro.MethodGreedy} {
		results, err := db.RunTopK(context.Background(), q, k, repro.SearchOptions{Method: method})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v top-%d:\n", method, k)
		used := map[int]bool{}
		for i, r := range results {
			overlap := false
			for _, n := range r.Nodes {
				if used[n] {
					overlap = true
				}
				used[n] = true
			}
			fmt.Printf("  #%d  weight=%.3f  length=%.2f km  PoIs=%d  overlaps_previous=%v\n",
				i+1, r.Score, r.Length/1000, len(r.Objects), overlap)
		}
		fmt.Println()
	}
}
