// Quickstart: build a tiny road network by hand, add a few points of
// interest, and run one LCMSR query with each algorithm.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 4x4 street grid, 100 m blocks.
	var nodes []repro.NodeSpec
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			nodes = append(nodes, repro.NodeSpec{X: float64(x) * 100, Y: float64(y) * 100})
		}
	}
	id := func(x, y int) int { return y*4 + x }
	var edges []repro.EdgeSpec
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if x+1 < 4 {
				edges = append(edges, repro.EdgeSpec{U: id(x, y), V: id(x+1, y)})
			}
			if y+1 < 4 {
				edges = append(edges, repro.EdgeSpec{U: id(x, y), V: id(x, y+1)})
			}
		}
	}
	// Cafes cluster in the south-west corner; a lone bookstore north-east.
	objects := []repro.ObjectSpec{
		{X: 10, Y: 5, Text: "Blue Bottle cafe espresso"},
		{X: 105, Y: 10, Text: "Corner cafe bakery"},
		{X: 8, Y: 110, Text: "Third Rail cafe"},
		{X: 210, Y: 95, Text: "Midtown diner breakfast"},
		{X: 305, Y: 310, Text: "Strand bookstore books"},
	}
	db, err := repro.New(nodes, edges, objects)
	if err != nil {
		log.Fatal(err)
	}

	query := repro.Query{
		Keywords: []string{"cafe"},
		Delta:    250, // explore at most 250 m of streets
		Region:   db.Bounds(),
	}
	for _, method := range []repro.Method{repro.MethodTGEN, repro.MethodAPP, repro.MethodGreedy} {
		res, err := db.Run(context.Background(), query, repro.SearchOptions{Method: method})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s weight=%.4f length=%.0fm objects=%d\n",
			method, res.Score, res.Length, len(res.Objects))
		for _, o := range res.Objects {
			fmt.Printf("       poi %d at (%.0f,%.0f) relevance %.4f\n", o.ID, o.X, o.Y, o.Score)
		}
	}
}
