// Restaurants: the paper's motivating scenario (§1, Example 1) — "a user
// wishes to find a region in Manhattan to explore in order to find a
// restaurant for dinner". We build the Manhattan-style synthetic dataset,
// issue a dinner-exploration query over a 100 km² region of interest with
// a 10 km walking budget, and print the region each algorithm proposes,
// with a crude ASCII rendering of the winning region's shape.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	db, err := repro.NYLike(2024, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Manhattan-style dataset: %d junctions, %d street segments, %d PoIs\n\n",
		db.NumNodes(), db.NumEdges(), db.NumObjects())

	// Draw a realistic query: 3 keywords frequent in the chosen district.
	rng := rand.New(rand.NewSource(7))
	queries, err := db.GenQueries(rng, 1, 3, 100e6 /* 100 km² */, 10000 /* 10 km */)
	if err != nil {
		log.Fatal(err)
	}
	q := queries[0]
	fmt.Printf("query: keywords=%v, budget=%.0f km, district=%.0f km²\n\n",
		q.Keywords, q.Delta/1000,
		(q.Region.MaxX-q.Region.MinX)*(q.Region.MaxY-q.Region.MinY)/1e6)

	var best *repro.Result
	for _, method := range []repro.Method{repro.MethodTGEN, repro.MethodAPP, repro.MethodGreedy} {
		res, err := db.Run(context.Background(), q, repro.SearchOptions{Method: method})
		if err != nil {
			log.Fatal(err)
		}
		if res == nil {
			fmt.Printf("%-6s: no matching region\n", method)
			continue
		}
		fmt.Printf("%-6s: weight=%.3f, street length=%.2f km, %d PoIs in region\n",
			method, res.Score, res.Length/1000, len(res.Objects))
		if method == repro.MethodTGEN {
			best = res
		}
	}
	if best == nil {
		return
	}

	// ASCII sketch of the TGEN region: its PoIs over a 24x12 cell canvas
	// covering the region's bounding box — the shapes are irregular,
	// exactly the paper's point versus fixed rectangles.
	minX, minY := best.Objects[0].X, best.Objects[0].Y
	maxX, maxY := minX, minY
	for _, o := range best.Objects {
		if o.X < minX {
			minX = o.X
		}
		if o.X > maxX {
			maxX = o.X
		}
		if o.Y < minY {
			minY = o.Y
		}
		if o.Y > maxY {
			maxY = o.Y
		}
	}
	const w, h = 24, 12
	canvas := [h][w]byte{}
	for y := range canvas {
		for x := range canvas[y] {
			canvas[y][x] = '.'
		}
	}
	span := func(v, lo, hi float64, cells int) int {
		if hi <= lo {
			return 0
		}
		i := int((v - lo) / (hi - lo) * float64(cells-1))
		if i < 0 {
			i = 0
		}
		if i >= cells {
			i = cells - 1
		}
		return i
	}
	for _, o := range best.Objects {
		canvas[h-1-span(o.Y, minY, maxY, h)][span(o.X, minX, maxX, w)] = '#'
	}
	fmt.Println("\nTGEN region PoIs (each # is a matching restaurant/cafe):")
	for _, row := range canvas {
		fmt.Println(string(row[:]))
	}
}
