// Comparison: the §7.5 head-to-head between the LCMSR query (arbitrary-
// shape, always road-connected regions) and the classic MaxRS query
// (best fixed 500m x 500m rectangle). The budget for LCMSR is derived
// from the MaxRS result exactly as the paper does, so the two answers are
// comparable; LCMSR should usually capture at least as much connected
// relevance.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	env := experiments.NewEnv(experiments.Config{Scale: 0.5, Queries: 10, Seed: 99})
	table, err := env.MaxRSComparison()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.Format())
	fmt.Println("maxrs_weight     — weight inside the best 500m x 500m rectangle")
	fmt.Println("maxrs_connected  — its largest road-connected part (what a user can walk)")
	fmt.Println("lcmsr_weight     — the LCMSR region's weight under the derived budget")
}
