package repro

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/queryengine"
)

func serveWorkload(t *testing.T) (*Database, []Query) {
	t.Helper()
	db, err := NYLike(4, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	qs, err := db.GenQueries(rng, 10, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	return db, qs
}

// TestServeMatchesRunBatch is the acceptance guarantee for the streaming
// service: for every method, submitting a workload through a server —
// concurrently, from several clients — returns exactly what RunBatch
// returns for the same queries.
func TestServeMatchesRunBatch(t *testing.T) {
	db, qs := serveWorkload(t)
	for _, method := range []Method{MethodTGEN, MethodAPP, MethodGreedy} {
		opts := SearchOptions{Method: method}
		want, _, err := db.RunBatch(qs, opts, 2)
		if err != nil {
			t.Fatalf("%v batch: %v", method, err)
		}
		srv, err := db.Serve(ServeOptions{Workers: 2, Search: opts})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]*Result, len(qs))
		var wg sync.WaitGroup
		for i := range qs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r, err := srv.Submit(qs[i])
				if err != nil {
					t.Errorf("%v submit %d: %v", method, i, err)
					return
				}
				got[i] = r
			}(i)
		}
		wg.Wait()
		srv.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: served results differ from RunBatch", method)
		}
		wantMatched := 0
		for _, r := range want {
			if r != nil {
				wantMatched++
			}
		}
		st := srv.Stats()
		if st.Matched != int64(wantMatched) {
			t.Fatalf("%v: Stats().Matched = %d, want %d", method, st.Matched, wantMatched)
		}
		if st.Served != int64(len(qs)) {
			t.Fatalf("%v: Stats().Served = %d, want %d", method, st.Served, len(qs))
		}
	}
}

func TestServeValidationAndClose(t *testing.T) {
	db, qs := serveWorkload(t)
	srv, err := db.Serve(ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(Query{Delta: 10}); err == nil {
		t.Error("query without keywords accepted")
	}
	if _, err := srv.Submit(Query{Keywords: []string{"a"}, Delta: -1}); err == nil {
		t.Error("non-positive ∆ accepted")
	}
	if _, err := srv.Submit(qs[0]); err != nil {
		t.Fatalf("valid submit: %v", err)
	}
	srv.Close()
	if _, err := srv.Submit(qs[0]); !errors.Is(err, queryengine.ErrServerClosed) {
		t.Fatalf("submit after close = %v, want ErrServerClosed", err)
	}
	if _, err := db.Serve(ServeOptions{Search: SearchOptions{Method: Method(99)}}); err == nil {
		t.Error("unknown method accepted")
	}
}
