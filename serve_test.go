package repro

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/queryengine"
)

func serveWorkload(t *testing.T) (*Database, []Query) {
	t.Helper()
	db, err := NYLike(4, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	qs, err := db.GenQueries(rng, 10, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	return db, qs
}

// TestServeMatchesRunBatch is the acceptance guarantee for the streaming
// service: for every method, submitting a workload through a server —
// concurrently, from several clients — returns exactly what RunBatch
// returns for the same queries.
func TestServeMatchesRunBatch(t *testing.T) {
	db, qs := serveWorkload(t)
	for _, method := range []Method{MethodTGEN, MethodAPP, MethodGreedy} {
		opts := SearchOptions{Method: method}
		want, _, err := db.RunBatch(context.Background(), qs, opts, 2)
		if err != nil {
			t.Fatalf("%v batch: %v", method, err)
		}
		srv, err := db.Serve(ServeOptions{Workers: 2, Search: opts})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]*Result, len(qs))
		var wg sync.WaitGroup
		for i := range qs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r, err := srv.Submit(context.Background(), qs[i])
				if err != nil {
					t.Errorf("%v submit %d: %v", method, i, err)
					return
				}
				got[i] = r
			}(i)
		}
		wg.Wait()
		srv.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: served results differ from RunBatch", method)
		}
		wantMatched := 0
		for _, r := range want {
			if r != nil {
				wantMatched++
			}
		}
		st := srv.Stats()
		if st.Matched != int64(wantMatched) {
			t.Fatalf("%v: Stats().Matched = %d, want %d", method, st.Matched, wantMatched)
		}
		if st.Served != int64(len(qs)) {
			t.Fatalf("%v: Stats().Served = %d, want %d", method, st.Served, len(qs))
		}
	}
}

func TestServeValidationAndClose(t *testing.T) {
	db, qs := serveWorkload(t)
	srv, err := db.Serve(ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), Query{Delta: 10}); err == nil {
		t.Error("query without keywords accepted")
	}
	if _, err := srv.Submit(context.Background(), Query{Keywords: []string{"a"}, Delta: -1}); err == nil {
		t.Error("non-positive ∆ accepted")
	}
	if _, err := srv.Submit(context.Background(), qs[0]); err != nil {
		t.Fatalf("valid submit: %v", err)
	}
	srv.Close()
	if _, err := srv.Submit(context.Background(), qs[0]); !errors.Is(err, queryengine.ErrServerClosed) {
		t.Fatalf("submit after close = %v, want ErrServerClosed", err)
	}
	if _, err := db.Serve(ServeOptions{Search: SearchOptions{Method: Method(99)}}); err == nil {
		t.Error("unknown method accepted")
	}
}

// TestParseMethod checks the round trip with Method.String and the error
// path.
func TestParseMethod(t *testing.T) {
	for _, m := range []Method{MethodTGEN, MethodAPP, MethodGreedy} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMethod(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
		got, err = ParseMethod(strings.ToLower(m.String()))
		if err != nil || got != m {
			t.Fatalf("ParseMethod(lower %q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := ParseMethod("dijkstra"); err == nil {
		t.Fatal("unknown method name accepted")
	}
	if _, err := ParseMethod(""); err == nil {
		t.Fatal("empty method name accepted")
	}
}

// TestDatabaseDo checks the unified one-shot surface: Do matches the
// Run/RunTopK wrappers and validates like them.
func TestDatabaseDo(t *testing.T) {
	db, qs := serveWorkload(t)
	ctx := context.Background()
	for _, method := range []Method{MethodTGEN, MethodAPP, MethodGreedy} {
		opts := SearchOptions{Method: method}
		for _, q := range qs[:4] {
			want, err := db.Run(ctx, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			resp := db.Do(ctx, Request{Query: q, Search: opts})
			if resp.Err != nil {
				t.Fatal(resp.Err)
			}
			if !reflect.DeepEqual(resp.Best(), want) {
				t.Fatalf("%v: Do differs from Run", method)
			}
			if want == nil && len(resp.Results) != 0 {
				t.Fatalf("%v: empty answer carries results", method)
			}
		}
	}
	wantK, err := db.RunTopK(ctx, qs[0], 3, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resp := db.Do(ctx, Request{Query: qs[0], K: 3})
	if resp.Err != nil || !reflect.DeepEqual(resp.Results, wantK) {
		t.Fatalf("Do K=3 = (%v, %v), want %v", resp.Results, resp.Err, wantK)
	}
	if resp := db.Do(ctx, Request{Query: Query{Delta: 5}}); resp.Err == nil {
		t.Fatal("keyword-less request accepted")
	}
	if resp := db.Do(ctx, Request{Query: qs[0], Search: SearchOptions{Method: Method(99)}}); resp.Err == nil {
		t.Fatal("unknown method accepted")
	}
}

// TestServerDoPerRequestOptions checks the zero-Search convention: a zero
// Request.Search uses the server's defaults, any other value overrides
// them for that request only.
func TestServerDoPerRequestOptions(t *testing.T) {
	db, qs := serveWorkload(t)
	ctx := context.Background()
	srv, err := db.Serve(ServeOptions{Workers: 1, Search: SearchOptions{Method: MethodTGEN}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, q := range qs[:4] {
		wantTGEN, err := db.Run(ctx, q, SearchOptions{Method: MethodTGEN})
		if err != nil {
			t.Fatal(err)
		}
		wantGreedy, err := db.Run(ctx, q, SearchOptions{Method: MethodGreedy})
		if err != nil {
			t.Fatal(err)
		}
		if resp := srv.Do(ctx, Request{Query: q}); resp.Err != nil || !reflect.DeepEqual(resp.Best(), wantTGEN) {
			t.Fatalf("default-path Do = (%v, %v), want TGEN answer", resp.Best(), resp.Err)
		}
		resp := srv.Do(ctx, Request{Query: q, Search: SearchOptions{Method: MethodGreedy}})
		if resp.Err != nil || !reflect.DeepEqual(resp.Best(), wantGreedy) {
			t.Fatalf("override Do = (%v, %v), want Greedy answer", resp.Best(), resp.Err)
		}
		// K rides through the server too.
		wantK, err := db.RunTopK(ctx, q, 2, SearchOptions{Method: MethodTGEN})
		if err != nil {
			t.Fatal(err)
		}
		if resp := srv.Do(ctx, Request{Query: q, K: 2}); resp.Err != nil || !reflect.DeepEqual(resp.Results, wantK) {
			t.Fatalf("server top-k = (%v, %v), want %v", resp.Results, resp.Err, wantK)
		}
	}
}

// TestServeSheddingAndStats drives the public shedding surface: with one
// worker held by a second-long APP solve and a 10ms queue-age budget,
// queued requests come back as ErrOverloaded, appear in ServeStats.Shed,
// and the stats line prints the new counters. (The first request is
// picked up within microseconds on an idle server, so only the requests
// stuck behind the stress solve age out.)
func TestServeSheddingAndStats(t *testing.T) {
	db, err := NYLike(3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := db.GenQueries(rand.New(rand.NewSource(5)), 1, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	stress := qs[0]
	stress.Region = db.Bounds()
	stress.Delta = 50_000

	srv, err := db.Serve(ServeOptions{
		Workers:     1,
		Search:      SearchOptions{Method: MethodAPP},
		MaxQueueAge: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first := make(chan error, 1)
	go func() {
		_, err := srv.Submit(context.Background(), stress)
		first <- err
	}()
	time.Sleep(50 * time.Millisecond) // the worker is now mid-APP-solve

	const queued = 3
	shedErrs := make(chan error, queued)
	for i := 0; i < queued; i++ {
		go func() {
			_, err := srv.Submit(context.Background(), stress)
			shedErrs <- err
		}()
	}
	for i := 0; i < queued; i++ {
		if err := <-shedErrs; !errors.Is(err, ErrOverloaded) {
			t.Fatalf("queued submit err = %v, want ErrOverloaded", err)
		}
	}
	if err := <-first; err != nil {
		t.Fatalf("stress submit: %v", err)
	}
	st := srv.Stats()
	if st.Shed != queued {
		t.Fatalf("Shed = %d, want %d", st.Shed, queued)
	}
	if st.Served != 1 {
		t.Fatalf("Served = %d, want 1", st.Served)
	}
	line := st.String()
	if !strings.Contains(line, "errors=0") || !strings.Contains(line, "shed=3") {
		t.Fatalf("ServeStats.String() missing counters: %q", line)
	}
}

// TestServerDoWithOptions covers the escape hatch for the zero-value
// trap: plain TGEN defaults are SearchOptions' zero value, so on a
// server configured with another method they are inexpressible through
// Request.Search — DoWithOptions applies them explicitly.
func TestServerDoWithOptions(t *testing.T) {
	db, qs := serveWorkload(t)
	ctx := context.Background()
	srv, err := db.Serve(ServeOptions{Workers: 1, Search: SearchOptions{Method: MethodGreedy}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, q := range qs[:4] {
		wantTGEN, err := db.Run(ctx, q, SearchOptions{Method: MethodTGEN})
		if err != nil {
			t.Fatal(err)
		}
		resp := srv.DoWithOptions(ctx, Request{Query: q}, SearchOptions{Method: MethodTGEN})
		if resp.Err != nil || !reflect.DeepEqual(resp.Best(), wantTGEN) {
			t.Fatalf("DoWithOptions(TGEN) = (%v, %v), want the TGEN answer", resp.Best(), resp.Err)
		}
		// Through Do, the same zero-value Search means server defaults.
		wantGreedy, err := db.Run(ctx, q, SearchOptions{Method: MethodGreedy})
		if err != nil {
			t.Fatal(err)
		}
		if resp := srv.Do(ctx, Request{Query: q, Search: SearchOptions{Method: MethodTGEN}}); resp.Err != nil ||
			!reflect.DeepEqual(resp.Best(), wantGreedy) {
			t.Fatalf("Do with zero-value Search = (%v, %v), want the server default (Greedy)", resp.Best(), resp.Err)
		}
	}
}
