package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
)

// startClusterNodes serves nodeDB's index as a 2-way cell split with
// `replicas` interchangeable listeners per half, returning the node
// addresses in coordinator order and the handles for shutdown.
func startClusterNodes(t *testing.T, nodeDB *Database, replicas int) ([]string, []*ClusterNode) {
	t.Helper()
	num := uint32(nodeDB.ds.Index.NumCells())
	mid := num / 2
	if mid == 0 || mid >= num {
		t.Fatalf("degenerate cell split: mid=%d of %d", mid, num)
	}
	var addrs []string
	var nodes []*ClusterNode
	for _, rg := range [][2]uint32{{0, mid}, {mid, num}} {
		for i := 0; i < replicas; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			cn, err := nodeDB.ServeClusterNode(ln, rg[0], rg[1])
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, cn)
			addrs = append(addrs, cn.Addr().String())
		}
	}
	t.Cleanup(func() {
		for _, cn := range nodes {
			cn.Close()
		}
	})
	return addrs, nodes
}

// TestClusterServeGolden is the acceptance guarantee for distributed
// serving: a coordinator over a 2-node cell split (each half replicated
// twice) answers a concurrent workload bit-identically to RunBatch on a
// single process holding all the data — for every method, and still after
// one replica of each half is killed mid-test (the coordinator retries on
// the survivor).
func TestClusterServeGolden(t *testing.T) {
	ref, qs := serveWorkload(t) // the single-process reference answers
	coordDB, err := NYLike(4, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	nodeDB, err := NYLike(4, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	addrs, nodes := startClusterNodes(t, nodeDB, 2)
	cl, err := coordDB.OpenCluster(ClusterOptions{Nodes: addrs, Serve: ServeOptions{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	run := func(opts SearchOptions) []*Result {
		got := make([]*Result, len(qs))
		var wg sync.WaitGroup
		for i := range qs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp := cl.Do(context.Background(), Request{Query: qs[i], Search: opts})
				if resp.Err != nil {
					t.Errorf("cluster Do %d: %v", i, resp.Err)
					return
				}
				got[i] = resp.Best()
			}(i)
		}
		wg.Wait()
		return got
	}

	want := make(map[Method][]*Result)
	for _, method := range []Method{MethodTGEN, MethodAPP, MethodGreedy} {
		opts := SearchOptions{Method: method}
		w, _, err := ref.RunBatch(context.Background(), qs, opts, 2)
		if err != nil {
			t.Fatalf("%v batch: %v", method, err)
		}
		want[method] = w
		if got := run(opts); !reflect.DeepEqual(got, w) {
			t.Fatalf("%v: cluster answers differ from single-process RunBatch", method)
		}
	}

	// Kill one replica of each half; the survivors still hold all the
	// data, so answers must stay bit-identical (failures surface as
	// retries, never as partial results).
	nodes[0].Close()
	nodes[2].Close()
	for _, method := range []Method{MethodTGEN, MethodGreedy} {
		if got := run(SearchOptions{Method: method}); !reflect.DeepEqual(got, want[method]) {
			t.Fatalf("%v: cluster answers changed after replica kill", method)
		}
	}

	st := cl.Stats()
	if st.Searches == 0 {
		t.Fatal("coordinator recorded no searches")
	}
	if st.NoReplica != 0 {
		t.Fatalf("NoReplica = %d, want 0 (one replica per half survived)", st.NoReplica)
	}
	if st.Groups != 2 {
		t.Fatalf("Groups = %d, want 2", st.Groups)
	}
	if len(st.Nodes) != 4 {
		t.Fatalf("node stats entries = %d, want 4", len(st.Nodes))
	}
	if ss := cl.ServeStats(); ss.Served == 0 {
		t.Fatal("serve pool recorded no requests")
	}
}

// TestClusterQuotaAndTypedErrors checks admission control end to end:
// with a two-token burst, the third request from one client is refused
// with ErrQuotaExceeded (429 over HTTP), while killing every replica of
// a range turns queries into typed ErrNoReplica (503), never a partial
// answer.
func TestClusterQuotaAndTypedErrors(t *testing.T) {
	coordDB, err := NYLike(4, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	nodeDB, err := NYLike(4, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := genTestQueries(coordDB)
	if err != nil {
		t.Fatal(err)
	}
	addrs, nodes := startClusterNodes(t, nodeDB, 1)
	cl, err := coordDB.OpenCluster(ClusterOptions{
		Nodes: addrs,
		Serve: ServeOptions{Workers: 1},
		Quota: &ClusterQuota{RatePerSec: 0.001, Burst: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	hs := httptest.NewServer(cl.HTTPHandler(HTTPOptions{}))
	defer hs.Close()
	body, err := json.Marshal(map[string]any{
		"keywords": qs[0].Keywords,
		"delta":    qs[0].Delta,
		"region": map[string]float64{
			"min_x": qs[0].Region.MinX, "min_y": qs[0].Region.MinY,
			"max_x": qs[0].Region.MaxX, "max_y": qs[0].Region.MaxY,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	post := func() int {
		resp, err := http.Post(hs.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(); got != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", got)
	}
	if got := post(); got != http.StatusOK {
		t.Fatalf("second request: status %d, want 200", got)
	}
	if got := post(); got != http.StatusTooManyRequests {
		t.Fatalf("over-quota request: status %d, want 429", got)
	}

	// The /stats body must carry the cluster fragment and the quota denial.
	sresp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Tombstones int `json:"tombstones"`
		Cluster    *struct {
			Searches    int64 `json:"searches"`
			QuotaDenied int64 `json:"quota_denied"`
			Groups      int   `json:"groups"`
			Nodes       []struct {
				Addr string `json:"addr"`
			} `json:"nodes"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Cluster == nil {
		t.Fatal("/stats missing cluster fragment")
	}
	if stats.Cluster.QuotaDenied != 1 {
		t.Fatalf("quota_denied = %d, want 1", stats.Cluster.QuotaDenied)
	}
	if stats.Cluster.Groups != 2 || len(stats.Cluster.Nodes) != 2 {
		t.Fatalf("cluster stats shape: groups=%d nodes=%d, want 2/2", stats.Cluster.Groups, len(stats.Cluster.Nodes))
	}

	// Kill the only replica of each range: a direct query (own quota
	// bucket, so admission passes) must fail typed, not hang or answer
	// partially.
	for _, cn := range nodes {
		cn.Close()
	}
	resp := cl.Do(context.Background(), Request{Query: qs[0]})
	if resp.Err == nil {
		t.Fatal("query with every replica dead succeeded")
	}
	if !errors.Is(resp.Err, ErrNoReplica) {
		// The query may also have been routed nowhere (all cells skipped);
		// any other error must still be the typed one.
		t.Fatalf("err = %v, want ErrNoReplica", resp.Err)
	}
	if st := cl.Stats(); st.NoReplica == 0 {
		t.Fatal("NoReplica counter did not advance")
	}

	// Deleting an object surfaces in StoreStats and /stats as a tombstone.
	if err := coordDB.Delete(0); err != nil {
		t.Fatal(err)
	}
	if ss, _ := coordDB.StoreStats(); ss.Tombstones != 1 {
		t.Fatalf("StoreStats.Tombstones = %d, want 1", ss.Tombstones)
	}
}

// genTestQueries builds a small deterministic workload against db.
func genTestQueries(db *Database) ([]Query, error) {
	return db.GenQueries(rand.New(rand.NewSource(44)), 4, 3, 25e6, 5000)
}
