#!/usr/bin/env bash
# bench-cluster.sh — distributed-serving throughput gate.
#
# Replays the same generated workload through a coordinator twice: once
# over a single node owning every grid cell, once over two nodes
# splitting the cell space in half. Both topologies serve disk-backed
# posting stores built fresh per run, so the workload is a cold-read one
# — and the 2-node split must beat the 1-node topology by at least
# CLUSTER_MIN_RATIO x (default 1.05): each query's scatter runs the two
# halves' searches in different processes, so splitting buys real
# parallelism, not just process count. The development container has a
# single CPU, so like bench-scaling.sh this gate skips on hosts with
# < 4 CPUs and only proves the speedup on the multi-core CI runner.
#
# Usage: scripts/bench-cluster.sh
set -euo pipefail
cd "$(dirname "$0")/.."

min="${CLUSTER_MIN_RATIO:-1.05}"
scale="${CLUSTER_SCALE:-0.2}"
queries="${CLUSTER_QUERIES:-96}"
cpus="$(nproc)"
if [ "$cpus" -lt 4 ]; then
  echo "bench-cluster: host has $cpus CPU(s), the gate needs 4 — skipping (CI runs it)"
  exit 0
fi

tmp="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/lcmsr" ./cmd/lcmsr

# start_node LOG CELLS PORT STOREDIR — one node process over a fresh
# 4-shard disk store; records its pid for cleanup.
start_node() {
  "$tmp/lcmsr" -node -cells "$2" -listen "127.0.0.1:$3" \
    -scale "$scale" -shards 4 -postings "$4" >"$1" 2>&1 &
  pids+=($!)
}

wait_port() {
  for _ in $(seq 1 300); do
    (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null && return 0
    sleep 0.2
  done
  echo "bench-cluster: node on port $1 never came up" >&2
  return 1
}

# qps_of FILE — the closed-loop throughput printed by the coordinator.
qps_of() {
  awk '/queries over the cluster/ {
    for (i = 1; i < NF; i++) if ($(i+1) ~ /^queries\/s/) print $i
  }' "$1" | tr -d ','
}

# Topology A: one node owns the whole cell space.
start_node "$tmp/n1.log" "0:100000000" 19101 "$tmp/store1"
wait_port 19101
"$tmp/lcmsr" -coord -nodes 127.0.0.1:19101 -scale "$scale" \
  -queries "$queries" -parallel 4 | tee "$tmp/coord1.txt"
kill "${pids[0]}" 2>/dev/null || true
wait "${pids[0]}" 2>/dev/null || true

# The node printed its true cell count; split the space at the midpoint.
cells="$(awk '/node: serving cells/ { print $7 }' "$tmp/n1.log")"
if [ -z "$cells" ] || [ "$cells" -lt 2 ]; then
  echo "bench-cluster: could not read the grid cell count from the node log" >&2
  exit 1
fi
half=$((cells / 2))

# Topology B: two nodes split the cell space in half.
start_node "$tmp/n2.log" "0:$half" 19102 "$tmp/store2"
start_node "$tmp/n3.log" "$half:100000000" 19103 "$tmp/store3"
wait_port 19102
wait_port 19103
"$tmp/lcmsr" -coord -nodes 127.0.0.1:19102,127.0.0.1:19103 -scale "$scale" \
  -queries "$queries" -parallel 4 | tee "$tmp/coord2.txt"

one="$(qps_of "$tmp/coord1.txt")"
two="$(qps_of "$tmp/coord2.txt")"
if [ -z "$one" ] || [ -z "$two" ]; then
  echo "FAIL: missing coordinator throughput (1-node='$one' 2-node='$two')" >&2
  exit 1
fi
ratio="$(awk -v a="$two" -v b="$one" 'BEGIN { printf "%.2f", a / b }')"
echo "cluster cold-read throughput: $one q/s @1 node vs $two q/s @2 nodes → ${ratio}x (need >= ${min}x)"
if ! awk -v r="$ratio" -v m="$min" 'BEGIN { exit !(r >= m) }'; then
  echo "FAIL: 2-node split scales ${ratio}x < ${min}x over 1 node"
  exit 1
fi
