#!/usr/bin/env bash
# bench-json.sh — machine-readable benchmark snapshot + allocation gate.
#
# Runs the end-to-end serve benchmarks (BenchmarkServeQuery: searchpath,
# tgen-e2e, app-e2e, greedy-e2e) and the live-update benchmarks
# (BenchmarkLiveUpdate: insert/reweight/delete updates-per-second over
# the sharded store, serve-after-updates for the memtable-empty query
# path) with -benchmem, writes the results as JSON (ns/op, B/op,
# allocs/op per benchmark) to the output file, and fails when any
# benchmark's allocs/op exceeds the committed baseline in
# scripts/bench-baseline.json — the zero-alloc serve-path guarantee and
# the bounded-allocation update path, enforced numerically.
#
# Usage: scripts/bench-json.sh [output.json]   (default BENCH_PR7.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR7.json}"
baseline="scripts/bench-baseline.json"

raw="$(go test -run=NONE -bench='^(BenchmarkServeQuery|BenchmarkLiveUpdate)$' -benchmem -benchtime=50x -count=1 .)"
echo "$raw"

# Each result line is "BenchmarkName  N  <value> <unit> ..."; pick the
# values by their unit so extra metrics (queries/s) don't shift columns.
echo "$raw" | awk '
  $1 ~ /^Benchmark/ && $NF == "allocs/op" {
    ns = ""; b = ""; allocs = "";
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i;
      if ($(i+1) == "B/op")      b = $i;
      if ($(i+1) == "allocs/op") allocs = $i;
    }
    printf("{\"name\":\"%s\",\"ns_per_op\":%s,\"b_per_op\":%s,\"allocs_per_op\":%s}\n", $1, ns, b, allocs);
  }' | jq -s '{benchmarks: .}' >"$out"

echo "wrote $out:"
jq . "$out"

# Gate: every baseline entry must exist in the snapshot (modulo the -N
# GOMAXPROCS suffix go test appends) and stay within its alloc budget.
jq -n --slurpfile cur "$out" --slurpfile base "$baseline" '
  ($cur[0].benchmarks
   | map({key: (.name | sub("-[0-9]+$"; "")), value: .}) | from_entries) as $c
  | $base[0].benchmarks[]
  | . as $b
  | ($c[$b.name] // error("benchmark \($b.name) missing from snapshot"))
  | if .allocs_per_op > $b.max_allocs_per_op
    then error("allocs/op regression in \($b.name): \(.allocs_per_op) > baseline \($b.max_allocs_per_op)")
    else "\($b.name): \(.allocs_per_op) allocs/op (baseline \($b.max_allocs_per_op)) OK"
    end
'
