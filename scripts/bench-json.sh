#!/usr/bin/env bash
# bench-json.sh — machine-readable benchmark snapshot + allocation gate.
#
# Runs the end-to-end serve benchmarks (BenchmarkServeQuery: searchpath,
# tgen-e2e, app-e2e, greedy-e2e, hot-cached), the live-update benchmarks
# (BenchmarkLiveUpdate: insert/reweight/delete updates-per-second over
# the sharded store, serve-after-updates for the memtable-empty query
# path) and the WAND top-k benchmark (BenchmarkTopKPruned) with
# -benchmem, writes the results as JSON (ns/op, B/op, allocs/op per
# benchmark) to the output file, and fails when any benchmark's
# allocs/op exceeds the committed baseline in
# scripts/bench-baseline.json — the zero-alloc serve-path guarantee
# (including cache hits and pruned top-k) and the bounded-allocation
# update path, enforced numerically.
#
# It then runs the hot-query score cache gate: on a disk-backed sharded
# store, a warm cache must answer a replayed hot query set at least
# HOTCACHE_MIN_RATIO x (default 3.0) faster than the uncached cold path,
# with 0 allocs/op on the cached leg (BenchmarkHotQueryCache).
#
# Usage: scripts/bench-json.sh [output.json]   (default BENCH_PR7.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR7.json}"
baseline="scripts/bench-baseline.json"

raw="$(go test -run=NONE -bench='^(BenchmarkServeQuery|BenchmarkLiveUpdate|BenchmarkTopKPruned)$' -benchmem -benchtime=50x -count=1 .)"
echo "$raw"

# Each result line is "BenchmarkName  N  <value> <unit> ..."; pick the
# values by their unit so extra metrics (queries/s) don't shift columns.
echo "$raw" | awk '
  $1 ~ /^Benchmark/ && $NF == "allocs/op" {
    ns = ""; b = ""; allocs = "";
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i;
      if ($(i+1) == "B/op")      b = $i;
      if ($(i+1) == "allocs/op") allocs = $i;
    }
    printf("{\"name\":\"%s\",\"ns_per_op\":%s,\"b_per_op\":%s,\"allocs_per_op\":%s}\n", $1, ns, b, allocs);
  }' | jq -s '{benchmarks: .}' >"$out"

echo "wrote $out:"
jq . "$out"

# Gate: every baseline entry must exist in the snapshot (modulo the -N
# GOMAXPROCS suffix go test appends) and stay within its alloc budget.
jq -n --slurpfile cur "$out" --slurpfile base "$baseline" '
  ($cur[0].benchmarks
   | map({key: (.name | sub("-[0-9]+$"; "")), value: .}) | from_entries) as $c
  | $base[0].benchmarks[]
  | . as $b
  | ($c[$b.name] // error("benchmark \($b.name) missing from snapshot"))
  | if .allocs_per_op > $b.max_allocs_per_op
    then error("allocs/op regression in \($b.name): \(.allocs_per_op) > baseline \($b.max_allocs_per_op)")
    else "\($b.name): \(.allocs_per_op) allocs/op (baseline \($b.max_allocs_per_op)) OK"
    end
'

# Hot-query score cache gate: cached replay must beat the cold path by
# HOTCACHE_MIN_RATIO x and stay allocation-free on hits.
minhot="${HOTCACHE_MIN_RATIO:-3.0}"
hotraw="$(go test -run=NONE -bench='^BenchmarkHotQueryCache$' -benchmem -benchtime=100x -count=1 ./internal/grid/)"
echo "$hotraw"

# metric_of NAME UNIT — the named benchmark's value for that unit
# (go test appends "-<GOMAXPROCS>" to names when GOMAXPROCS != 1).
metric_of() {
  echo "$hotraw" | awk -v n="$1" -v u="$2" \
    '$1 ~ ("^" n "(-[0-9]+)?$") { for (i = 2; i < NF; i++) if ($(i+1) == u) print $i }'
}

cold_ns="$(metric_of 'BenchmarkHotQueryCache/cold' 'ns/op')"
cached_ns="$(metric_of 'BenchmarkHotQueryCache/cached' 'ns/op')"
cached_allocs="$(metric_of 'BenchmarkHotQueryCache/cached' 'allocs/op')"
if [ -z "$cold_ns" ] || [ -z "$cached_ns" ] || [ -z "$cached_allocs" ]; then
  echo "FAIL: hot-cache gate: missing benchmark output (cold='$cold_ns' cached='$cached_ns' allocs='$cached_allocs')"
  exit 1
fi
if [ "$cached_allocs" != "0" ]; then
  echo "FAIL: hot-cache gate: cached leg allocates ($cached_allocs allocs/op, want 0)"
  exit 1
fi
ratio="$(awk -v a="$cold_ns" -v b="$cached_ns" 'BEGIN { printf "%.2f", a / b }')"
echo "hot-query cache: $cold_ns ns/op cold vs $cached_ns ns/op cached → ${ratio}x speedup (need >= ${minhot}x), 0 allocs/op on hits"
if ! awk -v r="$ratio" -v m="$minhot" 'BEGIN { exit !(r >= m) }'; then
  echo "FAIL: hot-query cache speedup ${ratio}x < ${minhot}x"
  exit 1
fi
