#!/usr/bin/env bash
# bench-scaling.sh — multi-core scaling gate.
#
# Runs the end-to-end engine throughput benchmark and the sharded-store
# cold-read benchmark at -cpu=1 and -cpu=4 and requires at least
# SCALING_MIN_RATIO x (default 2.0) speedup at 4 CPUs. The development
# container has a single CPU, so this gate only proves the parallel
# speedup on the multi-core CI runner; on hosts with < 4 CPUs it skips.
#
# Usage: scripts/bench-scaling.sh
set -euo pipefail
cd "$(dirname "$0")/.."

min="${SCALING_MIN_RATIO:-2.0}"
cpus="$(nproc)"
if [ "$cpus" -lt 4 ]; then
  echo "bench-scaling: host has $cpus CPU(s), the gate needs 4 — skipping (CI runs it)"
  exit 0
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go test -run=NONE -bench='^BenchmarkQueryThroughput$' -cpu=1,4 -benchtime=1s -count=1 . | tee "$tmp/engine.txt"
go test -run=NONE -bench='^BenchmarkColdRead$/^sharded$' -cpu=1,4 -benchtime=1s -count=1 ./internal/grid/ | tee "$tmp/cold.txt"

# ns_of FILE NAME — the ns/op of the exactly-named benchmark (go test
# appends "-<GOMAXPROCS>" to names when GOMAXPROCS != 1).
ns_of() {
  awk -v n="$2" '$1 == n { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") print $i }' "$1"
}

fail=0
check() { # LABEL NS_1CPU NS_4CPU
  if [ -z "$2" ] || [ -z "$3" ]; then
    echo "FAIL: $1: missing benchmark output (got '@1cpu=$2' '@4cpu=$3')"
    fail=1
    return
  fi
  local ratio
  ratio="$(awk -v a="$2" -v b="$3" 'BEGIN { printf "%.2f", a / b }')"
  echo "$1: $2 ns/op @1cpu vs $3 ns/op @4cpu → ${ratio}x speedup (need >= ${min}x)"
  if ! awk -v r="$ratio" -v m="$min" 'BEGIN { exit !(r >= m) }'; then
    echo "FAIL: $1 scales ${ratio}x < ${min}x"
    fail=1
  fi
}

check "engine throughput (64-query TGEN workload)" \
  "$(ns_of "$tmp/engine.txt" 'BenchmarkQueryThroughput/workers=1')" \
  "$(ns_of "$tmp/engine.txt" 'BenchmarkQueryThroughput/workers=4-4')"
check "sharded cold-read search" \
  "$(ns_of "$tmp/cold.txt" 'BenchmarkColdRead/sharded')" \
  "$(ns_of "$tmp/cold.txt" 'BenchmarkColdRead/sharded-4')"

exit "$fail"
