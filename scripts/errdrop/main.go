// Command errdrop is the repo's errcheck-equivalent gate for the storage
// path: it fails when a call to an error-returning function declared in
// the scanned packages is used as a bare statement (including go/defer),
// silently dropping the error.
//
// On a crash-safe store a dropped error IS the corruption: an unchecked
// Sync means the header can claim durability it does not have, an
// unchecked Close means a flush failure vanishes. This gate makes every
// discard explicit — `_ = f()` states the intent and is allowed.
//
// Usage:
//
//	go run ./scripts/errdrop internal/btree internal/iofault internal/grid
//
// The tool is deliberately stdlib-only (go/parser + go/ast, no type
// checker, no external deps): it collects the names of functions,
// methods, and interface methods declared in the scanned packages whose
// LAST result is `error`, then flags any expression statement calling
// one of those names. Name-based matching can in principle false-
// positive on an unrelated same-named method that returns no error —
// acceptable in a gate over our own packages, where naming a method
// like an error-returning one but without the error would itself be a
// smell. _test.go files are skipped: tests drop errors deliberately
// (deferred cleanup of temp stores).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: errdrop PKGDIR...")
		os.Exit(2)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, dir := range os.Args[1:] {
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "errdrop:", err)
			os.Exit(2)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
			if err != nil {
				fmt.Fprintln(os.Stderr, "errdrop:", err)
				os.Exit(2)
			}
			files = append(files, f)
		}
	}

	// Pass 1: the names of everything declared here whose last result is
	// `error` — top-level funcs, methods, and interface methods (the
	// latter catch stdlib-shaped names like Close/Sync through the
	// iofault.File interface).
	returnsErr := map[string]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && lastResultIsError(fd.Type.Results) {
				returnsErr[fd.Name.Name] = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, m := range it.Methods.List {
				ft, ok := m.Type.(*ast.FuncType)
				if !ok || !lastResultIsError(ft.Results) {
					continue
				}
				for _, name := range m.Names {
					returnsErr[name.Name] = true
				}
			}
			return true
		})
	}

	// Pass 2: flag bare-statement calls (plain, go, defer) to those names.
	var drops []string
	flag := func(call *ast.CallExpr, kind string) {
		name := calleeName(call)
		if name == "" || !returnsErr[name] {
			return
		}
		pos := fset.Position(call.Pos())
		drops = append(drops, fmt.Sprintf("%s:%d: %sdropped error from %s(...)", pos.Filename, pos.Line, kind, name))
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					flag(call, "")
				}
			case *ast.GoStmt:
				flag(st.Call, "go: ")
			case *ast.DeferStmt:
				flag(st.Call, "defer: ")
			}
			return true
		})
	}

	if len(drops) > 0 {
		sort.Strings(drops)
		for _, d := range drops {
			fmt.Fprintln(os.Stderr, d)
		}
		fmt.Fprintf(os.Stderr, "errdrop: %d dropped error(s); handle them or discard explicitly with `_ = ...`\n", len(drops))
		os.Exit(1)
	}
}

// lastResultIsError reports whether the final result of a signature is
// the identifier `error`.
func lastResultIsError(results *ast.FieldList) bool {
	if results == nil || len(results.List) == 0 {
		return false
	}
	last := results.List[len(results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}

// calleeName extracts the called function or method name: `f()` → "f",
// `x.M()` → "M". Indirect calls (function values, conversions) yield ""
// and are not checked — without types their signature is unknowable.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
