package repro

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// tinyDB builds a hand-made database: a 3x3 street grid, 100 m blocks,
// with cafes clustered in the north-west corner and one museum far away.
func tinyDB(t *testing.T) *Database {
	t.Helper()
	var nodes []NodeSpec
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			nodes = append(nodes, NodeSpec{X: float64(x) * 100, Y: float64(y) * 100})
		}
	}
	var edges []EdgeSpec
	id := func(x, y int) int { return y*3 + x }
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if x+1 < 3 {
				edges = append(edges, EdgeSpec{U: id(x, y), V: id(x+1, y)})
			}
			if y+1 < 3 {
				edges = append(edges, EdgeSpec{U: id(x, y), V: id(x, y+1)})
			}
		}
	}
	objects := []ObjectSpec{
		{X: 5, Y: 5, Text: "cafe espresso"},
		{X: 95, Y: 5, Text: "cafe bakery"},
		{X: 5, Y: 95, Text: "cafe"},
		{X: 205, Y: 205, Text: "museum"},
	}
	db, err := New(nodes, edges, objects)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, []ObjectSpec{{Text: "x"}}); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := New([]NodeSpec{{}}, nil, nil); err == nil {
		t.Error("no objects accepted")
	}
	if _, err := New([]NodeSpec{{}, {X: 1}},
		[]EdgeSpec{{U: 0, V: 9}}, []ObjectSpec{{Text: "x"}}); err == nil {
		t.Error("bad edge accepted")
	}
}

func TestTinyEndToEnd(t *testing.T) {
	db := tinyDB(t)
	if db.NumNodes() != 9 || db.NumObjects() != 4 {
		t.Fatalf("db size: %d nodes %d objects", db.NumNodes(), db.NumObjects())
	}
	q := Query{
		Keywords: []string{"cafe"},
		Delta:    250,
		Region:   db.Bounds(),
	}
	for _, m := range []Method{MethodTGEN, MethodAPP, MethodGreedy} {
		res, err := db.Run(context.Background(), q, SearchOptions{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res == nil {
			t.Fatalf("%v: nil result", m)
		}
		if res.Length > q.Delta {
			t.Errorf("%v: length %v exceeds ∆", m, res.Length)
		}
		if len(res.Objects) == 0 {
			t.Errorf("%v: no objects in region", m)
		}
		for _, o := range res.Objects {
			if o.Score <= 0 {
				t.Errorf("%v: object %d has score %v", m, o.ID, o.Score)
			}
		}
		// The museum (object 3) matches nothing and must never show up.
		for _, o := range res.Objects {
			if o.ID == 3 {
				t.Errorf("%v: irrelevant museum included", m)
			}
		}
	}
	// TGEN with budget 250 should capture all three cafes: they sit at
	// corners (0,0), (100,0), (0,100) — 200 m of road connects them.
	res, err := db.Run(context.Background(), q, SearchOptions{Method: MethodTGEN})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 3 {
		t.Errorf("TGEN found %d cafes, want 3 (score %v, len %v)", len(res.Objects), res.Score, res.Length)
	}
}

func TestRunNoMatch(t *testing.T) {
	db := tinyDB(t)
	res, err := db.Run(context.Background(), Query{Keywords: []string{"zzz"}, Delta: 100, Region: db.Bounds()}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Errorf("unknown keyword produced %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	db := tinyDB(t)
	if _, err := db.Run(context.Background(), Query{Delta: 10, Region: db.Bounds()}, SearchOptions{}); err == nil {
		t.Error("empty keywords accepted")
	}
	if _, err := db.Run(context.Background(), Query{Keywords: []string{"cafe"}, Delta: 0, Region: db.Bounds()}, SearchOptions{}); err == nil {
		t.Error("zero ∆ accepted")
	}
	if _, err := db.Run(context.Background(), Query{Keywords: []string{"cafe"}, Delta: 1, Region: db.Bounds()},
		SearchOptions{Method: Method(99)}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := db.RunTopK(context.Background(), Query{Keywords: []string{"cafe"}, Delta: 1, Region: db.Bounds()}, 0, SearchOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestRunTopK(t *testing.T) {
	db := tinyDB(t)
	q := Query{Keywords: []string{"cafe"}, Delta: 120, Region: db.Bounds()}
	for _, m := range []Method{MethodTGEN, MethodAPP, MethodGreedy} {
		rs, err := db.RunTopK(context.Background(), q, 2, SearchOptions{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(rs) == 0 || len(rs) > 2 {
			t.Fatalf("%v: %d results", m, len(rs))
		}
		// Disjointness over parent node IDs.
		if len(rs) == 2 {
			seen := map[int]bool{}
			for _, n := range rs[0].Nodes {
				seen[n] = true
			}
			for _, n := range rs[1].Nodes {
				if seen[n] {
					t.Errorf("%v: top-2 regions overlap on node %d", m, n)
				}
			}
		}
	}
}

func TestRegionRestriction(t *testing.T) {
	db := tinyDB(t)
	// Λ covering only the north-west quadrant: the east cafe at (95,5)
	// is inside, the rest of the region must stay within Λ.
	q := Query{
		Keywords: []string{"cafe"},
		Delta:    250,
		Region:   Rect{MinX: -10, MinY: -10, MaxX: 110, MaxY: 110},
	}
	res, err := db.Run(context.Background(), q, SearchOptions{Method: MethodTGEN})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
	for _, n := range res.Nodes {
		// Grid nodes 0,1,3,4 are inside the quadrant (x,y ≤ 100).
		if n != 0 && n != 1 && n != 3 && n != 4 {
			t.Errorf("node %d outside Q.Λ", n)
		}
	}
}

func TestNYLikeFacade(t *testing.T) {
	db, err := NYLike(5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	qs, err := db.GenQueries(rng, 3, 2, 4e6, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		res, err := db.Run(context.Background(), q, SearchOptions{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res == nil || res.Score <= 0 {
			t.Fatalf("query %d: empty result %+v", i, res)
		}
	}
}

func TestMethodString(t *testing.T) {
	if MethodTGEN.String() != "TGEN" || MethodAPP.String() != "APP" ||
		MethodGreedy.String() != "Greedy" || Method(9).String() == "" {
		t.Error("Method.String broken")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := tinyDB(t)
	path := t.TempDir() + "/tiny.ds"
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumNodes() != db.NumNodes() || db2.NumObjects() != db.NumObjects() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			db2.NumNodes(), db2.NumObjects(), db.NumNodes(), db.NumObjects())
	}
	q := Query{Keywords: []string{"cafe"}, Delta: 250, Region: db.Bounds()}
	a, err := db.Run(context.Background(), q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := db2.Run(context.Background(), q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Objects) != len(b.Objects) {
		t.Errorf("loaded db answers differently: %d vs %d objects", len(a.Objects), len(b.Objects))
	}
	if _, err := Load("/nonexistent/path.ds"); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

func TestWeightingModes(t *testing.T) {
	db := tinyDB(t)
	base := Query{Keywords: []string{"cafe"}, Delta: 250, Region: db.Bounds()}
	var scores []float64
	for _, w := range []Weighting{WeightingRelevance, WeightingRating, WeightingLanguageModel} {
		q := base
		q.Weighting = w
		res, err := db.Run(context.Background(), q, SearchOptions{})
		if err != nil {
			t.Fatalf("weighting %d: %v", w, err)
		}
		if res == nil || res.Score <= 0 {
			t.Fatalf("weighting %d: empty result", w)
		}
		// All modes must find the same 3 cafes (matching is mode-independent).
		if len(res.Objects) != 3 {
			t.Errorf("weighting %d: %d objects, want 3", w, len(res.Objects))
		}
		scores = append(scores, res.Score)
	}
	// Modes produce different score magnitudes.
	if scores[0] == scores[1] && scores[1] == scores[2] {
		t.Error("all weightings produced identical scores; modes not wired")
	}
}

// A Database must serve concurrent queries: everything after construction
// is read-only (the B+-tree posting store serializes internally).
func TestConcurrentQueries(t *testing.T) {
	db, err := NYLike(9, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	qs, err := db.GenQueries(rng, 4, 2, 4e6, 3000)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range qs {
				res, err := db.Run(context.Background(), q, SearchOptions{})
				if err != nil {
					errs <- err
					return
				}
				if res == nil {
					errs <- fmt.Errorf("nil result")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
