package repro

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/httpapi"
)

// HTTPOptions configures a Server's HTTP front end (HTTPHandler).
type HTTPOptions struct {
	// Timeout bounds every /query request end to end — queueing and solve
	// — as a context deadline, answering 504 when it fires. A client may
	// tighten it per request with the timeout_ms body field but never
	// extend it. Zero leaves requests bounded only by the client
	// connection.
	Timeout time.Duration
}

// HTTPHandler exposes the server over HTTP as JSON:
//
//	POST /query  {"keywords": [...], "delta": 5000,
//	              "region": {"min_x":0,"min_y":0,"max_x":5000,"max_y":5000},
//	              "method": "tgen", "k": 1, "timeout_ms": 250}
//	GET  /stats  serving counters and latency percentiles
//
// Client disconnects cancel the solve mid-flight through the request
// context, a missed deadline answers 504, and a request shed by the
// server's queue-age policy answers 503 with Retry-After. The handler is
// stateless: serve it with net/http (cmd/lcmsr -serve -http does) and
// Close the Server on shutdown.
func (s *Server) HTTPHandler(opts HTTPOptions) http.Handler {
	return httpapi.NewHandler(httpBackend{s}, httpapi.Options{Timeout: opts.Timeout})
}

// maxHTTPTopK bounds the k an HTTP client may request: every rank costs
// one full solver run, so k is a work multiplier, not just a result
// count.
const maxHTTPTopK = 32

// httpBackend adapts a Server to the httpapi wire surface.
type httpBackend struct {
	s *Server
}

// Query implements httpapi.Backend.
func (b httpBackend) Query(ctx context.Context, req httpapi.QueryRequest) (httpapi.QueryResponse, error) {
	// Validate here so client mistakes answer 400; errors escaping the
	// engine itself (cancellation, overload, solver failure) pass through
	// for status mapping.
	if len(req.Keywords) == 0 {
		return httpapi.QueryResponse{}, fmt.Errorf("%w: keywords must be non-empty", httpapi.ErrBadRequest)
	}
	if req.Delta <= 0 {
		return httpapi.QueryResponse{}, fmt.Errorf("%w: delta must be positive, got %v", httpapi.ErrBadRequest, req.Delta)
	}
	// Cap k: each rank is one full solver run, so an unbounded k would
	// let one cheap request occupy a worker for NumNodes solves.
	if req.K < 0 || req.K > maxHTTPTopK {
		return httpapi.QueryResponse{}, fmt.Errorf("%w: k must be in [0, %d], got %d", httpapi.ErrBadRequest, maxHTTPTopK, req.K)
	}
	// Resolve the effective options explicitly and go through
	// DoWithOptions, not Do's zero-Search convention: a client naming the
	// method that happens to be the zero value (TGEN) must still override
	// a differently configured server.
	search := b.s.search
	if req.Method != "" {
		m, err := ParseMethod(req.Method)
		if err != nil {
			return httpapi.QueryResponse{}, fmt.Errorf("%w: %v", httpapi.ErrBadRequest, err)
		}
		search.Method = m
	}
	resp := b.s.DoWithOptions(ctx, Request{
		Query: Query{
			Keywords: req.Keywords,
			Delta:    req.Delta,
			Region: Rect{
				MinX: req.Region.MinX, MinY: req.Region.MinY,
				MaxX: req.Region.MaxX, MaxY: req.Region.MaxY,
			},
		},
		K:       req.K,
		Explain: req.Explain,
	}, search)
	if resp.Err != nil {
		return httpapi.QueryResponse{}, resp.Err
	}
	out := httpapi.QueryResponse{Matched: len(resp.Results) > 0}
	for _, r := range resp.Results {
		out.Regions = append(out.Regions, toWireRegion(r))
	}
	out.Plan = toWirePlan(resp.Plan)
	return out, nil
}

// toWirePlan converts a public Plan into its wire form (nil for nil).
func toWirePlan(p *Plan) *httpapi.Plan {
	if p == nil {
		return nil
	}
	out := &httpapi.Plan{
		Method:             p.Method.String(),
		Auto:               p.Auto,
		Degraded:           p.Degraded,
		Reason:             p.Reason,
		BudgetMs:           httpapi.MillisOf(p.Budget),
		EstimateMs:         httpapi.MillisOf(p.EstimatedCost),
		ActualMs:           httpapi.MillisOf(p.ActualCost),
		EstGreedyMs:        httpapi.MillisOf(p.EstGreedy),
		EstTGENMs:          httpapi.MillisOf(p.EstTGEN),
		EstAPPMs:           httpapi.MillisOf(p.EstAPP),
		Nodes:              p.Nodes,
		CellsInRect:        p.CellsInRect,
		CellsScanned:       p.CellsScanned,
		CellsSkipped:       p.CellsSkipped(),
		CellsSkippedEmpty:  p.CellsSkippedEmpty,
		CellsSkippedNoTerm: p.CellsSkippedNoTerm,
		CellsSkippedCache:  p.CellsSkippedCache,
		CellsPrunedWAND:    p.CellsPrunedWAND,
		PostingLists:       p.PostingLists,
		Postings:           p.Postings,
		PostingsFiltered:   p.PostingsFiltered,
		Candidates:         p.Candidates,
	}
	if p.Cluster != nil {
		out.Cluster = &httpapi.ClusterPlan{
			GroupsContacted:   p.Cluster.GroupsContacted,
			GroupsSkippedRect: p.Cluster.GroupsSkippedRect,
			GroupsSkippedTerm: p.Cluster.GroupsSkippedTerm,
		}
	}
	return out
}

// Stats implements httpapi.Backend.
func (b httpBackend) Stats() httpapi.Stats {
	st := b.s.Stats()
	out := httpapi.Stats{
		Served:  st.Served,
		Matched: st.Matched,
		Errors:  st.Errors,
		Shed:    st.Shed,
		Panics:  st.Panics,
		Window:  st.Window,
		P50Ms:   httpapi.MillisOf(st.P50),
		P95Ms:   httpapi.MillisOf(st.P95),
		P99Ms:   httpapi.MillisOf(st.P99),
		MaxMs:   httpapi.MillisOf(st.Max),
	}
	ss, ok := b.s.db.StoreStats()
	out.Tombstones = ss.Tombstones
	if ok && ss.ScoreCache != nil {
		out.ScoreCache = &httpapi.ScoreCacheStats{
			Hits:      ss.ScoreCache.Hits,
			Misses:    ss.ScoreCache.Misses,
			Evictions: ss.ScoreCache.Evictions,
			Entries:   ss.ScoreCache.Entries,
		}
	}
	return out
}

// toWireRegion converts a public Result into its wire form.
func toWireRegion(r *Result) httpapi.Region {
	out := httpapi.Region{
		Score:  r.Score,
		Length: r.Length,
		Nodes:  r.Nodes,
	}
	for _, e := range r.Edges {
		out.Edges = append(out.Edges, httpapi.Edge{U: e.U, V: e.V, Length: e.Length})
	}
	for _, o := range r.Objects {
		out.Objects = append(out.Objects, httpapi.Object{ID: o.ID, X: o.X, Y: o.Y, Score: o.Score})
	}
	return out
}
