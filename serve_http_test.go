package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// httpQueryBody builds the wire body for a public query.
func httpQueryBody(q Query, method string, k, timeoutMs int) []byte {
	body := map[string]any{
		"keywords": q.Keywords,
		"delta":    q.Delta,
		"region": map[string]float64{
			"min_x": q.Region.MinX, "min_y": q.Region.MinY,
			"max_x": q.Region.MaxX, "max_y": q.Region.MaxY,
		},
	}
	if method != "" {
		body["method"] = method
	}
	if k > 1 {
		body["k"] = k
	}
	if timeoutMs > 0 {
		body["timeout_ms"] = timeoutMs
	}
	b, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	return b
}

type wireRegion struct {
	Score   float64 `json:"score"`
	Length  float64 `json:"length"`
	Nodes   []int   `json:"nodes"`
	Objects []struct {
		ID int `json:"id"`
	} `json:"objects"`
}

type wireResponse struct {
	Matched bool         `json:"matched"`
	Regions []wireRegion `json:"regions"`
	Error   string       `json:"error"`
}

func postQuery(t *testing.T, url string, body []byte) (int, wireResponse) {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wr wireResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, wr
}

// TestHTTPQueryMatchesRun is the end-to-end guarantee for the HTTP front
// end: POST /query over a live server answers exactly what Run answers on
// the same database, for the default method and per-request overrides.
func TestHTTPQueryMatchesRun(t *testing.T) {
	db, qs := serveWorkload(t)
	srv, err := db.Serve(ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.HTTPHandler(HTTPOptions{Timeout: time.Minute}))
	defer ts.Close()

	for _, method := range []Method{MethodTGEN, MethodAPP, MethodGreedy} {
		var q Query
		var want *Result
		for _, cand := range qs {
			r, err := db.Run(context.Background(), cand, SearchOptions{Method: method})
			if err != nil {
				t.Fatal(err)
			}
			if r != nil {
				q, want = cand, r
				break
			}
		}
		if want == nil {
			t.Fatalf("%v: no query in the workload matched", method)
		}
		status, wr := postQuery(t, ts.URL, httpQueryBody(q, method.String(), 0, 0))
		if status != http.StatusOK {
			t.Fatalf("%v: status %d (%s)", method, status, wr.Error)
		}
		if !wr.Matched || len(wr.Regions) != 1 {
			t.Fatalf("%v: response %+v", method, wr)
		}
		got := wr.Regions[0]
		if got.Score != want.Score || got.Length != want.Length ||
			len(got.Nodes) != len(want.Nodes) || len(got.Objects) != len(want.Objects) {
			t.Fatalf("%v: HTTP answer differs from Run: got %v/%v/%d nodes, want %v/%v/%d",
				method, got.Score, got.Length, len(got.Nodes), want.Score, want.Length, len(want.Nodes))
		}
		for i := range got.Nodes {
			if got.Nodes[i] != want.Nodes[i] {
				t.Fatalf("%v: node set differs at %d", method, i)
			}
		}
	}
}

// TestHTTPTopK checks the k field reaches the top-k machinery.
func TestHTTPTopK(t *testing.T) {
	db, qs := serveWorkload(t)
	srv, err := db.Serve(ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.HTTPHandler(HTTPOptions{}))
	defer ts.Close()

	var q Query
	var want []*Result
	for _, cand := range qs {
		rs, err := db.RunTopK(context.Background(), cand, 2, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) >= 2 {
			q, want = cand, rs
			break
		}
	}
	if want == nil {
		t.Skip("no workload query yields two disjoint regions")
	}
	status, wr := postQuery(t, ts.URL, httpQueryBody(q, "", 2, 0))
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, wr.Error)
	}
	if len(wr.Regions) != len(want) {
		t.Fatalf("got %d regions, want %d", len(wr.Regions), len(want))
	}
	for i := range want {
		if wr.Regions[i].Score != want[i].Score {
			t.Fatalf("region %d score %v, want %v", i, wr.Regions[i].Score, want[i].Score)
		}
	}
}

// TestHTTPValidation checks 400s for client mistakes.
func TestHTTPValidation(t *testing.T) {
	db, qs := serveWorkload(t)
	srv, err := db.Serve(ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.HTTPHandler(HTTPOptions{}))
	defer ts.Close()

	cases := map[string][]byte{
		"no keywords":    httpQueryBody(Query{Delta: 10, Region: qs[0].Region}, "", 0, 0),
		"bad delta":      httpQueryBody(Query{Keywords: []string{"a"}, Delta: -1}, "", 0, 0),
		"unknown method": httpQueryBody(qs[0], "dijkstra", 0, 0),
		"oversized k":    httpQueryBody(qs[0], "", 100000, 0),
		"not json":       []byte("delta=5"),
	}
	for name, body := range cases {
		status, wr := postQuery(t, ts.URL, body)
		if status != http.StatusBadRequest || wr.Error == "" {
			t.Fatalf("%s: status %d error %q, want 400 with message", name, status, wr.Error)
		}
	}
}

// TestHTTPDeadline checks the per-request timeout: a 1ms budget on the
// full-extent APP stress query (which solves for hundreds of
// milliseconds) answers 504, and the server stays healthy afterwards.
func TestHTTPDeadline(t *testing.T) {
	db, err := NYLike(3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := db.GenQueries(rand.New(rand.NewSource(5)), 1, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	q.Region = db.Bounds()
	q.Delta = 50_000

	srv, err := db.Serve(ServeOptions{Workers: 1, Search: SearchOptions{Method: MethodAPP}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.HTTPHandler(HTTPOptions{Timeout: time.Minute}))
	defer ts.Close()

	status, wr := postQuery(t, ts.URL, httpQueryBody(q, "", 0, 1))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%+v), want 504", status, wr)
	}
	// The worker survived the cancelled solve; a fast method still answers.
	status, wr = postQuery(t, ts.URL, httpQueryBody(q, "greedy", 0, 0))
	if status != http.StatusOK {
		t.Fatalf("follow-up status %d (%s), want 200", status, wr.Error)
	}

	// Stats reflect the traffic, including the errored request.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Served int64 `json:"served"`
		Errors int64 `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	// The deadlined request is one error; whether it also counts as
	// served depends on where the 1ms deadline fired (mid-solve vs
	// rejected at admission or pickup on a loaded box), so only bound it.
	if st.Errors != 1 || st.Served < 1 || st.Served > 2 {
		t.Fatalf("stats served=%d errors=%d, want errors=1 and served in [1,2]", st.Served, st.Errors)
	}
}

// TestHTTPMethodOverrideOnNonDefaultServer guards the zero-value trap:
// MethodTGEN is Method's zero value, so an explicit "tgen" override must
// still win on a server configured with a different default.
func TestHTTPMethodOverrideOnNonDefaultServer(t *testing.T) {
	db, qs := serveWorkload(t)
	srv, err := db.Serve(ServeOptions{Workers: 1, Search: SearchOptions{Method: MethodAPP}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.HTTPHandler(HTTPOptions{}))
	defer ts.Close()

	var q Query
	var wantTGEN, wantAPP *Result
	for _, cand := range qs {
		rt, err := db.Run(context.Background(), cand, SearchOptions{Method: MethodTGEN})
		if err != nil {
			t.Fatal(err)
		}
		ra, err := db.Run(context.Background(), cand, SearchOptions{Method: MethodAPP})
		if err != nil {
			t.Fatal(err)
		}
		if rt != nil && ra != nil && rt.Score != ra.Score {
			q, wantTGEN, wantAPP = cand, rt, ra
			break
		}
	}
	if wantTGEN == nil {
		t.Skip("no workload query distinguishes TGEN from APP")
	}
	status, wr := postQuery(t, ts.URL, httpQueryBody(q, "tgen", 0, 0))
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, wr.Error)
	}
	if wr.Regions[0].Score != wantTGEN.Score {
		t.Fatalf("explicit tgen override returned score %v (APP default scores %v, TGEN %v)",
			wr.Regions[0].Score, wantAPP.Score, wantTGEN.Score)
	}
	// And no override still means the server default.
	status, wr = postQuery(t, ts.URL, httpQueryBody(q, "", 0, 0))
	if status != http.StatusOK || wr.Regions[0].Score != wantAPP.Score {
		t.Fatalf("default-path score %v, want APP %v", wr.Regions[0].Score, wantAPP.Score)
	}
}

// TestHTTPStatsScoreCache checks that enabling the hot-query score cache
// surfaces its counters on GET /stats — and that repeating a query over
// the HTTP path actually hits it.
func TestHTTPStatsScoreCache(t *testing.T) {
	db, qs := serveWorkload(t)
	db.SetScoreCache(256)
	srv, err := db.Serve(ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.HTTPHandler(HTTPOptions{Timeout: time.Minute}))
	defer ts.Close()

	body := httpQueryBody(qs[0], "", 0, 0)
	for i := 0; i < 3; i++ {
		if status, wr := postQuery(t, ts.URL, body); status != http.StatusOK {
			t.Fatalf("query %d: status %d (%s)", i, status, wr.Error)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Served     int64 `json:"served"`
		ScoreCache *struct {
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
			Entries int    `json:"entries"`
		} `json:"score_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 3 {
		t.Fatalf("served = %d, want 3", st.Served)
	}
	if st.ScoreCache == nil {
		t.Fatal("stats carry no score_cache fragment with the cache enabled")
	}
	if st.ScoreCache.Misses == 0 || st.ScoreCache.Entries == 0 {
		t.Fatalf("cache never filled: %+v", *st.ScoreCache)
	}
	if st.ScoreCache.Hits == 0 {
		t.Fatalf("repeated query never hit the cache: %+v", *st.ScoreCache)
	}
}

// TestHTTPExplain checks the EXPLAIN plan over the wire: an explain
// request answers a camelCase plan fragment (the documented jq surface:
// .plan.method, .plan.cellsSkipped), and a request without explain
// carries no plan key at all.
func TestHTTPExplain(t *testing.T) {
	db, qs := serveWorkload(t)
	srv, err := db.Serve(ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.HTTPHandler(HTTPOptions{Timeout: time.Minute}))
	defer ts.Close()

	body := map[string]any{
		"keywords": qs[0].Keywords,
		"delta":    qs[0].Delta,
		"region": map[string]float64{
			"min_x": qs[0].Region.MinX, "min_y": qs[0].Region.MinY,
			"max_x": qs[0].Region.MaxX, "max_y": qs[0].Region.MaxY,
		},
		"method":  "auto",
		"explain": true,
	}
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var wr struct {
		Plan *struct {
			Method       string  `json:"method"`
			Auto         bool    `json:"auto"`
			Reason       string  `json:"reason"`
			ActualMs     float64 `json:"actualMs"`
			CellsInRect  int64   `json:"cellsInRect"`
			CellsScanned int64   `json:"cellsScanned"`
			CellsSkipped int64   `json:"cellsSkipped"`
		} `json:"plan"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	if wr.Plan == nil {
		t.Fatal("explain request answered no plan")
	}
	if wr.Plan.Method == "" || !wr.Plan.Auto || wr.Plan.Reason == "" {
		t.Fatalf("plan incomplete: %+v", *wr.Plan)
	}
	if wr.Plan.CellsInRect != wr.Plan.CellsScanned+wr.Plan.CellsSkipped {
		t.Fatalf("cell accounting broken on the wire: %+v", *wr.Plan)
	}

	// Without explain, the plan key is absent entirely.
	delete(body, "explain")
	delete(body, "method")
	b, err = json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["plan"]; ok {
		t.Fatal("unexplained request leaked a plan fragment")
	}
}
