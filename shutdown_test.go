package repro

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/queryengine"
)

// TestServerCloseDuringInflightHTTP closes the server while HTTP clients
// are mid-request and more keep arriving: every request must finish with
// a real answer or a typed error status (no hangs, no panics), a second
// Close must be a no-op, and the worker goroutines must all exit.
func TestServerCloseDuringInflightHTTP(t *testing.T) {
	db, qs := serveWorkload(t)
	goroutinesBefore := runtime.NumGoroutine()
	srv, err := db.Serve(ServeOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.HTTPHandler(HTTPOptions{}))
	defer hs.Close()
	body := httpQueryBody(qs[0], "", 0, 0)

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Post(hs.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("post: %v", err)
					return
				}
				// Before Close: 200. After: the typed mapping of
				// ErrServerClosed (500 with its message) — never a hang.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
					t.Errorf("status %d, want 200 or 500", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let requests get in flight
	var closeWG sync.WaitGroup
	for i := 0; i < 3; i++ { // concurrent Close: must be idempotent and race-free
		closeWG.Add(1)
		go func() {
			defer closeWG.Done()
			srv.Close()
		}()
	}
	closeWG.Wait()
	wg.Wait()
	srv.Close() // double Close after the fact: still a no-op

	// A request after Close fails typed, not by hanging.
	if _, err := srv.Submit(context.Background(), qs[0]); !errors.Is(err, queryengine.ErrServerClosed) {
		t.Fatalf("submit after close = %v, want ErrServerClosed", err)
	}

	// The worker pool must be gone. The HTTP test server keeps its own
	// goroutines, so compare against the pre-Serve baseline with slack for
	// idle net/http keep-alive handlers that exit on their own schedule.
	hs.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after Close: %d, want <= %d (leak)", runtime.NumGoroutine(), goroutinesBefore+2)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterDoubleClose covers the same discipline one layer up: a
// Cluster's Close is idempotent, restores local serving on the database,
// and leaves no goroutines behind.
func TestClusterDoubleClose(t *testing.T) {
	coordDB, err := NYLike(4, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	nodeDB, err := NYLike(4, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := genTestQueries(coordDB)
	if err != nil {
		t.Fatal(err)
	}
	goroutinesBefore := runtime.NumGoroutine()
	addrs, _ := startClusterNodes(t, nodeDB, 1)
	cl, err := coordDB.OpenCluster(ClusterOptions{Nodes: addrs, Serve: ServeOptions{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp := cl.Do(context.Background(), Request{Query: qs[0]}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cl.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	wg.Wait()
	// Local serving is restored: the database answers without the cluster.
	if _, err := coordDB.Run(context.Background(), qs[0], SearchOptions{}); err != nil {
		t.Fatalf("local run after cluster close: %v", err)
	}
	// Node accept loops are still running (owned by startClusterNodes's
	// cleanup); only the coordinator-side goroutines must be gone, so
	// allow the node accept goroutines in the budget.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+len(addrs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after cluster close: %d, want <= %d", runtime.NumGoroutine(), goroutinesBefore+len(addrs))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
