package repro

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/queryengine"
)

// TestParseMethodAuto covers the Auto round trip through the string
// surface used by the HTTP front end and the CLI.
func TestParseMethodAuto(t *testing.T) {
	m, err := ParseMethod("auto")
	if err != nil || m != MethodAuto {
		t.Fatalf("ParseMethod(auto) = %v, %v; want MethodAuto", m, err)
	}
	if got := MethodAuto.String(); got != "Auto" {
		t.Fatalf("MethodAuto.String() = %q, want Auto", got)
	}
	if _, err := ParseMethod(MethodAuto.String()); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

// autoBudgetFor derives an explicit budget that makes the planner pick
// exactly `method`, using the per-method estimates an EXPLAIN probe
// reported for the same query. The estimate ladder is strictly
// increasing (Greedy < TGEN < APP), so:
//
//	huge budget        → APP  (2×estAPP ≤ budget)
//	2×estAPP − 1ns     → TGEN (APP no longer affordable, TGEN still is)
//	1ns                → Greedy (nothing else fits)
func autoBudgetFor(t *testing.T, pl *Plan, method Method) time.Duration {
	t.Helper()
	if pl == nil {
		t.Fatal("probe returned no plan")
	}
	if !(pl.EstGreedy < pl.EstTGEN && pl.EstTGEN < pl.EstAPP) {
		t.Fatalf("estimate ladder not strict: greedy=%v tgen=%v app=%v",
			pl.EstGreedy, pl.EstTGEN, pl.EstAPP)
	}
	switch method {
	case MethodAPP:
		return time.Hour
	case MethodTGEN:
		return 2*pl.EstAPP - time.Nanosecond
	case MethodGreedy:
		return time.Nanosecond
	}
	t.Fatalf("no auto budget for %v", method)
	return 0
}

// TestAutoGoldenSingleProcess is the planner's correctness guarantee on
// the one-shot path: for every method, MethodAuto steered onto that
// method by an explicit budget answers bit-identically to requesting the
// method directly — the planner only picks the solver, never changes the
// answer. It also pins down the EXPLAIN fields every answered plan must
// carry.
func TestAutoGoldenSingleProcess(t *testing.T) {
	db, qs := serveWorkload(t)
	ctx := context.Background()
	for _, q := range qs[:4] {
		probe := db.Do(ctx, Request{Query: q, Explain: true})
		if probe.Err != nil {
			t.Fatal(probe.Err)
		}
		for _, method := range []Method{MethodGreedy, MethodTGEN, MethodAPP} {
			want := db.Do(ctx, Request{Query: q, Search: SearchOptions{Method: method}})
			if want.Err != nil {
				t.Fatalf("%v direct: %v", method, want.Err)
			}
			budget := autoBudgetFor(t, probe.Plan, method)
			got := db.Do(ctx, Request{
				Query:   q,
				Search:  SearchOptions{Method: MethodAuto, Budget: budget},
				Explain: true,
			})
			if got.Err != nil {
				t.Fatalf("auto(%v): %v", method, got.Err)
			}
			pl := got.Plan
			if pl == nil {
				t.Fatalf("auto(%v): no plan on an explained request", method)
			}
			if pl.Method != method || !pl.Auto {
				t.Fatalf("auto budget %v resolved to %v (auto=%v), want %v",
					budget, pl.Method, pl.Auto, method)
			}
			if pl.Degraded {
				t.Fatalf("auto(%v): degraded at pressure 0", method)
			}
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Fatalf("auto(%v): results differ from the direct method", method)
			}
			if pl.Reason == "" || pl.Budget != budget || pl.EstimatedCost <= 0 {
				t.Fatalf("auto(%v): incomplete plan: reason=%q budget=%v est=%v",
					method, pl.Reason, pl.Budget, pl.EstimatedCost)
			}
			if pl.CellsInRect <= 0 ||
				pl.CellsInRect != pl.CellsScanned+pl.CellsSkipped() {
				t.Fatalf("auto(%v): cell accounting broken: in-rect=%d scanned=%d skipped=%d",
					method, pl.CellsInRect, pl.CellsScanned, pl.CellsSkipped())
			}
			if pl.Cluster != nil {
				t.Fatalf("auto(%v): cluster fragment on a single-process request", method)
			}
		}
		// A client-requested method still explains, without the auto bit.
		direct := db.Do(ctx, Request{Query: q, Search: SearchOptions{Method: MethodGreedy}, Explain: true})
		if direct.Err != nil || direct.Plan == nil {
			t.Fatalf("direct explain: (%v, %v)", direct.Plan, direct.Err)
		}
		if direct.Plan.Auto || direct.Plan.Method != MethodGreedy ||
			!strings.Contains(direct.Plan.Reason, "client") {
			t.Fatalf("direct explain plan wrong: %+v", direct.Plan)
		}
	}
}

// TestAutoGoldenServed runs the same guarantee through the streaming
// server under -race: concurrent Auto requests resolve on the workers
// and stay bit-identical to the direct method.
func TestAutoGoldenServed(t *testing.T) {
	db, qs := serveWorkload(t)
	ctx := context.Background()
	srv, err := db.Serve(ServeOptions{Workers: 2, Search: SearchOptions{Method: MethodAuto}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, q := range qs[:4] {
		probe := db.Do(ctx, Request{Query: q, Explain: true})
		if probe.Err != nil {
			t.Fatal(probe.Err)
		}
		for _, method := range []Method{MethodGreedy, MethodTGEN, MethodAPP} {
			want := db.Do(ctx, Request{Query: q, Search: SearchOptions{Method: method}})
			if want.Err != nil {
				t.Fatalf("%v direct: %v", method, want.Err)
			}
			budget := autoBudgetFor(t, probe.Plan, method)
			got := srv.Do(ctx, Request{
				Query:   q,
				Search:  SearchOptions{Method: MethodAuto, Budget: budget},
				Explain: true,
			})
			if got.Err != nil {
				t.Fatalf("served auto(%v): %v", method, got.Err)
			}
			if got.Plan == nil || got.Plan.Method != method {
				t.Fatalf("served auto(%v): plan %+v", method, got.Plan)
			}
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Fatalf("served auto(%v): results differ from the direct method", method)
			}
		}
	}
	// A server configured with MethodAuto serves zero-Search requests by
	// resolving per request (the configured default is Auto itself).
	if resp := srv.Do(ctx, Request{Query: qs[0], Explain: true}); resp.Err != nil ||
		resp.Plan == nil || !resp.Plan.Auto || resp.Plan.Method == MethodAuto {
		t.Fatalf("auto-configured server: plan %+v err %v", resp.Plan, resp.Err)
	}
}

// TestAutoGoldenCluster extends the golden guarantee across the
// cluster: the coordinator plans with its local routing index, nodes
// fill trace fragments, and the answers match the single-process direct
// method bit for bit. The explained plans must also carry the merged
// cluster routing fragment.
func TestAutoGoldenCluster(t *testing.T) {
	ref, qs := serveWorkload(t)
	coordDB, err := NYLike(4, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	nodeDB, err := NYLike(4, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startClusterNodes(t, nodeDB, 1)
	cl, err := coordDB.OpenCluster(ClusterOptions{Nodes: addrs, Serve: ServeOptions{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	for _, q := range qs[:3] {
		probe := cl.Do(ctx, Request{Query: q, Explain: true})
		if probe.Err != nil {
			t.Fatal(probe.Err)
		}
		if probe.Plan == nil || probe.Plan.Cluster == nil {
			t.Fatalf("cluster explain lost its routing fragment: %+v", probe.Plan)
		}
		if probe.Plan.Cluster.GroupsContacted <= 0 {
			t.Fatalf("cluster plan contacted no groups: %+v", probe.Plan.Cluster)
		}
		for _, method := range []Method{MethodGreedy, MethodTGEN, MethodAPP} {
			want, err := ref.Run(ctx, q, SearchOptions{Method: method})
			if err != nil {
				t.Fatalf("%v direct: %v", method, err)
			}
			budget := autoBudgetFor(t, probe.Plan, method)
			got := cl.Do(ctx, Request{
				Query:   q,
				Search:  SearchOptions{Method: MethodAuto, Budget: budget},
				Explain: true,
			})
			if got.Err != nil {
				t.Fatalf("cluster auto(%v): %v", method, got.Err)
			}
			if got.Plan == nil || got.Plan.Method != method {
				t.Fatalf("cluster auto(%v): plan %+v", method, got.Plan)
			}
			if !reflect.DeepEqual(got.Best(), want) {
				t.Fatalf("cluster auto(%v): answer differs from single-process", method)
			}
		}
	}
}

// TestAutoDegradesBeforeShed drives the load-degradation policy end to
// end: requests queued past half the shedding threshold are served one
// rung cheaper (APP→TGEN here) and still succeed, while requests queued
// past the full threshold are shed with ErrOverloaded — degradation
// structurally precedes shedding.
//
// The single worker is held deterministically by an engine task whose
// Visit blocks on a channel the test releases, so the queued requests'
// waits (and with them the pressure the planner sees) are controlled by
// the test, not by solver speed.
func TestAutoDegradesBeforeShed(t *testing.T) {
	db, qs := serveWorkload(t)
	const maxAge = time.Second
	srv, err := db.Serve(ServeOptions{
		Workers:     1,
		Queue:       4,
		Search:      SearchOptions{Method: MethodAuto},
		MaxQueueAge: maxAge,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dq, err := toDatasetQuery(qs[0])
	if err != nil {
		t.Fatal(err)
	}

	// holdWorker occupies the worker for exactly d: the engine task's
	// Visit blocks until a timer releases it.
	holdWorker := func(d time.Duration) chan error {
		release := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			tk := queryengine.Task{Ctx: context.Background(), Query: dq}
			tk.Visit = func(*dataset.QueryInstance) error { <-release; return nil }
			done <- srv.inner.Do(&tk)
		}()
		time.AfterFunc(d, func() { close(release) })
		time.Sleep(50 * time.Millisecond) // the worker is now inside Visit
		return done
	}

	autoReq := Request{
		Query:   qs[1],
		Search:  SearchOptions{Method: MethodAuto, Budget: time.Hour}, // undegraded choice: APP
		Explain: true,
	}

	// Phase 1: queued for ~600ms of a 1s threshold → pressure ≈ 0.6,
	// inside the degradation band [0.5, 1.0]. Both queued requests must
	// succeed, degraded one rung below APP.
	hold := holdWorker(600 * time.Millisecond)
	resps := make(chan Response, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resps <- srv.Do(context.Background(), autoReq)
		}()
	}
	degraded := 0
	for i := 0; i < 2; i++ {
		resp := <-resps
		if resp.Err != nil {
			t.Fatalf("phase 1 request failed: %v", resp.Err)
		}
		pl := resp.Plan
		if pl == nil {
			t.Fatal("phase 1: no plan")
		}
		if pl.Degraded {
			degraded++
			if pl.Method != MethodTGEN {
				t.Fatalf("degraded from APP to %v, want TGEN", pl.Method)
			}
			if pl.Pressure < 0.5 || pl.Pressure > 1.0 {
				t.Fatalf("degraded at pressure %.2f, want [0.5, 1.0]", pl.Pressure)
			}
			if !strings.Contains(pl.Reason, "degraded") {
				t.Fatalf("degraded plan reason does not say so: %q", pl.Reason)
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no phase-1 request was degraded (expected pressure ≈ 0.6)")
	}
	if err := <-hold; err != nil {
		t.Fatalf("hold task: %v", err)
	}

	// Phase 2: queued past the full threshold → shed, never answered.
	hold = holdWorker(1300 * time.Millisecond)
	shed := make(chan Response, 1)
	go func() {
		shed <- srv.Do(context.Background(), autoReq)
	}()
	if resp := <-shed; !errors.Is(resp.Err, ErrOverloaded) {
		t.Fatalf("phase 2 err = %v, want ErrOverloaded", resp.Err)
	}
	if err := <-hold; err != nil {
		t.Fatalf("hold task: %v", err)
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Shed)
	}
}

// TestExplainScoreCacheHits checks that the plan's skip accounting sees
// the score cache: a cold query scans cells, an identical repeat replays
// them from the cache, and both answers are bit-identical.
func TestExplainScoreCacheHits(t *testing.T) {
	db, qs := serveWorkload(t)
	db.SetScoreCache(1 << 12)
	ctx := context.Background()
	q := qs[0]

	cold := db.Do(ctx, Request{Query: q, Explain: true})
	if cold.Err != nil || cold.Plan == nil {
		t.Fatalf("cold: (%+v, %v)", cold.Plan, cold.Err)
	}
	if cold.Plan.CellsSkippedCache != 0 {
		t.Fatalf("cold query hit the cache: %d", cold.Plan.CellsSkippedCache)
	}
	if cold.Plan.CellsScanned == 0 || cold.Plan.PostingLists == 0 || cold.Plan.Postings == 0 {
		t.Fatalf("cold plan counted no scan work: %+v", cold.Plan)
	}

	warm := db.Do(ctx, Request{Query: q, Explain: true})
	if warm.Err != nil || warm.Plan == nil {
		t.Fatalf("warm: (%+v, %v)", warm.Plan, warm.Err)
	}
	if warm.Plan.CellsSkippedCache == 0 {
		t.Fatal("repeat query skipped no cells via the score cache")
	}
	if warm.Plan.CellsScanned >= cold.Plan.CellsScanned {
		t.Fatalf("warm scan did not shrink: cold=%d warm=%d",
			cold.Plan.CellsScanned, warm.Plan.CellsScanned)
	}
	// Every non-empty in-rect cell lands in exactly one of scanned /
	// no-term / cache-hit; the cache only moves cells between buckets
	// (interior no-term cells are cached too), never changes the total.
	coldTotal := cold.Plan.CellsScanned + cold.Plan.CellsSkippedNoTerm + cold.Plan.CellsSkippedCache
	warmTotal := warm.Plan.CellsScanned + warm.Plan.CellsSkippedNoTerm + warm.Plan.CellsSkippedCache
	if coldTotal != warmTotal || warm.Plan.CellsInRect != cold.Plan.CellsInRect {
		t.Fatalf("cell accounting drifted: cold total %d (in-rect %d), warm total %d (in-rect %d)",
			coldTotal, cold.Plan.CellsInRect, warmTotal, warm.Plan.CellsInRect)
	}
	if !reflect.DeepEqual(warm.Results, cold.Results) {
		t.Fatal("cache replay changed the answer")
	}
}
