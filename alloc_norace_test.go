//go:build !race

package repro

// Allocation-regression tests for the served hot path. The race detector
// instruments allocations, so these run only in non-race builds (the CI
// race step covers the same code for correctness, not allocs).

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/queryengine"
)

// TestServedSearchPathZeroAlloc pins the PR's core claim: a planner-driven
// served query — request channel round trip, query preparation, grid
// search, subgraph extraction, instance build, latency record — performs
// zero steady-state allocations. The solver is exercised separately (it
// still allocates its region).
func TestServedSearchPathZeroAlloc(t *testing.T) {
	d, err := dataset.NYLike(dataset.Config{Seed: 3, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	qs, err := d.GenQueries(rng, 16, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	srv := queryengine.NewServer(d, queryengine.ServerOptions{Workers: 1})
	defer srv.Close()
	task := queryengine.Task{Visit: func(*dataset.QueryInstance) error { return nil }}
	replay := func() {
		for _, q := range qs {
			task.Query = q
			if err := srv.Do(&task); err != nil {
				t.Fatal(err)
			}
		}
	}
	replay() // warm every pooled buffer across the whole workload
	replay()
	if allocs := testing.AllocsPerRun(3, replay); allocs != 0 {
		t.Fatalf("served search path allocated %.1f times per %d-query replay, want 0", allocs, len(qs))
	}
}

// TestPlannerInstantiateZeroAlloc is the same claim one layer down, without
// the server: a pooled planner's Instantiate is allocation-free once warm.
func TestPlannerInstantiateZeroAlloc(t *testing.T) {
	d, err := dataset.NYLike(dataset.Config{Seed: 3, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	qs, err := d.GenQueries(rng, 16, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	p := d.NewPlanner()
	replay := func() {
		for _, q := range qs {
			if _, err := p.Instantiate(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	replay()
	replay()
	if allocs := testing.AllocsPerRun(3, replay); allocs != 0 {
		t.Fatalf("planner replay allocated %.1f times per %d queries, want 0", allocs, len(qs))
	}
}
