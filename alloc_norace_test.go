//go:build !race

package repro

// Allocation-regression tests for the served hot path. The race detector
// instruments allocations, so these run only in non-race builds (the CI
// race step covers the same code for correctness, not allocs).

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/queryengine"
)

// allocWorkload builds the shared NY-scale dataset and query workload the
// allocation gates replay.
func allocWorkload(t *testing.T, querySeed int64) (*dataset.Dataset, []dataset.Query) {
	t.Helper()
	d, err := dataset.NYLike(dataset.Config{Seed: 3, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(querySeed))
	qs, err := d.GenQueries(rng, 16, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	return d, qs
}

// TestServedSearchPathZeroAlloc pins PR 2's claim: a planner-driven served
// query — request channel round trip, query preparation, grid search,
// subgraph extraction, instance build, latency record — performs zero
// steady-state allocations. TestServedQueryZeroAlloc below extends the
// claim through the solve phase.
func TestServedSearchPathZeroAlloc(t *testing.T) {
	d, qs := allocWorkload(t, 5)
	srv := queryengine.NewServer(d, queryengine.ServerOptions{Workers: 1})
	defer srv.Close()
	task := queryengine.Task{Visit: func(*dataset.QueryInstance) error { return nil }}
	replay := func() {
		for _, q := range qs {
			task.Query = q
			if err := srv.Do(&task); err != nil {
				t.Fatal(err)
			}
		}
	}
	replay() // warm every pooled buffer across the whole workload
	replay()
	if allocs := testing.AllocsPerRun(3, replay); allocs != 0 {
		t.Fatalf("served search path allocated %.1f times per %d-query replay, want 0", allocs, len(qs))
	}
}

// TestServedQueryZeroAlloc is the tentpole gate: the FULL served query —
// Submit through the request channel, search path, solver (pooled scratch:
// region arena, tuple arrays, kmst/pcst state), and answer mapping back to
// parent node IDs — performs zero steady-state allocations for every
// solver method.
func TestServedQueryZeroAlloc(t *testing.T) {
	d, qs := allocWorkload(t, 5)
	for _, method := range []queryengine.Method{
		queryengine.MethodTGEN, queryengine.MethodAPP, queryengine.MethodGreedy,
	} {
		t.Run(method.String(), func(t *testing.T) {
			srv := queryengine.NewServer(d, queryengine.ServerOptions{
				Workers: 1,
				Options: queryengine.Options{Method: method},
			})
			defer srv.Close()
			task := queryengine.Task{}
			matched := 0
			replay := func() {
				for _, q := range qs {
					task.Query = q
					if err := srv.Do(&task); err != nil {
						t.Fatal(err)
					}
					if task.Result.Matched {
						matched++
					}
				}
			}
			replay() // warm every pooled buffer across the whole workload
			replay()
			if matched == 0 {
				t.Fatal("workload matched nothing; the gate would be vacuous")
			}
			if allocs := testing.AllocsPerRun(3, replay); allocs != 0 {
				t.Fatalf("%v served query allocated %.1f times per %d-query replay, want 0",
					method, allocs, len(qs))
			}
		})
	}
}

// TestServedQueryZeroAllocAfterUpdates re-pins the zero-alloc claim on a
// dataset that has absorbed live updates: inserts, deletes and reweights
// followed by a compaction must leave the served path — request round
// trip, search over the mutated posting lists, pooled solve, answer
// mapping — allocation-free, i.e. the mutability layer costs nothing on
// the memtable-empty fast path.
func TestServedQueryZeroAllocAfterUpdates(t *testing.T) {
	d, qs := allocWorkload(t, 5)
	rng := rand.New(rand.NewSource(11))
	bounds := d.Graph.BBox()
	for i := 0; i < 40; i++ {
		switch rng.Intn(3) {
		case 0:
			p := geo.Point{
				X: bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX),
				Y: bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY),
			}
			if _, err := d.Insert(p, "cafe museum park"); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := d.Delete(grid.ObjectID(rng.Intn(len(d.Objects) / 2))); err != nil &&
				!errors.Is(err, grid.ErrNoSuchObject) {
				t.Fatal(err)
			}
		default:
			id := grid.ObjectID(rng.Intn(len(d.Objects)))
			if err := d.Reweight(id, 0.5+rng.Float64()); err != nil &&
				!errors.Is(err, grid.ErrNoSuchObject) {
				t.Fatal(err)
			}
		}
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	srv := queryengine.NewServer(d, queryengine.ServerOptions{Workers: 1})
	defer srv.Close()
	task := queryengine.Task{Visit: func(*dataset.QueryInstance) error { return nil }}
	replay := func() {
		for _, q := range qs {
			task.Query = q
			if err := srv.Do(&task); err != nil {
				t.Fatal(err)
			}
		}
	}
	replay() // warm pooled buffers against the post-update object count
	replay()
	if allocs := testing.AllocsPerRun(3, replay); allocs != 0 {
		t.Fatalf("served path allocated %.1f times per %d-query replay after live updates, want 0",
			allocs, len(qs))
	}
}

// TestPlannerInstantiateZeroAlloc is the same claim one layer down, without
// the server: a pooled planner's Instantiate is allocation-free once warm.
func TestPlannerInstantiateZeroAlloc(t *testing.T) {
	d, err := dataset.NYLike(dataset.Config{Seed: 3, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	qs, err := d.GenQueries(rng, 16, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	p := d.NewPlanner()
	replay := func() {
		for _, q := range qs {
			if _, err := p.Instantiate(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	replay()
	replay()
	if allocs := testing.AllocsPerRun(3, replay); allocs != 0 {
		t.Fatalf("planner replay allocated %.1f times per %d queries, want 0", allocs, len(qs))
	}
}
