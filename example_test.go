package repro_test

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// Example demonstrates the full pipeline on a hand-built street grid:
// three cafes cluster on two adjacent blocks, and the LCMSR query finds
// the connected street region covering all of them within the budget.
func Example() {
	nodes := []repro.NodeSpec{
		{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0},
		{X: 0, Y: 100}, {X: 100, Y: 100}, {X: 200, Y: 100},
	}
	edges := []repro.EdgeSpec{
		{U: 0, V: 1}, {U: 1, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5},
		{U: 0, V: 3}, {U: 1, V: 4}, {U: 2, V: 5},
	}
	objects := []repro.ObjectSpec{
		{X: 5, Y: 0, Text: "cafe espresso"},
		{X: 100, Y: 5, Text: "cafe"},
		{X: 0, Y: 95, Text: "cafe bakery"},
		{X: 200, Y: 100, Text: "hardware store"},
	}
	db, err := repro.New(nodes, edges, objects)
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Run(context.Background(), repro.Query{
		Keywords: []string{"cafe"},
		Delta:    220,
		Region:   db.Bounds(),
	}, repro.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cafes in region: %d\n", len(res.Objects))
	fmt.Printf("street length: %.0f m (budget 220 m)\n", res.Length)
	// Output:
	// cafes in region: 3
	// street length: 200 m (budget 220 m)
}
