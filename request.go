package repro

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/queryengine"
)

// Request is the unified query request: every way into the system —
// one-shot (Database.Do), batch (Database.RunBatch), streaming
// (Server.Do), and the HTTP front end — speaks this shape. Run, RunTopK
// and Submit remain as thin wrappers over it.
type Request struct {
	// Query is the LCMSR query ⟨ψ, ∆, Λ⟩.
	Query Query
	// Search selects the algorithm and its tuning. For Database.Do the
	// zero value selects the defaults (TGEN with the paper's knobs). For
	// Server.Do the zero value means "use the server's configured
	// defaults"; any non-zero Search overrides them for this request
	// only. Because plain TGEN defaults ARE the zero value, they cannot
	// be forced through this field on a server configured with another
	// method — use Server.DoWithOptions for that.
	Search SearchOptions
	// K, when > 1, asks for the top-K pairwise-disjoint regions in
	// decreasing quality order (§6.2); K <= 1 returns the single best
	// region.
	K int
}

// Response is the unified query outcome. Results is empty when no object
// inside Q.Λ matches the keywords (and Err is nil — an empty answer is
// not an error), or when Err is set.
type Response struct {
	// Results holds up to max(1, K) regions, best first.
	Results []*Result
	// Err is the request error: validation, solver failure, ctx.Err()
	// after a cancellation or missed deadline, or ErrOverloaded when the
	// server shed the request.
	Err error
}

// Best returns the best region of the response, or nil when the response
// is empty or errored.
func (r Response) Best() *Result {
	if len(r.Results) == 0 {
		return nil
	}
	return r.Results[0]
}

// Do answers one request against the database. ctx bounds the work: the
// solvers carry cancellation checkpoints, so a cancelled or expired
// context makes Do return ctx.Err() in Response.Err within a bounded
// number of solver iterations (top-K requests are cancelled at rank
// granularity). Do is the one-shot form; use RunBatch for workloads and
// Serve for continuous traffic.
func (db *Database) Do(ctx context.Context, req Request) Response {
	dq, err := toDatasetQuery(req.Query)
	if err != nil {
		return Response{Err: fmt.Errorf("repro: %w", err)}
	}
	qeOpts, err := toEngineOptions(req.Search, 1)
	if err != nil {
		return Response{Err: err}
	}
	qi, err := db.ds.Instantiate(dq)
	if err != nil {
		return Response{Err: err}
	}
	if req.K > 1 {
		results, err := db.topK(ctx, qi, dq.Delta, req.K, req.Search)
		return Response{Results: results, Err: err}
	}
	region, err := queryengine.Solve(ctx, qi, dq.Delta, qeOpts)
	if err != nil {
		return Response{Err: err}
	}
	if region == nil {
		return Response{}
	}
	return Response{Results: []*Result{db.materialize(qi, region)}}
}

// topK answers the top-k form on a materialized instance; shared by
// Database.Do and Server.Do.
func (db *Database) topK(ctx context.Context, qi *dataset.QueryInstance, delta float64, k int, opts SearchOptions) ([]*Result, error) {
	appOpts, tgenOpts, greedyOpts := toCoreOptions(opts, qi.In.NumNodes)
	var regions []*core.Region
	var err error
	switch opts.Method {
	case MethodAPP:
		regions, err = core.TopKAPP(ctx, qi.In, delta, k, appOpts)
	case MethodGreedy:
		regions, err = core.TopKGreedy(ctx, qi.In, delta, k, greedyOpts)
	case MethodTGEN:
		regions, err = core.TopKTGEN(ctx, qi.In, delta, k, tgenOpts)
	default:
		return nil, fmt.Errorf("repro: unknown method %v", opts.Method)
	}
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(regions))
	for _, r := range regions {
		out = append(out, db.materialize(qi, r))
	}
	return out, nil
}
