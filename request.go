package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/queryengine"
)

// Request is the unified query request: every way into the system —
// one-shot (Database.Do), batch (Database.RunBatch), streaming
// (Server.Do), and the HTTP front end — speaks this shape. Run, RunTopK
// and Submit remain as thin wrappers over it.
type Request struct {
	// Query is the LCMSR query ⟨ψ, ∆, Λ⟩.
	Query Query
	// Search selects the algorithm and its tuning. For Database.Do the
	// zero value selects the defaults (TGEN with the paper's knobs). For
	// Server.Do the zero value means "use the server's configured
	// defaults"; any non-zero Search overrides them for this request
	// only. Because plain TGEN defaults ARE the zero value, they cannot
	// be forced through this field on a server configured with another
	// method — use Server.DoWithOptions for that.
	Search SearchOptions
	// K, when > 1, asks for the top-K pairwise-disjoint regions in
	// decreasing quality order (§6.2); K <= 1 returns the single best
	// region.
	K int
	// Explain asks for an EXPLAIN annotation: the answered Response
	// carries a Plan describing the method choice, estimated vs. actual
	// cost, and what the search scanned vs. skipped. Results are
	// bit-identical with or without it; the plan costs one allocation and
	// some counters, paid only by requests that opt in.
	Explain bool
}

// Response is the unified query outcome. Results is empty when no object
// inside Q.Λ matches the keywords (and Err is nil — an empty answer is
// not an error), or when Err is set.
type Response struct {
	// Results holds up to max(1, K) regions, best first.
	Results []*Result
	// Err is the request error: validation, solver failure, ctx.Err()
	// after a cancellation or missed deadline, or ErrOverloaded when the
	// server shed the request.
	Err error
	// Plan is the EXPLAIN annotation, set only when the request asked for
	// it (Request.Explain) and was answered (nil on error). The caller
	// owns it; nothing in it aliases pooled serving state.
	Plan *Plan
}

// Best returns the best region of the response, or nil when the response
// is empty or errored.
func (r Response) Best() *Result {
	if len(r.Results) == 0 {
		return nil
	}
	return r.Results[0]
}

// Do answers one request against the database. ctx bounds the work: the
// solvers carry cancellation checkpoints, so a cancelled or expired
// context makes Do return ctx.Err() in Response.Err within a bounded
// number of solver iterations (top-K requests are cancelled at rank
// granularity). Do is the one-shot form; use RunBatch for workloads and
// Serve for continuous traffic.
func (db *Database) Do(ctx context.Context, req Request) Response {
	dq, err := toDatasetQuery(req.Query)
	if err != nil {
		return Response{Err: fmt.Errorf("repro: %w", err)}
	}
	dq.Trace = req.Explain
	search := req.Search
	// Validate the tuning knobs (and any concrete method) before doing
	// instantiate work. MethodAuto is resolved after instantiation, when
	// the instance size is known, so it is probed as its cheapest
	// resolution here.
	probe := search
	if probe.Method == MethodAuto {
		probe.Method = MethodTGEN
	}
	if _, err := toEngineOptions(probe, 1); err != nil {
		return Response{Err: err}
	}
	started := time.Now()
	qi, err := db.ds.Instantiate(dq)
	if err != nil {
		return Response{Err: err}
	}
	search, pl := db.planQuery(ctx, qi, dq.Lambda, search, 0, req.Explain)
	if req.K > 1 {
		results, err := db.topK(ctx, qi, dq.Delta, req.K, search)
		if err != nil {
			return Response{Err: err}
		}
		pl.finish(qi, started, 0)
		return Response{Results: results, Plan: pl}
	}
	qeOpts, err := toEngineOptions(search, 1)
	if err != nil {
		return Response{Err: err}
	}
	region, err := queryengine.Solve(ctx, qi, dq.Delta, qeOpts)
	if err != nil {
		return Response{Err: err}
	}
	pl.finish(qi, started, 0)
	if region == nil {
		return Response{Plan: pl}
	}
	return Response{Results: []*Result{db.materialize(qi, region)}, Plan: pl}
}

// topK answers the top-k form on a materialized instance; shared by
// Database.Do and Server.Do.
func (db *Database) topK(ctx context.Context, qi *dataset.QueryInstance, delta float64, k int, opts SearchOptions) ([]*Result, error) {
	appOpts, tgenOpts, greedyOpts := toCoreOptions(opts, qi.In.NumNodes)
	var regions []*core.Region
	var err error
	switch opts.Method {
	case MethodAPP:
		regions, err = core.TopKAPP(ctx, qi.In, delta, k, appOpts)
	case MethodGreedy:
		regions, err = core.TopKGreedy(ctx, qi.In, delta, k, greedyOpts)
	case MethodTGEN:
		regions, err = core.TopKTGEN(ctx, qi.In, delta, k, tgenOpts)
	case MethodAuto:
		// Do/Serve resolve Auto before reaching here; only a direct misuse
		// of the helper could land it.
		return nil, fmt.Errorf("repro: MethodAuto reached the solver unresolved")
	default:
		return nil, fmt.Errorf("repro: unknown method %v", opts.Method)
	}
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(regions))
	for _, r := range regions {
		out = append(out, db.materialize(qi, r))
	}
	return out, nil
}
