package repro

// One benchmark per table/figure of the paper's evaluation (§7), plus
// per-algorithm micro benchmarks. Each figure benchmark drives the same
// runner cmd/benchfig uses, on a reduced environment so `go test -bench=.`
// finishes in minutes; run cmd/benchfig for full-size tables.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/queryengine"
	"repro/internal/textindex"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

func sharedEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.Config{Scale: 0.15, Queries: 2, Seed: 11})
	})
	return benchEnv
}

func benchTable(b *testing.B, run func() (experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkTable1BinarySearchTrace(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, e.Table1)
}

func BenchmarkFig07Fig08APPAlphaSweep(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, e.Fig7And8)
}

func BenchmarkFig09Fig10TGENAlphaSweep(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, e.Fig9And10)
}

func BenchmarkFig11Fig12APPBetaSweep(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, e.Fig11And12)
}

func BenchmarkFig13Fig14GreedyMuSweep(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, e.Fig13And14)
}

func BenchmarkFig15aKeywordsNY(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, func() (experiments.Table, error) { return e.Fig15(experiments.SweepKeywords) })
}

func BenchmarkFig15cDeltaNY(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, func() (experiments.Table, error) { return e.Fig15(experiments.SweepDelta) })
}

func BenchmarkFig15eLambdaNY(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, func() (experiments.Table, error) { return e.Fig15(experiments.SweepLambda) })
}

func BenchmarkFig16aKeywordsUSANW(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, func() (experiments.Table, error) { return e.Fig16(experiments.SweepKeywords) })
}

func BenchmarkFig16cDeltaUSANW(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, func() (experiments.Table, error) { return e.Fig16(experiments.SweepDelta) })
}

func BenchmarkFig16eLambdaUSANW(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, func() (experiments.Table, error) { return e.Fig16(experiments.SweepLambda) })
}

func BenchmarkFig17to19ExampleRegions(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, e.Examples)
}

func BenchmarkFig20MaxRSComparison(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, e.MaxRSComparison)
}

func BenchmarkFig21TopKNY(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, func() (experiments.Table, error) { return e.TopK("NY") })
}

func BenchmarkFig22TopKUSANW(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, func() (experiments.Table, error) { return e.TopK("USANW") })
}

func BenchmarkAblationKMSTSolvers(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, e.AblationKMST)
}

func BenchmarkAblationTGENEdgeOrder(b *testing.B) {
	e := sharedEnv(b)
	benchTable(b, e.AblationOrder)
}

// --- workload throughput through the parallel query engine --------------

var (
	tputOnce sync.Once
	tputDS   *dataset.Dataset
	tputQS   []dataset.Query
)

func throughputWorkload(b *testing.B) (*dataset.Dataset, []dataset.Query) {
	b.Helper()
	tputOnce.Do(func() {
		d, err := dataset.NYLike(dataset.Config{Seed: 3, Scale: 0.2})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(5))
		qs, err := d.GenQueries(rng, 64, 3, 25e6, 5000)
		if err != nil {
			panic(err)
		}
		tputDS, tputQS = d, qs
	})
	return tputDS, tputQS
}

// BenchmarkQueryThroughput answers a fixed 64-query TGEN workload through
// the worker-pool engine end-to-end (grid lookup → CSR extraction →
// solver) and reports queries/s per worker count.
func BenchmarkQueryThroughput(b *testing.B) {
	d, qs := throughputWorkload(b)
	workerCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workerCounts = append(workerCounts, p)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := queryengine.Run(context.Background(), d, qs, queryengine.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != len(qs) {
					b.Fatal("missing results")
				}
			}
			b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkServeQuery replays a served workload through the streaming
// server with one reusable Task per benchmark.
//
//   - searchpath measures the planner-driven served query up to (not
//     including) the solver — request round trip, PrepareQueryInto,
//     SearchInto, CSR extraction, instance build, latency record.
//   - tgen-e2e / app-e2e / greedy-e2e measure the full served path per
//     solver method — search, pooled solve, and result mapping, i.e. what
//     a real client sees.
//   - hot-cached replays a Zipfian hot-spot workload (8 distinct queries)
//     on a fresh dataset with the hot-query score cache enabled: after
//     warm-up, every repeat's fully-inside cells come from the cache.
//
// Every sub-benchmark must report 0 B/op, 0 allocs/op steady-state
// (asserted by TestServedSearchPathZeroAlloc, TestServedQueryZeroAlloc
// and TestScoreCacheHitZeroAlloc, and gated numerically by
// scripts/bench-json.sh).
func BenchmarkServeQuery(b *testing.B) {
	d, qs := throughputWorkload(b)
	b.Run("searchpath", func(b *testing.B) {
		srv := queryengine.NewServer(d, queryengine.ServerOptions{Workers: 1})
		defer srv.Close()
		task := queryengine.Task{Visit: func(*dataset.QueryInstance) error { return nil }}
		for _, q := range qs { // warm the pooled buffers across the workload
			task.Query = q
			if err := srv.Do(&task); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			task.Query = qs[i%len(qs)]
			if err := srv.Do(&task); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, m := range []queryengine.Method{
		queryengine.MethodTGEN, queryengine.MethodAPP, queryengine.MethodGreedy,
	} {
		b.Run(strings.ToLower(m.String())+"-e2e", func(b *testing.B) {
			srv := queryengine.NewServer(d, queryengine.ServerOptions{
				Workers: 1,
				Options: queryengine.Options{Method: m},
			})
			defer srv.Close()
			task := queryengine.Task{}
			for _, q := range qs { // warm the pooled buffers across the workload
				task.Query = q
				if err := srv.Do(&task); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				task.Query = qs[i%len(qs)]
				if err := srv.Do(&task); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
	b.Run("hot-cached", func(b *testing.B) {
		// A fresh dataset: enabling the score cache on the shared one
		// would perturb the other sub-benchmarks.
		d, err := dataset.NYLike(dataset.Config{Seed: 3, Scale: 0.2})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		qs, err := d.GenHotspotQueries(rng, 64, 8, 3, 25e6, 5000, 1.2)
		if err != nil {
			b.Fatal(err)
		}
		d.Index.SetScoreCache(4096)
		srv := queryengine.NewServer(d, queryengine.ServerOptions{Workers: 1})
		defer srv.Close()
		task := queryengine.Task{Visit: func(*dataset.QueryInstance) error { return nil }}
		for _, q := range qs { // warm the pooled buffers and fill the cache
			task.Query = q
			if err := srv.Do(&task); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			task.Query = qs[i%len(qs)]
			if err := srv.Do(&task); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st, ok := d.Index.ScoreCacheStats(); !ok || st.Hits == 0 {
			b.Fatalf("score cache saw no hits: %+v", st)
		}
	})
}

// BenchmarkTopKPruned measures WAND-style top-k object retrieval through
// the grid index: per-cell maxW upper bounds let SearchTopKInto skip
// cells that cannot displace the k-th heap entry, so the hot loop scores
// only a fraction of the candidate cells. Gated for allocations by
// scripts/bench-json.sh.
func BenchmarkTopKPruned(b *testing.B) {
	d, qs := throughputWorkload(b)
	type preparedQuery struct {
		q textindex.Query
		r geo.Rect
	}
	prepared := make([]preparedQuery, len(qs))
	for i, q := range qs {
		prepared[i] = preparedQuery{q: d.Vocab.PrepareQuery(q.Keywords), r: q.Lambda}
	}
	var scratch grid.TopKScratch
	for _, p := range prepared { // warm the pooled buffers
		if _, err := d.Index.SearchTopKInto(p.q, p.r, 10, &scratch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := prepared[i%len(prepared)]
		if _, err := d.Index.SearchTopKInto(p.q, p.r, 10, &scratch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if scratch.Pruned() == 0 {
		b.Fatal("top-k search pruned no cells on this workload")
	}
}

// BenchmarkInstantiate isolates working-graph construction (extraction +
// scoring + CSR instance) with a pooled planner, the per-query fixed cost
// every method pays.
func BenchmarkInstantiate(b *testing.B) {
	d, qs := throughputWorkload(b)
	p := d.NewPlanner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Instantiate(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- per-query micro benchmarks on one fixed instance -------------------

var (
	microOnce  sync.Once
	microInst  *core.Instance
	microDelta float64
)

func microInstance(b *testing.B) (*core.Instance, float64) {
	b.Helper()
	microOnce.Do(func() {
		d, err := dataset.NYLike(dataset.Config{Seed: 3, Scale: 0.2})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(5))
		qs, err := d.GenQueries(rng, 1, 3, 25e6, 5000)
		if err != nil {
			panic(err)
		}
		qi, err := d.Instantiate(qs[0])
		if err != nil {
			panic(err)
		}
		microInst = qi.In
		microDelta = qs[0].Delta
	})
	return microInst, microDelta
}

func BenchmarkQueryAPP(b *testing.B) {
	in, delta := microInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.APP(in, delta, core.APPOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryTGEN(b *testing.B) {
	in, delta := microInstance(b)
	alpha := float64(in.NumNodes) / 9
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TGEN(in, delta, core.TGENOptions{Alpha: alpha}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryGreedy(b *testing.B) {
	in, delta := microInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Greedy(in, delta, core.GreedyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveUpdate measures the live mutation path over the sharded
// on-disk store and re-measures the served query path on a mutated
// dataset.
//
//   - insert / reweight / delete report updates/s against a 4-shard
//     store with the fsync discipline enabled — each iteration is one
//     durable WAL append plus memtable apply, with automatic compaction
//     folding the memtable into the B+-trees every 512 updates.
//   - serve-after-updates replays the ServeQuery workload on an
//     in-memory dataset that absorbed a mixed update batch and a
//     compaction; it must stay 0 B/op, 0 allocs/op (gated numerically by
//     scripts/bench-json.sh against scripts/bench-baseline.json — the
//     memtable-empty fast path costs nothing).
func BenchmarkLiveUpdate(b *testing.B) {
	mkDisk := func(b *testing.B) *Database {
		db, err := NYLikeWithStore(3, 0.05, StoreConfig{
			Path: b.TempDir() + "/store", Shards: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		return db
	}
	perSecond := func(b *testing.B) {
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
	}
	b.Run("insert", func(b *testing.B) {
		db := mkDisk(b)
		defer db.Close()
		r := db.Bounds()
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := db.Insert(ObjectSpec{
				X:    r.MinX + rng.Float64()*(r.MaxX-r.MinX),
				Y:    r.MinY + rng.Float64()*(r.MaxY-r.MinY),
				Text: "cafe museum park",
			})
			if err != nil {
				b.Fatal(err)
			}
			if (i+1)%512 == 0 {
				if err := db.Compact(); err != nil {
					b.Fatal(err)
				}
			}
		}
		perSecond(b)
	})
	b.Run("reweight", func(b *testing.B) {
		db := mkDisk(b)
		defer db.Close()
		n := db.NumObjects()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate ×1.25, ×0.8 so weights stay bounded over any b.N.
			f := 1.25
			if i%2 == 1 {
				f = 0.8
			}
			if err := db.Reweight(i%n, f); err != nil {
				b.Fatal(err)
			}
			if (i+1)%512 == 0 {
				if err := db.Compact(); err != nil {
					b.Fatal(err)
				}
			}
		}
		perSecond(b)
	})
	b.Run("delete", func(b *testing.B) {
		db := mkDisk(b)
		defer db.Close()
		r := db.Bounds()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Insert+delete pairs keep a stable live set; the delete half
			// is what's being measured alongside its WAL append.
			id, err := db.Insert(ObjectSpec{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2, Text: "bar"})
			if err != nil {
				b.Fatal(err)
			}
			if err := db.Delete(id); err != nil {
				b.Fatal(err)
			}
			if (i+1)%256 == 0 {
				if err := db.Compact(); err != nil {
					b.Fatal(err)
				}
			}
		}
		perSecond(b)
	})
	b.Run("serve-after-updates", func(b *testing.B) {
		d, err := dataset.NYLike(dataset.Config{Seed: 3, Scale: 0.2})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		qs, err := d.GenQueries(rng, 64, 3, 25e6, 5000)
		if err != nil {
			b.Fatal(err)
		}
		bounds := d.Graph.BBox()
		for i := 0; i < 64; i++ {
			switch i % 3 {
			case 0:
				p := geo.Point{
					X: bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX),
					Y: bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY),
				}
				if _, err := d.Insert(p, "cafe museum park"); err != nil {
					b.Fatal(err)
				}
			case 1:
				if err := d.Delete(grid.ObjectID(i)); err != nil {
					b.Fatal(err)
				}
			default:
				if err := d.Reweight(grid.ObjectID(i+100), 1.1); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := d.Compact(); err != nil {
			b.Fatal(err)
		}
		srv := queryengine.NewServer(d, queryengine.ServerOptions{Workers: 1})
		defer srv.Close()
		task := queryengine.Task{Visit: func(*dataset.QueryInstance) error { return nil }}
		for _, q := range qs { // warm pooled buffers
			task.Query = q
			if err := srv.Do(&task); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			task.Query = qs[i%len(qs)]
			if err := srv.Do(&task); err != nil {
				b.Fatal(err)
			}
		}
	})
}
