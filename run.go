package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/roadnet"
)

// Method selects the query-answering algorithm.
type Method int

const (
	// MethodTGEN is the tuple-generation heuristic (§5) — the best
	// accuracy and efficiency in the paper's study, and the default.
	MethodTGEN Method = iota
	// MethodAPP is the (5+ε)-approximation algorithm (§4).
	MethodAPP
	// MethodGreedy is the fast, lower-accuracy greedy expansion (§6.1).
	MethodGreedy
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodTGEN:
		return "TGEN"
	case MethodAPP:
		return "APP"
	case MethodGreedy:
		return "Greedy"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// SearchOptions tunes the selected Method. The zero value selects the
// paper's recommended defaults for every knob.
type SearchOptions struct {
	// Method picks the algorithm (default MethodTGEN).
	Method Method
	// Alpha is the node-weight scaling parameter α. Defaults: 0.5 for
	// APP; for TGEN it is auto-sized so σ̂max ≈ 9 over the query region
	// (the regime the paper's α = 400 inhabits at its data scale).
	Alpha float64
	// Beta is APP's binary-search slack β (default 0.1).
	Beta float64
	// Mu is Greedy's length/weight balance µ ∈ [0,1] (default 0.2).
	// Set MuSet to use an explicit 0.
	Mu    float64
	MuSet bool
	// UseSPTSolver makes APP use the shortest-path-tree quota heuristic
	// instead of the GW/Garg solver (ablation).
	UseSPTSolver bool
}

// ResultObject is a relevant object inside a result region.
type ResultObject struct {
	ID    int
	X, Y  float64
	Score float64 // σ(o.ψ, Q.ψ)
}

// Result is a region returned for an LCMSR query.
type Result struct {
	// Score is the region's total weight w.r.t. the query (Σ σv).
	Score float64
	// Length is the total road length of the region.
	Length float64
	// Nodes are the road-network node IDs forming the region (IDs into
	// the Database's graph).
	Nodes []int
	// Edges are (u, v, length) road segments of the region.
	Edges []EdgeSpec
	// Objects are the relevant objects the region contains.
	Objects []ResultObject
}

// Run answers an LCMSR query and returns the best region, or nil when no
// object in Q.Λ matches the keywords.
func (db *Database) Run(q Query, opts SearchOptions) (*Result, error) {
	qi, err := db.instantiate(q)
	if err != nil {
		return nil, err
	}
	appOpts, tgenOpts, greedyOpts := toCoreOptions(opts, qi.In.NumNodes)
	var region *core.Region
	switch opts.Method {
	case MethodAPP:
		region, err = core.APP(qi.In, q.Delta, appOpts)
	case MethodGreedy:
		region, err = core.Greedy(qi.In, q.Delta, greedyOpts)
	case MethodTGEN:
		region, err = core.TGEN(qi.In, q.Delta, tgenOpts)
	default:
		return nil, fmt.Errorf("repro: unknown method %v", opts.Method)
	}
	if err != nil {
		return nil, err
	}
	if region == nil {
		return nil, nil
	}
	return db.materialize(qi, region), nil
}

// RunTopK answers the top-k LCMSR query (§6.2): up to k pairwise-disjoint
// regions in decreasing quality order.
func (db *Database) RunTopK(q Query, k int, opts SearchOptions) ([]*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("repro: k must be positive, got %d", k)
	}
	qi, err := db.instantiate(q)
	if err != nil {
		return nil, err
	}
	appOpts, tgenOpts, greedyOpts := toCoreOptions(opts, qi.In.NumNodes)
	var regions []*core.Region
	switch opts.Method {
	case MethodAPP:
		regions, err = core.TopKAPP(qi.In, q.Delta, k, appOpts)
	case MethodGreedy:
		regions, err = core.TopKGreedy(qi.In, q.Delta, k, greedyOpts)
	case MethodTGEN:
		regions, err = core.TopKTGEN(qi.In, q.Delta, k, tgenOpts)
	default:
		return nil, fmt.Errorf("repro: unknown method %v", opts.Method)
	}
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(regions))
	for _, r := range regions {
		out = append(out, db.materialize(qi, r))
	}
	return out, nil
}

// materialize converts a core region (local IDs) into a public Result
// (parent graph IDs, object details).
func (db *Database) materialize(qi *dataset.QueryInstance, region *core.Region) *Result {
	res := &Result{
		Score:  region.Score,
		Length: region.Length,
		Nodes:  make([]int, len(region.Nodes)),
		Edges:  make([]EdgeSpec, 0, len(region.Edges)),
	}
	for i, v := range region.Nodes {
		res.Nodes[i] = int(qi.Sub.ToParent[v])
	}
	for _, ei := range region.Edges {
		e := qi.Sub.Edge(roadnet.EdgeID(ei))
		res.Edges = append(res.Edges, EdgeSpec{
			U:      int(qi.Sub.ToParent[e.U]),
			V:      int(qi.Sub.ToParent[e.V]),
			Length: e.Length,
		})
	}
	for _, objID := range qi.RegionObjects(region) {
		o := db.ds.Objects[objID]
		res.Objects = append(res.Objects, ResultObject{
			ID:    int(objID),
			X:     o.Point.X,
			Y:     o.Point.Y,
			Score: qi.Prepared.Score(&o.Doc),
		})
	}
	return res
}
