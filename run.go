package repro

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/roadnet"
)

// Method selects the query-answering algorithm.
type Method int

const (
	// MethodTGEN is the tuple-generation heuristic (§5) — the best
	// accuracy and efficiency in the paper's study, and the default.
	MethodTGEN Method = iota
	// MethodAPP is the (5+ε)-approximation algorithm (§4).
	MethodAPP
	// MethodGreedy is the fast, lower-accuracy greedy expansion (§6.1).
	MethodGreedy
	// MethodAuto defers the choice to the server-side cost planner: per
	// request, the planner estimates each solver's cost from the grid's
	// term directories and the instance size, picks the most expensive
	// method affordable within the request's budget (SearchOptions.Budget,
	// else the context deadline), and degrades one rung under queue
	// pressure instead of shedding. Database.Do and Server.Do resolve it;
	// RunBatch requires a concrete method. Set Request.Explain to see the
	// decision in Response.Plan.
	MethodAuto
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodTGEN:
		return "TGEN"
	case MethodAPP:
		return "APP"
	case MethodGreedy:
		return "Greedy"
	case MethodAuto:
		return "Auto"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod parses a method name, case-insensitively, round-tripping
// Method.String: ParseMethod(m.String()) == m for every defined method.
// It is the one place method names are spelled out — the CLI flag parser
// and the HTTP front end both use it.
func ParseMethod(s string) (Method, error) {
	switch strings.ToLower(s) {
	case "tgen":
		return MethodTGEN, nil
	case "app":
		return MethodAPP, nil
	case "greedy":
		return MethodGreedy, nil
	case "auto":
		return MethodAuto, nil
	default:
		return 0, fmt.Errorf("repro: unknown method %q (want TGEN, APP, Greedy, or Auto)", s)
	}
}

// SearchOptions tunes the selected Method. The zero value selects the
// paper's recommended defaults for every knob.
type SearchOptions struct {
	// Method picks the algorithm (default MethodTGEN).
	Method Method
	// Alpha is the node-weight scaling parameter α. Defaults: 0.5 for
	// APP; for TGEN it is auto-sized so σ̂max ≈ 9 over the query region
	// (the regime the paper's α = 400 inhabits at its data scale).
	Alpha float64
	// Beta is APP's binary-search slack β (default 0.1).
	Beta float64
	// Mu is Greedy's length/weight balance µ ∈ [0,1] (default 0.2).
	// Set MuSet to use an explicit 0.
	Mu    float64
	MuSet bool
	// UseSPTSolver makes APP use the shortest-path-tree quota heuristic
	// instead of the GW/Garg solver (ablation).
	UseSPTSolver bool
	// Budget, for MethodAuto, is the explicit solve budget the planner
	// chooses against. Zero derives the budget from the request context's
	// deadline, falling back to a generous default when there is none.
	// Ignored by the concrete methods. An explicit Budget makes Auto's
	// choice deterministic regardless of scheduling (deadline-derived
	// budgets shrink while the request queues).
	Budget time.Duration
}

// ResultObject is a relevant object inside a result region.
type ResultObject struct {
	ID    int
	X, Y  float64
	Score float64 // σ(o.ψ, Q.ψ)
}

// Result is a region returned for an LCMSR query.
type Result struct {
	// Score is the region's total weight w.r.t. the query (Σ σv).
	Score float64
	// Length is the total road length of the region.
	Length float64
	// Nodes are the road-network node IDs forming the region (IDs into
	// the Database's graph).
	Nodes []int
	// Edges are (u, v, length) road segments of the region.
	Edges []EdgeSpec
	// Objects are the relevant objects the region contains.
	Objects []ResultObject
}

// Run answers an LCMSR query and returns the best region, or nil when no
// object in Q.Λ matches the keywords. ctx bounds the solve: a cancelled
// or expired context returns ctx.Err() within a bounded number of solver
// iterations. Run is the single-result convenience form of Do.
func (db *Database) Run(ctx context.Context, q Query, opts SearchOptions) (*Result, error) {
	resp := db.Do(ctx, Request{Query: q, Search: opts})
	return resp.Best(), resp.Err
}

// RunTopK answers the top-k LCMSR query (§6.2): up to k pairwise-disjoint
// regions in decreasing quality order. ctx cancels between ranks (each
// rank is one full single-region solve). RunTopK is the K-form
// convenience wrapper over Do.
func (db *Database) RunTopK(ctx context.Context, q Query, k int, opts SearchOptions) ([]*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("repro: k must be positive, got %d", k)
	}
	resp := db.Do(ctx, Request{Query: q, Search: opts, K: k})
	return resp.Results, resp.Err
}

// materialize converts a core region (local IDs) into a public Result
// (parent graph IDs, object details).
func (db *Database) materialize(qi *dataset.QueryInstance, region *core.Region) *Result {
	res := &Result{
		Score:  region.Score,
		Length: region.Length,
		Nodes:  make([]int, len(region.Nodes)),
		Edges:  make([]EdgeSpec, 0, len(region.Edges)),
	}
	for i, v := range region.Nodes {
		res.Nodes[i] = int(qi.Sub.ToParent[v])
	}
	for _, ei := range region.Edges {
		e := qi.Sub.Edge(roadnet.EdgeID(ei))
		res.Edges = append(res.Edges, EdgeSpec{
			U:      int(qi.Sub.ToParent[e.U]),
			V:      int(qi.Sub.ToParent[e.V]),
			Length: e.Length,
		})
	}
	// Object details race with live mutators (a concurrent Reweight swaps
	// the weight slice this reads); take the dataset read lock.
	db.ds.RLock()
	defer db.ds.RUnlock()
	for _, objID := range qi.RegionObjects(region) {
		o := db.ds.Objects[objID]
		res.Objects = append(res.Objects, ResultObject{
			ID:    int(objID),
			X:     o.Point.X,
			Y:     o.Point.Y,
			Score: qi.Prepared.Score(&o.Doc),
		})
	}
	return res
}
