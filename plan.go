package repro

import (
	"context"
	"time"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/plan"
	"repro/internal/queryengine"
)

// Plan is the EXPLAIN annotation of one answered request: which solver
// ran and why, what the cost model predicted versus what the request
// actually cost, and what the search scanned versus skipped — rectangle
// prunes, term-directory misses, score-cache hits, WAND cutoffs, and (in
// a cluster) routing skips. It is attached to Response.Plan only when
// Request.Explain was set; with Explain off no Plan is built and the
// served path stays allocation-free.
//
// Ownership: a Plan is freshly allocated per explained request and owned
// by the caller. Nothing in it aliases pooled planner or scratch state,
// so it stays valid indefinitely — keep it, log it, marshal it.
type Plan struct {
	// Method is the solver that answered the request. With MethodAuto it
	// is the planner's resolved choice (never Auto itself); Auto reports
	// which way the method was picked.
	Method Method
	Auto   bool
	// Degraded reports that queue pressure pushed an Auto choice one rung
	// below what the budget alone afforded (APP→TGEN or TGEN→Greedy).
	Degraded bool
	// Reason is the planner's one-line explanation of the choice (for
	// client-requested methods: "method requested by client").
	Reason string
	// Budget is the solve budget the planner chose against; Pressure is
	// the queue-age load signal (queue wait over the shedding threshold,
	// 0 on the unqueued Database.Do path).
	Budget   time.Duration
	Pressure float64
	// EstimatedCost is the model's end-to-end (search + solve) estimate
	// for the chosen method; ActualCost is the measured service time,
	// queue wait excluded. EstGreedy/EstTGEN/EstAPP are the per-method
	// estimates the choice compared.
	EstimatedCost time.Duration
	ActualCost    time.Duration
	EstGreedy     time.Duration
	EstTGEN       time.Duration
	EstAPP        time.Duration
	// Nodes is the working-graph size the solve estimates used.
	Nodes int

	// Search trace: every cell the rectangle walk visited landed in
	// exactly one bucket — scanned (posting lists fetched), or skipped
	// because its directory was empty, shared no query term, or replayed
	// from the score cache.
	CellsInRect        int64
	CellsScanned       int64
	CellsSkippedEmpty  int64
	CellsSkippedNoTerm int64
	CellsSkippedCache  int64
	// CellsPrunedWAND counts cells cut by the WAND bound on the top-k
	// object path; the standard serving path does not use WAND, so it is
	// zero there.
	CellsPrunedWAND int64
	// PostingLists / Postings are the lists fetched and postings
	// accumulated; PostingsFiltered of them were rejected by the exact
	// rectangle check (boundary cells). Candidates is the distinct
	// matching objects found.
	PostingLists     int64
	Postings         int64
	PostingsFiltered int64
	Candidates       int64

	// Cluster is the coordinator's routing fragment, present only when
	// the request was served by a cluster.
	Cluster *ClusterPlan
}

// ClusterPlan is the coordinator-side slice of a Plan: how the scattered
// search was routed. Node-side scan counters are already merged into the
// Plan's cell/posting fields (summed across contacted nodes).
type ClusterPlan struct {
	// GroupsContacted replica groups answered partial searches; the
	// skipped ones were pruned by cell-range ∩ rectangle (SkippedRect) or
	// by the group's term-directory summary (SkippedTerm).
	GroupsContacted   int64
	GroupsSkippedRect int64
	GroupsSkippedTerm int64
}

// CellsSkipped sums the skipped-cell buckets — cells the walk visited but
// whose posting lists were never fetched.
func (p *Plan) CellsSkipped() int64 {
	return p.CellsSkippedEmpty + p.CellsSkippedNoTerm + p.CellsSkippedCache
}

// fromEngineMethod maps the engine's resolved method back to the public
// enum.
func fromEngineMethod(m queryengine.Method) Method {
	switch m {
	case queryengine.MethodAPP:
		return MethodAPP
	case queryengine.MethodGreedy:
		return MethodGreedy
	default:
		return MethodTGEN
	}
}

// toEngineMethod maps a concrete public method onto the engine's enum
// (MethodAuto has no engine counterpart; resolve it first).
func toEngineMethod(m Method) queryengine.Method {
	switch m {
	case MethodAPP:
		return queryengine.MethodAPP
	case MethodGreedy:
		return queryengine.MethodGreedy
	default:
		return queryengine.MethodTGEN
	}
}

// resolveBudget picks the planning budget: an explicit SearchOptions
// .Budget wins, else the context deadline's remaining time, else zero
// (plan.Choose substitutes its generous default).
func resolveBudget(ctx context.Context, search SearchOptions) time.Duration {
	if search.Budget > 0 {
		return search.Budget
	}
	if dl, ok := ctx.Deadline(); ok {
		return time.Until(dl)
	}
	return 0
}

// planQuery is the per-request planning step, run after instantiation
// (when the instance size is known) and before the solve. It resolves
// MethodAuto against the cost model and, when explain is set, allocates
// the request's Plan. For concrete methods without explain it is a no-op
// returning (search, nil) — the hot path never reaches the estimator.
func (db *Database) planQuery(ctx context.Context, qi *dataset.QueryInstance, lambda geo.Rect, search SearchOptions, pressure float64, explain bool) (SearchOptions, *Plan) {
	auto := search.Method == MethodAuto
	if !auto && !explain {
		return search, nil
	}
	se := db.ds.Index.EstimateSearch(qi.Prepared, lambda)
	est := plan.Default().Estimate(se, qi.In.NumNodes)
	budget := resolveBudget(ctx, search)
	var pl *Plan
	if explain {
		shown := budget
		if shown <= 0 {
			shown = plan.DefaultBudget
		}
		pl = &Plan{
			Auto:      auto,
			Budget:    shown,
			Pressure:  pressure,
			EstGreedy: est.Greedy,
			EstTGEN:   est.TGEN,
			EstAPP:    est.APP,
			Nodes:     int(est.Nodes),
		}
	}
	if auto {
		choice := plan.Choose(est, budget, pressure)
		search.Method = fromEngineMethod(choice.Method)
		if pl != nil {
			pl.Method = search.Method
			pl.Reason = choice.Reason
			pl.Degraded = choice.Degraded
			pl.EstimatedCost = choice.Estimated
		}
	} else if pl != nil {
		pl.Method = search.Method
		pl.Reason = "method requested by client"
		pl.EstimatedCost = est.Of(toEngineMethod(search.Method))
	}
	return search, pl
}

// finish completes a Plan after the solve: the measured cost and the
// search-trace counters. It must run while qi is still valid (before the
// owning planner's next Instantiate), because qi.SearchTrace aliases
// pooled planner state; the counters are copied out here, which is what
// frees the finished Plan from any aliasing. nil-safe: finishing a nil
// plan (Explain off) does nothing.
func (pl *Plan) finish(qi *dataset.QueryInstance, started time.Time, wait time.Duration) {
	if pl == nil {
		return
	}
	actual := time.Since(started) - wait
	if actual < 0 {
		actual = 0
	}
	pl.ActualCost = actual
	tr := qi.SearchTrace
	if tr == nil {
		return
	}
	pl.CellsInRect = tr.CellsInRect
	pl.CellsScanned = tr.CellsScanned
	pl.CellsSkippedEmpty = tr.CellsEmpty
	pl.CellsSkippedNoTerm = tr.CellsNoTerm
	pl.CellsSkippedCache = tr.CellsCacheHit
	pl.CellsPrunedWAND = tr.CellsPrunedWAND
	pl.PostingLists = tr.Lists
	pl.Postings = tr.Postings
	pl.PostingsFiltered = tr.PostingsFiltered
	pl.Candidates = tr.Objects
	if tr.GroupsContacted+tr.GroupsSkippedRect+tr.GroupsSkippedTerm > 0 {
		pl.Cluster = &ClusterPlan{
			GroupsContacted:   tr.GroupsContacted,
			GroupsSkippedRect: tr.GroupsSkippedRect,
			GroupsSkippedTerm: tr.GroupsSkippedTerm,
		}
	}
}
