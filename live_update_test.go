package repro

// TestLiveUpdateGolden is the differential harness behind the live-update
// path: random interleavings of Insert/Delete/Reweight batches run
// against a live Database, and after every batch the live database must
// answer a fixed query workload bit-identically — same regions, same
// float64 scores, same objects — to a Database REBUILT from scratch over
// the same logical object set. The rebuild goes through the ordinary
// batch constructor (fresh vocabulary, fresh grid index, fresh posting
// lists), so any drift in vocabulary statistics, cell directories,
// postings, or tombstone accounting shows up as a response mismatch.
// The harness runs over both store backends (in-memory and sharded
// on-disk), covers all three algorithms, and finishes by closing and
// reopening the disk store to prove the persisted form serves the same
// answers.

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/roadnet"
	"repro/internal/textindex"
)

// shadowObj is the logical history of one object id: where it is, the
// token multiset it was indexed with, whether it is alive, and the
// reweight factors applied to it in order.
type shadowObj struct {
	x, y    float64
	tokens  []string
	alive   bool
	factors []float64
}

// expandTokens reconstructs an object's token multiset from its indexed
// Doc: terms in ascending TermID order, each repeated tf times. Feeding
// these to a fresh vocabulary in id order reproduces the exact interning
// order, document statistics and normalized weights of the original.
func expandTokens(v *textindex.Vocabulary, d *textindex.Doc) []string {
	var out []string
	for i, t := range d.Terms {
		for n := int32(0); n < d.TF[i]; n++ {
			out = append(out, v.Term(t))
		}
	}
	return out
}

// snapshotShadow captures the current state of object id from the live
// dataset (under its read lock).
func snapshotShadow(db *Database, id int) shadowObj {
	db.ds.RLock()
	defer db.ds.RUnlock()
	o := db.ds.Objects[id]
	return shadowObj{
		x: o.Point.X, y: o.Point.Y,
		tokens: expandTokens(db.ds.Vocab, &o.Doc),
		alive:  true,
	}
}

// rebuildDatabase constructs a fresh Database over the shadow's logical
// object set: a new vocabulary indexed in id order (deleted objects
// contribute their statistics and then leave them, exactly like a live
// Delete), a new grid index with the same geometry, and the reweight
// factor chains replayed as the same sequence of multiplications.
func rebuildDatabase(t *testing.T, live *Database, shadow []shadowObj) *Database {
	t.Helper()
	vocab := textindex.NewVocabulary()
	docs := make([]textindex.Doc, len(shadow))
	for i, s := range shadow {
		docs[i] = vocab.IndexDoc(s.tokens)
	}
	objs := make([]grid.Object, len(shadow))
	for i, s := range shadow {
		doc := docs[i]
		if !s.alive {
			vocab.RemoveDocStats(doc)
			doc = textindex.Doc{}
		} else if len(s.factors) > 0 {
			w := append([]float64(nil), doc.Weights...)
			for _, f := range s.factors {
				for j := range w {
					w[j] *= f
				}
			}
			doc.Weights = w
		}
		objs[i] = grid.Object{Point: geo.Point{X: s.x, Y: s.y}, Doc: doc}
	}
	liveIdx := live.ds.Index
	idx, err := grid.NewIndex(objs, liveIdx.Bounds(), liveIdx.CellSize(), nil)
	if err != nil {
		t.Fatalf("rebuild index: %v", err)
	}
	ds := &dataset.Dataset{
		Name:    live.ds.Name,
		Graph:   live.ds.Graph,
		Vocab:   vocab,
		Objects: objs,
		ObjNode: append([]roadnet.NodeID(nil), live.ds.ObjNode...),
		Index:   idx,
	}
	if live.ds.Ratings != nil {
		ds.Ratings = append([]float64(nil), live.ds.Ratings...)
	}
	return &Database{ds: ds}
}

// assertSameResponses runs the workload on both databases across all
// three methods (plus one top-K case) and requires bit-identical
// responses.
func assertSameResponses(t *testing.T, liveDB, rebuilt *Database, queries []Query, tag string) {
	t.Helper()
	ctx := context.Background()
	methods := []struct {
		name string
		opts SearchOptions
	}{
		{"TGEN", SearchOptions{Method: MethodTGEN}},
		{"APP", SearchOptions{Method: MethodAPP}},
		{"Greedy", SearchOptions{Method: MethodGreedy}},
	}
	for qi, q := range queries {
		for _, m := range methods {
			got := liveDB.Do(ctx, Request{Query: q, Search: m.opts})
			want := rebuilt.Do(ctx, Request{Query: q, Search: m.opts})
			if (got.Err == nil) != (want.Err == nil) {
				t.Fatalf("%s: query %d %s: live err %v, rebuild err %v", tag, qi, m.name, got.Err, want.Err)
			}
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Fatalf("%s: query %d %s: live response diverges from rebuild\n live: %+v\nwant: %+v",
					tag, qi, m.name, first(got.Results), first(want.Results))
			}
		}
		if qi == 0 {
			got := liveDB.Do(ctx, Request{Query: q, K: 3, Search: SearchOptions{Method: MethodTGEN}})
			want := rebuilt.Do(ctx, Request{Query: q, K: 3, Search: SearchOptions{Method: MethodTGEN}})
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Fatalf("%s: query %d top-3: live response diverges from rebuild", tag, qi)
			}
		}
	}
}

func first(rs []*Result) *Result {
	if len(rs) == 0 {
		return nil
	}
	return rs[0]
}

// liveGoldenWords is the insert-text vocabulary: mostly words the base
// corpus already uses (so inserts collide with existing postings), plus
// fresh words that must be interned live and survive reopen.
func liveGoldenWords(db *Database) []string {
	words := []string{}
	db.ds.RLock()
	for t := 0; t < db.ds.Vocab.NumTerms() && t < 30; t++ {
		words = append(words, db.ds.Vocab.Term(textindex.TermID(t)))
	}
	db.ds.RUnlock()
	for i := 0; i < 6; i++ {
		words = append(words, fmt.Sprintf("neologism%d", i))
	}
	return words
}

func runLiveUpdateGolden(t *testing.T, db *Database, closeReopen func() *Database) {
	rng := rand.New(rand.NewSource(1407))
	words := liveGoldenWords(db)
	bounds := db.Bounds()

	// Shadow the base corpus.
	n := db.NumObjects()
	shadow := make([]shadowObj, n)
	for i := 0; i < n; i++ {
		shadow[i] = snapshotShadow(db, i)
	}
	var alive []int
	for i := range shadow {
		alive = append(alive, i)
	}

	// Fixed workload: generated once from the base corpus so live and
	// rebuilt answer the identical queries throughout.
	queries, err := db.GenQueries(rand.New(rand.NewSource(2)), 4, 2, 4e6, 3000)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	// One query pinned to the full extent so inserted objects anywhere
	// (including fresh "neologism" terms) influence answers.
	queries = append(queries, Query{
		Keywords: []string{words[0], words[len(words)-6]},
		Delta:    4000,
		Region:   bounds,
	})

	assertSameResponses(t, db, rebuildDatabase(t, db, shadow), queries, "baseline")

	for round := 0; round < 4; round++ {
		batch := 8 + rng.Intn(6)
		for b := 0; b < batch; b++ {
			switch op := rng.Intn(10); {
			case op < 4: // insert
				nw := 1 + rng.Intn(3)
				text := ""
				for w := 0; w < nw; w++ {
					text += words[rng.Intn(len(words))] + " "
				}
				p := geo.Point{
					X: bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX),
					Y: bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY),
				}
				id, err := db.Insert(ObjectSpec{X: p.X, Y: p.Y, Text: text})
				if err != nil {
					t.Fatalf("round %d insert: %v", round, err)
				}
				if id != len(shadow) {
					t.Fatalf("round %d: insert assigned id %d, want %d", round, id, len(shadow))
				}
				shadow = append(shadow, snapshotShadow(db, id))
				alive = append(alive, id)
			case op < 7 && len(alive) > 10: // delete
				i := rng.Intn(len(alive))
				id := alive[i]
				alive = append(alive[:i], alive[i+1:]...)
				if err := db.Delete(id); err != nil {
					t.Fatalf("round %d delete %d: %v", round, id, err)
				}
				shadow[id].alive = false
			default: // reweight
				id := alive[rng.Intn(len(alive))]
				f := 0.25 + rng.Float64()*2
				if err := db.Reweight(id, f); err != nil {
					t.Fatalf("round %d reweight %d: %v", round, id, err)
				}
				shadow[id].factors = append(shadow[id].factors, f)
			}
		}
		if round == 2 {
			if err := db.Compact(); err != nil {
				t.Fatalf("mid-run compact: %v", err)
			}
		}
		assertSameResponses(t, db, rebuildDatabase(t, db, shadow), queries,
			fmt.Sprintf("round %d", round))
	}

	if closeReopen != nil {
		db = closeReopen()
		assertSameResponses(t, db, rebuildDatabase(t, db, shadow), queries, "reopened")
		if err := db.Close(); err != nil {
			t.Fatalf("final close: %v", err)
		}
	}
}

func TestLiveUpdateGolden(t *testing.T) {
	t.Run("MemStore", func(t *testing.T) {
		db, err := NYLike(5, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		runLiveUpdateGolden(t, db, nil)
	})
	t.Run("Sharded", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "store")
		sc := StoreConfig{Path: path, Shards: 4}
		db, err := NYLikeWithStore(5, 0.05, sc)
		if err != nil {
			t.Fatal(err)
		}
		runLiveUpdateGolden(t, db, func() *Database {
			if err := db.Close(); err != nil {
				t.Fatalf("close before reopen: %v", err)
			}
			re, err := NYLikeWithStore(5, 0.05, StoreConfig{Path: path, OpenExisting: true})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			return re
		})
	})
}

// TestReopenPreservesUncompacted proves the WAL carries updates across a
// close that never compacted: updates are applied, the raw store is
// closed underneath (no checkpoint), and a reopened database still
// serves them — recovered purely from the log.
func TestReopenPreservesUncompacted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store")
	db, err := NYLikeWithStore(3, 0.04, StoreConfig{Path: path, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	id, err := db.Insert(ObjectSpec{X: 100, Y: 100, Text: "walword survives"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(0); err != nil {
		t.Fatal(err)
	}
	bounds := db.Bounds()
	q := Query{Keywords: []string{"walword"}, Delta: 3000, Region: bounds}
	want := db.Do(context.Background(), Request{Query: q})
	if want.Err != nil {
		t.Fatal(want.Err)
	}
	// Close the store WITHOUT the database-level compaction path.
	if c, ok := db.ds.Index.Store().(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	re, err := NYLikeWithStore(3, 0.04, StoreConfig{Path: path, OpenExisting: true})
	if err != nil {
		t.Fatalf("reopen after uncompacted close: %v", err)
	}
	defer re.Close()
	if re.NumObjects() != id+1 {
		t.Fatalf("reopened database has %d objects, want %d", re.NumObjects(), id+1)
	}
	got := re.Do(context.Background(), Request{Query: q})
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("uncompacted updates lost across reopen:\n got %+v\nwant %+v",
			first(got.Results), first(want.Results))
	}
}
