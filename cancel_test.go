package repro

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/queryengine"
)

// Mid-solve cancellation acceptance tests. Each test cancels a context
// while a solver is running on the bench instance (the same
// dataset/query seeds as BenchmarkQueryAPP/TGEN, where APP runs for
// hundreds of milliseconds) and asserts the contract end to end:
//
//   - the solve returns within 50ms of the cancel with context.Canceled;
//   - no goroutine leaks;
//   - the same worker scratch answers the next (uncancelled) query with
//     results bit-identical to a never-cancelled worker.

var (
	cancelOnce sync.Once
	cancelDS   *dataset.Dataset
	cancelQ    dataset.Query
)

// benchWorkload builds the bench dataset (NY scale 0.2, query seed 5)
// once for every cancellation test, stretching the generated query to the
// network's full extent with a generous budget: on this instance APP
// solves for hundreds of milliseconds and TGEN for over a hundred, so a
// cancel ~15ms in is unambiguously mid-solve.
func benchWorkload(t *testing.T) (*dataset.Dataset, dataset.Query) {
	t.Helper()
	cancelOnce.Do(func() {
		d, err := dataset.NYLike(dataset.Config{Seed: 3, Scale: 0.2})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(5))
		qs, err := d.GenQueries(rng, 1, 3, 25e6, 5000)
		if err != nil {
			panic(err)
		}
		q := qs[0]
		q.Lambda = d.Graph.BBox()
		q.Delta = 50_000
		cancelDS, cancelQ = d, q
	})
	return cancelDS, cancelQ
}

// regionCopy is a detached copy of a solver region (which aliases pooled
// scratch storage).
type regionCopy struct {
	score, length float64
	nodes, edges  []int32
}

func copyRegion(r *core.Region) *regionCopy {
	if r == nil {
		return nil
	}
	return &regionCopy{
		score:  r.Score,
		length: r.Length,
		nodes:  append([]int32(nil), r.Nodes...),
		edges:  append([]int32(nil), r.Edges...),
	}
}

func sameRegion(a, b *regionCopy) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.score != b.score || a.length != b.length ||
		len(a.nodes) != len(b.nodes) || len(a.edges) != len(b.edges) {
		return false
	}
	for i := range a.nodes {
		if a.nodes[i] != b.nodes[i] {
			return false
		}
	}
	for i := range a.edges {
		if a.edges[i] != b.edges[i] {
			return false
		}
	}
	return true
}

// countGoroutines samples the goroutine count after a short settle, so
// runtime bookkeeping goroutines don't flake the leak check.
func countGoroutines() int {
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

// testCancelMidSolve runs the full contract for one engine method on the
// bench workload: reference solve, mid-solve cancel, bounded return,
// scratch reuse.
func testCancelMidSolve(t *testing.T, method queryengine.Method, cancelAfter time.Duration) {
	d, q := benchWorkload(t)
	opts := queryengine.Options{Method: method}
	baseline := countGoroutines()

	// Reference answer from a fresh planner/scratch.
	ref := d.NewPlanner()
	qi, err := ref.Instantiate(q)
	if err != nil {
		t.Fatal(err)
	}
	refStart := time.Now()
	region, err := queryengine.Solve(context.Background(), qi, q.Delta, opts)
	if err != nil {
		t.Fatal(err)
	}
	refDur := time.Since(refStart)
	want := copyRegion(region)
	if want == nil {
		t.Fatal("bench query matched nothing; the test would be vacuous")
	}
	if refDur < 4*cancelAfter {
		t.Fatalf("solve took %v; cancelling after %v would not be mid-solve", refDur, cancelAfter)
	}

	// Cancel mid-solve on the worker planner.
	worker := d.NewPlanner()
	qi, err = worker.Instantiate(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		err error
		at  time.Time
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := queryengine.Solve(ctx, qi, q.Delta, opts)
		done <- outcome{err: err, at: time.Now()}
	}()
	time.Sleep(cancelAfter)
	cancelledAt := time.Now()
	cancel()
	out := <-done
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("cancelled solve returned err = %v, want context.Canceled", out.err)
	}
	if lag := out.at.Sub(cancelledAt); lag > 50*time.Millisecond {
		t.Fatalf("solve returned %v after cancel, want <= 50ms", lag)
	}

	// The abandoned scratch must answer the next query bit-identically.
	qi, err = worker.Instantiate(q)
	if err != nil {
		t.Fatal(err)
	}
	region, err = queryengine.Solve(context.Background(), qi, q.Delta, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRegion(copyRegion(region), want) {
		t.Fatal("scratch reused after a cancelled solve produced a different region")
	}

	if after := countGoroutines(); after > baseline {
		t.Fatalf("goroutines leaked: %d before, %d after", baseline, after)
	}
}

// TestCancelMidSolveAPP is the acceptance gate: cancel a context mid-APP-
// solve on the bench instance (APP runs for hundreds of milliseconds
// there) and observe return within 50ms with context.Canceled, no
// goroutine leaks, and bit-identical results from the reused scratch.
func TestCancelMidSolveAPP(t *testing.T) {
	testCancelMidSolve(t, queryengine.MethodAPP, 15*time.Millisecond)
}

func TestCancelMidSolveTGEN(t *testing.T) {
	testCancelMidSolve(t, queryengine.MethodTGEN, 10*time.Millisecond)
}

// TestCancelMidSolveGreedy uses a synthetic long-path instance: the bench
// query answers Greedy in microseconds, far too fast to cancel mid-solve,
// while greedy expansion over an n-node path costs Θ(n²) frontier scans.
func TestCancelMidSolveGreedy(t *testing.T) {
	const n = 4096
	edges := make([]core.Edge, n-1)
	weights := make([]float64, n)
	for i := range edges {
		edges[i] = core.Edge{U: int32(i), V: int32(i + 1), Length: 1}
	}
	for i := range weights {
		weights[i] = float64(i%7) + 1
	}
	in, err := core.NewInstance(n, edges, weights)
	if err != nil {
		t.Fatal(err)
	}
	delta := float64(n) // the whole path fits: greedy runs to exhaustion
	baseline := countGoroutines()

	fresh := core.NewSolveScratch()
	refStart := time.Now()
	region, err := core.SolveGreedy(context.Background(), fresh, in, delta, core.GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refDur := time.Since(refStart)
	want := copyRegion(region)
	cancelAfter := refDur / 8
	if cancelAfter < time.Millisecond {
		cancelAfter = time.Millisecond
	}
	if refDur < 4*cancelAfter {
		t.Skipf("greedy reference solve too fast to cancel mid-solve (%v)", refDur)
	}

	worker := core.NewSolveScratch()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		err error
		at  time.Time
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := core.SolveGreedy(ctx, worker, in, delta, core.GreedyOptions{})
		done <- outcome{err: err, at: time.Now()}
	}()
	time.Sleep(cancelAfter)
	cancelledAt := time.Now()
	cancel()
	out := <-done
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("cancelled greedy returned err = %v, want context.Canceled", out.err)
	}
	if lag := out.at.Sub(cancelledAt); lag > 50*time.Millisecond {
		t.Fatalf("greedy returned %v after cancel, want <= 50ms", lag)
	}
	region, err = core.SolveGreedy(context.Background(), worker, in, delta, core.GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRegion(copyRegion(region), want) {
		t.Fatal("scratch reused after a cancelled greedy produced a different region")
	}
	if after := countGoroutines(); after > baseline {
		t.Fatalf("goroutines leaked: %d before, %d after", baseline, after)
	}
}

// TestServerCancelMidSolve drives the same contract through the streaming
// server: a deadline that fires mid-solve surfaces context.DeadlineExceeded
// from Submit, the worker survives, and the very next submission on the
// same server (same worker, same scratch) answers bit-identically to an
// undisturbed server.
func TestServerCancelMidSolve(t *testing.T) {
	d, q := benchWorkload(t)
	opts := queryengine.Options{Method: queryengine.MethodAPP}

	undisturbed := queryengine.NewServer(d, queryengine.ServerOptions{Workers: 1, Options: opts})
	want, err := undisturbed.Submit(context.Background(), q)
	undisturbed.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !want.Matched {
		t.Fatal("bench query matched nothing; the test would be vacuous")
	}

	srv := queryengine.NewServer(d, queryengine.ServerOptions{Workers: 1, Options: opts})
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = srv.Submit(ctx, q)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-bounded submit returned err = %v, want context.DeadlineExceeded", err)
	}
	if lag := time.Since(start); lag > 15*time.Millisecond+50*time.Millisecond {
		t.Fatalf("submit returned %v after submission, want deadline+50ms", lag)
	}
	got, err := srv.Submit(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score || got.Length != want.Length || len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("post-cancel answer differs: got %v/%v/%d nodes, want %v/%v/%d",
			got.Score, got.Length, len(got.Nodes), want.Score, want.Length, len(want.Nodes))
	}
	for i := range got.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			t.Fatal("post-cancel answer differs in node set")
		}
	}
	st := srv.Stats()
	if st.Errors != 1 {
		t.Fatalf("Stats().Errors = %d, want 1 (the cancelled request)", st.Errors)
	}
}
