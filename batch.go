package repro

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/queryengine"
)

// BatchStats summarizes a RunBatch execution.
type BatchStats struct {
	// Elapsed is the wall-clock time of the whole batch.
	Elapsed time.Duration
	// Workers is the resolved worker-pool size.
	Workers int
	// Matched counts queries that produced a region.
	Matched int
}

// QueriesPerSecond returns the batch throughput.
func (s BatchStats) QueriesPerSecond(n int) float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(n) / s.Elapsed.Seconds()
}

// RunBatch answers a whole query workload, fanning the queries out across
// a pool of workers with per-worker pooled extraction and solver state
// (internal/queryengine). workers <= 0 selects GOMAXPROCS. The returned
// slice has one entry per query — nil when no object matched — and is
// identical to calling Run on each query in order, for any worker count.
// ctx bounds the whole batch: once it fires, in-flight solves return
// ctx.Err() through their checkpoints, no further queries start, and
// RunBatch returns ctx.Err().
func (db *Database) RunBatch(ctx context.Context, qs []Query, opts SearchOptions, workers int) ([]*Result, BatchStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) && len(qs) > 0 {
		workers = len(qs) // mirror the engine's clamp so stats are honest
	}
	stats := BatchStats{Workers: workers}
	qeOpts, err := toEngineOptions(opts, workers)
	if err != nil {
		return nil, stats, err
	}
	dqs := make([]dataset.Query, len(qs))
	for i, q := range qs {
		dq, err := toDatasetQuery(q)
		if err != nil {
			return nil, stats, fmt.Errorf("repro: query %d: %w", i, err)
		}
		dqs[i] = dq
	}
	results := make([]*Result, len(qs))
	start := time.Now()
	err = queryengine.RunFunc(ctx, db.ds, dqs, workers, func(i int, qi *dataset.QueryInstance) error {
		region, err := queryengine.Solve(ctx, qi, dqs[i].Delta, qeOpts)
		if err != nil {
			return err
		}
		if region != nil {
			// Materialize before the worker's planner is reused for the
			// next query: the QueryInstance aliases pooled buffers.
			results[i] = db.materialize(qi, region)
		}
		return nil
	})
	stats.Elapsed = time.Since(start)
	if err != nil {
		return nil, stats, err
	}
	for _, r := range results {
		if r != nil {
			stats.Matched++
		}
	}
	return results, stats, nil
}

// toEngineOptions maps the public SearchOptions onto the engine's Options.
// The zero-value defaults line up by construction: the engine auto-sizes
// TGEN's α with the same σ̂max ≈ 9 rule as defaultTGENAlpha, so RunBatch
// answers match per-query Run calls exactly.
func toEngineOptions(opts SearchOptions, workers int) (queryengine.Options, error) {
	out := queryengine.Options{
		Workers: workers,
		APP:     core.APPOptions{Alpha: opts.Alpha, Beta: opts.Beta},
		TGEN:    core.TGENOptions{Alpha: opts.Alpha},
		Greedy:  core.GreedyOptions{Mu: opts.Mu, MuSet: opts.MuSet},
	}
	if opts.UseSPTSolver {
		out.APP.Solver = core.SolverSPT
	}
	switch opts.Method {
	case MethodTGEN:
		out.Method = queryengine.MethodTGEN
	case MethodAPP:
		out.Method = queryengine.MethodAPP
	case MethodGreedy:
		out.Method = queryengine.MethodGreedy
	case MethodAuto:
		// Auto is resolved per request by Database.Do and Server.Do before
		// the engine sees it; the batch path has no per-request budget or
		// load signal to resolve against.
		return out, fmt.Errorf("repro: MethodAuto is resolved by Do/Serve, not the batch path; pick a concrete method")
	default:
		return out, fmt.Errorf("repro: unknown method %v", opts.Method)
	}
	return out, nil
}
