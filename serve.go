package repro

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/queryengine"
)

// ErrOverloaded is returned (in Response.Err / Submit's error) when the
// server sheds a request under load: the request waited in the queue
// longer than ServeOptions.MaxQueueAge. Clients should back off and
// retry. It aliases the engine's sentinel so errors.Is works across
// layers.
var ErrOverloaded = queryengine.ErrOverloaded

// ServeOptions configures a streaming query server (Database.Serve).
type ServeOptions struct {
	// Workers is the serving-goroutine count; <= 0 means GOMAXPROCS. Each
	// worker owns one pooled planner, so memory grows with workers, not
	// with traffic.
	Workers int
	// Search selects the algorithm and tuning, exactly as for Run/RunBatch.
	// A Request may override it per request (Request.Search).
	Search SearchOptions
	// Queue bounds the number of requests waiting for a worker; a full
	// queue makes Do/Submit block (backpressure) until space frees or the
	// request's context fires. <= 0 means 2×Workers.
	Queue int
	// MaxQueueAge, when positive, sheds requests that waited in the queue
	// longer than this: they are answered with ErrOverloaded instead of
	// being solved, bounding the work wasted on requests whose clients
	// have likely given up. Zero disables shedding.
	MaxQueueAge time.Duration
	// LatencyWindow is how many recent per-worker latency samples the
	// percentile report covers; <= 0 means 4096.
	LatencyWindow int
	// DeadlineOrdered makes idle workers pick up the queued request whose
	// context deadline is earliest (EDF) instead of the oldest one (FIFO).
	// Admission, backpressure, and shedding are unchanged. Useful when
	// requests arrive with heterogeneous deadlines — e.g. a cluster
	// coordinator fanning out with per-node budgets.
	DeadlineOrdered bool
}

// ServeStats summarizes a server's traffic so far. Latency percentiles are
// measured from submission to answer, so queueing delay under load is
// included.
type ServeStats struct {
	// Served counts requests a worker processed (errored ones included);
	// Matched counts those that produced at least one region.
	Served, Matched int64
	// Errors counts requests answered with an error: rejected admissions
	// (context already done), validation and solver failures, and
	// mid-solve cancellations. Shed requests are counted separately.
	Errors int64
	// Shed counts requests rejected with ErrOverloaded by the queue-age
	// load-shedding policy.
	Shed int64
	// Panics counts requests whose solve panicked. Each failed only its
	// own client (queryengine.ErrQueryPanic); the worker recovered with a
	// fresh planner and kept serving.
	Panics int64
	// Window is the number of samples behind the percentiles.
	Window int
	// P50, P95, P99, Max are request latencies over the window.
	P50, P95, P99, Max time.Duration
}

// String formats the stats as one readable line.
func (st ServeStats) String() string {
	return fmt.Sprintf("served=%d matched=%d errors=%d shed=%d panics=%d p50=%v p95=%v p99=%v max=%v (window %d)",
		st.Served, st.Matched, st.Errors, st.Shed, st.Panics, st.P50, st.P95, st.P99, st.Max, st.Window)
}

// Server is a long-lived streaming query service over one Database. Any
// number of goroutines may Do/Submit concurrently; answers are
// bit-identical to Run/RunBatch on the same database. Admission is
// deadline-aware: a request whose context is already done is rejected
// without dispatch, one that out-waits MaxQueueAge is shed with
// ErrOverloaded, and one cancelled mid-solve returns ctx.Err() promptly
// while the worker stays healthy. Close it when done.
type Server struct {
	db          *Database
	inner       *queryengine.Server
	opts        queryengine.Options
	search      SearchOptions
	maxQueueAge time.Duration
	matched     atomic.Int64
}

// Serve starts a streaming query server. Unlike RunBatch, which answers a
// fixed workload and returns, the server accepts requests continuously
// until Close, with per-request latency tracking (Stats).
func (db *Database) Serve(opts ServeOptions) (*Server, error) {
	// MethodAuto is resolved per request (it needs the instance size and
	// the live queue pressure); validate the remaining knobs against its
	// cheapest resolution.
	probe := opts.Search
	if probe.Method == MethodAuto {
		probe.Method = MethodTGEN
	}
	qeOpts, err := toEngineOptions(probe, opts.Workers)
	if err != nil {
		return nil, err
	}
	inner := queryengine.NewServer(db.ds, queryengine.ServerOptions{
		Workers:         opts.Workers,
		Options:         qeOpts,
		Queue:           opts.Queue,
		MaxQueueAge:     opts.MaxQueueAge,
		LatencyWindow:   opts.LatencyWindow,
		DeadlineOrdered: opts.DeadlineOrdered,
	})
	return &Server{db: db, inner: inner, opts: qeOpts, search: opts.Search, maxQueueAge: opts.MaxQueueAge}, nil
}

// Do answers one request, blocking until a worker is free (that is the
// server's backpressure) and the answer is computed. ctx bounds the whole
// request — queueing included: an already-done context is rejected
// without dispatch, a context firing while blocked on a full queue gives
// up with ctx.Err(), and a cancel mid-solve is observed by the solver
// checkpoints. A zero req.Search uses the server's configured defaults;
// any other value overrides them for this request.
func (s *Server) Do(ctx context.Context, req Request) Response {
	search := s.search
	if req.Search != (SearchOptions{}) {
		search = req.Search
	}
	return s.do(ctx, req, search)
}

// DoWithOptions answers req with search used exactly as given, bypassing
// Do's zero-Search convention. Reach for it when the desired options are
// themselves the zero value — plain TGEN defaults — on a server
// configured with a different method: that override is inexpressible
// through Request.Search, whose zero value means "server defaults". The
// HTTP front end resolves its method field through this path.
func (s *Server) DoWithOptions(ctx context.Context, req Request, search SearchOptions) Response {
	return s.do(ctx, req, search)
}

// do answers req with an explicitly resolved search.
func (s *Server) do(ctx context.Context, req Request, search SearchOptions) Response {
	dq, err := toDatasetQuery(req.Query)
	if err != nil {
		return Response{Err: fmt.Errorf("repro: %w", err)}
	}
	dq.Trace = req.Explain
	auto := search.Method == MethodAuto
	qeOpts := s.opts
	if search != s.search {
		probe := search
		if auto {
			probe.Method = MethodTGEN // knob validation; Auto resolves on the worker
		}
		qeOpts, err = toEngineOptions(probe, 0)
		if err != nil {
			return Response{Err: err}
		}
	}
	var results []*Result
	var pl *Plan
	started := time.Now()
	t := queryengine.Task{Ctx: ctx, Query: dq}
	t.Visit = func(qi *dataset.QueryInstance) error {
		// Materialize on the worker: the instance aliases pooled planner
		// buffers that are reused for the next request.
		if auto || req.Explain {
			// Plan on the worker, where both the instance size and the
			// request's own queue wait (the load signal) are known. At
			// pressure ≥ plan.DegradePressure Auto serves one rung cheaper;
			// shedding only fires at pressure > 1, so degradation always
			// gets its chance first.
			pressure := 0.0
			if s.maxQueueAge > 0 {
				pressure = float64(t.Wait) / float64(s.maxQueueAge)
			}
			search, pl = s.db.planQuery(ctx, qi, dq.Lambda, search, pressure, req.Explain)
			if auto {
				o, oerr := toEngineOptions(search, 0)
				if oerr != nil {
					return oerr
				}
				qeOpts = o
			}
		}
		var verr error
		if req.K > 1 {
			results, verr = s.db.topK(ctx, qi, dq.Delta, req.K, search)
		} else {
			var region *core.Region
			region, verr = queryengine.Solve(ctx, qi, dq.Delta, qeOpts)
			if verr == nil && region != nil {
				results = []*Result{s.db.materialize(qi, region)}
			}
		}
		// The trace aliases the worker's pooled planner; finish copies it
		// out while qi is still this request's.
		pl.finish(qi, started, t.Wait)
		return verr
	}
	if err := s.inner.Do(&t); err != nil {
		return Response{Err: err}
	}
	if len(results) > 0 {
		s.matched.Add(1)
	}
	return Response{Results: results, Plan: pl}
}

// Submit answers one query through the server's configured options. It
// returns nil when no object inside Q.Λ matches the keywords, exactly
// like Run. Submit is the single-result convenience form of Do.
func (s *Server) Submit(ctx context.Context, q Query) (*Result, error) {
	resp := s.Do(ctx, Request{Query: q})
	return resp.Best(), resp.Err
}

// Close stops accepting requests, drains the queue, and waits for the
// workers to exit. It is idempotent and safe to call concurrently;
// Do/Submit after Close return queryengine.ErrServerClosed.
func (s *Server) Close() {
	s.inner.Close()
}

// Stats snapshots the server's counters and latency percentiles.
func (s *Server) Stats() ServeStats {
	st := s.inner.Stats()
	return ServeStats{
		Served:  st.Served,
		Matched: s.matched.Load(),
		Errors:  st.Errors,
		Shed:    st.Shed,
		Panics:  st.Panics,
		Window:  st.Window,
		P50:     st.P50,
		P95:     st.P95,
		P99:     st.P99,
		Max:     st.Max,
	}
}
