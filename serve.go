package repro

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/queryengine"
)

// ServeOptions configures a streaming query server (Database.Serve).
type ServeOptions struct {
	// Workers is the serving-goroutine count; <= 0 means GOMAXPROCS. Each
	// worker owns one pooled planner, so memory grows with workers, not
	// with traffic.
	Workers int
	// Search selects the algorithm and tuning, exactly as for Run/RunBatch.
	Search SearchOptions
	// Queue bounds the number of requests waiting for a worker; a full
	// queue makes Submit block (backpressure). <= 0 means 2×Workers.
	Queue int
	// LatencyWindow is how many recent per-worker latency samples the
	// percentile report covers; <= 0 means 4096.
	LatencyWindow int
}

// ServeStats summarizes a server's traffic so far. Latency percentiles are
// measured from submission to answer, so queueing delay under load is
// included.
type ServeStats struct {
	// Served counts answered requests (errored ones included); Matched
	// counts those that produced a region.
	Served, Matched int64
	// Window is the number of samples behind the percentiles.
	Window int
	// P50, P95, P99, Max are request latencies over the window.
	P50, P95, P99, Max time.Duration
}

// String formats the stats as one readable line.
func (st ServeStats) String() string {
	return fmt.Sprintf("served=%d matched=%d p50=%v p95=%v p99=%v max=%v (window %d)",
		st.Served, st.Matched, st.P50, st.P95, st.P99, st.Max, st.Window)
}

// Server is a long-lived streaming query service over one Database. Any
// number of goroutines may Submit concurrently; answers are bit-identical
// to Run/RunBatch on the same database. Close it when done.
type Server struct {
	db      *Database
	inner   *queryengine.Server
	opts    queryengine.Options
	matched atomic.Int64
}

// Serve starts a streaming query server. Unlike RunBatch, which answers a
// fixed workload and returns, the server accepts requests continuously
// until Close, with per-request latency tracking (Stats).
func (db *Database) Serve(opts ServeOptions) (*Server, error) {
	qeOpts, err := toEngineOptions(opts.Search, opts.Workers)
	if err != nil {
		return nil, err
	}
	inner := queryengine.NewServer(db.ds, queryengine.ServerOptions{
		Workers:       opts.Workers,
		Options:       qeOpts,
		Queue:         opts.Queue,
		LatencyWindow: opts.LatencyWindow,
	})
	return &Server{db: db, inner: inner, opts: qeOpts}, nil
}

// Submit answers one query, blocking until a worker is free (that is the
// server's backpressure) and the answer is computed. It returns nil when no
// object inside Q.Λ matches the keywords, exactly like Run.
func (s *Server) Submit(q Query) (*Result, error) {
	dq, err := toDatasetQuery(q)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	var res *Result
	t := queryengine.Task{Query: dq, Visit: func(qi *dataset.QueryInstance) error {
		region, err := queryengine.Solve(qi, dq.Delta, s.opts)
		if err != nil || region == nil {
			return err
		}
		// Materialize on the worker: the instance aliases pooled planner
		// buffers that are reused for the next request.
		res = s.db.materialize(qi, region)
		return nil
	}}
	if err := s.inner.Do(&t); err != nil {
		return nil, err
	}
	if res != nil {
		s.matched.Add(1)
	}
	return res, nil
}

// Close stops accepting requests, drains the queue, and waits for the
// workers to exit. It is idempotent; Submit after Close returns
// queryengine.ErrServerClosed.
func (s *Server) Close() {
	s.inner.Close()
}

// Stats snapshots the server's counters and latency percentiles.
func (s *Server) Stats() ServeStats {
	st := s.inner.Stats()
	return ServeStats{
		Served:  st.Served,
		Matched: s.matched.Load(),
		Window:  st.Window,
		P50:     st.P50,
		P95:     st.P95,
		P99:     st.P99,
		Max:     st.Max,
	}
}
