// Command lcmsr answers LCMSR queries interactively against a built-in
// synthetic dataset.
//
// Usage:
//
//	lcmsr -dataset ny -keywords "t0001,t0002" -delta 10000 -area 100 -method tgen
//	lcmsr -dataset usanw -auto -k 3          # generate a query, top-3 regions
//	lcmsr -auto -queries 200 -parallel 8     # workload mode: throughput run
//	lcmsr -auto -queries 2000 -hotspots 8 -cache 4096  # Zipfian hot-spot replay, score cache on
//	lcmsr -serve -queries 500 -rate 100      # serve mode: replay at 100 q/s
//	lcmsr -serve -http :8080 -timeout 500ms  # HTTP mode: POST /query, GET /stats
//	lcmsr -shards 4 -queries 200 -parallel 4 # disk store, 4 B+-tree shards
//	lcmsr -shards 4 -postings /data/store -updates 500   # mutate, compact, persist
//	lcmsr -open -postings /data/store -queries 50        # reopen the same store
//	lcmsr -scrub /data/store                 # verify a posting store offline
//	lcmsr -node -cells 0:800 -listen :7070   # cluster node: serve cells [0, 800)
//	lcmsr -coord -nodes :7070,:7071 -http :8080          # coordinator over the nodes
//
// -area is the Q.Λ area in km²; -delta the length budget in metres. With
// -auto the keywords and region are drawn by the workload generator.
//
// With -queries > 1 the command switches to workload mode: it generates
// (or replicates) that many queries and answers them through the parallel
// query engine with -parallel workers, reporting throughput instead of
// per-region detail. -cpuprofile and -memprofile write pprof profiles of
// the query phase for performance work.
//
// With -hotspots N the generated workload is Zipfian instead of uniform:
// N distinct hot queries are replayed -queries times with Zipf(-zipf)
// popularity, the shape of real map traffic. Combine with -cache M to
// serve the repeats from the hot-query score cache (M cached (cell,
// query) entries, invalidated wholesale by every live update); cache
// hit/miss/eviction counters are printed at exit and exposed on /stats.
//
// With -serve the command starts the streaming query server instead and
// replays the workload against it at -rate queries/s (0 = as fast as the
// server admits, closed loop), then prints throughput and p50/p95/p99
// request latencies. -timeout bounds each request with a context deadline
// and -max-queue-age sheds requests that out-wait the queue.
//
// With -serve -http ADDR the command exposes the server over HTTP as JSON
// (POST /query, GET /stats) until SIGINT/SIGTERM, honoring client
// disconnects and per-request timeouts end to end.
//
// With -shards N the posting lists live on disk instead of in memory: one
// B+-tree file for N = 1, a directory of N independent tree shards for
// N > 1 (cells striped cell mod N; each shard has its own page cache and
// lock, so concurrent cold reads scale with cores). -postings picks the location;
// without it a temporary store is built and removed on exit. Cache
// counters are printed at exit.
//
// With -updates N the command first applies N random live updates — a mix
// of inserts, deletes and reweights through the mutable index (each one
// WAL-durable before it returns on a disk store) — and compacts, so the
// query phase measures a mutated store on its memtable-empty fast path.
//
// With -open the store at -postings is reopened instead of rebuilt: the
// index comes from the committed metadata checkpoint plus WAL replay, so
// updates persisted by an earlier run — compacted or not — are served
// again. The road network and corpus are regenerated from -seed/-scale,
// which must therefore match the run that created the store (a mismatch
// is refused with a typed error, not served wrong).
//
// With -scrub PATH the command verifies a previously persisted posting
// store offline — every page checksum, the tree shape, and the free list
// of each shard — prints a per-shard report, and exits 1 if any shard is
// corrupt. Run it after a crash (or on a restore) before trusting the
// store.
//
// With -node the command serves this process's cells of the grid over a
// narrow TCP protocol for a coordinator: -cells A:B assigns the half-open
// cell range (recorded in a disk store's MANIFEST so a reopen can omit
// it), -listen picks the address. With -coord -nodes a,b,... the command
// fronts those nodes instead of searching locally: the node cell ranges
// must tile the grid (replicas share a range), answers are bit-identical
// to single-process serving, and -quota-rate/-quota-burst enable
// per-client admission control. Combine -coord with -http for the JSON
// API; without it the workload is replayed through the cluster.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		dsName     = flag.String("dataset", "ny", "ny or usanw")
		load       = flag.String("load", "", "load a dataset file written by datagen instead")
		scale      = flag.Float64("scale", 0.5, "dataset size multiplier")
		seed       = flag.Int64("seed", 1, "random seed")
		keywords   = flag.String("keywords", "", "comma-separated query keywords")
		delta      = flag.Float64("delta", 10000, "length constraint Q.∆ in metres")
		areaKm2    = flag.Float64("area", 100, "query region Q.Λ area in km²")
		method     = flag.String("method", "tgen", "tgen, app, greedy, or auto (cost-based per-query choice)")
		k          = flag.Int("k", 1, "number of regions (top-k)")
		explain    = flag.Bool("explain", false, "single-query mode: print the EXPLAIN plan (method choice, estimated vs actual cost, cells scanned vs skipped)")
		auto       = flag.Bool("auto", false, "generate keywords and region automatically")
		shards     = flag.Int("shards", 0, "disk-backed posting store: 1 = single B+-tree, >1 = that many cell-striped shards (cell mod N); 0 keeps postings in memory")
		postings   = flag.String("postings", "", "posting store location (file for -shards 1, directory for -shards >1); default: a temporary path removed on exit")
		open       = flag.Bool("open", false, "reopen the persisted posting store at -postings (committed meta + WAL replay) instead of rebuilding it; -seed/-scale must match the run that created it")
		updates    = flag.Int("updates", 0, "apply this many random live updates (insert/delete/reweight mix) before the query phase, then compact")
		queries    = flag.Int("queries", 1, "number of queries (>1 switches to workload mode)")
		hotspots   = flag.Int("hotspots", 0, "Zipfian hot-spot workload: this many distinct hot queries replayed -queries times (0 = uniform workload)")
		zipfS      = flag.Float64("zipf", 1.2, "Zipf exponent for -hotspots popularity (> 1)")
		cacheSize  = flag.Int("cache", 0, "enable the hot-query score cache with this many (cell, query) entries (0 = off)")
		parallel   = flag.Int("parallel", 0, "workload workers; 0 = GOMAXPROCS")
		serve      = flag.Bool("serve", false, "replay the workload through the streaming server and report latency percentiles")
		rate       = flag.Float64("rate", 0, "serve mode: target request rate in queries/s (0 = closed loop)")
		httpAddr   = flag.String("http", "", "listen on this address (e.g. :8080) and answer POST /query, GET /stats as JSON (implies -serve; no workload replay)")
		timeout    = flag.Duration("timeout", 0, "serve mode: per-request timeout (0 = unbounded)")
		queueAge   = flag.Duration("max-queue-age", 0, "serve mode: shed requests queued longer than this (0 = no shedding)")
		node       = flag.Bool("node", false, "cluster node mode: serve this database's cells over TCP for a coordinator (see -cells, -listen)")
		cells      = flag.String("cells", "", "node mode: owned cell range as A:B (half-open); empty adopts the range recorded in the store's MANIFEST")
		listen     = flag.String("listen", ":7070", "node mode: TCP listen address")
		coord      = flag.Bool("coord", false, "coordinator mode: answer queries by scattering to the cluster nodes at -nodes")
		nodesFlag  = flag.String("nodes", "", "coordinator mode: comma-separated node addresses (host:port); their cell ranges must tile the grid")
		quotaRate  = flag.Float64("quota-rate", 0, "coordinator mode: per-client sustained request rate (token bucket); 0 disables quotas")
		quotaBurst = flag.Float64("quota-burst", 0, "coordinator mode: per-client burst capacity; 0 = max(1, quota-rate)")
		scrub      = flag.String("scrub", "", "verify the posting store at this path (every page checksum, tree shape, free list) and exit; non-zero exit on corruption")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the query phase to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile after the query phase to this file")
	)
	flag.Parse()

	if *scrub != "" {
		runScrub(*scrub)
		return
	}

	var (
		db  *repro.Database
		err error
	)
	if *load != "" {
		if *shards > 0 || *postings != "" {
			usage("-shards/-postings apply to the built-in datasets, not -load")
		}
		db, err = repro.Load(*load)
	} else {
		if *open && *postings == "" {
			usage("-open needs -postings (there is no store to reopen)")
		}
		if *postings != "" && *shards <= 0 && !*open {
			usage("-postings needs -shards >= 1 (without it the store would stay in memory)")
		}
		sc, cleanup, scErr := storeConfig(*shards, *postings, *open)
		if scErr != nil {
			fatal(scErr)
		}
		// fatal exits without unwinding defers, so register the temp-store
		// cleanup on both paths (RemoveAll is idempotent).
		defer cleanup()
		fatalCleanups = append(fatalCleanups, cleanup)
		switch strings.ToLower(*dsName) {
		case "ny":
			db, err = repro.NYLikeWithStore(*seed, *scale, sc)
		case "usanw":
			db, err = repro.USANWLikeWithStore(*seed, *scale, sc)
		default:
			usage(fmt.Sprintf("unknown dataset %q", *dsName))
		}
	}
	if err != nil {
		fatal(err)
	}
	// Close on the fatal path too (fatal exits without unwinding defers):
	// a persisted -postings store is only valid once its tree headers are
	// flushed by Close. The deferred close reports flush errors — silently
	// dropping one would leave a store that looks persisted but opens
	// stale.
	defer func() {
		if cerr := db.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "lcmsr: closing store:", cerr)
		}
	}()
	fatalCleanups = append(fatalCleanups, func() { db.Close() })
	fmt.Printf("dataset %s: %d nodes, %d edges, %d objects\n",
		*dsName, db.NumNodes(), db.NumEdges(), db.NumObjects())
	if *cacheSize > 0 {
		db.SetScoreCache(*cacheSize)
		fmt.Printf("score cache: enabled, ~%d entries\n", *cacheSize)
		defer func() {
			if st, ok := db.StoreStats(); ok && st.ScoreCache != nil {
				sc := st.ScoreCache
				fmt.Printf("score cache: %d hits, %d misses, %d evictions, %d live entries\n",
					sc.Hits, sc.Misses, sc.Evictions, sc.Entries)
			}
		}()
	}
	if st, ok := db.StoreStats(); ok && st.Shards > 0 {
		fmt.Printf("store: %d shard(s), disk-backed posting lists\n", st.Shards)
		defer func() {
			if st, ok := db.StoreStats(); ok && st.Shards > 0 {
				fmt.Printf("store cache: %d hits, %d misses, %d evictions, %d resident pages\n",
					st.CacheHits, st.CacheMisses, st.CacheEvictions, st.CachedPages)
			}
		}()
	}

	if *updates > 0 {
		if err := runUpdates(db, *updates, *seed); err != nil {
			fatal(err)
		}
	}

	if *node {
		runNode(db, *cells, *listen)
		return
	}

	var q repro.Query
	if *auto || *keywords == "" {
		rng := rand.New(rand.NewSource(*seed + 100))
		qs, err := db.GenQueries(rng, 1, 3, *areaKm2*1e6, *delta)
		if err != nil {
			fatal(err)
		}
		q = qs[0]
	} else {
		bounds := db.Bounds()
		cx := (bounds.MinX + bounds.MaxX) / 2
		cy := (bounds.MinY + bounds.MaxY) / 2
		half := 0.5 * math.Sqrt(*areaKm2*1e6)
		q = repro.Query{
			Keywords: strings.Split(*keywords, ","),
			Delta:    *delta,
			Region:   repro.Rect{MinX: cx - half, MinY: cy - half, MaxX: cx + half, MaxY: cy + half},
		}
	}
	opts := repro.SearchOptions{}
	m, err := repro.ParseMethod(*method)
	if err != nil {
		usage(err.Error())
	}
	opts.Method = m

	fmt.Printf("query: keywords=%v ∆=%.0fm Λ=%.0fkm² method=%v\n",
		q.Keywords, q.Delta, (q.Region.MaxX-q.Region.MinX)*(q.Region.MaxY-q.Region.MinY)/1e6, opts.Method)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	switch {
	case *coord:
		runCoord(db, q, opts, *nodesFlag, *httpAddr, *queries, *parallel, *timeout, *queueAge,
			*seed, *areaKm2, *delta, *auto || *keywords == "", *hotspots, *zipfS, *quotaRate, *quotaBurst)
	case *httpAddr != "": // -http implies serve mode
		runHTTP(db, opts, *httpAddr, *parallel, *timeout, *queueAge)
	case *serve:
		runServe(db, q, opts, *queries, *parallel, *rate, *timeout, *queueAge, *seed, *areaKm2, *delta, *auto || *keywords == "", *hotspots, *zipfS)
	case *queries > 1:
		runWorkload(db, q, opts, *queries, *parallel, *seed, *areaKm2, *delta, *auto || *keywords == "", *hotspots, *zipfS)
	default:
		runSingle(db, q, opts, *k, *explain)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // materialize the steady-state heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// runUpdates applies n random live updates — a 2:1:1 mix of reweights,
// inserts, and deletes — then compacts, so the query phase runs against a
// mutated store with an empty memtable. Inserted objects reuse keywords
// already in the corpus, so generated queries can match them.
func runUpdates(db *repro.Database, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed + 7))
	bounds := db.Bounds()
	var inserted, deleted, reweighted int
	start := time.Now()
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			p := repro.ObjectSpec{
				X:    bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX),
				Y:    bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY),
				Text: fmt.Sprintf("t%04d t%04d", 1+rng.Intn(40), 1+rng.Intn(40)),
			}
			if _, err := db.Insert(p); err != nil {
				return fmt.Errorf("live insert: %w", err)
			}
			inserted++
		case 1:
			// Hitting an already-deleted id just skips the turn.
			switch err := db.Delete(rng.Intn(db.NumObjects())); {
			case err == nil:
				deleted++
			case !errors.Is(err, repro.ErrNoSuchObject):
				return fmt.Errorf("live delete: %w", err)
			}
		default:
			switch err := db.Reweight(rng.Intn(db.NumObjects()), 0.5+rng.Float64()); {
			case err == nil:
				reweighted++
			case !errors.Is(err, repro.ErrNoSuchObject):
				return fmt.Errorf("live reweight: %w", err)
			}
		}
	}
	if err := db.Compact(); err != nil {
		return fmt.Errorf("compact after updates: %w", err)
	}
	elapsed := time.Since(start)
	fmt.Printf("updates: %d applied in %.3fs (%.0f updates/s): %d inserted, %d deleted, %d reweighted; compacted\n",
		n, elapsed.Seconds(), float64(n)/elapsed.Seconds(), inserted, deleted, reweighted)
	return nil
}

// runScrub verifies the posting store at path and exits non-zero on any
// corruption, printing the per-shard report either way.
func runScrub(path string) {
	rep, err := repro.ScrubStore(path)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
	if rerr := rep.Err(); rerr != nil {
		fatal(fmt.Errorf("scrub %s: store is corrupt: %w", path, rerr))
	}
	fmt.Printf("scrub %s: ok (%d shard(s))\n", path, len(rep.Shards))
}

// runSingle answers one query and prints its regions in full detail,
// plus the EXPLAIN plan when asked.
func runSingle(db *repro.Database, q repro.Query, opts repro.SearchOptions, k int, explain bool) {
	resp := db.Do(context.Background(), repro.Request{Query: q, Search: opts, K: k, Explain: explain})
	if resp.Err != nil {
		fatal(resp.Err)
	}
	printPlan(resp.Plan)
	if len(resp.Results) == 0 {
		fmt.Println("no region matches the keywords inside Q.Λ")
		return
	}
	for i, r := range resp.Results {
		fmt.Printf("region %d: weight=%.4f length=%.0fm nodes=%d objects=%d\n",
			i+1, r.Score, r.Length, len(r.Nodes), len(r.Objects))
		for _, o := range r.Objects {
			fmt.Printf("  object %d at (%.0f, %.0f) relevance %.4f\n", o.ID, o.X, o.Y, o.Score)
		}
	}
}

// printPlan renders an EXPLAIN plan in the human-readable form (-explain).
func printPlan(p *repro.Plan) {
	if p == nil {
		return
	}
	how := "requested by client"
	if p.Auto {
		how = "chosen by planner"
	}
	fmt.Printf("plan: method=%v (%s)\n", p.Method, how)
	fmt.Printf("  reason: %s\n", p.Reason)
	fmt.Printf("  budget=%v pressure=%.2f degraded=%v\n", p.Budget, p.Pressure, p.Degraded)
	fmt.Printf("  cost: estimated=%v actual=%v (greedy=%v tgen=%v app=%v, %d nodes)\n",
		p.EstimatedCost, p.ActualCost, p.EstGreedy, p.EstTGEN, p.EstAPP, p.Nodes)
	fmt.Printf("  cells: in-rect=%d scanned=%d skipped=%d (empty=%d no-term=%d cache-hit=%d) wand-pruned=%d\n",
		p.CellsInRect, p.CellsScanned, p.CellsSkipped(),
		p.CellsSkippedEmpty, p.CellsSkippedNoTerm, p.CellsSkippedCache, p.CellsPrunedWAND)
	fmt.Printf("  postings: lists=%d postings=%d rect-filtered=%d candidates=%d\n",
		p.PostingLists, p.Postings, p.PostingsFiltered, p.Candidates)
	if c := p.Cluster; c != nil {
		fmt.Printf("  cluster: groups contacted=%d skipped-rect=%d skipped-term=%d\n",
			c.GroupsContacted, c.GroupsSkippedRect, c.GroupsSkippedTerm)
	}
}

// runWorkload answers a many-query workload through the parallel engine
// and reports throughput. Generated workloads draw fresh queries from the
// dataset distribution; an explicit -keywords query is replicated n times.
func runWorkload(db *repro.Database, q repro.Query, opts repro.SearchOptions, n, workers int, seed int64, areaKm2, delta float64, generated bool, hotspots int, zipfS float64) {
	qs := workloadQueries(db, q, n, seed, areaKm2, delta, generated, hotspots, zipfS)
	results, stats, err := db.RunBatch(context.Background(), qs, opts, workers)
	if err != nil {
		fatal(err)
	}
	var totalWeight float64
	for _, r := range results {
		if r != nil {
			totalWeight += r.Score
		}
	}
	fmt.Printf("workload: %d queries, %d workers: %.3fs total, %.1f queries/s, %d matched, Σweight=%.4f\n",
		len(qs), stats.Workers, stats.Elapsed.Seconds(), stats.QueriesPerSecond(len(qs)), stats.Matched, totalWeight)
}

// workloadQueries generates n queries from the dataset distribution —
// uniform, or a Zipfian replay of `hotspots` hot queries — or replicates
// an explicit -keywords query n times.
func workloadQueries(db *repro.Database, q repro.Query, n int, seed int64, areaKm2, delta float64, generated bool, hotspots int, zipfS float64) []repro.Query {
	if generated {
		rng := rand.New(rand.NewSource(seed + 100))
		var qs []repro.Query
		var err error
		if hotspots > 0 {
			qs, err = db.GenHotspotQueries(rng, n, hotspots, 3, areaKm2*1e6, delta, zipfS)
		} else {
			qs, err = db.GenQueries(rng, n, 3, areaKm2*1e6, delta)
		}
		if err != nil {
			fatal(err)
		}
		return qs
	}
	qs := make([]repro.Query, n)
	for i := range qs {
		qs[i] = q
	}
	return qs
}

// runServe replays the workload against the streaming server and prints
// the latency percentiles the server measured.
//
// With rate > 0 it is an open-loop generator: each request is dispatched
// on its own schedule regardless of earlier answers, so if the server
// falls behind the target rate, queueing delay accumulates into the
// latencies — by design. With rate <= 0 it is a closed loop: a bounded
// set of clients submit sequentially, each waiting for its answer before
// sending the next, which measures per-request service time at full
// server utilization.
func runServe(db *repro.Database, q repro.Query, opts repro.SearchOptions, n, workers int, rate float64, timeout, queueAge time.Duration, seed int64, areaKm2, delta float64, generated bool, hotspots int, zipfS float64) {
	qs := workloadQueries(db, q, n, seed, areaKm2, delta, generated, hotspots, zipfS)
	srv, err := db.Serve(repro.ServeOptions{Workers: workers, Search: opts, MaxQueueAge: queueAge})
	if err != nil {
		fatal(err)
	}
	submit := func(q repro.Query) error {
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		_, err := srv.Submit(ctx, q)
		return err
	}
	var (
		wg         sync.WaitGroup
		failed     atomic.Int64 // real failures, not policy rejections
		policy     atomic.Int64 // deadline misses + queue-age sheds
		errOnce    sync.Once
		firstErr   error
		policyOnce sync.Once
		firstPol   error
	)
	record := func(err error) {
		// A deadline miss or a queue-age shed is the configured policy
		// doing its job under overload; anything else is a real failure.
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, repro.ErrOverloaded) {
			policy.Add(1)
			policyOnce.Do(func() { firstPol = err })
			return
		}
		failed.Add(1)
		errOnce.Do(func() { firstErr = err })
	}
	var shed atomic.Int64
	start := time.Now()
	if rate > 0 {
		// Cap in-flight submissions so a generator far outpacing the server
		// cannot pile up one blocked goroutine per request. Over-cap
		// requests are shed (counted, not sent), which keeps the open-loop
		// schedule honest instead of silently degrading to a closed loop.
		const maxInFlight = 16384
		sem := make(chan struct{}, maxInFlight)
		for i := range qs {
			time.Sleep(time.Until(start.Add(time.Duration(float64(i) / rate * float64(time.Second)))))
			select {
			case sem <- struct{}{}:
			default:
				shed.Add(1)
				continue
			}
			wg.Add(1)
			go func(q repro.Query) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := submit(q); err != nil {
					record(err)
				}
			}(qs[i])
		}
	} else {
		clients := 2 * workers
		if clients <= 0 {
			clients = 2 * runtime.GOMAXPROCS(0)
		}
		var next atomic.Int64
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(qs) {
						return
					}
					if err := submit(qs[i]); err != nil {
						record(err)
					}
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	srv.Close()
	st := srv.Stats()
	served := int64(n) - shed.Load()
	fmt.Printf("serve: %d queries, rate target %.0f q/s: %.3fs total, %.1f queries/s, %d matched, %d failed",
		n, rate, elapsed.Seconds(), float64(served)/elapsed.Seconds(), st.Matched, failed.Load())
	if ns := shed.Load(); ns > 0 {
		fmt.Printf(", %d shed (in-flight cap)", ns)
	}
	if st.Shed > 0 {
		fmt.Printf(", %d shed (queue age)", st.Shed)
	}
	fmt.Println()
	fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v (window %d)\n",
		st.P50, st.P95, st.P99, st.Max, st.Window)
	if np := policy.Load(); np > 0 {
		fmt.Printf("policy rejections: %d (first: %v)\n", np, firstPol)
	}
	if nf := failed.Load(); nf > 0 {
		fatal(fmt.Errorf("%d/%d serve requests failed; first error: %w", nf, n, firstErr))
	}
}

// runNode serves the database's cells as one cluster node until SIGINT
// or SIGTERM. The cell range comes from -cells A:B, or — on a reopened
// disk store — from the assignment recorded in the MANIFEST; an explicit
// -cells on a disk-backed store records the assignment for next time.
func runNode(db *repro.Database, cells, listen string) {
	var lo, hi uint32
	if cells != "" {
		if _, err := fmt.Sscanf(cells, "%d:%d", &lo, &hi); err != nil || lo >= hi {
			usage(fmt.Sprintf("-cells %q: want A:B with A < B", cells))
		}
		// Persist the assignment when the store can hold it, so a reopen
		// serves the same cells without -cells; in-memory stores just skip.
		if err := db.RecordCellRange(lo, hi); err == nil {
			fmt.Printf("node: cell assignment [%d, %d) recorded in MANIFEST\n", lo, hi)
		}
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	cn, err := db.ServeClusterNode(ln, lo, hi)
	if err != nil {
		_ = ln.Close()
		fatal(err)
	}
	alo, ahi := cn.CellRange()
	fmt.Printf("node: serving cells [%d, %d) of %d on %s\n", alo, ahi, db.NumCells(), cn.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("node: %v, shutting down\n", s)
	if err := cn.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "lcmsr: node close:", err)
	}
}

// runCoord fronts the cluster at -nodes: with -http it serves the HTTP
// API until SIGINT/SIGTERM, otherwise it replays the workload through
// the coordinator closed-loop and prints throughput, latency, and the
// cluster routing counters.
func runCoord(db *repro.Database, q repro.Query, opts repro.SearchOptions, nodes, httpAddr string,
	n, workers int, timeout, queueAge time.Duration,
	seed int64, areaKm2, delta float64, generated bool, hotspots int, zipfS float64,
	quotaRate, quotaBurst float64) {
	if nodes == "" {
		usage("-coord needs -nodes host:port,...")
	}
	var quota *repro.ClusterQuota
	if quotaRate > 0 {
		quota = &repro.ClusterQuota{RatePerSec: quotaRate, Burst: quotaBurst}
	}
	cl, err := db.OpenCluster(repro.ClusterOptions{
		Nodes: strings.Split(nodes, ","),
		Serve: repro.ServeOptions{Workers: workers, Search: opts, MaxQueueAge: queueAge},
		Quota: quota,
	})
	if err != nil {
		fatal(err)
	}
	printCluster := func() {
		st := cl.Stats()
		fmt.Printf("cluster: %d searches, %d skipped (rect), %d skipped (term), %d retries, %d no-replica, %d quota-denied over %d group(s)\n",
			st.Searches, st.SkippedRect, st.SkippedTerm, st.Retries, st.NoReplica, st.QuotaDenied, st.Groups)
		for _, ns := range st.Nodes {
			fmt.Printf("  node %s cells [%d, %d): %d sent, %d errors, p50=%v p95=%v p99=%v (%d samples)\n",
				ns.Addr, ns.CellLo, ns.CellHi, ns.Sent, ns.Errors, ns.P50, ns.P95, ns.P99, ns.Samples)
		}
	}
	if httpAddr != "" {
		hs := &http.Server{Addr: httpAddr, Handler: cl.HTTPHandler(repro.HTTPOptions{Timeout: timeout})}
		ln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			cl.Close()
			fatal(err)
		}
		fmt.Printf("coord: %d node(s), serving POST /query and GET /stats on %s (method=%v timeout=%v)\n",
			len(cl.Stats().Nodes), ln.Addr(), opts.Method, timeout)
		done := make(chan error, 1)
		go func() { done <- hs.Serve(ln) }()
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		select {
		case err := <-done:
			cl.Close()
			fatal(err)
		case s := <-sig:
			fmt.Printf("coord: %v, shutting down\n", s)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := hs.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "lcmsr: shutdown:", err)
			}
			printCluster()
			cl.Close()
		}
		return
	}
	qs := workloadQueries(db, q, n, seed, areaKm2, delta, generated, hotspots, zipfS)
	var (
		wg       sync.WaitGroup
		failed   atomic.Int64
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	clients := 2 * workers
	if clients <= 0 {
		clients = 2 * runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				ctx := context.Background()
				if timeout > 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, timeout)
					defer cancel()
				}
				if resp := cl.Do(ctx, repro.Request{Query: qs[i]}); resp.Err != nil {
					failed.Add(1)
					errOnce.Do(func() { firstErr = resp.Err })
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := cl.ServeStats()
	fmt.Printf("coord: %d queries over the cluster: %.3fs total, %.1f queries/s, %d matched, %d failed\n",
		len(qs), elapsed.Seconds(), float64(len(qs))/elapsed.Seconds(), st.Matched, failed.Load())
	fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v (window %d)\n", st.P50, st.P95, st.P99, st.Max, st.Window)
	printCluster()
	cl.Close()
	if nf := failed.Load(); nf > 0 {
		fatal(fmt.Errorf("%d/%d cluster requests failed; first error: %w", nf, len(qs), firstErr))
	}
}

// runHTTP serves the streaming query service over HTTP until SIGINT or
// SIGTERM: POST /query answers LCMSR queries as JSON, GET /stats reports
// counters and latency percentiles. The per-request -timeout becomes the
// handler's deadline bound and -max-queue-age the shedding policy.
func runHTTP(db *repro.Database, opts repro.SearchOptions, addr string, workers int, timeout, queueAge time.Duration) {
	srv, err := db.Serve(repro.ServeOptions{Workers: workers, Search: opts, MaxQueueAge: queueAge})
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{
		Addr:    addr,
		Handler: srv.HTTPHandler(repro.HTTPOptions{Timeout: timeout}),
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("http: serving POST /query and GET /stats on %s (method=%v timeout=%v max-queue-age=%v)\n",
		ln.Addr(), opts.Method, timeout, queueAge)
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		srv.Close()
		fatal(err)
	case s := <-sig:
		fmt.Printf("http: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "lcmsr: shutdown:", err)
		}
		srv.Close()
		fmt.Println("http:", srv.Stats())
	}
}

// storeConfig translates -shards/-postings/-open into a StoreConfig,
// creating a temporary location (removed by cleanup) when none was given.
func storeConfig(shards int, path string, open bool) (repro.StoreConfig, func(), error) {
	if shards <= 0 && !open {
		return repro.StoreConfig{}, func() {}, nil
	}
	if open {
		return repro.StoreConfig{Path: path, OpenExisting: true}, func() {}, nil
	}
	cleanup := func() {}
	if path == "" {
		tmp, err := os.MkdirTemp("", "lcmsr-store-")
		if err != nil {
			return repro.StoreConfig{}, cleanup, err
		}
		cleanup = func() { os.RemoveAll(tmp) }
		if shards == 1 {
			path = filepath.Join(tmp, "postings.bt")
		} else {
			path = tmp
		}
	}
	return repro.StoreConfig{Path: path, Shards: shards}, cleanup, nil
}

// fatalCleanups run before a fatal exit (os.Exit skips defers); they
// must be idempotent, since the same function may also be deferred.
var fatalCleanups []func()

func fatal(err error) {
	for i := len(fatalCleanups) - 1; i >= 0; i-- {
		fatalCleanups[i]()
	}
	fmt.Fprintln(os.Stderr, "lcmsr:", err)
	os.Exit(1)
}

// usage reports a flag-usage error; like fatal it runs the registered
// cleanups (a store may already have been built), but exits 2.
func usage(msg string) {
	for i := len(fatalCleanups) - 1; i >= 0; i-- {
		fatalCleanups[i]()
	}
	fmt.Fprintln(os.Stderr, "lcmsr:", msg)
	os.Exit(2)
}
