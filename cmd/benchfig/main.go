// Command benchfig regenerates the paper's tables and figures as plain
// text tables (see DESIGN.md for the experiment index).
//
// Usage:
//
//	benchfig -exp all                 # every experiment, paper order
//	benchfig -exp fig15kw             # one experiment
//	benchfig -exp fig7 -queries 20    # more queries per point
//	benchfig -list                    # show experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all'")
		queries = flag.Int("queries", 8, "queries per measurement point (paper uses 50)")
		scale   = flag.Float64("scale", 1.0, "dataset size multiplier")
		seed    = flag.Int64("seed", 42, "random seed")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.ExperimentIDs(), "\n"))
		return
	}
	env := experiments.NewEnv(experiments.Config{
		Scale:   *scale,
		Queries: *queries,
		Seed:    *seed,
	})
	if *exp == "all" {
		// Stream each table as it completes rather than batching at the
		// end, so long runs show progress.
		for _, id := range experiments.ExperimentIDs() {
			t, ok, err := env.Named(id)
			if !ok {
				continue
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchfig:", id, err)
				os.Exit(1)
			}
			fmt.Println(t.Format())
		}
		return
	}
	t, ok, err := env.Named(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchfig: unknown experiment %q; try -list\n", *exp)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
	fmt.Println(t.Format())
}
