// Command datagen generates a synthetic dataset and writes its road
// network and objects to a file in the dataset text format (loadable by
// cmd/lcmsr -load), optionally building the
// disk-based B+-tree posting store alongside it.
//
// Usage:
//
//	datagen -dataset ny -scale 1.0 -out ny.graph -postings ny.bt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/grid"
)

func main() {
	var (
		dsName   = flag.String("dataset", "ny", "ny or usanw")
		scale    = flag.Float64("scale", 1.0, "dataset size multiplier")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output path for the road network (required)")
		postings = flag.String("postings", "", "optional path for the B+-tree posting store")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	cfg := dataset.Config{Seed: *seed, Scale: *scale}
	if *postings != "" {
		store, err := grid.NewBTreeStore(*postings)
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		cfg.Store = store
	}
	var (
		d   *dataset.Dataset
		err error
	)
	switch strings.ToLower(*dsName) {
	case "ny":
		d, err = dataset.NYLike(cfg)
	case "usanw":
		d, err = dataset.USANWLike(cfg)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dsName)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if _, err := d.WriteTo(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges, %d objects, %d vocabulary terms\n",
		*out, d.Graph.NumNodes(), d.Graph.NumEdges(), len(d.Objects), d.Vocab.NumTerms())
	if *postings != "" {
		fmt.Printf("posting lists persisted to %s\n", *postings)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
