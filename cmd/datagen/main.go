// Command datagen generates a synthetic dataset and writes its road
// network and objects to a file in the dataset text format (loadable by
// cmd/lcmsr -load), optionally building the
// disk-based B+-tree posting store alongside it.
//
// Usage:
//
//	datagen -dataset ny -scale 1.0 -out ny.graph -postings ny.bt
//	datagen -dataset ny -out ny.graph -postings ny.store -shards 8
//
// With -shards > 1 the posting store is a directory of that many
// independent B+-tree shards (see grid.ShardedStore) instead of a single
// tree file. A sharded store is written with an index metadata
// checkpoint (META.0/META.1), so it can later be reopened without a
// rebuild — `lcmsr -open -postings DIR` with the matching -seed/-scale,
// or grid.NewIndexOver from the library — and absorb live updates.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/grid"
)

func main() {
	var (
		dsName   = flag.String("dataset", "ny", "ny or usanw")
		scale    = flag.Float64("scale", 1.0, "dataset size multiplier")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output path for the road network (required)")
		postings = flag.String("postings", "", "optional path for the B+-tree posting store (a directory when -shards > 1)")
		shards   = flag.Int("shards", 1, "number of posting-store shards (requires -postings)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	if *shards > 1 && *postings == "" {
		fmt.Fprintln(os.Stderr, "datagen: -shards needs -postings (nowhere to put the shards)")
		os.Exit(2)
	}
	cfg := dataset.Config{Seed: *seed, Scale: *scale}
	if *postings != "" {
		var (
			store grid.PostingStore
			err   error
		)
		if *shards > 1 {
			store, err = grid.CreateShardedStore(*postings, grid.ShardedOptions{Shards: *shards})
		} else {
			store, err = grid.NewBTreeStore(*postings)
		}
		if err != nil {
			fatal(err)
		}
		// Close on the fatal path (fatal's os.Exit skips defers; an
		// unflushed store would look valid but open empty) and explicitly
		// before the success message below — the store is only "persisted"
		// once the flush succeeded. On the fatal path the partial store is
		// removed too, so a corrected rerun isn't blocked by create-fresh.
		storeClose = store.Close
		fatalCleanups = append(fatalCleanups, func() {
			store.Close()
			grid.RemoveStore(*postings)
		})
		cfg.Store = store
	}
	var (
		d   *dataset.Dataset
		err error
	)
	switch strings.ToLower(*dsName) {
	case "ny":
		d, err = dataset.NYLike(cfg)
	case "usanw":
		d, err = dataset.USANWLike(cfg)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dsName)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if _, err := d.WriteTo(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges, %d objects, %d vocabulary terms\n",
		*out, d.Graph.NumNodes(), d.Graph.NumEdges(), len(d.Objects), d.Vocab.NumTerms())
	if *postings != "" {
		if err := storeClose(); err != nil {
			fatal(fmt.Errorf("flushing posting store: %w", err))
		}
		fatalCleanups = nil // store closed and valid; nothing to undo
		if *shards > 1 {
			fmt.Printf("posting lists persisted to %s (%d shards)\n", *postings, *shards)
		} else {
			fmt.Printf("posting lists persisted to %s\n", *postings)
		}
	}
}

// storeClose flushes the posting store; the success path calls it
// explicitly so a failed flush can't hide behind a defer.
var storeClose func() error

// fatalCleanups run before a fatal exit (os.Exit skips defers) — same
// mechanism as cmd/lcmsr. Here they discard the partial store: Close is
// idempotent via the nil-out on the success path.
var fatalCleanups []func()

func fatal(err error) {
	for i := len(fatalCleanups) - 1; i >= 0; i-- {
		fatalCleanups[i]()
	}
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
