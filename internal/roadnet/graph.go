// Package roadnet implements the road-network graph substrate of the paper
// (§2, Definition 1): an undirected graph G = (V, E, τ, λ) whose nodes are
// road junctions, dead-ends, or geo-textual object locations, with a length
// function τ on edges and a spatial mapping λ on nodes. It also provides the
// operations the query algorithms need: rectangular subgraph extraction
// (for Q.Λ), connected components, nearest-node snapping, and a plain-text
// serialization format for datasets.
package roadnet

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/geo"
)

// NodeID identifies a node within a Graph. IDs are dense, 0..NumNodes-1.
type NodeID int32

// EdgeID identifies an edge within a Graph. IDs are dense, 0..NumEdges-1.
type EdgeID int32

// Edge is an undirected road segment between two nodes with length τ ≥ 0.
type Edge struct {
	U, V   NodeID
	Length float64
}

// Halfedge is one direction of an undirected edge, as stored in the
// adjacency structure.
type Halfedge struct {
	To     NodeID
	Edge   EdgeID
	Length float64
}

// Graph is an undirected road network with spatial node coordinates.
// Construct with NewBuilder; a built Graph is immutable and safe for
// concurrent reads.
type Graph struct {
	pts   []geo.Point
	edges []Edge
	// CSR adjacency: halfedges of node v are adj[offs[v]:offs[v+1]].
	offs []int32
	adj  []Halfedge
	bbox geo.Rect
	// Node cell index: a uniform nx×ny grid over bbox with ~1 node per
	// cell; the nodes of cell c are cellNodes[cellStart[c]:cellStart[c+1]]
	// in ascending ID order. Rectangle queries walk only overlapping cells
	// instead of scanning all nodes.
	cellStart []int32
	cellNodes []NodeID
	nx, ny    int32
	cellW     float64
	cellH     float64
}

// Builder accumulates nodes and edges and produces an immutable Graph.
type Builder struct {
	pts   []geo.Point
	edges []Edge
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return &Builder{} }

// AddNode appends a node at p and returns its ID.
func (b *Builder) AddNode(p geo.Point) NodeID {
	b.pts = append(b.pts, p)
	return NodeID(len(b.pts) - 1)
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.pts) }

// AddEdge appends an undirected edge (u, v) with the given length.
// It returns an error for out-of-range endpoints, self loops, or negative
// lengths; duplicate edges are permitted (parallel roads exist).
func (b *Builder) AddEdge(u, v NodeID, length float64) error {
	n := NodeID(len(b.pts))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("roadnet: edge (%d,%d) references unknown node (have %d nodes)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("roadnet: self loop at node %d", u)
	}
	if length < 0 || math.IsNaN(length) || math.IsInf(length, 0) {
		return fmt.Errorf("roadnet: invalid edge length %v", length)
	}
	b.edges = append(b.edges, Edge{U: u, V: v, Length: length})
	return nil
}

// AddEdgeEuclidean appends an edge whose length is the Euclidean distance
// between its endpoints.
func (b *Builder) AddEdgeEuclidean(u, v NodeID) error {
	n := NodeID(len(b.pts))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("roadnet: edge (%d,%d) references unknown node (have %d nodes)", u, v, n)
	}
	return b.AddEdge(u, v, b.pts[u].Dist(b.pts[v]))
}

// Build freezes the builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	n := len(b.pts)
	g := &Graph{
		pts:   append([]geo.Point(nil), b.pts...),
		edges: append([]Edge(nil), b.edges...),
		offs:  make([]int32, n+1),
	}
	deg := make([]int32, n)
	for _, e := range g.edges {
		deg[e.U]++
		deg[e.V]++
	}
	for i := 0; i < n; i++ {
		g.offs[i+1] = g.offs[i] + deg[i]
	}
	g.adj = make([]Halfedge, len(g.edges)*2)
	cursor := make([]int32, n)
	copy(cursor, g.offs[:n])
	for id, e := range g.edges {
		g.adj[cursor[e.U]] = Halfedge{To: e.V, Edge: EdgeID(id), Length: e.Length}
		cursor[e.U]++
		g.adj[cursor[e.V]] = Halfedge{To: e.U, Edge: EdgeID(id), Length: e.Length}
		cursor[e.V]++
	}
	g.bbox = computeBBox(g.pts)
	g.sizeCells()
	g.cellStart, g.cellNodes = g.buildCellIndex(nil, nil)
	return g
}

// sizeCells picks the cell-grid dimensions for the bounding box: about one
// node per cell, with the grid's aspect ratio following the bbox so cells
// stay roughly square. Degenerate extents collapse to a single row/column.
func (g *Graph) sizeCells() {
	n := len(g.pts)
	if n == 0 {
		g.nx, g.ny, g.cellW, g.cellH = 0, 0, 1, 1
		return
	}
	w, h := g.bbox.Width(), g.bbox.Height()
	nx, ny := 1, 1
	switch {
	case w > 0 && h > 0:
		nx = clampInt(int(math.Round(math.Sqrt(float64(n)*w/h))), 1, n)
		ny = clampInt(int(math.Round(math.Sqrt(float64(n)*h/w))), 1, n)
	case w > 0:
		nx = n
	case h > 0:
		ny = n
	}
	g.nx, g.ny = int32(nx), int32(ny)
	g.cellW, g.cellH = w/float64(nx), h/float64(ny)
	if g.cellW <= 0 {
		g.cellW = 1
	}
	if g.cellH <= 0 {
		g.cellH = 1
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// cellOf returns the cell index of a point inside the bounding box.
func (g *Graph) cellOf(p geo.Point) int32 {
	cx := int32((p.X - g.bbox.MinX) / g.cellW)
	cy := int32((p.Y - g.bbox.MinY) / g.cellH)
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return cy*g.nx + cx
}

// buildCellIndex buckets all nodes into the cell grid, reusing the given
// buffers when they are large enough. sizeCells must have run first.
func (g *Graph) buildCellIndex(start []int32, nodes []NodeID) ([]int32, []NodeID) {
	cells := int(g.nx) * int(g.ny)
	start = growTo(start, cells+1)
	for i := range start {
		start[i] = 0
	}
	if cells == 0 {
		return start, nodes[:0]
	}
	for _, p := range g.pts {
		start[g.cellOf(p)+1]++
	}
	for c := 0; c < cells; c++ {
		start[c+1] += start[c]
	}
	nodes = growTo(nodes, len(g.pts))
	// Fill using start[c] as a cursor (ascending i keeps cells sorted),
	// then shift right to restore the prefix offsets.
	for i, p := range g.pts {
		c := g.cellOf(p)
		nodes[start[c]] = NodeID(i)
		start[c]++
	}
	copy(start[1:cells+1], start[:cells])
	start[0] = 0
	return start, nodes
}

// growTo returns s with length n, reusing its backing array when possible.
func growTo[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// appendNodesInRect appends the IDs of all nodes inside r to buf, walking
// only the cells overlapping r, in cell order (ascending inside each cell).
func (g *Graph) appendNodesInRect(r geo.Rect, buf []NodeID) []NodeID {
	if g.nx == 0 {
		return buf
	}
	// Clip to the bounding box before computing cell coordinates: for a
	// rectangle far larger than the bbox the raw quotient can overflow
	// int, whose conversion result is implementation-defined.
	clipped, ok := r.Intersect(g.bbox)
	if !ok {
		return buf
	}
	cx0 := clampInt(int((clipped.MinX-g.bbox.MinX)/g.cellW), 0, int(g.nx)-1)
	cx1 := clampInt(int((clipped.MaxX-g.bbox.MinX)/g.cellW), 0, int(g.nx)-1)
	cy0 := clampInt(int((clipped.MinY-g.bbox.MinY)/g.cellH), 0, int(g.ny)-1)
	cy1 := clampInt(int((clipped.MaxY-g.bbox.MinY)/g.cellH), 0, int(g.ny)-1)
	for cy := cy0; cy <= cy1; cy++ {
		row := int32(cy) * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			c := row + int32(cx)
			for _, v := range g.cellNodes[g.cellStart[c]:g.cellStart[c+1]] {
				if r.Contains(g.pts[v]) {
					buf = append(buf, v)
				}
			}
		}
	}
	return buf
}

func computeBBox(pts []geo.Point) geo.Rect {
	if len(pts) == 0 {
		return geo.Rect{}
	}
	r := geo.Rect{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		r.MinX = math.Min(r.MinX, p.X)
		r.MinY = math.Min(r.MinY, p.Y)
		r.MaxX = math.Max(r.MaxX, p.X)
		r.MaxY = math.Max(r.MaxY, p.Y)
	}
	return r
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.pts) }

// NumEdges returns |E| (undirected edges, not arcs).
func (g *Graph) NumEdges() int { return len(g.edges) }

// Point returns λ(v), the coordinates of node v.
func (g *Graph) Point(v NodeID) geo.Point { return g.pts[v] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Neighbors returns the halfedges out of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []Halfedge {
	return g.adj[g.offs[v]:g.offs[v+1]]
}

// Degree returns the number of incident edges of v.
func (g *Graph) Degree(v NodeID) int { return int(g.offs[v+1] - g.offs[v]) }

// BBox returns the bounding rectangle of all node coordinates.
func (g *Graph) BBox() geo.Rect { return g.bbox }

// TotalLength returns Σ τ(e) over all edges.
func (g *Graph) TotalLength() float64 {
	var sum float64
	for _, e := range g.edges {
		sum += e.Length
	}
	return sum
}

// MinEdgeLength returns the smallest positive edge length (d_min in the
// complexity analysis of §4.2.4), or fallback if the graph has no positive-
// length edge.
func (g *Graph) MinEdgeLength(fallback float64) float64 {
	best := math.Inf(1)
	for _, e := range g.edges {
		if e.Length > 0 && e.Length < best {
			best = e.Length
		}
	}
	if math.IsInf(best, 1) {
		return fallback
	}
	return best
}

// MaxEdgeLength returns the largest edge length (τ_max in the Greedy score
// of §6.1), or 0 for an edgeless graph.
func (g *Graph) MaxEdgeLength() float64 {
	var best float64
	for _, e := range g.edges {
		if e.Length > best {
			best = e.Length
		}
	}
	return best
}

// NodesInRect returns the IDs of all nodes inside r, in ascending order.
// The cell index limits the scan to the cells overlapping r.
func (g *Graph) NodesInRect(r geo.Rect) []NodeID {
	out := g.appendNodesInRect(r, nil)
	slices.Sort(out)
	return out
}

// NearestNode returns the node closest to p in Euclidean distance (lowest
// ID on exact ties, matching a full ascending scan). Dataset construction
// snaps each geo-textual object to its nearest road node exactly as §7.1
// does. Returns -1 for an empty graph.
//
// The search walks the node cell index in growing rings around p's cell (a
// spiral) and stops as soon as the best node found is provably closer than
// anything outside the scanned ring, so snapping cost is proportional to
// local node density, not |V|.
func (g *Graph) NearestNode(p geo.Point) NodeID {
	if len(g.pts) == 0 {
		return -1
	}
	cx := clampInt(int((p.X-g.bbox.MinX)/g.cellW), 0, int(g.nx)-1)
	cy := clampInt(int((p.Y-g.bbox.MinY)/g.cellH), 0, int(g.ny)-1)
	best, bestD := NodeID(-1), math.Inf(1)
	scan := func(x, y int) {
		c := int32(y)*g.nx + int32(x)
		for _, v := range g.cellNodes[g.cellStart[c]:g.cellStart[c+1]] {
			d := p.Dist(g.pts[v])
			if d < bestD || (d == bestD && v < best) {
				best, bestD = v, d
			}
		}
	}
	// Rings past nx+ny cover the whole grid; the bound makes degenerate
	// inputs (NaN/Inf probe or node coordinates, where every distance
	// comparison is false) terminate with best = -1 like the full scan
	// did, instead of looping on a never-improving bestD.
	maxK := int(g.nx) + int(g.ny)
	for k := 0; k <= maxK; k++ {
		x0, x1 := cx-k, cx+k
		y0, y1 := cy-k, cy+k
		// Ring at Chebyshev distance k, clipped to the grid: top and
		// bottom rows in full, left and right columns without the corners.
		if y0 >= 0 {
			for x := max(x0, 0); x <= min(x1, int(g.nx)-1); x++ {
				scan(x, y0)
			}
		}
		if y1 <= int(g.ny)-1 && k > 0 {
			for x := max(x0, 0); x <= min(x1, int(g.nx)-1); x++ {
				scan(x, y1)
			}
		}
		if x0 >= 0 {
			for y := max(y0+1, 0); y <= min(y1-1, int(g.ny)-1); y++ {
				scan(x0, y)
			}
		}
		if x1 <= int(g.nx)-1 && k > 0 {
			for y := max(y0+1, 0); y <= min(y1-1, int(g.ny)-1); y++ {
				scan(x1, y)
			}
		}
		// Everything not yet scanned lies outside the rectangle R_k of
		// cells within ring k. A side that has passed the grid edge holds
		// no further nodes; for the others, any unscanned node is at least
		// the distance from p to that side's boundary away.
		exit := math.Inf(1)
		if x0 > 0 {
			exit = math.Min(exit, p.X-(g.bbox.MinX+float64(x0)*g.cellW))
		}
		if x1 < int(g.nx)-1 {
			exit = math.Min(exit, g.bbox.MinX+float64(x1+1)*g.cellW-p.X)
		}
		if y0 > 0 {
			exit = math.Min(exit, p.Y-(g.bbox.MinY+float64(y0)*g.cellH))
		}
		if y1 < int(g.ny)-1 {
			exit = math.Min(exit, g.bbox.MinY+float64(y1+1)*g.cellH-p.Y)
		}
		if bestD < exit {
			return best
		}
	}
	return best
}

// Components returns the connected components of the graph as slices of
// node IDs, largest first.
func (g *Graph) Components() [][]NodeID {
	n := g.NumNodes()
	seen := make([]bool, n)
	var comps [][]NodeID
	queue := make([]NodeID, 0, 64)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue[:0], NodeID(s))
		comp := []NodeID{NodeID(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, he := range g.Neighbors(v) {
				if !seen[he.To] {
					seen[he.To] = true
					comp = append(comp, he.To)
					queue = append(queue, he.To)
				}
			}
		}
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}
