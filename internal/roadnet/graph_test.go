package roadnet

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

// paperGraph builds the 6-node example of Figure 2 of the paper:
// weights are attached by the core package; here we need only topology.
// Edge lengths: (v1,v2)=1, (v1,v3)=5, (v2,v3)=3.1, (v2,v6)=1.5,
// (v3,v4)=4, (v4,v5)=2.8, (v5,v6)=1.6 ... The figure shows lengths
// 1, 3.1, 5, 4, 2.8, 3.4, 1.5, 3.2 — the exact assignment to pairs is
// partly ambiguous in the figure, so tests that need exact optimum use
// explicitly constructed graphs instead.
func lineGraph(t *testing.T, lengths []float64) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i <= len(lengths); i++ {
		b.AddNode(geo.Point{X: float64(i), Y: 0})
	}
	for i, l := range lengths {
		if err := b.AddEdge(NodeID(i), NodeID(i+1), l); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(geo.Point{X: 0, Y: 0})
	c := b.AddNode(geo.Point{X: 3, Y: 4})
	if err := b.AddEdgeEuclidean(a, c); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("size = %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Edge(0).Length != 5 {
		t.Errorf("euclidean length = %v, want 5", g.Edge(0).Length)
	}
	if g.Degree(a) != 1 || g.Degree(c) != 1 {
		t.Error("degrees wrong")
	}
	nb := g.Neighbors(a)
	if len(nb) != 1 || nb[0].To != c || nb[0].Length != 5 {
		t.Errorf("Neighbors(a) = %+v", nb)
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder()
	v := b.AddNode(geo.Point{})
	if err := b.AddEdge(v, v, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := b.AddEdge(v, 5, 1); err == nil {
		t.Error("dangling endpoint accepted")
	}
	if err := b.AddEdge(v, v+100, 1); err == nil {
		t.Error("out of range endpoint accepted")
	}
	w := b.AddNode(geo.Point{X: 1})
	if err := b.AddEdge(v, w, -1); err == nil {
		t.Error("negative length accepted")
	}
	if err := b.AddEdge(v, w, math.NaN()); err == nil {
		t.Error("NaN length accepted")
	}
	if err := b.AddEdge(v, w, math.Inf(1)); err == nil {
		t.Error("infinite length accepted")
	}
	if err := b.AddEdgeEuclidean(v, 99); err == nil {
		t.Error("AddEdgeEuclidean out of range accepted")
	}
}

func TestAdjacencyConsistency(t *testing.T) {
	// Every undirected edge must appear exactly once in each endpoint's list.
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder()
	const n = 50
	for i := 0; i < n; i++ {
		b.AddNode(geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	for i := 0; i < 120; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v, rng.Float64()*10); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	counts := make(map[EdgeID]int)
	totalDeg := 0
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		totalDeg += g.Degree(v)
		for _, he := range g.Neighbors(v) {
			counts[he.Edge]++
			e := g.Edge(he.Edge)
			if he.Length != e.Length {
				t.Fatalf("halfedge length mismatch on edge %d", he.Edge)
			}
			if e.U != v && e.V != v {
				t.Fatalf("edge %d in adjacency of non-endpoint %d", he.Edge, v)
			}
		}
	}
	if totalDeg != 2*g.NumEdges() {
		t.Errorf("Σdeg = %d, want %d", totalDeg, 2*g.NumEdges())
	}
	for id, c := range counts {
		if c != 2 {
			t.Errorf("edge %d appears %d times in adjacency, want 2", id, c)
		}
	}
}

func TestLengthStats(t *testing.T) {
	g := lineGraph(t, []float64{2, 0.5, 7})
	if got := g.TotalLength(); got != 9.5 {
		t.Errorf("TotalLength = %v, want 9.5", got)
	}
	if got := g.MinEdgeLength(99); got != 0.5 {
		t.Errorf("MinEdgeLength = %v, want 0.5", got)
	}
	if got := g.MaxEdgeLength(); got != 7 {
		t.Errorf("MaxEdgeLength = %v, want 7", got)
	}
	empty := NewBuilder().Build()
	if got := empty.MinEdgeLength(42); got != 42 {
		t.Errorf("MinEdgeLength fallback = %v, want 42", got)
	}
	if got := empty.MaxEdgeLength(); got != 0 {
		t.Errorf("MaxEdgeLength empty = %v, want 0", got)
	}
}

func TestNodesInRectAndNearest(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 10; i++ {
		b.AddNode(geo.Point{X: float64(i), Y: 0})
	}
	g := b.Build()
	got := g.NodesInRect(geo.Rect{MinX: 2.5, MinY: -1, MaxX: 6.5, MaxY: 1})
	if len(got) != 4 || got[0] != 3 || got[3] != 6 {
		t.Errorf("NodesInRect = %v", got)
	}
	if v := g.NearestNode(geo.Point{X: 4.4, Y: 10}); v != 4 {
		t.Errorf("NearestNode = %d, want 4", v)
	}
	if v := NewBuilder().Build().NearestNode(geo.Point{}); v != -1 {
		t.Errorf("NearestNode on empty graph = %d, want -1", v)
	}
}

// TestNearestNodeMatchesBruteForce pins the spiral cell walk to the full
// scan it replaced: same node for random probes inside, on the edge of,
// and far outside the bounding box, with the lowest ID winning exact ties.
func TestNearestNodeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBuilder()
	for i := 0; i < 400; i++ {
		b.AddNode(geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 500})
	}
	// Duplicate positions so exact distance ties occur.
	for i := 0; i < 20; i++ {
		b.AddNode(b.pts[rng.Intn(200)])
	}
	g := b.Build()
	brute := func(p geo.Point) NodeID {
		best, bestD := NodeID(-1), math.Inf(1)
		for i, q := range g.pts {
			if d := p.Dist(q); d < bestD {
				best, bestD = NodeID(i), d
			}
		}
		return best
	}
	probes := []geo.Point{
		{X: -500, Y: -500},   // far outside, min corner
		{X: 5000, Y: 250},    // far outside, one axis
		{X: 0, Y: 0},         // bbox corner
		{X: 1000, Y: 500},    // bbox max corner
		{X: 500.001, Y: 250}, // interior
	}
	for i := 0; i < 200; i++ {
		probes = append(probes, geo.Point{X: rng.Float64()*1400 - 200, Y: rng.Float64()*900 - 200})
	}
	// Probe at exact node positions too (guaranteed ties at duplicates).
	for i := 0; i < 50; i++ {
		probes = append(probes, g.pts[rng.Intn(g.NumNodes())])
	}
	for _, p := range probes {
		if got, want := g.NearestNode(p), brute(p); got != want {
			t.Fatalf("NearestNode(%v) = %d, brute force %d", p, got, want)
		}
	}
	// Non-finite probes must terminate and return -1 like the full scan
	// (every distance comparison is false), not spin forever.
	for _, p := range []geo.Point{
		{X: math.NaN(), Y: 10},
		{X: 10, Y: math.NaN()},
		{X: math.Inf(1), Y: 10},
		{X: math.Inf(-1), Y: math.Inf(1)},
	} {
		if got := g.NearestNode(p); got != -1 {
			t.Fatalf("NearestNode(%v) = %d, want -1", p, got)
		}
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 7; i++ {
		b.AddNode(geo.Point{X: float64(i)})
	}
	mustEdge := func(u, v NodeID) {
		if err := b.AddEdge(u, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(0, 1)
	mustEdge(1, 2)
	mustEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Errorf("component sizes = %d,%d want 3,2", len(comps[0]), len(comps[1]))
	}
}

func TestExtractRect(t *testing.T) {
	// 4-node square with one diagonal; cut the rect to keep 3 nodes.
	b := NewBuilder()
	p00 := b.AddNode(geo.Point{X: 0, Y: 0})
	p10 := b.AddNode(geo.Point{X: 10, Y: 0})
	p01 := b.AddNode(geo.Point{X: 0, Y: 10})
	p11 := b.AddNode(geo.Point{X: 10, Y: 10})
	for _, e := range [][2]NodeID{{p00, p10}, {p00, p01}, {p10, p11}, {p01, p11}, {p00, p11}} {
		if err := b.AddEdgeEuclidean(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	sub := g.ExtractRect(geo.Rect{MinX: -1, MinY: -1, MaxX: 11, MaxY: 5})
	if sub.NumNodes() != 2 {
		t.Fatalf("subgraph nodes = %d, want 2", sub.NumNodes())
	}
	if sub.NumEdges() != 1 {
		t.Fatalf("subgraph edges = %d, want 1 (edges leaving Λ are dropped)", sub.NumEdges())
	}
	if sub.Local(p00) == -1 || sub.Local(p10) == -1 {
		t.Error("inside nodes missing from subgraph")
	}
	if sub.Local(p01) != -1 {
		t.Error("outside node mapped")
	}
	if got := sub.ToParent[sub.Local(p10)]; got != p10 {
		t.Errorf("round trip parent id = %d, want %d", got, p10)
	}
}

func TestExtractNodesDedup(t *testing.T) {
	g := lineGraph(t, []float64{1, 1, 1})
	sub := g.ExtractNodes([]NodeID{1, 2, 2, 1})
	if sub.NumNodes() != 2 || sub.NumEdges() != 1 {
		t.Errorf("got %d nodes %d edges, want 2/1", sub.NumNodes(), sub.NumEdges())
	}
}

func TestRoundTripSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder()
	for i := 0; i < 30; i++ {
		b.AddNode(geo.Point{X: rng.NormFloat64() * 1e5, Y: rng.NormFloat64() * 1e5})
	}
	for i := 0; i < 60; i++ {
		u, v := NodeID(rng.Intn(30)), NodeID(rng.Intn(30))
		if u != v {
			if err := b.AddEdge(u, v, rng.Float64()*5000); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Build()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch")
	}
	for i := 0; i < g.NumNodes(); i++ {
		if g.Point(NodeID(i)) != g2.Point(NodeID(i)) {
			t.Fatalf("node %d coordinates differ", i)
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(EdgeID(i)) != g2.Edge(EdgeID(i)) {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestReadRejectsMalformedInput(t *testing.T) {
	bad := []string{
		"g 1\n",                               // short header
		"g x y\n",                             // non-numeric header
		"v 0 1\n",                             // short node line
		"v 5 0 0\n",                           // non-dense node id
		"v 0 a b\n",                           // bad coords
		"e 0 1 2\n",                           // edge before nodes exist
		"g 2 1\nv 0 0 0\nv 1 1 1\n",           // count mismatch (edges)
		"g 3 0\nv 0 0 0\n",                    // count mismatch (nodes)
		"q what\n",                            // unknown record
		"g 1 0\nv 0 0 0\ne 0 0 1\n",           // self loop
		"g 2 1\nv 0 0 0\nv 1 1 1\ne 0 1 -5\n", // negative length
	}
	for _, in := range bad {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted, want error", in)
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "# hello\n\ng 2 1\nv 0 0 0\nv 1 3 4\ne 0 1 5\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestBBox(t *testing.T) {
	g := lineGraph(t, []float64{1, 1})
	want := geo.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 0}
	if g.BBox() != want {
		t.Errorf("BBox = %v, want %v", g.BBox(), want)
	}
}

func TestExtractPreservesGeometryProperty(t *testing.T) {
	// Property: every node of a rect-extraction lies inside the rect, and
	// every edge of the parent with both endpoints inside appears.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		const n = 25
		for i := 0; i < n; i++ {
			b.AddNode(geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10})
		}
		edges := 0
		for edges < 40 {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			if err := b.AddEdgeEuclidean(u, v); err != nil {
				return false
			}
			edges++
		}
		g := b.Build()
		r := geo.Rect{MinX: 2, MinY: 2, MaxX: 8, MaxY: 8}
		sub := g.ExtractRect(r)
		for i := 0; i < sub.NumNodes(); i++ {
			if !r.Contains(sub.Point(NodeID(i))) {
				return false
			}
		}
		wantEdges := 0
		for i := 0; i < g.NumEdges(); i++ {
			e := g.Edge(EdgeID(i))
			if r.Contains(g.Point(e.U)) && r.Contains(g.Point(e.V)) {
				wantEdges++
			}
		}
		return sub.NumEdges() == wantEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
