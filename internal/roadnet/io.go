package roadnet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geo"
)

// The serialization format is a line-oriented text format in the spirit of
// the DIMACS shortest-path challenge files the paper's NY network comes
// from (§7.1), extended with node coordinates:
//
//	# comment
//	g <numNodes> <numEdges>
//	v <id> <x> <y>
//	e <u> <v> <length>
//
// Node lines must precede edge lines that reference them; ids are dense and
// ascending from 0.

// WriteTo serializes the graph. It returns the number of bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "g %d %d\n", g.NumNodes(), g.NumEdges())); err != nil {
		return n, err
	}
	for i, p := range g.pts {
		if err := count(fmt.Fprintf(bw, "v %d %s %s\n", i,
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64))); err != nil {
			return n, err
		}
	}
	for _, e := range g.edges {
		if err := count(fmt.Fprintf(bw, "e %d %d %s\n", e.U, e.V,
			strconv.FormatFloat(e.Length, 'g', -1, 64))); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a graph in the format produced by WriteTo.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	b := NewBuilder()
	declaredNodes, declaredEdges := -1, -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "g":
			if len(fields) != 3 {
				return nil, fmt.Errorf("roadnet: line %d: malformed header %q", line, text)
			}
			var err1, err2 error
			declaredNodes, err1 = strconv.Atoi(fields[1])
			declaredEdges, err2 = strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || declaredNodes < 0 || declaredEdges < 0 {
				return nil, fmt.Errorf("roadnet: line %d: bad header counts %q", line, text)
			}
		case "v":
			if len(fields) != 4 {
				return nil, fmt.Errorf("roadnet: line %d: malformed node %q", line, text)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != b.NumNodes() {
				return nil, fmt.Errorf("roadnet: line %d: node ids must be dense and ascending, got %q", line, fields[1])
			}
			x, err1 := strconv.ParseFloat(fields[2], 64)
			y, err2 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad coordinates %q", line, text)
			}
			b.AddNode(geo.Point{X: x, Y: y})
		case "e":
			if len(fields) != 4 {
				return nil, fmt.Errorf("roadnet: line %d: malformed edge %q", line, text)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			length, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad edge %q", line, text)
			}
			if err := b.AddEdge(NodeID(u), NodeID(v), length); err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("roadnet: line %d: unknown record type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("roadnet: read: %w", err)
	}
	g := b.Build()
	if declaredNodes >= 0 && g.NumNodes() != declaredNodes {
		return nil, fmt.Errorf("roadnet: header declares %d nodes, file has %d", declaredNodes, g.NumNodes())
	}
	if declaredEdges >= 0 && g.NumEdges() != declaredEdges {
		return nil, fmt.Errorf("roadnet: header declares %d edges, file has %d", declaredEdges, g.NumEdges())
	}
	return g, nil
}
