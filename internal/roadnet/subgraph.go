package roadnet

import (
	"slices"

	"repro/internal/geo"
)

// Subgraph is the restriction of a parent Graph to the nodes inside a query
// rectangle Q.Λ, with dense local IDs. The LCMSR definition (§2, Def. 3)
// only counts edges whose two endpoints are inside Q.Λ, so edges leaving
// the rectangle are dropped. A Subgraph is itself a *Graph plus the mapping
// back to parent node IDs.
//
// The parent→local mapping is slice-based: localOf and stamp are arrays
// indexed by parent node ID, shared with the Extractor that produced the
// subgraph, and a remap entry is live only when its stamp equals the
// subgraph's epoch. This replaces the former map[NodeID]NodeID with O(1)
// lookups and zero per-query map allocation.
type Subgraph struct {
	*Graph
	// ToParent maps a local node ID to the node ID in the parent graph.
	ToParent []NodeID
	localOf  []NodeID
	stamp    []uint32
	epoch    uint32
	// Compact copies replace the parent-sized stamped remap with sorted
	// (parent, local) pairs: lookupParent is ascending, lookupLocal[i] is
	// the local ID of lookupParent[i]. Exactly one of the two
	// representations is set.
	lookupParent []NodeID
	lookupLocal  []NodeID
}

// ExtractRect returns the subgraph induced by the nodes of g inside r.
// It allocates a fresh Extractor per call; hot paths that run many queries
// should pool an Extractor per worker instead.
func (g *Graph) ExtractRect(r geo.Rect) *Subgraph {
	return NewExtractor(g).ExtractRect(r)
}

// ExtractNodes returns the subgraph induced by the given parent node IDs
// (duplicates ignored). See ExtractRect about pooling.
func (g *Graph) ExtractNodes(nodes []NodeID) *Subgraph {
	return NewExtractor(g).ExtractNodes(nodes)
}

// Local returns the local ID of a parent node, or -1 if it is outside the
// subgraph.
func (s *Subgraph) Local(parent NodeID) NodeID {
	if s.stamp != nil {
		if parent >= 0 && int(parent) < len(s.stamp) && s.stamp[parent] == s.epoch {
			return s.localOf[parent]
		}
		return -1
	}
	if i, ok := slices.BinarySearch(s.lookupParent, parent); ok {
		return s.lookupLocal[i]
	}
	return -1
}

// Compact returns a self-contained copy of s sized to the subgraph
// itself: every slice is freshly allocated at its exact length, the
// parent→local mapping becomes sorted pairs instead of the extractor's
// parent-sized stamp/remap arrays, and nothing aliases extractor scratch
// — the copy stays valid across later extractions on the same extractor.
// Retaining it costs O(subgraph), not O(parent graph), which is what
// lets a driver pin many instances at once (see dataset.Detach).
func (s *Subgraph) Compact() *Subgraph {
	g := &Graph{
		pts:       append([]geo.Point(nil), s.Graph.pts...),
		edges:     append([]Edge(nil), s.Graph.edges...),
		offs:      append([]int32(nil), s.Graph.offs...),
		adj:       append([]Halfedge(nil), s.Graph.adj...),
		bbox:      s.Graph.bbox,
		cellStart: append([]int32(nil), s.Graph.cellStart...),
		cellNodes: append([]NodeID(nil), s.Graph.cellNodes...),
		nx:        s.Graph.nx,
		ny:        s.Graph.ny,
		cellW:     s.Graph.cellW,
		cellH:     s.Graph.cellH,
	}
	out := &Subgraph{
		Graph:        g,
		ToParent:     append([]NodeID(nil), s.ToParent...),
		lookupParent: append([]NodeID(nil), s.ToParent...),
		lookupLocal:  make([]NodeID, len(s.ToParent)),
	}
	for i := range out.lookupLocal {
		out.lookupLocal[i] = NodeID(i)
	}
	// ExtractRect produces ascending ToParent already; ExtractNodes may
	// not, so sort the pair view when needed.
	if !slices.IsSorted(out.lookupParent) {
		sortParentLocal(out.lookupParent, out.lookupLocal)
	}
	return out
}

// sortParentLocal sorts the pair slices by parent, keeping them aligned.
func sortParentLocal(parents, locals []NodeID) {
	idx := make([]int, len(parents))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int { return int(parents[a]) - int(parents[b]) })
	ps := append([]NodeID(nil), parents...)
	ls := append([]NodeID(nil), locals...)
	for i, j := range idx {
		parents[i] = ps[j]
		locals[i] = ls[j]
	}
}
