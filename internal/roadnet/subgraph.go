package roadnet

import "repro/internal/geo"

// Subgraph is the restriction of a parent Graph to the nodes inside a query
// rectangle Q.Λ, with dense local IDs. The LCMSR definition (§2, Def. 3)
// only counts edges whose two endpoints are inside Q.Λ, so edges leaving
// the rectangle are dropped. A Subgraph is itself a *Graph plus the mapping
// back to parent node IDs.
//
// The parent→local mapping is slice-based: localOf and stamp are arrays
// indexed by parent node ID, shared with the Extractor that produced the
// subgraph, and a remap entry is live only when its stamp equals the
// subgraph's epoch. This replaces the former map[NodeID]NodeID with O(1)
// lookups and zero per-query map allocation.
type Subgraph struct {
	*Graph
	// ToParent maps a local node ID to the node ID in the parent graph.
	ToParent []NodeID
	localOf  []NodeID
	stamp    []uint32
	epoch    uint32
}

// ExtractRect returns the subgraph induced by the nodes of g inside r.
// It allocates a fresh Extractor per call; hot paths that run many queries
// should pool an Extractor per worker instead.
func (g *Graph) ExtractRect(r geo.Rect) *Subgraph {
	return NewExtractor(g).ExtractRect(r)
}

// ExtractNodes returns the subgraph induced by the given parent node IDs
// (duplicates ignored). See ExtractRect about pooling.
func (g *Graph) ExtractNodes(nodes []NodeID) *Subgraph {
	return NewExtractor(g).ExtractNodes(nodes)
}

// Local returns the local ID of a parent node, or -1 if it is outside the
// subgraph.
func (s *Subgraph) Local(parent NodeID) NodeID {
	if parent >= 0 && int(parent) < len(s.stamp) && s.stamp[parent] == s.epoch {
		return s.localOf[parent]
	}
	return -1
}
