package roadnet

import "repro/internal/geo"

// Subgraph is the restriction of a parent Graph to the nodes inside a query
// rectangle Q.Λ, with dense local IDs. The LCMSR definition (§2, Def. 3)
// only counts edges whose two endpoints are inside Q.Λ, so edges leaving
// the rectangle are dropped. A Subgraph is itself a *Graph plus the mapping
// back to parent node IDs.
type Subgraph struct {
	*Graph
	// ToParent maps a local node ID to the node ID in the parent graph.
	ToParent []NodeID
	// fromParent maps parent node IDs to local IDs (-1 when outside).
	fromParent map[NodeID]NodeID
}

// ExtractRect returns the subgraph induced by the nodes of g inside r.
func (g *Graph) ExtractRect(r geo.Rect) *Subgraph {
	inside := g.NodesInRect(r)
	return g.extract(inside)
}

// ExtractNodes returns the subgraph induced by the given parent node IDs
// (duplicates ignored).
func (g *Graph) ExtractNodes(nodes []NodeID) *Subgraph {
	return g.extract(nodes)
}

func (g *Graph) extract(inside []NodeID) *Subgraph {
	from := make(map[NodeID]NodeID, len(inside))
	b := NewBuilder()
	toParent := make([]NodeID, 0, len(inside))
	for _, v := range inside {
		if _, dup := from[v]; dup {
			continue
		}
		local := b.AddNode(g.Point(v))
		from[v] = local
		toParent = append(toParent, v)
	}
	for id, e := range g.edges {
		lu, okU := from[e.U]
		lv, okV := from[e.V]
		if okU && okV {
			// Errors are impossible here: endpoints exist, lengths
			// were validated when the parent graph was built.
			_ = b.AddEdge(lu, lv, g.edges[id].Length)
		}
	}
	return &Subgraph{Graph: b.Build(), ToParent: toParent, fromParent: from}
}

// Local returns the local ID of a parent node, or -1 if it is outside the
// subgraph.
func (s *Subgraph) Local(parent NodeID) NodeID {
	if local, ok := s.fromParent[parent]; ok {
		return local
	}
	return -1
}
