package roadnet

import (
	"slices"

	"repro/internal/geo"
)

// Extractor materializes working subgraphs of one parent graph with reusable
// scratch state. Candidate nodes come from the parent's cell index and edges
// from the adjacency of in-rectangle nodes only, so an extraction costs
// O(nodes inside + edges incident) — never O(|E|) — and, once the scratch
// buffers have warmed up, performs no allocations at all.
//
// The returned *Subgraph aliases the extractor's buffers: it is valid only
// until the next Extract call on the same extractor. An Extractor is not
// safe for concurrent use; pool one per worker (see internal/queryengine).
type Extractor struct {
	g *Graph

	// Epoch-stamped parent→local remap: localOf[v] is meaningful iff
	// stamp[v] == epoch, so resetting the map between queries is a single
	// counter increment instead of an O(|V|) clear.
	epoch   uint32
	stamp   []uint32
	localOf []NodeID

	sub  Subgraph
	subg Graph

	cand      []NodeID
	toParent  []NodeID
	pts       []geo.Point
	edges     []Edge
	offs      []int32
	cursor    []int32
	adj       []Halfedge
	cellStart []int32
	cellNodes []NodeID
}

// NewExtractor returns an extractor for subgraphs of g.
func NewExtractor(g *Graph) *Extractor {
	return &Extractor{
		g:       g,
		stamp:   make([]uint32, g.NumNodes()),
		localOf: make([]NodeID, g.NumNodes()),
	}
}

// ExtractRect extracts the subgraph induced by the nodes inside r.
func (x *Extractor) ExtractRect(r geo.Rect) *Subgraph {
	x.cand = x.g.appendNodesInRect(r, x.cand[:0])
	// Ascending parent order keeps local IDs identical to a full scan,
	// so extraction results do not depend on the cell-grid geometry.
	slices.Sort(x.cand)
	return x.extract(x.cand)
}

// ExtractNodes extracts the subgraph induced by the given parent node IDs
// (duplicates ignored). Local IDs follow first occurrence order.
func (x *Extractor) ExtractNodes(nodes []NodeID) *Subgraph {
	return x.extract(nodes)
}

func (x *Extractor) extract(cand []NodeID) *Subgraph {
	x.epoch++
	if x.epoch == 0 { // uint32 wrap: old stamps would alias the new epoch
		for i := range x.stamp {
			x.stamp[i] = 0
		}
		x.epoch = 1
	}
	g := x.g
	x.toParent = x.toParent[:0]
	x.pts = x.pts[:0]
	for _, v := range cand {
		if x.stamp[v] == x.epoch {
			continue // duplicate candidate
		}
		x.stamp[v] = x.epoch
		x.localOf[v] = NodeID(len(x.toParent))
		x.toParent = append(x.toParent, v)
		x.pts = append(x.pts, g.pts[v])
	}
	n := len(x.toParent)

	// Collect induced edges by walking only the adjacency of inside nodes;
	// the u < he.To guard admits each undirected edge exactly once (also
	// for parallel edges, which occur once per endpoint list).
	x.edges = x.edges[:0]
	x.offs = growTo(x.offs, n+1)
	for i := range x.offs {
		x.offs[i] = 0
	}
	for _, u := range x.toParent {
		lu := x.localOf[u]
		for _, he := range g.adj[g.offs[u]:g.offs[u+1]] {
			if u < he.To && x.stamp[he.To] == x.epoch {
				lv := x.localOf[he.To]
				x.edges = append(x.edges, Edge{U: lu, V: lv, Length: he.Length})
				x.offs[lu+1]++
				x.offs[lv+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		x.offs[i+1] += x.offs[i]
	}
	x.cursor = growTo(x.cursor, n)
	copy(x.cursor, x.offs[:n])
	x.adj = growTo(x.adj, 2*len(x.edges))
	for id, e := range x.edges {
		x.adj[x.cursor[e.U]] = Halfedge{To: e.V, Edge: EdgeID(id), Length: e.Length}
		x.cursor[e.U]++
		x.adj[x.cursor[e.V]] = Halfedge{To: e.U, Edge: EdgeID(id), Length: e.Length}
		x.cursor[e.V]++
	}

	x.subg = Graph{
		pts:   x.pts,
		edges: x.edges,
		offs:  x.offs,
		adj:   x.adj[:2*len(x.edges)],
		bbox:  computeBBox(x.pts),
	}
	x.subg.sizeCells()
	x.cellStart, x.cellNodes = x.subg.buildCellIndex(x.cellStart, x.cellNodes)
	x.subg.cellStart, x.subg.cellNodes = x.cellStart, x.cellNodes

	x.sub = Subgraph{
		Graph:    &x.subg,
		ToParent: x.toParent,
		localOf:  x.localOf,
		stamp:    x.stamp,
		epoch:    x.epoch,
	}
	return &x.sub
}
