package roadnet

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/geo"
)

// TestSubgraphCompactEquivalent checks that a compact copy answers the
// whole Subgraph API exactly like the original — including Local for
// every parent node, in and out of the subgraph — and keeps answering it
// after the extractor that produced the original has moved on to other
// rectangles (the original's buffers are reused; the compact copy must
// not alias them).
func TestSubgraphCompactEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(t, rng, 30+rng.Intn(50), 100)
		ex := NewExtractor(g)
		r := geo.NewRect(
			geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
		)
		sub := ex.ExtractRect(r)
		compact := sub.Compact()
		assertSameSubgraph(t, g, sub, compact)
		if compact.stamp != nil || compact.localOf != nil {
			t.Fatal("compact copy still carries parent-sized stamp/remap arrays")
		}
		if len(compact.lookupParent) != compact.NumNodes() {
			t.Fatalf("lookup size %d, want %d", len(compact.lookupParent), compact.NumNodes())
		}
		// Clobber the extractor's scratch with different extractions, then
		// verify the compact copy against a fresh reference.
		for i := 0; i < 3; i++ {
			ex.ExtractRect(geo.NewRect(
				geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			))
		}
		assertSameSubgraph(t, g, g.ExtractRect(r), compact)
	}
}

// TestSubgraphCompactExtractNodes covers the unsorted mapping path:
// ExtractNodes assigns local IDs in first-occurrence order, so the
// compact lookup must sort its pair view.
func TestSubgraphCompactExtractNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := randomGraph(t, rng, 40, 120)
	sub := g.ExtractNodes([]NodeID{17, 3, 25, 8, 3, 30})
	compact := sub.Compact()
	assertSameSubgraph(t, g, sub, compact)
	if compact.Local(17) != 0 || compact.Local(3) != 1 || compact.Local(30) != 4 {
		t.Fatalf("first-occurrence locals lost: %d %d %d",
			compact.Local(17), compact.Local(3), compact.Local(30))
	}
}

// TestSubgraphCompactAllocation is the memory claim behind Compact: a
// compact copy of a small subgraph of a large parent must allocate
// memory proportional to the subgraph, never a parent-sized array. The
// threshold is one parent-sized stamp array — the cheapest slice the
// extractor representation pins — so regressing to any parent-sized
// allocation fails.
func TestSubgraphCompactAllocation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const parentNodes = 20000
	g := randomGraph(t, rng, parentNodes, 2*parentNodes)
	ex := NewExtractor(g)
	// A thin rectangle: a handful of nodes out of 20k.
	sub := ex.ExtractRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4})
	if sub.NumNodes() == 0 || sub.NumNodes() > parentNodes/20 {
		t.Fatalf("fixture subgraph has %d nodes; want a small non-empty slice of %d", sub.NumNodes(), parentNodes)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	compact := sub.Compact()
	runtime.ReadMemStats(&after)
	allocated := after.TotalAlloc - before.TotalAlloc
	limit := uint64(parentNodes * 4) // one parent-sized []uint32 stamp array
	if allocated >= limit {
		t.Fatalf("Compact allocated %d bytes for a %d-node subgraph of a %d-node parent (limit %d)",
			allocated, sub.NumNodes(), parentNodes, limit)
	}
	runtime.KeepAlive(compact)
}
