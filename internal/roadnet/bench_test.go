package roadnet

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	bld := NewBuilder()
	const side = 80
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			bld.AddNode(geo.Point{X: float64(x) * 100, Y: float64(y) * 100})
		}
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := NodeID(y*side + x)
			if x+1 < side {
				if err := bld.AddEdge(v, v+1, 90+rng.Float64()*20); err != nil {
					b.Fatal(err)
				}
			}
			if y+1 < side {
				if err := bld.AddEdge(v, v+NodeID(side), 90+rng.Float64()*20); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return bld.Build()
}

func BenchmarkExtractRect(b *testing.B) {
	g := benchGraph(b)
	r := geo.Rect{MinX: 1000, MinY: 1000, MaxX: 5000, MaxY: 5000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sub := g.ExtractRect(r); sub.NumNodes() == 0 {
			b.Fatal("empty extraction")
		}
	}
}

func BenchmarkComponents(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if comps := g.Components(); len(comps) != 1 {
			b.Fatal("unexpected components")
		}
	}
}
