package roadnet

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func benchGraphSide(b *testing.B, side int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	bld := NewBuilder()
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			bld.AddNode(geo.Point{X: float64(x) * 100, Y: float64(y) * 100})
		}
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := NodeID(y*side + x)
			if x+1 < side {
				if err := bld.AddEdge(v, v+1, 90+rng.Float64()*20); err != nil {
					b.Fatal(err)
				}
			}
			if y+1 < side {
				if err := bld.AddEdge(v, v+NodeID(side), 90+rng.Float64()*20); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return bld.Build()
}

func benchGraph(b *testing.B) *Graph { return benchGraphSide(b, 80) }

func BenchmarkExtractRect(b *testing.B) {
	g := benchGraph(b)
	r := geo.Rect{MinX: 1000, MinY: 1000, MaxX: 5000, MaxY: 5000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sub := g.ExtractRect(r); sub.NumNodes() == 0 {
			b.Fatal("empty extraction")
		}
	}
}

// BenchmarkExtractRectSelectivity verifies that extraction cost tracks the
// rectangle, not the graph: on a fixed 200×200 grid (40k nodes, ~80k
// edges), shrinking the rectangle area 100× must shrink ns/op by well over
// 10×. The pooled extractor variant must report 0 allocs/op steady-state.
func BenchmarkExtractRectSelectivity(b *testing.B) {
	g := benchGraphSide(b, 200)
	full := g.BBox()
	cx, cy := full.Center().X, full.Center().Y
	rectFrac := func(frac float64) geo.Rect {
		hw, hh := full.Width()*frac/2, full.Height()*frac/2
		return geo.Rect{MinX: cx - hw, MinY: cy - hh, MaxX: cx + hw, MaxY: cy + hh}
	}
	cases := []struct {
		name string
		rect geo.Rect
	}{
		{"area=100%", rectFrac(1.0)},
		{"area=1%", rectFrac(0.1)},     // linear 10× smaller → area 100×
		{"area=0.01%", rectFrac(0.01)}, // area 10000× smaller
	}
	for _, tc := range cases {
		b.Run("pooled/"+tc.name, func(b *testing.B) {
			ex := NewExtractor(g)
			ex.ExtractRect(tc.rect) // warm the scratch buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sub := ex.ExtractRect(tc.rect)
				if sub.NumNodes() == 0 {
					b.Fatal("empty extraction")
				}
			}
		})
		b.Run("oneshot/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if sub := g.ExtractRect(tc.rect); sub.NumNodes() == 0 {
					b.Fatal("empty extraction")
				}
			}
		})
	}
}

// BenchmarkNearestNode probes random points on a 40k-node grid. The spiral
// cell walk should make this independent of |V| (a handful of cells per
// probe) — it was a full O(|V|) scan before.
func BenchmarkNearestNode(b *testing.B) {
	g := benchGraphSide(b, 200)
	rng := rand.New(rand.NewSource(7))
	probes := make([]geo.Point, 1024)
	for i := range probes {
		probes[i] = geo.Point{X: rng.Float64() * 20000, Y: rng.Float64() * 20000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := g.NearestNode(probes[i%len(probes)]); v < 0 {
			b.Fatal("no node")
		}
	}
}

func BenchmarkComponents(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if comps := g.Components(); len(comps) != 1 {
			b.Fatal("unexpected components")
		}
	}
}
