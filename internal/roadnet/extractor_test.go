package roadnet

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// randomGraph builds a random geometric-ish graph for extraction tests.
func randomGraph(t testing.TB, rng *rand.Rand, n, m int) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	for added := 0; added < m; {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v, 1+rng.Float64()*10); err != nil {
			t.Fatal(err)
		}
		added++
	}
	return b.Build()
}

// assertSameSubgraph checks that two subgraphs agree on nodes, edges,
// remaps, and geometry.
func assertSameSubgraph(t *testing.T, parent *Graph, want, got *Subgraph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("size mismatch: got %d/%d nodes/edges, want %d/%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for i, p := range want.ToParent {
		if got.ToParent[i] != p {
			t.Fatalf("ToParent[%d] = %d, want %d", i, got.ToParent[i], p)
		}
		if got.Point(NodeID(i)) != want.Point(NodeID(i)) {
			t.Fatalf("point of local %d differs", i)
		}
	}
	for v := NodeID(0); int(v) < parent.NumNodes(); v++ {
		if got.Local(v) != want.Local(v) {
			t.Fatalf("Local(%d) = %d, want %d", v, got.Local(v), want.Local(v))
		}
	}
	// Edge multisets must match; both paths emit edges grouped by the
	// lower endpoint in ascending order, so direct comparison works.
	for i := 0; i < want.NumEdges(); i++ {
		if got.Edge(EdgeID(i)) != want.Edge(EdgeID(i)) {
			t.Fatalf("edge %d: got %+v, want %+v", i, got.Edge(EdgeID(i)), want.Edge(EdgeID(i)))
		}
	}
	if got.BBox() != want.BBox() {
		t.Fatalf("bbox mismatch: got %v want %v", got.BBox(), want.BBox())
	}
}

// bruteExtract is a reference implementation: full node scan plus full edge
// scan, with local IDs in ascending parent order (the pre-CSR semantics).
func bruteExtract(g *Graph, r geo.Rect) (nodes []NodeID, edges []Edge) {
	local := make(map[NodeID]NodeID)
	for i := 0; i < g.NumNodes(); i++ {
		if r.Contains(g.Point(NodeID(i))) {
			local[NodeID(i)] = NodeID(len(nodes))
			nodes = append(nodes, NodeID(i))
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		lu, okU := local[e.U]
		lv, okV := local[e.V]
		if okU && okV {
			edges = append(edges, Edge{U: lu, V: lv, Length: e.Length})
		}
	}
	return nodes, edges
}

func TestExtractorMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(t, rng, 30+rng.Intn(40), 80)
		ex := NewExtractor(g)
		for q := 0; q < 5; q++ {
			r := geo.NewRect(
				geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			)
			sub := ex.ExtractRect(r)
			nodes, edges := bruteExtract(g, r)
			if sub.NumNodes() != len(nodes) {
				t.Fatalf("trial %d: %d nodes, want %d", trial, sub.NumNodes(), len(nodes))
			}
			for i, p := range nodes {
				if sub.ToParent[i] != p {
					t.Fatalf("trial %d: ToParent[%d] = %d, want %d", trial, i, sub.ToParent[i], p)
				}
			}
			if sub.NumEdges() != len(edges) {
				t.Fatalf("trial %d: %d edges, want %d", trial, sub.NumEdges(), len(edges))
			}
			// The incident-edge walk orders edges by lower endpoint, not
			// parent edge ID: compare as multisets keyed by endpoints.
			wantCount := map[Edge]int{}
			for _, e := range edges {
				if e.V < e.U {
					e.U, e.V = e.V, e.U
				}
				wantCount[e]++
			}
			for i := 0; i < sub.NumEdges(); i++ {
				e := sub.Edge(EdgeID(i))
				if e.V < e.U {
					e.U, e.V = e.V, e.U
				}
				wantCount[e]--
				if wantCount[e] < 0 {
					t.Fatalf("trial %d: unexpected edge %+v", trial, e)
				}
			}
		}
	}
}

func TestExtractorPooledMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(t, rng, 80, 200)
	ex := NewExtractor(g)
	rects := []geo.Rect{
		{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		{MinX: 10, MinY: 10, MaxX: 40, MaxY: 60},
		{MinX: 70, MinY: 70, MaxX: 90, MaxY: 90},
		{MinX: 200, MinY: 200, MaxX: 300, MaxY: 300}, // empty
		{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
	}
	for i, r := range rects {
		got := ex.ExtractRect(r) // pooled, reused buffers
		want := g.ExtractRect(r) // fresh extractor
		assertSameSubgraph(t, g, want, got)
		if i == 3 && got.NumNodes() != 0 {
			t.Fatalf("empty rect extracted %d nodes", got.NumNodes())
		}
	}
}

func TestExtractorStaleRemapInvisible(t *testing.T) {
	// A node inside the first rectangle but not the second must map to -1
	// after the second extraction even though its stamp array entry holds a
	// stale local ID.
	b := NewBuilder()
	left := b.AddNode(geo.Point{X: 0, Y: 0})
	right := b.AddNode(geo.Point{X: 10, Y: 0})
	if err := b.AddEdge(left, right, 10); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	ex := NewExtractor(g)
	first := ex.ExtractRect(geo.Rect{MinX: -1, MinY: -1, MaxX: 11, MaxY: 1})
	if first.Local(left) != 0 || first.Local(right) != 1 {
		t.Fatalf("first extraction remap wrong: %d, %d", first.Local(left), first.Local(right))
	}
	second := ex.ExtractRect(geo.Rect{MinX: 5, MinY: -1, MaxX: 11, MaxY: 1})
	if second.Local(left) != -1 {
		t.Fatalf("stale node visible: Local(left) = %d, want -1", second.Local(left))
	}
	if second.Local(right) != 0 {
		t.Fatalf("Local(right) = %d, want 0", second.Local(right))
	}
	if second.Local(-3) != -1 || second.Local(99) != -1 {
		t.Fatal("out-of-range parent IDs must map to -1")
	}
}

func TestExtractorEpochWrap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(t, rng, 40, 100)
	ex := NewExtractor(g)
	r := geo.Rect{MinX: 20, MinY: 20, MaxX: 80, MaxY: 80}
	before := g.ExtractRect(r)
	ex.ExtractRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100})
	ex.epoch = ^uint32(0) - 1 // force a wrap on the next two extractions
	assertSameSubgraph(t, g, before, ex.ExtractRect(r))
	assertSameSubgraph(t, g, before, ex.ExtractRect(r)) // epoch wrapped to 0→1
	if ex.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", ex.epoch)
	}
}

func TestExtractorExtractNodesDedup(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode(geo.Point{X: float64(i), Y: 0})
	}
	for i := 0; i < 3; i++ {
		if err := b.AddEdge(NodeID(i), NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	ex := NewExtractor(g)
	sub := ex.ExtractNodes([]NodeID{2, 1, 2, 1})
	if sub.NumNodes() != 2 || sub.NumEdges() != 1 {
		t.Fatalf("got %d nodes %d edges, want 2/1", sub.NumNodes(), sub.NumEdges())
	}
	// First-occurrence order assigns local 0 to parent 2.
	if sub.ToParent[0] != 2 || sub.ToParent[1] != 1 {
		t.Fatalf("ToParent = %v, want [2 1]", sub.ToParent)
	}
}

func TestNodesInRectMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(t, rng, 10+rng.Intn(60), 20)
		r := geo.NewRect(
			geo.Point{X: rng.Float64()*140 - 20, Y: rng.Float64()*140 - 20},
			geo.Point{X: rng.Float64()*140 - 20, Y: rng.Float64()*140 - 20},
		)
		got := g.NodesInRect(r)
		var want []NodeID
		for i := 0; i < g.NumNodes(); i++ {
			if r.Contains(g.Point(NodeID(i))) {
				want = append(want, NodeID(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d nodes, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: NodesInRect[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestNodesInRectHugeRect(t *testing.T) {
	// A rectangle astronomically larger than the bbox must still return
	// every node (guards the int conversion in the cell-range computation).
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(t, rng, 50, 100)
	huge := geo.Rect{MinX: -1e300, MinY: -1e300, MaxX: 1e300, MaxY: 1e300}
	if got := g.NodesInRect(huge); len(got) != g.NumNodes() {
		t.Fatalf("huge rect returned %d of %d nodes", len(got), g.NumNodes())
	}
	if sub := g.ExtractRect(huge); sub.NumNodes() != g.NumNodes() || sub.NumEdges() != g.NumEdges() {
		t.Fatalf("huge rect extraction %d/%d nodes/edges, want %d/%d",
			sub.NumNodes(), sub.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

func TestSubgraphIsFullGraph(t *testing.T) {
	// A Subgraph must support the full Graph API, including NodesInRect
	// through its own cell index.
	rng := rand.New(rand.NewSource(19))
	g := randomGraph(t, rng, 60, 150)
	sub := g.ExtractRect(geo.Rect{MinX: 20, MinY: 20, MaxX: 80, MaxY: 80})
	inner := geo.Rect{MinX: 30, MinY: 30, MaxX: 60, MaxY: 60}
	got := sub.NodesInRect(inner)
	count := 0
	for i := 0; i < sub.NumNodes(); i++ {
		if inner.Contains(sub.Point(NodeID(i))) {
			count++
		}
	}
	if len(got) != count {
		t.Fatalf("subgraph NodesInRect = %d nodes, want %d", len(got), count)
	}
}
