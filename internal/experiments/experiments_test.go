package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// testEnv is a small, fast environment shared by the tests.
func testEnv() *Env {
	return NewEnv(Config{Scale: 0.12, Queries: 3, Seed: 9})
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "km2")
	s = strings.TrimSuffix(s, "km")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTableFormat(t *testing.T) {
	tbl := Table{
		Title:  "demo",
		Header: []string{"a", "long_column"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tbl.Format()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "long_column") {
		t.Errorf("Format output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d", len(lines))
	}
}

func TestFig7And8Shape(t *testing.T) {
	e := testEnv()
	tbl, err := e.Fig7And8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 α points", len(tbl.Rows))
	}
	// Weight must stay roughly flat: max/min within 2x (paper: 5.85-5.95).
	var lo, hi float64
	for i, row := range tbl.Rows {
		w := parseF(t, row[2])
		if i == 0 || w < lo {
			lo = w
		}
		if i == 0 || w > hi {
			hi = w
		}
	}
	if lo <= 0 {
		t.Fatalf("zero region weight in Fig8: %v", tbl.Rows)
	}
	if hi > 2.5*lo {
		t.Errorf("APP weight varies too much across α: [%v, %v]", lo, hi)
	}
}

func TestFig9And10Shape(t *testing.T) {
	e := testEnv()
	tbl, err := e.Fig9And10()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Weight must not increase as α grows (coarser scale loses accuracy).
	first := parseF(t, tbl.Rows[0][3])
	last := parseF(t, tbl.Rows[len(tbl.Rows)-1][3])
	if last > first*1.05 {
		t.Errorf("TGEN weight grew with coarser scaling: first %v last %v", first, last)
	}
}

func TestFig13And14Shape(t *testing.T) {
	e := testEnv()
	tbl, err := e.Fig13And14()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if parseF(t, row[2]) < 0 {
			t.Errorf("negative weight in µ sweep")
		}
	}
}

func TestTable1Trace(t *testing.T) {
	e := testEnv()
	tbl, err := e.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty binary-search trace")
	}
	// L must never exceed U.
	for i, row := range tbl.Rows {
		if parseF(t, row[1]) > parseF(t, row[2]) {
			t.Errorf("row %d: L > U", i)
		}
	}
}

func TestFig15AllSweeps(t *testing.T) {
	e := testEnv()
	for _, kind := range []SweepKind{SweepKeywords, SweepDelta, SweepLambda} {
		tbl, err := e.Fig15(kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(tbl.Rows) != 5 {
			t.Fatalf("%v: rows = %d", kind, len(tbl.Rows))
		}
		for _, row := range tbl.Rows {
			greedyRatio := parseF(t, row[5])
			if greedyRatio > 101 {
				t.Errorf("%v: Greedy ratio %v%% exceeds TGEN", kind, greedyRatio)
			}
		}
	}
}

func TestExamplesOrder(t *testing.T) {
	e := testEnv()
	tbl, err := e.Examples()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	tgenW := parseF(t, tbl.Rows[0][2])
	greedyW := parseF(t, tbl.Rows[2][2])
	if greedyW > tgenW*1.2 {
		t.Errorf("Greedy weight %v clearly above TGEN %v: example order broken", greedyW, tgenW)
	}
}

func TestMaxRSComparison(t *testing.T) {
	e := testEnv()
	tbl, err := e.MaxRSComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no comparison rows")
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "TOTAL" {
		t.Fatal("missing TOTAL row")
	}
	// The win rate fraction is reported as "w/v (p%)".
	if !strings.Contains(last[5], "/") {
		t.Errorf("malformed total: %q", last[5])
	}
}

func TestTopKTables(t *testing.T) {
	e := testEnv()
	for _, name := range []string{"NY", "USANW"} {
		tbl, err := e.TopK(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tbl.Rows) != 5 {
			t.Fatalf("%s: rows = %d", name, len(tbl.Rows))
		}
	}
}

func TestAblations(t *testing.T) {
	e := testEnv()
	if _, err := e.AblationKMST(); err != nil {
		t.Fatal(err)
	}
	tbl, err := e.AblationOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("order ablation rows = %d", len(tbl.Rows))
	}
}

func TestNamedCoversAllIDs(t *testing.T) {
	e := NewEnv(Config{Scale: 0.05, Queries: 1, Seed: 4})
	for _, id := range ExperimentIDs() {
		if id == "fig16kw" || id == "fig16delta" || id == "fig16lambda" || id == "fig22" {
			continue // USANW runs are covered by TestTopKTables; skip for speed
		}
		_, ok, err := e.Named(id)
		if !ok {
			t.Errorf("id %q unknown to Named", id)
		}
		if err != nil {
			t.Errorf("id %q: %v", id, err)
		}
	}
	if _, ok, _ := e.Named("nope"); ok {
		t.Error("unknown id accepted")
	}
}

func TestAblationWeighting(t *testing.T) {
	e := testEnv()
	tbl, err := e.AblationWeighting()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 weightings", len(tbl.Rows))
	}
}
