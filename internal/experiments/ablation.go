package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// AblationKMST compares APP's quota solvers (DESIGN.md experiment A1):
// the GW/Garg primal–dual solver the paper prescribes against the cheap
// shortest-path-tree heuristic, on identical NY queries.
func (e *Env) AblationKMST() (Table, error) {
	d, err := e.NY()
	if err != nil {
		return Table{}, err
	}
	p := e.params(d)
	qs, err := e.queries(d, p.Keywords, p.LambdaM2, p.DeltaM)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title:  "Ablation A1: APP quota solver — GW/Garg vs SPT heuristic (NY)",
		Header: []string{"solver", "runtime_ms", "region_weight"},
	}
	for _, s := range []struct {
		name   string
		solver core.SolverKind
	}{
		{"garg-gw", core.SolverGarg},
		{"spt", core.SolverSPT},
	} {
		var total time.Duration
		var weight float64
		for _, q := range qs {
			qi, err := d.Instantiate(q)
			if err != nil {
				return Table{}, err
			}
			var r *core.Region
			dur, err := runTimed(func() error {
				var err error
				r, err = core.APP(qi.In, q.Delta, core.APPOptions{
					Alpha: p.APPAlpha, Beta: p.APPBeta, Solver: s.solver,
				})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			total += dur
			weight += scoreOf(r)
		}
		n := float64(len(qs))
		table.Rows = append(table.Rows, []string{
			s.name,
			fmtDur(time.Duration(float64(total) / n)),
			fmtF(weight / n),
		})
	}
	return table, nil
}

// AblationOrder compares TGEN's edge processing orders (DESIGN.md A2;
// §5: "we can process the edges in other orders … the accuracy only
// varies slightly while the order we adopt yields better efficiency").
func (e *Env) AblationOrder() (Table, error) {
	d, err := e.NY()
	if err != nil {
		return Table{}, err
	}
	p := e.params(d)
	qs, err := e.queries(d, p.Keywords, p.LambdaM2, p.DeltaM)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title:  "Ablation A2: TGEN edge order — BFS vs ascending length (NY)",
		Header: []string{"order", "runtime_ms", "region_weight"},
	}
	for _, s := range []struct {
		name  string
		order core.EdgeOrder
	}{
		{"bfs", core.OrderBFS},
		{"asc-length", core.OrderAscLength},
	} {
		var total time.Duration
		var weight float64
		for _, q := range qs {
			qi, err := d.Instantiate(q)
			if err != nil {
				return Table{}, err
			}
			var r *core.Region
			dur, err := runTimed(func() error {
				var err error
				r, err = core.TGEN(qi.In, q.Delta, core.TGENOptions{
					Alpha: tgenAlphaFor(qi.In, p.TGENSigma), Order: s.order,
				})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			total += dur
			weight += scoreOf(r)
		}
		n := float64(len(qs))
		table.Rows = append(table.Rows, []string{
			s.name,
			fmtDur(time.Duration(float64(total) / n)),
			fmtF(weight / n),
		})
	}
	return table, nil
}

// AblationWeighting compares the three object-weight definitions of §2
// (text relevance, rating-if-match, language model) on identical NY
// queries. Scores are not comparable across modes; the shape to check is
// that matching is identical (similar region object counts) while the
// weight definition changes which region wins.
func (e *Env) AblationWeighting() (Table, error) {
	d, err := e.NY()
	if err != nil {
		return Table{}, err
	}
	p := e.params(d)
	qs, err := e.queries(d, p.Keywords, p.LambdaM2, p.DeltaM)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title:  "Ablation A3: object weightings (§2) — TGEN regions on NY",
		Header: []string{"weighting", "avg_objects", "avg_nodes", "runtime_ms"},
	}
	for _, m := range []struct {
		name string
		mode dataset.WeightMode
	}{
		{"relevance", dataset.WeightRelevance},
		{"rating", dataset.WeightRating},
		{"language-model", dataset.WeightLanguageModel},
	} {
		var objs, nodes int
		var total time.Duration
		for _, q := range qs {
			q.Mode = m.mode
			qi, err := d.Instantiate(q)
			if err != nil {
				return Table{}, err
			}
			var r *core.Region
			dur, err := runTimed(func() error {
				var err error
				r, err = core.TGEN(qi.In, q.Delta, core.TGENOptions{Alpha: tgenAlphaFor(qi.In, p.TGENSigma)})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			total += dur
			if r != nil {
				objs += len(qi.RegionObjects(r))
				nodes += len(r.Nodes)
			}
		}
		n := float64(len(qs))
		table.Rows = append(table.Rows, []string{
			m.name,
			fmt.Sprintf("%.1f", float64(objs)/n),
			fmt.Sprintf("%.1f", float64(nodes)/n),
			fmtDur(time.Duration(float64(total) / n)),
		})
	}
	return table, nil
}

// All runs every experiment in paper order. Used by cmd/benchfig -exp all.
func (e *Env) All() ([]Table, error) {
	var out []Table
	type runner struct {
		name string
		fn   func() (Table, error)
	}
	runners := []runner{
		{"table1", e.Table1},
		{"fig7", e.Fig7And8},
		{"fig9", e.Fig9And10},
		{"fig11", e.Fig11And12},
		{"fig13", e.Fig13And14},
		{"fig15kw", func() (Table, error) { return e.Fig15(SweepKeywords) }},
		{"fig15delta", func() (Table, error) { return e.Fig15(SweepDelta) }},
		{"fig15lambda", func() (Table, error) { return e.Fig15(SweepLambda) }},
		{"fig16kw", func() (Table, error) { return e.Fig16(SweepKeywords) }},
		{"fig16delta", func() (Table, error) { return e.Fig16(SweepDelta) }},
		{"fig16lambda", func() (Table, error) { return e.Fig16(SweepLambda) }},
		{"examples", e.Examples},
		{"maxrs", e.MaxRSComparison},
		{"fig21", func() (Table, error) { return e.TopK("NY") }},
		{"fig22", func() (Table, error) { return e.TopK("USANW") }},
		{"ablation-kmst", e.AblationKMST},
		{"ablation-order", e.AblationOrder},
		{"ablation-weighting", e.AblationWeighting},
		{"throughput", e.Throughput},
	}
	for _, r := range runners {
		t, err := r.fn()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Named runs one experiment by its id (the -exp flag of cmd/benchfig).
func (e *Env) Named(id string) (Table, bool, error) {
	m := map[string]func() (Table, error){
		"table1":             e.Table1,
		"fig7":               e.Fig7And8,
		"fig9":               e.Fig9And10,
		"fig11":              e.Fig11And12,
		"fig13":              e.Fig13And14,
		"fig15kw":            func() (Table, error) { return e.Fig15(SweepKeywords) },
		"fig15delta":         func() (Table, error) { return e.Fig15(SweepDelta) },
		"fig15lambda":        func() (Table, error) { return e.Fig15(SweepLambda) },
		"fig16kw":            func() (Table, error) { return e.Fig16(SweepKeywords) },
		"fig16delta":         func() (Table, error) { return e.Fig16(SweepDelta) },
		"fig16lambda":        func() (Table, error) { return e.Fig16(SweepLambda) },
		"examples":           e.Examples,
		"maxrs":              e.MaxRSComparison,
		"fig21":              func() (Table, error) { return e.TopK("NY") },
		"fig22":              func() (Table, error) { return e.TopK("USANW") },
		"ablation-kmst":      e.AblationKMST,
		"ablation-order":     e.AblationOrder,
		"ablation-weighting": e.AblationWeighting,
		"throughput":         e.Throughput,
	}
	fn, ok := m[id]
	if !ok {
		return Table{}, false, nil
	}
	t, err := fn()
	return t, true, err
}

// ExperimentIDs lists the ids Named accepts, in paper order.
func ExperimentIDs() []string {
	return []string{
		"table1", "fig7", "fig9", "fig11", "fig13",
		"fig15kw", "fig15delta", "fig15lambda",
		"fig16kw", "fig16delta", "fig16lambda",
		"examples", "maxrs", "fig21", "fig22",
		"ablation-kmst", "ablation-order", "ablation-weighting",
		"throughput",
	}
}
