package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/queryengine"
)

// Throughput measures end-to-end workload throughput of the parallel query
// engine on the NY-like dataset (not a paper figure — it characterizes the
// engine added on top of the paper's algorithms). One fixed TGEN workload
// is answered with increasing worker counts; every run is checked for
// bit-identical results against the serial baseline, so the table doubles
// as a determinism audit.
func (e *Env) Throughput() (Table, error) {
	d, err := e.NY()
	if err != nil {
		return Table{}, err
	}
	ps := e.params(d)
	n := 8 * e.cfg.Queries
	if n < 16 {
		n = 16
	}
	qs, err := e.queries(d, ps.Keywords, ps.LambdaM2, ps.DeltaM)
	if err != nil {
		return Table{}, err
	}
	// Repeat the generated queries up to n so the workload is long enough
	// to time meaningfully at any Config.Queries setting.
	for orig := len(qs); len(qs) < n; {
		qs = append(qs, qs[len(qs)%orig])
	}
	workerCounts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workerCounts = append(workerCounts, p)
	}
	t := Table{
		Title:  "Workload throughput (parallel query engine, TGEN, NY)",
		Header: []string{"workers", "elapsed_ms", "queries_per_s", "speedup", "identical"},
	}
	var (
		baseline []queryengine.Result
		baseDur  time.Duration
	)
	for _, w := range workerCounts {
		start := time.Now()
		res, err := queryengine.Run(context.Background(), d, qs, queryengine.Options{Workers: w})
		if err != nil {
			return Table{}, err
		}
		dur := time.Since(start)
		identical := "yes"
		if baseline == nil {
			baseline = res
			baseDur = dur
		} else if !sameResults(baseline, res) {
			identical = "NO"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			fmtDur(dur),
			fmt.Sprintf("%.1f", float64(len(qs))/dur.Seconds()),
			fmt.Sprintf("%.2fx", baseDur.Seconds()/dur.Seconds()),
			identical,
		})
	}
	return t, nil
}

// sameResults compares two workload outputs for bit equality.
func sameResults(a, b []queryengine.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Matched != b[i].Matched || a[i].Score != b[i].Score || a[i].Length != b[i].Length {
			return false
		}
		if len(a[i].Nodes) != len(b[i].Nodes) {
			return false
		}
		for j := range a[i].Nodes {
			if a[i].Nodes[j] != b[i].Nodes[j] {
				return false
			}
		}
	}
	return true
}
