package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Examples reproduces the qualitative comparison of Figures 17–19: one
// fixed two-keyword query ("cafe restaurant" in the Bronx in the paper)
// answered by the three algorithms, reporting the number of relevant
// objects, the region weight, and the region length. The paper reports
// 15 objects/5.9 for TGEN, 11/4.8 for APP, 7/3.6 for Greedy — i.e. the
// object-count and weight order TGEN ≥ APP ≥ Greedy, which is the shape
// this table should reproduce.
func (e *Env) Examples() (Table, error) {
	d, err := e.NY()
	if err != nil {
		return Table{}, err
	}
	p := e.params(d)
	// The paper's example uses a ∆ of 8 km and two keywords.
	qs, err := e.queries(d, 2, p.LambdaM2, 8000)
	if err != nil {
		return Table{}, err
	}
	q := qs[0]
	qi, err := d.Instantiate(q)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title:  fmt.Sprintf("Fig 17-19: example regions for keywords %v, ∆=8km (NY)", q.Keywords),
		Header: []string{"algorithm", "objects", "weight", "length_km", "nodes"},
	}
	type namedRun struct {
		name string
		run  func() (*core.Region, error)
	}
	runs := []namedRun{
		{"TGEN", func() (*core.Region, error) {
			return core.TGEN(qi.In, q.Delta, core.TGENOptions{Alpha: tgenAlphaFor(qi.In, p.TGENSigma)})
		}},
		{"APP", func() (*core.Region, error) {
			return core.APP(qi.In, q.Delta, core.APPOptions{Alpha: p.APPAlpha, Beta: p.APPBeta})
		}},
		{"Greedy", func() (*core.Region, error) {
			return core.Greedy(qi.In, q.Delta, core.GreedyOptions{Mu: p.GreedyMu, MuSet: true})
		}},
	}
	for _, nr := range runs {
		r, err := nr.run()
		if err != nil {
			return Table{}, err
		}
		objs := len(qi.RegionObjects(r))
		table.Rows = append(table.Rows, []string{
			nr.name,
			fmt.Sprintf("%d", objs),
			fmtF(scoreOf(r)),
			fmt.Sprintf("%.2f", lengthOf(r)/1000),
			fmt.Sprintf("%d", nodesOf(r)),
		})
	}
	return table, nil
}

func lengthOf(r *core.Region) float64 {
	if r == nil {
		return 0
	}
	return r.Length
}

func nodesOf(r *core.Region) int {
	if r == nil {
		return 0
	}
	return len(r.Nodes)
}

// TopK measures the top-k LCMSR query runtimes (Figures 21 and 22):
// k ∈ 1..5 on the named dataset ("NY" or "USANW") with the paper's
// defaults.
func (e *Env) TopK(name string) (Table, error) {
	ds, err := e.datasetByName(name)
	if err != nil {
		return Table{}, err
	}
	p := e.params(ds)
	qs, err := e.queries(ds, p.Keywords, p.LambdaM2, p.DeltaM)
	if err != nil {
		return Table{}, err
	}
	qis, err := instantiateAll(ds, qs)
	if err != nil {
		return Table{}, err
	}
	fig := "Fig 21"
	if name == "USANW" {
		fig = "Fig 22"
	}
	table := Table{
		Title:  fmt.Sprintf("%s: top-k runtime (ms) vs k (%s)", fig, name),
		Header: []string{"k", "APP_ms", "TGEN_ms", "Greedy_ms"},
	}
	for k := 1; k <= 5; k++ {
		var app, tgen, greedy time.Duration
		for i, qi := range qis {
			delta := qs[i].Delta
			dur, err := runTimed(func() error {
				_, err := core.TopKAPP(context.Background(), qi.In, delta, k, core.APPOptions{Alpha: p.APPAlpha, Beta: p.APPBeta})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			app += dur
			dur, err = runTimed(func() error {
				_, err := core.TopKTGEN(context.Background(), qi.In, delta, k, core.TGENOptions{Alpha: tgenAlphaFor(qi.In, p.TGENSigma)})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			tgen += dur
			dur, err = runTimed(func() error {
				_, err := core.TopKGreedy(context.Background(), qi.In, delta, k, core.GreedyOptions{Mu: p.GreedyMu, MuSet: true})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			greedy += dur
		}
		n := float64(len(qis))
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", k),
			fmtDur(time.Duration(float64(app) / n)),
			fmtDur(time.Duration(float64(tgen) / n)),
			fmtDur(time.Duration(float64(greedy) / n)),
		})
	}
	return table, nil
}

func (e *Env) datasetByName(name string) (*dataset.Dataset, error) {
	if name == "USANW" {
		return e.USANW()
	}
	return e.NY()
}
