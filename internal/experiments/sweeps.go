package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// SweepKind selects which query argument Fig15/Fig16 vary.
type SweepKind int

const (
	// SweepKeywords varies |Q.ψ| (Fig 15a/b, 16a/b).
	SweepKeywords SweepKind = iota
	// SweepDelta varies Q.∆ (Fig 15c/d, 16c/d).
	SweepDelta
	// SweepLambda varies Q.Λ (Fig 15e/f, 16e/f).
	SweepLambda
)

// String implements fmt.Stringer.
func (k SweepKind) String() string {
	switch k {
	case SweepKeywords:
		return "keywords"
	case SweepDelta:
		return "delta"
	case SweepLambda:
		return "lambda"
	default:
		return fmt.Sprintf("SweepKind(%d)", int(k))
	}
}

// sweepPoints returns the x-axis values for a dataset and sweep kind,
// following §7.2.2 and §7.3.
func sweepPoints(name string, kind SweepKind) []float64 {
	switch kind {
	case SweepKeywords:
		return []float64{1, 2, 3, 4, 5}
	case SweepDelta:
		if name == "USANW" {
			return []float64{13000, 14000, 15000, 16000, 17000}
		}
		return []float64{8000, 9000, 10000, 11000, 12000}
	case SweepLambda:
		if name == "USANW" {
			return []float64{100e6, 125e6, 150e6, 175e6, 200e6}
		}
		return []float64{80e6, 90e6, 100e6, 110e6, 120e6}
	}
	return nil
}

// algoResult aggregates one algorithm's performance at a sweep point.
type algoResult struct {
	time   time.Duration
	weight float64
}

// Fig15 runs the query-argument sweep on NY (Figures 15a–f); Fig16 the
// same on USANW (Figures 16a–f). Each row reports the three algorithms'
// average runtime and their accuracy ratio relative to TGEN — the paper's
// measure ("we compute the ratio of an algorithm over TGEN, which always
// has the best accuracy").
func (e *Env) Fig15(kind SweepKind) (Table, error) {
	d, err := e.NY()
	if err != nil {
		return Table{}, err
	}
	return e.querySweep(d, kind, "Fig 15")
}

// Fig16 is the USANW counterpart of Fig15.
func (e *Env) Fig16(kind SweepKind) (Table, error) {
	d, err := e.USANW()
	if err != nil {
		return Table{}, err
	}
	return e.querySweep(d, kind, "Fig 16")
}

func (e *Env) querySweep(d *dataset.Dataset, kind SweepKind, figure string) (Table, error) {
	p := e.params(d)
	table := Table{
		Title: fmt.Sprintf("%s (%s): vary %s — runtime (ms) and ratio vs TGEN", figure, d.Name, kind),
		Header: []string{kind.String(),
			"APP_ms", "TGEN_ms", "Greedy_ms",
			"APP_ratio", "Greedy_ratio"},
	}
	for _, x := range sweepPoints(d.Name, kind) {
		kw, delta, lambda := p.Keywords, p.DeltaM, p.LambdaM2
		switch kind {
		case SweepKeywords:
			kw = int(x)
		case SweepDelta:
			delta = x
		case SweepLambda:
			lambda = x
		}
		qs, err := e.queries(d, kw, lambda, delta)
		if err != nil {
			return Table{}, err
		}
		qis, err := instantiateAll(d, qs)
		if err != nil {
			return Table{}, err
		}
		var app, tgen, greedy algoResult
		var appRatio, greedyRatio float64
		counted := 0
		for i, qi := range qis {
			delta := qs[i].Delta
			var rAPP, rTGEN, rGreedy *core.Region
			dur, err := runTimed(func() error {
				var err error
				rAPP, err = core.APP(qi.In, delta, core.APPOptions{Alpha: p.APPAlpha, Beta: p.APPBeta})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			app.time += dur
			dur, err = runTimed(func() error {
				var err error
				rTGEN, err = core.TGEN(qi.In, delta, core.TGENOptions{Alpha: tgenAlphaFor(qi.In, p.TGENSigma)})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			tgen.time += dur
			dur, err = runTimed(func() error {
				var err error
				rGreedy, err = core.Greedy(qi.In, delta, core.GreedyOptions{Mu: p.GreedyMu, MuSet: true})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			greedy.time += dur
			if rTGEN == nil || rTGEN.Score <= 0 {
				continue // no relevant object: skip ratio accounting
			}
			counted++
			app.weight += scoreOf(rAPP)
			tgen.weight += rTGEN.Score
			greedy.weight += scoreOf(rGreedy)
			appRatio += scoreOf(rAPP) / rTGEN.Score
			greedyRatio += scoreOf(rGreedy) / rTGEN.Score
		}
		n := float64(len(qis))
		cn := float64(counted)
		if cn == 0 {
			cn = 1
		}
		table.Rows = append(table.Rows, []string{
			sweepLabel(kind, x),
			fmtDur(time.Duration(float64(app.time) / n)),
			fmtDur(time.Duration(float64(tgen.time) / n)),
			fmtDur(time.Duration(float64(greedy.time) / n)),
			fmtPct(appRatio / cn),
			fmtPct(greedyRatio / cn),
		})
	}
	return table, nil
}

func scoreOf(r *core.Region) float64 {
	if r == nil {
		return 0
	}
	return r.Score
}

func sweepLabel(kind SweepKind, x float64) string {
	switch kind {
	case SweepKeywords:
		return fmt.Sprintf("%d", int(x))
	case SweepDelta:
		return fmt.Sprintf("%.0fkm", x/1000)
	case SweepLambda:
		return fmt.Sprintf("%.0fkm2", x/1e6)
	}
	return fmt.Sprintf("%v", x)
}
