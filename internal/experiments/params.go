package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Fig7And8 sweeps APP's scaling parameter α on NY (paper Figures 7 and 8):
// runtime falls as α grows; region weight is nearly flat.
func (e *Env) Fig7And8() (Table, error) {
	d, err := e.NY()
	if err != nil {
		return Table{}, err
	}
	p := e.params(d)
	qs, err := e.queries(d, p.Keywords, p.LambdaM2, p.DeltaM)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title:  "Fig 7+8: APP runtime and region weight vs α (NY)",
		Header: []string{"alpha", "runtime_ms", "region_weight"},
	}
	for _, alpha := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9} {
		var total time.Duration
		var weight float64
		for _, q := range qs {
			qi, err := d.Instantiate(q)
			if err != nil {
				return Table{}, err
			}
			var r *core.Region
			dur, err := runTimed(func() error {
				var err error
				r, err = core.APP(qi.In, q.Delta, core.APPOptions{Alpha: alpha, Beta: p.APPBeta})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			total += dur
			if r != nil {
				weight += r.Score
			}
		}
		n := float64(len(qs))
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.2f", alpha),
			fmtDur(time.Duration(float64(total) / n)),
			fmtF(weight / n),
		})
	}
	return table, nil
}

// Fig9And10 sweeps TGEN's scaling parameter on NY (paper Figures 9, 10).
// The paper's x-axis α ∈ {50..1600} is calibrated to its |VQ| (thousands);
// the dimensionless knob is σ̂max = ⌊|VQ|/α⌋, so the sweep here targets
// the equivalent σ̂max values and reports the α actually used.
func (e *Env) Fig9And10() (Table, error) {
	d, err := e.NY()
	if err != nil {
		return Table{}, err
	}
	p := e.params(d)
	qs, err := e.queries(d, p.Keywords, p.LambdaM2, p.DeltaM)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title:  "Fig 9+10: TGEN runtime and region weight vs α (NY; α recalibrated, see EXPERIMENTS.md)",
		Header: []string{"paper_alpha", "sigma_hat_max", "runtime_ms", "region_weight"},
	}
	// paper α {50,100,200,400,800,1600} ↔ σ̂max roughly {72,36,18,9,4,2}.
	paperAlphas := []int{50, 100, 200, 400, 800, 1600}
	sigmas := []int{72, 36, 18, 9, 4, 2}
	for i, sigma := range sigmas {
		var total time.Duration
		var weight float64
		for _, q := range qs {
			qi, err := d.Instantiate(q)
			if err != nil {
				return Table{}, err
			}
			alpha := tgenAlphaFor(qi.In, sigma)
			var r *core.Region
			dur, err := runTimed(func() error {
				var err error
				r, err = core.TGEN(qi.In, q.Delta, core.TGENOptions{Alpha: alpha})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			total += dur
			if r != nil {
				weight += r.Score
			}
		}
		n := float64(len(qs))
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", paperAlphas[i]),
			fmt.Sprintf("%d", sigma),
			fmtDur(time.Duration(float64(total) / n)),
			fmtF(weight / n),
		})
	}
	return table, nil
}

// Fig11And12 sweeps APP's binary-search slack β on NY (Figures 11, 12):
// both runtime and weight drop as β grows.
func (e *Env) Fig11And12() (Table, error) {
	d, err := e.NY()
	if err != nil {
		return Table{}, err
	}
	p := e.params(d)
	qs, err := e.queries(d, p.Keywords, p.LambdaM2, p.DeltaM)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title:  "Fig 11+12: APP runtime and region weight vs β (NY)",
		Header: []string{"beta", "runtime_ms", "region_weight"},
	}
	for _, beta := range []float64{0.001, 0.01, 0.1, 0.3, 0.9} {
		var total time.Duration
		var weight float64
		for _, q := range qs {
			qi, err := d.Instantiate(q)
			if err != nil {
				return Table{}, err
			}
			var r *core.Region
			dur, err := runTimed(func() error {
				var err error
				r, err = core.APP(qi.In, q.Delta, core.APPOptions{Alpha: p.APPAlpha, Beta: beta})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			total += dur
			if r != nil {
				weight += r.Score
			}
		}
		n := float64(len(qs))
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.3f", beta),
			fmtDur(time.Duration(float64(total) / n)),
			fmtF(weight / n),
		})
	}
	return table, nil
}

// Fig13And14 sweeps Greedy's µ on NY (Figures 13, 14): runtime is flat;
// weight peaks at an interior µ (both node weights and edge lengths count).
func (e *Env) Fig13And14() (Table, error) {
	d, err := e.NY()
	if err != nil {
		return Table{}, err
	}
	p := e.params(d)
	qs, err := e.queries(d, p.Keywords, p.LambdaM2, p.DeltaM)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title:  "Fig 13+14: Greedy runtime and region weight vs µ (NY)",
		Header: []string{"mu", "runtime_ms", "region_weight"},
	}
	for _, mu := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		var total time.Duration
		var weight float64
		for _, q := range qs {
			qi, err := d.Instantiate(q)
			if err != nil {
				return Table{}, err
			}
			var r *core.Region
			dur, err := runTimed(func() error {
				var err error
				r, err = core.Greedy(qi.In, q.Delta, core.GreedyOptions{Mu: mu, MuSet: true})
				return err
			})
			if err != nil {
				return Table{}, err
			}
			total += dur
			if r != nil {
				weight += r.Score
			}
		}
		n := float64(len(qs))
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.1f", mu),
			fmtDur(time.Duration(float64(total) / n)),
			fmtF(weight / n),
		})
	}
	return table, nil
}

// Table1 reproduces the binary-search illustration (paper Table 1): the
// per-step L, U, X, TC length and (1+β)X probe of one APP run on NY.
func (e *Env) Table1() (Table, error) {
	d, err := e.NY()
	if err != nil {
		return Table{}, err
	}
	p := e.params(d)
	qs, err := e.queries(d, p.Keywords, p.LambdaM2, p.DeltaM)
	if err != nil {
		return Table{}, err
	}
	qi, err := d.Instantiate(qs[0])
	if err != nil {
		return Table{}, err
	}
	var trace []core.TraceStep
	if _, err := core.APP(qi.In, qs[0].Delta, core.APPOptions{
		Alpha: p.APPAlpha, Beta: p.APPBeta, Trace: &trace,
	}); err != nil {
		return Table{}, err
	}
	table := Table{
		Title:  "Table 1: APP binary-search trace (NY, one query; lengths in metres)",
		Header: []string{"step", "L", "U", "X", "TC.l", "(1+b)X", "T'C.l"},
	}
	for i, s := range trace {
		x2, l2 := "*", "*"
		if s.X2 != 0 {
			x2 = fmt.Sprintf("%.0f", s.X2)
			l2 = fmt.Sprintf("%.0f", s.TC2Len)
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.0f", s.L),
			fmt.Sprintf("%.0f", s.U),
			fmt.Sprintf("%.0f", s.X),
			fmt.Sprintf("%.0f", s.TCLen),
			x2, l2,
		})
	}
	return table, nil
}

// instantiateAll materializes instances for a query slice through one
// pooled planner, detaching each instance so pinning the whole workload
// costs O(Σ subgraph) — not one parent-sized planner per query.
func instantiateAll(d *dataset.Dataset, qs []dataset.Query) ([]*dataset.QueryInstance, error) {
	p := d.NewPlanner()
	out := make([]*dataset.QueryInstance, len(qs))
	for i, q := range qs {
		qi, err := p.Instantiate(q)
		if err != nil {
			return nil, err
		}
		if out[i], err = qi.Detach(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
