// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) against the synthetic NY-like and USANW-like datasets.
// Each exported runner returns one or more Tables whose rows mirror the
// series the paper plots; EXPERIMENTS.md records paper-vs-measured notes.
//
// Absolute runtimes and weights differ from the paper (different hardware,
// language, and density-scaled synthetic data); what is reproduced is the
// shape: orderings between algorithms, growth directions, and ratio bands.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Config sizes the experimental environment.
type Config struct {
	// Scale multiplies dataset sizes (default 1.0; smaller = faster).
	Scale float64
	// Queries per measurement point (paper: 50; default here 8 to keep
	// the whole suite minutes-scale).
	Queries int
	// Seed fixes all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Queries == 0 {
		c.Queries = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Defaults per dataset, following §7.2/§7.3: number of keywords 3;
// NY ∆ = 10 km, Λ = 100 km²; USANW ∆ = 15 km, Λ = 150 km².
type datasetParams struct {
	Keywords  int
	DeltaM    float64
	LambdaM2  float64
	APPAlpha  float64 // paper: 0.5 NY, 0.1 USANW
	APPBeta   float64 // paper: 0.1 both
	GreedyMu  float64 // paper: 0.2 NY, 0.4 USANW
	TGENSigma int     // target σ̂max for TGEN's α (see EXPERIMENTS.md)
}

// TGENSigma is the σ̂max granularity TGEN's α is resolved against per
// query region (α = |VQ|/σ̂max); σ̂max ≈ 12 is the regime the paper's
// α = 400/300 inhabit at their data scale. Finer scales were measured to
// change TGEN's answers negligibly on both datasets (see EXPERIMENTS.md).
var nyParams = datasetParams{
	Keywords: 3, DeltaM: 10000, LambdaM2: 100e6,
	APPAlpha: 0.5, APPBeta: 0.1, GreedyMu: 0.2, TGENSigma: 12,
}

// USANW uses α = 0.3 instead of the paper's 0.1: the dimensionless
// scaled range is σ̂max = |VQ|/α, and at our |VQ| the paper's value blows
// up the findOptTree tuple arrays without measurable accuracy gain
// (Fig 8's flat curve shows APP's weight is insensitive to α).
var usanwParams = datasetParams{
	Keywords: 3, DeltaM: 15000, LambdaM2: 150e6,
	APPAlpha: 0.3, APPBeta: 0.1, GreedyMu: 0.4, TGENSigma: 12,
}

// Env holds lazily built datasets and query workloads.
type Env struct {
	cfg   Config
	ny    *dataset.Dataset
	usanw *dataset.Dataset
}

// NewEnv prepares an environment (datasets build lazily on first use).
func NewEnv(cfg Config) *Env { return &Env{cfg: cfg.withDefaults()} }

// NY returns the NY-like dataset, building it on first call.
func (e *Env) NY() (*dataset.Dataset, error) {
	if e.ny == nil {
		d, err := dataset.NYLike(dataset.Config{Seed: e.cfg.Seed, Scale: e.cfg.Scale})
		if err != nil {
			return nil, err
		}
		e.ny = d
	}
	return e.ny, nil
}

// USANW returns the USANW-like dataset, building it on first call.
func (e *Env) USANW() (*dataset.Dataset, error) {
	if e.usanw == nil {
		d, err := dataset.USANWLike(dataset.Config{Seed: e.cfg.Seed, Scale: e.cfg.Scale})
		if err != nil {
			return nil, err
		}
		e.usanw = d
	}
	return e.usanw, nil
}

func (e *Env) params(d *dataset.Dataset) datasetParams {
	if d.Name == "USANW" {
		return usanwParams
	}
	return nyParams
}

// queries generates a deterministic workload for a dataset and settings.
func (e *Env) queries(d *dataset.Dataset, keywords int, lambdaM2, deltaM float64) ([]dataset.Query, error) {
	rng := rand.New(rand.NewSource(e.cfg.Seed * 7919))
	return d.GenQueries(rng, e.cfg.Queries, keywords, lambdaM2, deltaM)
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Format renders the table as aligned plain text.
func (t Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// tgenAlphaFor sizes TGEN's α for a query instance so σ̂max ≈ target.
func tgenAlphaFor(in *core.Instance, target int) float64 {
	a := float64(in.NumNodes) / float64(target)
	if a < 1 {
		a = 1
	}
	return a
}

// runTimed runs fn and returns its duration.
func runTimed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// fmtDur renders a duration in milliseconds with 3 digits.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

func fmtF(x float64) string { return fmt.Sprintf("%.4f", x) }

func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
