package experiments

import (
	"fmt"
	"math"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/maxrs"
)

// MaxRSComparison reproduces §7.5 (and the Figure 20 contrast): for each
// query, (1) find the best 500m×500m MaxRS rectangle over the relevant
// objects; (2) derive the LCMSR length budget from it exactly as the paper
// does — "we compute the minimum total length of the road segments
// connecting all relevant objects in this region, and we use this value as
// the length constraint"; (3) answer the LCMSR query with TGEN under that
// budget.
//
// The paper's human annotators preferred the LCMSR region on 90% of
// queries. The mechanical proxy here scores a win for LCMSR when its
// (always-connected) region weight is at least the weight of the largest
// road-connected object group inside the MaxRS rectangle — rectangles cut
// through the network, so their content is usually fragmented, which is
// precisely the paper's argument.
func (e *Env) MaxRSComparison() (Table, error) {
	d, err := e.NY()
	if err != nil {
		return Table{}, err
	}
	p := e.params(d)
	qs, err := e.queries(d, p.Keywords, p.LambdaM2, p.DeltaM)
	if err != nil {
		return Table{}, err
	}
	const rectSide = 500.0 // §7.5: both width and height 500 m
	table := Table{
		Title:  "§7.5 / Fig 20: LCMSR (TGEN) vs MaxRS, 500m x 500m rectangles (NY)",
		Header: []string{"query", "maxrs_weight", "maxrs_connected", "lcmsr_weight", "lcmsr_delta_km", "lcmsr_wins"},
	}
	wins, valid := 0, 0
	for i, q := range qs {
		qi, err := d.Instantiate(q)
		if err != nil {
			return Table{}, err
		}
		// Relevant objects inside Λ, with their scores and nodes.
		var objs []relevantObject
		var pts []maxrs.Point
		for v := 0; v < qi.In.NumNodes; v++ {
			for _, id := range qi.NodeObjects[v] {
				o := d.Objects[id]
				w := qi.Prepared.Score(&o.Doc)
				if w <= 0 {
					continue
				}
				objs = append(objs, relevantObject{pt: o.Point, w: w, local: core.NodeID(v)})
				pts = append(pts, maxrs.Point{P: o.Point, Weight: w})
			}
		}
		if len(objs) == 0 {
			continue
		}
		best, err := maxrs.Solve(pts, rectSide, rectSide)
		if err != nil {
			return Table{}, err
		}
		// Objects covered by the winning rectangle.
		rect := geo.Rect{
			MinX: best.Center.X - rectSide/2, MinY: best.Center.Y - rectSide/2,
			MaxX: best.Center.X + rectSide/2, MaxY: best.Center.Y + rectSide/2,
		}
		var covered []relevantObject
		for _, o := range objs {
			if rect.Contains(o.pt) {
				covered = append(covered, o)
			}
		}
		if len(covered) == 0 {
			continue
		}
		// The paper's budget: minimum road length connecting the covered
		// objects — approximated by the metric-closure MST over shortest
		// path distances (the classic 2-approximation of Steiner trees).
		terminals := make([]core.NodeID, 0, len(covered))
		seen := map[core.NodeID]bool{}
		for _, o := range covered {
			if !seen[o.local] {
				seen[o.local] = true
				terminals = append(terminals, o.local)
			}
		}
		delta := steinerLength(qi.In, terminals)
		if delta <= 0 {
			delta = rectSide // all objects on one node: any small budget
		}
		lr, err := core.TGEN(qi.In, delta, core.TGENOptions{Alpha: tgenAlphaFor(qi.In, p.TGENSigma)})
		if err != nil {
			return Table{}, err
		}
		// MaxRS connected weight: the heaviest road-connected group of
		// covered objects, where two objects connect if a road path inside
		// the rectangle's node set joins them.
		connWeight := maxConnectedWeight(qi.In, covered)
		lcmsrW := scoreOf(lr)
		valid++
		win := lcmsrW >= connWeight-1e-9
		if win {
			wins++
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmtF(best.Weight),
			fmtF(connWeight),
			fmtF(lcmsrW),
			fmt.Sprintf("%.2f", delta/1000),
			fmt.Sprintf("%v", win),
		})
	}
	if valid > 0 {
		table.Rows = append(table.Rows, []string{
			"TOTAL", "", "", "", "",
			fmt.Sprintf("%d/%d (%.0f%%)", wins, valid, 100*float64(wins)/float64(valid)),
		})
	}
	return table, nil
}

// steinerLength approximates the minimum road length connecting the
// terminal nodes: Dijkstra from each terminal gives the metric closure,
// whose MST is a 2-approximate Steiner tree length.
func steinerLength(in *core.Instance, terminals []core.NodeID) float64 {
	if len(terminals) <= 1 {
		return 0
	}
	// Shortest path distances from each terminal to the others.
	k := len(terminals)
	distMat := make([][]float64, k)
	for i, t := range terminals {
		d := dijkstra(in, t)
		distMat[i] = make([]float64, k)
		for j, u := range terminals {
			distMat[i][j] = d[u]
		}
	}
	// Prim MST over the metric closure.
	inTree := make([]bool, k)
	dist := make([]float64, k)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	var total float64
	for range terminals {
		best := -1
		for i := 0; i < k; i++ {
			if !inTree[i] && (best < 0 || dist[i] < dist[best]) {
				best = i
			}
		}
		if best < 0 || math.IsInf(dist[best], 1) {
			break // disconnected terminals: connect what is reachable
		}
		inTree[best] = true
		total += dist[best]
		for i := 0; i < k; i++ {
			if !inTree[i] && distMat[best][i] < dist[i] {
				dist[i] = distMat[best][i]
			}
		}
	}
	return total
}

// dijkstra computes shortest path distances from src over the instance.
func dijkstra(in *core.Instance, src core.NodeID) []float64 {
	dist := make([]float64, in.NumNodes)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	type item struct {
		d float64
		v core.NodeID
	}
	h := container.NewHeap[item](func(a, b item) bool { return a.d < b.d })
	h.Push(item{0, src})
	for {
		it, ok := h.Pop()
		if !ok {
			return dist
		}
		if it.d > dist[it.v] {
			continue
		}
		for _, he := range in.Neighbors(it.v) {
			nd := it.d + in.Edges[he.Edge].Length
			if nd < dist[he.To] {
				dist[he.To] = nd
				h.Push(item{nd, he.To})
			}
		}
	}
}

// relevantObject is an object with positive query relevance, its location
// and its (local) road node.
type relevantObject struct {
	pt    geo.Point
	w     float64
	local core.NodeID
}

// maxConnectedWeight returns the total weight of the heaviest group of
// covered objects whose nodes are connected by road segments between
// covered nodes (a rectangle cuts longer connecting paths anyway).
func maxConnectedWeight(in *core.Instance, covered []relevantObject) float64 {
	// Union nodes joined by edges whose two endpoints' objects are inside
	// the rectangle's node set: approximate "inside the rectangle" by the
	// covered nodes themselves.
	inside := map[core.NodeID]bool{}
	for _, o := range covered {
		inside[o.local] = true
	}
	uf := container.NewUnionFind(in.NumNodes)
	// Edges between covered nodes (possibly through a path of non-object
	// nodes are not counted: the rectangle usually severs them anyway).
	for _, e := range in.Edges {
		if inside[e.U] && inside[e.V] {
			uf.Union(int(e.U), int(e.V))
		}
	}
	groups := map[int]float64{}
	for _, o := range covered {
		groups[uf.Find(int(o.local))] += o.w
	}
	var best float64
	for _, w := range groups {
		if w > best {
			best = w
		}
	}
	return best
}
