package pcst

import (
	"math"
	"slices"

	"repro/internal/cancel"
	"repro/internal/container"
)

// Solver is the pooled counterpart of Solve: the same GW moat growing and
// strong pruning, but every piece of per-run working state — cluster
// member lists, the event queue, union–find forests, the per-component
// pruning scratch, and the storage behind the returned trees — lives in
// the Solver and is reused across runs, so a warm Solver performs zero
// steady-state allocations.
//
// Ownership: the trees returned by Solve (their Nodes and Edges slices)
// alias the Solver's internal arenas and stay valid across subsequent
// Solve calls until Reset is called; Reset reclaims them all at once. One
// Solver serves one goroutine; pool one per worker.
type Solver struct {
	// chk, when non-nil, is polled in the GW event loop; once it fires,
	// Solve returns early with a nil tree slice, which callers abandoning
	// the query treat as "no result".
	chk *cancel.Check

	// Moat-growing state (growForest).
	uf         container.UnionFind
	clusters   []solverCluster
	memberNext []int32 // intrusive singly-linked cluster member lists
	dual       []float64
	pq         container.Heap[event]
	pqReady    bool
	dormant    []int
	forest     []int

	// Component grouping (forestComponents).
	ufc          container.UnionFind
	compIdx      []int32 // per root node: component index, -1 unset
	compNodeOffs []int32
	compNodes    []int32
	compEdgeOffs []int32
	compEdges    []int
	cursor       []int32
	numComps     int

	// Strong-pruning scratch, local (per-component) indices.
	pos      []int32 // graph node -> local component index
	adjOffs  []int32
	adjTo    []int32
	adjEdge  []int
	keepHe   []bool // per local halfedge: kept by pruning
	visited  []bool
	net      []float64
	stack    []pruneFrame
	order    []pruneFrame
	collect  []collectFrame
	outNodes []int32
	outEdges []int

	// Arenas backing the returned trees; valid until Reset.
	treeArena container.Arena[Tree]
	i32Arena  container.Arena[int32]
	intArena  container.Arena[int]
}

// solverCluster mirrors cluster with the member slice replaced by an
// intrusive linked list (head/tail into Solver.memberNext), making cluster
// merges O(1) concatenations instead of slice appends.
type solverCluster struct {
	active     bool
	potential  float64
	lastT      float64
	head, tail int32
}

type pruneFrame struct {
	v, parent int32
}

// NewSolver returns an empty pooled solver.
func NewSolver() *Solver { return &Solver{} }

// SetCancel arms the solver with a cancellation checkpoint polled in the
// moat-growing event loop. A nil check disables the checkpoints.
func (s *Solver) SetCancel(chk *cancel.Check) { s.chk = chk }

// Reset reclaims the storage behind every tree returned since the last
// Reset. Those trees become invalid; the solver keeps its capacity.
func (s *Solver) Reset() {
	s.treeArena.Reset()
	s.i32Arena.Reset()
	s.intArena.Reset()
}

// Solve runs GW moat growing followed by strong pruning, exactly as the
// package-level Solve does, returning one pruned candidate tree per forest
// component sorted by decreasing net worth. The returned trees alias the
// solver's arenas (see type docs).
func (s *Solver) Solve(g *Graph) ([]Tree, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	s.growForest(g)
	if s.chk.Cancelled() {
		// The forest is partial; skip pruning and hand back nothing. The
		// caller is abandoning the query, so "no trees" is never cached
		// beyond the current (cancelled) request.
		return nil, nil
	}
	s.groupComponents(g)
	out := s.treeArena.Alloc(s.numComps)
	kept := 0
	for c := 0; c < s.numComps; c++ {
		nodes := s.compNodes[s.compNodeOffs[c]:s.compNodeOffs[c+1]]
		edges := s.compEdges[s.compEdgeOffs[c]:s.compEdgeOffs[c+1]]
		t := s.strongPrune(g, nodes, edges)
		if len(t.Nodes) == 1 && t.Prize <= 0 {
			continue
		}
		out[kept] = t
		kept++
	}
	out = out[:kept]
	slices.SortFunc(out, func(a, b Tree) int {
		// Same ordering predicate as Solve's sort.Slice; pdqsort on equal
		// input yields the same permutation.
		switch {
		case a.NetWorth() > b.NetWorth():
			return -1
		case b.NetWorth() > a.NetWorth():
			return 1
		default:
			return 0
		}
	})
	return out, nil
}

// growForest is growForest with pooled state: identical event sequence,
// identical forest.
func (s *Solver) growForest(g *Graph) {
	n := g.N
	s.uf.Reset(n)
	s.clusters = container.GrowTo(s.clusters, n)
	s.memberNext = container.GrowTo(s.memberNext, n)
	s.dual = container.GrowTo(s.dual, n)
	if !s.pqReady {
		s.pq.Init(func(a, b event) bool { return a.time < b.time })
		s.pqReady = true
	} else {
		s.pq.Reset()
	}
	s.dormant = s.dormant[:0]
	s.forest = s.forest[:0]

	activeCount := 0
	for v := 0; v < n; v++ {
		active := g.Prizes[v] > eps
		s.clusters[v] = solverCluster{active: active, potential: g.Prizes[v], head: int32(v), tail: int32(v)}
		s.memberNext[v] = -1
		s.dual[v] = 0
		if active {
			activeCount++
		}
	}
	for v := 0; v < n; v++ {
		if s.clusters[v].active {
			s.pq.Push(event{time: s.clusters[v].potential, kind: evDeath, id: v})
		}
	}
	for i := range g.Edges {
		if t, ok := s.edgeEventTime(g, i, 0); ok {
			s.pq.Push(event{time: t, kind: evEdge, id: i})
		} else {
			ru, rv := s.uf.Find(int(g.Edges[i].U)), s.uf.Find(int(g.Edges[i].V))
			if ru != rv {
				s.dormant = append(s.dormant, i)
			}
		}
	}

	for activeCount > 0 {
		if s.chk.Tick() {
			return // partial forest; Solve bails before pruning
		}
		ev, ok := s.pq.Pop()
		if !ok {
			break
		}
		switch ev.kind {
		case evDeath:
			root := s.uf.Find(ev.id)
			c := &s.clusters[root]
			if !c.active {
				continue // stale
			}
			trueDeath := c.lastT + c.potential
			if trueDeath > ev.time+eps {
				s.pq.Push(event{time: trueDeath, kind: evDeath, id: root})
				continue
			}
			s.flush(root, ev.time)
			c.active = false
			activeCount--
		case evEdge:
			e := g.Edges[ev.id]
			ru, rv := s.uf.Find(int(e.U)), s.uf.Find(int(e.V))
			if ru == rv {
				continue // became internal
			}
			t, ok := s.edgeEventTime(g, ev.id, ev.time)
			if !ok {
				s.dormant = append(s.dormant, ev.id)
				continue
			}
			if t > ev.time+eps {
				s.pq.Push(event{time: t, kind: evEdge, id: ev.id})
				continue
			}
			// Fire: flush both clusters to now and merge.
			s.flush(ru, ev.time)
			s.flush(rv, ev.time)
			cu, cv := s.clusters[ru], s.clusters[rv]
			wasActiveU, wasActiveV := cu.active, cv.active
			s.uf.Union(ru, rv)
			root := s.uf.Find(ru)
			merged := solverCluster{
				active:    true,
				potential: math.Max(cu.potential, 0) + math.Max(cv.potential, 0),
				lastT:     ev.time,
				head:      cu.head,
				tail:      cv.tail,
			}
			s.memberNext[cu.tail] = cv.head // O(1) list concatenation
			s.clusters[root] = merged
			s.forest = append(s.forest, ev.id)
			switch {
			case wasActiveU && wasActiveV:
				activeCount--
			case !wasActiveU && !wasActiveV:
				activeCount++
			}
			if merged.potential <= eps {
				s.clusters[root].active = false
				activeCount--
			} else {
				s.pq.Push(event{time: ev.time + merged.potential, kind: evDeath, id: root})
				// A new active cluster exists: dormant edges may fire again.
				if len(s.dormant) > 0 {
					still := s.dormant[:0]
					for _, ei := range s.dormant {
						if t2, ok := s.edgeEventTime(g, ei, ev.time); ok {
							s.pq.Push(event{time: t2, kind: evEdge, id: ei})
						} else if s.uf.Find(int(g.Edges[ei].U)) != s.uf.Find(int(g.Edges[ei].V)) {
							still = append(still, ei)
						}
					}
					s.dormant = still
				}
			}
		}
	}
}

// flush advances the cluster rooted at root to time now, crediting the
// elapsed growth to each member's dual.
func (s *Solver) flush(root int, now float64) {
	c := &s.clusters[root]
	if c.active && now > c.lastT {
		dt := now - c.lastT
		for m := c.head; m >= 0; m = s.memberNext[m] {
			s.dual[m] += dt
		}
		c.potential -= dt
	}
	c.lastT = now
}

// edgeEventTime is edgeEventTime over the pooled state.
func (s *Solver) edgeEventTime(g *Graph, i int, now float64) (float64, bool) {
	e := g.Edges[i]
	ru, rv := s.uf.Find(int(e.U)), s.uf.Find(int(e.V))
	if ru == rv {
		return 0, false
	}
	cu, cv := &s.clusters[ru], &s.clusters[rv]
	dU := s.dual[e.U]
	if cu.active {
		dU += now - cu.lastT
	}
	dV := s.dual[e.V]
	if cv.active {
		dV += now - cv.lastT
	}
	rate := 0.0
	if cu.active {
		rate++
	}
	if cv.active {
		rate++
	}
	if rate == 0 {
		return 0, false
	}
	slack := e.Cost - dU - dV
	if slack < 0 {
		slack = 0
	}
	return now + slack/rate, true
}

// groupComponents is forestComponents with pooled CSR storage: components
// are numbered by their smallest node (the order forestComponents sorts
// into), nodes ascending within each, edges in forest order.
func (s *Solver) groupComponents(g *Graph) {
	n := g.N
	s.ufc.Reset(n)
	for _, ei := range s.forest {
		s.ufc.Union(int(g.Edges[ei].U), int(g.Edges[ei].V))
	}
	s.compIdx = container.GrowTo(s.compIdx, n)
	for i := range s.compIdx {
		s.compIdx[i] = -1
	}
	nc := 0
	for v := 0; v < n; v++ {
		r := s.ufc.Find(v)
		if s.compIdx[r] < 0 {
			s.compIdx[r] = int32(nc)
			nc++
		}
	}
	s.numComps = nc

	s.compNodeOffs = container.GrowTo(s.compNodeOffs, nc+1)
	for i := range s.compNodeOffs {
		s.compNodeOffs[i] = 0
	}
	for v := 0; v < n; v++ {
		s.compNodeOffs[s.compIdx[s.ufc.Find(v)]+1]++
	}
	for c := 0; c < nc; c++ {
		s.compNodeOffs[c+1] += s.compNodeOffs[c]
	}
	s.cursor = container.GrowTo(s.cursor, nc)
	copy(s.cursor, s.compNodeOffs[:nc])
	s.compNodes = container.GrowTo(s.compNodes, n)
	for v := 0; v < n; v++ {
		c := s.compIdx[s.ufc.Find(v)]
		s.compNodes[s.cursor[c]] = int32(v)
		s.cursor[c]++
	}

	s.compEdgeOffs = container.GrowTo(s.compEdgeOffs, nc+1)
	for i := range s.compEdgeOffs {
		s.compEdgeOffs[i] = 0
	}
	for _, ei := range s.forest {
		s.compEdgeOffs[s.compIdx[s.ufc.Find(int(g.Edges[ei].U))]+1]++
	}
	for c := 0; c < nc; c++ {
		s.compEdgeOffs[c+1] += s.compEdgeOffs[c]
	}
	copy(s.cursor, s.compEdgeOffs[:nc])
	s.compEdges = container.GrowTo(s.compEdges, len(s.forest))
	for _, ei := range s.forest {
		c := s.compIdx[s.ufc.Find(int(g.Edges[ei].U))]
		s.compEdges[s.cursor[c]] = ei
		s.cursor[c]++
	}
}

// strongPrune is strongPrune with map-free, pooled scratch: the component
// is remapped to local indices, adjacency becomes a CSR whose per-node
// halfedge order matches the map-based build (edge order), and keep
// decisions are flags on local halfedges. The returned tree's Nodes and
// Edges come from the solver's arenas.
func (s *Solver) strongPrune(g *Graph, nodes []int32, edges []int) Tree {
	nc := len(nodes)
	s.pos = container.GrowTo(s.pos, g.N)
	for i, v := range nodes {
		s.pos[v] = int32(i)
	}
	// Local adjacency CSR, per-node halfedge order = component edge order.
	s.adjOffs = container.GrowTo(s.adjOffs, nc+1)
	for i := 0; i <= nc; i++ {
		s.adjOffs[i] = 0
	}
	for _, ei := range edges {
		e := g.Edges[ei]
		s.adjOffs[s.pos[e.U]+1]++
		s.adjOffs[s.pos[e.V]+1]++
	}
	for i := 0; i < nc; i++ {
		s.adjOffs[i+1] += s.adjOffs[i]
	}
	s.cursor = container.GrowTo(s.cursor, nc)
	copy(s.cursor, s.adjOffs[:nc])
	nh := 2 * len(edges)
	s.adjTo = container.GrowTo(s.adjTo, nh)
	s.adjEdge = container.GrowTo(s.adjEdge, nh)
	for _, ei := range edges {
		e := g.Edges[ei]
		lu, lv := s.pos[e.U], s.pos[e.V]
		s.adjTo[s.cursor[lu]] = e.V
		s.adjEdge[s.cursor[lu]] = ei
		s.cursor[lu]++
		s.adjTo[s.cursor[lv]] = e.U
		s.adjEdge[s.cursor[lv]] = ei
		s.cursor[lv]++
	}

	root := nodes[0]
	for _, v := range nodes {
		if g.Prizes[v] > g.Prizes[root] {
			root = v
		}
	}

	// Iterative DFS discovery, children before parents on the way back.
	s.visited = container.GrowTo(s.visited, nc)
	for i := 0; i < nc; i++ {
		s.visited[i] = false
	}
	s.order = s.order[:0]
	s.stack = append(s.stack[:0], pruneFrame{v: root, parent: -1})
	for len(s.stack) > 0 {
		f := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		lv := s.pos[f.v]
		if s.visited[lv] {
			continue
		}
		s.visited[lv] = true
		s.order = append(s.order, f)
		for k := s.adjOffs[lv]; k < s.adjOffs[lv+1]; k++ {
			if s.adjTo[k] != f.parent {
				s.stack = append(s.stack, pruneFrame{v: s.adjTo[k], parent: f.v})
			}
		}
	}
	// net(v) = π(v) + Σ_children max(0, net(c) − cost(v,c)); keep flags on
	// the parent→child halfedges whose margin contributes.
	s.net = container.GrowTo(s.net, nc)
	s.keepHe = container.GrowTo(s.keepHe, nh)
	for i := 0; i < nh; i++ {
		s.keepHe[i] = false
	}
	for i := len(s.order) - 1; i >= 0; i-- {
		f := s.order[i]
		lv := s.pos[f.v]
		n := g.Prizes[f.v]
		for k := s.adjOffs[lv]; k < s.adjOffs[lv+1]; k++ {
			if s.adjTo[k] == f.parent {
				continue
			}
			margin := s.net[s.pos[s.adjTo[k]]] - g.Edges[s.adjEdge[k]].Cost
			if margin > eps {
				n += margin
				s.keepHe[k] = true
			}
		}
		s.net[lv] = n
	}

	// Preorder walk over kept halfedges from the root (matches the
	// recursive walk: node first, then each kept child subtree in order).
	t := Tree{}
	s.outNodes = append(s.outNodes[:0], root)
	s.outEdges = s.outEdges[:0]
	t.Prize += g.Prizes[root]
	s.collect = append(s.collect[:0], collectFrame{v: root, parent: -1, k: s.adjOffs[s.pos[root]]})
	for len(s.collect) > 0 {
		f := &s.collect[len(s.collect)-1]
		lv := s.pos[f.v]
		advanced := false
		for k := f.k; k < s.adjOffs[lv+1]; k++ {
			if !s.keepHe[k] || s.adjTo[k] == f.parent {
				continue
			}
			f.k = k + 1
			to := s.adjTo[k]
			s.outEdges = append(s.outEdges, s.adjEdge[k])
			t.Cost += g.Edges[s.adjEdge[k]].Cost
			s.outNodes = append(s.outNodes, to)
			t.Prize += g.Prizes[to]
			s.collect = append(s.collect, collectFrame{v: to, parent: f.v, k: s.adjOffs[s.pos[to]]})
			advanced = true
			break
		}
		if !advanced {
			s.collect = s.collect[:len(s.collect)-1]
		}
	}

	t.Nodes = s.i32Arena.Alloc(len(s.outNodes))
	copy(t.Nodes, s.outNodes)
	slices.Sort(t.Nodes)
	if len(s.outEdges) > 0 { // nil for single-node trees, as strongPrune returns
		t.Edges = s.intArena.Alloc(len(s.outEdges))
		copy(t.Edges, s.outEdges)
	}
	return t
}

// collectFrame is one frame of strongPrune's explicit collection walk: k is
// the next halfedge cursor within [adjOffs[lv], adjOffs[lv+1]).
type collectFrame struct {
	v      int32
	parent int32
	k      int32
}
