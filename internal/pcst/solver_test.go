package pcst

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomPCSTGraph builds a connected-ish random graph with a mix of zero
// and positive prizes, the regimes GW moat growing distinguishes.
func randomPCSTGraph(rng *rand.Rand, n int) *Graph {
	var edges []Edge
	for i := 1; i < n; i++ {
		if rng.Float64() < 0.15 {
			continue // leave some nodes isolated / split components
		}
		edges = append(edges, Edge{U: int32(rng.Intn(i)), V: int32(i), Cost: 0.25 + 2*rng.Float64()})
	}
	for k := rng.Intn(n); k > 0; k-- {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{U: int32(u), V: int32(v), Cost: 0.25 + 2*rng.Float64()})
		}
	}
	prizes := make([]float64, n)
	for i := range prizes {
		if rng.Float64() < 0.6 {
			prizes[i] = 3 * rng.Float64()
		}
	}
	return &Graph{N: n, Edges: edges, Prizes: prizes}
}

// TestSolverMatchesSolve is the golden gate for the pooled GW solver: on
// many random graphs, a single reused Solver must return bit-identical
// trees (same order, same node/edge lists, same costs and prizes) to the
// allocating package-level Solve.
func TestSolverMatchesSolve(t *testing.T) {
	s := NewSolver()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomPCSTGraph(rng, 5+rng.Intn(60))
		want, err := Solve(g)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		got, err := s.Solve(g)
		if err != nil {
			t.Fatalf("seed %d: Solver.Solve: %v", seed, err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d trees, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("seed %d: tree %d differs:\n got %+v\nwant %+v", seed, i, got[i], want[i])
			}
		}
		s.Reset() // trees from this round are dead; the next round reuses them
	}
}

// TestSolverTreesSurviveLaterSolves pins the ownership contract: trees
// returned by one Solve stay valid (bit-identical content) while later
// Solve calls run on the same Solver, until Reset.
func TestSolverTreesSurviveLaterSolves(t *testing.T) {
	s := NewSolver()
	rng := rand.New(rand.NewSource(7))
	g0 := randomPCSTGraph(rng, 40)
	first, err := s.Solve(g0)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]Tree, len(first))
	for i, tr := range first {
		snapshot[i] = Tree{
			Nodes: append([]int32(nil), tr.Nodes...),
			Edges: append([]int(nil), tr.Edges...),
			Cost:  tr.Cost,
			Prize: tr.Prize,
		}
	}
	for k := 0; k < 10; k++ {
		if _, err := s.Solve(randomPCSTGraph(rng, 30+k)); err != nil {
			t.Fatal(err)
		}
	}
	for i := range snapshot {
		if !reflect.DeepEqual(first[i], snapshot[i]) {
			t.Fatalf("tree %d mutated by later solves:\n got %+v\nwant %+v", i, first[i], snapshot[i])
		}
	}
}

// TestSolverSteadyStateAllocFree exercises reuse across Reset cycles: after
// a warm-up on the same graph shape, repeated Solve+Reset rounds must not
// grow the arenas (checked indirectly through testing.AllocsPerRun in the
// repo-level harness; here we just assert correctness after many cycles).
func TestSolverManyResetCycles(t *testing.T) {
	s := NewSolver()
	rng := rand.New(rand.NewSource(11))
	g := randomPCSTGraph(rng, 50)
	want, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 50; cycle++ {
		got, err := s.Solve(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("cycle %d: %d trees, want %d", cycle, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("cycle %d: tree %d differs", cycle, i)
			}
		}
		s.Reset()
	}
}
