package pcst

import (
	"math/rand"
	"testing"
)

// gridGraph builds a side x side grid with random prizes, the topology
// class APP's solver sees on road networks.
func gridGraph(side int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := side * side
	g := &Graph{N: n, Prizes: make([]float64, n)}
	for i := range g.Prizes {
		if rng.Float64() < 0.3 {
			g.Prizes[i] = rng.Float64() * 3
		}
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := int32(y*side + x)
			if x+1 < side {
				g.Edges = append(g.Edges, Edge{v, v + 1, 0.5 + rng.Float64()})
			}
			if y+1 < side {
				g.Edges = append(g.Edges, Edge{v, v + int32(side), 0.5 + rng.Float64()})
			}
		}
	}
	return g
}

func BenchmarkSolveGrid30(b *testing.B) {
	g := gridGraph(30, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(g); err != nil {
			b.Fatal(err)
		}
	}
}
