package pcst

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/container"
)

// bruteForcePCST computes the exact optimum of min c(T) + π(V\T) over all
// trees T of g (including single-node trees), by enumerating node subsets
// whose induced subgraph is connected and spanning them with a minimum
// spanning tree. Exponential; for tiny graphs only.
func bruteForcePCST(g *Graph) float64 {
	n := g.N
	var totalPrize float64
	for _, p := range g.Prizes {
		totalPrize += p
	}
	best := totalPrize // the empty tree pays all penalties
	for mask := 1; mask < 1<<n; mask++ {
		cost, connected := mstOfSubset(g, mask)
		if !connected {
			continue
		}
		penalty := 0.0
		for v := 0; v < n; v++ {
			if mask&(1<<v) == 0 {
				penalty += g.Prizes[v]
			}
		}
		if c := cost + penalty; c < best {
			best = c
		}
	}
	return best
}

// mstOfSubset returns the MST length of the subgraph induced by the mask
// and whether that subgraph is connected.
func mstOfSubset(g *Graph, mask int) (float64, bool) {
	var nodes []int
	for v := 0; v < g.N; v++ {
		if mask&(1<<v) != 0 {
			nodes = append(nodes, v)
		}
	}
	if len(nodes) == 1 {
		return 0, true
	}
	type we struct {
		u, v int
		c    float64
	}
	var edges []we
	for _, e := range g.Edges {
		if mask&(1<<e.U) != 0 && mask&(1<<e.V) != 0 {
			edges = append(edges, we{int(e.U), int(e.V), e.Cost})
		}
	}
	// Kruskal.
	uf := container.NewUnionFind(g.N)
	// Sort edges by cost (insertion sort; tiny inputs).
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j].c < edges[j-1].c; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	var cost float64
	picked := 0
	for _, e := range edges {
		if uf.Union(e.u, e.v) {
			cost += e.c
			picked++
		}
	}
	return cost, picked == len(nodes)-1
}

// pcstObjective evaluates c(T) + π(V\T) for a returned tree.
func pcstObjective(g *Graph, t Tree) float64 {
	inTree := make(map[int32]bool)
	for _, v := range t.Nodes {
		inTree[v] = true
	}
	obj := t.Cost
	for v := 0; v < g.N; v++ {
		if !inTree[int32(v)] {
			obj += g.Prizes[v]
		}
	}
	return obj
}

// validateTree checks the returned tree is a real tree of g with accurate
// Cost and Prize.
func validateTree(t *testing.T, g *Graph, tr Tree) {
	t.Helper()
	if len(tr.Edges) != len(tr.Nodes)-1 {
		t.Fatalf("tree has %d nodes and %d edges", len(tr.Nodes), len(tr.Edges))
	}
	inTree := make(map[int32]bool)
	for _, v := range tr.Nodes {
		if inTree[v] {
			t.Fatal("duplicate node in tree")
		}
		inTree[v] = true
	}
	uf := container.NewUnionFind(g.N)
	var cost float64
	for _, ei := range tr.Edges {
		e := g.Edges[ei]
		if !inTree[e.U] || !inTree[e.V] {
			t.Fatalf("tree edge %d touches non-tree node", ei)
		}
		if !uf.Union(int(e.U), int(e.V)) {
			t.Fatal("tree contains a cycle")
		}
		cost += e.Cost
	}
	if math.Abs(cost-tr.Cost) > 1e-9 {
		t.Fatalf("Cost = %v, recomputed %v", tr.Cost, cost)
	}
	var prize float64
	for _, v := range tr.Nodes {
		prize += g.Prizes[v]
	}
	if math.Abs(prize-tr.Prize) > 1e-9 {
		t.Fatalf("Prize = %v, recomputed %v", tr.Prize, prize)
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	bad := []*Graph{
		{N: 2, Prizes: []float64{1}},                                       // prize count
		{N: 1, Prizes: []float64{-1}},                                      // negative prize
		{N: 2, Prizes: []float64{1, 1}, Edges: []Edge{{0, 5, 1}}},          // endpoint range
		{N: 2, Prizes: []float64{1, 1}, Edges: []Edge{{0, 0, 1}}},          // self loop
		{N: 2, Prizes: []float64{1, 1}, Edges: []Edge{{0, 1, -2}}},         // negative cost
		{N: 2, Prizes: []float64{1, 1}, Edges: []Edge{{0, 1, math.NaN()}}}, // NaN cost
	}
	for i, g := range bad {
		if _, err := Solve(g); err == nil {
			t.Errorf("case %d: invalid graph accepted", i)
		}
	}
}

func TestSingleProfitableEdge(t *testing.T) {
	// Two high-prize nodes joined by a cheap edge: the tree must take both.
	g := &Graph{N: 2, Prizes: []float64{10, 10}, Edges: []Edge{{0, 1, 1}}}
	trees, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no trees returned")
	}
	best := trees[0]
	validateTree(t, g, best)
	if len(best.Nodes) != 2 {
		t.Errorf("best tree nodes = %v, want both", best.Nodes)
	}
}

func TestExpensiveEdgeSkipped(t *testing.T) {
	// The edge costs more than the second prize: stay single.
	g := &Graph{N: 2, Prizes: []float64{10, 1}, Edges: []Edge{{0, 1, 5}}}
	trees, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no trees")
	}
	best := trees[0]
	if len(best.Nodes) != 1 || best.Nodes[0] != 0 {
		t.Errorf("best = %+v, want the single node 0", best)
	}
}

func TestZeroPrizeSteinerNode(t *testing.T) {
	// A zero-prize middle node must be used as a Steiner point when it
	// connects two valuable nodes cheaply.
	g := &Graph{
		N:      3,
		Prizes: []float64{10, 0, 10},
		Edges:  []Edge{{0, 1, 1}, {1, 2, 1}},
	}
	trees, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	best := trees[0]
	validateTree(t, g, best)
	if len(best.Nodes) != 3 {
		t.Errorf("expected Steiner node included, got nodes %v", best.Nodes)
	}
}

func TestApproximationGuaranteeRandom(t *testing.T) {
	// On random small graphs the GW objective must be within 2x of the
	// brute-force optimum (the classic GW bound), and never better than it.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(7) // 3..9 nodes
		g := &Graph{N: n, Prizes: make([]float64, n)}
		for v := range g.Prizes {
			g.Prizes[v] = float64(rng.Intn(8)) // some zero prizes
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					g.Edges = append(g.Edges, Edge{int32(u), int32(v), 1 + rng.Float64()*5})
				}
			}
		}
		opt := bruteForcePCST(g)
		trees, err := Solve(g)
		if err != nil {
			t.Fatal(err)
		}
		// The solver's best objective: min over returned trees, and the
		// empty tree as fallback.
		var totalPrize float64
		for _, p := range g.Prizes {
			totalPrize += p
		}
		got := totalPrize
		for _, tr := range trees {
			validateTree(t, g, tr)
			if obj := pcstObjective(g, tr); obj < got {
				got = obj
			}
		}
		if got < opt-1e-6 {
			t.Fatalf("trial %d: solver objective %v beats optimum %v (bug in one of them)", trial, got, opt)
		}
		if got > 2*opt+1e-6 {
			t.Fatalf("trial %d: solver objective %v exceeds 2x optimum %v", trial, got, opt)
		}
	}
}

func TestDisconnectedGraph(t *testing.T) {
	g := &Graph{
		N:      4,
		Prizes: []float64{5, 5, 7, 7},
		Edges:  []Edge{{0, 1, 1}, {2, 3, 1}},
	}
	trees, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want one per component", len(trees))
	}
	// Sorted by net worth: component {2,3} first (14-1 > 10-1).
	if trees[0].Prize != 14 || trees[1].Prize != 10 {
		t.Errorf("prizes = %v, %v", trees[0].Prize, trees[1].Prize)
	}
}

func TestAllZeroPrizes(t *testing.T) {
	g := &Graph{N: 3, Prizes: []float64{0, 0, 0}, Edges: []Edge{{0, 1, 1}, {1, 2, 1}}}
	trees, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trees {
		if len(tr.Nodes) > 1 || tr.Prize > 0 {
			t.Errorf("zero-prize graph should produce no meaningful tree, got %+v", tr)
		}
	}
}

func TestPathGraphMoats(t *testing.T) {
	// A path with uniform prizes and uniform edges: with prize 3 and edge
	// cost 2, neighbouring moats meet (each side grows 1 < 3), so the
	// whole path should merge into one tree.
	const n = 6
	g := &Graph{N: n, Prizes: make([]float64, n)}
	for i := range g.Prizes {
		g.Prizes[i] = 3
	}
	for i := 0; i < n-1; i++ {
		g.Edges = append(g.Edges, Edge{int32(i), int32(i + 1), 2})
	}
	trees, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	best := trees[0]
	validateTree(t, g, best)
	if len(best.Nodes) != n {
		t.Errorf("tree spans %d nodes, want %d", len(best.Nodes), n)
	}
}

func TestStrongPruneDropsLossyBranch(t *testing.T) {
	// Star: center valuable, one good spoke, one spoke whose edge costs
	// more than its prize. The lossy spoke must be pruned even though the
	// moats may have merged it.
	g := &Graph{
		N:      3,
		Prizes: []float64{10, 5, 1},
		Edges:  []Edge{{0, 1, 1}, {0, 2, 4}},
	}
	trees, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	best := trees[0]
	for _, v := range best.Nodes {
		if v == 2 {
			t.Error("lossy branch survived strong pruning")
		}
	}
}

func TestLargeRandomTerminates(t *testing.T) {
	// Sanity/performance guard: a 2000-node grid-ish instance must solve
	// quickly and produce a valid tree.
	rng := rand.New(rand.NewSource(3))
	const side = 45
	n := side * side
	g := &Graph{N: n, Prizes: make([]float64, n)}
	for i := range g.Prizes {
		if rng.Float64() < 0.3 {
			g.Prizes[i] = rng.Float64() * 4
		}
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := int32(y*side + x)
			if x+1 < side {
				g.Edges = append(g.Edges, Edge{v, v + 1, 0.5 + rng.Float64()})
			}
			if y+1 < side {
				g.Edges = append(g.Edges, Edge{v, v + int32(side), 0.5 + rng.Float64()})
			}
		}
	}
	trees, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no trees on a graph with many prizes")
	}
	for _, tr := range trees[:min(len(trees), 5)] {
		validateTree(t, g, tr)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDormantEdgeReactivation(t *testing.T) {
	// Topology: a(prize 20) -1- b(0) -1- c(0) -1- d(prize 0.2).
	// d's tiny cluster dies almost immediately; the (c,d) edge goes
	// dormant once both sides are inactive. a's big moat must later eat
	// through b and c and still absorb d through the formerly dormant
	// edge — this exercises the dormant re-seeding path.
	g := &Graph{
		N:      4,
		Prizes: []float64{20, 0, 0, 0.2},
		Edges:  []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The moat-growing forest (pre-pruning) must pick up edge (2,3): a's
	// cluster re-activates the dormant edge after eating through b and c.
	// (Strong pruning then correctly drops the d branch — its prize 0.2
	// does not pay for the 1.0 connection — so assert on the raw forest.)
	forest := growForest(g)
	if len(forest) != 3 {
		t.Fatalf("forest edges = %v, want all 3 (dormant edge never re-seeded)", forest)
	}
	// And the final answer remains the optimal single node a.
	trees, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	best := trees[0]
	validateTree(t, g, best)
	if len(best.Nodes) != 1 || best.Nodes[0] != 0 {
		t.Errorf("pruned tree = %v, want just node 0", best.Nodes)
	}
}

func TestSinglePrizeIsland(t *testing.T) {
	// One prized node with no edges at all.
	g := &Graph{N: 3, Prizes: []float64{0, 7, 0}}
	trees, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 || trees[0].Prize != 7 || len(trees[0].Nodes) != 1 {
		t.Errorf("trees = %+v", trees)
	}
}
