// Package pcst implements the Goemans–Williamson primal–dual approximation
// for the (unrooted) prize-collecting Steiner tree problem — the "general
// approximation technique for constrained forest problems" [9] that Garg's
// k-MST 3-approximation [8] is built on, which in turn is the solver APP
// invokes during its binary search (§4.2 of the paper).
//
// Given an undirected graph with non-negative edge costs c(e) and node
// prizes π(v), the algorithm grows moats (dual variables) uniformly around
// active clusters; an edge becomes part of the forest when the moats along
// it are tight, and a cluster deactivates when its prize budget is
// exhausted. A final strong-pruning pass (Johnson–Minkoff–Phillips) keeps,
// inside each forest component, the subtree with the best net worth
// Σπ − Σc. The classic guarantee is a 2-approximation for the PCST
// objective min c(T) + π(V \ T).
//
// # Pooling ownership
//
// The package-level Solve allocates its working state per run. The pooled
// Solver type runs the identical algorithm (golden-tested bit-identical)
// from reusable state with zero steady-state allocations; it serves one
// goroutine. Trees returned by Solver.Solve alias the solver's arenas and
// stay valid across later Solve calls — the kmst λ-cache retains them —
// until Solver.Reset reclaims them all at once.
package pcst

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/container"
)

// Edge is an undirected edge with a non-negative cost.
type Edge struct {
	U, V int32
	Cost float64
}

// Graph is the PCST input: a node count, an edge list, and per-node prizes.
type Graph struct {
	N      int
	Edges  []Edge
	Prizes []float64
}

// Validate checks structural invariants and returns a descriptive error.
func (g *Graph) Validate() error {
	if len(g.Prizes) != g.N {
		return fmt.Errorf("pcst: %d prizes for %d nodes", len(g.Prizes), g.N)
	}
	for i, p := range g.Prizes {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("pcst: node %d has invalid prize %v", i, p)
		}
	}
	for i, e := range g.Edges {
		if e.U < 0 || int(e.U) >= g.N || e.V < 0 || int(e.V) >= g.N {
			return fmt.Errorf("pcst: edge %d endpoints (%d,%d) out of range", i, e.U, e.V)
		}
		if e.U == e.V {
			return fmt.Errorf("pcst: edge %d is a self loop", i)
		}
		if e.Cost < 0 || math.IsNaN(e.Cost) || math.IsInf(e.Cost, 0) {
			return fmt.Errorf("pcst: edge %d has invalid cost %v", i, e.Cost)
		}
	}
	return nil
}

// Tree is a connected subtree of the input graph.
type Tree struct {
	Nodes []int32 // sorted ascending
	Edges []int   // indices into Graph.Edges
	Cost  float64 // Σ c(e) over Edges
	Prize float64 // Σ π(v) over Nodes
}

// NetWorth returns Prize − Cost, the quantity strong pruning maximizes.
func (t *Tree) NetWorth() float64 { return t.Prize - t.Cost }

const eps = 1e-9

type cluster struct {
	members   []int32
	active    bool
	potential float64 // remaining prize budget at time lastT
	lastT     float64
}

type eventKind uint8

const (
	evEdge eventKind = iota
	evDeath
)

type event struct {
	time float64
	kind eventKind
	id   int // edge index, or cluster representative node
}

// Solve runs GW moat growing followed by strong pruning and returns one
// pruned candidate tree per forest component (components whose pruned tree
// is a single node with zero prize are dropped). Trees are sorted by
// decreasing net worth.
func Solve(g *Graph) ([]Tree, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	forest := growForest(g)
	comps := forestComponents(g, forest)
	var out []Tree
	for _, comp := range comps {
		t := strongPrune(g, comp)
		if len(t.Nodes) == 1 && t.Prize <= 0 {
			continue
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NetWorth() > out[j].NetWorth() })
	return out, nil
}

// growForest runs the primal–dual moat growing and returns the indices of
// the forest edges picked by merge events.
func growForest(g *Graph) []int {
	n := g.N
	uf := container.NewUnionFind(n)
	clusters := make([]*cluster, n)
	dual := make([]float64, n) // flushed dual contribution per node
	activeCount := 0
	for v := 0; v < n; v++ {
		c := &cluster{members: []int32{int32(v)}, potential: g.Prizes[v]}
		c.active = g.Prizes[v] > eps
		if c.active {
			activeCount++
		}
		clusters[v] = c
	}

	pq := container.NewHeap[event](func(a, b event) bool { return a.time < b.time })
	for v := 0; v < n; v++ {
		if clusters[v].active {
			pq.Push(event{time: clusters[v].potential, kind: evDeath, id: v})
		}
	}
	// Edges whose last event computation found both sides inactive. They
	// re-enter the queue whenever a merge creates a new active cluster,
	// because that is the only way a dead side can start growing again.
	var dormant []int
	for i := range g.Edges {
		if t, ok := edgeEventTime(g, uf, clusters, dual, i, 0); ok {
			pq.Push(event{time: t, kind: evEdge, id: i})
		} else {
			ru, rv := uf.Find(int(g.Edges[i].U)), uf.Find(int(g.Edges[i].V))
			if ru != rv {
				dormant = append(dormant, i)
			}
		}
	}

	flush := func(root int, now float64) {
		c := clusters[root]
		if c.active && now > c.lastT {
			dt := now - c.lastT
			for _, m := range c.members {
				dual[m] += dt
			}
			c.potential -= dt
		}
		c.lastT = now
	}

	var forest []int
	for activeCount > 0 {
		ev, ok := pq.Pop()
		if !ok {
			break
		}
		switch ev.kind {
		case evDeath:
			root := uf.Find(ev.id)
			c := clusters[root]
			if !c.active {
				continue // stale
			}
			trueDeath := c.lastT + c.potential
			if trueDeath > ev.time+eps {
				pq.Push(event{time: trueDeath, kind: evDeath, id: root})
				continue
			}
			flush(root, ev.time)
			c.active = false
			activeCount--
		case evEdge:
			e := g.Edges[ev.id]
			ru, rv := uf.Find(int(e.U)), uf.Find(int(e.V))
			if ru == rv {
				continue // became internal
			}
			t, ok := edgeEventTime(g, uf, clusters, dual, ev.id, ev.time)
			if !ok {
				dormant = append(dormant, ev.id)
				continue
			}
			if t > ev.time+eps {
				pq.Push(event{time: t, kind: evEdge, id: ev.id})
				continue
			}
			// Fire: flush both clusters to now and merge.
			flush(ru, ev.time)
			flush(rv, ev.time)
			cu, cv := clusters[ru], clusters[rv]
			wasActiveU, wasActiveV := cu.active, cv.active
			uf.Union(ru, rv)
			root := uf.Find(ru)
			merged := &cluster{
				active:    true,
				potential: math.Max(cu.potential, 0) + math.Max(cv.potential, 0),
				lastT:     ev.time,
			}
			// Merge member lists smaller-into-larger.
			if len(cu.members) < len(cv.members) {
				cu, cv = cv, cu
			}
			merged.members = append(cu.members, cv.members...)
			clusters[root] = merged
			forest = append(forest, ev.id)
			switch {
			case wasActiveU && wasActiveV:
				activeCount--
			case !wasActiveU && !wasActiveV:
				activeCount++
			}
			if merged.potential <= eps {
				merged.active = false
				activeCount--
			} else {
				pq.Push(event{time: ev.time + merged.potential, kind: evDeath, id: root})
				// A new active cluster exists: dormant edges may fire again.
				if len(dormant) > 0 {
					still := dormant[:0]
					for _, ei := range dormant {
						if t2, ok := edgeEventTime(g, uf, clusters, dual, ei, ev.time); ok {
							pq.Push(event{time: t2, kind: evEdge, id: ei})
						} else if uf.Find(int(g.Edges[ei].U)) != uf.Find(int(g.Edges[ei].V)) {
							still = append(still, ei)
						}
					}
					dormant = still
				}
			}
		}
	}
	return forest
}

// edgeEventTime computes the next firing time of edge i given the state at
// time now. ok is false when the edge cannot currently fire (same cluster
// or both sides inactive).
func edgeEventTime(g *Graph, uf *container.UnionFind, clusters []*cluster, dual []float64, i int, now float64) (float64, bool) {
	e := g.Edges[i]
	ru, rv := uf.Find(int(e.U)), uf.Find(int(e.V))
	if ru == rv {
		return 0, false
	}
	cu, cv := clusters[ru], clusters[rv]
	dU := dual[e.U]
	if cu.active {
		dU += now - cu.lastT
	}
	dV := dual[e.V]
	if cv.active {
		dV += now - cv.lastT
	}
	rate := 0.0
	if cu.active {
		rate++
	}
	if cv.active {
		rate++
	}
	if rate == 0 {
		return 0, false
	}
	slack := e.Cost - dU - dV
	if slack < 0 {
		slack = 0
	}
	return now + slack/rate, true
}

// forestComponents groups the forest edges into connected components and
// returns, per component, the node set and the component's forest edges.
type component struct {
	nodes []int32
	edges []int
}

func forestComponents(g *Graph, forest []int) []component {
	uf := container.NewUnionFind(g.N)
	for _, ei := range forest {
		uf.Union(int(g.Edges[ei].U), int(g.Edges[ei].V))
	}
	byRoot := make(map[int]*component)
	for v := 0; v < g.N; v++ {
		r := uf.Find(v)
		c, ok := byRoot[r]
		if !ok {
			c = &component{}
			byRoot[r] = c
		}
		c.nodes = append(c.nodes, int32(v))
	}
	for _, ei := range forest {
		r := uf.Find(int(g.Edges[ei].U))
		byRoot[r].edges = append(byRoot[r].edges, ei)
	}
	out := make([]component, 0, len(byRoot))
	for _, c := range byRoot {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].nodes[0] < out[j].nodes[0] })
	return out
}

// strongPrune keeps, within one forest component, the subtree maximizing
// net worth. It roots the component at its maximum-prize node, computes
// net(v) = π(v) + Σ_children max(0, net(c) − cost(v,c)) bottom-up, drops
// non-contributing branches, and finally re-roots on the best subtree node.
func strongPrune(g *Graph, comp component) Tree {
	// Build adjacency within the component.
	type he struct {
		to   int32
		edge int
	}
	adj := make(map[int32][]he, len(comp.nodes))
	for _, ei := range comp.edges {
		e := g.Edges[ei]
		adj[e.U] = append(adj[e.U], he{to: e.V, edge: ei})
		adj[e.V] = append(adj[e.V], he{to: e.U, edge: ei})
	}
	root := comp.nodes[0]
	for _, v := range comp.nodes {
		if g.Prizes[v] > g.Prizes[root] {
			root = v
		}
	}

	// Iterative post-order DFS.
	type frame struct {
		v, parent  int32
		parentEdge int
		childIdx   int
	}
	net := make(map[int32]float64, len(comp.nodes))
	keepChild := make(map[int32][]he) // children kept by pruning
	order := make([]frame, 0, len(comp.nodes))
	stack := []frame{{v: root, parent: -1, parentEdge: -1}}
	visited := make(map[int32]bool, len(comp.nodes))
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[f.v] {
			continue
		}
		visited[f.v] = true
		order = append(order, f)
		for _, h := range adj[f.v] {
			if h.to != f.parent {
				stack = append(stack, frame{v: h.to, parent: f.v, parentEdge: h.edge})
			}
		}
	}
	// Process in reverse DFS discovery order = children before parents.
	for i := len(order) - 1; i >= 0; i-- {
		f := order[i]
		n := g.Prizes[f.v]
		for _, h := range adj[f.v] {
			if h.to == f.parent {
				continue
			}
			margin := net[h.to] - g.Edges[h.edge].Cost
			if margin > eps {
				n += margin
				keepChild[f.v] = append(keepChild[f.v], h)
			}
		}
		net[f.v] = n
	}

	// Collect the kept subtree from the root.
	t := Tree{}
	var walk func(v int32)
	walk = func(v int32) {
		t.Nodes = append(t.Nodes, v)
		t.Prize += g.Prizes[v]
		for _, h := range keepChild[v] {
			t.Edges = append(t.Edges, h.edge)
			t.Cost += g.Edges[h.edge].Cost
			walk(h.to)
		}
	}
	walk(root)
	sort.Slice(t.Nodes, func(i, j int) bool { return t.Nodes[i] < t.Nodes[j] })
	return t
}
