// Package cluster distributes LCMSR serving across processes: the grid's
// cell space [0, NumCells) is split into contiguous ranges, each owned by
// one or more node processes (replicas), with a thin coordinator in front
// that scatters a query's rectangle to the owning nodes, gathers their
// partial scores, and merges them into exactly the result a single
// process would have computed.
//
// The correctness backbone is the partition property documented on
// grid.SearchRangeInto: every object's postings live entirely in its one
// grid cell, so partial searches over disjoint cell ranges return
// disjoint per-object score sets, each computed node-side with the same
// floating-point accumulation order a single process uses. The
// coordinator's merge is concatenate + sort by object id — no arithmetic
// — so distributed answers are bit-identical to single-process answers
// (the wire is JSON, and Go's float64 JSON encoding round-trips exactly).
//
// The transport is deliberately small: length-prefixed JSON frames over
// TCP, request/response per frame, no external dependencies.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/grid"
)

// maxFrame bounds a frame body; a peer announcing more is broken or
// hostile, and the connection is dropped rather than the memory allocated.
const maxFrame = 64 << 20

// Protocol operations.
const (
	opHello   = "hello"
	opPartial = "partial"
	opStats   = "stats"
	opHealth  = "health"
)

// Error kinds carried in responses, so the coordinator can tell a
// retryable storage fault from a permanent request error without parsing
// message strings.
const (
	kindShardIO = "shardio" // grid.ErrShardIO: retry on a replica
	kindBad     = "bad"     // malformed request: do not retry
)

// request is the coordinator→node frame.
type request struct {
	Op string `json:"op"`

	// partial search (opPartial)
	Terms []int32   `json:"terms,omitempty"` // textindex.TermID values, sorted
	IDF   []float64 `json:"idf,omitempty"`
	Norm  float64   `json:"norm,omitempty"`
	Rect  *wireRect `json:"rect,omitempty"`
	// TimeoutMillis is the caller's remaining budget; the node bounds its
	// own I/O with it so a node stuck on storage cannot hold the
	// connection past the client's deadline.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Explain asks the node to trace its partial search (grid.SearchTrace)
	// and ship the counters back as the response's Trace fragment. Off by
	// default: an untraced partial search does no counting.
	Explain bool `json:"explain,omitempty"`
}

type wireRect struct {
	MinX float64 `json:"x0"`
	MinY float64 `json:"y0"`
	MaxX float64 `json:"x1"`
	MaxY float64 `json:"y1"`
}

// wireScore is one per-object partial score. Score is final (including
// the query-norm division), computed entirely node-side.
type wireScore struct {
	Obj   int32   `json:"o"`
	Score float64 `json:"s"`
}

// NodeStats is the node-side counter snapshot returned by opStats and
// aggregated into the coordinator's cluster stats.
type NodeStats struct {
	CellLo     uint32 `json:"cell_lo"`
	CellHi     uint32 `json:"cell_hi"`
	Objects    int    `json:"objects"`
	Served     int64  `json:"served"`
	Errors     int64  `json:"errors"`
	Tombstones int    `json:"tombstones"`
}

// response is the node→coordinator frame.
type response struct {
	Err     string `json:"err,omitempty"`
	ErrKind string `json:"err_kind,omitempty"`

	// hello
	CellLo   uint32  `json:"cell_lo,omitempty"`
	CellHi   uint32  `json:"cell_hi,omitempty"`
	NumCells int     `json:"num_cells,omitempty"`
	Objects  int     `json:"objects,omitempty"`
	Terms    []int32 `json:"terms,omitempty"` // term-directory summary for skip routing

	// partial
	Scores []wireScore `json:"scores,omitempty"`
	// Trace is the node's search-trace fragment, present only when the
	// request set Explain. The coordinator sums the fragments of one
	// scattered search into the query's grid.SearchTrace.
	Trace *wireTrace `json:"trace,omitempty"`

	// stats
	Stats *NodeStats `json:"stats,omitempty"`
}

// wireTrace mirrors the grid.SearchTrace counters a node can fill (the
// cluster routing fields are coordinator-side and never cross the wire).
type wireTrace struct {
	CellsInRect      int64 `json:"cells_in_rect,omitempty"`
	CellsEmpty       int64 `json:"cells_empty,omitempty"`
	CellsNoTerm      int64 `json:"cells_no_term,omitempty"`
	CellsCacheHit    int64 `json:"cells_cache_hit,omitempty"`
	CellsScanned     int64 `json:"cells_scanned,omitempty"`
	Lists            int64 `json:"lists,omitempty"`
	Postings         int64 `json:"postings,omitempty"`
	PostingsFiltered int64 `json:"postings_filtered,omitempty"`
	Objects          int64 `json:"objects,omitempty"`
}

// toWire copies the node-fillable counters of t into a wire fragment.
func toWire(t *grid.SearchTrace) *wireTrace {
	return &wireTrace{
		CellsInRect:      t.CellsInRect,
		CellsEmpty:       t.CellsEmpty,
		CellsNoTerm:      t.CellsNoTerm,
		CellsCacheHit:    t.CellsCacheHit,
		CellsScanned:     t.CellsScanned,
		Lists:            t.Lists,
		Postings:         t.Postings,
		PostingsFiltered: t.PostingsFiltered,
		Objects:          t.Objects,
	}
}

// addTo accumulates the fragment into t.
func (w *wireTrace) addTo(t *grid.SearchTrace) {
	t.Add(grid.SearchTrace{
		CellsInRect:      w.CellsInRect,
		CellsEmpty:       w.CellsEmpty,
		CellsNoTerm:      w.CellsNoTerm,
		CellsCacheHit:    w.CellsCacheHit,
		CellsScanned:     w.CellsScanned,
		Lists:            w.Lists,
		Postings:         w.Postings,
		PostingsFiltered: w.PostingsFiltered,
		Objects:          w.Objects,
	})
}

// writeFrame marshals v and writes it as one length-prefixed frame.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cluster: encode frame: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds the %d limit", len(body), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("cluster: peer announced a %d-byte frame (limit %d)", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("cluster: decode frame: %w", err)
	}
	return nil
}

// Typed failure modes of the distributed path.
var (
	// ErrNoReplica is returned when every replica of a required cell range
	// has failed (connection refused, or grid.ErrShardIO from its store):
	// the query cannot be answered correctly, so it fails fast and typed
	// instead of returning a silently incomplete result.
	ErrNoReplica = errors.New("cluster: no replica left for required cell range")
	// ErrQuotaExceeded is returned by coordinator admission when a
	// client's token bucket is empty; clients should back off.
	ErrQuotaExceeded = errors.New("cluster: client quota exceeded")
	// ErrMismatch is returned when a node's dataset identity (cell count,
	// object count) disagrees with the coordinator's — serving would give
	// wrong answers, so the node is refused at Hello time.
	ErrMismatch = errors.New("cluster: node dataset does not match coordinator")
	// ErrBadTopology is returned when the nodes' cell ranges do not tile
	// the coordinator's cell space.
	ErrBadTopology = errors.New("cluster: node cell ranges do not cover the grid")
	// ErrCoordinatorClosed is returned by Search after Close: a closed
	// coordinator fails fast instead of dialing nodes whose connections
	// it could no longer pool or release.
	ErrCoordinatorClosed = errors.New("cluster: coordinator closed")
)
