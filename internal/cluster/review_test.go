package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/grid"
)

// TestPooledConnSurvivesDeadline: the node must disarm a request's
// deadline once the response is written. Regression: the deadline kept
// ticking while the connection sat idle in the coordinator's pool, so
// the node closed every pooled connection as soon as the previous
// request's budget lapsed — and with one replica per range the next
// query found a "dead" node.
func TestPooledConnSurvivesDeadline(t *testing.T) {
	const objects = 100
	v, idx := buildCorpus(t, objects, 31, false)
	n := startNode(t, idx, 0, uint32(idx.NumCells()), objects)
	defer n.Close()
	c, err := NewCoordinator(CoordinatorConfig{
		Addrs: []string{n.Addr().String()}, Index: idx, Objects: objects,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := v.PrepareQuery([]string{"cafe"})
	r := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	search := func(tag string) {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		if _, err := c.Search(ctx, q, r); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
	}
	search("first")
	// Let the first request's 100ms budget lapse while its connection
	// idles in the pool; the node must not have closed it.
	time.Sleep(300 * time.Millisecond)
	search("after deadline lapse")
	nc := c.groups[0].replicas[0]
	if got := nc.errors.Load(); got != 0 {
		t.Fatalf("replica recorded %d errors; the pooled connection did not survive the idle deadline", got)
	}
}

// TestRPCRedialsStalePooledConn: a transport failure on a pooled
// connection says nothing about the node, so rpc must fall through to a
// fresh dial instead of reporting the replica dead.
func TestRPCRedialsStalePooledConn(t *testing.T) {
	const objects = 100
	_, idx := buildCorpus(t, objects, 37, false)
	n := startNode(t, idx, 0, uint32(idx.NumCells()), objects)
	defer n.Close()

	nc := &nodeClient{addr: n.Addr().String(), latCap: 16}
	// Seed the pool with two connections that died while idle.
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", nc.addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		nc.idle = append(nc.idle, c)
	}
	resp, err, _ := nc.rpc(&request{Op: opHealth}, time.Now().Add(5*time.Second), 2*time.Second)
	if err != nil {
		t.Fatalf("rpc over stale pool: %v", err)
	}
	if resp.Err != "" {
		t.Fatalf("node answered error: %s", resp.Err)
	}
	if got := nc.errors.Load(); got != 2 {
		t.Errorf("errors = %d, want 2 (one per stale pooled connection)", got)
	}
}

// TestNodeFreezesIndex: becoming a cluster node makes the index
// read-only — the coordinator caches the node's term directory at
// Hello, so a later live update could make skip routing silently wrong.
func TestNodeFreezesIndex(t *testing.T) {
	const objects = 50
	v, idx := buildCorpus(t, objects, 41, false)
	doc := v.IndexDoc([]string{"cafe"})
	if _, err := idx.Insert(geo.Point{X: 1, Y: 1}, doc, []string{"cafe"}); err != nil {
		t.Fatalf("insert before NewNode: %v", err)
	}
	if _, err := NewNode(NodeConfig{Index: idx, CellLo: 0, CellHi: uint32(idx.NumCells()), Objects: objects + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Insert(geo.Point{X: 2, Y: 2}, doc, []string{"cafe"}); !errors.Is(err, grid.ErrFrozen) {
		t.Fatalf("insert on a cluster node's index: err = %v, want grid.ErrFrozen", err)
	}
	if err := idx.Delete(0); !errors.Is(err, grid.ErrFrozen) {
		t.Fatalf("delete on a cluster node's index: err = %v, want grid.ErrFrozen", err)
	}
}

// TestSearchAfterCloseFailsFast: Close must stop Search from dialing
// new connections and parking them in a pool nobody will release.
func TestSearchAfterCloseFailsFast(t *testing.T) {
	const objects = 100
	v, idx := buildCorpus(t, objects, 43, false)
	n := startNode(t, idx, 0, uint32(idx.NumCells()), objects)
	defer n.Close()
	c, err := NewCoordinator(CoordinatorConfig{
		Addrs: []string{n.Addr().String()}, Index: idx, Objects: objects,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	q := v.PrepareQuery([]string{"cafe"})
	if _, err := c.Search(context.Background(), q, geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}); !errors.Is(err, ErrCoordinatorClosed) {
		t.Fatalf("search after close: err = %v, want ErrCoordinatorClosed", err)
	}

	// A connection finishing its exchange after Close must be closed,
	// not pooled (the leak the fail-fast alone does not cover).
	nc := c.groups[0].replicas[0]
	conn, err := net.Dial("tcp", nc.addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.put(conn)
	nc.mu.Lock()
	pooled := len(nc.idle)
	nc.mu.Unlock()
	if pooled != 0 {
		t.Fatalf("%d connections pooled after close, want 0", pooled)
	}
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Error("connection handed to a closed client's put was left open")
	}
	if _, _, err := nc.get(time.Second); !errors.Is(err, ErrCoordinatorClosed) {
		t.Fatalf("get after close: err = %v, want ErrCoordinatorClosed", err)
	}
}

// TestQuotaTableEviction: one bucket per distinct client id must not
// accumulate forever — a bucket idle long enough to have fully refilled
// is indistinguishable from a fresh one and is evicted by the amortized
// sweep.
func TestQuotaTableEviction(t *testing.T) {
	// Burst/Rate = 1ns: every bucket from a previous iteration has fully
	// refilled by the time the sweep looks at it.
	q := newQuotaTable(QuotaOptions{RatePerSec: 1e9, Burst: 1})
	const clients = 3 * quotaSweepMin
	for i := 0; i < clients; i++ {
		q.take(fmt.Sprintf("client-%d", i))
	}
	q.mu.Lock()
	size := len(q.m)
	q.mu.Unlock()
	if size >= clients {
		t.Fatalf("quota table holds %d buckets for %d one-shot clients; eviction never ran", size, clients)
	}
	if size > quotaSweepMin+16 {
		t.Errorf("quota table holds %d buckets after sweeps, want ≈%d or fewer", size, quotaSweepMin)
	}
}
