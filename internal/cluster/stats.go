package cluster

import (
	"sort"
	"time"
)

// NodeClientStats is the coordinator's view of one node: routing
// counters and RPC latency percentiles (measured at the coordinator, so
// they include the network).
type NodeClientStats struct {
	Addr    string        `json:"addr"`
	CellLo  uint32        `json:"cell_lo"`
	CellHi  uint32        `json:"cell_hi"`
	Sent    int64         `json:"sent"`
	Errors  int64         `json:"errors"`
	P50     time.Duration `json:"p50_ns"`
	P95     time.Duration `json:"p95_ns"`
	P99     time.Duration `json:"p99_ns"`
	Samples int           `json:"samples"`
}

// Stats is the cluster-wide counter snapshot: per-node client stats plus
// the coordinator's routing decisions (skips, retries, replica
// exhaustion, quota denials).
type Stats struct {
	Searches    int64             `json:"searches"`
	SkippedRect int64             `json:"skipped_rect"`
	SkippedTerm int64             `json:"skipped_term"`
	Retries     int64             `json:"retries"`
	NoReplica   int64             `json:"no_replica"`
	QuotaDenied int64             `json:"quota_denied"`
	Groups      int               `json:"groups"`
	Nodes       []NodeClientStats `json:"nodes"`
}

// Stats snapshots the coordinator's counters. Safe for concurrent use
// with Search.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		Searches:    c.searches.Load(),
		SkippedRect: c.skippedRect.Load(),
		SkippedTerm: c.skippedTerm.Load(),
		Retries:     c.retries.Load(),
		NoReplica:   c.noReplica.Load(),
		Groups:      len(c.groups),
	}
	if c.quotas != nil {
		st.QuotaDenied = c.quotas.denied.Load()
	}
	for _, g := range c.groups {
		for _, nc := range g.replicas {
			ns := NodeClientStats{
				Addr:   nc.addr,
				CellLo: g.lo,
				CellHi: g.hi,
				Sent:   nc.sent.Load(),
				Errors: nc.errors.Load(),
			}
			nc.latMu.Lock()
			if len(nc.lat) > 0 {
				sorted := make([]time.Duration, len(nc.lat))
				copy(sorted, nc.lat)
				sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
				ns.Samples = len(sorted)
				ns.P50 = pctile(sorted, 0.50)
				ns.P95 = pctile(sorted, 0.95)
				ns.P99 = pctile(sorted, 0.99)
			}
			nc.latMu.Unlock()
			st.Nodes = append(st.Nodes, ns)
		}
	}
	return st
}

// pctile is the nearest-rank percentile of a sorted sample.
func pctile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
