package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/textindex"
)

// Node serves partial searches for one contiguous cell range of the grid.
// It wraps a fully built grid.Index (the index may hold the whole corpus;
// the node answers only for its assigned cells, so what it serves — and
// what its page cache warms — is the range's slice of the data) and
// exposes the narrow RPC surface the coordinator speaks: Hello,
// PartialSearch, Stats, Health.
//
// A node is read-only, and NewNode enforces it by freezing the index
// (grid.Index.Freeze): replicas of a range are interchangeable because
// they serve identical data, which is what makes retry-on-replica
// sound, and the coordinator caches the node's term directory once at
// Hello — a live update landing a new term in the node's cells after
// that would make the coordinator's skip routing silently drop results.
// Serving live updates requires rebuilding and restarting the cluster.
type Node struct {
	idx     *grid.Index
	lo, hi  uint32
	objects int

	ln      net.Listener
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
	scratch sync.Pool // *grid.SearchScratch, one per in-flight request

	served atomic.Int64
	errs   atomic.Int64
}

// NodeConfig configures NewNode.
type NodeConfig struct {
	// Index is the node's built index.
	Index *grid.Index
	// CellLo, CellHi bound the owned cell range [CellLo, CellHi). When the
	// index's store records a cell range in its MANIFEST, that recorded
	// assignment is the authority and these must match it (or be zero to
	// adopt it).
	CellLo, CellHi uint32
	// Objects is the corpus size; the coordinator refuses nodes whose
	// corpus does not match its own.
	Objects int
}

// NewNode validates cfg against the index, freezes the index (cluster
// serving is read-only: the routing metadata shipped at Hello must stay
// truthful, so later Insert/Delete/Reweight fail with grid.ErrFrozen),
// and returns an unstarted node; call Serve with a listener to start it.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Index == nil {
		return nil, fmt.Errorf("cluster: NewNode: nil index")
	}
	lo, hi := cfg.CellLo, cfg.CellHi
	if rlo, rhi, ok := cfg.Index.StoreCellRange(); ok {
		if lo == 0 && hi == 0 {
			lo, hi = rlo, rhi
		} else if lo != rlo || hi != rhi {
			return nil, fmt.Errorf("cluster: requested cell range [%d, %d) contradicts the store manifest's [%d, %d)", lo, hi, rlo, rhi)
		}
	}
	if lo >= hi {
		return nil, fmt.Errorf("cluster: invalid cell range [%d, %d)", lo, hi)
	}
	if n := uint32(cfg.Index.NumCells()); lo >= n {
		return nil, fmt.Errorf("cluster: cell range [%d, %d) starts beyond the grid's %d cells", lo, hi, n)
	}
	cfg.Index.Freeze()
	return &Node{idx: cfg.Index, lo: lo, hi: hi, objects: cfg.Objects, conns: make(map[net.Conn]struct{})}, nil
}

// CellRange returns the node's owned range [lo, hi).
func (n *Node) CellRange() (lo, hi uint32) { return n.lo, n.hi }

// Serve starts accepting connections on ln in a background goroutine and
// returns immediately. The node owns ln from here: Close closes it.
func (n *Node) Serve(ln net.Listener) {
	n.mu.Lock()
	n.ln = ln
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			n.mu.Lock()
			if n.closed {
				n.mu.Unlock()
				_ = c.Close()
				return
			}
			n.conns[c] = struct{}{}
			n.mu.Unlock()
			n.wg.Add(1)
			go n.handle(c)
		}
	}()
}

// Addr returns the listener address (for tests and logs).
func (n *Node) Addr() net.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln == nil {
		return nil
	}
	return n.ln.Addr()
}

// Close stops the accept loop, closes every connection, and waits for the
// handlers to exit. Idempotent.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return nil
	}
	n.closed = true
	ln := n.ln
	for c := range n.conns {
		_ = c.Close()
	}
	n.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	n.wg.Wait()
	return err
}

// handle serves one connection: a sequence of request/response frames.
func (n *Node) handle(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, c)
		n.mu.Unlock()
		_ = c.Close()
	}()
	for {
		var req request
		if err := readFrame(c, &req); err != nil {
			return // peer gone or frame garbage; drop the connection
		}
		if req.TimeoutMillis > 0 {
			_ = c.SetDeadline(time.Now().Add(time.Duration(req.TimeoutMillis) * time.Millisecond))
		}
		resp := n.dispatch(&req)
		if resp.Err != "" {
			n.errs.Add(1)
		}
		err := writeFrame(c, resp)
		// Disarm the per-request deadline before blocking for the next
		// frame: the connection may now sit idle in the coordinator's pool
		// for arbitrarily long, and a deadline left ticking would close it
		// the moment the previous request's budget lapsed — making every
		// pooled connection look like a dead replica.
		_ = c.SetDeadline(time.Time{})
		if err != nil {
			return
		}
	}
}

func (n *Node) dispatch(req *request) *response {
	switch req.Op {
	case opHello:
		terms := n.idx.RangeTerms(n.lo, n.hi)
		wire := make([]int32, len(terms))
		for i, t := range terms {
			wire[i] = int32(t)
		}
		return &response{
			CellLo:   n.lo,
			CellHi:   n.hi,
			NumCells: n.idx.NumCells(),
			Objects:  n.objects,
			Terms:    wire,
		}
	case opPartial:
		return n.partial(req)
	case opStats:
		return &response{Stats: &NodeStats{
			CellLo:     n.lo,
			CellHi:     n.hi,
			Objects:    n.objects,
			Served:     n.served.Load(),
			Errors:     n.errs.Load(),
			Tombstones: n.idx.TombstoneCount(),
		}}
	case opHealth:
		return &response{}
	default:
		return &response{Err: fmt.Sprintf("unknown op %q", req.Op), ErrKind: kindBad}
	}
}

// partial answers one partial search: the query evaluated over the
// intersection of its rectangle with the node's owned cells, scores
// final. The scratch is pooled per in-flight request, so concurrent
// connections do not contend and the steady state allocates only the
// response encoding.
func (n *Node) partial(req *request) *response {
	if len(req.Terms) != len(req.IDF) || req.Rect == nil {
		return &response{Err: "malformed partial request", ErrKind: kindBad}
	}
	q := textindex.Query{
		Terms: make([]textindex.TermID, len(req.Terms)),
		IDF:   req.IDF,
		Norm:  req.Norm,
	}
	for i, t := range req.Terms {
		q.Terms[i] = textindex.TermID(t)
	}
	r := geo.Rect{MinX: req.Rect.MinX, MinY: req.Rect.MinY, MaxX: req.Rect.MaxX, MaxY: req.Rect.MaxY}
	s, _ := n.scratch.Get().(*grid.SearchScratch)
	if s == nil {
		s = &grid.SearchScratch{}
	}
	// Tracing lives on the stack for the request and is detached before
	// the scratch returns to the pool, so explain requests cost nothing to
	// the untraced ones sharing the pool.
	var tr grid.SearchTrace
	if req.Explain {
		s.Trace = &tr
	}
	scores, err := n.idx.SearchRangeInto(q, r, n.lo, n.hi, s)
	s.Trace = nil
	if err != nil {
		n.putScratch(s)
		if errors.Is(err, grid.ErrShardIO) {
			return &response{Err: err.Error(), ErrKind: kindShardIO}
		}
		return &response{Err: err.Error(), ErrKind: kindBad}
	}
	out := make([]wireScore, len(scores))
	for i, os := range scores {
		out[i] = wireScore{Obj: int32(os.Obj), Score: os.Score}
	}
	n.putScratch(s) // scores alias the scratch; copied out above
	n.served.Add(1)
	resp := &response{Scores: out}
	if req.Explain {
		resp.Trace = toWire(&tr)
	}
	return resp
}

// putScratch returns a search scratch to the pool. sync.Pool.Put shares
// its name with the error-returning grid.Store.Put, which the name-based
// errdrop gate would flag at a bare call site; binding the method value
// first keeps the call site honest without an impossible `_ =` (Put here
// returns nothing).
func (n *Node) putScratch(s *grid.SearchScratch) {
	put := n.scratch.Put
	put(s)
}
