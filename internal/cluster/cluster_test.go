package cluster

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/textindex"
)

// buildCorpus returns an index over n random objects in [0,1000)², with
// tokens drawn from a small vocabulary. split controls token placement:
// when true, objects in the left half (x < 500) use only left-vocab
// tokens and the right half only right-vocab ones, so term-directory
// skip routing has something to skip.
func buildCorpus(t testing.TB, n int, seed int64, split bool) (*textindex.Vocabulary, *grid.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v := textindex.NewVocabulary()
	left := []string{"cafe", "restaurant", "pizza"}
	right := []string{"bar", "museum", "park"}
	all := append(append([]string{}, left...), right...)
	objs := make([]grid.Object, 0, n)
	for i := 0; i < n; i++ {
		p := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		pool := all
		if split {
			if p.X < 500 {
				pool = left
			} else {
				pool = right
			}
		}
		toks := make([]string, 1+rng.Intn(3))
		for j := range toks {
			toks[j] = pool[rng.Intn(len(pool))]
		}
		objs = append(objs, grid.Object{Point: p, Doc: v.IndexDoc(toks)})
	}
	idx, err := grid.NewIndex(objs, geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	return v, idx
}

// startNode serves idx's [lo, hi) range on a loopback listener.
func startNode(t testing.TB, idx *grid.Index, lo, hi uint32, objects int) *Node {
	t.Helper()
	n, err := NewNode(NodeConfig{Index: idx, CellLo: lo, CellHi: hi, Objects: objects})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.Serve(ln)
	return n
}

// TestClusterGoldenSearch is the distribution golden test at the search
// level: across random queries and rectangles, the coordinator's merged
// answer over a 2-node split must be bit-identical to SearchInto on the
// undivided index.
func TestClusterGoldenSearch(t *testing.T) {
	const objects = 500
	v, idx := buildCorpus(t, objects, 7, false)
	numCells := uint32(idx.NumCells())
	mid := numCells / 2

	n1 := startNode(t, idx, 0, mid, objects)
	defer n1.Close()
	n2 := startNode(t, idx, mid, numCells, objects)
	defer n2.Close()

	c, err := NewCoordinator(CoordinatorConfig{
		Addrs:   []string{n1.Addr().String(), n2.Addr().String()},
		Index:   idx,
		Objects: objects,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	vocab := []string{"cafe", "restaurant", "pizza", "bar", "museum", "park"}
	rng := rand.New(rand.NewSource(11))
	var scratch grid.SearchScratch
	for trial := 0; trial < 40; trial++ {
		q := v.PrepareQuery([]string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]})
		x0, y0 := rng.Float64()*800, rng.Float64()*800
		r := geo.Rect{MinX: x0, MinY: y0, MaxX: x0 + 50 + rng.Float64()*300, MaxY: y0 + 50 + rng.Float64()*300}
		want, err := idx.SearchInto(q, r, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Search(context.Background(), q, r)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: cluster %d results, local %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d result %d: cluster %+v != local %+v", trial, i, got[i], want[i])
			}
		}
	}
	st := c.Stats()
	if st.Searches != 40 {
		t.Errorf("Searches = %d, want 40", st.Searches)
	}
	if len(st.Nodes) != 2 {
		t.Errorf("stats cover %d nodes, want 2", len(st.Nodes))
	}
	for _, ns := range st.Nodes {
		if ns.Sent == 0 {
			t.Errorf("node %s never reached (stats %+v)", ns.Addr, ns)
		}
	}
}

// TestClusterSkipRouting: groups whose cells cannot intersect the
// rectangle, or whose term directory shares nothing with the query, are
// skipped without an RPC.
func TestClusterSkipRouting(t *testing.T) {
	const objects = 400
	v, idx := buildCorpus(t, objects, 13, true)
	numCells := uint32(idx.NumCells())
	mid := numCells / 2

	n1 := startNode(t, idx, 0, mid, objects)
	defer n1.Close()
	n2 := startNode(t, idx, mid, numCells, objects)
	defer n2.Close()
	c, err := NewCoordinator(CoordinatorConfig{
		Addrs:   []string{n1.Addr().String(), n2.Addr().String()},
		Index:   idx,
		Objects: objects,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Rect skip: a thin rectangle in the far top-left rows misses the
	// second group's cells entirely (row-major ids: low rows = low ids).
	q := v.PrepareQuery([]string{"cafe"})
	if _, err := c.Search(context.Background(), q, geo.Rect{MinX: 0, MinY: 0, MaxX: 900, MaxY: 20}); err != nil {
		t.Fatal(err)
	}
	if c.Stats().SkippedRect == 0 {
		t.Error("thin low-row rectangle skipped no group by rect")
	}

	// Term skip: the corpus was built split, so a right-vocab-only query
	// shares no term with the left half's directory... but cells are
	// row-major, so the left half of space is spread across both id
	// ranges. Verify instead against per-group terms directly: a query of
	// nonsense terms skips every group.
	nonsense := textindex.Query{Terms: []textindex.TermID{9999}, IDF: []float64{1}, Norm: 1}
	before := c.Stats().SkippedTerm
	if res, err := c.Search(context.Background(), nonsense, geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}); err != nil || len(res) != 0 {
		t.Fatalf("nonsense query: %d results, err %v", len(res), err)
	}
	if c.Stats().SkippedTerm != before+2 {
		t.Errorf("nonsense query skipped %d groups by term, want 2", c.Stats().SkippedTerm-before)
	}
}

// TestClusterReplicaFailover: with two replicas of one range, killing
// one mid-workload degrades to retries, never wrong or missing answers;
// killing both fails typed with ErrNoReplica.
func TestClusterReplicaFailover(t *testing.T) {
	const objects = 300
	v, idx := buildCorpus(t, objects, 17, false)
	numCells := uint32(idx.NumCells())

	r1 := startNode(t, idx, 0, numCells, objects)
	r2 := startNode(t, idx, 0, numCells, objects)
	defer r1.Close()
	defer r2.Close()

	c, err := NewCoordinator(CoordinatorConfig{
		Addrs:   []string{r1.Addr().String(), r2.Addr().String()},
		Index:   idx,
		Objects: objects,
		// Tight timeouts keep the dead-replica dial cheap in this test.
		DialTimeout: 2 * time.Second,
		RPCTimeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := v.PrepareQuery([]string{"cafe", "museum"})
	rect := geo.Rect{MinX: 100, MinY: 100, MaxX: 600, MaxY: 600}
	var scratch grid.SearchScratch
	want, err := idx.SearchInto(q, rect, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	check := func(tag string) {
		got, err := c.Search(context.Background(), q, rect)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", tag, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: result %d = %+v, want %+v", tag, i, got[i], want[i])
			}
		}
	}

	// Warm phase: both replicas up, concurrent clients.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				check("warm")
			}
		}()
	}
	wg.Wait()

	// Kill replica 1 mid-workload; every query must still answer exactly.
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		check("one replica down")
	}

	// Kill the survivor: typed fail-fast, no silent partial answers.
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(context.Background(), q, rect); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("both replicas down: err = %v, want ErrNoReplica", err)
	}
	if st := c.Stats(); st.NoReplica == 0 {
		t.Error("NoReplica counter never incremented")
	}
}

// TestClusterQuota: a client that exhausts its token bucket is refused
// typed; an unknown client starts with a full bucket.
func TestClusterQuota(t *testing.T) {
	const objects = 100
	_, idx := buildCorpus(t, objects, 19, false)
	numCells := uint32(idx.NumCells())
	n := startNode(t, idx, 0, numCells, objects)
	defer n.Close()
	c, err := NewCoordinator(CoordinatorConfig{
		Addrs:   []string{n.Addr().String()},
		Index:   idx,
		Objects: objects,
		Quota:   &QuotaOptions{RatePerSec: 0.001, Burst: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 2; i++ {
		if err := c.Admit("alice"); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if err := c.Admit("alice"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third request: err = %v, want ErrQuotaExceeded", err)
	}
	if err := c.Admit("bob"); err != nil {
		t.Fatalf("fresh client refused: %v", err)
	}
	if st := c.Stats(); st.QuotaDenied != 1 {
		t.Errorf("QuotaDenied = %d, want 1", st.QuotaDenied)
	}
}

// TestClusterTopologyValidation: startup refuses gaps in cell coverage
// and nodes built from a different corpus.
func TestClusterTopologyValidation(t *testing.T) {
	const objects = 100
	_, idx := buildCorpus(t, objects, 23, false)
	numCells := uint32(idx.NumCells())
	mid := numCells / 2

	// Gap: only the first half is served.
	n1 := startNode(t, idx, 0, mid, objects)
	defer n1.Close()
	if _, err := NewCoordinator(CoordinatorConfig{
		Addrs: []string{n1.Addr().String()}, Index: idx, Objects: objects,
	}); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("half-covered topology: err = %v, want ErrBadTopology", err)
	}

	// Corpus mismatch: the node reports a different object count.
	n2 := startNode(t, idx, mid, numCells, objects+5)
	defer n2.Close()
	if _, err := NewCoordinator(CoordinatorConfig{
		Addrs: []string{n1.Addr().String(), n2.Addr().String()}, Index: idx, Objects: objects,
	}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("corpus mismatch: err = %v, want ErrMismatch", err)
	}
}

// TestClusterDeadline: an already-expired context fails the search with
// the context's error, not a hang.
func TestClusterDeadline(t *testing.T) {
	const objects = 100
	v, idx := buildCorpus(t, objects, 29, false)
	numCells := uint32(idx.NumCells())
	n := startNode(t, idx, 0, numCells, objects)
	defer n.Close()
	c, err := NewCoordinator(CoordinatorConfig{
		Addrs: []string{n.Addr().String()}, Index: idx, Objects: objects,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	q := v.PrepareQuery([]string{"cafe"})
	if _, err := c.Search(ctx, q, geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}); err == nil {
		t.Fatal("expired context searched successfully")
	}
}
