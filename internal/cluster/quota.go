package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// QuotaOptions configures per-client token-bucket admission at the
// coordinator: each client id gets a bucket holding up to Burst tokens,
// refilled at RatePerSec; a request costs one token. A client that
// exhausts its bucket is answered ErrQuotaExceeded until it refills —
// one hot client cannot starve the rest of the fleet.
type QuotaOptions struct {
	// RatePerSec is the sustained request rate allowed per client.
	RatePerSec float64
	// Burst is the bucket capacity; <= 0 means max(1, RatePerSec).
	Burst float64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// quotaSweepMin is the table size below which no eviction sweep runs:
// small tables are left alone, and after a sweep the next one is not
// due until the table has doubled, so the amortized sweep cost per take
// is O(1).
const quotaSweepMin = 1024

type quotaTable struct {
	opts    QuotaOptions
	mu      sync.Mutex
	m       map[string]*bucket
	sweepAt int // sweep when len(m) reaches this
	denied  atomic.Int64
}

func newQuotaTable(opts QuotaOptions) *quotaTable {
	if opts.Burst <= 0 {
		opts.Burst = opts.RatePerSec
		if opts.Burst < 1 {
			opts.Burst = 1
		}
	}
	return &quotaTable{opts: opts, m: make(map[string]*bucket), sweepAt: quotaSweepMin}
}

// take spends one token from client's bucket, reporting whether one was
// available.
func (q *quotaTable) take(client string) bool {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.m) >= q.sweepAt {
		q.sweepLocked(now)
	}
	b := q.m[client]
	if b == nil {
		b = &bucket{tokens: q.opts.Burst, last: now}
		q.m[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * q.opts.RatePerSec
	if b.tokens > q.opts.Burst {
		b.tokens = q.opts.Burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sweepLocked evicts every bucket idle long enough to have refilled
// completely: such a client is indistinguishable from one the table has
// never seen (take would hand either a full bucket), so eviction cannot
// change any admission decision — it only stops the table growing one
// bucket per distinct client id forever. With RatePerSec <= 0 buckets
// never refill and none can be safely evicted (a spent bucket is a
// permanent ban, which eviction would lift), so the sweep is skipped.
func (q *quotaTable) sweepLocked(now time.Time) {
	if q.opts.RatePerSec > 0 {
		refill := q.opts.Burst / q.opts.RatePerSec // seconds from empty to full
		for id, b := range q.m {
			if now.Sub(b.last).Seconds() >= refill {
				delete(q.m, id)
			}
		}
	}
	q.sweepAt = 2 * len(q.m)
	if q.sweepAt < quotaSweepMin {
		q.sweepAt = quotaSweepMin
	}
}
