package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// QuotaOptions configures per-client token-bucket admission at the
// coordinator: each client id gets a bucket holding up to Burst tokens,
// refilled at RatePerSec; a request costs one token. A client that
// exhausts its bucket is answered ErrQuotaExceeded until it refills —
// one hot client cannot starve the rest of the fleet.
type QuotaOptions struct {
	// RatePerSec is the sustained request rate allowed per client.
	RatePerSec float64
	// Burst is the bucket capacity; <= 0 means max(1, RatePerSec).
	Burst float64
}

type bucket struct {
	tokens float64
	last   time.Time
}

type quotaTable struct {
	opts   QuotaOptions
	mu     sync.Mutex
	m      map[string]*bucket
	denied atomic.Int64
}

func newQuotaTable(opts QuotaOptions) *quotaTable {
	if opts.Burst <= 0 {
		opts.Burst = opts.RatePerSec
		if opts.Burst < 1 {
			opts.Burst = 1
		}
	}
	return &quotaTable{opts: opts, m: make(map[string]*bucket)}
}

// take spends one token from client's bucket, reporting whether one was
// available.
func (q *quotaTable) take(client string) bool {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.m[client]
	if b == nil {
		b = &bucket{tokens: q.opts.Burst, last: now}
		q.m[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * q.opts.RatePerSec
	if b.tokens > q.opts.Burst {
		b.tokens = q.opts.Burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
