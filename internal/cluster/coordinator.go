package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/textindex"
)

// Coordinator fronts a set of nodes that together own the whole cell
// space. Per query it decides which replica groups are needed (rectangle
// ∩ owned cells non-empty AND the group's term directory shares a term
// with the query — both checks run on metadata the nodes shipped at
// Hello, so skipped nodes cost nothing), scatters partial searches with
// the request's deadline, gathers, and merges.
//
// Replicas: nodes reporting the same cell range form a replica group and
// are interchangeable. Routing within a group is power-of-two-choices on
// in-flight counts; a replica that fails a request with a retryable error
// (connection failure, or a typed grid.ErrShardIO from its store) is
// retried on the group's other replicas, and only when every replica has
// failed does the query fail — typed ErrNoReplica, never a silently
// partial answer.
type Coordinator struct {
	cfg    CoordinatorConfig
	groups []*replicaGroup // sorted by cellLo; tiles [0, numCells)

	searches    atomic.Int64
	skippedRect atomic.Int64
	skippedTerm atomic.Int64
	retries     atomic.Int64
	noReplica   atomic.Int64

	quotas *quotaTable // nil when quotas are disabled

	closed atomic.Bool
}

// CoordinatorConfig configures NewCoordinator.
type CoordinatorConfig struct {
	// Addrs lists the node addresses (host:port). Nodes reporting the same
	// cell range become replicas of each other.
	Addrs []string
	// Index is the coordinator's local index, used only for routing
	// metadata (cell count, rectangle→cell-range intersection); no search
	// runs on it.
	Index *grid.Index
	// Objects is the expected corpus size; nodes that disagree are refused
	// (ErrMismatch) — a coordinator and node built from different datasets
	// would silently mis-answer otherwise.
	Objects int
	// DialTimeout bounds each connection attempt; <= 0 means 5s.
	DialTimeout time.Duration
	// RPCTimeout bounds a node RPC when the request context carries no
	// deadline; <= 0 means 10s.
	RPCTimeout time.Duration
	// Quota, when non-nil, enables per-client token-bucket admission.
	Quota *QuotaOptions
	// LatencyWindow is the per-node latency ring size; <= 0 means 1024.
	LatencyWindow int
}

// replicaGroup is one owned cell range and the replicas serving it.
type replicaGroup struct {
	lo, hi   uint32
	terms    map[textindex.TermID]struct{}
	replicas []*nodeClient
}

// nodeClient is the coordinator's handle on one node process: its
// address, a small pool of idle connections, and routing/latency state.
type nodeClient struct {
	addr string

	mu     sync.Mutex
	idle   []net.Conn
	closed bool // set by closeIdle: stop pooling, fail new requests

	inflight atomic.Int64
	sent     atomic.Int64
	errors   atomic.Int64

	latMu   sync.Mutex
	lat     []time.Duration
	latNext int
	latCap  int
}

func (nc *nodeClient) record(d time.Duration) {
	nc.latMu.Lock()
	if len(nc.lat) < nc.latCap {
		nc.lat = append(nc.lat, d)
	} else if len(nc.lat) > 0 {
		nc.lat[nc.latNext] = d
		nc.latNext = (nc.latNext + 1) % len(nc.lat)
	}
	nc.latMu.Unlock()
}

// get returns an idle pooled connection or dials a fresh one; pooled
// reports which. After closeIdle it fails with ErrCoordinatorClosed.
func (nc *nodeClient) get(timeout time.Duration) (c net.Conn, pooled bool, err error) {
	nc.mu.Lock()
	if nc.closed {
		nc.mu.Unlock()
		return nil, false, ErrCoordinatorClosed
	}
	if l := len(nc.idle); l > 0 {
		c = nc.idle[l-1]
		nc.idle = nc.idle[:l-1]
		nc.mu.Unlock()
		return c, true, nil
	}
	nc.mu.Unlock()
	c, err = net.DialTimeout("tcp", nc.addr, timeout)
	return c, false, err
}

func (nc *nodeClient) put(c net.Conn) {
	nc.mu.Lock()
	if !nc.closed && len(nc.idle) < 8 {
		nc.idle = append(nc.idle, c)
		nc.mu.Unlock()
		return
	}
	nc.mu.Unlock()
	_ = c.Close()
}

// closeIdle closes the pooled connections and marks the client closed:
// an in-flight Search racing Close can no longer dial fresh connections
// or park finished ones back in the pool, so Close leaks nothing.
func (nc *nodeClient) closeIdle() {
	nc.mu.Lock()
	nc.closed = true
	for _, c := range nc.idle {
		_ = c.Close()
	}
	nc.idle = nil
	nc.mu.Unlock()
}

// exchange runs one framed request/response on c, bounded by deadline.
// On success the connection returns to the pool; on transport failure it
// is closed and the error returned.
func (nc *nodeClient) exchange(c net.Conn, req *request, deadline time.Time) (*response, error) {
	nc.sent.Add(1)
	nc.inflight.Add(1)
	start := time.Now()
	defer func() {
		nc.inflight.Add(-1)
		nc.record(time.Since(start))
	}()
	_ = c.SetDeadline(deadline)
	req.TimeoutMillis = int64(time.Until(deadline) / time.Millisecond)
	if req.TimeoutMillis <= 0 {
		req.TimeoutMillis = 1
	}
	var resp response
	err := writeFrame(c, req)
	if err == nil {
		err = readFrame(c, &resp)
	}
	if err != nil {
		_ = c.Close()
		return nil, err
	}
	nc.put(c)
	return &resp, nil
}

// rpc performs one request/response exchange, bounding it by deadline.
// A transport failure on a pooled connection proves nothing about the
// node — the connection may simply have died while idle (node restart,
// half-closed socket) — so those are retried here on the next connection
// until a freshly dialed one has spoken; only a failure on a fresh dial
// (or a node-reported error) escapes to the caller. Transport failures
// and node-side kindShardIO responses are retryable on a replica; other
// node-reported errors are not.
func (nc *nodeClient) rpc(req *request, deadline time.Time, dialTimeout time.Duration) (*response, error, bool) {
	for {
		c, pooled, err := nc.get(dialTimeout)
		if err != nil {
			nc.errors.Add(1)
			return nil, err, true
		}
		resp, err := nc.exchange(c, req, deadline)
		if err != nil {
			nc.errors.Add(1)
			if pooled {
				// The pool is finite and get drained one entry, so this
				// loop reaches a fresh dial after at most pool-size spins.
				continue
			}
			return nil, fmt.Errorf("cluster: rpc to %s: %w", nc.addr, err), true
		}
		if resp.Err != "" {
			nc.errors.Add(1)
			if resp.ErrKind == kindShardIO {
				return nil, fmt.Errorf("cluster: node %s: %s: %w", nc.addr, resp.Err, grid.ErrShardIO), true
			}
			return nil, fmt.Errorf("cluster: node %s: %s", nc.addr, resp.Err), false
		}
		return resp, nil, false
	}
}

// NewCoordinator dials every node, validates their dataset identity
// against the local index, groups replicas by cell range, and verifies
// the ranges tile the grid. It fails loud on any mismatch: a topology
// that cannot answer every query exactly is refused at startup, not
// discovered per query.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Index == nil {
		return nil, fmt.Errorf("cluster: NewCoordinator: nil index")
	}
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("cluster: NewCoordinator: no node addresses")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 10 * time.Second
	}
	if cfg.LatencyWindow <= 0 {
		cfg.LatencyWindow = 1024
	}
	numCells := cfg.Index.NumCells()
	byRange := make(map[[2]uint32]*replicaGroup)
	var groups []*replicaGroup
	for _, addr := range cfg.Addrs {
		nc := &nodeClient{addr: addr, latCap: cfg.LatencyWindow}
		resp, err, _ := nc.rpc(&request{Op: opHello}, time.Now().Add(cfg.RPCTimeout), cfg.DialTimeout)
		if err != nil {
			closeGroups(groups)
			return nil, fmt.Errorf("cluster: hello to %s: %w", addr, err)
		}
		if resp.NumCells != numCells || resp.Objects != cfg.Objects {
			closeGroups(groups)
			return nil, fmt.Errorf("%w: node %s has %d cells / %d objects, coordinator has %d / %d",
				ErrMismatch, addr, resp.NumCells, resp.Objects, numCells, cfg.Objects)
		}
		key := [2]uint32{resp.CellLo, resp.CellHi}
		g := byRange[key]
		if g == nil {
			g = &replicaGroup{lo: resp.CellLo, hi: resp.CellHi, terms: make(map[textindex.TermID]struct{})}
			byRange[key] = g
			groups = append(groups, g)
		}
		for _, t := range resp.Terms {
			g.terms[textindex.TermID(t)] = struct{}{}
		}
		g.replicas = append(g.replicas, nc)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].lo < groups[j].lo })
	want := uint32(0)
	for _, g := range groups {
		if g.lo != want {
			closeGroups(groups)
			return nil, fmt.Errorf("%w: gap or overlap at cell %d (next group starts at %d)", ErrBadTopology, want, g.lo)
		}
		want = g.hi
	}
	if int(want) < numCells {
		closeGroups(groups)
		return nil, fmt.Errorf("%w: coverage ends at cell %d of %d", ErrBadTopology, want, numCells)
	}
	c := &Coordinator{cfg: cfg, groups: groups}
	if cfg.Quota != nil {
		c.quotas = newQuotaTable(*cfg.Quota)
	}
	return c, nil
}

func closeGroups(groups []*replicaGroup) {
	for _, g := range groups {
		for _, nc := range g.replicas {
			nc.closeIdle()
		}
	}
}

// Admit charges one request to client's token bucket. With quotas
// disabled every client is admitted. Callers identify clients however
// they like (the HTTP front end uses the remote host).
func (c *Coordinator) Admit(client string) error {
	if c.quotas == nil {
		return nil
	}
	if !c.quotas.take(client) {
		c.quotas.denied.Add(1)
		return ErrQuotaExceeded
	}
	return nil
}

// Search answers q over r by scattering to the owning replica groups and
// merging their partials. The result is bit-identical to
// Index.SearchInto on a single process holding all the data: partials
// are disjoint per object (see grid.SearchRangeInto) and the merge is
// concatenate + sort by object id, no arithmetic.
func (c *Coordinator) Search(ctx context.Context, q textindex.Query, r geo.Rect) ([]grid.ObjScore, error) {
	return c.SearchTrace(ctx, q, r, nil)
}

// SearchTrace is Search with an EXPLAIN trace: when tr is non-nil, every
// contacted node runs its partial search traced and the coordinator sums
// the returned fragments into tr — plus the routing decisions of this one
// request (groups contacted, skipped by rectangle, skipped by term
// directory), which only the coordinator knows. The caller owns tr and
// resets it between queries; the scores themselves are bit-identical
// traced or not.
func (c *Coordinator) SearchTrace(ctx context.Context, q textindex.Query, r geo.Rect, tr *grid.SearchTrace) ([]grid.ObjScore, error) {
	if c.closed.Load() {
		return nil, ErrCoordinatorClosed
	}
	c.searches.Add(1)
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(c.cfg.RPCTimeout)
	}

	// Route: a group is needed iff its cells intersect the rectangle and
	// its term directory shares at least one term with the query.
	needed := make([]*replicaGroup, 0, len(c.groups))
	for _, g := range c.groups {
		if !c.cfg.Index.RangeOverlapsRect(g.lo, g.hi, r) {
			c.skippedRect.Add(1)
			if tr != nil {
				tr.GroupsSkippedRect++
			}
			continue
		}
		if !sharesTerm(g.terms, q.Terms) {
			c.skippedTerm.Add(1)
			if tr != nil {
				tr.GroupsSkippedTerm++
			}
			continue
		}
		needed = append(needed, g)
	}
	if tr != nil {
		tr.GroupsContacted += int64(len(needed))
	}
	if len(needed) == 0 {
		return nil, nil
	}

	req := request{
		Op:      opPartial,
		Terms:   make([]int32, len(q.Terms)),
		IDF:     q.IDF,
		Norm:    q.Norm,
		Rect:    &wireRect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY},
		Explain: tr != nil,
	}
	for i, t := range q.Terms {
		req.Terms[i] = int32(t)
	}

	type partial struct {
		scores []wireScore
		trace  *wireTrace
		err    error
	}
	parts := make([]partial, len(needed))
	var wg sync.WaitGroup
	for i, g := range needed {
		wg.Add(1)
		go func(i int, g *replicaGroup) {
			defer wg.Done()
			reqCopy := req // per-goroutine: rpc mutates TimeoutMillis
			parts[i].scores, parts[i].trace, parts[i].err = c.searchGroup(g, &reqCopy, deadline)
		}(i, g)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range parts {
		if parts[i].err != nil {
			return nil, parts[i].err
		}
	}

	var total int
	for i := range parts {
		total += len(parts[i].scores)
	}
	out := make([]grid.ObjScore, 0, total)
	for i := range parts {
		for _, ws := range parts[i].scores {
			out = append(out, grid.ObjScore{Obj: grid.ObjectID(ws.Obj), Score: ws.Score})
		}
		if tr != nil && parts[i].trace != nil {
			parts[i].trace.addTo(tr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj < out[j].Obj })
	return out, nil
}

// searchGroup runs the partial search on one replica group: first choice
// by power-of-two-choices on in-flight counts, then retry on each
// remaining replica for retryable failures. Exhausting the group is
// ErrNoReplica.
func (c *Coordinator) searchGroup(g *replicaGroup, req *request, deadline time.Time) ([]wireScore, *wireTrace, error) {
	order := c.replicaOrder(g)
	var lastErr error
	for attempt, nc := range order {
		if attempt > 0 {
			c.retries.Add(1)
		}
		resp, err, retryable := nc.rpc(req, deadline, c.cfg.DialTimeout)
		if err == nil {
			return resp.Scores, resp.Trace, nil
		}
		lastErr = err
		if !retryable {
			return nil, nil, err
		}
	}
	c.noReplica.Add(1)
	return nil, nil, fmt.Errorf("%w: cells [%d, %d): %w", ErrNoReplica, g.lo, g.hi, lastErr)
}

// replicaOrder returns the group's replicas in routing order: the head is
// the power-of-two-choices pick (two random replicas, fewer in-flight
// wins), the tail is everyone else as retry fallbacks.
func (c *Coordinator) replicaOrder(g *replicaGroup) []*nodeClient {
	n := len(g.replicas)
	if n == 1 {
		return g.replicas
	}
	i := rand.Intn(n)
	j := rand.Intn(n - 1)
	if j >= i {
		j++
	}
	if g.replicas[j].inflight.Load() < g.replicas[i].inflight.Load() {
		i, j = j, i
	}
	order := make([]*nodeClient, 0, n)
	order = append(order, g.replicas[i], g.replicas[j])
	for k, nc := range g.replicas {
		if k != i && k != j {
			order = append(order, nc)
		}
	}
	return order
}

func sharesTerm(set map[textindex.TermID]struct{}, terms []textindex.TermID) bool {
	for _, t := range terms {
		if _, ok := set[t]; ok {
			return true
		}
	}
	return false
}

// Close releases every pooled connection and fails later Searches fast
// with ErrCoordinatorClosed. A Search racing Close may still finish (or
// fail on a closed connection), but it can no longer dial new
// connections or park them in the pool. Idempotent.
func (c *Coordinator) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	closeGroups(c.groups)
	return nil
}
