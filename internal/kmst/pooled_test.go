package kmst

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pcst"
)

// randomQuotaGraph builds a random graph with integer node weights in the
// small-σ̂ regime APP's scaling produces.
func randomQuotaGraph(rng *rand.Rand, n int) (int, []pcst.Edge, []int64) {
	var edges []pcst.Edge
	for i := 1; i < n; i++ {
		if rng.Float64() < 0.1 {
			continue // split some components
		}
		edges = append(edges, pcst.Edge{U: int32(rng.Intn(i)), V: int32(i), Cost: 0.25 + 2*rng.Float64()})
	}
	for k := rng.Intn(n); k > 0; k-- {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, pcst.Edge{U: int32(u), V: int32(v), Cost: 0.25 + 2*rng.Float64()})
		}
	}
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = int64(rng.Intn(8))
	}
	weights[rng.Intn(n)] = 5 + int64(rng.Intn(5))
	return n, edges, weights
}

// TestPooledSolversMatchAllocating is the golden gate for the pooled quota
// solvers: on random graphs across a sweep of quotas, one reused
// GargSolver/SPTSolver must return bit-identical Results to fresh
// NewGarg/NewSPT solvers.
func TestPooledSolversMatchAllocating(t *testing.T) {
	garg := NewGargSolver()
	spt := NewSPTSolver(8)
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n, edges, weights := randomQuotaGraph(rng, 5+rng.Intn(40))
		g, err := New(n, edges, weights)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := garg.Reset(n, edges, weights); err != nil {
			t.Fatalf("seed %d: garg reset: %v", seed, err)
		}
		if err := spt.Reset(n, edges, weights); err != nil {
			t.Fatalf("seed %d: spt reset: %v", seed, err)
		}
		var total int64
		for _, w := range weights {
			total += w
		}
		baseGarg := NewGarg(g)
		baseSPT := NewSPT(g, 8)
		for _, quota := range []int64{0, 1, 2, total / 4, total / 2, total, total + 1} {
			wantR, wantOK := treeOK(t, baseGarg, quota)
			gotR, gotOK := treeOK(t, garg, quota)
			if wantOK != gotOK || (wantOK && !reflect.DeepEqual(gotR, wantR)) {
				t.Fatalf("seed %d quota %d: Garg pooled (%v,%v) != allocating (%v,%v)",
					seed, quota, gotR, gotOK, wantR, wantOK)
			}
			wantR, wantOK = treeOK(t, baseSPT, quota)
			gotR, gotOK = treeOK(t, spt, quota)
			if wantOK != gotOK || (wantOK && !reflect.DeepEqual(gotR, wantR)) {
				t.Fatalf("seed %d quota %d: SPT pooled (%v,%v) != allocating (%v,%v)",
					seed, quota, gotR, gotOK, wantR, wantOK)
			}
		}
	}
}

// TestPooledResultsSurviveLaterTrees pins the ownership contract APP's
// binary search depends on: a Result from one Tree call keeps its content
// while later Tree calls run, until the solver is Reset.
func TestPooledResultsSurviveLaterTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, edges, weights := randomQuotaGraph(rng, 30)
	garg := NewGargSolver()
	if err := garg.Reset(n, edges, weights); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, w := range weights {
		total += w
	}
	first, ok := treeOK(t, garg, total/2)
	if !ok {
		t.Skip("quota infeasible for this seed")
	}
	snap := Result{
		Nodes:  append([]int32(nil), first.Nodes...),
		Edges:  append([]int(nil), first.Edges...),
		Length: first.Length,
		Weight: first.Weight,
	}
	for q := int64(1); q <= total; q += total/8 + 1 {
		treeOK(t, garg, q)
	}
	if !reflect.DeepEqual(first, snap) {
		t.Fatalf("result mutated by later Tree calls:\n got %+v\nwant %+v", first, snap)
	}
}
