package kmst

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/container"
	"repro/internal/pcst"
)

// treeOK calls s.Tree and fails the test on a solver error (none of the
// deterministic test graphs should produce one).
func treeOK(t testing.TB, s Solver, quota int64) (Result, bool) {
	t.Helper()
	r, ok, err := s.Tree(quota)
	if err != nil {
		t.Fatalf("Tree(%d): %v", quota, err)
	}
	return r, ok
}

// validate checks r is a connected tree of g with consistent stats.
func validate(t *testing.T, g *Graph, r Result) {
	t.Helper()
	if len(r.Nodes) == 0 {
		t.Fatal("empty result")
	}
	if len(r.Edges) != len(r.Nodes)-1 {
		t.Fatalf("nodes=%d edges=%d: not a tree", len(r.Nodes), len(r.Edges))
	}
	in := map[int32]bool{}
	var weight int64
	for _, v := range r.Nodes {
		if in[v] {
			t.Fatal("duplicate node")
		}
		in[v] = true
		weight += g.Weights[v]
	}
	uf := container.NewUnionFind(g.N)
	var length float64
	for _, ei := range r.Edges {
		e := g.Edges[ei]
		if !in[e.U] || !in[e.V] {
			t.Fatal("edge endpoint outside node set")
		}
		if !uf.Union(int(e.U), int(e.V)) {
			t.Fatal("cycle in result")
		}
		length += e.Cost
	}
	if weight != r.Weight {
		t.Fatalf("Weight=%d recomputed %d", r.Weight, weight)
	}
	if math.Abs(length-r.Length) > 1e-9 {
		t.Fatalf("Length=%v recomputed %v", r.Length, length)
	}
}

// bruteQuota returns the minimum length of any connected subgraph (tree)
// with weight ≥ quota, or +Inf. Exponential; tiny graphs only.
func bruteQuota(g *Graph, quota int64) float64 {
	best := math.Inf(1)
	for mask := 1; mask < 1<<g.N; mask++ {
		var w int64
		for v := 0; v < g.N; v++ {
			if mask&(1<<v) != 0 {
				w += g.Weights[v]
			}
		}
		if w < quota {
			continue
		}
		cost, connected := mstOfSubset(g, mask)
		if connected && cost < best {
			best = cost
		}
	}
	return best
}

func mstOfSubset(g *Graph, mask int) (float64, bool) {
	count := 0
	for v := 0; v < g.N; v++ {
		if mask&(1<<v) != 0 {
			count++
		}
	}
	if count == 1 {
		return 0, true
	}
	type we struct {
		u, v int
		c    float64
	}
	var edges []we
	for _, e := range g.Edges {
		if mask&(1<<e.U) != 0 && mask&(1<<e.V) != 0 {
			edges = append(edges, we{int(e.U), int(e.V), e.Cost})
		}
	}
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j].c < edges[j-1].c; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	uf := container.NewUnionFind(g.N)
	var cost float64
	picked := 0
	for _, e := range edges {
		if uf.Union(e.u, e.v) {
			cost += e.c
			picked++
		}
	}
	return cost, picked == count-1
}

func mustNew(t *testing.T, n int, edges []pcst.Edge, weights []int64) *Graph {
	t.Helper()
	g, err := New(n, edges, weights)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2, nil, []int64{1}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := New(1, nil, []int64{-5}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := New(2, []pcst.Edge{{U: 0, V: 9, Cost: 1}}, []int64{1, 1}); err == nil {
		t.Error("bad edge accepted")
	}
}

func TestInfeasibleQuota(t *testing.T) {
	g := mustNew(t, 3, []pcst.Edge{{U: 0, V: 1, Cost: 1}}, []int64{2, 3, 4})
	// Components: {0,1} weight 5, {2} weight 4. Quota 6 unreachable.
	s := NewGarg(g)
	if _, ok := treeOK(t, s, 6); ok {
		t.Error("infeasible quota reported feasible")
	}
	if r, ok := treeOK(t, s, 5); !ok || r.Weight < 5 {
		t.Errorf("quota 5 should be met by {0,1}, got %+v ok=%v", r, ok)
	}
}

func TestZeroQuota(t *testing.T) {
	g := mustNew(t, 3, nil, []int64{2, 9, 4})
	s := NewGarg(g)
	r, ok := treeOK(t, s, 0)
	if !ok || r.Weight != 9 || len(r.Nodes) != 1 {
		t.Errorf("zero quota: %+v, ok=%v; want heaviest single node", r, ok)
	}
}

func TestGargMeetsQuotaAndNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	worstRatio := 1.0
	for trial := 0; trial < 80; trial++ {
		n := 4 + rng.Intn(6)
		var edges []pcst.Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.55 {
					edges = append(edges, pcst.Edge{U: int32(u), V: int32(v), Cost: 1 + rng.Float64()*4})
				}
			}
		}
		weights := make([]int64, n)
		var total int64
		for i := range weights {
			weights[i] = int64(rng.Intn(5))
			total += weights[i]
		}
		if total == 0 {
			continue
		}
		g := mustNew(t, n, edges, weights)
		s := NewGarg(g)
		quota := 1 + int64(rng.Intn(int(total)))
		opt := bruteQuota(g, quota)
		r, ok := treeOK(t, s, quota)
		if math.IsInf(opt, 1) {
			if ok {
				// Feasibility is per component; brute force says no
				// connected subgraph meets the quota.
				t.Fatalf("trial %d: solver found tree but brute force says infeasible", trial)
			}
			continue
		}
		if !ok {
			t.Fatalf("trial %d: feasible quota %d not met (opt %v)", trial, quota, opt)
		}
		validate(t, g, r)
		if r.Weight < quota {
			t.Fatalf("trial %d: weight %d < quota %d", trial, r.Weight, quota)
		}
		if opt > 0 {
			ratio := r.Length / opt
			if ratio > worstRatio {
				worstRatio = ratio
			}
			// Garg's bound is 3; with quota pruning the practical ratio
			// stays small. Allow 5 as the hard cap per the APP analysis.
			if ratio > 5+1e-9 {
				t.Fatalf("trial %d: length %v vs optimum %v (ratio %.2f)", trial, r.Length, opt, ratio)
			}
		} else if r.Length > 1e-9 {
			// Optimum is a single node; solver should also pay ~nothing
			// only if a single node carries the quota — pruning should
			// find it.
			t.Fatalf("trial %d: optimum is 0 but solver paid %v", trial, r.Length)
		}
	}
	t.Logf("worst observed length ratio vs optimum: %.3f", worstRatio)
}

func TestQuotaMonotonicity(t *testing.T) {
	// Increasing quotas should never *decrease* the achieved weight below
	// the quota, and the solver must stay feasible up to the total weight.
	rng := rand.New(rand.NewSource(5))
	const n = 30
	var edges []pcst.Edge
	for i := 1; i < n; i++ {
		parent := rng.Intn(i)
		edges = append(edges, pcst.Edge{U: int32(parent), V: int32(i), Cost: 0.5 + rng.Float64()})
	}
	weights := make([]int64, n)
	var total int64
	for i := range weights {
		weights[i] = int64(rng.Intn(4))
		total += weights[i]
	}
	g := mustNew(t, n, edges, weights)
	s := NewGarg(g)
	for quota := int64(1); quota <= total; quota += 3 {
		r, ok := treeOK(t, s, quota)
		if !ok {
			t.Fatalf("quota %d infeasible on connected graph with total %d", quota, total)
		}
		validate(t, g, r)
		if r.Weight < quota {
			t.Fatalf("quota %d: weight %d", quota, r.Weight)
		}
	}
}

func TestQuotaPruneStripsUselessLeaves(t *testing.T) {
	// Path 0-1-2-3 with weights 5,0,5,0: quota 10 must drop the trailing
	// zero-weight leaf 3 (and never include it).
	g := mustNew(t, 4,
		[]pcst.Edge{{U: 0, V: 1, Cost: 1}, {U: 1, V: 2, Cost: 1}, {U: 2, V: 3, Cost: 1}},
		[]int64{5, 0, 5, 0})
	s := NewGarg(g)
	r, ok := treeOK(t, s, 10)
	if !ok {
		t.Fatal("quota infeasible")
	}
	validate(t, g, r)
	for _, v := range r.Nodes {
		if v == 3 {
			t.Error("useless leaf 3 not pruned")
		}
	}
	if r.Length > 2+1e-9 {
		t.Errorf("length = %v, want 2 (path 0-1-2)", r.Length)
	}
}

func TestSPTSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 40
	var edges []pcst.Edge
	for i := 1; i < n; i++ {
		parent := rng.Intn(i)
		edges = append(edges, pcst.Edge{U: int32(parent), V: int32(i), Cost: 0.5 + rng.Float64()})
	}
	// A few extra edges to create cycles.
	for k := 0; k < 10; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, pcst.Edge{U: int32(u), V: int32(v), Cost: 0.5 + rng.Float64()})
		}
	}
	weights := make([]int64, n)
	var total int64
	for i := range weights {
		weights[i] = int64(rng.Intn(4))
		total += weights[i]
	}
	g := mustNew(t, n, edges, weights)
	s := NewSPT(g, 4)
	for quota := int64(1); quota <= total; quota += 5 {
		r, ok := treeOK(t, s, quota)
		if !ok {
			t.Fatalf("SPT: quota %d infeasible (total %d)", quota, total)
		}
		validate(t, g, r)
		if r.Weight < quota {
			t.Fatalf("SPT: quota %d got weight %d", quota, r.Weight)
		}
	}
	if _, ok := treeOK(t, s, total+1); ok {
		t.Error("SPT met an impossible quota")
	}
}

func TestSPTEmptyGraph(t *testing.T) {
	g := mustNew(t, 0, nil, nil)
	if _, ok := treeOK(t, NewSPT(g, 3), 1); ok {
		t.Error("empty graph met quota")
	}
	if _, ok := treeOK(t, NewGarg(g), 0); ok {
		t.Error("empty graph met zero quota via Garg")
	}
}

func TestGargCacheReuse(t *testing.T) {
	// Two Tree calls with different quotas must share λ cache entries
	// (deterministic midpoints over the same interval).
	g := mustNew(t, 6,
		[]pcst.Edge{{U: 0, V: 1, Cost: 1}, {U: 1, V: 2, Cost: 1}, {U: 2, V: 3, Cost: 1},
			{U: 3, V: 4, Cost: 1}, {U: 4, V: 5, Cost: 1}},
		[]int64{1, 2, 3, 1, 2, 1})
	s := NewGarg(g)
	if _, ok := treeOK(t, s, 3); !ok {
		t.Fatal("quota 3 infeasible")
	}
	size1 := len(s.cache)
	if _, ok := treeOK(t, s, 6); !ok {
		t.Fatal("quota 6 infeasible")
	}
	size2 := len(s.cache)
	if size2 >= size1*2 {
		t.Errorf("cache grew from %d to %d: no sharing between quota searches", size1, size2)
	}
}
