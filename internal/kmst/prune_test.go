package kmst

import (
	"context"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"repro/internal/cancel"
	"repro/internal/pcst"
)

// randomTree builds a random spanning tree over a fresh random graph and
// returns the graph plus the tree as a Result. Zero-cost edges and
// zero-weight nodes appear with some probability, covering the free-removal
// (+Inf score) and stop-pruning branches.
func randomTree(rng *rand.Rand, n int) (*Graph, Result) {
	edges := make([]pcst.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		cost := 0.25 + 2*rng.Float64()
		if rng.Float64() < 0.15 {
			cost = 0
		}
		edges = append(edges, pcst.Edge{U: int32(rng.Intn(i)), V: int32(i), Cost: cost})
	}
	weights := make([]int64, n)
	for i := range weights {
		if rng.Float64() < 0.25 {
			weights[i] = 0
		} else {
			weights[i] = 1 + int64(rng.Intn(7))
		}
	}
	g, err := New(n, edges, weights)
	if err != nil {
		panic(err)
	}
	var r Result
	// Visit nodes in shuffled order so r.Nodes position (the tie-break
	// the heap must replicate) is decoupled from node id.
	perm := rng.Perm(n)
	for _, v := range perm {
		r.Nodes = append(r.Nodes, int32(v))
		r.Weight += weights[v]
	}
	for i, e := range edges {
		r.Edges = append(r.Edges, i)
		r.Length += e.Cost
	}
	return g, r
}

func cloneResult(r Result) Result {
	return Result{
		Nodes:  append([]int32(nil), r.Nodes...),
		Edges:  append([]int(nil), r.Edges...),
		Length: r.Length,
		Weight: r.Weight,
	}
}

// TestQuotaPruneHeapMatchesScan is the golden gate for the heap-based
// quotaPrune: on random trees across a quota sweep it must produce
// bit-identical results — same surviving nodes and edges in the same
// order, same Length and Weight down to the last float bit — as the
// original O(|T|²) rescan it replaced.
func TestQuotaPruneHeapMatchesScan(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, tree := randomTree(rng, 3+rng.Intn(60))
		total := tree.Weight
		for _, quota := range []int64{0, 1, total / 3, total / 2, total - 1, total} {
			got := cloneResult(tree)
			want := cloneResult(tree)
			quotaPrune(g, &got, quota)
			quotaPruneScan(g, &want, quota)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d quota %d: heap prune diverges from scan\n got %+v\nwant %+v",
					seed, quota, got, want)
			}
		}
	}
}

// TestPooledQuotaPruneMatchesScan runs the same golden gate over the
// pooled, map-free quotaState implementations — one reused scratch across
// all trees — and cross-checks them against the allocating scan, so all
// four prune implementations are pinned to one behavior.
func TestPooledQuotaPruneMatchesScan(t *testing.T) {
	gs := NewGargSolver()
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		g, tree := randomTree(rng, 3+rng.Intn(60))
		if err := gs.Reset(g.N, g.Edges, g.Weights); err != nil {
			t.Fatalf("seed %d: reset: %v", seed, err)
		}
		total := tree.Weight
		for _, quota := range []int64{0, 1, total / 3, total / 2, total - 1, total} {
			got := cloneResult(tree)
			scan := cloneResult(tree)
			ref := cloneResult(tree)
			gs.quotaState.quotaPrune(&got, quota)
			gs.quotaState.quotaPruneScan(&scan, quota)
			quotaPruneScan(g, &ref, quota)
			if !reflect.DeepEqual(got, scan) {
				t.Fatalf("seed %d quota %d: pooled heap diverges from pooled scan\n got %+v\nwant %+v",
					seed, quota, got, scan)
			}
			if got.Length != ref.Length || got.Weight != ref.Weight ||
				!slices.Equal(got.Nodes, ref.Nodes) || !slices.Equal(got.Edges, ref.Edges) {
				t.Fatalf("seed %d quota %d: pooled heap diverges from allocating scan\n got %+v\nwant %+v",
					seed, quota, got, ref)
			}
		}
	}
}

// TestGargSolverLamCachePersists pins the λ-cache persistence contract: a
// Reset with a byte-identical graph keeps the cache (observable via
// LamCacheReuses) and every Tree answer stays bit-identical to a fresh
// solver's, across interleaved quotas, a different-graph reset in between,
// and callers that rewrite their edge/weight buffers after Reset.
func TestGargSolverLamCachePersists(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, edges, weights := randomQuotaGraph(rng, 40)
	n2, edges2, weights2 := randomQuotaGraph(rng, 31)
	var total int64
	for _, w := range weights {
		total += w
	}
	quotas := []int64{1, total / 4, total / 2, 2, total/3 + 1, total}

	fresh := func(quota int64) (Result, bool) {
		s := NewGargSolver()
		if err := s.Reset(n, edges, weights); err != nil {
			t.Fatal(err)
		}
		return treeOK(t, s, quota)
	}

	s := NewGargSolver()
	// The caller's buffers get rewritten between queries; the solver must
	// key its cache on content it owns, not on these slices.
	volEdges := append([]pcst.Edge(nil), edges...)
	volWeights := append([]int64(nil), weights...)
	for round, quota := range quotas {
		if round == 3 {
			// An unrelated graph in the middle must invalidate, then the
			// original graph re-snapshots cleanly.
			if err := s.Reset(n2, edges2, weights2); err != nil {
				t.Fatal(err)
			}
			treeOK(t, s, 1)
			if s.LamCacheReuses() != 2 {
				t.Fatalf("different graph counted as a cache reuse (reuses=%d)", s.LamCacheReuses())
			}
		}
		copy(volEdges, edges)
		copy(volWeights, weights)
		if err := s.Reset(n, volEdges, volWeights); err != nil {
			t.Fatal(err)
		}
		for i := range volEdges {
			volEdges[i].Cost = -1 // scribble: the solver must not read these again
		}
		for i := range volWeights {
			volWeights[i] = -99
		}
		gotR, gotOK := treeOK(t, s, quota)
		wantR, wantOK := fresh(quota)
		if gotOK != wantOK || (gotOK && (gotR.Length != wantR.Length || gotR.Weight != wantR.Weight ||
			!slices.Equal(gotR.Nodes, wantR.Nodes) || !slices.Equal(gotR.Edges, wantR.Edges))) {
			t.Fatalf("round %d quota %d: cached solver (%v,%v) != fresh (%v,%v)",
				round, quota, gotR, gotOK, wantR, wantOK)
		}
	}
	// Rounds 1 and 2 reuse the first snapshot; rounds 4 and 5 reuse the
	// re-snapshot taken after the unrelated graph evicted it.
	if got := s.LamCacheReuses(); got != 4 {
		t.Fatalf("LamCacheReuses = %d, want 4", got)
	}
}

// TestGargSolverCancelledSolveNotCached guards the persistent cache against
// poisoning: a Solve cut short by cancellation returns no trees, and that
// empty answer must not be cached as "no tree at this λ" for later,
// uncancelled queries over the same graph.
func TestGargSolverCancelledSolveNotCached(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, edges, weights := randomQuotaGraph(rng, 40)
	var total int64
	for _, w := range weights {
		total += w
	}
	quota := total / 2

	want := NewGargSolver()
	if err := want.Reset(n, edges, weights); err != nil {
		t.Fatal(err)
	}
	wantR, wantOK := treeOK(t, want, quota)
	if !wantOK {
		t.Skip("quota infeasible for this seed")
	}

	s := NewGargSolver()
	if err := s.Reset(n, edges, weights); err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	stop() // cancelled before the solve starts: every Solve returns no trees
	var chk cancel.Check
	chk.Reset(ctx)
	s.SetCancel(&chk)
	if _, ok, err := s.Tree(quota); err != nil || ok {
		t.Fatalf("cancelled Tree = (ok=%v, err=%v), want (false, nil)", ok, err)
	}
	// Same graph again: the λ-cache survives the Reset. It must not carry
	// entries from the cancelled run.
	if err := s.Reset(n, edges, weights); err != nil {
		t.Fatal(err)
	}
	if s.LamCacheReuses() != 1 {
		t.Fatalf("expected the reset to keep the cache (reuses=%d)", s.LamCacheReuses())
	}
	gotR, gotOK := treeOK(t, s, quota)
	if !gotOK || gotR.Length != wantR.Length || gotR.Weight != wantR.Weight ||
		!slices.Equal(gotR.Nodes, wantR.Nodes) || !slices.Equal(gotR.Edges, wantR.Edges) {
		t.Fatalf("post-cancel solver (%v,%v) != fresh (%v,%v)", gotR, gotOK, wantR, wantOK)
	}
}
