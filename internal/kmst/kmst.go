// Package kmst implements node-weighted quota-tree solvers: given a graph
// with non-negative integer node weights, find a low-length tree whose
// total node weight is at least a quota X. This is the "node-weighted
// k-MST" of §4.2 of the paper ("Given a node weight constraint X, the
// problem aims to find the tree with the smallest length such that the
// nodes it spans have total weight at least X"), the subproblem APP's
// binary search calls.
//
// The Garg solver follows Garg's FOCS'96 construction in its
// Lagrangian-relaxation reading: the quota constraint is priced into node
// prizes λ·w(v) and the Goemans–Williamson prize-collecting Steiner tree
// primal–dual (package pcst) is run, with a binary search driving λ to the
// smallest value whose GW tree meets the quota; a final quota-pruning pass
// strips unneeded leaves. A Prim-MST fallback guarantees a tree is found
// whenever any connected component carries the quota. The SPT solver is a
// cheap shortest-path-tree heuristic used for ablation benchmarks.
//
// # Pooling ownership
//
// NewGarg/NewSPT build allocating solvers tied to one Graph. Their pooled
// counterparts GargSolver/SPTSolver are reusable across queries via
// Reset(n, edges, weights) and return bit-identical Results
// (golden-tested) with zero steady-state allocations. A pooled solver
// serves one goroutine; Results it returns alias its internal arenas and
// stay valid across later Tree calls — APP's binary search holds earlier
// trees while probing new quotas — until the next Reset reclaims them.
package kmst

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/container"
	"repro/internal/pcst"
)

// Graph is a quota-solver input: edges with lengths and integer node
// weights (the scaled weights σ̂ of §4.1).
type Graph struct {
	N       int
	Edges   []pcst.Edge
	Weights []int64

	adj [][]halfedge // built lazily by New
}

type halfedge struct {
	to   int32
	edge int32
}

// New validates and prepares a quota-solver graph.
func New(n int, edges []pcst.Edge, weights []int64) (*Graph, error) {
	if len(weights) != n {
		return nil, fmt.Errorf("kmst: %d weights for %d nodes", len(weights), n)
	}
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("kmst: node %d has negative weight %d", i, w)
		}
	}
	g := &Graph{N: n, Edges: edges, Weights: weights}
	// Reuse pcst validation for the edge list.
	probe := pcst.Graph{N: n, Edges: edges, Prizes: make([]float64, n)}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	g.adj = make([][]halfedge, n)
	for i, e := range edges {
		g.adj[e.U] = append(g.adj[e.U], halfedge{to: e.V, edge: int32(i)})
		g.adj[e.V] = append(g.adj[e.V], halfedge{to: e.U, edge: int32(i)})
	}
	return g, nil
}

// Result is a tree meeting (or attempting) a quota.
type Result struct {
	Nodes  []int32
	Edges  []int // indices into Graph.Edges
	Length float64
	Weight int64
}

// Solver finds a low-length tree with node weight at least the quota.
type Solver interface {
	// Tree returns a quota tree; ok is false when no connected component
	// of the graph carries the quota (or the solve was cancelled). A
	// non-nil error means the underlying optimization failed — the query
	// is lost, not the process; callers surface it instead of panicking.
	Tree(quota int64) (Result, bool, error)
}

// Garg is the GW-based quota solver. It caches GW runs per λ so that the
// repeated invocations from APP's binary search stay cheap.
type Garg struct {
	g     *Graph
	cache map[float64][]pcst.Tree

	compWeight []int64 // per-node: total weight of the node's component
	lambdaMax  float64
}

// NewGarg returns a Garg solver over g.
func NewGarg(g *Graph) *Garg {
	s := &Garg{g: g, cache: make(map[float64][]pcst.Tree)}
	// Component weights, for feasibility checks and the MST fallback.
	uf := container.NewUnionFind(g.N)
	for _, e := range g.Edges {
		uf.Union(int(e.U), int(e.V))
	}
	sums := make(map[int]int64)
	for v := 0; v < g.N; v++ {
		sums[uf.Find(v)] += g.Weights[v]
	}
	s.compWeight = make([]int64, g.N)
	for v := 0; v < g.N; v++ {
		s.compWeight[v] = sums[uf.Find(v)]
	}
	var totalCost float64
	for _, e := range g.Edges {
		totalCost += e.Cost
	}
	// At λ ≥ totalCost+1 every weight-1 cluster has enough potential to
	// absorb its whole component, so the search interval is closed.
	s.lambdaMax = totalCost + 1
	return s
}

// Tree implements Solver.
func (s *Garg) Tree(quota int64) (Result, bool, error) {
	if quota <= 0 {
		// The empty quota is met by the single heaviest node.
		best := 0
		for v := 1; v < s.g.N; v++ {
			if s.g.Weights[v] > s.g.Weights[best] {
				best = v
			}
		}
		if s.g.N == 0 {
			return Result{}, false, nil
		}
		return Result{Nodes: []int32{int32(best)}, Weight: s.g.Weights[best]}, true, nil
	}
	feasible := false
	for v := 0; v < s.g.N; v++ {
		if s.compWeight[v] >= quota {
			feasible = true
			break
		}
	}
	if !feasible {
		return Result{}, false, nil
	}

	// Binary search λ over [0, λmax] for the smallest multiplier whose GW
	// forest contains a quota tree. The midpoint sequence is deterministic,
	// so the per-λ cache is shared across quotas within one query.
	lo, hi := 0.0, s.lambdaMax
	var best *Result
	for iter := 0; iter < 48 && hi-lo > 1e-9*s.lambdaMax; iter++ {
		mid := (lo + hi) / 2
		r, err := s.quotaTreeAt(mid, quota)
		if err != nil {
			return Result{}, false, err
		}
		if r != nil {
			if best == nil || r.Length < best.Length {
				best = r
			}
			hi = mid
		} else {
			lo = mid
		}
	}
	if best == nil {
		r, err := s.quotaTreeAt(s.lambdaMax, quota)
		if err != nil {
			return Result{}, false, err
		}
		best = r
	}
	if best == nil {
		// GW pruning can in principle keep withholding the quota; fall
		// back to the component MST, which always carries it.
		r := s.mstFallback(quota)
		best = &r
	}
	quotaPrune(s.g, best, quota)
	return *best, true, nil
}

// quotaTreeAt runs (cached) GW with prizes λ·w and returns the minimum-
// length returned tree meeting the quota, or nil.
func (s *Garg) quotaTreeAt(lambda float64, quota int64) (*Result, error) {
	trees, ok := s.cache[lambda]
	if !ok {
		prizes := make([]float64, s.g.N)
		for v := 0; v < s.g.N; v++ {
			prizes[v] = lambda * float64(s.g.Weights[v])
		}
		var err error
		trees, err = pcst.Solve(&pcst.Graph{N: s.g.N, Edges: s.g.Edges, Prizes: prizes})
		if err != nil {
			// Inputs were validated in New, so this is a solver bug — but a
			// bug in one query's optimization must fail that query, not the
			// process hosting it.
			return nil, fmt.Errorf("kmst: pcst solve (lambda %g): %w", lambda, err)
		}
		s.cache[lambda] = trees
	}
	var best *Result
	for i := range trees {
		var w int64
		for _, v := range trees[i].Nodes {
			w += s.g.Weights[v]
		}
		if w < quota {
			continue
		}
		if best == nil || trees[i].Cost < best.Length {
			best = &Result{
				Nodes:  append([]int32(nil), trees[i].Nodes...),
				Edges:  append([]int(nil), trees[i].Edges...),
				Length: trees[i].Cost,
				Weight: w,
			}
		}
	}
	return best, nil
}

// mstFallback spans the lightest-length quota-carrying component with a
// Prim MST.
func (s *Garg) mstFallback(quota int64) Result {
	// Pick any node whose component carries the quota; prefer the largest
	// component weight to give quotaPrune room.
	seed := -1
	for v := 0; v < s.g.N; v++ {
		if s.compWeight[v] >= quota && (seed < 0 || s.compWeight[v] > s.compWeight[seed]) {
			seed = v
		}
	}
	// Prim from seed.
	type pqItem struct {
		cost float64
		to   int32
		edge int32
	}
	inTree := make([]bool, s.g.N)
	h := container.NewHeap[pqItem](func(a, b pqItem) bool { return a.cost < b.cost })
	res := Result{Nodes: []int32{int32(seed)}, Weight: s.g.Weights[seed]}
	inTree[seed] = true
	for _, he := range s.g.adj[seed] {
		h.Push(pqItem{cost: s.g.Edges[he.edge].Cost, to: he.to, edge: he.edge})
	}
	for {
		it, ok := h.Pop()
		if !ok {
			break
		}
		if inTree[it.to] {
			continue
		}
		inTree[it.to] = true
		res.Nodes = append(res.Nodes, it.to)
		res.Edges = append(res.Edges, int(it.edge))
		res.Length += s.g.Edges[it.edge].Cost
		res.Weight += s.g.Weights[it.to]
		for _, he := range s.g.adj[it.to] {
			if !inTree[he.to] {
				h.Push(pqItem{cost: s.g.Edges[he.edge].Cost, to: he.to, edge: he.edge})
			}
		}
	}
	sort.Slice(res.Nodes, func(i, j int) bool { return res.Nodes[i] < res.Nodes[j] })
	return res
}

// pruneCand is one quotaPrune heap candidate: a leaf at the moment its
// degree reached 1, with its (then-fixed) single alive incident edge and
// removal score. Scores never change after that moment — edge costs and
// node weights are static, and a leaf's alive edge can only disappear by
// the leaf itself (or its neighbor) dying — so candidates are pushed once
// with their final score and lazily revalidated when popped.
type pruneCand struct {
	score float64
	pos   int32 // position in r.Nodes: replicates the scan's first-max tie-break
	node  int32
	edge  int32 // index into r.Edges
}

// pruneBetter orders heap candidates exactly as the reference scan picks
// them: higher score first, earlier r.Nodes position on ties (the scan
// keeps the first maximum under a strict > comparison).
func pruneBetter(a, b pruneCand) bool {
	return a.score > b.score || (a.score == b.score && a.pos < b.pos)
}

// pruneScore is the leaf-removal score: zero-weight leaves are free
// removals (+Inf), otherwise length per unit of weight given up.
func pruneScore(length float64, weight int64) float64 {
	if weight == 0 {
		return math.Inf(1)
	}
	return length / float64(weight)
}

// quotaPrune repeatedly removes the least useful leaf while the remaining
// weight still meets the quota, shrinking the tree's length. "Least
// useful" prefers zero-weight leaves with long edges (pure gain), then the
// highest length-per-weight ratio. Leaves live in a max-heap updated as
// nodes peel — O(|T| log |T|) where the old full rescan per removal was
// O(|T|²) — and the removal sequence is identical to the scan's
// (quotaPruneScan, kept for the golden tests): the heap order matches the
// scan's strict-max-plus-first-position selection, and a candidate the
// scan would skip is skipped here for the same reason — staleness (dead
// or no longer degree 1) or a quota failure, which is permanent because
// the remaining weight only ever decreases.
func quotaPrune(g *Graph, r *Result, quota int64) {
	if len(r.Nodes) <= 1 {
		return
	}
	// Local adjacency of the tree.
	deg := make(map[int32]int, len(r.Nodes))
	inc := make(map[int32][]int, len(r.Nodes)) // node -> indices into r.Edges
	alive := make(map[int32]bool, len(r.Nodes))
	pos := make(map[int32]int32, len(r.Nodes))
	edgeAlive := make([]bool, len(r.Edges))
	for i, v := range r.Nodes {
		alive[v] = true
		pos[v] = int32(i)
	}
	for i, ei := range r.Edges {
		e := g.Edges[ei]
		deg[e.U]++
		deg[e.V]++
		inc[e.U] = append(inc[e.U], i)
		inc[e.V] = append(inc[e.V], i)
		edgeAlive[i] = true
	}
	h := container.NewHeap[pruneCand](pruneBetter)
	push := func(v int32) {
		ei := int32(-1)
		for _, i := range inc[v] {
			if edgeAlive[i] {
				ei = int32(i)
				break
			}
		}
		if ei < 0 {
			return
		}
		h.Push(pruneCand{
			score: pruneScore(g.Edges[r.Edges[ei]].Cost, g.Weights[v]),
			pos:   pos[v], node: v, edge: ei,
		})
	}
	for _, v := range r.Nodes {
		if deg[v] == 1 {
			push(v)
		}
	}
	for {
		c, ok := h.Pop()
		if !ok {
			break // no removable leaf left
		}
		v := c.node
		if !alive[v] || deg[v] != 1 || !edgeAlive[c.edge] {
			continue // stale: the candidate (or its edge) died since the push
		}
		if r.Weight-g.Weights[v] < quota {
			continue // permanent: the remaining weight only decreases
		}
		// Only prune when it shortens the tree (always true for cost>0) or
		// frees weight with zero cost; stop pruning weight-carrying leaves
		// that don't save length.
		e := g.Edges[r.Edges[c.edge]]
		if e.Cost <= 0 && g.Weights[v] > 0 {
			break
		}
		alive[v] = false
		edgeAlive[c.edge] = false
		other := e.U
		if other == v {
			other = e.V
		}
		deg[other]--
		deg[v]--
		r.Weight -= g.Weights[v]
		r.Length -= e.Cost
		if alive[other] && deg[other] == 1 {
			push(other) // its single alive edge is fixed from here on
		}
	}
	// Compact.
	var nodes []int32
	for _, v := range r.Nodes {
		if alive[v] {
			nodes = append(nodes, v)
		}
	}
	var edges []int
	for i, ei := range r.Edges {
		if edgeAlive[i] {
			edges = append(edges, ei)
		}
	}
	r.Nodes, r.Edges = nodes, edges
}

// quotaPruneScan is the original O(|T|²) reference implementation of
// quotaPrune — a full leaf rescan per removal. It is kept as the golden
// oracle: the tests assert quotaPrune produces bit-identical results on
// the same trees.
func quotaPruneScan(g *Graph, r *Result, quota int64) {
	if len(r.Nodes) <= 1 {
		return
	}
	deg := make(map[int32]int, len(r.Nodes))
	inc := make(map[int32][]int, len(r.Nodes))
	alive := make(map[int32]bool, len(r.Nodes))
	edgeAlive := make([]bool, len(r.Edges))
	for _, v := range r.Nodes {
		alive[v] = true
	}
	for i, ei := range r.Edges {
		e := g.Edges[ei]
		deg[e.U]++
		deg[e.V]++
		inc[e.U] = append(inc[e.U], i)
		inc[e.V] = append(inc[e.V], i)
		edgeAlive[i] = true
	}
	for {
		bestLeaf := int32(-1)
		bestEdge := -1
		bestScore := math.Inf(-1)
		for _, v := range r.Nodes {
			if !alive[v] || deg[v] != 1 {
				continue
			}
			if r.Weight-g.Weights[v] < quota {
				continue
			}
			ei := -1
			for _, i := range inc[v] {
				if edgeAlive[i] {
					ei = i
					break
				}
			}
			if ei < 0 {
				continue
			}
			score := pruneScore(g.Edges[r.Edges[ei]].Cost, g.Weights[v])
			if score > bestScore {
				bestScore = score
				bestLeaf = v
				bestEdge = ei
			}
		}
		if bestLeaf < 0 {
			break
		}
		e := g.Edges[r.Edges[bestEdge]]
		if e.Cost <= 0 && g.Weights[bestLeaf] > 0 {
			break
		}
		alive[bestLeaf] = false
		edgeAlive[bestEdge] = false
		other := e.U
		if other == bestLeaf {
			other = e.V
		}
		deg[other]--
		deg[bestLeaf]--
		r.Weight -= g.Weights[bestLeaf]
		r.Length -= e.Cost
	}
	var nodes []int32
	for _, v := range r.Nodes {
		if alive[v] {
			nodes = append(nodes, v)
		}
	}
	var edges []int
	for i, ei := range r.Edges {
		if edgeAlive[i] {
			edges = append(edges, ei)
		}
	}
	r.Nodes, r.Edges = nodes, edges
}

// SPT is a cheap quota solver used as an ablation baseline: grow a
// shortest-path ball from each of the heaviest seed nodes until the quota
// is met, keep the best (shortest) resulting shortest-path tree, then
// quota-prune it.
type SPT struct {
	g     *Graph
	seeds int
}

// NewSPT returns an SPT solver trying the given number of seeds (clamped
// to at least 1).
func NewSPT(g *Graph, seeds int) *SPT {
	if seeds < 1 {
		seeds = 1
	}
	return &SPT{g: g, seeds: seeds}
}

// Tree implements Solver.
func (s *SPT) Tree(quota int64) (Result, bool, error) {
	if s.g.N == 0 {
		return Result{}, false, nil
	}
	// Seed candidates: heaviest nodes first.
	order := make([]int, s.g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return s.g.Weights[order[i]] > s.g.Weights[order[j]] })
	var best *Result
	tries := s.seeds
	if tries > len(order) {
		tries = len(order)
	}
	for k := 0; k < tries; k++ {
		if r := s.fromSeed(order[k], quota); r != nil {
			if best == nil || r.Length < best.Length {
				best = r
			}
		}
	}
	if best == nil {
		return Result{}, false, nil
	}
	quotaPrune(s.g, best, quota)
	return *best, true, nil
}

func (s *SPT) fromSeed(seed int, quota int64) *Result {
	type item struct {
		dist float64
		v    int32
	}
	dist := make([]float64, s.g.N)
	parentEdge := make([]int32, s.g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
		parentEdge[i] = -1
	}
	dist[seed] = 0
	h := container.NewHeap[item](func(a, b item) bool { return a.dist < b.dist })
	h.Push(item{0, int32(seed)})
	settled := make([]bool, s.g.N)
	var res Result
	var acc int64
	met := false
	for {
		it, ok := h.Pop()
		if !ok {
			break
		}
		if settled[it.v] {
			continue
		}
		settled[it.v] = true
		res.Nodes = append(res.Nodes, it.v)
		if parentEdge[it.v] >= 0 {
			res.Edges = append(res.Edges, int(parentEdge[it.v]))
			res.Length += s.g.Edges[parentEdge[it.v]].Cost
		}
		acc += s.g.Weights[it.v]
		if acc >= quota {
			met = true
			break
		}
		for _, he := range s.g.adj[it.v] {
			nd := it.dist + s.g.Edges[he.edge].Cost
			if nd < dist[he.to] {
				dist[he.to] = nd
				parentEdge[he.to] = he.edge
				h.Push(item{nd, he.to})
			}
		}
	}
	if !met {
		return nil
	}
	res.Weight = acc
	sort.Slice(res.Nodes, func(i, j int) bool { return res.Nodes[i] < res.Nodes[j] })
	return &res
}
