package kmst

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/cancel"
	"repro/internal/container"
	"repro/internal/pcst"
)

// This file holds the pooled counterparts of NewGarg/NewSPT: quota solvers
// whose per-query state (CSR adjacency, the λ-cache, PCST solver state,
// Prim/Dijkstra heaps, quota-pruning scratch, and the storage behind
// returned Results) is reused across queries via Reset. A warm pooled
// solver answers Tree calls with zero steady-state allocations.
//
// Ownership: Results returned by Tree (their Nodes and Edges) alias the
// solver's arenas and stay valid across later Tree calls on the same
// solver — APP's binary search holds earlier trees while probing new
// quotas — until the next Reset, which reclaims them all. One solver
// serves one goroutine.

// quotaState is the shared base of the pooled solvers: the graph in CSR
// form, result arenas, and map-free quota-pruning scratch.
type quotaState struct {
	n       int
	edges   []pcst.Edge
	weights []int64

	// chk, when non-nil, is polled in the solver hot loops; once it fires,
	// Tree unwinds quickly with ok == false and the caller surfaces the
	// context error. Reset clears it; SetCancel re-arms it.
	chk *cancel.Check

	offs    []int32
	adjTo   []int32
	adjEdge []int32
	cursor  []int32

	// Arenas backing returned Results; reclaimed by reset.
	nodeArena container.Arena[int32]
	edgeArena container.Arena[int]

	// quotaPrune scratch (local tree indices via pos remap).
	pos       []int32
	deg       []int32
	alive     []bool
	edgeAlive []bool
	incOffs   []int32
	inc       []int32
	ph        container.Heap[pruneCand]
	phReady   bool

	// Pre-arena result assembly buffers.
	tmpNodes []int32
	tmpEdges []int
}

// reset revalidates and re-indexes the graph in place, reclaiming all
// previously returned Results.
func (q *quotaState) reset(n int, edges []pcst.Edge, weights []int64) error {
	if len(weights) != n {
		return fmt.Errorf("kmst: %d weights for %d nodes", len(weights), n)
	}
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("kmst: node %d has negative weight %d", i, w)
		}
	}
	for i, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return fmt.Errorf("pcst: edge %d endpoints (%d,%d) out of range", i, e.U, e.V)
		}
		if e.U == e.V {
			return fmt.Errorf("pcst: edge %d is a self loop", i)
		}
		if e.Cost < 0 || math.IsNaN(e.Cost) || math.IsInf(e.Cost, 0) {
			return fmt.Errorf("pcst: edge %d has invalid cost %v", i, e.Cost)
		}
	}
	q.n, q.edges, q.weights = n, edges, weights
	q.chk = nil
	q.nodeArena.Reset()
	q.edgeArena.Reset()

	q.offs = container.GrowTo(q.offs, n+1)
	for i := range q.offs {
		q.offs[i] = 0
	}
	for _, e := range edges {
		q.offs[e.U+1]++
		q.offs[e.V+1]++
	}
	for i := 0; i < n; i++ {
		q.offs[i+1] += q.offs[i]
	}
	q.cursor = container.GrowTo(q.cursor, n)
	copy(q.cursor, q.offs[:n])
	q.adjTo = container.GrowTo(q.adjTo, 2*len(edges))
	q.adjEdge = container.GrowTo(q.adjEdge, 2*len(edges))
	for i, e := range edges {
		q.adjTo[q.cursor[e.U]] = e.V
		q.adjEdge[q.cursor[e.U]] = int32(i)
		q.cursor[e.U]++
		q.adjTo[q.cursor[e.V]] = e.U
		q.adjEdge[q.cursor[e.V]] = int32(i)
		q.cursor[e.V]++
	}
	return nil
}

// SetCancel arms the solver with a cancellation checkpoint for the Tree
// calls until the next Reset. A nil check disables the checkpoints.
func (q *quotaState) SetCancel(chk *cancel.Check) { q.chk = chk }

// finish copies the assembled tmp result into arena-backed storage.
func (q *quotaState) finish(r Result) Result {
	nodes := q.nodeArena.Alloc(len(r.Nodes))
	copy(nodes, r.Nodes)
	r.Nodes = nodes
	if len(r.Edges) > 0 {
		edges := q.edgeArena.Alloc(len(r.Edges))
		copy(edges, r.Edges)
		r.Edges = edges
	} else {
		r.Edges = nil // match the allocating solvers' nil edge lists
	}
	return r
}

// pruneSetup builds the map-free prune scratch for a tree: the local
// index remap, degrees, liveness and the incident-edge CSR in r.Edges
// order. Shared by the heap prune and its scan-based golden oracle.
func (q *quotaState) pruneSetup(r *Result) {
	nt := len(r.Nodes)
	q.pos = container.GrowTo(q.pos, q.n)
	for i, v := range r.Nodes {
		q.pos[v] = int32(i)
	}
	q.deg = container.GrowTo(q.deg, nt)
	q.alive = container.GrowTo(q.alive, nt)
	for i := 0; i < nt; i++ {
		q.deg[i] = 0
		q.alive[i] = true
	}
	q.edgeAlive = container.GrowTo(q.edgeAlive, len(r.Edges))
	q.incOffs = container.GrowTo(q.incOffs, nt+1)
	for i := 0; i <= nt; i++ {
		q.incOffs[i] = 0
	}
	for i, ei := range r.Edges {
		e := q.edges[ei]
		q.deg[q.pos[e.U]]++
		q.deg[q.pos[e.V]]++
		q.incOffs[q.pos[e.U]+1]++
		q.incOffs[q.pos[e.V]+1]++
		q.edgeAlive[i] = true
	}
	for i := 0; i < nt; i++ {
		q.incOffs[i+1] += q.incOffs[i]
	}
	q.cursor = container.GrowTo(q.cursor, nt)
	copy(q.cursor, q.incOffs[:nt])
	q.inc = container.GrowTo(q.inc, 2*len(r.Edges))
	for i, ei := range r.Edges {
		e := q.edges[ei]
		q.inc[q.cursor[q.pos[e.U]]] = int32(i)
		q.cursor[q.pos[e.U]]++
		q.inc[q.cursor[q.pos[e.V]]] = int32(i)
		q.cursor[q.pos[e.V]]++
	}
}

// pruneCompact drops dead nodes and edges in place, preserving order.
func (q *quotaState) pruneCompact(r *Result) {
	nodes := r.Nodes[:0]
	for _, v := range r.Nodes {
		if q.alive[q.pos[v]] {
			nodes = append(nodes, v)
		}
	}
	edges := r.Edges[:0]
	for i, ei := range r.Edges {
		if q.edgeAlive[i] {
			edges = append(edges, ei)
		}
	}
	r.Nodes, r.Edges = nodes, edges
}

// prunePush pushes a just-turned leaf (local index lv) with its single
// alive incident edge and final score; no-op if no alive edge remains.
func (q *quotaState) prunePush(r *Result, lv int32) {
	ei := int32(-1)
	for k := q.incOffs[lv]; k < q.incOffs[lv+1]; k++ {
		if q.edgeAlive[q.inc[k]] {
			ei = q.inc[k]
			break
		}
	}
	if ei < 0 {
		return
	}
	v := r.Nodes[lv]
	q.ph.Push(pruneCand{
		score: pruneScore(q.edges[r.Edges[ei]].Cost, q.weights[v]),
		pos:   lv, node: v, edge: ei,
	})
}

// quotaPrune mirrors the package-level quotaPrune with pooled, map-free
// scratch: the tree is remapped to local indices, incident-edge lists
// become a CSR in r.Edges order, and the same lazily revalidated max-heap
// drives leaf selection — heap order (score desc, r.Nodes position asc)
// replicates the reference scan's strict-max-plus-first-position pick, so
// the pruned tree is identical (golden-tested against quotaPruneScan).
func (q *quotaState) quotaPrune(r *Result, quota int64) {
	if len(r.Nodes) <= 1 {
		return
	}
	q.pruneSetup(r)
	if !q.phReady {
		q.ph.Init(pruneBetter)
		q.phReady = true
	} else {
		q.ph.Reset()
	}
	for i := range r.Nodes {
		if q.deg[i] == 1 {
			q.prunePush(r, int32(i))
		}
	}
	for {
		if q.chk.Tick() {
			return // partial prune; the abandoned result is discarded upstream
		}
		c, ok := q.ph.Pop()
		if !ok {
			break // no removable leaf left
		}
		v := c.node
		lv := c.pos
		if !q.alive[lv] || q.deg[lv] != 1 || !q.edgeAlive[c.edge] {
			continue // stale: the candidate (or its edge) died since the push
		}
		if r.Weight-q.weights[v] < quota {
			continue // permanent: the remaining weight only decreases
		}
		e := q.edges[r.Edges[c.edge]]
		if e.Cost <= 0 && q.weights[v] > 0 {
			break
		}
		q.alive[lv] = false
		q.edgeAlive[c.edge] = false
		other := e.U
		if other == v {
			other = e.V
		}
		lo := q.pos[other]
		q.deg[lo]--
		q.deg[lv]--
		r.Weight -= q.weights[v]
		r.Length -= e.Cost
		if q.alive[lo] && q.deg[lo] == 1 {
			q.prunePush(r, lo) // its single alive edge is fixed from here on
		}
	}
	q.pruneCompact(r)
}

// quotaPruneScan is the pooled mirror of the original O(|T|²) rescan
// prune, kept as the golden oracle for quotaPrune.
func (q *quotaState) quotaPruneScan(r *Result, quota int64) {
	if len(r.Nodes) <= 1 {
		return
	}
	q.pruneSetup(r)
	for {
		if q.chk.Tick() {
			return // partial prune; the abandoned result is discarded upstream
		}
		// Find the best removable leaf.
		bestLeaf := int32(-1)
		bestEdge := -1
		bestScore := math.Inf(-1)
		for _, v := range r.Nodes {
			lv := q.pos[v]
			if !q.alive[lv] || q.deg[lv] != 1 {
				continue
			}
			if r.Weight-q.weights[v] < quota {
				continue
			}
			// Its single alive incident edge.
			ei := -1
			for k := q.incOffs[lv]; k < q.incOffs[lv+1]; k++ {
				if q.edgeAlive[q.inc[k]] {
					ei = int(q.inc[k])
					break
				}
			}
			if ei < 0 {
				continue
			}
			score := pruneScore(q.edges[r.Edges[ei]].Cost, q.weights[v])
			if score > bestScore {
				bestScore = score
				bestLeaf = v
				bestEdge = ei
			}
		}
		if bestLeaf < 0 {
			break
		}
		e := q.edges[r.Edges[bestEdge]]
		if e.Cost <= 0 && q.weights[bestLeaf] > 0 {
			break
		}
		q.alive[q.pos[bestLeaf]] = false
		q.edgeAlive[bestEdge] = false
		other := e.U
		if other == bestLeaf {
			other = e.V
		}
		q.deg[q.pos[other]]--
		q.deg[q.pos[bestLeaf]]--
		r.Weight -= q.weights[bestLeaf]
		r.Length -= e.Cost
	}
	q.pruneCompact(r)
}

// GargSolver is the pooled Garg quota solver: the same λ binary search
// over cached GW runs as Garg, with every piece of state reused across
// queries. See the file comment for the Result ownership rules.
type GargSolver struct {
	quotaState

	ps        pcst.Solver
	pg        pcst.Graph
	prizes    []float64
	lambdaMax float64

	compWeight []int64
	uf         container.UnionFind
	sums       []int64

	cacheLam   []float64     // sorted ascending
	cacheTrees [][]pcst.Tree // parallel to cacheLam

	// λ-cache persistence: a solver-owned snapshot of the scaled quota
	// graph. When Reset sees the same graph again (queries over one
	// scaling share it), the λ-cache and the GW runs it holds survive the
	// reset instead of being recomputed from scratch. The snapshot is a
	// deep copy because callers reuse and rewrite their edge/weight
	// buffers between queries; quotaState.edges/weights point at the
	// snapshot, never at the caller's slices.
	snapN       int
	snapEdges   []pcst.Edge
	snapWeights []int64
	snapValid   bool
	lamReuses   uint64

	inTree []bool
	h      container.Heap[primItem]
	hReady bool
}

// maxLamCache caps how many distinct λ values one snapshot may cache.
// Every cached GW run pins trees in the PCST solver's arenas (which only
// a full reset reclaims), so a full cache forces the slow Reset path,
// bounding memory under an adversarial λ sequence. 48 binary-search
// midpoints per quota are deterministic and shared, so real workloads
// saturate far below the cap.
const maxLamCache = 1024

// LamCacheReuses reports how many Resets kept the λ-cache alive because
// the graph was unchanged. Exposed for tests and instrumentation.
func (s *GargSolver) LamCacheReuses() uint64 { return s.lamReuses }

type primItem struct {
	cost float64
	to   int32
	edge int32
}

// NewGargSolver returns an empty pooled Garg solver; call Reset before use.
func NewGargSolver() *GargSolver { return &GargSolver{} }

// SetCancel arms the solver (and its PCST solver beneath) with a
// cancellation checkpoint for the Tree calls until the next Reset. A nil
// check disables the checkpoints.
func (s *GargSolver) SetCancel(chk *cancel.Check) {
	s.chk = chk
	s.ps.SetCancel(chk)
}

// Reset points the solver at a new quota graph, reclaiming the previous
// query's Results. When the graph is byte-identical to the previous one
// (hot queries against a shared scaling), the λ-cache — and the GW runs
// behind it — persists across the reset: cached trees live in the PCST
// solver's arenas, which pcst.Solver.Reset alone reclaims, so skipping
// that reset keeps every cached tree valid. Only the result arenas are
// reclaimed, preserving the contract that prior Results die at Reset.
func (s *GargSolver) Reset(n int, edges []pcst.Edge, weights []int64) error {
	if s.snapValid && n == s.snapN && len(s.cacheLam) < maxLamCache &&
		slices.Equal(edges, s.snapEdges) && slices.Equal(weights, s.snapWeights) {
		// Same graph: keep the CSR, component weights, λmax and λ-cache.
		// Re-point at the snapshot (not the caller's volatile buffers) and
		// reclaim only what the Reset contract demands.
		s.edges, s.weights = s.snapEdges, s.snapWeights
		s.chk = nil
		s.ps.SetCancel(nil)
		s.nodeArena.Reset()
		s.edgeArena.Reset()
		s.lamReuses++
		return nil
	}
	if err := s.quotaState.reset(n, edges, weights); err != nil {
		return err
	}
	// Snapshot the validated graph so later Resets can recognize it after
	// the caller rewrites its buffers, and re-point the solver at the copy.
	s.snapN = n
	s.snapEdges = append(s.snapEdges[:0], edges...)
	s.snapWeights = append(s.snapWeights[:0], weights...)
	s.snapValid = true
	s.edges, s.weights = s.snapEdges, s.snapWeights
	s.ps.Reset()
	s.ps.SetCancel(nil)
	s.cacheLam = s.cacheLam[:0]
	s.cacheTrees = s.cacheTrees[:0]

	// Component weights, for feasibility checks and the MST fallback.
	s.uf.Reset(n)
	for _, e := range edges {
		s.uf.Union(int(e.U), int(e.V))
	}
	s.sums = container.GrowTo(s.sums, n)
	for i := range s.sums {
		s.sums[i] = 0
	}
	for v := 0; v < n; v++ {
		s.sums[s.uf.Find(v)] += weights[v]
	}
	s.compWeight = container.GrowTo(s.compWeight, n)
	for v := 0; v < n; v++ {
		s.compWeight[v] = s.sums[s.uf.Find(v)]
	}
	var totalCost float64
	for _, e := range edges {
		totalCost += e.Cost
	}
	s.lambdaMax = totalCost + 1
	return nil
}

// Tree implements Solver. The returned Result aliases the solver's arenas
// and stays valid until the next Reset.
func (s *GargSolver) Tree(quota int64) (Result, bool, error) {
	if quota <= 0 {
		if s.n == 0 {
			return Result{}, false, nil
		}
		best := 0
		for v := 1; v < s.n; v++ {
			if s.weights[v] > s.weights[best] {
				best = v
			}
		}
		nodes := s.nodeArena.Alloc(1)
		nodes[0] = int32(best)
		return Result{Nodes: nodes, Weight: s.weights[best]}, true, nil
	}
	feasible := false
	for v := 0; v < s.n; v++ {
		if s.compWeight[v] >= quota {
			feasible = true
			break
		}
	}
	if !feasible {
		return Result{}, false, nil
	}

	// Binary search λ over [0, λmax] for the smallest multiplier whose GW
	// forest contains a quota tree; identical midpoint sequence and cache
	// behavior to Garg.Tree.
	lo, hi := 0.0, s.lambdaMax
	var bestTree *pcst.Tree
	var bestW int64
	for iter := 0; iter < 48 && hi-lo > 1e-9*s.lambdaMax; iter++ {
		if s.chk.Now() {
			return Result{}, false, nil
		}
		mid := (lo + hi) / 2
		tr, w, err := s.quotaTreeAt(mid, quota)
		if err != nil {
			return Result{}, false, err
		}
		if tr != nil {
			if bestTree == nil || tr.Cost < bestTree.Cost {
				bestTree, bestW = tr, w
			}
			hi = mid
		} else {
			lo = mid
		}
	}
	if s.chk.Now() {
		return Result{}, false, nil
	}
	if bestTree == nil {
		tr, w, err := s.quotaTreeAt(s.lambdaMax, quota)
		if err != nil {
			return Result{}, false, err
		}
		if tr != nil {
			bestTree, bestW = tr, w
		}
	}
	var res Result
	if bestTree != nil {
		res = Result{
			Nodes:  append(s.tmpNodes[:0], bestTree.Nodes...),
			Edges:  append(s.tmpEdges[:0], bestTree.Edges...),
			Length: bestTree.Cost,
			Weight: bestW,
		}
	} else {
		// GW pruning can in principle keep withholding the quota; fall
		// back to the component MST, which always carries it.
		res = s.mstFallback(quota)
	}
	s.tmpNodes, s.tmpEdges = res.Nodes, res.Edges // keep grown capacity
	s.quotaPrune(&res, quota)
	return s.finish(res), true, nil
}

// quotaTreeAt runs (λ-cached) GW with prizes λ·w and returns the minimum-
// length tree meeting the quota with its weight, or nil. Returned pointers
// reference the PCST solver's arena and stay valid until Reset. The cache
// is a sorted slice probed by binary search, matching the allocating
// Garg's map lookup cost without its allocations.
func (s *GargSolver) quotaTreeAt(lambda float64, quota int64) (*pcst.Tree, int64, error) {
	var trees []pcst.Tree
	idx, found := slices.BinarySearch(s.cacheLam, lambda)
	if found {
		trees = s.cacheTrees[idx]
	} else {
		s.prizes = container.GrowTo(s.prizes, s.n)
		for v := 0; v < s.n; v++ {
			s.prizes[v] = lambda * float64(s.weights[v])
		}
		s.pg = pcst.Graph{N: s.n, Edges: s.edges, Prizes: s.prizes}
		var err error
		trees, err = s.ps.Solve(&s.pg)
		if err != nil {
			// Inputs were validated in Reset, so this is a solver bug — but
			// a bug in one query's optimization must fail that query, not
			// the process hosting it.
			return nil, 0, fmt.Errorf("kmst: pcst solve (lambda %g): %w", lambda, err)
		}
		if s.chk.Cancelled() {
			// A cancelled Solve legitimately returns no trees. The λ-cache
			// now outlives the query, so caching that empty run would serve
			// a poisoned "no tree at λ" answer to later, uncancelled
			// queries; the caller is unwinding anyway.
			return nil, 0, nil
		}
		s.cacheLam = append(s.cacheLam, 0)
		copy(s.cacheLam[idx+1:], s.cacheLam[idx:])
		s.cacheLam[idx] = lambda
		s.cacheTrees = append(s.cacheTrees, nil)
		copy(s.cacheTrees[idx+1:], s.cacheTrees[idx:])
		s.cacheTrees[idx] = trees
	}
	var best *pcst.Tree
	var bestW int64
	for i := range trees {
		var w int64
		for _, v := range trees[i].Nodes {
			w += s.weights[v]
		}
		if w < quota {
			continue
		}
		if best == nil || trees[i].Cost < best.Cost {
			best, bestW = &trees[i], w
		}
	}
	return best, bestW, nil
}

// mstFallback spans the lightest-length quota-carrying component with a
// Prim MST, assembling into the tmp buffers.
func (s *GargSolver) mstFallback(quota int64) Result {
	seed := -1
	for v := 0; v < s.n; v++ {
		if s.compWeight[v] >= quota && (seed < 0 || s.compWeight[v] > s.compWeight[seed]) {
			seed = v
		}
	}
	s.inTree = container.GrowTo(s.inTree, s.n)
	for i := range s.inTree {
		s.inTree[i] = false
	}
	if !s.hReady {
		s.h.Init(func(a, b primItem) bool { return a.cost < b.cost })
		s.hReady = true
	} else {
		s.h.Reset()
	}
	res := Result{Nodes: append(s.tmpNodes[:0], int32(seed)), Edges: s.tmpEdges[:0], Weight: s.weights[seed]}
	s.inTree[seed] = true
	for k := s.offs[seed]; k < s.offs[seed+1]; k++ {
		s.h.Push(primItem{cost: s.edges[s.adjEdge[k]].Cost, to: s.adjTo[k], edge: s.adjEdge[k]})
	}
	for {
		if s.chk.Tick() {
			break // partial MST; discarded upstream once cancellation surfaces
		}
		it, ok := s.h.Pop()
		if !ok {
			break
		}
		if s.inTree[it.to] {
			continue
		}
		s.inTree[it.to] = true
		res.Nodes = append(res.Nodes, it.to)
		res.Edges = append(res.Edges, int(it.edge))
		res.Length += s.edges[it.edge].Cost
		res.Weight += s.weights[it.to]
		for k := s.offs[it.to]; k < s.offs[it.to+1]; k++ {
			if !s.inTree[s.adjTo[k]] {
				s.h.Push(primItem{cost: s.edges[s.adjEdge[k]].Cost, to: s.adjTo[k], edge: s.adjEdge[k]})
			}
		}
	}
	slices.Sort(res.Nodes)
	return res
}

// SPTSolver is the pooled shortest-path-tree quota solver (ablation
// baseline), the reusable counterpart of NewSPT.
type SPTSolver struct {
	quotaState
	seeds int

	order      []int32
	dist       []float64
	parentEdge []int32
	settled    []bool
	h          container.Heap[sptItem]
	hReady     bool

	// Double-buffered candidate/best assembly.
	candNodes, bestNodes []int32
	candEdges, bestEdges []int
}

type sptItem struct {
	dist float64
	v    int32
}

// NewSPTSolver returns an empty pooled SPT solver trying the given number
// of seeds (clamped to at least 1); call Reset before use.
func NewSPTSolver(seeds int) *SPTSolver {
	if seeds < 1 {
		seeds = 1
	}
	return &SPTSolver{seeds: seeds}
}

// Reset points the solver at a new quota graph, reclaiming the previous
// query's Results.
func (s *SPTSolver) Reset(n int, edges []pcst.Edge, weights []int64) error {
	return s.quotaState.reset(n, edges, weights)
}

// Tree implements Solver. The returned Result aliases the solver's arenas
// and stays valid until the next Reset.
func (s *SPTSolver) Tree(quota int64) (Result, bool, error) {
	if s.n == 0 {
		return Result{}, false, nil
	}
	s.order = container.GrowTo(s.order, s.n)
	for i := range s.order {
		s.order[i] = int32(i)
	}
	slices.SortFunc(s.order, func(a, b int32) int {
		// Heaviest first; same predicate as NewSPT's sort.Slice, so the
		// unstable pdqsort yields the same permutation.
		switch {
		case s.weights[a] > s.weights[b]:
			return -1
		case s.weights[b] > s.weights[a]:
			return 1
		default:
			return 0
		}
	})
	haveBest := false
	var best Result
	tries := s.seeds
	if tries > s.n {
		tries = s.n
	}
	for k := 0; k < tries; k++ {
		if s.chk.Now() {
			return Result{}, false, nil
		}
		r, ok := s.fromSeed(int(s.order[k]), quota)
		if !ok {
			continue
		}
		switch {
		case !haveBest:
			// r owns the candidate buffers now; recycle the parked best
			// buffers from the previous Tree call as the next candidate's.
			best, haveBest = r, true
			s.candNodes, s.candEdges = s.bestNodes[:0], s.bestEdges[:0]
		case r.Length < best.Length:
			s.candNodes, s.candEdges = best.Nodes, best.Edges
			best = r
		default:
			s.candNodes, s.candEdges = r.Nodes, r.Edges
		}
	}
	if !haveBest {
		return Result{}, false, nil
	}
	s.quotaPrune(&best, quota)
	s.bestNodes, s.bestEdges = best.Nodes, best.Edges // park grown capacity
	return s.finish(best), true, nil
}

// fromSeed grows a shortest-path ball from seed until the quota is met,
// assembling into the candidate buffers.
func (s *SPTSolver) fromSeed(seed int, quota int64) (Result, bool) {
	s.dist = container.GrowTo(s.dist, s.n)
	s.parentEdge = container.GrowTo(s.parentEdge, s.n)
	s.settled = container.GrowTo(s.settled, s.n)
	for i := 0; i < s.n; i++ {
		s.dist[i] = math.Inf(1)
		s.parentEdge[i] = -1
		s.settled[i] = false
	}
	s.dist[seed] = 0
	if !s.hReady {
		s.h.Init(func(a, b sptItem) bool { return a.dist < b.dist })
		s.hReady = true
	} else {
		s.h.Reset()
	}
	s.h.Push(sptItem{0, int32(seed)})
	res := Result{Nodes: s.candNodes[:0], Edges: s.candEdges[:0]}
	var acc int64
	met := false
	for {
		if s.chk.Tick() {
			break // unmet quota path below parks the buffers and reports !ok
		}
		it, ok := s.h.Pop()
		if !ok {
			break
		}
		if s.settled[it.v] {
			continue
		}
		s.settled[it.v] = true
		res.Nodes = append(res.Nodes, it.v)
		if s.parentEdge[it.v] >= 0 {
			res.Edges = append(res.Edges, int(s.parentEdge[it.v]))
			res.Length += s.edges[s.parentEdge[it.v]].Cost
		}
		acc += s.weights[it.v]
		if acc >= quota {
			met = true
			break
		}
		for k := s.offs[it.v]; k < s.offs[it.v+1]; k++ {
			nd := it.dist + s.edges[s.adjEdge[k]].Cost
			if nd < s.dist[s.adjTo[k]] {
				s.dist[s.adjTo[k]] = nd
				s.parentEdge[s.adjTo[k]] = s.adjEdge[k]
				s.h.Push(sptItem{nd, s.adjTo[k]})
			}
		}
	}
	if !met {
		s.candNodes, s.candEdges = res.Nodes, res.Edges // keep grown capacity
		return Result{}, false
	}
	res.Weight = acc
	slices.Sort(res.Nodes)
	return res, true
}
