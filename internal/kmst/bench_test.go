package kmst

import (
	"math/rand"
	"testing"

	"repro/internal/pcst"
)

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	const side = 25
	rng := rand.New(rand.NewSource(3))
	n := side * side
	var edges []pcst.Edge
	weights := make([]int64, n)
	for i := range weights {
		if rng.Float64() < 0.3 {
			weights[i] = int64(1 + rng.Intn(5))
		}
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := int32(y*side + x)
			if x+1 < side {
				edges = append(edges, pcst.Edge{U: v, V: v + 1, Cost: 0.5 + rng.Float64()})
			}
			if y+1 < side {
				edges = append(edges, pcst.Edge{U: v, V: v + int32(side), Cost: 0.5 + rng.Float64()})
			}
		}
	}
	g, err := New(n, edges, weights)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkGargQuota(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewGarg(g) // fresh cache: measures a cold quota query
		if _, ok := treeOK(b, s, 60); !ok {
			b.Fatal("quota infeasible")
		}
	}
}

func BenchmarkSPTQuota(b *testing.B) {
	g := benchGraph(b)
	s := NewSPT(g, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := treeOK(b, s, 60); !ok {
			b.Fatal("quota infeasible")
		}
	}
}
