// Package dataset assembles the full experimental setting of §7.1: a road
// network, a corpus of geo-textual objects snapped to their nearest road
// nodes, the grid index with per-cell inverted lists over them, and the
// query workload generator (random query rectangles following the network
// distribution, keywords sampled by in-region frequency).
//
// Two ready-made builds mirror the paper's datasets at laptop scale:
// NYLike (Manhattan-style grid + business-category-style Zipf text) and
// USANWLike (random geometric network + tag-style Zipf text). See
// DESIGN.md ("Substitutions") for the scale mapping.
package dataset

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/gen"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/roadnet"
	"repro/internal/textindex"
)

// Dataset bundles a road network with its indexed geo-textual objects.
//
// A Dataset accepts live mutations (Insert, Delete, Reweight) concurrent
// with queries: mutators take the internal write lock, the query paths
// (Planner.Instantiate, GenQueries, and result materialization via
// RLock/RUnlock) take the read side. The exported fields are owned by
// the dataset once it is assembled — read them under RLock when updates
// may be running.
type Dataset struct {
	// mu serializes live mutations against query-side reads of Vocab,
	// Objects, ObjNode and Ratings. Lock ordering: Dataset.mu before
	// grid.Index's internal lock (mutators call into the index while
	// holding mu).
	mu      sync.RWMutex
	Name    string
	Graph   *roadnet.Graph
	Vocab   *textindex.Vocabulary
	Objects []grid.Object
	ObjNode []roadnet.NodeID // nearest road node per object (§7.1 snapping)
	// Ratings holds per-object popularity scores for WeightRating mode;
	// nil means every object rates 1.
	Ratings []float64
	Index   *grid.Index
	// searchFn, when non-nil, replaces Index.SearchInto in the planners
	// (distributed serving routes the search through a coordinator).
	// Guarded by mu like the other query-visible state.
	searchFn SearchFunc
}

// RLock takes the dataset's read lock; callers reading Objects, Vocab,
// ObjNode or Ratings while updates may be running must hold it.
func (d *Dataset) RLock() { d.mu.RLock() }

// RUnlock releases RLock.
func (d *Dataset) RUnlock() { d.mu.RUnlock() }

// SearchFunc is a replacement for the planner's object-relevance search.
// It must return exactly what Index.SearchInto would: every matching
// object in the rectangle with its final score, ascending by object id,
// bit-identical — distributed serving (internal/cluster) installs one
// that scatters the search across node processes. ctx carries the
// request's deadline.
type SearchFunc func(ctx context.Context, q textindex.Query, r geo.Rect, s *grid.SearchScratch) ([]grid.ObjScore, error)

// SetSearchFunc installs fn as the search the planners use (nil restores
// the local index search). Set it before serving begins; it applies to
// planners created before or after the call.
func (d *Dataset) SetSearchFunc(fn SearchFunc) {
	d.mu.Lock()
	d.searchFn = fn
	d.mu.Unlock()
}

// Config controls synthetic dataset construction.
type Config struct {
	// Seed drives all randomness; equal seeds give equal datasets.
	Seed int64
	// Scale multiplies the default node/object counts (1.0 = defaults;
	// benchmarks may use <1 for speed, studies >1 for fidelity).
	Scale float64
	// CellSize is the grid-index cell size in metres (default 500).
	CellSize float64
	// Store, when non-nil, persists posting lists — a single BTreeStore
	// or a ShardedStore (cells striped across N B+-trees, so concurrent
	// cold reads from the query-engine workers don't contend on one tree
	// lock). nil keeps them in memory.
	Store grid.Store
	// Reopen treats Store as a previously persisted store: instead of
	// rebuilding postings from the regenerated corpus, the index comes
	// from the store's committed metadata plus WAL replay
	// (grid.NewIndexOver) and the vocabulary statistics from the metadata
	// snapshot, so live updates applied before the last close — including
	// ones that never reached a compaction — are preserved.
	Reopen bool
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.CellSize == 0 {
		c.CellSize = 500
	}
	return c
}

// NYLike builds the Manhattan-style dataset: a ~20×20 km perturbed grid
// network (paper: NY, 264k nodes over the city; here density-scaled), with
// ~1.9 objects per node and a business-category-style vocabulary.
func NYLike(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	side := int(60 * sqrtScale(cfg.Scale))
	if side < 10 {
		side = 10
	}
	g, err := gen.ManhattanGrid(gen.GridConfig{
		Rows: side, Cols: side,
		Spacing:     20000.0 / float64(side-1), // ~20 km across regardless of scale
		Jitter:      0.15,
		RemoveEdge:  0.06,
		DeadEndFrac: 0.25,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("dataset: NY network: %w", err)
	}
	corpus, err := gen.PlaceObjects(g, gen.TextConfig{
		VocabSize:  1500,
		ZipfS:      1.15,
		MinTerms:   1,
		MaxTerms:   4,
		Objects:    int(float64(g.NumNodes()) * 1.9),
		SnapJitter: 30,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("dataset: NY objects: %w", err)
	}
	return assemble("NY", g, corpus, cfg)
}

// USANWLike builds the northwest-USA-style dataset: a sparser random
// geometric network over ~30×30 km with one object per node (the paper
// generates exactly |V| objects) and a larger tag-style vocabulary.
func USANWLike(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	nodes := int(5000 * cfg.Scale)
	if nodes < 100 {
		nodes = 100
	}
	g, err := gen.GeometricNetwork(gen.GeometricConfig{
		Nodes:     nodes,
		Width:     30000,
		Height:    30000,
		Neighbors: 2,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("dataset: USANW network: %w", err)
	}
	corpus, err := gen.PlaceObjects(g, gen.TextConfig{
		VocabSize:  2500,
		ZipfS:      1.1,
		MinTerms:   1,
		MaxTerms:   6, // tag sets are longer than business categories
		Objects:    g.NumNodes(),
		SnapJitter: 50,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("dataset: USANW objects: %w", err)
	}
	return assemble("USANW", g, corpus, cfg)
}

func assemble(name string, g *roadnet.Graph, corpus *gen.Corpus, cfg Config) (*Dataset, error) {
	bounds := corpus.Bounds(g, 100)
	if cfg.Reopen {
		return reassemble(name, g, corpus, bounds, cfg)
	}
	idx, err := grid.NewIndex(corpus.Objects, bounds, cfg.CellSize, cfg.Store)
	if err != nil {
		return nil, fmt.Errorf("dataset: index: %w", err)
	}
	d := &Dataset{
		Name:    name,
		Graph:   g,
		Vocab:   corpus.Vocab,
		Objects: corpus.Objects,
		ObjNode: corpus.ObjNode,
		Ratings: corpus.Ratings,
		Index:   idx,
	}
	// Persist the vocabulary alongside the index metadata so an update-only
	// store can be reopened without re-deriving term statistics, then commit
	// a first metadata snapshot (a no-op for memory-backed stores).
	vocab := d.Vocab
	idx.SetMetaExtra(func() []byte { return vocab.EncodeSnapshot() })
	if err := idx.Compact(); err != nil {
		return nil, fmt.Errorf("dataset: initial meta commit: %w", err)
	}
	return d, nil
}

// Close compacts any pending live updates into the posting store and
// releases it when it is disk-backed (a no-op for the in-memory store).
// The dataset must not be queried afterwards.
func (d *Dataset) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Index.CloseStore()
}

// sqrtScale converts a count multiplier into a grid-side multiplier.
func sqrtScale(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return math.Sqrt(s)
}
