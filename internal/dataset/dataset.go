// Package dataset assembles the full experimental setting of §7.1: a road
// network, a corpus of geo-textual objects snapped to their nearest road
// nodes, the grid index with per-cell inverted lists over them, and the
// query workload generator (random query rectangles following the network
// distribution, keywords sampled by in-region frequency).
//
// Two ready-made builds mirror the paper's datasets at laptop scale:
// NYLike (Manhattan-style grid + business-category-style Zipf text) and
// USANWLike (random geometric network + tag-style Zipf text). See
// DESIGN.md ("Substitutions") for the scale mapping.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/roadnet"
	"repro/internal/textindex"
)

// Dataset bundles a road network with its indexed geo-textual objects.
type Dataset struct {
	Name    string
	Graph   *roadnet.Graph
	Vocab   *textindex.Vocabulary
	Objects []grid.Object
	ObjNode []roadnet.NodeID // nearest road node per object (§7.1 snapping)
	// Ratings holds per-object popularity scores for WeightRating mode;
	// nil means every object rates 1.
	Ratings []float64
	Index   *grid.Index
}

// Config controls synthetic dataset construction.
type Config struct {
	// Seed drives all randomness; equal seeds give equal datasets.
	Seed int64
	// Scale multiplies the default node/object counts (1.0 = defaults;
	// benchmarks may use <1 for speed, studies >1 for fidelity).
	Scale float64
	// CellSize is the grid-index cell size in metres (default 500).
	CellSize float64
	// Store, when non-nil, persists posting lists — a single BTreeStore
	// or a ShardedStore (cells striped across N B+-trees, so concurrent
	// cold reads from the query-engine workers don't contend on one tree
	// lock). nil keeps them in memory.
	Store grid.Store
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.CellSize == 0 {
		c.CellSize = 500
	}
	return c
}

// NYLike builds the Manhattan-style dataset: a ~20×20 km perturbed grid
// network (paper: NY, 264k nodes over the city; here density-scaled), with
// ~1.9 objects per node and a business-category-style vocabulary.
func NYLike(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	side := int(60 * sqrtScale(cfg.Scale))
	if side < 10 {
		side = 10
	}
	g, err := gen.ManhattanGrid(gen.GridConfig{
		Rows: side, Cols: side,
		Spacing:     20000.0 / float64(side-1), // ~20 km across regardless of scale
		Jitter:      0.15,
		RemoveEdge:  0.06,
		DeadEndFrac: 0.25,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("dataset: NY network: %w", err)
	}
	corpus, err := gen.PlaceObjects(g, gen.TextConfig{
		VocabSize:  1500,
		ZipfS:      1.15,
		MinTerms:   1,
		MaxTerms:   4,
		Objects:    int(float64(g.NumNodes()) * 1.9),
		SnapJitter: 30,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("dataset: NY objects: %w", err)
	}
	return assemble("NY", g, corpus, cfg)
}

// USANWLike builds the northwest-USA-style dataset: a sparser random
// geometric network over ~30×30 km with one object per node (the paper
// generates exactly |V| objects) and a larger tag-style vocabulary.
func USANWLike(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	nodes := int(5000 * cfg.Scale)
	if nodes < 100 {
		nodes = 100
	}
	g, err := gen.GeometricNetwork(gen.GeometricConfig{
		Nodes:     nodes,
		Width:     30000,
		Height:    30000,
		Neighbors: 2,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("dataset: USANW network: %w", err)
	}
	corpus, err := gen.PlaceObjects(g, gen.TextConfig{
		VocabSize:  2500,
		ZipfS:      1.1,
		MinTerms:   1,
		MaxTerms:   6, // tag sets are longer than business categories
		Objects:    g.NumNodes(),
		SnapJitter: 50,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("dataset: USANW objects: %w", err)
	}
	return assemble("USANW", g, corpus, cfg)
}

func assemble(name string, g *roadnet.Graph, corpus *gen.Corpus, cfg Config) (*Dataset, error) {
	bounds := corpus.Bounds(g, 100)
	idx, err := grid.NewIndex(corpus.Objects, bounds, cfg.CellSize, cfg.Store)
	if err != nil {
		return nil, fmt.Errorf("dataset: index: %w", err)
	}
	return &Dataset{
		Name:    name,
		Graph:   g,
		Vocab:   corpus.Vocab,
		Objects: corpus.Objects,
		ObjNode: corpus.ObjNode,
		Ratings: corpus.Ratings,
		Index:   idx,
	}, nil
}

// Close releases the posting store backing the index when it is
// disk-backed (a no-op for the in-memory store). The dataset must not be
// queried afterwards.
func (d *Dataset) Close() error {
	if c, ok := d.Index.Store().(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// sqrtScale converts a count multiplier into a grid-side multiplier.
func sqrtScale(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return math.Sqrt(s)
}
