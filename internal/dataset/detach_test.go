package dataset

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/roadnet"
)

// TestDetachOutlivesPlanner is the contract behind Detach: a detached
// instance equals a fresh instantiation of its query, stays equal after
// the owning planner's buffers have been clobbered by other queries, and
// solves through its own scratch to the same region.
func TestDetachOutlivesPlanner(t *testing.T) {
	d, err := NYLike(Config{Seed: 9, Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	queries, err := d.GenQueries(rng, 6, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	p := d.NewPlanner()
	detached := make([]*QueryInstance, len(queries))
	for i, q := range queries {
		qi, err := p.Instantiate(q)
		if err != nil {
			t.Fatal(err)
		}
		if detached[i], err = qi.Detach(); err != nil {
			t.Fatal(err)
		}
	}
	// Every planner buffer now holds the last query; each detached copy
	// must still match a fresh instantiation of its own query.
	for i, q := range queries {
		fresh, err := d.Instantiate(q)
		if err != nil {
			t.Fatal(err)
		}
		got := detached[i]
		if got.In.NumNodes != fresh.In.NumNodes || len(got.In.Edges) != len(fresh.In.Edges) {
			t.Fatalf("query %d: detached graph is %d nodes / %d edges, want %d / %d",
				i, got.In.NumNodes, len(got.In.Edges), fresh.In.NumNodes, len(fresh.In.Edges))
		}
		for v := range fresh.In.Weights {
			if got.In.Weights[v] != fresh.In.Weights[v] {
				t.Fatalf("query %d: weight[%d] = %v, want %v", i, v, got.In.Weights[v], fresh.In.Weights[v])
			}
		}
		for v := range fresh.Sub.ToParent {
			if got.Sub.ToParent[v] != fresh.Sub.ToParent[v] {
				t.Fatalf("query %d: ToParent[%d] differs", i, v)
			}
			if got.Sub.Local(fresh.Sub.ToParent[v]) != roadnet.NodeID(v) {
				t.Fatalf("query %d: Local(%d) broken on the detached subgraph", i, fresh.Sub.ToParent[v])
			}
		}
		for v := range fresh.NodeObjects {
			if len(got.NodeObjects[v]) != len(fresh.NodeObjects[v]) {
				t.Fatalf("query %d: node %d object count differs", i, v)
			}
		}
		if got.Scratch == fresh.Scratch || got.Scratch == nil {
			t.Fatalf("query %d: detached scratch must be its own", i)
		}
		// Solving the detached instance must reproduce the fresh answer.
		ctx := context.Background()
		wantR, err := core.SolveTGEN(ctx, fresh.Scratch, fresh.In, queries[i].Delta, core.TGENOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gotR, err := core.SolveTGEN(ctx, got.Scratch, got.In, queries[i].Delta, core.TGENOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if (wantR == nil) != (gotR == nil) {
			t.Fatalf("query %d: matched mismatch", i)
		}
		if wantR != nil && (wantR.Score != gotR.Score || wantR.Length != gotR.Length) {
			t.Fatalf("query %d: detached solve = (%v, %v), want (%v, %v)",
				i, gotR.Score, gotR.Length, wantR.Score, wantR.Length)
		}
	}
}
