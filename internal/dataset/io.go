package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// The dataset file format extends the roadnet format with object records:
//
//	# comment
//	d <name>
//	g <numNodes> <numEdges>
//	v <id> <x> <y>
//	e <u> <v> <length>
//	o <x> <y> <token> [token...]
//
// Everything the query pipeline needs (vocabulary statistics, term
// weights, grid index, node snapping) is rebuilt on load, so the file
// stays a plain declarative record of the data.

// WriteTo serializes the dataset (network + objects). Token text is
// reconstructed from the vocabulary; term multiplicities within one
// object are not preserved exactly (the normalized weights are rebuilt
// from the written tokens on load).
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "d %s\n", d.Name)); err != nil {
		return n, err
	}
	nw, err := d.Graph.WriteTo(bw)
	n += nw
	if err != nil {
		return n, err
	}
	for _, o := range d.Objects {
		var sb strings.Builder
		for _, t := range o.Doc.Terms {
			sb.WriteByte(' ')
			sb.WriteString(d.Vocab.Term(t))
		}
		if err := count(fmt.Fprintf(bw, "o %s %s%s\n",
			strconv.FormatFloat(o.Point.X, 'g', -1, 64),
			strconv.FormatFloat(o.Point.Y, 'g', -1, 64),
			sb.String())); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a dataset written by WriteTo and rebuilds all indexes.
func Read(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	name := "unnamed"
	var graphLines, objLines []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch text[0] {
		case 'd':
			fields := strings.Fields(text)
			if len(fields) != 2 {
				return nil, fmt.Errorf("dataset: line %d: malformed name record %q", lineNo, text)
			}
			name = fields[1]
		case 'o':
			objLines = append(objLines, text)
		default:
			graphLines = append(graphLines, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	g, err := roadnet.Read(strings.NewReader(strings.Join(graphLines, "\n")))
	if err != nil {
		return nil, err
	}
	var inputs []ObjectInput
	for i, line := range objLines {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("dataset: object %d: need x y and ≥1 token, got %q", i, line)
		}
		x, err1 := strconv.ParseFloat(fields[1], 64)
		y, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("dataset: object %d: bad coordinates %q", i, line)
		}
		inputs = append(inputs, ObjectInput{
			Point: geo.Point{X: x, Y: y},
			Text:  strings.Join(fields[3:], " "),
		})
	}
	return FromObjects(name, g, inputs)
}
