package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/roadnet"
	"repro/internal/textindex"
)

// WeightMode selects how object scores become node weights, per §2:
// "Our proposal is open to different definitions of an object's weight:
// popularity as measured by numbers of check-ins, user ratings, degree of
// relevance to the query keywords, etc."
type WeightMode int

const (
	// WeightRelevance scores each matching object by its text relevance
	// σ(o.ψ, Q.ψ) (the default, used throughout the paper's evaluation).
	WeightRelevance WeightMode = iota
	// WeightRating scores each matching object by its rating/popularity
	// ("its score will be the object's rating or popularity if it matches
	// the query keywords and zero otherwise").
	WeightRating
	// WeightLanguageModel scores each matching object with the Dirichlet-
	// smoothed language model (§3: "other models can also be used, e.g.,
	// the language model").
	WeightLanguageModel
)

// Query is a full LCMSR query Q = ⟨ψ, ∆, Λ⟩ (Definition 3).
type Query struct {
	Keywords []string
	Delta    float64  // length constraint, metres
	Lambda   geo.Rect // region of interest
	Mode     WeightMode
	// Trace asks the planner to record the grid search's scan/skip
	// decisions (see grid.SearchTrace); the result surfaces as
	// QueryInstance.SearchTrace. Off by default: the untraced search path
	// is unchanged and allocation-free.
	Trace bool
}

// GenQueries generates a workload as §7.1 does: each query's rectangle has
// the given area, centred at the location of a randomly chosen object (so
// query regions follow the network distribution), clamped inside the data
// bounds; keywords are sampled from the terms appearing on objects inside
// the rectangle, weighted by their in-region frequency.
func (d *Dataset) GenQueries(rng *rand.Rand, count, numKeywords int, areaM2, delta float64) ([]Query, error) {
	if count < 1 || numKeywords < 1 {
		return nil, fmt.Errorf("dataset: need positive count and keywords, got %d, %d", count, numKeywords)
	}
	if areaM2 <= 0 || delta <= 0 {
		return nil, fmt.Errorf("dataset: need positive area and ∆, got %v, %v", areaM2, delta)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.Objects) == 0 {
		return nil, fmt.Errorf("dataset: no objects to anchor queries")
	}
	bbox := d.Graph.BBox()
	out := make([]Query, 0, count)
	for attempts := 0; len(out) < count && attempts < count*50; attempts++ {
		anchor := d.Objects[rng.Intn(len(d.Objects))].Point
		rect := clampRect(geo.RectAround(anchor, areaM2), bbox)
		// In-region term frequencies.
		freq := make(map[textindex.TermID]int)
		for _, o := range d.Objects {
			if !rect.Contains(o.Point) {
				continue
			}
			for _, t := range o.Doc.Terms {
				freq[t]++
			}
		}
		kws := sampleTerms(d.Vocab, freq, numKeywords, rng)
		if len(kws) < numKeywords {
			continue // too few distinct terms in this region; redraw
		}
		out = append(out, Query{Keywords: kws, Delta: delta, Lambda: rect})
	}
	if len(out) < count {
		return nil, fmt.Errorf("dataset: could only generate %d of %d queries (regions too sparse)", len(out), count)
	}
	return out, nil
}

// GenHotspotQueries generates a Zipfian hot-spot workload: `hotspots`
// distinct base queries (built exactly as GenQueries builds them) replayed
// `count` times with Zipf(zipfS) popularity — the first base query is the
// hottest. This is the shape of real map traffic (everyone queries
// downtown), and the workload where per-(cell, query) score caching pays:
// a handful of (rectangle, keywords) pairs account for most of the stream.
func (d *Dataset) GenHotspotQueries(rng *rand.Rand, count, hotspots, numKeywords int, areaM2, delta, zipfS float64) ([]Query, error) {
	if hotspots < 1 {
		return nil, fmt.Errorf("dataset: need at least one hot spot, got %d", hotspots)
	}
	base, err := d.GenQueries(rng, hotspots, numKeywords, areaM2, delta)
	if err != nil {
		return nil, err
	}
	mix, err := gen.ZipfQueryMix(rng, zipfS, len(base), count)
	if err != nil {
		return nil, err
	}
	out := make([]Query, len(mix))
	for i, p := range mix {
		out[i] = base[p]
	}
	return out, nil
}

// clampRect translates r so it fits inside bounds (shrinking if larger).
func clampRect(r, bounds geo.Rect) geo.Rect {
	if r.Width() > bounds.Width() {
		r.MinX, r.MaxX = bounds.MinX, bounds.MaxX
	} else {
		if r.MinX < bounds.MinX {
			d := bounds.MinX - r.MinX
			r.MinX += d
			r.MaxX += d
		}
		if r.MaxX > bounds.MaxX {
			d := r.MaxX - bounds.MaxX
			r.MinX -= d
			r.MaxX -= d
		}
	}
	if r.Height() > bounds.Height() {
		r.MinY, r.MaxY = bounds.MinY, bounds.MaxY
	} else {
		if r.MinY < bounds.MinY {
			d := bounds.MinY - r.MinY
			r.MinY += d
			r.MaxY += d
		}
		if r.MaxY > bounds.MaxY {
			d := r.MaxY - bounds.MaxY
			r.MinY -= d
			r.MaxY -= d
		}
	}
	return r
}

// sampleTerms draws distinct terms proportionally to their frequency.
func sampleTerms(v *textindex.Vocabulary, freq map[textindex.TermID]int, n int, rng *rand.Rand) []string {
	type tf struct {
		t textindex.TermID
		f int
	}
	pool := make([]tf, 0, len(freq))
	total := 0
	for t, f := range freq {
		pool = append(pool, tf{t, f})
		total += f
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].t < pool[j].t }) // determinism
	var out []string
	for len(out) < n && len(pool) > 0 && total > 0 {
		r := rng.Intn(total)
		idx := 0
		for acc := 0; idx < len(pool); idx++ {
			acc += pool[idx].f
			if r < acc {
				break
			}
		}
		if idx >= len(pool) {
			idx = len(pool) - 1
		}
		out = append(out, v.Term(pool[idx].t))
		total -= pool[idx].f
		pool = append(pool[:idx], pool[idx+1:]...)
	}
	return out
}

// QueryInstance is the materialized per-query working graph handed to the
// core algorithms, plus the bookkeeping needed to interpret results.
type QueryInstance struct {
	In  *core.Instance
	Sub *roadnet.Subgraph
	// NodeObjects[v] lists the relevant objects (positive σ) snapped to
	// local node v.
	NodeObjects [][]grid.ObjectID
	// Prepared is the IR-model view of the keywords.
	Prepared textindex.Query
	// Scratch is the owning planner's pooled solver state. Solvers run
	// through it (queryengine.Solve does) reuse per-query working memory;
	// their result regions are valid only until the next solve on the same
	// planner. Always set by Planner.Instantiate.
	Scratch *core.SolveScratch
	// SearchTrace records the grid search's scan/skip decisions when the
	// query set Trace (nil otherwise). Like the rest of the instance it
	// aliases the owning planner's pooled state: read it before the next
	// Instantiate on the same planner, copy it to keep it.
	SearchTrace *grid.SearchTrace
}

// Instantiate restricts the road network to Q.Λ, scores the objects inside
// it against the keywords through the grid index (Equation 2), and
// aggregates object scores onto their road nodes: a node's weight σv is
// the summed relevance of the objects mapped to it, zero for junctions and
// irrelevant objects.
//
// Each call allocates a fresh Planner, so the returned QueryInstance is
// independent of later calls; query loops should pool a Planner instead.
func (d *Dataset) Instantiate(q Query) (*QueryInstance, error) {
	return d.NewPlanner().Instantiate(q)
}

// Detach returns a self-contained deep copy of qi: the subgraph is
// compact-copied (roadnet.Subgraph.Compact — no parent-sized remap
// arrays, no aliasing of extractor scratch), the instance, object lists,
// and prepared query get fresh right-sized storage, and the solver
// scratch is its own. The copy stays valid across later Instantiate
// calls on the owning planner and retains O(subgraph) memory, so a
// driver can pin one instance per query of a workload (see
// internal/experiments) while still instantiating through one pooled
// planner.
func (qi *QueryInstance) Detach() (*QueryInstance, error) {
	in, err := core.NewInstance(qi.In.NumNodes,
		append([]core.Edge(nil), qi.In.Edges...),
		append([]float64(nil), qi.In.Weights...))
	if err != nil {
		return nil, fmt.Errorf("dataset: detach: %w", err)
	}
	nodeObjs := make([][]grid.ObjectID, len(qi.NodeObjects))
	for i, objs := range qi.NodeObjects {
		if len(objs) > 0 {
			nodeObjs[i] = append([]grid.ObjectID(nil), objs...)
		}
	}
	prepared := qi.Prepared
	prepared.Terms = append([]textindex.TermID(nil), qi.Prepared.Terms...)
	prepared.IDF = append([]float64(nil), qi.Prepared.IDF...)
	var trace *grid.SearchTrace
	if qi.SearchTrace != nil {
		t := *qi.SearchTrace
		trace = &t
	}
	return &QueryInstance{
		In:          in,
		Sub:         qi.Sub.Compact(),
		NodeObjects: nodeObjs,
		Prepared:    prepared,
		Scratch:     &core.SolveScratch{},
		SearchTrace: trace,
	}, nil
}

// rating returns the object's popularity score (1 when none recorded).
func (d *Dataset) rating(id grid.ObjectID) float64 {
	if int(id) >= len(d.Ratings) {
		return 1
	}
	return d.Ratings[id]
}

// RegionObjects counts and lists the relevant objects inside a region
// returned by the core algorithms (local node IDs).
func (qi *QueryInstance) RegionObjects(r *core.Region) []grid.ObjectID {
	var out []grid.ObjectID
	if r == nil {
		return nil
	}
	for _, v := range r.Nodes {
		out = append(out, qi.NodeObjects[v]...)
	}
	return out
}
