package dataset

import (
	"math/rand"
	"testing"
)

// TestPlannerMatchesInstantiate runs a workload twice — once through a
// single pooled Planner and once through Dataset.Instantiate (fresh state
// per query) — and demands identical working graphs.
func TestPlannerMatchesInstantiate(t *testing.T) {
	d, err := NYLike(Config{Seed: 9, Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	queries, err := d.GenQueries(rng, 6, 3, 25e6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	queries[1].Mode = WeightRating
	queries[2].Mode = WeightLanguageModel
	p := d.NewPlanner()
	for qi, q := range queries {
		pooled, err := p.Instantiate(q)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := d.Instantiate(q)
		if err != nil {
			t.Fatal(err)
		}
		if pooled.In.NumNodes != fresh.In.NumNodes {
			t.Fatalf("query %d: %d nodes, want %d", qi, pooled.In.NumNodes, fresh.In.NumNodes)
		}
		if len(pooled.In.Edges) != len(fresh.In.Edges) {
			t.Fatalf("query %d: %d edges, want %d", qi, len(pooled.In.Edges), len(fresh.In.Edges))
		}
		for i := range fresh.In.Edges {
			if pooled.In.Edges[i] != fresh.In.Edges[i] {
				t.Fatalf("query %d: edge %d = %+v, want %+v", qi, i, pooled.In.Edges[i], fresh.In.Edges[i])
			}
		}
		for v := range fresh.In.Weights {
			if pooled.In.Weights[v] != fresh.In.Weights[v] {
				t.Fatalf("query %d: weight[%d] = %v, want %v", qi, v, pooled.In.Weights[v], fresh.In.Weights[v])
			}
		}
		for v := range fresh.Sub.ToParent {
			if pooled.Sub.ToParent[v] != fresh.Sub.ToParent[v] {
				t.Fatalf("query %d: ToParent[%d] differs", qi, v)
			}
		}
		for v := range fresh.NodeObjects {
			if len(pooled.NodeObjects[v]) != len(fresh.NodeObjects[v]) {
				t.Fatalf("query %d: node %d has %d objects, want %d",
					qi, v, len(pooled.NodeObjects[v]), len(fresh.NodeObjects[v]))
			}
			for i := range fresh.NodeObjects[v] {
				if pooled.NodeObjects[v][i] != fresh.NodeObjects[v][i] {
					t.Fatalf("query %d: NodeObjects[%d][%d] differs", qi, v, i)
				}
			}
		}
	}
}

// TestInstantiateDeterministic guards the deterministic accumulation order:
// two independent instantiations of the same query must agree bit-for-bit
// on node weights (grid.Index.Search sorts its results for this).
func TestInstantiateDeterministic(t *testing.T) {
	d, err := USANWLike(Config{Seed: 5, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	queries, err := d.GenQueries(rng, 3, 3, 50e6, 8000)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		a, err := d.Instantiate(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Instantiate(q)
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.In.Weights {
			if a.In.Weights[v] != b.In.Weights[v] {
				t.Fatalf("query %d: weight[%d] differs between runs: %v vs %v",
					qi, v, a.In.Weights[v], b.In.Weights[v])
			}
		}
	}
}
