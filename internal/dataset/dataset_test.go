package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/roadnet"
)

// smallNY builds a fast, reduced NY-like dataset shared by tests.
func smallNY(t *testing.T) *Dataset {
	t.Helper()
	d, err := NYLike(Config{Seed: 7, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNYLikeBuilds(t *testing.T) {
	d := smallNY(t)
	if d.Name != "NY" {
		t.Errorf("name = %q", d.Name)
	}
	if d.Graph.NumNodes() < 300 {
		t.Errorf("nodes = %d, want a few hundred at scale 0.1", d.Graph.NumNodes())
	}
	if len(d.Objects) < d.Graph.NumNodes() {
		t.Errorf("objects = %d, want ≥ nodes", len(d.Objects))
	}
	if len(d.ObjNode) != len(d.Objects) {
		t.Error("ObjNode misaligned")
	}
	if comps := d.Graph.Components(); len(comps) != 1 {
		t.Errorf("NY graph has %d components", len(comps))
	}
}

func TestUSANWLikeBuilds(t *testing.T) {
	d, err := USANWLike(Config{Seed: 7, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph.NumNodes() < 400 {
		t.Errorf("nodes = %d", d.Graph.NumNodes())
	}
	if len(d.Objects) != d.Graph.NumNodes() {
		t.Errorf("USANW should have one object per node, got %d for %d nodes",
			len(d.Objects), d.Graph.NumNodes())
	}
	if comps := d.Graph.Components(); len(comps) != 1 {
		t.Errorf("USANW graph has %d components", len(comps))
	}
}

func TestDeterminism(t *testing.T) {
	a, err := NYLike(Config{Seed: 3, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NYLike(Config{Seed: 3, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Error("same seed produced different graphs")
	}
	if len(a.Objects) != len(b.Objects) {
		t.Error("same seed produced different object counts")
	}
	for i := range a.Objects {
		if a.Objects[i].Point != b.Objects[i].Point {
			t.Fatal("same seed produced different object placements")
		}
	}
}

func TestGenQueriesShape(t *testing.T) {
	d := smallNY(t)
	rng := rand.New(rand.NewSource(11))
	const area = 4e6 // 4 km²  (scaled-down dataset)
	qs, err := d.GenQueries(rng, 10, 3, area, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Fatalf("got %d queries", len(qs))
	}
	bbox := d.Graph.BBox()
	for i, q := range qs {
		if len(q.Keywords) != 3 {
			t.Errorf("query %d has %d keywords", i, len(q.Keywords))
		}
		if q.Delta != 3000 {
			t.Errorf("query %d ∆ = %v", i, q.Delta)
		}
		if q.Lambda.Area() > area*1.01 {
			t.Errorf("query %d area = %v, want ≤ %v", i, q.Lambda.Area(), area)
		}
		if q.Lambda.MinX < bbox.MinX-1 || q.Lambda.MaxX > bbox.MaxX+1 {
			t.Errorf("query %d Λ leaves the data bounds", i)
		}
		// Keywords must be distinct.
		seen := map[string]bool{}
		for _, kw := range q.Keywords {
			if seen[kw] {
				t.Errorf("query %d repeats keyword %q", i, kw)
			}
			seen[kw] = true
		}
	}
}

func TestGenQueriesValidation(t *testing.T) {
	d := smallNY(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := d.GenQueries(rng, 0, 3, 1e6, 1000); err == nil {
		t.Error("count 0 accepted")
	}
	if _, err := d.GenQueries(rng, 1, 0, 1e6, 1000); err == nil {
		t.Error("0 keywords accepted")
	}
	if _, err := d.GenQueries(rng, 1, 3, -1, 1000); err == nil {
		t.Error("negative area accepted")
	}
	if _, err := d.GenQueries(rng, 1, 3, 1e6, 0); err == nil {
		t.Error("zero ∆ accepted")
	}
}

func TestInstantiateEndToEnd(t *testing.T) {
	d := smallNY(t)
	rng := rand.New(rand.NewSource(21))
	qs, err := d.GenQueries(rng, 5, 2, 4e6, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		qi, err := d.Instantiate(q)
		if err != nil {
			t.Fatal(err)
		}
		if qi.In.NumNodes == 0 {
			t.Fatalf("query %d: empty instance", i)
		}
		// Some node must be relevant (keywords were sampled in-region).
		maxW, _ := qi.In.MaxWeight()
		if maxW <= 0 {
			t.Fatalf("query %d: no relevant node despite in-region keyword sampling", i)
		}
		// Node weights must equal the summed scores of their objects.
		for v := 0; v < qi.In.NumNodes; v++ {
			var sum float64
			for _, obj := range qi.NodeObjects[v] {
				o := d.Objects[obj]
				sum += qi.Prepared.Score(&o.Doc)
			}
			if diff := sum - qi.In.Weights[v]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("query %d node %d: weight %v but object scores sum to %v",
					i, v, qi.In.Weights[v], sum)
			}
		}
		// Run the three algorithms end to end.
		alpha := 0.5
		app, err := core.APP(qi.In, q.Delta, core.APPOptions{Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		tgAlpha := float64(qi.In.NumNodes) / 8 // σ̂max ≈ 8
		tg, err := core.TGEN(qi.In, q.Delta, core.TGENOptions{Alpha: tgAlpha})
		if err != nil {
			t.Fatal(err)
		}
		gr, err := core.Greedy(qi.In, q.Delta, core.GreedyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if app == nil || tg == nil || gr == nil {
			t.Fatalf("query %d: nil region (app=%v tgen=%v greedy=%v)", i, app, tg, gr)
		}
		if objs := qi.RegionObjects(tg); len(objs) == 0 {
			t.Errorf("query %d: TGEN region contains no relevant objects", i)
		}
	}
}

func TestRegionObjectsNil(t *testing.T) {
	qi := &QueryInstance{}
	if qi.RegionObjects(nil) != nil {
		t.Error("nil region should give nil objects")
	}
}

func TestClampRect(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	r := clampRect(geo.Rect{MinX: -10, MinY: 50, MaxX: 10, MaxY: 70}, bounds)
	if r.MinX != 0 || r.MaxX != 20 {
		t.Errorf("clamp left: %v", r)
	}
	r = clampRect(geo.Rect{MinX: 95, MinY: 95, MaxX: 115, MaxY: 115}, bounds)
	if r.MaxX != 100 || r.MaxY != 100 || r.MinX != 80 {
		t.Errorf("clamp corner: %v", r)
	}
	// Oversized rect collapses to the bounds.
	r = clampRect(geo.Rect{MinX: -50, MinY: -50, MaxX: 500, MaxY: 500}, bounds)
	if r != bounds {
		t.Errorf("oversize clamp: %v", r)
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	d, err := NYLike(Config{Seed: 13, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != d.Name {
		t.Errorf("name %q != %q", d2.Name, d.Name)
	}
	if d2.Graph.NumNodes() != d.Graph.NumNodes() || d2.Graph.NumEdges() != d.Graph.NumEdges() {
		t.Fatal("graph size changed in round trip")
	}
	if len(d2.Objects) != len(d.Objects) {
		t.Fatalf("objects %d != %d", len(d2.Objects), len(d.Objects))
	}
	// Same query must yield comparable results on both copies.
	rng := rand.New(rand.NewSource(77))
	qs, err := d.GenQueries(rng, 3, 2, 4e6, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		a, err := d.Instantiate(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d2.Instantiate(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.In.NumNodes != b.In.NumNodes {
			t.Fatalf("query %d: instance sizes differ", i)
		}
		ra, err := core.TGEN(a.In, q.Delta, core.TGENOptions{Alpha: float64(a.In.NumNodes) / 8})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := core.TGEN(b.In, q.Delta, core.TGENOptions{Alpha: float64(b.In.NumNodes) / 8})
		if err != nil {
			t.Fatal(err)
		}
		// Scores may differ in the last bits (tf multiplicities are not
		// preserved exactly), but the answers must be close.
		if ra == nil || rb == nil {
			t.Fatalf("query %d: nil region after round trip", i)
		}
		if rb.Score < 0.5*ra.Score || rb.Score > 2*ra.Score {
			t.Errorf("query %d: scores diverged: %v vs %v", i, ra.Score, rb.Score)
		}
	}
}

func TestDatasetReadRejectsMalformed(t *testing.T) {
	bad := []string{
		"d\n",                                 // short name record
		"o 1 2\n",                             // object with no tokens
		"o x y cafe\n",                        // bad coordinates
		"g 1 0\nv 0 0 0\no 0 0 cafe\nq foo\n", // unknown record type
	}
	for _, in := range bad {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestFromObjectsValidation(t *testing.T) {
	g := roadnet.NewBuilder().Build()
	if _, err := FromObjects("x", g, []ObjectInput{{Text: "a"}}); err == nil {
		t.Error("empty graph accepted")
	}
	b := roadnet.NewBuilder()
	b.AddNode(geo.Point{})
	if _, err := FromObjects("x", b.Build(), nil); err == nil {
		t.Error("no objects accepted")
	}
}

func TestWeightRatingMode(t *testing.T) {
	d := smallNY(t)
	rng := rand.New(rand.NewSource(31))
	qs, err := d.GenQueries(rng, 2, 2, 4e6, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		rel, err := d.Instantiate(q)
		if err != nil {
			t.Fatal(err)
		}
		q.Mode = WeightRating
		rat, err := d.Instantiate(q)
		if err != nil {
			t.Fatal(err)
		}
		// Same relevant node set, different weights: node weights under
		// rating mode equal the summed ratings of matching objects.
		for v := 0; v < rat.In.NumNodes; v++ {
			var want float64
			for _, obj := range rat.NodeObjects[v] {
				want += d.Ratings[obj]
			}
			if diff := want - rat.In.Weights[v]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("query %d node %d: rating weight %v, want %v",
					i, v, rat.In.Weights[v], want)
			}
			if (rel.In.Weights[v] > 0) != (rat.In.Weights[v] > 0) {
				t.Fatalf("query %d node %d: relevance/rating disagree on relevance", i, v)
			}
		}
		// Rating-weighted queries run end to end.
		r, err := core.Greedy(rat.In, q.Delta, core.GreedyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r == nil || r.Score <= 0 {
			t.Fatalf("query %d: no rating-mode region", i)
		}
	}
}
