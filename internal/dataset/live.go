package dataset

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/roadnet"
	"repro/internal/textindex"
)

// Live dataset mutations. Each mutator keeps the four coupled views
// consistent in one critical section: the grid index (postings + cell
// directory + object table), the vocabulary statistics (|D|, df, cf),
// the object→road-node snapping table and the ratings. The invariant the
// differential harness checks is that after any mutation sequence the
// dataset answers every query bit-identically to a fresh build of the
// same logical object set.

// Insert tokenizes text, interns any new terms, and adds the object at p
// to the index. It returns the new object's dense id. The text may be
// empty (the object still counts as a document). On an update failure the
// vocabulary mutation is rolled back; on ErrCompaction the insert IS
// applied (the error reports a failed background fold, retryable via
// Compact).
func (d *Dataset) Insert(p geo.Point, text string) (grid.ObjectID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	doc := d.Vocab.IndexDoc(textindex.Tokenize(text))
	strs := make([]string, len(doc.Terms))
	for i, t := range doc.Terms {
		strs[i] = d.Vocab.Term(t)
	}
	id, err := d.Index.Insert(p, doc, strs)
	if err != nil && !errors.Is(err, grid.ErrCompaction) {
		d.Vocab.UndoIndexDoc(doc)
		return 0, err
	}
	d.Objects = d.Index.ObjectsRef()
	d.ObjNode = append(d.ObjNode, d.Graph.NearestNode(p))
	if d.Ratings != nil {
		d.Ratings = append(d.Ratings, 1)
	}
	return id, err
}

// Delete tombstones an object: its postings disappear from every list
// and its terms leave the corpus statistics, but the id stays allocated
// and keeps counting as an empty document (so IDF ratios match a rebuild
// that indexes a placeholder empty document in its slot).
func (d *Dataset) Delete(id grid.ObjectID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) < 0 || int(id) >= len(d.Objects) {
		return fmt.Errorf("%w: id %d of %d", grid.ErrNoSuchObject, id, len(d.Objects))
	}
	doc := d.Objects[id].Doc
	err := d.Index.Delete(id)
	if err != nil && !errors.Is(err, grid.ErrCompaction) {
		return err
	}
	d.Vocab.RemoveDocStats(doc)
	return err
}

// Reweight scales an object's term weights by factor (the term set is
// fixed; changing terms is a Delete plus an Insert). Corpus statistics
// are untouched — only scores involving the object change.
func (d *Dataset) Reweight(id grid.ObjectID, factor float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor <= 0 {
		return fmt.Errorf("dataset: reweight factor %v out of range (want finite > 0)", factor)
	}
	if int(id) < 0 || int(id) >= len(d.Objects) {
		return fmt.Errorf("%w: id %d of %d", grid.ErrNoSuchObject, id, len(d.Objects))
	}
	old := d.Objects[id].Doc.Weights
	w := make([]float64, len(old))
	for i := range old {
		w[i] = old[i] * factor
	}
	return d.Index.Reweight(id, w)
}

// Compact folds pending live updates into the posting store and commits
// a metadata snapshot (vocabulary included). A no-op for memory-backed
// stores.
func (d *Dataset) Compact() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.Index.Compact()
}

// reassemble rebuilds a Dataset over a previously persisted store. The
// road network and base corpus are regenerated deterministically from the
// config seed (they are not persisted); the index state comes from the
// store's committed metadata plus WAL replay, and the vocabulary from the
// metadata's snapshot blob patched with the replayed updates' term
// statistics. A store that was populated but never carried a metadata
// snapshot (single-file B+-tree layout, or a store from before the
// live-update format) falls back to deriving the index from the corpus
// objects — correct as long as no live updates were ever applied to it.
func reassemble(name string, g *roadnet.Graph, corpus *gen.Corpus, bounds geo.Rect, cfg Config) (*Dataset, error) {
	idx, err := grid.NewIndexOver(corpus.Objects, bounds, cfg.CellSize, cfg.Store)
	if err != nil {
		return nil, fmt.Errorf("dataset: reopen index: %w", err)
	}
	d := &Dataset{
		Name:    name,
		Graph:   g,
		ObjNode: corpus.ObjNode,
		Ratings: corpus.Ratings,
		Index:   idx,
	}
	blob := idx.MetaExtra()
	if blob == nil {
		// No snapshot: the index was derived from the corpus objects, so
		// the regenerated corpus vocabulary is exact.
		d.Vocab = corpus.Vocab
		d.Objects = corpus.Objects
	} else {
		vocab, err := textindex.DecodeVocabulary(blob)
		if err != nil {
			return nil, fmt.Errorf("dataset: vocabulary snapshot: %w", err)
		}
		d.Vocab = vocab
		d.Objects = idx.ObjectsRef()
		// The snapshot covers everything at or below the metadata's
		// high-water mark; replayed WAL records patch the statistics the
		// same way the live mutators did.
		for _, u := range idx.Replayed() {
			switch u.Kind {
			case grid.UpdateInsert:
				for i, s := range u.Strs {
					if err := vocab.EnsureTerm(s, u.Terms[i]); err != nil {
						return nil, fmt.Errorf("dataset: replayed insert %d: %w", u.Obj, err)
					}
				}
				vocab.AddDocStats(textindex.Doc{Terms: u.Terms, TF: u.TF})
			case grid.UpdateDelete:
				if int(u.Obj) >= len(d.Objects) {
					return nil, fmt.Errorf("dataset: replayed delete of unknown object %d", u.Obj)
				}
				vocab.RemoveDocStats(d.Objects[u.Obj].Doc)
			}
		}
		// Tail objects (inserted live before the last close) need snapping
		// and ratings rows; base rows came with the regenerated corpus.
		for id := idx.BaseObjects(); id < len(d.Objects); id++ {
			d.ObjNode = append(d.ObjNode, g.NearestNode(d.Objects[id].Point))
			if d.Ratings != nil {
				d.Ratings = append(d.Ratings, 1)
			}
		}
	}
	vocab := d.Vocab
	idx.SetMetaExtra(func() []byte { return vocab.EncodeSnapshot() })
	return d, nil
}
