package dataset

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/roadnet"
	"repro/internal/textindex"
)

// ObjectInput is a caller-supplied geo-textual object for FromObjects.
type ObjectInput struct {
	Point geo.Point
	Text  string
}

// FromObjects assembles a Dataset from an existing road network and raw
// objects: descriptions are tokenized and indexed under the vector space
// model, objects snap to their nearest road node, and the grid index is
// built with a cell size derived from the network extent.
func FromObjects(name string, g *roadnet.Graph, objects []ObjectInput) (*Dataset, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("dataset: empty road network")
	}
	if len(objects) == 0 {
		return nil, fmt.Errorf("dataset: no objects")
	}
	vocab := textindex.NewVocabulary()
	objs := make([]grid.Object, len(objects))
	objNode := make([]roadnet.NodeID, len(objects))
	bounds := g.BBox()
	for i, o := range objects {
		objs[i] = grid.Object{Point: o.Point, Doc: vocab.IndexDoc(textindex.Tokenize(o.Text))}
		objNode[i] = g.NearestNode(o.Point)
		if !bounds.Contains(o.Point) {
			bounds = extend(bounds, o.Point)
		}
	}
	bounds = bounds.Expand(1)
	// Aim for a grid of roughly 64x64 cells over the extent.
	cell := bounds.Width() / 64
	if h := bounds.Height() / 64; h > cell {
		cell = h
	}
	if cell <= 0 {
		cell = 1
	}
	idx, err := grid.NewIndex(objs, bounds, cell, nil)
	if err != nil {
		return nil, fmt.Errorf("dataset: index: %w", err)
	}
	return &Dataset{
		Name:    name,
		Graph:   g,
		Vocab:   vocab,
		Objects: objs,
		ObjNode: objNode,
		Index:   idx,
	}, nil
}

func extend(r geo.Rect, p geo.Point) geo.Rect {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
	return r
}
