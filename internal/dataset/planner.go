package dataset

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/roadnet"
	"repro/internal/textindex"
)

// Planner materializes query working graphs with pooled per-worker scratch
// state: a roadnet.Extractor for zero-allocation subgraph extraction, a
// core.Instance whose CSR adjacency is rebuilt in place, reusable
// weight/edge/object buffers, and a core.SolveScratch so the solve phase
// (SolveTGEN/SolveAPP/SolveGreedy) runs allocation-free too. One planner
// serves one query at a time: the QueryInstance returned by Instantiate
// aliases the planner's buffers and is valid only until the next
// Instantiate call on the same planner; a region produced through the
// planner's SolveScratch is valid only until the next solve on it.
//
// A Planner is not safe for concurrent use; pool one per worker (see
// internal/queryengine). Dataset.Instantiate remains the convenience path
// that allocates a fresh planner per call.
type Planner struct {
	d  *Dataset
	ex *roadnet.Extractor

	inst     core.Instance
	weights  []float64
	edges    []core.Edge
	nodeObjs [][]grid.ObjectID
	qscratch textindex.QueryScratch
	sscratch grid.SearchScratch
	strace   grid.SearchTrace
	solve    core.SolveScratch
	qi       QueryInstance
}

// NewPlanner returns a planner with empty scratch state for d.
func (d *Dataset) NewPlanner() *Planner {
	return &Planner{d: d, ex: roadnet.NewExtractor(d.Graph)}
}

// SolveScratch exposes the planner's pooled solver scratch for callers
// that drive the core solvers directly.
func (p *Planner) SolveScratch() *core.SolveScratch { return &p.solve }

// Instantiate restricts the road network to Q.Λ, scores the objects inside
// it against the keywords through the grid index (Equation 2), and
// aggregates object scores onto their road nodes: a node's weight σv is
// the summed relevance of the objects mapped to it, zero for junctions and
// irrelevant objects. The result aliases the planner's pooled buffers.
func (p *Planner) Instantiate(q Query) (*QueryInstance, error) {
	return p.InstantiateCtx(context.Background(), q)
}

// InstantiateCtx is Instantiate with a request context: when the dataset
// has a SearchFunc installed (distributed serving), ctx carries the
// request deadline down to the remote scatter. The local search path
// ignores ctx.
func (p *Planner) InstantiateCtx(ctx context.Context, q Query) (*QueryInstance, error) {
	d := p.d
	// Reads of Vocab/Objects/ObjNode/Ratings race with live mutators;
	// hold the dataset read lock for the whole materialization.
	d.mu.RLock()
	defer d.mu.RUnlock()
	sub := p.ex.ExtractRect(q.Lambda)
	prepared := d.Vocab.PrepareQueryInto(q.Keywords, &p.qscratch)
	// The grid index finds the matching objects (an object matches iff it
	// shares a term with the query, identically under all weight modes);
	// the mode then decides the weight each match contributes. The pooled
	// SearchInto/PrepareQueryInto variants keep the steady-state relevance
	// path allocation-free (the language-model side path still allocates
	// its LMQuery).
	// Tracing points the pooled scratch at the planner's own trace for
	// this one search; untraced queries get a nil Trace so the search
	// stays on its hot branches. The trace is reset here, not by the
	// search, because a distributed search merges several partials into it.
	if q.Trace {
		p.strace.Clear()
		p.sscratch.Trace = &p.strace
	} else {
		p.sscratch.Trace = nil
	}
	var scores []grid.ObjScore
	var err error
	if d.searchFn != nil {
		scores, err = d.searchFn(ctx, prepared, q.Lambda, &p.sscratch)
	} else {
		scores, err = d.Index.SearchInto(prepared, q.Lambda, &p.sscratch)
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: index search: %w", err)
	}
	var lm textindex.LMQuery
	if q.Mode == WeightLanguageModel {
		lm = d.Vocab.PrepareLMQuery(q.Keywords, 0)
	}
	n := sub.NumNodes()
	p.weights = growTo(p.weights, n)
	for i := range p.weights {
		p.weights[i] = 0
	}
	if cap(p.nodeObjs) < n {
		p.nodeObjs = append(p.nodeObjs[:cap(p.nodeObjs)], make([][]grid.ObjectID, n-cap(p.nodeObjs))...)
	}
	p.nodeObjs = p.nodeObjs[:n]
	for i := range p.nodeObjs {
		p.nodeObjs[i] = p.nodeObjs[i][:0]
	}
	for _, os := range scores {
		parent := d.ObjNode[os.Obj]
		local := sub.Local(parent)
		if local < 0 {
			continue // object inside Λ but its node is outside
		}
		w := os.Score
		switch q.Mode {
		case WeightRating:
			w = d.rating(os.Obj)
		case WeightLanguageModel:
			w = lm.Score(&d.Objects[os.Obj].Doc)
		}
		p.weights[local] += w
		p.nodeObjs[local] = append(p.nodeObjs[local], os.Obj)
	}
	p.edges = p.edges[:0]
	for i := 0; i < sub.NumEdges(); i++ {
		e := sub.Edge(roadnet.EdgeID(i))
		p.edges = append(p.edges, core.Edge{U: int32(e.U), V: int32(e.V), Length: e.Length})
	}
	if err := p.inst.Reset(n, p.edges, p.weights); err != nil {
		return nil, fmt.Errorf("dataset: instance: %w", err)
	}
	p.qi = QueryInstance{In: &p.inst, Sub: sub, NodeObjects: p.nodeObjs, Prepared: prepared, Scratch: &p.solve}
	if q.Trace {
		p.qi.SearchTrace = &p.strace
	}
	return &p.qi, nil
}

// growTo returns s with length n, reusing its backing array when possible.
func growTo[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
