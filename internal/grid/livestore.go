package grid

import (
	"encoding/binary"
	"fmt"
	"runtime"

	"repro/internal/btree"
)

// Live-update surface of the sharded store: the WAL + memtable write
// path and the compaction protocol. The protocol's invariant is that at
// every write boundary the durable state is recoverable:
//
//  1. Flush: merge each shard's memtable into its tree (Put, or Delete
//     when a list empties) and Sync the tree. A crash mid-flush leaves
//     some trees new and some old — sound, because the WAL still holds
//     every record and re-overlaying absolute-weight records over an
//     already-flushed tree is idempotent.
//  2. CommitMeta: write the index meta into the next META.N slot
//     (double-slot, newest-valid-wins). A torn slot write destroys only
//     the slot being written; the other slot plus the untruncated WAL
//     still describe a consistent state.
//  3. TruncateWALs: only after the meta slot is durable. A crash before
//     truncation replays records the meta already covers — idempotent
//     again; a crash after truncation loses nothing because the meta
//     covers every truncated record.
//
// The Index layer (live.go) drives the three steps in that order and
// owns everything above the postings: cell directory, object table,
// vocabulary blob.

func defaultShards() int { return runtime.GOMAXPROCS(0) }

// ErrUpdatesUnsupported is returned by stores without a live-update path
// (the single-file BTreeStore layout). Migrate to a sharded store.
var ErrUpdatesUnsupported = fmt.Errorf("grid: this store layout does not support live updates")

// liveStore is the store surface the Index's mutation path dispatches
// on; *ShardedStore implements it.
type liveStore interface {
	Store
	ApplyUpdate(u *Update) error
	Flush() error
	CommitMeta(body []byte) error
	TruncateWALs() error
	ReplayedUpdates() []Update
	MetaSnapshot() (body []byte, lastOp uint64, ok bool)
	LastSeq() uint64
}

// ApplyUpdate assigns the update its global sequence number, appends it
// to the owning shard's WAL (one record, one write, one fsync) and folds
// it into the shard's memtable. The record is the unit of atomicity: an
// object lives in one cell, one cell lives on one shard, so a logical
// mutation is never split across logs.
func (s *ShardedStore) ApplyUpdate(u *Update) error {
	u.Seq = s.seq.Add(1)
	sh := &s.shards[s.ShardOf(CellKey{Cell: u.Cell})]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.tree == nil {
		return errStoreClosed
	}
	if err := sh.wal.Append(encodeUpdate(u)); err != nil {
		// Not applied to the memtable: an unacknowledged record must not
		// be served. The sequence number is consumed; gaps are harmless
		// (ordering is all that matters).
		return fmt.Errorf("grid: wal append: %w", err)
	}
	sh.mem.apply(u)
	return nil
}

// PendingOps returns the number of updates applied since the last flush,
// summed over shards — the compaction trigger's input.
func (s *ShardedStore) PendingOps() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.mem != nil {
			n += sh.mem.ops
		}
		sh.mu.Unlock()
	}
	return n
}

// Flush merges every shard's memtable into its tree and makes the trees
// durable. Shards flush serially in shard order and keys in sorted order,
// so the write sequence — and therefore every crash kill point — is
// deterministic for a given store state.
func (s *ShardedStore) Flush() error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.tree == nil {
			sh.mu.Unlock()
			return errStoreClosed
		}
		err := flushShardLocked(sh)
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("grid: flush shard %d: %w", i, err)
		}
	}
	return nil
}

// flushShardLocked folds the memtable into the tree and commits the tree
// durably. It syncs even with an empty memtable — the genesis commit
// after a batch build relies on that to make the build's Appends durable.
func flushShardLocked(sh *storeShard) error {
	for _, key := range sh.mem.dirtyKeys() {
		raw, err := sh.tree.Get(key.Uint64())
		if err == btree.ErrNotFound {
			raw = nil
		} else if err != nil {
			return err
		}
		base, err := DecodePostings(raw)
		if err != nil {
			return err
		}
		merged := mergePostings(base, sh.mem.entries[key])
		if len(merged) == 0 {
			// Every posting deleted: drop the key. ErrNotFound is fine —
			// the key may never have reached the tree.
			if err := sh.tree.Delete(key.Uint64()); err != nil && err != btree.ErrNotFound {
				return err
			}
		} else if err := sh.tree.Put(key.Uint64(), EncodePostings(merged)); err != nil {
			return err
		}
	}
	if err := sh.tree.Sync(); err != nil {
		return err
	}
	sh.mem.clear()
	return nil
}

// --- meta slots ---
//
// The index meta commits into two alternating slot files, META.0 and
// META.1 (slot = commit counter mod 2), each a self-validating envelope:
//
//	magic "LCMSRMT1" | commit u64 | lastOp u64 | bodyLen u32 | body | crc u32
//
// crc is btree.Checksum (CRC32-C) over everything before it. Open reads
// both slots and keeps the valid one with the highest commit counter —
// the same newest-valid-wins discipline as the B+-tree header slots.

const metaSlotMagic = "LCMSRMT1"

func metaSlotName(commit uint64) string { return fmt.Sprintf("META.%d", commit%2) }

func encodeMetaSlot(commit, lastOp uint64, body []byte) []byte {
	out := make([]byte, 0, len(metaSlotMagic)+8+8+4+len(body)+4)
	out = append(out, metaSlotMagic...)
	out = binary.LittleEndian.AppendUint64(out, commit)
	out = binary.LittleEndian.AppendUint64(out, lastOp)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	return binary.LittleEndian.AppendUint32(out, btree.Checksum(out))
}

// decodeMetaSlot validates a slot image; ok is false for any damage (a
// torn slot is indistinguishable from garbage by design — the other slot
// carries the store).
func decodeMetaSlot(b []byte) (commit, lastOp uint64, body []byte, ok bool) {
	head := len(metaSlotMagic) + 8 + 8 + 4
	if len(b) < head+4 || string(b[:len(metaSlotMagic)]) != metaSlotMagic {
		return 0, 0, nil, false
	}
	commit = binary.LittleEndian.Uint64(b[8:])
	lastOp = binary.LittleEndian.Uint64(b[16:])
	n := binary.LittleEndian.Uint32(b[24:])
	if uint64(len(b)) != uint64(head)+uint64(n)+4 {
		return 0, 0, nil, false
	}
	if binary.LittleEndian.Uint32(b[len(b)-4:]) != btree.Checksum(b[:len(b)-4]) {
		return 0, 0, nil, false
	}
	return commit, lastOp, b[head : head+int(n)], true
}

// loadMeta reads both slots at open and keeps the newest valid one.
func (s *ShardedStore) loadMeta() error {
	for _, name := range []string{"META.0", "META.1"} {
		if !s.fs.Exists(name) {
			continue
		}
		raw, err := s.fs.ReadFile(name)
		if err != nil {
			return fmt.Errorf("grid: read %s: %w", s.fs.Path(name), err)
		}
		commit, lastOp, body, ok := decodeMetaSlot(raw)
		if !ok {
			continue // torn or corrupt slot; the other one carries the store
		}
		if !s.metaLoaded || commit > s.metaSeq {
			s.metaSeq, s.metaLastOp, s.metaLoaded = commit, lastOp, true
			s.metaBody = append([]byte(nil), body...)
		}
	}
	return nil
}

// CommitMeta writes body into the next meta slot and makes it durable.
// The caller (Index.Compact) must have Flushed first: a slot's lastOp
// asserts that every update at or below it is covered by the trees plus
// the (not yet truncated) WAL.
func (s *ShardedStore) CommitMeta(body []byte) error {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	commit := s.metaSeq + 1
	lastOp := s.seq.Load()
	env := encodeMetaSlot(commit, lastOp, body)
	name := metaSlotName(commit)
	if err := s.fs.WriteFile(name, env, !s.noSync); err != nil {
		return fmt.Errorf("grid: commit meta %s: %w", s.fs.Path(name), err)
	}
	s.metaSeq, s.metaLastOp, s.metaLoaded = commit, lastOp, true
	s.metaBody = append([]byte(nil), body...)
	return nil
}

// TruncateWALs resets every shard's log. Only call after CommitMeta
// succeeded — truncating first would lose the records that advance the
// durable trees past the last committed meta.
func (s *ShardedStore) TruncateWALs() error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		var err error
		if sh.wal != nil {
			err = sh.wal.Reset()
		}
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("grid: truncate wal %d: %w", i, err)
		}
	}
	return nil
}

// ReplayedUpdates returns the WAL records found at open with sequence
// numbers above the meta high-water mark, in sequence order — the
// updates the index layer re-applies to its in-memory state. The slice
// is owned by the store; callers must not mutate it.
func (s *ShardedStore) ReplayedUpdates() []Update { return s.replayed }

// MetaSnapshot returns the newest committed meta body and its high-water
// mark; ok is false when the store has never committed meta (a store
// closed before its first compaction).
func (s *ShardedStore) MetaSnapshot() (body []byte, lastOp uint64, ok bool) {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	return s.metaBody, s.metaLastOp, s.metaLoaded
}

// LastSeq returns the last assigned update sequence number.
func (s *ShardedStore) LastSeq() uint64 { return s.seq.Load() }
