package grid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// This file encodes the index's metadata — the MANIFEST extension of the
// live-update path. A reopened store must answer queries without
// re-deriving anything from the original objects, so the meta body
// captures everything NewIndexOver would otherwise compute: the grid
// geometry, the per-cell term directory, and the object-set delta against
// the base build (appended objects, tombstones, reweighted base docs),
// plus an opaque caller blob (the dataset stores its vocabulary snapshot
// there). The body is committed into double-slot files by the sharded
// store (see livestore.go) and is always written after the memtable
// flush it describes, with the WAL truncated only after the commit — so
// a crash at any boundary leaves either the new slot, or the old slot
// plus the WAL records that advance it.

// ErrCorruptMeta marks an unreadable or internally inconsistent meta
// body. Recovery fails typed rather than serving from a guessed state.
var ErrCorruptMeta = errors.New("grid: corrupt index meta")

// ErrMetaMismatch marks a valid meta body that disagrees with the
// caller's index parameters (geometry or base object count) — the store
// was built for a different dataset.
var ErrMetaMismatch = errors.New("grid: store meta does not match the index parameters")

// indexMeta is the decoded meta body.
type indexMeta struct {
	bounds      geo.Rect
	cellSize    float64
	nx, ny      int
	baseObjects int
	cellDir     map[uint32][]termEntry
	tail        []tailObject
	tombstones  []ObjectID
	patches     []docPatch
	extra       []byte
}

// tailObject is an object appended after the base build (id >=
// baseObjects), stored in its current state — covering any reweights it
// received — so reopen needs no per-object history.
type tailObject struct {
	id      ObjectID
	point   geo.Point
	terms   []textindex.TermID
	weights []float64
	tf      []int32
}

// docPatch records a base object whose weights were replaced.
type docPatch struct {
	id      ObjectID
	weights []float64
}

// Meta format versions. V2 adds a per-directory-entry max normalized
// term weight (the WAND pruning bound) after each posting count; V1
// bodies are still decoded, with the bound defaulting to +Inf — a bound
// that never prunes, and is snapped to exact the first time the entry is
// re-derived from its posting list (reopen replay, or the next rebuild).
const (
	indexMetaMagic   = "LCMSRIX2"
	indexMetaMagicV1 = "LCMSRIX1"
)

// encodeIndexMeta serializes a meta body deterministically (equal states
// produce equal bytes; maps are emitted in sorted order).
func encodeIndexMeta(m *indexMeta) []byte {
	out := make([]byte, 0, 1024)
	out = append(out, indexMetaMagic...)
	for _, f := range []float64{m.bounds.MinX, m.bounds.MinY, m.bounds.MaxX, m.bounds.MaxY, m.cellSize} {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(m.nx))
	out = binary.LittleEndian.AppendUint32(out, uint32(m.ny))
	out = binary.LittleEndian.AppendUint32(out, uint32(m.baseObjects))

	cells := make([]uint32, 0, len(m.cellDir))
	for c := range m.cellDir {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	out = binary.LittleEndian.AppendUint32(out, uint32(len(cells)))
	for _, c := range cells {
		dir := m.cellDir[c]
		out = binary.LittleEndian.AppendUint32(out, c)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(dir)))
		for _, te := range dir {
			out = binary.LittleEndian.AppendUint32(out, uint32(te.term))
			out = binary.LittleEndian.AppendUint32(out, uint32(te.count))
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(te.maxW))
		}
	}

	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.tail)))
	for _, to := range m.tail {
		out = binary.LittleEndian.AppendUint32(out, uint32(to.id))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(to.point.X))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(to.point.Y))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(to.terms)))
		for i, t := range to.terms {
			out = binary.LittleEndian.AppendUint32(out, uint32(t))
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(to.weights[i]))
			out = binary.LittleEndian.AppendUint32(out, uint32(to.tf[i]))
		}
	}

	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.tombstones)))
	for _, id := range m.tombstones {
		out = binary.LittleEndian.AppendUint32(out, uint32(id))
	}

	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.patches)))
	for _, p := range m.patches {
		out = binary.LittleEndian.AppendUint32(out, uint32(p.id))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p.weights)))
		for _, w := range p.weights {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(w))
		}
	}

	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.extra)))
	out = append(out, m.extra...)
	return out
}

// decodeIndexMeta parses encodeIndexMeta output.
func decodeIndexMeta(b []byte) (*indexMeta, error) {
	r := updReader{b: b}
	magic := string(r.bytes(len(indexMetaMagic)))
	if magic != indexMetaMagic && magic != indexMetaMagicV1 {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptMeta)
	}
	hasMaxW := magic == indexMetaMagic
	m := &indexMeta{cellDir: make(map[uint32][]termEntry)}
	m.bounds.MinX = math.Float64frombits(r.u64())
	m.bounds.MinY = math.Float64frombits(r.u64())
	m.bounds.MaxX = math.Float64frombits(r.u64())
	m.bounds.MaxY = math.Float64frombits(r.u64())
	m.cellSize = math.Float64frombits(r.u64())
	m.nx = int(r.u32())
	m.ny = int(r.u32())
	m.baseObjects = int(r.u32())
	if r.err != nil {
		return nil, fmt.Errorf("%w: short geometry", ErrCorruptMeta)
	}

	const maxCount = 1 << 28 // sanity bound against torn-garbage lengths
	ncells := r.u32()
	if ncells > maxCount {
		return nil, fmt.Errorf("%w: implausible cell count", ErrCorruptMeta)
	}
	for i := uint32(0); i < ncells && r.err == nil; i++ {
		cell := r.u32()
		nterms := r.u32()
		if nterms > maxCount {
			return nil, fmt.Errorf("%w: implausible term count", ErrCorruptMeta)
		}
		dir := make([]termEntry, 0, nterms)
		for j := uint32(0); j < nterms; j++ {
			te := termEntry{term: textindex.TermID(r.u32()), count: int32(r.u32())}
			if hasMaxW {
				te.maxW = math.Float64frombits(r.u64())
			} else {
				// V1 recorded no bound. +Inf disables pruning for the entry
				// rather than guessing: live reweights can push weights past
				// any fixed constant.
				te.maxW = math.Inf(1)
			}
			dir = append(dir, te)
		}
		m.cellDir[cell] = dir
	}

	ntail := r.u32()
	if ntail > maxCount {
		return nil, fmt.Errorf("%w: implausible tail count", ErrCorruptMeta)
	}
	for i := uint32(0); i < ntail && r.err == nil; i++ {
		var to tailObject
		to.id = ObjectID(r.u32())
		to.point.X = math.Float64frombits(r.u64())
		to.point.Y = math.Float64frombits(r.u64())
		nterms := r.u32()
		if nterms > maxCount {
			return nil, fmt.Errorf("%w: implausible tail terms", ErrCorruptMeta)
		}
		to.terms = make([]textindex.TermID, 0, nterms)
		to.weights = make([]float64, 0, nterms)
		to.tf = make([]int32, 0, nterms)
		for j := uint32(0); j < nterms; j++ {
			to.terms = append(to.terms, textindex.TermID(r.u32()))
			to.weights = append(to.weights, math.Float64frombits(r.u64()))
			to.tf = append(to.tf, int32(r.u32()))
		}
		m.tail = append(m.tail, to)
	}

	ntomb := r.u32()
	if ntomb > maxCount {
		return nil, fmt.Errorf("%w: implausible tombstone count", ErrCorruptMeta)
	}
	for i := uint32(0); i < ntomb && r.err == nil; i++ {
		m.tombstones = append(m.tombstones, ObjectID(r.u32()))
	}

	npatch := r.u32()
	if npatch > maxCount {
		return nil, fmt.Errorf("%w: implausible patch count", ErrCorruptMeta)
	}
	for i := uint32(0); i < npatch && r.err == nil; i++ {
		var p docPatch
		p.id = ObjectID(r.u32())
		nw := r.u32()
		if nw > maxCount {
			return nil, fmt.Errorf("%w: implausible patch weights", ErrCorruptMeta)
		}
		p.weights = make([]float64, 0, nw)
		for j := uint32(0); j < nw; j++ {
			p.weights = append(p.weights, math.Float64frombits(r.u64()))
		}
		m.patches = append(m.patches, p)
	}

	nextra := r.u32()
	if nextra > maxCount {
		return nil, fmt.Errorf("%w: implausible extra length", ErrCorruptMeta)
	}
	m.extra = append([]byte(nil), r.bytes(int(nextra))...)
	if r.err != nil {
		return nil, fmt.Errorf("%w: short body", ErrCorruptMeta)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptMeta, len(b)-r.off)
	}
	return m, nil
}
