package grid

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/btree"
)

// ShardScrub is one shard's scrub outcome: the verification statistics and
// the corruption (or I/O) error, if any. For the single-tree layout the
// whole store reports as shard 0.
type ShardScrub struct {
	Shard int
	Stats btree.VerifyStats
	Err   error
}

// ScrubReport aggregates per-shard scrub outcomes for a posting store.
type ScrubReport struct {
	Shards []ShardScrub
}

// Err returns all shard failures joined, or nil when every shard verified
// clean. errors.Is(r.Err(), btree.ErrCorrupt) reports whether any shard is
// corrupt (as opposed to, say, unreadable).
func (r ScrubReport) Err() error {
	var errs []error
	for _, sh := range r.Shards {
		if sh.Err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", sh.Shard, sh.Err))
		}
	}
	return errors.Join(errs...)
}

// String renders one line per shard, the way cmd/lcmsr -scrub prints it.
func (r ScrubReport) String() string {
	var b strings.Builder
	for _, sh := range r.Shards {
		if sh.Err != nil {
			fmt.Fprintf(&b, "shard %04d: CORRUPT: %v\n", sh.Shard, sh.Err)
		} else {
			fmt.Fprintf(&b, "shard %04d: ok: %s\n", sh.Shard, sh.Stats)
		}
	}
	return b.String()
}

// Scrub verifies every shard's on-disk tree (checksums, page links, key
// order, counts — see btree.Verify) and reports per shard. Shards are
// scrubbed concurrently, each under its own lock, so a scrub of a large
// store uses all cores; a closed store reports an error per shard rather
// than panicking.
func (s *ShardedStore) Scrub() ScrubReport {
	report := ScrubReport{Shards: make([]ShardScrub, len(s.shards))}
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := &s.shards[i]
			sh.mu.Lock()
			defer sh.mu.Unlock()
			report.Shards[i].Shard = i
			if sh.tree == nil {
				report.Shards[i].Err = errStoreClosed
				return
			}
			report.Shards[i].Stats, report.Shards[i].Err = sh.tree.Verify()
		}(i)
	}
	wg.Wait()
	return report
}

// Scrub verifies the single tree, reporting as shard 0.
func (s *BTreeStore) Scrub() ScrubReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sh ShardScrub
	sh.Stats, sh.Err = s.tree.Verify()
	return ScrubReport{Shards: []ShardScrub{sh}}
}
