package grid

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
)

// TestSearchRangeIntoPartition is the distribution invariant at the grid
// level: for any split of [0, NumCells) into ranges, the union of
// SearchRangeInto over the ranges, re-sorted by ObjectID, must be
// bit-identical to one SearchInto over the whole grid — across random
// queries, rectangles, and both the memory and sharded backends.
func TestSearchRangeIntoPartition(t *testing.T) {
	v, vocab, objs := randomCorpus(t, 400, 23)
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	for _, backend := range []string{"mem", "sharded"} {
		t.Run(backend, func(t *testing.T) {
			var store Store
			if backend == "sharded" {
				s, err := CreateShardedStore(t.TempDir()+"/store", ShardedOptions{Shards: 4})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				store = s
			}
			idx, err := NewIndex(objs, bounds, 50, store)
			if err != nil {
				t.Fatal(err)
			}
			numCells := uint32(idx.NumCells())
			rng := rand.New(rand.NewSource(29))
			var full, part SearchScratch
			for trial := 0; trial < 30; trial++ {
				q := v.PrepareQuery([]string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]})
				x0, y0 := rng.Float64()*800, rng.Float64()*800
				r := geo.Rect{MinX: x0, MinY: y0, MaxX: x0 + 50 + rng.Float64()*150, MaxY: y0 + 50 + rng.Float64()*150}
				want, err := idx.SearchInto(q, r, &full)
				if err != nil {
					t.Fatal(err)
				}

				// Split the cell space at 1–4 random cut points.
				cuts := []uint32{0, numCells}
				for c := 0; c < 1+rng.Intn(4); c++ {
					cuts = append(cuts, uint32(rng.Intn(int(numCells))))
				}
				sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
				var got []ObjScore
				for i := 0; i+1 < len(cuts); i++ {
					lo, hi := cuts[i], cuts[i+1]
					if lo == hi {
						continue
					}
					ps, err := idx.SearchRangeInto(q, r, lo, hi, &part)
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, ps...)
				}
				sort.Slice(got, func(i, j int) bool { return got[i].Obj < got[j].Obj })

				if len(got) != len(want) {
					t.Fatalf("trial %d: partition union has %d results, full search %d", trial, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d result %d: partition %+v != full %+v", trial, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestRangeMetadata covers the routing-tier accessors: RangeOverlapsRect
// must agree with a brute-force cell walk, and RangeTerms must report
// exactly the terms with postings in the range.
func TestRangeMetadata(t *testing.T) {
	v, vocab, objs := randomCorpus(t, 300, 31)
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	idx, err := NewIndex(objs, bounds, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	numCells := uint32(idx.NumCells())
	nx, _ := idx.Dims()
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 50; trial++ {
		lo := uint32(rng.Intn(int(numCells)))
		hi := lo + 1 + uint32(rng.Intn(int(numCells-lo)))
		x0, y0 := rng.Float64()*900, rng.Float64()*900
		r := geo.Rect{MinX: x0, MinY: y0, MaxX: x0 + rng.Float64()*200, MaxY: y0 + rng.Float64()*200}

		brute := false
		if rx0, rx1, ry0, ry1, ok := idx.cellRange(r); ok {
			for cy := ry0; cy <= ry1 && !brute; cy++ {
				for cx := rx0; cx <= rx1; cx++ {
					cell := uint32(cy*nx + cx)
					if cell >= lo && cell < hi {
						brute = true
						break
					}
				}
			}
		}
		if got := idx.RangeOverlapsRect(lo, hi, r); got != brute {
			t.Fatalf("trial %d: RangeOverlapsRect([%d,%d), %+v) = %v, brute force %v", trial, lo, hi, r, got, brute)
		}
	}
	if idx.RangeOverlapsRect(5, 5, bounds) {
		t.Error("empty range overlaps")
	}

	// RangeTerms over the full cell space must equal the union of all
	// indexed terms; a sub-range must be a subset of it.
	all := idx.RangeTerms(0, numCells)
	if len(all) == 0 {
		t.Fatal("no terms in full range")
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Error("RangeTerms not sorted")
	}
	q := v.PrepareQuery(vocab)
	for _, term := range q.Terms {
		found := false
		for _, got := range all {
			if got == term {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("term %d indexed but missing from full RangeTerms", term)
		}
	}
	sub := idx.RangeTerms(0, numCells/2)
	for _, term := range sub {
		found := false
		for _, got := range all {
			if got == term {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("sub-range term %d not in full range", term)
		}
	}
}
