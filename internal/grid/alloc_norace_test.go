//go:build !race

package grid

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// TestScoreCacheHitZeroAlloc pins the score cache's hit-path cost: once
// the cache holds every (cell, query) pair of a query, replaying that
// query through SearchInto performs zero allocations — the cached
// contributions copy into the pooled scratch, nothing else moves. The
// rectangle spans the whole index so every cell is fully inside and
// cacheable; scripts/bench-json.sh enforces the same property
// numerically on the disk-backed BenchmarkHotQueryCache/cached leg.
// (The race detector instruments allocations, hence !race.)
func TestScoreCacheHitZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v := textindex.NewVocabulary()
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
	vocab := make([]string, 50)
	for i := range vocab {
		vocab[i] = string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	var objs []Object
	for i := 0; i < 2000; i++ {
		toks := []string{vocab[rng.Intn(50)], vocab[rng.Intn(50)]}
		objs = append(objs, Object{
			Point: geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000},
			Doc:   v.IndexDoc(toks),
		})
	}
	idx, err := NewIndex(objs, bounds, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx.SetScoreCache(1024)
	q := v.PrepareQuery([]string{vocab[0], vocab[7], vocab[23]})
	var scratch SearchScratch
	if _, err := idx.SearchInto(q, bounds, &scratch); err != nil { // fill the cache
		t.Fatal(err)
	}
	before, _ := idx.ScoreCacheStats()
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := idx.SearchInto(q, bounds, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cached SearchInto allocated %.1f times per run, want 0", allocs)
	}
	after, _ := idx.ScoreCacheStats()
	if after.Hits <= before.Hits {
		t.Fatalf("replay was not served from cache: hits %d -> %d", before.Hits, after.Hits)
	}
	if after.Misses != before.Misses {
		t.Errorf("cached replays missed: misses %d -> %d", before.Misses, after.Misses)
	}
}
