package grid

import (
	"fmt"
	"sync"

	"repro/internal/btree"
)

// BTreeStore is a Store backed by the disk-based B+-tree of package btree,
// realizing the storage design of §3: posting lists keyed by (cell, term)
// live on disk and are fetched page-at-a-time through the tree's cache.
// A mutex serializes tree access (the page cache is not concurrency-safe),
// making the store usable from concurrent queries.
type BTreeStore struct {
	mu   sync.Mutex
	tree *btree.Tree
}

// NewBTreeStore creates a fresh store at path (truncating existing files).
func NewBTreeStore(path string) (*BTreeStore, error) {
	t, err := btree.Create(path, btree.Options{})
	if err != nil {
		return nil, err
	}
	return &BTreeStore{tree: t}, nil
}

// OpenBTreeStore opens a store previously written by NewBTreeStore.
func OpenBTreeStore(path string) (*BTreeStore, error) {
	t, err := btree.Open(path, btree.Options{})
	if err != nil {
		return nil, err
	}
	return &BTreeStore{tree: t}, nil
}

// Append implements Store. Lists are read-modify-written; index builds
// batch all postings for a key into a single Append, so this is one tree
// Put per (cell, term) in practice.
func (s *BTreeStore) Append(key CellKey, ps []Posting) error {
	existing, err := s.Postings(key)
	if err != nil {
		return err
	}
	merged := append(existing, ps...)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Put(key.Uint64(), EncodePostings(merged))
}

// Postings implements Store.
func (s *BTreeStore) Postings(key CellKey) ([]Posting, error) {
	s.mu.Lock()
	raw, err := s.tree.Get(key.Uint64())
	s.mu.Unlock()
	if err == btree.ErrNotFound {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	ps, err := DecodePostings(raw)
	if err != nil {
		return nil, fmt.Errorf("grid: decode postings for cell %d term %d: %w", key.Cell, key.Term, err)
	}
	return ps, nil
}

// Close flushes and closes the underlying tree.
func (s *BTreeStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Close()
}
