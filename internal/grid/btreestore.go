package grid

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/btree"
)

// BTreeStore is a Store backed by the disk-based B+-tree of package btree,
// realizing the storage design of §3: posting lists keyed by (cell, term)
// live on disk and are fetched page-at-a-time through the tree's cache.
// A mutex serializes tree access (the page cache is not concurrency-safe),
// making the store usable from concurrent queries.
type BTreeStore struct {
	mu   sync.Mutex
	tree *btree.Tree
}

// NewBTreeStore creates a fresh store at path. Like CreateShardedStore
// it refuses to overwrite an existing store file — delete it or open it
// with OpenBTreeStore instead.
func NewBTreeStore(path string) (*BTreeStore, error) {
	return NewBTreeStoreCached(path, 0)
}

// NewBTreeStoreCached is NewBTreeStore with a page-cache cap (0 = btree
// default).
func NewBTreeStoreCached(path string, cachePages int) (*BTreeStore, error) {
	return NewBTreeStoreWith(path, btree.Options{CachePages: cachePages})
}

// NewBTreeStoreWith is NewBTreeStore with full tree options (page-cache
// cap, NoSync).
func NewBTreeStoreWith(path string, opts btree.Options) (*BTreeStore, error) {
	if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
		return nil, fmt.Errorf("grid: %s already holds a posting store; delete it or open it with OpenBTreeStore", path)
	}
	t, err := btree.Create(path, opts)
	if err != nil {
		return nil, err
	}
	return &BTreeStore{tree: t}, nil
}

// OpenBTreeStore opens a store previously written by NewBTreeStore.
func OpenBTreeStore(path string) (*BTreeStore, error) {
	t, err := btree.Open(path, btree.Options{})
	if err != nil {
		return nil, err
	}
	return &BTreeStore{tree: t}, nil
}

// Append implements Store. Lists are read-modify-written under one lock
// section — releasing the lock between the read and the write would let
// two concurrent Appends to the same key each read the old list and one
// overwrite the other's postings (see TestBTreeStoreAppendConcurrent).
// Index builds batch all postings for a key into a single Append, so this
// is one tree Put per (cell, term) in practice.
func (s *BTreeStore) Append(key CellKey, ps []Posting) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return appendLocked(s.tree, key, ps)
}

// Postings implements Store.
func (s *BTreeStore) Postings(key CellKey) ([]Posting, error) {
	s.mu.Lock()
	raw, err := s.tree.Get(key.Uint64())
	s.mu.Unlock()
	if err == btree.ErrNotFound {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	ps, err := DecodePostings(raw)
	if err != nil {
		return nil, fmt.Errorf("grid: decode postings for cell %d term %d: %w", key.Cell, key.Term, err)
	}
	return ps, nil
}

// CacheStats returns the page-cache counters of the underlying tree.
func (s *BTreeStore) CacheStats() btree.CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.CacheStats()
}

// Close flushes and closes the underlying tree.
func (s *BTreeStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Close()
}
