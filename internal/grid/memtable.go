package grid

import "sort"

// memEntry is one object's pending state under one (cell, term) key:
// either a deletion tombstone or the object's current absolute weight
// (covering both fresh inserts and reweights — the merge does not need
// to distinguish them).
type memEntry struct {
	weight float64
	del    bool
}

// memtable holds one shard's un-flushed updates as per-key override maps
// layered over the shard's B+-tree: a merged read takes the tree's list
// and applies the overrides. Ownership: a memtable is guarded by its
// shard's mutex, exactly like the shard's tree — the query path reads it
// only inside Postings, and flush swaps it out under the same lock.
type memtable struct {
	entries map[CellKey]map[ObjectID]memEntry
	// ops counts applied updates since the last flush (compaction
	// trigger accounting lives in the Index, which sums shard counts).
	ops int
}

func newMemtable() *memtable {
	return &memtable{entries: make(map[CellKey]map[ObjectID]memEntry)}
}

// apply folds one update into the overrides.
func (m *memtable) apply(u *Update) {
	for i, t := range u.Terms {
		key := CellKey{Cell: u.Cell, Term: t}
		e := m.entries[key]
		if e == nil {
			e = make(map[ObjectID]memEntry)
			m.entries[key] = e
		}
		if u.Kind == UpdateDelete {
			e[u.Obj] = memEntry{del: true}
		} else {
			e[u.Obj] = memEntry{weight: u.Weights[i]}
		}
	}
	m.ops++
}

// overrides returns the pending entries for key (nil when none — the
// memtable-empty fast path).
func (m *memtable) overrides(key CellKey) map[ObjectID]memEntry {
	if m == nil || len(m.entries) == 0 {
		return nil
	}
	return m.entries[key]
}

// dirtyKeys returns the keys with pending entries, sorted — flush order
// must be deterministic so crash kill points replay identically.
func (m *memtable) dirtyKeys() []CellKey {
	keys := make([]CellKey, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Uint64() < keys[j].Uint64() })
	return keys
}

// clear resets the memtable after a successful flush.
func (m *memtable) clear() {
	m.entries = make(map[CellKey]map[ObjectID]memEntry)
	m.ops = 0
}

// mergePostings overlays pending entries on a base posting list, keeping
// ascending ObjectID order. Deletions drop the posting, reweights replace
// the weight in place, and entries absent from the base (fresh inserts)
// are merged in by id. The result is exactly the list a full rebuild of
// the same logical object set would store, because per-object weights are
// order-independent and the base list is already ascending.
func mergePostings(base []Posting, over map[ObjectID]memEntry) []Posting {
	if len(over) == 0 {
		return base
	}
	// Collect entries that do not override a base posting; they splice in
	// by ObjectID (in practice they are fresh inserts with ids above every
	// base id, but the merge handles any interleaving).
	extra := make([]Posting, 0, len(over))
	for id, e := range over {
		if e.del {
			continue
		}
		if !postingListHas(base, id) {
			extra = append(extra, Posting{Obj: id, Weight: e.weight})
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].Obj < extra[j].Obj })
	out := make([]Posting, 0, len(base)+len(extra))
	bi, ei := 0, 0
	for bi < len(base) || ei < len(extra) {
		if ei >= len(extra) || (bi < len(base) && base[bi].Obj < extra[ei].Obj) {
			p := base[bi]
			bi++
			if e, ok := over[p.Obj]; ok {
				if e.del {
					continue
				}
				p.Weight = e.weight
			}
			out = append(out, p)
			continue
		}
		out = append(out, extra[ei])
		ei++
	}
	return out
}

// postingListHas reports whether the ascending list contains id.
func postingListHas(ps []Posting, id ObjectID) bool {
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Obj >= id })
	return i < len(ps) && ps[i].Obj == id
}
