package grid

import (
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/textindex"
)

// This file implements the hot-query score cache: a bounded, lock-striped
// map of (cell, query-signature) → the cell's per-object partial score
// sums, stamped with the Index update epoch that produced them. Real map
// traffic is Zipfian — everyone queries downtown — so the same (cell,
// query) multiply-accumulate is recomputed endlessly while mutations only
// occasionally invalidate it. A hit replays the stored (object, score)
// pairs into the SearchScratch instead of fetching and scanning posting
// lists; because every object lives in exactly one cell (all its postings
// are in that cell), the stored sum IS the object's complete pre-norm
// score, so a replayed query is bit-identical to a recomputed one no
// matter which cells hit.
//
// Correctness rules:
//
//   - Only cells fully inside the query rectangle are cached: their
//     contribution is rectangle-independent, while boundary cells filter
//     postings by the exact rectangle.
//   - An entry is valid only for the exact update epoch it was filled at.
//     Insert/Delete/Reweight/Compact all bump the epoch (live.go), so
//     every mutation invalidates the whole cache for free — stale entries
//     age out through the clock eviction instead of being swept.
//   - The signature is a hash, not an identity: a hit additionally
//     verifies the stored term list AND the stored query-side IDF weights
//     (IDF drifts as documents are indexed even for an unchanged term
//     set). A colliding signature therefore misses instead of serving
//     another query's scores.
//
// Ownership: the cache owns every slice in its entries; fills copy in,
// replays copy out into the caller's scratch while holding the stripe
// lock. Evicted entries keep their slices and are refilled in place, so
// the steady state — hits and even evict-refill cycles — allocates
// nothing.

// scoreCacheStripes is the number of independently locked stripes. Must
// be a power of two. 16 stripes keep a handful of query workers from
// serializing on one mutex.
const scoreCacheStripes = 16

// ScoreCacheStats are the score cache's monotonic counters plus its
// current live entry count.
type ScoreCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// cacheKey addresses one entry: a cell and a query signature.
type cacheKey struct {
	cell uint32
	sig  uint64
}

// cacheEntry is one cached cell contribution. scores[i] is the complete
// pre-norm partial score Σ_t w_{Q,t}·wto(t) of objs[i] accumulated over
// the cell's posting lists in ascending-term order — exactly the value
// SearchInto computes for that object, since an object's postings never
// span cells.
type cacheEntry struct {
	key    cacheKey
	epoch  uint64
	live   bool
	used   bool // clock reference bit
	terms  []textindex.TermID
	idf    []float64
	objs   []ObjectID
	scores []float64
}

// cacheStripe is one lock domain: a fixed slot array with a key index and
// a clock hand for second-chance eviction.
type cacheStripe struct {
	mu      sync.Mutex
	index   map[cacheKey]int32
	entries []cacheEntry
	hand    int
}

// scoreCache is the sharded cache. Counters are atomics so the read path
// never takes a lock beyond its own stripe.
type scoreCache struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	stripes   [scoreCacheStripes]cacheStripe
}

// newScoreCache returns a cache bounded to roughly `entries` entries
// (rounded up to a multiple of the stripe count).
func newScoreCache(entries int) *scoreCache {
	if entries < scoreCacheStripes {
		entries = scoreCacheStripes
	}
	per := (entries + scoreCacheStripes - 1) / scoreCacheStripes
	c := &scoreCache{}
	for i := range c.stripes {
		c.stripes[i].index = make(map[cacheKey]int32, per)
		c.stripes[i].entries = make([]cacheEntry, per)
	}
	return c
}

// stripeOf maps a key to its stripe by mixing the cell into the
// signature, so the many cells of one hot query spread across stripes.
func (c *scoreCache) stripeOf(k cacheKey) *cacheStripe {
	h := (k.sig ^ uint64(k.cell)) * 0x9E3779B97F4A7C15
	return &c.stripes[h>>(64-4)] // top log2(scoreCacheStripes) bits
}

// replay looks up (cell, sig) and, on a valid hit, copies the entry's
// contributions into the scratch exactly as accumulate would have. It
// reports whether the cell was served from cache.
func (c *scoreCache) replay(cell uint32, q textindex.Query, sig, epoch uint64, s *SearchScratch) bool {
	k := cacheKey{cell: cell, sig: sig}
	st := c.stripeOf(k)
	st.mu.Lock()
	i, ok := st.index[k]
	if !ok {
		st.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	e := &st.entries[i]
	if e.epoch != epoch || !slices.Equal(e.terms, q.Terms) || !slices.Equal(e.idf, q.IDF) {
		// Stale epoch or a signature collision: miss. The entry stays; the
		// subsequent fill for this query overwrites it in place.
		st.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	e.used = true
	s.touched = slices.Grow(s.touched, len(e.objs))
	for j, id := range e.objs {
		if s.stamp[id] != s.epoch {
			s.stamp[id] = s.epoch
			s.score[id] = e.scores[j]
			s.touched = append(s.touched, id)
		} else {
			// Unreachable while objects live in exactly one cell; folded in
			// like accumulate would for safety.
			s.score[id] += e.scores[j]
		}
	}
	st.mu.Unlock()
	c.hits.Add(1)
	return true
}

// fill stores a just-computed cell contribution: objs are the objects the
// cell touched (a segment of the scratch's touched list) and score is the
// scratch's score array they index into. Nil objs caches an empty cell —
// a hit that skips the merge-join entirely.
func (c *scoreCache) fill(cell uint32, q textindex.Query, sig, epoch uint64, objs []ObjectID, score []float64) {
	k := cacheKey{cell: cell, sig: sig}
	st := c.stripeOf(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	var e *cacheEntry
	if i, ok := st.index[k]; ok {
		e = &st.entries[i]
	} else {
		i := st.evictSlotLocked()
		e = &st.entries[i]
		if e.live {
			delete(st.index, e.key)
			c.evictions.Add(1)
		}
		st.index[k] = i
	}
	e.key = k
	e.epoch = epoch
	e.live = true
	e.used = true
	e.terms = append(e.terms[:0], q.Terms...)
	e.idf = append(e.idf[:0], q.IDF...)
	e.objs = e.objs[:0]
	e.scores = e.scores[:0]
	for _, id := range objs {
		e.objs = append(e.objs, id)
		e.scores = append(e.scores, score[id])
	}
}

// evictSlotLocked returns the slot the next fill may overwrite: the first
// dead slot, else the first slot the clock hand finds with its reference
// bit clear (clearing bits as it sweeps — second chance).
func (st *cacheStripe) evictSlotLocked() int32 {
	for {
		i := st.hand
		st.hand++
		if st.hand == len(st.entries) {
			st.hand = 0
		}
		e := &st.entries[i]
		if !e.live || !e.used {
			return int32(i)
		}
		e.used = false
	}
}

// stats snapshots the counters and live entry count.
func (c *scoreCache) stats() ScoreCacheStats {
	out := ScoreCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		out.Entries += len(st.index)
		st.mu.Unlock()
	}
	return out
}

// SetScoreCache enables a bounded score cache of roughly `entries`
// cached (cell, query) contributions, or disables caching when entries
// <= 0 (the default — the cache costs a signature hash plus a striped
// lookup per interior cell, which only pays off under repeated queries).
// Safe to call on a serving index; the previous cache is dropped whole.
func (idx *Index) SetScoreCache(entries int) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	if entries <= 0 {
		idx.scoreCache = nil
		return
	}
	idx.scoreCache = newScoreCache(entries)
}

// ScoreCacheStats reports the score cache's counters; ok is false when
// no cache is configured.
func (idx *Index) ScoreCacheStats() (stats ScoreCacheStats, ok bool) {
	idx.mu.RLock()
	sc := idx.scoreCache
	idx.mu.RUnlock()
	if sc == nil {
		return ScoreCacheStats{}, false
	}
	return sc.stats(), true
}
