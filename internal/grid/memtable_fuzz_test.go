package grid

// FuzzMemtableMerge drives the memtable overlay and mergePostings
// against a shadow map model. The fuzzer's byte stream encodes an
// arbitrary interleaving of base-list postings and insert/reweight/
// delete updates over one (cell, term) key; the merged list must equal
// the shadow's sorted view exactly, stay strictly ascending, and never
// duplicate or fabricate an object.

import (
	"math"
	"sort"
	"testing"

	"repro/internal/textindex"
)

func FuzzMemtableMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0x81, 3, 0x82, 3, 0x41, 3, 0x01, 9, 0xC1, 0})
	f.Add([]byte{0x01, 1, 0x41, 1, 0x81, 1, 0xC1, 1, 0x01, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		const term = textindex.TermID(5)
		key := CellKey{Cell: 7, Term: term}
		// First half of the stream builds the base list (ascending,
		// distinct ids), second half is the update stream.
		shadow := make(map[ObjectID]float64)
		var base []Posting
		nextBase := ObjectID(0)
		mem := newMemtable()
		for i := 0; i+1 < len(data); i += 2 {
			ctl, wb := data[i], data[i+1]
			op := ctl >> 6       // 0 = base posting, 1 = insert/reweight, 2 = reweight, 3 = delete
			objSel := ctl & 0x3F // object selector
			w := 0.01 + float64(wb)/16
			switch op {
			case 0:
				if mem.ops > 0 {
					// Base postings only before the first update — the
					// tree list is fixed once updates start.
					continue
				}
				nextBase += ObjectID(objSel%5) + 1
				base = append(base, Posting{Obj: nextBase, Weight: w})
				shadow[nextBase] = w
			case 1, 2:
				obj := ObjectID(objSel)
				mem.apply(&Update{Kind: UpdateReweight, Obj: obj, Cell: key.Cell,
					Terms: []textindex.TermID{term}, Weights: []float64{w}})
				shadow[obj] = w
			case 3:
				obj := ObjectID(objSel)
				mem.apply(&Update{Kind: UpdateDelete, Obj: obj, Cell: key.Cell,
					Terms: []textindex.TermID{term}})
				delete(shadow, obj)
			}
		}
		got := mergePostings(base, mem.overrides(key))
		want := make([]Posting, 0, len(shadow))
		for id, w := range shadow {
			want = append(want, Posting{Obj: id, Weight: w})
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Obj < want[j].Obj })
		if len(got) != len(want) {
			t.Fatalf("merged %d postings, shadow has %d\n got %v\nwant %v", len(got), len(want), got, want)
		}
		for i := range want {
			if got[i].Obj != want[i].Obj || got[i].Weight != want[i].Weight ||
				math.Signbit(got[i].Weight) != math.Signbit(want[i].Weight) {
				t.Fatalf("posting %d: got {%d %v}, want {%d %v}", i,
					got[i].Obj, got[i].Weight, want[i].Obj, want[i].Weight)
			}
			if i > 0 && got[i].Obj <= got[i-1].Obj {
				t.Fatalf("merged list not strictly ascending at %d: %v", i, got)
			}
		}
	})
}
