package grid

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"repro/internal/btree"
	"repro/internal/textindex"
)

// ShardedStore is a disk-backed Store that partitions the CellKey space
// across N independent B+-trees: shard i owns every key whose cell
// satisfies cell mod N == i, and each shard has its own file, page cache
// and mutex. Cells adjacent in row-major order land on different shards,
// so the cells of one query rectangle — and the cold reads of concurrent
// queries — spread across all shards instead of convoying on one tree
// lock and one page cache, which is what makes cold-read throughput scale
// with cores (see BenchmarkColdRead and the CI multi-core gate).
//
// On disk a sharded store is a directory: a MANIFEST header recording the
// layout (shard count and partition function, so OpenShardedStore
// reconstructs it regardless of the opener's GOMAXPROCS) plus one
// shard-NNNN.bt tree per shard. Each tree is held under an exclusive
// file lock while open, so two stores can never share a shard.
type ShardedStore struct {
	dir    string
	shards []storeShard
}

// storeShard pairs one B+-tree with the mutex that serializes access to
// it (the tree's page cache is single-threaded). Shards never take each
// other's locks, so operations on different shards proceed concurrently.
type storeShard struct {
	mu   sync.Mutex
	tree *btree.Tree
}

// ShardedOptions configures CreateShardedStore (and, minus Shards, the
// open paths).
type ShardedOptions struct {
	// Shards is the number of B+-tree shards; <= 0 means GOMAXPROCS.
	// Ignored on open: the MANIFEST records the real layout.
	Shards int
	// CachePages caps each shard's page cache (0 = btree default).
	CachePages int
	// NoSync disables the per-shard fsync discipline (btree.Options.NoSync)
	// for bulk index builds; a crash may then corrupt the store.
	NoSync bool
}

const (
	manifestName  = "MANIFEST"
	manifestMagic = "lcmsr-sharded-store v1"
	partitionName = "cell-mod" // shard(key) = key.Cell mod shards
	// maxShards bounds the shard count on create and open symmetrically,
	// so every store this package writes can be reopened.
	maxShards = 1 << 16
)

func shardFile(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.bt", i))
}

// CreateShardedStore creates a fresh sharded store in dir (creating the
// directory if needed). It refuses to overwrite an existing store — a
// populated store is a build product worth hours of indexing, so
// clobbering it must be an explicit `rm`, not a side effect; open one
// with OpenShardedStore instead. The MANIFEST header is written last, so
// a creation that fails partway (disk full, lock conflict) never leaves
// a valid-looking manifest over missing shards.
func CreateShardedStore(dir string, opts ShardedOptions) (*ShardedStore, error) {
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxShards {
		return nil, fmt.Errorf("grid: shard count %d exceeds the maximum %d", n, maxShards)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("grid: %s already holds a sharded store; delete it or open it with OpenShardedStore", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("grid: sharded store: %w", err)
	}
	s := &ShardedStore{dir: dir, shards: make([]storeShard, n)}
	for i := range s.shards {
		t, err := btree.Create(shardFile(dir, i), btree.Options{CachePages: opts.CachePages, NoSync: opts.NoSync})
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		s.shards[i].tree = t
	}
	body := fmt.Sprintf("%s\nshards %d\npartition %s\n", manifestMagic, n, partitionName)
	manifest := body + fmt.Sprintf("crc %08x\n", btree.Checksum([]byte(body)))
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(manifest), 0o644); err != nil {
		_ = s.Close()
		return nil, fmt.Errorf("grid: sharded store manifest: %w", err)
	}
	return s, nil
}

// OpenShardedStore opens a store previously written by CreateShardedStore,
// reconstructing the shard layout from the MANIFEST header. The per-shard
// trees are opened concurrently — each takes its own file lock.
func OpenShardedStore(dir string) (*ShardedStore, error) {
	return openSharded(dir, ShardedOptions{})
}

// OpenShardedStoreCached is OpenShardedStore with a per-shard page-cache
// cap (0 = btree default).
func OpenShardedStoreCached(dir string, cachePages int) (*ShardedStore, error) {
	return openSharded(dir, ShardedOptions{CachePages: cachePages})
}

func openSharded(dir string, opts ShardedOptions) (*ShardedStore, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("grid: sharded store manifest: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	// Three lines is the pre-checksum manifest; four adds a "crc" line
	// protecting the layout header against truncation and bit rot.
	if (len(lines) != 3 && len(lines) != 4) || lines[0] != manifestMagic {
		return nil, fmt.Errorf("grid: %s is not a sharded store (manifest %q)", dir, string(raw))
	}
	if len(lines) == 4 {
		body := lines[0] + "\n" + lines[1] + "\n" + lines[2] + "\n"
		if lines[3] != fmt.Sprintf("crc %08x", btree.Checksum([]byte(body))) {
			return nil, fmt.Errorf("grid: manifest checksum mismatch in %s (%q)", dir, lines[3])
		}
	}
	n, err := strconv.Atoi(strings.TrimPrefix(lines[1], "shards "))
	if err != nil || n <= 0 || n > maxShards {
		return nil, fmt.Errorf("grid: implausible shard count %q in %s", lines[1], dir)
	}
	if p := strings.TrimPrefix(lines[2], "partition "); p != partitionName {
		return nil, fmt.Errorf("grid: unknown shard partition %q in %s", p, dir)
	}
	s := &ShardedStore{dir: dir, shards: make([]storeShard, n)}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t, err := btree.Open(shardFile(dir, i), btree.Options{CachePages: opts.CachePages, NoSync: opts.NoSync})
			if err != nil {
				errs[i] = err
				return
			}
			s.shards[i].tree = t
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			_ = s.Close()
			return nil, err
		}
	}
	return s, nil
}

// NumShards returns the number of B+-tree shards.
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// ShardOf returns the shard owning key.
func (s *ShardedStore) ShardOf(key CellKey) int {
	return int(key.Cell % uint32(len(s.shards)))
}

// errStoreClosed is returned by operations on a closed sharded store
// (Close nils the shard trees).
var errStoreClosed = fmt.Errorf("grid: sharded store is closed")

// Append implements Store. The owning shard's lock is held across the
// whole read-merge-write, so concurrent Appends to one key serialize
// instead of losing postings; Appends to keys on different shards do not
// block each other.
func (s *ShardedStore) Append(key CellKey, ps []Posting) error {
	sh := &s.shards[s.ShardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.tree == nil {
		return errStoreClosed
	}
	return appendLocked(sh.tree, key, ps)
}

// Postings implements Store, blocking only callers that need the same
// shard.
func (s *ShardedStore) Postings(key CellKey) ([]Posting, error) {
	sh := &s.shards[s.ShardOf(key)]
	sh.mu.Lock()
	if sh.tree == nil {
		sh.mu.Unlock()
		return nil, errStoreClosed
	}
	raw, err := sh.tree.Get(key.Uint64())
	sh.mu.Unlock()
	if err == btree.ErrNotFound {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	ps, err := DecodePostings(raw)
	if err != nil {
		return nil, fmt.Errorf("grid: decode postings for cell %d term %d: %w", key.Cell, key.Term, err)
	}
	return ps, nil
}

// CacheStats aggregates the page-cache counters of every shard. On a
// closed store it returns zeros (the single-tree store tolerates the
// same late call, e.g. an end-of-run stats print).
func (s *ShardedStore) CacheStats() btree.CacheStats {
	var agg btree.CacheStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.tree != nil {
			agg.Add(sh.tree.CacheStats())
		}
		sh.mu.Unlock()
	}
	return agg
}

// Close flushes and closes every shard. Every shard is closed even when
// some fail, and the returned error aggregates all failures (errors.Join)
// — a flush error on shard 3 must not hide one on shard 7, and callers
// checking errors.Is still match any of them.
func (s *ShardedStore) Close() error {
	var errs []error
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.tree != nil {
			if err := sh.tree.Close(); err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			}
			sh.tree = nil
		}
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

// appendLocked is the read-merge-write shared by BTreeStore and
// ShardedStore; the caller must hold the lock of the tree. Postings are
// fixed-width records, so merging is raw-byte concatenation — no decode.
func appendLocked(t *btree.Tree, key CellKey, ps []Posting) error {
	raw, err := t.Get(key.Uint64())
	if err == btree.ErrNotFound {
		raw = nil
	} else if err != nil {
		return err
	}
	return t.Put(key.Uint64(), append(raw, EncodePostings(ps)...))
}

// PostingStore is a disk-backed, closable, scrubbable Store: both layouts
// (single B+-tree file, sharded directory) implement it.
type PostingStore interface {
	Store
	Close() error
	Scrub() ScrubReport
}

// OpenStore opens a posting store of either on-disk layout: a directory
// is a sharded store, a plain file the single-tree layout — the
// compatibility path for stores written before sharding existed.
func OpenStore(path string) (PostingStore, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("grid: open store: %w", err)
	}
	if fi.IsDir() {
		return OpenShardedStore(path)
	}
	return OpenBTreeStore(path)
}

// RemoveStore deletes a closed posting store of either layout: the store
// file, or — for a sharded directory — the MANIFEST and shard files only
// (the directory itself and any foreign files in it are left alone). It
// refuses paths that do not hold a store, so a caller cleaning up after
// a failed build cannot delete unrelated data.
func RemoveStore(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("grid: remove store: %w", err)
	}
	if !fi.IsDir() {
		var magicBuf [8]byte
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("grid: remove store: %w", err)
		}
		_, rerr := io.ReadFull(f, magicBuf[:])
		_ = f.Close()
		if rerr != nil || !btree.ValidMagic(magicBuf[:]) {
			return fmt.Errorf("grid: %s is not a posting store; refusing to remove it", path)
		}
		return os.Remove(path)
	}
	raw, err := os.ReadFile(filepath.Join(path, manifestName))
	if err != nil || !strings.HasPrefix(string(raw), manifestMagic) {
		return fmt.Errorf("grid: %s is not a sharded store; refusing to remove it", path)
	}
	shardFiles, err := filepath.Glob(filepath.Join(path, "shard-*.bt"))
	if err != nil {
		return err
	}
	for _, f := range shardFiles {
		if err := os.Remove(f); err != nil {
			return err
		}
	}
	return os.Remove(filepath.Join(path, manifestName))
}

// MigrateToSharded rewrites a single-file store into a fresh sharded
// store at dstDir and returns it open. Every key keeps its exact posting
// bytes; only the partitioning changes.
func MigrateToSharded(src, dstDir string, opts ShardedOptions) (*ShardedStore, error) {
	t, err := btree.Open(src, btree.Options{})
	if err != nil {
		return nil, err
	}
	defer func() { _ = t.Close() }()
	dst, err := CreateShardedStore(dstDir, opts)
	if err != nil {
		return nil, err
	}
	var putErr error
	err = t.Scan(0, math.MaxUint64, func(k uint64, v []byte) bool {
		key := CellKey{Cell: uint32(k >> 32), Term: textindex.TermID(uint32(k))}
		sh := &dst.shards[dst.ShardOf(key)] // private store: no locking needed yet
		if err := sh.tree.Put(k, v); err != nil {
			putErr = err
			return false
		}
		return true
	})
	if err == nil {
		err = putErr
	}
	if err != nil {
		_ = dst.Close()
		return nil, fmt.Errorf("grid: migrate %s: %w", src, err)
	}
	return dst, nil
}
