package grid

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/iofault"
	"repro/internal/textindex"
)

// ShardedStore is a disk-backed Store that partitions the CellKey space
// across N independent B+-trees: shard i owns every key whose cell
// satisfies cell mod N == i, and each shard has its own file, page cache
// and mutex. Cells adjacent in row-major order land on different shards,
// so the cells of one query rectangle — and the cold reads of concurrent
// queries — spread across all shards instead of convoying on one tree
// lock and one page cache, which is what makes cold-read throughput scale
// with cores (see BenchmarkColdRead and the CI multi-core gate).
//
// On disk a sharded store is a directory: a MANIFEST header recording the
// layout (shard count and partition function, so OpenShardedStore
// reconstructs it regardless of the opener's GOMAXPROCS), one
// shard-NNNN.bt tree per shard, one wal-NNNN.log write-ahead log per
// shard, and up to two META.N slots holding the index meta committed by
// the last compaction (see livestore.go). Each tree is held under an
// exclusive file lock while open, so two stores can never share a shard.
//
// Reads see the shard's memtable merged over its tree; ApplyUpdate is
// the write path (WAL append, then memtable). Append bypasses both and
// writes the tree directly — it is the bulk-build path, used before the
// store serves queries.
type ShardedStore struct {
	dir    string // display label; a directory for osFS, "(mem)" for a board
	fs     storeFS
	noSync bool
	cache  int
	shards []storeShard

	// seq is the last assigned update sequence number (global across
	// shards; WAL replay ordering and the meta high-water mark use it).
	seq atomic.Uint64

	// metaMu serializes meta-slot commits; the fields below describe the
	// newest valid slot (as of open, then maintained by CommitMeta).
	metaMu     sync.Mutex
	metaSeq    uint64
	metaLastOp uint64
	metaBody   []byte
	metaLoaded bool

	// replayed holds the WAL records found at open with Seq above the meta
	// high-water mark, ascending — the updates the index layer must re-apply
	// to its in-memory state.
	replayed []Update

	// cellMu guards the recorded cell-range assignment (the optional
	// "cells A B" MANIFEST line, see RecordCellRange).
	cellMu   sync.Mutex
	cellLo   uint32
	cellHi   uint32
	hasCells bool
}

// storeShard pairs one B+-tree with the mutex that serializes access to
// it (the tree's page cache is single-threaded), plus the shard's WAL
// and memtable. Shards never take each other's locks, so operations on
// different shards proceed concurrently.
type storeShard struct {
	mu   sync.Mutex
	tree *btree.Tree
	wal  *btree.WAL
	mem  *memtable
}

// ShardedOptions configures CreateShardedStore (and, minus Shards, the
// open paths).
type ShardedOptions struct {
	// Shards is the number of B+-tree shards; <= 0 means GOMAXPROCS.
	// Ignored on open: the MANIFEST records the real layout.
	Shards int
	// CachePages caps each shard's page cache (0 = btree default).
	CachePages int
	// NoSync disables the per-shard fsync discipline (btree.Options.NoSync)
	// for bulk index builds; a crash may then corrupt the store.
	NoSync bool
}

const (
	manifestName  = "MANIFEST"
	manifestMagic = "lcmsr-sharded-store v1"
	partitionName = "cell-mod" // shard(key) = key.Cell mod shards
	// maxShards bounds the shard count on create and open symmetrically,
	// so every store this package writes can be reopened.
	maxShards = 1 << 16
)

// ErrBadManifest marks a MANIFEST that is present but unreadable: wrong
// magic, malformed fields, or a checksum mismatch. It is typed so
// callers can distinguish "this is corrupt" from "this is not a store".
var ErrBadManifest = errors.New("grid: bad sharded store manifest")

func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.bt", i) }
func walFileName(i int) string   { return fmt.Sprintf("wal-%04d.log", i) }

func manifestBytes(n int) []byte {
	body := fmt.Sprintf("%s\nshards %d\npartition %s\n", manifestMagic, n, partitionName)
	return []byte(body + fmt.Sprintf("crc %08x\n", btree.Checksum([]byte(body))))
}

// manifestBytesCells is manifestBytes plus the optional "cells A B" line
// recording the store's cell-range assignment [A, B) in a cluster split.
// The line sits inside the checksummed body, so a tampered assignment is
// rejected the same way a tampered shard count is.
func manifestBytesCells(n int, lo, hi uint32) []byte {
	body := fmt.Sprintf("%s\nshards %d\npartition %s\ncells %d %d\n", manifestMagic, n, partitionName, lo, hi)
	return []byte(body + fmt.Sprintf("crc %08x\n", btree.Checksum([]byte(body))))
}

// CreateShardedStore creates a fresh sharded store in dir (creating the
// directory if needed). It refuses to overwrite an existing store — a
// populated store is a build product worth hours of indexing, so
// clobbering it must be an explicit `rm`, not a side effect; open one
// with OpenShardedStore instead. The MANIFEST header is written last, so
// a creation that fails partway (disk full, lock conflict) never leaves
// a valid-looking manifest over missing shards.
func CreateShardedStore(dir string, opts ShardedOptions) (*ShardedStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("grid: sharded store: %w", err)
	}
	return createShardedFS(osFS{dir: dir}, dir, opts)
}

// CreateShardedStoreOn is CreateShardedStore over an iofault Switchboard —
// the crash suites' entry point: every file of the store shares the
// board's fault plan and kill-point counters.
func CreateShardedStoreOn(sb *iofault.Switchboard, opts ShardedOptions) (*ShardedStore, error) {
	return createShardedFS(memFS{sb: sb}, "(mem)", opts)
}

func createShardedFS(fs storeFS, label string, opts ShardedOptions) (*ShardedStore, error) {
	n := opts.Shards
	if n <= 0 {
		n = defaultShards()
	}
	if n > maxShards {
		return nil, fmt.Errorf("grid: shard count %d exceeds the maximum %d", n, maxShards)
	}
	if fs.Exists(manifestName) {
		return nil, fmt.Errorf("grid: %s already holds a sharded store; delete it or open it with OpenShardedStore", label)
	}
	s := &ShardedStore{dir: label, fs: fs, noSync: opts.NoSync, cache: opts.CachePages, shards: make([]storeShard, n)}
	for i := range s.shards {
		t, err := fs.CreateTree(shardFileName(i), btree.Options{CachePages: opts.CachePages, NoSync: opts.NoSync})
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		s.shards[i].tree = t
		f, err := fs.OpenFile(walFileName(i))
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		w, err := btree.OpenWAL(f, opts.NoSync, nil)
		if err != nil {
			_ = s.Close()
			return nil, fmt.Errorf("grid: create wal %s: %w", fs.Path(walFileName(i)), err)
		}
		s.shards[i].wal = w
		s.shards[i].mem = newMemtable()
	}
	if err := fs.WriteFile(manifestName, manifestBytes(n), !opts.NoSync); err != nil {
		_ = s.Close()
		return nil, fmt.Errorf("grid: sharded store manifest: %w", err)
	}
	return s, nil
}

// OpenShardedStore opens a store previously written by CreateShardedStore,
// reconstructing the shard layout from the MANIFEST header and replaying
// each shard's WAL into its memtable. The per-shard trees are opened
// concurrently — each takes its own file lock.
func OpenShardedStore(dir string) (*ShardedStore, error) {
	return openSharded(dir, ShardedOptions{})
}

// OpenShardedStoreCached is OpenShardedStore with a per-shard page-cache
// cap (0 = btree default).
func OpenShardedStoreCached(dir string, cachePages int) (*ShardedStore, error) {
	return openSharded(dir, ShardedOptions{CachePages: cachePages})
}

// OpenShardedStoreWith is OpenShardedStore with full options (Shards is
// ignored; the MANIFEST records the real layout).
func OpenShardedStoreWith(dir string, opts ShardedOptions) (*ShardedStore, error) {
	return openSharded(dir, opts)
}

// OpenShardedStoreOn opens a board-backed store written by
// CreateShardedStoreOn — the crash suites' recovery path.
func OpenShardedStoreOn(sb *iofault.Switchboard, opts ShardedOptions) (*ShardedStore, error) {
	return openShardedFS(memFS{sb: sb}, "(mem)", opts)
}

func openSharded(dir string, opts ShardedOptions) (*ShardedStore, error) {
	return openShardedFS(osFS{dir: dir}, dir, opts)
}

func openShardedFS(fs storeFS, label string, opts ShardedOptions) (*ShardedStore, error) {
	raw, err := fs.ReadFile(manifestName)
	if err != nil {
		return nil, fmt.Errorf("grid: sharded store manifest: %w", err)
	}
	mi, err := parseManifest(raw, label)
	if err != nil {
		return nil, err
	}
	n := mi.shards
	if mi.legacy {
		// Pre-checksum manifest (three lines, no crc): upgrade in place so
		// the layout header is protected from here on. The rewrite is
		// byte-stable — reopening an upgraded store never rewrites again.
		if err := fs.WriteFile(manifestName, manifestBytes(n), !opts.NoSync); err != nil {
			return nil, fmt.Errorf("grid: upgrade manifest: %w", err)
		}
	}
	s := &ShardedStore{dir: label, fs: fs, noSync: opts.NoSync, cache: opts.CachePages, shards: make([]storeShard, n)}
	s.hasCells, s.cellLo, s.cellHi = mi.hasCells, mi.cellLo, mi.cellHi
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t, err := fs.OpenTree(shardFileName(i), btree.Options{CachePages: opts.CachePages, NoSync: opts.NoSync})
			if err != nil {
				errs[i] = err
				return
			}
			s.shards[i].tree = t
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			_ = s.Close()
			return nil, err
		}
	}
	if err := s.loadMeta(); err != nil {
		_ = s.Close()
		return nil, err
	}
	if err := s.openWALs(); err != nil {
		_ = s.Close()
		return nil, err
	}
	return s, nil
}

// manifestInfo is the decoded MANIFEST header: the shard layout, the
// optional cell-range assignment, and whether the image is the legacy
// three-line (checksum-free) format.
type manifestInfo struct {
	shards   int
	legacy   bool
	hasCells bool
	cellLo   uint32
	cellHi   uint32
}

// parseManifest validates a MANIFEST image. Accepted shapes: legacy
// 3-line (magic/shards/partition), 4-line (plus crc), and 5-line (plus
// "cells A B" before the crc).
func parseManifest(raw []byte, label string) (manifestInfo, error) {
	var mi manifestInfo
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 || len(lines) > 5 {
		return mi, fmt.Errorf("%w: %s has %d header lines", ErrBadManifest, label, len(lines))
	}
	if lines[0] != manifestMagic {
		return mi, fmt.Errorf("%w: %s is not a sharded store (magic %q)", ErrBadManifest, label, lines[0])
	}
	if len(lines) >= 4 {
		body := strings.Join(lines[:len(lines)-1], "\n") + "\n"
		if lines[len(lines)-1] != fmt.Sprintf("crc %08x", btree.Checksum([]byte(body))) {
			return mi, fmt.Errorf("%w: checksum mismatch in %s (%q)", ErrBadManifest, label, lines[len(lines)-1])
		}
	}
	n, err := strconv.Atoi(strings.TrimPrefix(lines[1], "shards "))
	if err != nil || n <= 0 || n > maxShards {
		return mi, fmt.Errorf("%w: implausible shard count %q in %s", ErrBadManifest, lines[1], label)
	}
	if p := strings.TrimPrefix(lines[2], "partition "); p != partitionName {
		return mi, fmt.Errorf("%w: unknown shard partition %q in %s", ErrBadManifest, p, label)
	}
	if len(lines) == 5 {
		var lo, hi uint32
		if _, err := fmt.Sscanf(lines[3], "cells %d %d", &lo, &hi); err != nil || lo >= hi {
			return mi, fmt.Errorf("%w: bad cell range %q in %s", ErrBadManifest, lines[3], label)
		}
		mi.hasCells, mi.cellLo, mi.cellHi = true, lo, hi
	}
	mi.shards = n
	mi.legacy = len(lines) == 3
	return mi, nil
}

// openWALs opens every shard's log (creating empty ones on a store
// written before WALs existed), replays intact records into the shard
// memtables, and rebuilds the global update order. Records at or below
// the meta high-water mark still enter the memtable — their tree effects
// may or may not be flushed, and re-overlaying them is idempotent because
// updates carry absolute weights.
func (s *ShardedStore) openWALs() error {
	var all []Update
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mem = newMemtable()
		f, err := s.fs.OpenFile(walFileName(i))
		if err != nil {
			return err
		}
		var shardUpdates []Update
		w, err := btree.OpenWAL(f, s.noSync, func(payload []byte) error {
			u, err := decodeUpdate(payload)
			if err != nil {
				return err
			}
			shardUpdates = append(shardUpdates, u)
			return nil
		})
		if err != nil {
			return fmt.Errorf("grid: replay wal %s: %w", s.fs.Path(walFileName(i)), err)
		}
		sh.wal = w
		for j := range shardUpdates {
			sh.mem.apply(&shardUpdates[j])
		}
		all = append(all, shardUpdates...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	last := s.metaLastOp
	if len(all) > 0 && all[len(all)-1].Seq > last {
		last = all[len(all)-1].Seq
	}
	s.seq.Store(last)
	for i, u := range all {
		if u.Seq > s.metaLastOp {
			s.replayed = append([]Update(nil), all[i:]...)
			break
		}
	}
	return nil
}

// NumShards returns the number of B+-tree shards.
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// ShardOf returns the shard owning key.
func (s *ShardedStore) ShardOf(key CellKey) int {
	return int(key.Cell % uint32(len(s.shards)))
}

// RecordCellRange records in the MANIFEST that this store holds exactly
// the cells with id in [lo, hi) of a cluster split, rewriting the header
// with the assignment inside its checksum. A node opening the store later
// reads the range back with CellRange and refuses to serve a different
// assignment — the manifest, not the command line, is the authority on
// who owns which cells.
func (s *ShardedStore) RecordCellRange(lo, hi uint32) error {
	if lo >= hi {
		return fmt.Errorf("grid: invalid cell range [%d, %d)", lo, hi)
	}
	s.cellMu.Lock()
	defer s.cellMu.Unlock()
	if err := s.fs.WriteFile(manifestName, manifestBytesCells(len(s.shards), lo, hi), !s.noSync); err != nil {
		return fmt.Errorf("grid: record cell range: %w", err)
	}
	s.hasCells, s.cellLo, s.cellHi = true, lo, hi
	return nil
}

// CellRange returns the cell-range assignment recorded in the MANIFEST,
// if any. ok is false for stores that were never part of a cluster split.
func (s *ShardedStore) CellRange() (lo, hi uint32, ok bool) {
	s.cellMu.Lock()
	defer s.cellMu.Unlock()
	return s.cellLo, s.cellHi, s.hasCells
}

// errStoreClosed is returned by operations on a closed sharded store
// (Close nils the shard trees).
var errStoreClosed = fmt.Errorf("grid: sharded store is closed")

// Append implements Store. The owning shard's lock is held across the
// whole read-merge-write, so concurrent Appends to one key serialize
// instead of losing postings; Appends to keys on different shards do not
// block each other. Append writes the tree directly, bypassing the WAL —
// it is the bulk-build path (the batch is re-runnable, so it does not
// need the log), not the live-update path.
func (s *ShardedStore) Append(key CellKey, ps []Posting) error {
	sh := &s.shards[s.ShardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.tree == nil {
		return errStoreClosed
	}
	return appendLocked(sh.tree, key, ps)
}

// Postings implements Store, blocking only callers that need the same
// shard. The result is the shard tree's list with the memtable's pending
// entries merged over it; when the memtable has nothing for the key —
// the common case on a compacted store — the tree's list is returned
// as-is, on the same code path (and with the same zero-allocation served
// read) as before updates existed.
func (s *ShardedStore) Postings(key CellKey) ([]Posting, error) {
	sh := &s.shards[s.ShardOf(key)]
	sh.mu.Lock()
	if sh.tree == nil {
		sh.mu.Unlock()
		return nil, errStoreClosed
	}
	raw, err := sh.tree.Get(key.Uint64())
	if err == btree.ErrNotFound {
		raw, err = nil, nil
	}
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	over := sh.mem.overrides(key)
	if over == nil {
		sh.mu.Unlock()
		if raw == nil {
			return nil, nil
		}
		ps, err := DecodePostings(raw)
		if err != nil {
			return nil, fmt.Errorf("grid: decode postings for cell %d term %d: %w", key.Cell, key.Term, err)
		}
		return ps, nil
	}
	// Slow path: hold the shard lock through the merge — the override map
	// belongs to the memtable and a concurrent ApplyUpdate may grow it.
	defer sh.mu.Unlock()
	ps, err := DecodePostings(raw)
	if err != nil {
		return nil, fmt.Errorf("grid: decode postings for cell %d term %d: %w", key.Cell, key.Term, err)
	}
	return mergePostings(ps, over), nil
}

// CacheStats aggregates the page-cache counters of every shard. On a
// closed store it returns zeros (the single-tree store tolerates the
// same late call, e.g. an end-of-run stats print).
func (s *ShardedStore) CacheStats() btree.CacheStats {
	var agg btree.CacheStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.tree != nil {
			agg.Add(sh.tree.CacheStats())
		}
		sh.mu.Unlock()
	}
	return agg
}

// Close closes every shard tree and WAL. It does NOT flush memtables or
// commit meta — that is Index.CloseStore's job, which sequences flush,
// meta commit and WAL truncation; closing the store directly after
// updates simply leaves the WAL to be replayed on the next open. Every
// shard is closed even when some fail, and the returned error aggregates
// all failures (errors.Join) — a flush error on shard 3 must not hide
// one on shard 7, and callers checking errors.Is still match any of them.
func (s *ShardedStore) Close() error {
	var errs []error
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.tree != nil {
			if err := sh.tree.Close(); err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			}
			sh.tree = nil
		}
		if sh.wal != nil {
			if err := sh.wal.Close(); err != nil {
				errs = append(errs, fmt.Errorf("shard %d wal: %w", i, err))
			}
			sh.wal = nil
		}
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

// appendLocked is the read-merge-write shared by BTreeStore and
// ShardedStore; the caller must hold the lock of the tree. Postings are
// fixed-width records, so merging is raw-byte concatenation — no decode.
func appendLocked(t *btree.Tree, key CellKey, ps []Posting) error {
	raw, err := t.Get(key.Uint64())
	if err == btree.ErrNotFound {
		raw = nil
	} else if err != nil {
		return err
	}
	return t.Put(key.Uint64(), append(raw, EncodePostings(ps)...))
}

// PostingStore is a disk-backed, closable, scrubbable Store: both layouts
// (single B+-tree file, sharded directory) implement it.
type PostingStore interface {
	Store
	Close() error
	Scrub() ScrubReport
}

// OpenStore opens a posting store of either on-disk layout: a directory
// is a sharded store, a plain file the single-tree layout — the
// compatibility path for stores written before sharding existed.
func OpenStore(path string) (PostingStore, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("grid: open store: %w", err)
	}
	if fi.IsDir() {
		return OpenShardedStore(path)
	}
	return OpenBTreeStore(path)
}

// RemoveStore deletes a closed posting store of either layout: the store
// file, or — for a sharded directory — the MANIFEST, shard, WAL and meta
// files only (the directory itself and any foreign files in it are left
// alone). It refuses paths that do not hold a store, so a caller cleaning
// up after a failed build cannot delete unrelated data.
func RemoveStore(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("grid: remove store: %w", err)
	}
	if !fi.IsDir() {
		var magicBuf [8]byte
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("grid: remove store: %w", err)
		}
		_, rerr := io.ReadFull(f, magicBuf[:])
		_ = f.Close()
		if rerr != nil || !btree.ValidMagic(magicBuf[:]) {
			return fmt.Errorf("grid: %s is not a posting store; refusing to remove it", path)
		}
		return os.Remove(path)
	}
	raw, err := os.ReadFile(filepath.Join(path, manifestName))
	if err != nil || !strings.HasPrefix(string(raw), manifestMagic) {
		return fmt.Errorf("grid: %s is not a sharded store; refusing to remove it", path)
	}
	for _, pattern := range []string{"shard-*.bt", "wal-*.log", "META.*"} {
		files, err := filepath.Glob(filepath.Join(path, pattern))
		if err != nil {
			return err
		}
		for _, f := range files {
			if err := os.Remove(f); err != nil {
				return err
			}
		}
	}
	return os.Remove(filepath.Join(path, manifestName))
}

// MigrateToSharded rewrites a single-file store into a fresh sharded
// store at dstDir and returns it open. Every key keeps its exact posting
// bytes; only the partitioning changes.
func MigrateToSharded(src, dstDir string, opts ShardedOptions) (*ShardedStore, error) {
	t, err := btree.Open(src, btree.Options{})
	if err != nil {
		return nil, err
	}
	defer func() { _ = t.Close() }()
	dst, err := CreateShardedStore(dstDir, opts)
	if err != nil {
		return nil, err
	}
	var putErr error
	err = t.Scan(0, math.MaxUint64, func(k uint64, v []byte) bool {
		key := CellKey{Cell: uint32(k >> 32), Term: textindex.TermID(uint32(k))}
		sh := &dst.shards[dst.ShardOf(key)] // private store: no locking needed yet
		if err := sh.tree.Put(k, v); err != nil {
			putErr = err
			return false
		}
		return true
	})
	if err == nil {
		err = putErr
	}
	if err != nil {
		_ = dst.Close()
		return nil, fmt.Errorf("grid: migrate %s: %w", src, err)
	}
	return dst, nil
}
