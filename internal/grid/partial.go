package grid

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// This file exports the cell-range metadata a cluster routing tier needs:
// how many cells the grid has, whether a query rectangle touches a given
// cell-id range, and which terms appear anywhere in a range. Together with
// SearchRangeInto they let a coordinator split the cell space [0, NumCells)
// across node processes, route each query only to the nodes whose ranges
// intersect its rectangle, and skip nodes whose ranges cannot contain any
// query term at all (see internal/cluster).

// NumCells returns the total number of grid cells; cell ids are dense in
// [0, NumCells).
func (idx *Index) NumCells() int { return idx.nx * idx.ny }

// RangeOverlapsRect reports whether any cell with id in [cellLo, cellHi)
// intersects r. Cell ids are row-major, so a rectangle's cells form one
// id segment per row; the check walks those segments, not the cells.
func (idx *Index) RangeOverlapsRect(cellLo, cellHi uint32, r geo.Rect) bool {
	if cellLo >= cellHi {
		return false
	}
	x0, x1, y0, y1, ok := idx.cellRange(r)
	if !ok {
		return false
	}
	for cy := y0; cy <= y1; cy++ {
		rowLo := uint32(cy*idx.nx + x0)
		rowHi := uint32(cy*idx.nx + x1)
		if rowLo < cellHi && rowHi >= cellLo {
			return true
		}
	}
	return false
}

// RangeTerms returns the distinct terms present in any cell with id in
// [cellLo, cellHi), ascending. It is the node-side half of query routing:
// a node ships this summary to the coordinator once, and the coordinator
// skips the node for every query sharing no term with it — whole-node
// data skipping from metadata alone.
func (idx *Index) RangeTerms(cellLo, cellHi uint32) []textindex.TermID {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	seen := make(map[textindex.TermID]struct{})
	for cell, dir := range idx.cellDir {
		if cell < cellLo || cell >= cellHi {
			continue
		}
		for _, e := range dir {
			seen[e.term] = struct{}{}
		}
	}
	out := make([]textindex.TermID, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StoreCellRange returns the cell-range assignment recorded in the
// backing sharded store's MANIFEST, if the index has one and it records
// one. It is how a cluster node discovers — and is held to — the
// assignment its store was built for.
func (idx *Index) StoreCellRange() (lo, hi uint32, ok bool) {
	type cellRanger interface{ CellRange() (uint32, uint32, bool) }
	if cr, has := idx.store.(cellRanger); has {
		return cr.CellRange()
	}
	return 0, 0, false
}

// TombstoneCount returns the number of deleted object ids still holding
// their slots (ids are never reused; a tombstoned id scores as an empty
// document so corpus statistics stay rebuild-identical). It is the
// observable signal for the churn-scale garbage-collection item: a count
// growing without bound is the cue to schedule an epoch-based rewrite.
func (idx *Index) TombstoneCount() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return len(idx.tombstones)
}
