// Package grid implements the spatial index of §3 of the paper: "We use a
// grid index to organize the geo-textual objects. We partition the entire
// space according to a uniform grid, and each object is stored in the grid
// cell that its point location belongs to. In each grid cell, we maintain
// an inverted list with the keywords of the objects stored in this cell."
//
// Each posting carries the object's precomputed normalized term weight
// wto(t) (Equation 2), so query-time scoring is a multiply-accumulate of
// the query-side IDF weights against the postings of the cells overlapping
// Q.Λ. Posting lists live behind the Store interface: MemStore keeps them
// in memory, and the btreestore sub-package persists them in the
// disk-based B+-tree, exactly as the paper describes.
//
// # Invariants and ownership rules
//
// An Index is safe for concurrent readers, and — over a MemStore or a
// ShardedStore — accepts live mutations (Insert, Delete, Reweight; see
// live.go) serialized behind an internal RWMutex: searches take the read
// side, mutations the write side. Over a sharded store each mutation is
// one WAL record plus a memtable overlay, merged into reads until a
// compaction folds it into the shard trees (livestore.go); over a
// MemStore the posting lists are edited in place. The single-file
// BTreeStore layout remains immutable after build (ErrUpdatesUnsupported).
// BTreeStore serializes tree access behind one mutex, and ShardedStore
// partitions the key space across N trees with one mutex and one page
// cache each, so concurrent cold reads only contend when they need the
// same shard (and SearchInto fans one query's fetches across shards).
// Each cell keeps a term directory sorted by ascending TermID with
// posting-list lengths, maintained exactly under mutation: term
// membership is a binary search, the pooled search path merge-joins the
// query terms against it (stopping as soon as either sorted list is
// exhausted), and the recorded lengths pre-size its result scratch.
//
// Searching comes in two flavors with bit-identical results — both walk
// cells in row-major order and query terms in ascending TermID order, so
// every object's score is accumulated in the same floating-point order,
// and both sort results by ObjectID for deterministic downstream
// accumulation:
//
//   - Search allocates its accumulator per call (a map) and returns a
//     fresh result slice owned by the caller.
//   - SearchInto uses a caller-owned SearchScratch: an epoch-stamped
//     score array replaces the map, and the returned slice aliases the
//     scratch, valid only until the next SearchInto call on it. Pool one
//     scratch per worker (dataset.Planner does) and steady-state search
//     performs zero allocations with a MemStore-backed index.
package grid

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// ObjectID identifies an indexed geo-textual object, dense 0..NumObjects-1.
type ObjectID int32

// Object is a geo-textual object: a point location with a text description.
type Object struct {
	Point geo.Point
	Doc   textindex.Doc
}

// Posting is one entry of a cell-level inverted list: an object in the cell
// containing the term, with its normalized term weight wto(t).
type Posting struct {
	Obj    ObjectID
	Weight float64 // wto(t) of Equation (2)
}

// CellKey addresses one posting list: (cell, term).
type CellKey struct {
	Cell uint32
	Term textindex.TermID
}

// Uint64 packs the key for the B+-tree: cell in the high 32 bits, term in
// the low 32 bits, so one cell's lists are contiguous in key order.
func (k CellKey) Uint64() uint64 {
	return uint64(k.Cell)<<32 | uint64(uint32(k.Term))
}

// Store persists posting lists.
type Store interface {
	// Append adds postings to the list under key (build time).
	Append(key CellKey, ps []Posting) error
	// Postings returns the list under key; empty list when absent.
	Postings(key CellKey) ([]Posting, error)
}

// shardedStore is the optional Store extension a partitioned store
// implements (ShardedStore does). When a store reports more than one
// shard, NewIndex batch-builds each shard from its own goroutine and
// SearchInto fans a query's cold posting fetches across the shards —
// both without cross-shard blocking, since each shard has its own lock.
type shardedStore interface {
	Store
	NumShards() int
	ShardOf(key CellKey) int
}

// MemStore is an in-memory Store.
type MemStore struct {
	lists map[CellKey][]Posting
}

// NewMemStore returns an empty in-memory posting store.
func NewMemStore() *MemStore { return &MemStore{lists: make(map[CellKey][]Posting)} }

// Append implements Store.
func (s *MemStore) Append(key CellKey, ps []Posting) error {
	s.lists[key] = append(s.lists[key], ps...)
	return nil
}

// Postings implements Store.
func (s *MemStore) Postings(key CellKey) ([]Posting, error) { return s.lists[key], nil }

// applyUpdate edits the posting lists in place — the MemStore live-update
// path. Lists stay sorted by ascending ObjectID; the caller (Index)
// serializes mutations against readers. In-place editing keeps the
// memtable-free zero-allocation query path: Postings still returns the
// stored slice directly.
func (s *MemStore) applyUpdate(u *Update) {
	for i, t := range u.Terms {
		key := CellKey{Cell: u.Cell, Term: t}
		list := s.lists[key]
		j := sort.Search(len(list), func(k int) bool { return list[k].Obj >= u.Obj })
		if u.Kind == UpdateDelete {
			if j < len(list) && list[j].Obj == u.Obj {
				list = append(list[:j], list[j+1:]...)
				if len(list) == 0 {
					delete(s.lists, key)
				} else {
					s.lists[key] = list
				}
			}
			continue
		}
		if j < len(list) && list[j].Obj == u.Obj {
			list[j].Weight = u.Weights[i]
			continue
		}
		list = append(list, Posting{})
		copy(list[j+1:], list[j:])
		list[j] = Posting{Obj: u.Obj, Weight: u.Weights[i]}
		s.lists[key] = list
	}
}

// EncodePostings serializes a posting list (for disk-backed stores).
func EncodePostings(ps []Posting) []byte {
	buf := make([]byte, 0, len(ps)*12)
	var tmp [12]byte
	for _, p := range ps {
		binary.LittleEndian.PutUint32(tmp[0:], uint32(p.Obj))
		binary.LittleEndian.PutUint64(tmp[4:], math.Float64bits(p.Weight))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// DecodePostings parses the output of EncodePostings.
func DecodePostings(b []byte) ([]Posting, error) {
	if len(b)%12 != 0 {
		return nil, fmt.Errorf("grid: posting list length %d not a multiple of 12", len(b))
	}
	out := make([]Posting, 0, len(b)/12)
	for off := 0; off < len(b); off += 12 {
		out = append(out, Posting{
			Obj:    ObjectID(binary.LittleEndian.Uint32(b[off:])),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(b[off+4:])),
		})
	}
	return out, nil
}

// termEntry is one row of a cell's term directory: a term present in the
// cell, the length of its posting list (for query planning: which lists
// exist, how much scratch a search needs), and an upper bound on the
// normalized term weights in that list (for WAND-style top-k pruning:
// Σ_t w_{Q,t}·maxW bounds any object's score in the cell). maxW is exact
// after a batch build or a reopen re-derivation and stale-high under live
// updates: Insert and Reweight raise it to cover new weights, Delete
// leaves it — a too-high bound only costs pruning power, never
// correctness.
type termEntry struct {
	term  textindex.TermID
	count int32
	maxW  float64
}

// Index is a uniform grid over the object space.
type Index struct {
	// mu serializes live mutations (write side) against searches (read
	// side). Lock ordering: Index.mu before any shard mutex — mutators
	// hold mu while calling into the store.
	mu       sync.RWMutex
	objects  []Object
	bounds   geo.Rect
	cellSize float64
	nx, ny   int
	store    Store
	// sharded is store when it partitions keys across >1 independently
	// locked shards, nil otherwise; it switches SearchInto to the
	// fan-out fetch path.
	sharded shardedStore
	// cellDir is the per-cell term directory, sorted by ascending TermID
	// so membership is a binary search and query∩cell intersection is a
	// merge-join that exits as soon as either side is exhausted.
	cellDir map[uint32][]termEntry

	// live is store when it has a WAL + memtable update path (the sharded
	// layout); memStore is store when updates edit lists in place. Both
	// nil: the index is immutable (single-file BTreeStore).
	live     liveStore
	memStore *MemStore
	// baseObjects is the object count of the original batch build; ids at
	// or above it are live inserts (the "tail" of the meta snapshot).
	baseObjects int
	// tombstones marks deleted ids (never reused; scores as an empty doc).
	tombstones map[ObjectID]struct{}
	// reweighted marks base-build ids whose weights were replaced, so the
	// meta snapshot patches exactly those on reopen.
	reweighted map[ObjectID]struct{}
	// epoch counts applied mutations (and compactions); readers can cheap-
	// check it to learn whether cached derived state is stale.
	epoch uint64
	// frozen permanently disables the live-update path (Freeze); mutators
	// fail with ErrFrozen. A cluster node freezes its index so the term
	// directories it ships at Hello stay truthful for its lifetime.
	frozen bool
	// scoreCache, when non-nil, caches per-cell partial scores of repeated
	// queries keyed by epoch (scorecache.go). Installed under mu; the
	// search paths read it under the read lock.
	scoreCache *scoreCache
	// metaExtra, when set, supplies the opaque blob stored in the meta
	// snapshot (the dataset layer stores its vocabulary there).
	metaExtra func() []byte
	// metaExtraBlob and replayed carry reopen state for the owner layer:
	// the blob of the meta snapshot the index was opened from, and the
	// WAL updates applied on top of it (ascending Seq).
	metaExtraBlob []byte
	replayed      []Update
	// pending counts updates since the last compaction; autoCompact is
	// the threshold that triggers one from the update path (<= 0: never).
	pending     int
	autoCompact int
}

// defaultAutoCompact is the update count that triggers an automatic
// compaction. Large enough that bursts stay on the cheap WAL+memtable
// path, small enough that the memtable overlay (and recovery replay work)
// stays bounded.
const defaultAutoCompact = 8192

// NewIndex builds a grid index over objects with the given cell size (same
// unit as coordinates; the paper does not prescribe one — typical is a few
// hundred metres). The store receives one Append per (cell, term).
func NewIndex(objects []Object, bounds geo.Rect, cellSize float64, store Store) (*Index, error) {
	return newIndex(objects, bounds, cellSize, store, true)
}

// NewIndexOver builds the index metadata (grid layout, per-cell term
// directories) over a store that already holds the postings — e.g. a
// sharded store written by a previous build and reopened cold. Nothing is
// appended; the objects must be the base-build objects the store was
// built from. When the store carries a committed meta snapshot (every
// sharded store built by NewIndex does), the metadata is loaded from it
// instead of being re-derived — including live objects inserted after
// the build, tombstones and reweights — and any WAL records past the
// snapshot are re-applied, so a reopened store answers exactly as it did
// before it was closed (or crashed).
func NewIndexOver(objects []Object, bounds geo.Rect, cellSize float64, store Store) (*Index, error) {
	return newIndex(objects, bounds, cellSize, store, false)
}

func newIndex(objects []Object, bounds geo.Rect, cellSize float64, store Store, appendPostings bool) (*Index, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("grid: cell size must be positive, got %v", cellSize)
	}
	if store == nil {
		store = NewMemStore()
	}
	nx := int(math.Ceil(bounds.Width()/cellSize)) + 1
	ny := int(math.Ceil(bounds.Height()/cellSize)) + 1
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	idx := &Index{
		objects:     objects,
		bounds:      bounds,
		cellSize:    cellSize,
		nx:          nx,
		ny:          ny,
		store:       store,
		cellDir:     make(map[uint32][]termEntry),
		baseObjects: len(objects),
		tombstones:  make(map[ObjectID]struct{}),
		reweighted:  make(map[ObjectID]struct{}),
		autoCompact: defaultAutoCompact,
	}
	if sh, ok := store.(shardedStore); ok && sh.NumShards() > 1 {
		idx.sharded = sh
	}
	if ls, ok := store.(liveStore); ok {
		idx.live = ls
	} else if ms, ok := store.(*MemStore); ok {
		idx.memStore = ms
	}
	if !appendPostings && idx.live != nil {
		if body, _, ok := idx.live.MetaSnapshot(); ok {
			if err := idx.openFromMeta(body); err != nil {
				return nil, err
			}
			return idx, nil
		}
		if len(idx.live.ReplayedUpdates()) > 0 {
			// Updates were logged but no meta was ever committed — only a
			// crash inside the very first meta commit can leave this; the
			// in-memory state they patched is unrecoverable without it.
			return nil, fmt.Errorf("%w: store holds WAL updates but no committed meta; rebuild the store", ErrCorruptMeta)
		}
	}
	// Group postings per (cell, term) to batch Append calls.
	batch := make(map[CellKey][]Posting)
	for id, o := range objects {
		cell, ok := idx.cellOf(o.Point)
		if !ok {
			return nil, fmt.Errorf("grid: object %d at %v outside bounds %v", id, o.Point, bounds)
		}
		for i, t := range o.Doc.Terms {
			key := CellKey{Cell: cell, Term: t}
			batch[key] = append(batch[key], Posting{Obj: ObjectID(id), Weight: o.Doc.Weights[i]})
		}
	}
	if appendPostings {
		if err := idx.appendBatch(batch); err != nil {
			return nil, err
		}
	}
	for key, ps := range batch {
		var maxW float64
		for _, p := range ps {
			if p.Weight > maxW {
				maxW = p.Weight
			}
		}
		idx.cellDir[key.Cell] = append(idx.cellDir[key.Cell], termEntry{term: key.Term, count: int32(len(ps)), maxW: maxW})
	}
	for _, dir := range idx.cellDir {
		sort.Slice(dir, func(i, j int) bool { return dir[i].term < dir[j].term })
	}
	if appendPostings && idx.live != nil {
		// Genesis meta commit: make the batch build durable and record the
		// derived metadata, so the store can be reopened (and can accept
		// updates whose recovery depends on a committed baseline) without
		// ever re-deriving from objects. Under NoSync the writes happen
		// without fsyncs — the usual bulk-build contract.
		if err := idx.live.Flush(); err != nil {
			return nil, err
		}
		if err := idx.live.CommitMeta(idx.encodeMetaLocked()); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

// appendBatch writes the grouped postings to the store. With a sharded
// store each shard is built from its own goroutine — keys are bucketed by
// owning shard first, so the goroutines never contend on a shard lock.
// Each key still gets all its postings in one Append, and posting order
// within a key is the object insertion order either way, so the stored
// lists are identical for any shard count.
func (idx *Index) appendBatch(batch map[CellKey][]Posting) error {
	if idx.sharded == nil {
		for key, ps := range batch {
			if err := idx.store.Append(key, ps); err != nil {
				return fmt.Errorf("grid: store append: %w", err)
			}
		}
		return nil
	}
	type keyBatch struct {
		key CellKey
		ps  []Posting
	}
	buckets := make([][]keyBatch, idx.sharded.NumShards())
	for key, ps := range batch {
		s := idx.sharded.ShardOf(key)
		buckets[s] = append(buckets[s], keyBatch{key, ps})
	}
	errs := make([]error, len(buckets))
	var wg sync.WaitGroup
	for s := range buckets {
		if len(buckets[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for _, kb := range buckets[s] {
				if err := idx.store.Append(kb.key, kb.ps); err != nil {
					errs[s] = err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("grid: store append: %w", err)
		}
	}
	return nil
}

// Store returns the posting store backing the index.
func (idx *Index) Store() Store { return idx.store }

// NumObjects returns the number of indexed objects.
func (idx *Index) NumObjects() int { return len(idx.objects) }

// Object returns the object with the given ID.
func (idx *Index) Object(id ObjectID) Object { return idx.objects[id] }

// Dims returns the grid dimensions (cells in x and y).
func (idx *Index) Dims() (nx, ny int) { return idx.nx, idx.ny }

func (idx *Index) cellOf(p geo.Point) (uint32, bool) {
	if !idx.bounds.Contains(p) {
		return 0, false
	}
	cx := int((p.X - idx.bounds.MinX) / idx.cellSize)
	cy := int((p.Y - idx.bounds.MinY) / idx.cellSize)
	if cx >= idx.nx {
		cx = idx.nx - 1
	}
	if cy >= idx.ny {
		cy = idx.ny - 1
	}
	return uint32(cy*idx.nx + cx), true
}

// cellRect returns the rectangle covered by a cell id.
func (idx *Index) cellRect(cell uint32) geo.Rect {
	cx := int(cell) % idx.nx
	cy := int(cell) / idx.nx
	minX := idx.bounds.MinX + float64(cx)*idx.cellSize
	minY := idx.bounds.MinY + float64(cy)*idx.cellSize
	return geo.Rect{MinX: minX, MinY: minY, MaxX: minX + idx.cellSize, MaxY: minY + idx.cellSize}
}

// cellRange returns the inclusive cell-coordinate range covered by r, or
// ok == false when r misses the grid entirely. Search and SearchInto both
// derive their cell walks from it, so they visit identical cells.
func (idx *Index) cellRange(r geo.Rect) (x0, x1, y0, y1 int, ok bool) {
	clipped, ok := r.Intersect(idx.bounds)
	if !ok {
		return 0, 0, 0, 0, false
	}
	x0 = clampCell(int((clipped.MinX-idx.bounds.MinX)/idx.cellSize), idx.nx-1)
	x1 = clampCell(int((clipped.MaxX-idx.bounds.MinX)/idx.cellSize), idx.nx-1)
	y0 = clampCell(int((clipped.MinY-idx.bounds.MinY)/idx.cellSize), idx.ny-1)
	y1 = clampCell(int((clipped.MaxY-idx.bounds.MinY)/idx.cellSize), idx.ny-1)
	return x0, x1, y0, y1, true
}

// cellsOverlapping returns ids of all cells intersecting r.
func (idx *Index) cellsOverlapping(r geo.Rect) []uint32 {
	x0, x1, y0, y1, ok := idx.cellRange(r)
	if !ok {
		return nil
	}
	out := make([]uint32, 0, (x1-x0+1)*(y1-y0+1))
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			out = append(out, uint32(cy*idx.nx+cx))
		}
	}
	return out
}

// ObjScore is an object with its query relevance σ(o.ψ, Q.ψ).
type ObjScore struct {
	Obj   ObjectID
	Score float64
}

// Search returns every object inside r with a positive relevance to q,
// computed from the cell inverted lists as in Equation (2): it reads the
// postings lists of the query keywords in the overlapping cells and
// accumulates (1/W_Q) Σ w_{Q,t}·wto(t) per object. Objects in boundary
// cells but outside r are filtered by their exact location.
func (idx *Index) Search(q textindex.Query, r geo.Rect) ([]ObjScore, error) {
	if len(q.Terms) == 0 || q.Norm == 0 {
		return nil, nil
	}
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	acc := make(map[ObjectID]float64)
	for _, cell := range idx.cellsOverlapping(r) {
		dir := idx.cellDir[cell]
		if len(dir) == 0 {
			continue
		}
		fullInside := false
		cr := idx.cellRect(cell)
		if cr.MinX >= r.MinX && cr.MaxX <= r.MaxX && cr.MinY >= r.MinY && cr.MaxY <= r.MaxY {
			fullInside = true
		}
		for qi, t := range q.Terms {
			if !termInCell(dir, t) {
				continue
			}
			ps, err := idx.fetchPostings(CellKey{Cell: cell, Term: t})
			if err != nil {
				return nil, err
			}
			for _, p := range ps {
				if !fullInside && !r.Contains(idx.objects[p.Obj].Point) {
					continue
				}
				acc[p.Obj] += q.IDF[qi] * p.Weight
			}
		}
	}
	out := make([]ObjScore, 0, len(acc))
	for id, s := range acc {
		out = append(out, ObjScore{Obj: id, Score: s / q.Norm})
	}
	// Map iteration order is randomized; sort by object ID so downstream
	// floating-point accumulation (node weights in dataset.Planner) is
	// deterministic — the parallel query engine's golden guarantee
	// (identical results for any worker count) depends on this.
	sort.Slice(out, func(i, j int) bool { return out[i].Obj < out[j].Obj })
	return out, nil
}

// termInCell reports whether the (sorted) cell directory contains t.
func termInCell(dir []termEntry, t textindex.TermID) bool {
	i := sort.Search(len(dir), func(i int) bool { return dir[i].term >= t })
	return i < len(dir) && dir[i].term == t
}
