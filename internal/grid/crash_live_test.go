package grid

// Crash-replay suite for the live-update path: replay a scripted stream
// of inserts, deletes, reweights and compactions against a sharded store
// on a fault-injected in-memory switchboard, cut the run at randomized
// write boundaries (plain kill, torn final write, or fsyncs silently
// dropped before power loss), reboot the frozen disk image, and require
// that reopening recovers a provably valid state or fails with a typed
// error. The strong contract for an honest disk is exact: every update
// acknowledged before the crash survives bit-identically (the WAL is
// synced per append), and nothing that wasn't acknowledged appears. For
// a lying disk (dropped fsyncs) the contract is the btree crash suite's:
// any surviving posting must carry a weight that was really written for
// that (object, term) at some point — a fabricated or silently wrong
// answer is the one outcome that must never happen.

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"testing"

	"repro/internal/btree"
	"repro/internal/geo"
	"repro/internal/iofault"
	"repro/internal/textindex"
)

const (
	crashShards   = 3
	crashCell     = 100.0
	crashBaseObjs = 60
)

var crashBounds = geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

// liveOp is one scripted logical operation.
type liveOp struct {
	kind    int // 0 insert, 1 delete, 2 reweight, 3 compact
	point   geo.Point
	doc     textindex.Doc
	strs    []string
	id      ObjectID
	weights []float64
}

// liveScript generates the deterministic op stream every crash run
// replays, tracking liveness so deletes and reweights always address
// alive objects.
func liveScript(vocab []string, base []Object) []liveOp {
	rng := rand.New(rand.NewSource(2026))
	alive := make([]ObjectID, len(base))
	nTermsOf := make(map[ObjectID]int)
	for i := range base {
		alive[i] = ObjectID(i)
		nTermsOf[ObjectID(i)] = len(base[i].Doc.Terms)
	}
	next := ObjectID(len(base))
	var ops []liveOp
	for len(ops) < 70 {
		switch r := rng.Intn(10); {
		case r < 4: // insert
			k := 1 + rng.Intn(3)
			seen := map[int]bool{}
			var terms []textindex.TermID
			for len(terms) < k {
				t := rng.Intn(len(vocab))
				if !seen[t] {
					seen[t] = true
					terms = append(terms, textindex.TermID(t))
				}
			}
			sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
			w := make([]float64, k)
			tf := make([]int32, k)
			strs := make([]string, k)
			for i := range w {
				w[i] = 0.05 + rng.Float64()
				tf[i] = 1
				strs[i] = vocab[terms[i]]
			}
			ops = append(ops, liveOp{kind: 0,
				point: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
				doc:   textindex.Doc{Terms: terms, Weights: w, TF: tf},
				strs:  strs})
			alive = append(alive, next)
			nTermsOf[next] = k
			next++
		case r < 6 && len(alive) > 5: // delete
			i := rng.Intn(len(alive))
			id := alive[i]
			alive = append(alive[:i], alive[i+1:]...)
			ops = append(ops, liveOp{kind: 1, id: id})
		case r < 9 && len(alive) > 0: // reweight
			id := alive[rng.Intn(len(alive))]
			w := make([]float64, nTermsOf[id])
			for i := range w {
				w[i] = 0.05 + rng.Float64()
			}
			ops = append(ops, liveOp{kind: 2, id: id, weights: w})
		default:
			ops = append(ops, liveOp{kind: 3})
		}
	}
	return ops
}

// copyObjs shallow-copies the object table: mutators only swap weight
// slice pointers, so element copies keep the pristine base reusable
// across runs.
func copyObjs(objs []Object) []Object {
	return append([]Object(nil), objs...)
}

// applyLiveOps replays ops until the first error, returning how many
// were acknowledged and the error that stopped the run (nil = all ran).
func applyLiveOps(idx *Index, ops []liveOp, after func(i int)) (int, error) {
	for i, op := range ops {
		var err error
		switch op.kind {
		case 0:
			_, err = idx.Insert(op.point, op.doc, op.strs)
		case 1:
			err = idx.Delete(op.id)
		case 2:
			err = idx.Reweight(op.id, op.weights)
		case 3:
			err = idx.Compact()
		}
		if err != nil {
			return i, err
		}
		if after != nil {
			after(i)
		}
	}
	return len(ops), nil
}

// liveState is a complete logical fingerprint of an index: the object
// count, the tombstone set, and per term the full (object, weight) list
// recovered through real searches (IDF 1, norm 1, full bounds — so each
// object's score is exactly its stored posting weight).
type liveState struct {
	nObjs   int
	tombs   []ObjectID
	perTerm [][]ObjScore
}

func fingerprintLive(idx *Index, nTerms int) (liveState, error) {
	st := liveState{nObjs: len(idx.ObjectsRef())}
	idx.mu.RLock()
	for id := range idx.tombstones {
		st.tombs = append(st.tombs, id)
	}
	idx.mu.RUnlock()
	sort.Slice(st.tombs, func(i, j int) bool { return st.tombs[i] < st.tombs[j] })
	for tid := 0; tid < nTerms; tid++ {
		q := textindex.Query{Terms: []textindex.TermID{textindex.TermID(tid)}, IDF: []float64{1}, Norm: 1}
		res, err := idx.Search(q, crashBounds)
		if err != nil {
			return st, err
		}
		st.perTerm = append(st.perTerm, res)
	}
	return st, nil
}

// buildLiveBoard builds the base index on a fresh fault-free board and
// returns board and index; the caller installs a fault plan afterwards
// (SetPlan resets the write counters, so kill-point indices count from
// the start of the update phase, not the bulk build).
func buildLiveBoard(t *testing.T, base []Object) (*iofault.Switchboard, *Index) {
	t.Helper()
	sb := iofault.NewSwitchboard()
	store, err := CreateShardedStoreOn(sb, ShardedOptions{Shards: crashShards})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewIndex(copyObjs(base), crashBounds, crashCell, store)
	if err != nil {
		t.Fatal(err)
	}
	return sb, idx
}

// crashTyped reports whether a recovery failure is one of the typed
// corruption outcomes the contract allows.
func crashTyped(err error) bool {
	return errors.Is(err, ErrCorruptMeta) || errors.Is(err, ErrMetaMismatch) ||
		errors.Is(err, ErrCorruptUpdate) || errors.Is(err, ErrBadManifest) ||
		errors.Is(err, btree.ErrCorrupt) || errors.Is(err, ErrShardIO)
}

// reopenLive reboots a disk image: reopen the sharded store and rebuild
// the index over the same base objects from the committed meta + WAL.
func reopenLive(img *iofault.Switchboard, base []Object) (*Index, error) {
	store, err := OpenShardedStoreOn(img, ShardedOptions{})
	if err != nil {
		return nil, err
	}
	idx, err := NewIndexOver(copyObjs(base), crashBounds, crashCell, store)
	if err != nil {
		store.Close()
		return nil, err
	}
	return idx, nil
}

// crashBaseline replays the script fault-free and returns the vocabulary
// size, the per-prefix fingerprints (states[i] = after i acked ops) and
// the total number of update-phase writes (the kill-point space, close
// included).
func crashBaseline(t *testing.T) (base []Object, vocab []string, ops []liveOp, states []liveState, totalWrites int) {
	t.Helper()
	v, vocabT, objs := randomCorpus(t, crashBaseObjs, 99)
	nTerms := v.NumTerms()
	ops = liveScript(vocabT, objs)
	sb, idx := buildLiveBoard(t, objs)
	sb.SetPlan(iofault.Plan{})
	snap := func() liveState {
		st, err := fingerprintLive(idx, nTerms)
		if err != nil {
			t.Fatalf("fault-free fingerprint failed: %v", err)
		}
		return st
	}
	states = append(states, snap())
	if _, err := applyLiveOps(idx, ops, func(i int) {
		states = append(states, snap())
	}); err != nil {
		t.Fatalf("fault-free replay failed: %v", err)
	}
	if err := idx.CloseStore(); err != nil {
		t.Fatalf("fault-free close failed: %v", err)
	}
	_, w, _ := sb.Counts()
	if w < 100 {
		t.Fatalf("update phase produced only %d writes; the kill-point space is too small", w)
	}
	return objs, vocabT, ops, states, w
}

// assertExactState requires the recovered index to be bit-identical to
// the baseline state after exactly `acked` acknowledged operations.
func assertExactState(t *testing.T, idx *Index, want liveState, nTerms int, tag string) {
	t.Helper()
	got, err := fingerprintLive(idx, nTerms)
	if err != nil {
		t.Errorf("%s: recovered index failed to serve: %v", tag, err)
		return
	}
	if got.nObjs != want.nObjs {
		t.Errorf("%s: recovered %d objects, want %d", tag, got.nObjs, want.nObjs)
		return
	}
	if !reflect.DeepEqual(got.tombs, want.tombs) {
		t.Errorf("%s: tombstones %v, want %v", tag, got.tombs, want.tombs)
		return
	}
	for tid := range want.perTerm {
		if !reflect.DeepEqual(got.perTerm[tid], want.perTerm[tid]) {
			t.Errorf("%s: term %d postings diverge after recovery:\n got %v\nwant %v",
				tag, tid, got.perTerm[tid], want.perTerm[tid])
			return
		}
	}
}

// TestCrashLiveKillPoints cuts the update stream after exactly N writes
// for a sweep of N and requires, for both reboot modes (process kill
// with the page cache intact, and power loss keeping only synced bytes),
// that the reopened index equals the state after the acknowledged prefix
// — every acked op is durable, nothing unacked surfaces.
func TestCrashLiveKillPoints(t *testing.T) {
	base, _, ops, states, total := crashBaseline(t)
	nTerms := len(states[0].perTerm)
	rng := rand.New(rand.NewSource(31))
	pts := map[int]bool{}
	for n := 1; n <= 12 && n < total; n++ {
		pts[n] = true
	}
	for n := total - 12; n < total; n++ {
		if n >= 1 {
			pts[n] = true
		}
	}
	for len(pts) < 90 {
		pts[1+rng.Intn(total-1)] = true
	}
	var sorted []int
	for n := range pts {
		sorted = append(sorted, n)
	}
	sort.Ints(sorted)
	for _, n := range sorted {
		sb, idx := buildLiveBoard(t, base)
		sb.SetPlan(iofault.Plan{CrashAfterWrites: n})
		acked, err := applyLiveOps(idx, ops, nil)
		if err == nil {
			if err = idx.CloseStore(); err == nil {
				t.Fatalf("kill@%d: run finished despite crash plan (total %d)", n, total)
			}
		}
		if !sb.Crashed() {
			t.Fatalf("kill@%d: run errored (%v) without the board crashing", n, err)
		}
		for _, durable := range []bool{false, true} {
			tag := "kill@" + strconv.Itoa(n) + "/kill"
			if durable {
				tag = "kill@" + strconv.Itoa(n) + "/powerloss"
			}
			rec, rerr := reopenLive(sb.Fork(durable), base)
			if rerr != nil {
				// An honest disk plus a per-append fsync discipline must
				// always recover; any refusal here — typed or not — is a
				// durability bug, not an acceptable detection.
				t.Errorf("%s: reopen failed (acked %d, typed %v): %v", tag, acked, crashTyped(rerr), rerr)
				continue
			}
			assertExactState(t, rec, states[acked], nTerms, tag)
			rec.CloseStore()
		}
	}
}

// TestCrashLiveTornWrites tears one write mid-stream (a partial WAL
// frame, tree page, meta slot or manifest) and requires recovery to the
// acknowledged prefix or a typed corruption error — never a silently
// different state.
func TestCrashLiveTornWrites(t *testing.T) {
	base, _, ops, states, total := crashBaseline(t)
	nTerms := len(states[0].perTerm)
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 40; i++ {
		n := 1 + rng.Intn(total-1)
		tornBytes := 1 + rng.Intn(512)
		sb, idx := buildLiveBoard(t, base)
		sb.SetPlan(iofault.Plan{TornWrite: n, TornBytes: tornBytes})
		acked, err := applyLiveOps(idx, ops, nil)
		if err == nil {
			if err = idx.CloseStore(); err == nil {
				t.Fatalf("torn@%d: run finished despite torn-write plan", n)
			}
		}
		tag := "torn@" + strconv.Itoa(n) + "+" + strconv.Itoa(tornBytes)
		rec, rerr := reopenLive(sb.Fork(false), base)
		if rerr != nil {
			if !crashTyped(rerr) {
				t.Errorf("%s: reopen failed untyped: %v", tag, rerr)
			}
			continue
		}
		assertExactState(t, rec, states[acked], nTerms, tag)
		rec.CloseStore()
	}
}

// TestCrashLiveDroppedFsyncs models a lying disk: fsyncs silently
// succeed without persisting, then the power fails. Acknowledged
// updates may legitimately be lost (the disk lied), so exact recovery
// cannot be demanded; what must still hold is that nothing fabricated
// survives — the store opens typed-or-clean, and every posting the
// recovered index serves carries a weight that was really written for
// that (object, term) pair at some point in the run.
func TestCrashLiveDroppedFsyncs(t *testing.T) {
	base, _, ops, states, total := crashBaseline(t)
	nTerms := len(states[0].perTerm)
	// allowed[term][obj] = every weight that (obj, term) ever carried.
	allowed := make([]map[ObjectID]map[float64]bool, nTerms)
	for tid := 0; tid < nTerms; tid++ {
		allowed[tid] = make(map[ObjectID]map[float64]bool)
		for _, st := range states {
			for _, os := range st.perTerm[tid] {
				if allowed[tid][os.Obj] == nil {
					allowed[tid][os.Obj] = make(map[float64]bool)
				}
				allowed[tid][os.Obj][os.Score] = true
			}
		}
	}
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 40; i++ {
		n := 1 + rng.Intn(total-1)
		keep := rng.Intn(16)
		sb, idx := buildLiveBoard(t, base)
		sb.SetPlan(iofault.Plan{CrashAfterWrites: n, DropSyncAfter: keep, DropAllSyncs: keep == 0})
		_, err := applyLiveOps(idx, ops, nil)
		if err == nil {
			if err = idx.CloseStore(); err == nil {
				t.Fatalf("fsync-drop@%d: run finished despite crash plan", n)
			}
		}
		tag := "fsync-drop@" + strconv.Itoa(n) + "/keep" + strconv.Itoa(keep)
		rec, rerr := reopenLive(sb.Fork(true), base)
		if rerr != nil {
			if !crashTyped(rerr) {
				t.Errorf("%s: reopen failed untyped: %v", tag, rerr)
			}
			continue
		}
		got, gerr := fingerprintLive(rec, nTerms)
		if gerr != nil {
			if !crashTyped(gerr) {
				t.Errorf("%s: recovered index failed untyped while serving: %v", tag, gerr)
			}
			rec.CloseStore()
			continue
		}
		for tid := range got.perTerm {
			for _, os := range got.perTerm[tid] {
				if !allowed[tid][os.Obj][os.Score] {
					t.Errorf("%s: term %d serves object %d with weight %v never written for it — silent wrong answer",
						tag, tid, os.Obj, os.Score)
				}
			}
		}
		rec.CloseStore()
	}
}

// TestCrashLiveCloseLosesNothing is the positive durability claim: after
// a clean CloseStore, power loss (only synced bytes survive) recovers
// the final state bit-identically.
func TestCrashLiveCloseLosesNothing(t *testing.T) {
	base, _, ops, states, _ := crashBaseline(t)
	nTerms := len(states[0].perTerm)
	sb, idx := buildLiveBoard(t, base)
	if _, err := applyLiveOps(idx, ops, nil); err != nil {
		t.Fatal(err)
	}
	if err := idx.CloseStore(); err != nil {
		t.Fatal(err)
	}
	rec, err := reopenLive(sb.Fork(true), base)
	if err != nil {
		t.Fatalf("reopen after clean close + power loss: %v", err)
	}
	defer rec.CloseStore()
	assertExactState(t, rec, states[len(ops)], nTerms, "post-close powerloss")
	if rep := rec.Store().(*ShardedStore).Scrub(); rep.Err() != nil {
		t.Fatalf("post-close store failed scrub: %v", rep.Err())
	}
}
