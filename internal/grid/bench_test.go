package grid

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/textindex"
)

func benchIndex(b *testing.B) (*Index, *textindex.Vocabulary) {
	b.Helper()
	rng := rand.New(rand.NewSource(8))
	v := textindex.NewVocabulary()
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 20000, MaxY: 20000}
	var objs []Object
	vocab := make([]string, 200)
	for i := range vocab {
		vocab[i] = string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	for i := 0; i < 10000; i++ {
		toks := []string{vocab[rng.Intn(200)], vocab[rng.Intn(200)]}
		objs = append(objs, Object{
			Point: geo.Point{X: rng.Float64() * 20000, Y: rng.Float64() * 20000},
			Doc:   v.IndexDoc(toks),
		})
	}
	idx, err := NewIndex(objs, bounds, 500, nil)
	if err != nil {
		b.Fatal(err)
	}
	return idx, v
}

func BenchmarkSearch(b *testing.B) {
	idx, v := benchIndex(b)
	q := v.PrepareQuery([]string{"aa", "ba", "ca"})
	r := geo.Rect{MinX: 5000, MinY: 5000, MaxX: 15000, MaxY: 15000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Search(q, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchInto is the pooled counterpart of BenchmarkSearch; with
// the in-memory store it must report 0 allocs/op steady-state.
func BenchmarkSearchInto(b *testing.B) {
	idx, v := benchIndex(b)
	q := v.PrepareQuery([]string{"aa", "ba", "ca"})
	r := geo.Rect{MinX: 5000, MinY: 5000, MaxX: 15000, MaxY: 15000}
	var scratch SearchScratch
	if _, err := idx.SearchInto(q, r, &scratch); err != nil { // warm the buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.SearchInto(q, r, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}
