package grid

import (
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/geo"
	"repro/internal/textindex"
)

func benchCorpus(b *testing.B) (*textindex.Vocabulary, []string, []Object, geo.Rect) {
	b.Helper()
	rng := rand.New(rand.NewSource(8))
	v := textindex.NewVocabulary()
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 20000, MaxY: 20000}
	var objs []Object
	vocab := make([]string, 200)
	for i := range vocab {
		vocab[i] = string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	for i := 0; i < 10000; i++ {
		toks := []string{vocab[rng.Intn(200)], vocab[rng.Intn(200)]}
		objs = append(objs, Object{
			Point: geo.Point{X: rng.Float64() * 20000, Y: rng.Float64() * 20000},
			Doc:   v.IndexDoc(toks),
		})
	}
	return v, vocab, objs, bounds
}

func benchIndex(b *testing.B) (*Index, *textindex.Vocabulary) {
	b.Helper()
	v, _, objs, bounds := benchCorpus(b)
	idx, err := NewIndex(objs, bounds, 500, nil)
	if err != nil {
		b.Fatal(err)
	}
	return idx, v
}

func BenchmarkSearch(b *testing.B) {
	idx, v := benchIndex(b)
	q := v.PrepareQuery([]string{"aa", "ba", "ca"})
	r := geo.Rect{MinX: 5000, MinY: 5000, MaxX: 15000, MaxY: 15000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Search(q, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchInto is the pooled counterpart of BenchmarkSearch; with
// the in-memory store it must report 0 allocs/op steady-state.
func BenchmarkSearchInto(b *testing.B) {
	idx, v := benchIndex(b)
	q := v.PrepareQuery([]string{"aa", "ba", "ca"})
	r := geo.Rect{MinX: 5000, MinY: 5000, MaxX: 15000, MaxY: 15000}
	var scratch SearchScratch
	if _, err := idx.SearchInto(q, r, &scratch); err != nil { // warm the buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.SearchInto(q, r, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdRead measures concurrent query throughput against a
// disk-backed posting store whose page cache is far smaller than the
// working set, so nearly every posting fetch decodes pages cold. The
// single-tree layout serializes all of that work behind one mutex and one
// cache; the sharded layout gives every shard its own, so throughput
// scales with -cpu. CI runs this with -cpu=1,4 and gates on the sharded
// ratio (scripts/bench-scaling.sh).
func BenchmarkColdRead(b *testing.B) {
	v, vocab, objs, bounds := benchCorpus(b)
	rng := rand.New(rand.NewSource(17))
	type benchQuery struct {
		q textindex.Query
		r geo.Rect
	}
	queries := make([]benchQuery, 64)
	for i := range queries {
		q := v.PrepareQuery([]string{vocab[rng.Intn(200)], vocab[rng.Intn(200)], vocab[rng.Intn(200)]})
		x, y := rng.Float64()*12000, rng.Float64()*12000
		queries[i] = benchQuery{q: q, r: geo.Rect{MinX: x, MinY: y, MaxX: x + 8000, MaxY: y + 8000}}
	}
	run := func(b *testing.B, idx *Index) {
		var cursor atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var scratch SearchScratch
			for pb.Next() {
				bq := queries[int(cursor.Add(1)-1)%len(queries)]
				if _, err := idx.SearchInto(bq.q, bq.r, &scratch); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
	// 16 cache pages per tree versus a multi-thousand-page working set:
	// effectively every fetch is cold.
	const cachePages = 16
	b.Run("single", func(b *testing.B) {
		store, err := NewBTreeStoreCached(filepath.Join(b.TempDir(), "p.bt"), cachePages)
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close()
		idx, err := NewIndex(objs, bounds, 500, store)
		if err != nil {
			b.Fatal(err)
		}
		run(b, idx)
	})
	b.Run("sharded", func(b *testing.B) {
		store, err := CreateShardedStore(b.TempDir(), ShardedOptions{Shards: 8, CachePages: cachePages})
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close()
		idx, err := NewIndex(objs, bounds, 500, store)
		if err != nil {
			b.Fatal(err)
		}
		run(b, idx)
	})
}

// BenchmarkHotQueryCache replays a small hot query set — the workload
// shape cmd/lcmsr -hotspots generates — against a disk-backed sharded
// store whose page cache is far smaller than the working set.
//
//   - cold answers every repeat by fetching and decoding postings from
//     disk again.
//   - cached serves every repeat wholly from the (cell, query) score
//     cache: the steady state plans zero posting fetches.
//
// scripts/bench-json.sh runs both and gates cached at >= 3x faster than
// cold, with 0 allocs/op on the cached leg (the hits replay into pooled
// scratch; TestScoreCacheHitZeroAlloc pins the same property).
func BenchmarkHotQueryCache(b *testing.B) {
	v, vocab, objs, bounds := benchCorpus(b)
	rng := rand.New(rand.NewSource(23))
	type benchQuery struct {
		q textindex.Query
		r geo.Rect
	}
	// City-wide hot queries: the rectangle spans the whole index, so every
	// cell is fully inside and the cached leg is a pure hit path — zero
	// store reads, zero allocations. A partially covered rectangle would
	// re-fetch its boundary cells from disk on every repeat and measure
	// the page cache as much as the score cache.
	hot := make([]benchQuery, 8)
	for i := range hot {
		kws := make([]string, 6)
		for j := range kws {
			kws[j] = vocab[rng.Intn(200)]
		}
		hot[i] = benchQuery{q: v.PrepareQuery(kws), r: bounds}
	}
	const cachePages = 16
	mk := func(b *testing.B) *Index {
		store, err := CreateShardedStore(b.TempDir(), ShardedOptions{Shards: 8, CachePages: cachePages})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { store.Close() })
		idx, err := NewIndex(objs, bounds, 500, store)
		if err != nil {
			b.Fatal(err)
		}
		return idx
	}
	run := func(b *testing.B, idx *Index) {
		var scratch SearchScratch
		for _, bq := range hot { // warm pooled buffers (and the cache, when enabled)
			if _, err := idx.SearchInto(bq.q, bq.r, &scratch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bq := hot[i%len(hot)]
			if _, err := idx.SearchInto(bq.q, bq.r, &scratch); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		run(b, mk(b))
	})
	b.Run("cached", func(b *testing.B) {
		idx := mk(b)
		// Room for every (cell, query) pair of the hot set: 8 queries over a
		// 40x40 grid, so the steady state never evicts.
		idx.SetScoreCache(16384)
		run(b, idx)
		if st, ok := idx.ScoreCacheStats(); !ok || st.Hits == 0 {
			b.Fatalf("score cache saw no hits: %+v", st)
		}
	})
}
