package grid

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// buildCorpus makes a small object set over a 100x100 space.
func buildCorpus(t *testing.T) (*textindex.Vocabulary, []Object) {
	t.Helper()
	v := textindex.NewVocabulary()
	mk := func(x, y float64, toks ...string) Object {
		return Object{Point: geo.Point{X: x, Y: y}, Doc: v.IndexDoc(toks)}
	}
	objs := []Object{
		mk(5, 5, "cafe", "espresso"),
		mk(15, 5, "restaurant", "italian"),
		mk(55, 55, "cafe"),
		mk(95, 95, "museum"),
		mk(50, 50, "cafe", "restaurant"),
		mk(51, 52, "bar"),
	}
	return v, objs
}

func TestSearchMatchesLinearScan(t *testing.T) {
	v, objs := buildCorpus(t)
	idx, err := NewIndex(objs, geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := v.PrepareQuery([]string{"cafe", "restaurant"})
	r := geo.Rect{MinX: 0, MinY: 0, MaxX: 60, MaxY: 60}
	got, err := idx.Search(q, r)
	if err != nil {
		t.Fatal(err)
	}
	want := map[ObjectID]float64{}
	for id := range objs {
		if r.Contains(objs[id].Point) {
			if s := q.Score(&objs[id].Doc); s > 0 {
				want[ObjectID(id)] = s
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Search returned %d objects, linear scan %d", len(got), len(want))
	}
	for _, os := range got {
		if w, ok := want[os.Obj]; !ok || math.Abs(w-os.Score) > 1e-12 {
			t.Errorf("object %d: score %v, want %v", os.Obj, os.Score, w)
		}
	}
}

func TestSearchRespectsRect(t *testing.T) {
	v, objs := buildCorpus(t)
	idx, err := NewIndex(objs, geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := v.PrepareQuery([]string{"cafe"})
	// Tiny rect around object 0 only.
	got, err := idx.Search(q, geo.Rect{MinX: 4, MinY: 4, MaxX: 6, MaxY: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Obj != 0 {
		t.Errorf("Search = %+v, want only object 0", got)
	}
	// Rect outside the grid.
	got, err = idx.Search(q, geo.Rect{MinX: 500, MinY: 500, MaxX: 600, MaxY: 600})
	if err != nil || len(got) != 0 {
		t.Errorf("out-of-bounds rect: got %v, %v", got, err)
	}
}

func TestEmptyQuery(t *testing.T) {
	v, objs := buildCorpus(t)
	idx, err := NewIndex(objs, geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := v.PrepareQuery([]string{"nosuchterm"})
	got, err := idx.Search(q, geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100})
	if err != nil || got != nil {
		t.Errorf("empty query: got %v, %v", got, err)
	}
}

func TestNewIndexValidation(t *testing.T) {
	v := textindex.NewVocabulary()
	objs := []Object{{Point: geo.Point{X: 500, Y: 500}, Doc: v.IndexDoc([]string{"x"})}}
	if _, err := NewIndex(objs, geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 1, nil); err == nil {
		t.Error("object outside bounds accepted")
	}
	if _, err := NewIndex(nil, geo.Rect{}, 0, nil); err == nil {
		t.Error("zero cell size accepted")
	}
	if _, err := NewIndex(nil, geo.Rect{}, -3, nil); err == nil {
		t.Error("negative cell size accepted")
	}
}

func TestBoundaryObjectsIndexed(t *testing.T) {
	v := textindex.NewVocabulary()
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	objs := []Object{
		{Point: geo.Point{X: 10, Y: 10}, Doc: v.IndexDoc([]string{"edge"})}, // max corner
		{Point: geo.Point{X: 0, Y: 0}, Doc: v.IndexDoc([]string{"edge"})},   // min corner
	}
	idx, err := NewIndex(objs, bounds, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := idx.Search(v.PrepareQuery([]string{"edge"}), bounds)
	if err != nil || len(got) != 2 {
		t.Errorf("boundary search: %v, %v; want both corner objects", got, err)
	}
}

func TestEncodeDecodePostings(t *testing.T) {
	in := []Posting{{Obj: 1, Weight: 0.5}, {Obj: 99, Weight: 0.001}, {Obj: 0, Weight: 1}}
	out, err := DecodePostings(EncodePostings(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("posting %d: %+v != %+v", i, in[i], out[i])
		}
	}
	if _, err := DecodePostings([]byte{1, 2, 3}); err == nil {
		t.Error("misaligned posting bytes accepted")
	}
	if got, err := DecodePostings(nil); err != nil || len(got) != 0 {
		t.Error("empty posting list should decode to empty")
	}
}

func TestCellKeyPacking(t *testing.T) {
	f := func(cell uint32, term int32) bool {
		if term < 0 {
			term = -term
		}
		k := CellKey{Cell: cell, Term: textindex.TermID(term)}
		packed := k.Uint64()
		return uint32(packed>>32) == cell && int32(uint32(packed)) == term
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBTreeStoreSearchEquivalence(t *testing.T) {
	// The disk-backed store must return exactly the same results as the
	// in-memory store on a randomized corpus.
	rng := rand.New(rand.NewSource(21))
	v := textindex.NewVocabulary()
	vocab := []string{"cafe", "restaurant", "bar", "pizza", "museum", "park", "shop"}
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	var objs []Object
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(3)
		toks := make([]string, n)
		for j := range toks {
			toks[j] = vocab[rng.Intn(len(vocab))]
		}
		objs = append(objs, Object{
			Point: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Doc:   v.IndexDoc(toks),
		})
	}

	memIdx, err := NewIndex(objs, bounds, 50, NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewBTreeStore(filepath.Join(t.TempDir(), "postings.bt"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	diskIdx, err := NewIndex(objs, bounds, 50, store)
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 20; trial++ {
		kws := []string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]}
		q := v.PrepareQuery(kws)
		x, y := rng.Float64()*800, rng.Float64()*800
		r := geo.Rect{MinX: x, MinY: y, MaxX: x + 200, MaxY: y + 200}
		a, err := memIdx.Search(q, r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := diskIdx.Search(q, r)
		if err != nil {
			t.Fatal(err)
		}
		norm := func(s []ObjScore) {
			sort.Slice(s, func(i, j int) bool { return s[i].Obj < s[j].Obj })
		}
		norm(a)
		norm(b)
		if len(a) != len(b) {
			t.Fatalf("trial %d: mem %d results, disk %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i].Obj != b[i].Obj || math.Abs(a[i].Score-b[i].Score) > 1e-12 {
				t.Fatalf("trial %d result %d: mem %+v disk %+v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestBTreeStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.bt")
	store, err := NewBTreeStore(path)
	if err != nil {
		t.Fatal(err)
	}
	key := CellKey{Cell: 3, Term: 7}
	if err := store.Append(key, []Posting{{Obj: 1, Weight: 0.25}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Append(key, []Posting{{Obj: 2, Weight: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := OpenBTreeStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	ps, err := store2.Postings(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Obj != 1 || ps[1].Obj != 2 {
		t.Errorf("postings after reopen = %+v", ps)
	}
	if ps, err := store2.Postings(CellKey{Cell: 9, Term: 9}); err != nil || ps != nil {
		t.Errorf("absent key: %v, %v", ps, err)
	}
}

func TestSearchPropertyAgainstScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := textindex.NewVocabulary()
		vocab := []string{"a", "b", "c", "d"}
		bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
		var objs []Object
		for i := 0; i < 60; i++ {
			objs = append(objs, Object{
				Point: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Doc:   v.IndexDoc([]string{vocab[rng.Intn(4)]}),
			})
		}
		idx, err := NewIndex(objs, bounds, 7, nil)
		if err != nil {
			return false
		}
		q := v.PrepareQuery([]string{vocab[rng.Intn(4)], vocab[rng.Intn(4)]})
		r := geo.Rect{MinX: rng.Float64() * 50, MinY: rng.Float64() * 50}
		r.MaxX = r.MinX + rng.Float64()*50
		r.MaxY = r.MinY + rng.Float64()*50
		got, err := idx.Search(q, r)
		if err != nil {
			return false
		}
		want := 0
		for i := range objs {
			if r.Contains(objs[i].Point) && q.Score(&objs[i].Doc) > 0 {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
