package grid

import (
	"repro/internal/geo"
	"repro/internal/textindex"
)

// SearchEstimate summarizes the work a search over (q, r) would perform,
// computed from the per-cell term directories alone: no posting list is
// fetched and nothing is allocated. The counts are exact for a cold
// search (a warm score cache or a WAND cutoff only ever does less), so
// they upper-bound the real work — which is what a cost model wants.
type SearchEstimate struct {
	// Cells is the rectangle walk's cell count; CellsWithTerms of them
	// share at least one term with the query.
	Cells          int
	CellsWithTerms int
	// Lists is the number of posting lists the search would fetch and
	// Postings the total postings those lists hold, per the directory's
	// recorded lengths. Postings bounds the candidate-object work.
	Lists    int
	Postings int64
}

// EstimateSearch predicts the work of SearchInto(q, r) from the cell
// directories, without touching the posting store. It takes the index
// read lock (briefly — directory entries only) and allocates nothing, so
// it is cheap enough to run per request on the serving path. A cluster
// coordinator can use it too: the coordinating database keeps the full
// directory for routing, so the estimate covers the whole grid, not one
// node's range.
func (idx *Index) EstimateSearch(q textindex.Query, r geo.Rect) SearchEstimate {
	var est SearchEstimate
	if len(q.Terms) == 0 || q.Norm == 0 {
		return est
	}
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	x0, x1, y0, y1, ok := idx.cellRange(r)
	if !ok {
		return est
	}
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			cell := uint32(cy*idx.nx + cx)
			est.Cells++
			dir := idx.cellDir[cell]
			if len(dir) == 0 {
				continue
			}
			// The same merge-join scoreCell runs, minus the fetches.
			lists := 0
			qi, di := 0, 0
			for qi < len(q.Terms) && di < len(dir) {
				switch {
				case q.Terms[qi] < dir[di].term:
					qi++
				case q.Terms[qi] > dir[di].term:
					di++
				default:
					lists++
					est.Postings += int64(dir[di].count)
					qi++
					di++
				}
			}
			if lists > 0 {
				est.CellsWithTerms++
				est.Lists += lists
			}
		}
	}
	return est
}
