package grid

// SearchTrace counts, for one search, what the index scanned and what it
// skipped — and why. It is the observability half of the skip machinery:
// the rectangle walk, the per-cell term-directory merge-join, the score
// cache, and (on the top-k path) the WAND bound all record their
// decisions here, so an EXPLAIN plan can report them instead of leaving
// them to be inferred from benchmarks.
//
// Tracing is off by default: SearchScratch.Trace is nil and the search
// paths take their untraced branches, which keeps the served hot path
// allocation- and branch-identical to before. To trace, point
// SearchScratch.Trace at a caller-owned SearchTrace before searching.
// The search only ever increments counters — it never resets them — so
// one trace can aggregate several partial searches (that is how the
// cluster coordinator merges per-node fragments). Callers reset between
// queries with Clear.
//
// A SearchTrace is owned by one search at a time; like the scratch that
// carries it, it is not safe for concurrent use.
type SearchTrace struct {
	// CellsInRect counts cells visited by the rectangle's cell walk and
	// owned by the searched cell range; every such cell lands in exactly
	// one of the four buckets below.
	CellsInRect int64
	// CellsEmpty counts cells skipped because their term directory is
	// empty (no object in the cell has any term).
	CellsEmpty int64
	// CellsNoTerm counts cells skipped because the directory merge-join
	// found no term shared with the query — the term-directory miss.
	CellsNoTerm int64
	// CellsCacheHit counts interior cells replayed from the score cache
	// instead of fetching their posting lists.
	CellsCacheHit int64
	// CellsScanned counts cells whose posting lists were actually fetched
	// and accumulated.
	CellsScanned int64

	// Lists counts posting lists fetched; Postings counts the postings
	// they held, of which PostingsFiltered were rejected by the exact
	// rectangle check (boundary cells only — interior cells skip it).
	Lists            int64
	Postings         int64
	PostingsFiltered int64
	// Objects counts distinct candidate objects produced (replayed cache
	// entries included).
	Objects int64

	// CellsPrunedWAND counts cells pruned by the WAND upper bound on the
	// top-k object path (SearchTopKInto). The standard serving path does
	// not use WAND, so there it stays zero.
	CellsPrunedWAND int64

	// Cluster routing decisions, filled by the coordinator (not by the
	// grid itself): replica groups contacted for this search, and groups
	// skipped because their cell range misses the rectangle or their term
	// summary shares no query term.
	GroupsContacted   int64
	GroupsSkippedRect int64
	GroupsSkippedTerm int64
}

// Clear zeroes every counter, readying the trace for the next query.
// (Not named Reset: the errdrop gate matches error-returning names like
// WAL.Reset by identifier, and this one deliberately has no error.)
func (t *SearchTrace) Clear() { *t = SearchTrace{} }

// Add accumulates o into t. The cluster coordinator uses it to merge the
// per-node trace fragments of one scattered search into the query's
// trace.
func (t *SearchTrace) Add(o SearchTrace) {
	t.CellsInRect += o.CellsInRect
	t.CellsEmpty += o.CellsEmpty
	t.CellsNoTerm += o.CellsNoTerm
	t.CellsCacheHit += o.CellsCacheHit
	t.CellsScanned += o.CellsScanned
	t.Lists += o.Lists
	t.Postings += o.Postings
	t.PostingsFiltered += o.PostingsFiltered
	t.Objects += o.Objects
	t.CellsPrunedWAND += o.CellsPrunedWAND
	t.GroupsContacted += o.GroupsContacted
	t.GroupsSkippedRect += o.GroupsSkippedRect
	t.GroupsSkippedTerm += o.GroupsSkippedTerm
}

// CellsSkipped sums the skipped-cell buckets: cells the walk visited but
// whose posting lists were never fetched.
func (t *SearchTrace) CellsSkipped() int64 {
	return t.CellsEmpty + t.CellsNoTerm + t.CellsCacheHit
}
