package grid

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// randomCorpus builds a reproducible object set for store tests.
func shardCorpus(seed int64, n int) (*textindex.Vocabulary, []Object, geo.Rect) {
	rng := rand.New(rand.NewSource(seed))
	v := textindex.NewVocabulary()
	vocab := []string{"cafe", "restaurant", "bar", "pizza", "museum", "park", "shop", "hotel"}
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	objs := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		toks := make([]string, 1+rng.Intn(3))
		for j := range toks {
			toks[j] = vocab[rng.Intn(len(vocab))]
		}
		objs = append(objs, Object{
			Point: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Doc:   v.IndexDoc(toks),
		})
	}
	return v, objs, bounds
}

func TestShardedStoreRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := CreateShardedStore(dir, ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", s.NumShards())
	}
	// Keys spanning every shard, two appends each.
	for cell := uint32(0); cell < 9; cell++ {
		key := CellKey{Cell: cell, Term: 7}
		if err := s.Append(key, []Posting{{Obj: ObjectID(cell), Weight: 0.5}}); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(key, []Posting{{Obj: ObjectID(cell + 100), Weight: 0.25}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the manifest must reconstruct the same layout.
	s2, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumShards() != 4 {
		t.Fatalf("reopened NumShards = %d, want 4", s2.NumShards())
	}
	for cell := uint32(0); cell < 9; cell++ {
		ps, err := s2.Postings(CellKey{Cell: cell, Term: 7})
		if err != nil {
			t.Fatal(err)
		}
		if len(ps) != 2 || ps[0].Obj != ObjectID(cell) || ps[1].Obj != ObjectID(cell+100) {
			t.Errorf("cell %d postings after reopen = %+v", cell, ps)
		}
	}
	if ps, err := s2.Postings(CellKey{Cell: 77, Term: 77}); err != nil || ps != nil {
		t.Errorf("absent key: %v, %v", ps, err)
	}
}

// TestCreateRefusesExistingStore: a populated store is a build product;
// creating over it must fail, not silently truncate it.
func TestCreateRefusesExistingStore(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "store")
	s, err := CreateShardedStore(dir, ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s2, err := CreateShardedStore(dir, ShardedOptions{Shards: 2}); err == nil {
		s2.Close()
		t.Fatal("CreateShardedStore over an existing store succeeded")
	}
	single := filepath.Join(base, "p.bt")
	b, err := NewBTreeStore(single)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append(CellKey{Cell: 1, Term: 1}, []Posting{{Obj: 1, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if b2, err := NewBTreeStore(single); err == nil {
		b2.Close()
		t.Fatal("NewBTreeStore over an existing store succeeded")
	}
	if _, err := CreateShardedStore(dir, ShardedOptions{Shards: maxShards + 1}); err == nil {
		t.Fatal("implausible shard count accepted at create time")
	}
}

func TestShardedStoreDefaultShardCount(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := CreateShardedStore(dir, ShardedOptions{}) // Shards <= 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	n := s.NumShards()
	if n < 1 {
		t.Fatalf("NumShards = %d", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumShards() != n {
		t.Errorf("manifest round-trip: created %d shards, reopened %d", n, s2.NumShards())
	}
}

// TestBTreeStoreAppendConcurrent catches the historical lost-update race:
// Append used to read the old list in one lock section and write the
// merged list in another, so two concurrent Appends to the same key could
// both read the old value and one would overwrite the other's postings.
// Run with -race (CI does) to also catch any locking regression.
func TestBTreeStoreAppendConcurrent(t *testing.T) {
	store, err := NewBTreeStore(filepath.Join(t.TempDir(), "p.bt"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	const (
		goroutines = 8
		perG       = 200
	)
	key := CellKey{Cell: 1, Term: 2}
	start := make(chan struct{}) // release all writers at once to maximize overlap
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				ps := []Posting{{Obj: ObjectID(g*perG + i), Weight: 1}}
				if err := store.Append(key, ps); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	ps, err := store.Postings(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != goroutines*perG {
		t.Fatalf("lost updates: %d postings stored, want %d", len(ps), goroutines*perG)
	}
	seen := make(map[ObjectID]bool, len(ps))
	for _, p := range ps {
		if seen[p.Obj] {
			t.Fatalf("object %d appended twice", p.Obj)
		}
		seen[p.Obj] = true
	}
}

// TestShardedStoreAppendConcurrent is the same lost-update check against
// the sharded store, with keys hitting every shard.
func TestShardedStoreAppendConcurrent(t *testing.T) {
	store, err := CreateShardedStore(filepath.Join(t.TempDir(), "store"), ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	const (
		goroutines = 8
		perG       = 40
		keys       = 5 // spans all 4 shards
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := CellKey{Cell: uint32(i % keys), Term: 3}
				ps := []Posting{{Obj: ObjectID(g*perG + i), Weight: 1}}
				if err := store.Append(key, ps); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for cell := uint32(0); cell < keys; cell++ {
		ps, err := store.Postings(CellKey{Cell: cell, Term: 3})
		if err != nil {
			t.Fatal(err)
		}
		total += len(ps)
	}
	if total != goroutines*perG {
		t.Fatalf("lost updates: %d postings stored, want %d", total, goroutines*perG)
	}
}

// TestShardedSearchEquivalence proves the sharded store and its fan-out
// search path return bit-identical results to the in-memory index, for
// both Search and SearchInto.
func TestShardedSearchEquivalence(t *testing.T) {
	v, objs, bounds := shardCorpus(42, 400)
	memIdx, err := NewIndex(objs, bounds, 50, NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	store, err := CreateShardedStore(filepath.Join(t.TempDir(), "store"), ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	shardIdx, err := NewIndex(objs, bounds, 50, store)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"cafe", "restaurant", "bar", "pizza", "museum", "park", "shop", "hotel"}
	var scratch SearchScratch
	for trial := 0; trial < 30; trial++ {
		q := v.PrepareQuery([]string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]})
		x, y := rng.Float64()*800, rng.Float64()*800
		r := geo.Rect{MinX: x, MinY: y, MaxX: x + 250, MaxY: y + 250}
		want, err := memIdx.Search(q, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := shardIdx.Search(q, r)
		if err != nil {
			t.Fatal(err)
		}
		assertSameScores(t, fmt.Sprintf("trial %d Search", trial), got, want)
		gotInto, err := shardIdx.SearchInto(q, r, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		assertSameScores(t, fmt.Sprintf("trial %d SearchInto", trial), gotInto, want)
	}
}

// assertSameScores requires bit-identical object/score sequences.
func assertSameScores(t *testing.T, label string, got, want []ObjScore) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Obj != want[i].Obj || got[i].Score != want[i].Score {
			t.Fatalf("%s result %d: got %+v, want %+v (scores must be bit-identical)", label, i, got[i], want[i])
		}
	}
}

// TestConcurrentColdReadGolden is the acceptance test for the sharded
// cold-read path: K goroutines issue overlapping queries against a
// freshly reopened (cache-cold) sharded store, and every result must be
// bit-identical to the serial answer computed on a single-tree store.
func TestConcurrentColdReadGolden(t *testing.T) {
	v, objs, bounds := shardCorpus(99, 600)

	// Serial reference on the single-file store.
	single, err := NewBTreeStore(filepath.Join(t.TempDir(), "single.bt"))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	refIdx, err := NewIndex(objs, bounds, 40, single)
	if err != nil {
		t.Fatal(err)
	}

	// Sharded store: build, close, reopen with a tiny page cache so the
	// concurrent reads really hit the trees cold.
	dir := filepath.Join(t.TempDir(), "sharded")
	store, err := CreateShardedStore(dir, ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIndex(objs, bounds, 40, store); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	cold, err := OpenShardedStoreCached(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	coldIdx, err := NewIndexOver(objs, bounds, 40, cold)
	if err != nil {
		t.Fatal(err)
	}

	// Overlapping query workload: every goroutine runs the full set, so
	// the same postings are fetched concurrently from all workers.
	rng := rand.New(rand.NewSource(5))
	vocab := []string{"cafe", "restaurant", "bar", "pizza", "museum", "park", "shop", "hotel"}
	type testQuery struct {
		q textindex.Query
		r geo.Rect
	}
	queries := make([]testQuery, 16)
	want := make([][]ObjScore, len(queries))
	for i := range queries {
		q := v.PrepareQuery([]string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]})
		x, y := rng.Float64()*600, rng.Float64()*600
		r := geo.Rect{MinX: x, MinY: y, MaxX: x + 400, MaxY: y + 400}
		queries[i] = testQuery{q, r}
		ref, err := refIdx.Search(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ref
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var scratch SearchScratch
			for i, tq := range queries {
				got, err := coldIdx.SearchInto(tq.q, tq.r, &scratch)
				if err != nil {
					t.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
				if len(got) != len(want[i]) {
					t.Errorf("worker %d query %d: %d results, want %d", w, i, len(got), len(want[i]))
					return
				}
				for j := range got {
					if got[j].Obj != want[i][j].Obj || got[j].Score != want[i][j].Score {
						t.Errorf("worker %d query %d result %d: got %+v, want %+v", w, i, j, got[j], want[i][j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestOpenStoreAutoDetect(t *testing.T) {
	base := t.TempDir()
	// Single-file layout.
	singlePath := filepath.Join(base, "single.bt")
	s, err := NewBTreeStore(singlePath)
	if err != nil {
		t.Fatal(err)
	}
	key := CellKey{Cell: 5, Term: 6}
	if err := s.Append(key, []Posting{{Obj: 11, Weight: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Sharded layout.
	shardDir := filepath.Join(base, "sharded")
	sh, err := CreateShardedStore(shardDir, ShardedOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Append(key, []Posting{{Obj: 22, Weight: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		path string
		obj  ObjectID
	}{{singlePath, 11}, {shardDir, 22}} {
		st, err := OpenStore(tc.path)
		if err != nil {
			t.Fatalf("OpenStore(%s): %v", tc.path, err)
		}
		ps, err := st.Postings(key)
		if err != nil || len(ps) != 1 || ps[0].Obj != tc.obj {
			t.Errorf("OpenStore(%s).Postings = %+v, %v; want object %d", tc.path, ps, err, tc.obj)
		}
		if err := st.Close(); err != nil {
			t.Error(err)
		}
	}
	if _, err := OpenStore(filepath.Join(base, "nope")); err == nil {
		t.Error("OpenStore on a missing path succeeded")
	}
}

func TestMigrateToSharded(t *testing.T) {
	base := t.TempDir()
	srcPath := filepath.Join(base, "single.bt")
	src, err := NewBTreeStore(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]CellKey, 0, 20)
	for cell := uint32(0); cell < 10; cell++ {
		for term := textindex.TermID(0); term < 2; term++ {
			key := CellKey{Cell: cell, Term: term}
			keys = append(keys, key)
			ps := []Posting{
				{Obj: ObjectID(cell*10 + uint32(term)), Weight: float64(cell) + 0.5},
				{Obj: ObjectID(cell*10 + uint32(term) + 500), Weight: 0.125},
			}
			if err := src.Append(key, ps); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	dst, err := MigrateToSharded(srcPath, filepath.Join(base, "sharded"), ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	reopened, err := OpenBTreeStore(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	for _, key := range keys {
		want, err := reopened.Postings(key)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dst.Postings(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("key %+v: %d postings after migration, want %d", key, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("key %+v posting %d: %+v != %+v", key, i, got[i], want[i])
			}
		}
	}
}

func TestShardedStoreCacheStats(t *testing.T) {
	store, err := CreateShardedStore(filepath.Join(t.TempDir(), "store"), ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for cell := uint32(0); cell < 8; cell++ {
		if err := store.Append(CellKey{Cell: cell, Term: 1}, []Posting{{Obj: 1, Weight: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	for cell := uint32(0); cell < 8; cell++ {
		if _, err := store.Postings(CellKey{Cell: cell, Term: 1}); err != nil {
			t.Fatal(err)
		}
	}
	st := store.CacheStats()
	if st.Hits == 0 {
		t.Errorf("aggregated cache stats = %+v; want hits after repeated root reads", st)
	}
}

// TestRemoveStore: removal must only ever touch store files — it backs
// the failed-build cleanup in package repro, where deleting anything
// else would destroy user data.
func TestRemoveStore(t *testing.T) {
	base := t.TempDir()
	// Refuses paths that are not stores.
	plain := filepath.Join(base, "notes.txt")
	if err := writeFile(t, plain, "hello"); err != nil {
		t.Fatal(err)
	}
	if err := RemoveStore(plain); err == nil {
		t.Fatal("RemoveStore deleted a non-store file")
	}
	if err := RemoveStore(base); err == nil {
		t.Fatal("RemoveStore accepted a non-store directory")
	}
	if err := RemoveStore(filepath.Join(base, "missing")); err == nil {
		t.Fatal("RemoveStore accepted a missing path")
	}
	// Removes a single-file store.
	single := filepath.Join(base, "p.bt")
	s, err := NewBTreeStore(single)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := RemoveStore(single); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(single); !os.IsNotExist(err) {
		t.Fatal("single-file store not removed")
	}
	// Removes a sharded store's files but leaves foreign files alone.
	dir := filepath.Join(base, "sharded")
	sh, err := CreateShardedStore(dir, ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "README")
	if err := writeFile(t, foreign, "keep me"); err != nil {
		t.Fatal(err)
	}
	if err := RemoveStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); !os.IsNotExist(err) {
		t.Fatal("manifest not removed")
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-0000.bt")); !os.IsNotExist(err) {
		t.Fatal("shard file not removed")
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("foreign file removed with the store")
	}
	// The path is now clear for a fresh create.
	sh2, err := CreateShardedStore(dir, ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sh2.Close()
}

func writeFile(t *testing.T, path, content string) error {
	t.Helper()
	return os.WriteFile(path, []byte(content), 0o644)
}
