package grid

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// Index live-update path. Insert, Delete and Reweight mutate the object
// set while the index serves queries: each takes the write lock, appends
// one WAL record through the store (sharded layout) or edits posting
// lists in place (MemStore), and maintains the cell directory exactly —
// a mutated index always has the directory a fresh build of the same
// logical object set would have, which is what the differential harness
// asserts. Deleted ids are never reused and keep scoring as if the
// object were an empty document, so object ids, |D| and IDF ratios stay
// identical between a live index and a rebuild.

// ErrNoSuchObject marks an update addressing an id that does not exist
// or is already deleted.
var ErrNoSuchObject = errors.New("grid: no such object")

// ErrFrozen marks a mutation attempted after Freeze. Distinct from
// ErrUpdatesUnsupported (a store layout without an update path): a
// frozen index could apply the update, but its owner promised not to.
var ErrFrozen = errors.New("grid: index is frozen (read-only)")

// Freeze permanently disables the live-update path: every later Insert,
// Delete and Reweight fails with ErrFrozen. A cluster node freezes its
// index before announcing itself, because the coordinator caches the
// node's term directory once at Hello — a term appearing in the node's
// cells afterwards would make skip routing silently drop results. There
// is no Unfreeze; restart the process to mutate again.
func (idx *Index) Freeze() {
	idx.mu.Lock()
	idx.frozen = true
	idx.mu.Unlock()
}

// ErrCompaction marks an automatic compaction failure surfaced from a
// mutator. The mutation itself was applied and is durable in the WAL —
// only the fold into the shard trees failed; the store recovers it on
// the next successful Compact or on reopen. Callers maintaining derived
// state (the dataset's vocabulary) must NOT roll back on this error.
var ErrCompaction = errors.New("grid: automatic compaction failed (update applied)")

// Contains reports whether p lies inside the index bounds (insertable).
func (idx *Index) Contains(p geo.Point) bool {
	return idx.bounds.Contains(p)
}

// Insert adds a new object and returns its id (always the next dense
// ObjectID). doc must have ascending Terms with parallel Weights and TF,
// and strs must hold the term strings parallel to doc.Terms — the WAL
// record carries them so a recovery can rebuild vocabulary statistics
// without the original text.
func (idx *Index) Insert(p geo.Point, doc textindex.Doc, strs []string) (ObjectID, error) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	if idx.frozen {
		return 0, ErrFrozen
	}
	if idx.live == nil && idx.memStore == nil {
		return 0, ErrUpdatesUnsupported
	}
	if len(doc.Weights) != len(doc.Terms) || len(doc.TF) != len(doc.Terms) || len(strs) != len(doc.Terms) {
		return 0, fmt.Errorf("grid: insert: terms/weights/tf/strs must be parallel (%d/%d/%d/%d)",
			len(doc.Terms), len(doc.Weights), len(doc.TF), len(strs))
	}
	for i := 1; i < len(doc.Terms); i++ {
		if doc.Terms[i] <= doc.Terms[i-1] {
			return 0, fmt.Errorf("grid: insert: terms must be strictly ascending")
		}
	}
	for _, s := range strs {
		if len(s) > 1<<16-1 {
			return 0, fmt.Errorf("grid: insert: term string longer than %d bytes", 1<<16-1)
		}
	}
	cell, ok := idx.cellOf(p)
	if !ok {
		return 0, fmt.Errorf("grid: insert: point %v outside bounds %v", p, idx.bounds)
	}
	id := ObjectID(len(idx.objects))
	u := Update{Kind: UpdateInsert, Obj: id, Cell: cell, Point: p,
		Terms: doc.Terms, Weights: doc.Weights, TF: doc.TF, Strs: strs}
	if err := idx.applyToStoreLocked(&u); err != nil {
		return 0, err
	}
	idx.objects = append(idx.objects, Object{Point: p, Doc: doc})
	idx.bumpCellDir(cell, doc.Terms, doc.Weights, +1)
	idx.epoch++
	idx.pending++
	return id, idx.maybeCompactLocked()
}

// Delete removes an object: its postings disappear from every list, but
// the id stays allocated (tombstoned) and the object keeps counting as
// an empty document in corpus statistics.
func (idx *Index) Delete(id ObjectID) error {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	if idx.frozen {
		return ErrFrozen
	}
	if idx.live == nil && idx.memStore == nil {
		return ErrUpdatesUnsupported
	}
	if err := idx.checkLiveLocked(id); err != nil {
		return err
	}
	obj := idx.objects[id]
	cell, ok := idx.cellOf(obj.Point)
	if !ok {
		return fmt.Errorf("grid: delete %d: stored point %v outside bounds", id, obj.Point)
	}
	u := Update{Kind: UpdateDelete, Obj: id, Cell: cell, Point: obj.Point, Terms: obj.Doc.Terms}
	if err := idx.applyToStoreLocked(&u); err != nil {
		return err
	}
	idx.tombstones[id] = struct{}{}
	delete(idx.reweighted, id) // a deleted object needs no weight patch
	idx.bumpCellDir(cell, obj.Doc.Terms, nil, -1)
	idx.epoch++
	idx.pending++
	return idx.maybeCompactLocked()
}

// Reweight replaces an object's normalized term weights (parallel to its
// existing terms; the term set itself is fixed — changing terms is a
// Delete plus an Insert). Corpus statistics are untouched.
func (idx *Index) Reweight(id ObjectID, weights []float64) error {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	if idx.frozen {
		return ErrFrozen
	}
	if idx.live == nil && idx.memStore == nil {
		return ErrUpdatesUnsupported
	}
	if err := idx.checkLiveLocked(id); err != nil {
		return err
	}
	obj := &idx.objects[id]
	if len(weights) != len(obj.Doc.Terms) {
		return fmt.Errorf("grid: reweight %d: %d weights for %d terms", id, len(weights), len(obj.Doc.Terms))
	}
	cell, ok := idx.cellOf(obj.Point)
	if !ok {
		return fmt.Errorf("grid: reweight %d: stored point %v outside bounds", id, obj.Point)
	}
	w := append([]float64(nil), weights...)
	u := Update{Kind: UpdateReweight, Obj: id, Cell: cell, Point: obj.Point, Terms: obj.Doc.Terms, Weights: w}
	if err := idx.applyToStoreLocked(&u); err != nil {
		return err
	}
	obj.Doc.Weights = w
	idx.bumpCellDir(cell, obj.Doc.Terms, w, 0) // counts unchanged; maxW covers the new weights
	if int(id) < idx.baseObjects {
		idx.reweighted[id] = struct{}{}
	}
	idx.epoch++
	idx.pending++
	return idx.maybeCompactLocked()
}

// Deleted reports whether id is tombstoned.
func (idx *Index) Deleted(id ObjectID) bool {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	_, dead := idx.tombstones[id]
	return dead
}

func (idx *Index) checkLiveLocked(id ObjectID) error {
	if id < 0 || int(id) >= len(idx.objects) {
		return fmt.Errorf("%w: id %d of %d", ErrNoSuchObject, id, len(idx.objects))
	}
	if _, dead := idx.tombstones[id]; dead {
		return fmt.Errorf("%w: id %d is deleted", ErrNoSuchObject, id)
	}
	return nil
}

func (idx *Index) applyToStoreLocked(u *Update) error {
	if idx.live != nil {
		return idx.live.ApplyUpdate(u)
	}
	idx.memStore.applyUpdate(u)
	return nil
}

// bumpCellDir adjusts the cell directory's posting counts for one object
// entering (delta +1, weights parallel to terms), leaving (delta -1,
// weights nil) or changing weights in place (delta 0, Reweight), keeping
// each directory sorted and dropping entries (and empty cells) at count
// zero. Weights only ever raise an entry's maxW — after a delete or a
// downward reweight the recorded bound may exceed every remaining
// posting, which keeps it a valid (if loose) WAND upper bound until a
// reopen re-derives it exactly.
func (idx *Index) bumpCellDir(cell uint32, terms []textindex.TermID, weights []float64, delta int32) {
	dir := idx.cellDir[cell]
	for ti, t := range terms {
		var w float64
		if weights != nil {
			w = weights[ti]
		}
		i := sort.Search(len(dir), func(i int) bool { return dir[i].term >= t })
		if i < len(dir) && dir[i].term == t {
			dir[i].count += delta
			if dir[i].count <= 0 {
				dir = append(dir[:i], dir[i+1:]...)
				continue
			}
			if w > dir[i].maxW {
				dir[i].maxW = w
			}
			continue
		}
		if delta <= 0 {
			continue // nothing to decrement or reweight under this term
		}
		dir = append(dir, termEntry{})
		copy(dir[i+1:], dir[i:])
		dir[i] = termEntry{term: t, count: delta, maxW: w}
	}
	if len(dir) == 0 {
		delete(idx.cellDir, cell)
	} else {
		idx.cellDir[cell] = dir
	}
}

// setCellDirEntry pins one directory entry to the store's ground truth
// (reopen-time patching: count and maxW are re-derived from the actual
// merged posting list, so replaying a record whose effects were already
// flushed cannot double-count — and a bound left stale-high by deletes
// or downward reweights snaps back to exact).
func (idx *Index) setCellDirEntry(key CellKey, n int32, maxW float64) {
	dir := idx.cellDir[key.Cell]
	i := sort.Search(len(dir), func(i int) bool { return dir[i].term >= key.Term })
	found := i < len(dir) && dir[i].term == key.Term
	switch {
	case n <= 0 && found:
		dir = append(dir[:i], dir[i+1:]...)
	case n > 0 && found:
		dir[i].count = n
		dir[i].maxW = maxW
	case n > 0 && !found:
		dir = append(dir, termEntry{})
		copy(dir[i+1:], dir[i:])
		dir[i] = termEntry{term: key.Term, count: n, maxW: maxW}
	default:
		return
	}
	if len(dir) == 0 {
		delete(idx.cellDir, key.Cell)
	} else {
		idx.cellDir[key.Cell] = dir
	}
}

// SetAutoCompact sets the number of updates that triggers an automatic
// compaction from the update path (n <= 0 disables; the default is
// defaultAutoCompact). Tests use 0 to control compaction explicitly.
func (idx *Index) SetAutoCompact(n int) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	idx.autoCompact = n
}

// PendingUpdates returns the updates applied since the last compaction.
func (idx *Index) PendingUpdates() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.pending
}

// UpdateEpoch counts applied mutations and compactions; it changes iff
// served results may change.
func (idx *Index) UpdateEpoch() uint64 {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.epoch
}

func (idx *Index) maybeCompactLocked() error {
	if idx.live == nil || idx.autoCompact <= 0 || idx.pending < idx.autoCompact {
		return nil
	}
	if err := idx.compactLocked(); err != nil {
		return fmt.Errorf("%w: %w", ErrCompaction, err)
	}
	return nil
}

// Compact flushes the memtables into the shard trees, commits a fresh
// meta snapshot and truncates the WALs — the live-update path's
// checkpoint. On a MemStore-backed index it only resets the pending
// counter (in-place edits have nothing to fold). Any error leaves the
// store recoverable: flush and meta-commit failures keep the WAL, and a
// failed truncation merely replays covered (idempotent) records on the
// next open.
func (idx *Index) Compact() error {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	return idx.compactLocked()
}

func (idx *Index) compactLocked() error {
	if idx.live == nil {
		idx.pending = 0
		return nil
	}
	if err := idx.live.Flush(); err != nil {
		return err
	}
	if err := idx.live.CommitMeta(idx.encodeMetaLocked()); err != nil {
		return err
	}
	if err := idx.live.TruncateWALs(); err != nil {
		return err
	}
	idx.pending = 0
	idx.epoch++
	return nil
}

// CloseStore compacts (sharded stores: flush + meta commit + WAL
// truncation) and closes the posting store. Compaction errors do not
// skip the close; all failures are joined.
func (idx *Index) CloseStore() error {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	var errs []error
	if idx.live != nil {
		if err := idx.compactLocked(); err != nil {
			errs = append(errs, err)
		}
	}
	if c, ok := idx.store.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// SetMetaExtra registers the callback that supplies the opaque blob
// stored in every meta snapshot (the dataset layer stores its vocabulary
// there). Call it right after NewIndex, before any update can trigger an
// automatic compaction.
func (idx *Index) SetMetaExtra(fn func() []byte) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	idx.metaExtra = fn
}

// MetaExtra returns the opaque blob of the meta snapshot the index was
// opened from (nil when the index was built fresh or the snapshot
// carried none).
func (idx *Index) MetaExtra() []byte {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.metaExtraBlob
}

// Replayed returns the WAL updates applied on top of the meta snapshot
// at open, in sequence order — the owner layer patches its own state
// (vocabulary statistics) from them. The slice is index-owned.
func (idx *Index) Replayed() []Update {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.replayed
}

// ObjectsRef returns the index's object table (shared storage — callers
// must not mutate it). The dataset layer re-syncs its view from it after
// reopen and after inserts.
func (idx *Index) ObjectsRef() []Object {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.objects
}

// Bounds returns the index's spatial bounds (fixed at construction —
// inserts outside them are rejected rather than regrowing the grid).
func (idx *Index) Bounds() geo.Rect { return idx.bounds }

// CellSize returns the grid cell size (fixed at construction).
func (idx *Index) CellSize() float64 { return idx.cellSize }

// BaseObjects returns the object count of the original batch build.
func (idx *Index) BaseObjects() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.baseObjects
}

// encodeMetaLocked snapshots the index metadata into a meta body.
func (idx *Index) encodeMetaLocked() []byte {
	m := indexMeta{
		bounds:      idx.bounds,
		cellSize:    idx.cellSize,
		nx:          idx.nx,
		ny:          idx.ny,
		baseObjects: idx.baseObjects,
		cellDir:     idx.cellDir,
	}
	for id := idx.baseObjects; id < len(idx.objects); id++ {
		o := idx.objects[id]
		m.tail = append(m.tail, tailObject{
			id: ObjectID(id), point: o.Point,
			terms: o.Doc.Terms, weights: o.Doc.Weights, tf: o.Doc.TF,
		})
	}
	m.tombstones = make([]ObjectID, 0, len(idx.tombstones))
	for id := range idx.tombstones {
		m.tombstones = append(m.tombstones, id)
	}
	sort.Slice(m.tombstones, func(i, j int) bool { return m.tombstones[i] < m.tombstones[j] })
	m.patches = make([]docPatch, 0, len(idx.reweighted))
	for id := range idx.reweighted {
		m.patches = append(m.patches, docPatch{id: id, weights: idx.objects[id].Doc.Weights})
	}
	sort.Slice(m.patches, func(i, j int) bool { return m.patches[i].id < m.patches[j].id })
	if idx.metaExtra != nil {
		m.extra = idx.metaExtra()
	}
	return encodeIndexMeta(&m)
}

// openFromMeta rebuilds the index metadata from a committed meta body
// plus the store's replayed WAL records: meta state first (cell
// directory, tail objects, tombstones, weight patches — everything at or
// below the snapshot's high-water mark), then the replayed updates in
// sequence order. For every (cell, term) key a replayed record touched,
// the directory count is re-derived from the store's actual merged list
// — replay is thereby idempotent even though directory deltas are not.
func (idx *Index) openFromMeta(body []byte) error {
	m, err := decodeIndexMeta(body)
	if err != nil {
		return err
	}
	if m.bounds != idx.bounds || m.cellSize != idx.cellSize || m.nx != idx.nx || m.ny != idx.ny {
		return fmt.Errorf("%w: stored grid %dx%d cell %v bounds %v, caller %dx%d cell %v bounds %v",
			ErrMetaMismatch, m.nx, m.ny, m.cellSize, m.bounds, idx.nx, idx.ny, idx.cellSize, idx.bounds)
	}
	if m.baseObjects != len(idx.objects) {
		return fmt.Errorf("%w: store built over %d base objects, caller passed %d",
			ErrMetaMismatch, m.baseObjects, len(idx.objects))
	}
	idx.cellDir = m.cellDir
	idx.metaExtraBlob = m.extra
	for _, p := range m.patches {
		if int(p.id) >= len(idx.objects) {
			return fmt.Errorf("%w: weight patch for unknown object %d", ErrCorruptMeta, p.id)
		}
		obj := &idx.objects[p.id]
		if len(p.weights) != len(obj.Doc.Terms) {
			return fmt.Errorf("%w: weight patch arity for object %d", ErrCorruptMeta, p.id)
		}
		obj.Doc.Weights = p.weights
		idx.reweighted[p.id] = struct{}{}
	}
	for _, to := range m.tail {
		if int(to.id) != len(idx.objects) {
			return fmt.Errorf("%w: tail object %d out of order (have %d objects)", ErrCorruptMeta, to.id, len(idx.objects))
		}
		idx.objects = append(idx.objects, Object{Point: to.point,
			Doc: textindex.Doc{Terms: to.terms, Weights: to.weights, TF: to.tf}})
	}
	for _, id := range m.tombstones {
		if int(id) >= len(idx.objects) {
			return fmt.Errorf("%w: tombstone for unknown object %d", ErrCorruptMeta, id)
		}
		idx.tombstones[id] = struct{}{}
	}
	idx.replayed = idx.live.ReplayedUpdates()
	touched := make(map[CellKey]struct{})
	for i := range idx.replayed {
		u := &idx.replayed[i]
		switch u.Kind {
		case UpdateInsert:
			if int(u.Obj) != len(idx.objects) {
				return fmt.Errorf("%w: replayed insert id %d (have %d objects)", ErrCorruptMeta, u.Obj, len(idx.objects))
			}
			idx.objects = append(idx.objects, Object{Point: u.Point,
				Doc: textindex.Doc{Terms: u.Terms, Weights: u.Weights, TF: u.TF}})
		case UpdateDelete:
			if int(u.Obj) >= len(idx.objects) {
				return fmt.Errorf("%w: replayed delete of unknown object %d", ErrCorruptMeta, u.Obj)
			}
			idx.tombstones[u.Obj] = struct{}{}
			delete(idx.reweighted, u.Obj)
		case UpdateReweight:
			if int(u.Obj) >= len(idx.objects) {
				return fmt.Errorf("%w: replayed reweight of unknown object %d", ErrCorruptMeta, u.Obj)
			}
			obj := &idx.objects[u.Obj]
			if len(u.Weights) != len(obj.Doc.Terms) {
				return fmt.Errorf("%w: replayed reweight arity for object %d", ErrCorruptMeta, u.Obj)
			}
			obj.Doc.Weights = u.Weights
			if int(u.Obj) < idx.baseObjects {
				idx.reweighted[u.Obj] = struct{}{}
			}
		}
		for _, t := range u.Terms {
			touched[CellKey{Cell: u.Cell, Term: t}] = struct{}{}
		}
	}
	keys := make([]CellKey, 0, len(touched))
	for k := range touched {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Uint64() < keys[j].Uint64() })
	for _, key := range keys {
		ps, err := idx.store.Postings(key)
		if err != nil {
			return fmt.Errorf("grid: reopen count for cell %d term %d: %w", key.Cell, key.Term, err)
		}
		var maxW float64
		for _, p := range ps {
			if p.Weight > maxW {
				maxW = p.Weight
			}
		}
		idx.setCellDirEntry(key, int32(len(ps)), maxW)
	}
	return nil
}
