package grid

import (
	"slices"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// This file implements the WAND-style top-k object mode: return the k
// most relevant objects in the rectangle without scoring every cell. The
// per-cell term directory already records, for each (cell, term), the
// posting count and an upper bound maxW on the normalized term weights in
// that list. Any object o in cell c therefore satisfies
//
//	σ(o.ψ, Q.ψ) = (1/W_Q) Σ_{t∈Q∩o.ψ} w_{Q,t}·wto(t)
//	            ≤ (1/W_Q) Σ_{t∈Q∩c}   w_{Q,t}·maxW(c,t)  =  bound(c)
//
// and the inequality survives floating point: rounding is monotone, both
// sums add their terms in ascending-TermID order, and the object's sum
// ranges over a subset of the cell's terms with termwise-smaller
// nonnegative addends. Cells are visited in descending bound order; once
// the candidate heap holds k objects and the next cell's bound is
// strictly below the k-th score, no remaining cell can displace any heap
// entry (ties keep the cell: an equal-scoring object can still win its
// tie-break on smaller ObjectID), so the rest of the rectangle is skipped
// without being fetched. Results are bit-identical to scoring every cell:
// per-object scores come from the same accumulation code in the same
// order, and pruning only discards objects strictly worse than the entire
// result set.

// cellBound is one candidate cell with its score upper bound.
type cellBound struct {
	cell       uint32
	fullInside bool
	bound      float64
}

// TopKScratch is pooled state for Index.SearchTopKInto. The zero value is
// ready to use; it serves one search at a time — pool one per worker.
type TopKScratch struct {
	s       SearchScratch
	cells   []cellBound
	heap    []ObjScore // min-heap: worst candidate (lowest score, then largest id) at the root
	out     []ObjScore
	visited int
	pruned  int
}

// Visited reports how many candidate cells the last search scored.
func (s *TopKScratch) Visited() int { return s.visited }

// Pruned reports how many candidate cells the last search skipped by
// their upper bound.
func (s *TopKScratch) Pruned() int { return s.pruned }

// topkWorse reports whether a is a strictly worse result than b under the
// ranking (score descending, ObjectID ascending).
func topkWorse(a, b ObjScore) bool {
	return a.Score < b.Score || (a.Score == b.Score && a.Obj > b.Obj)
}

// SearchTopKInto returns the k best-scoring objects inside r under q,
// ranked by score descending with ObjectID ascending as the tie-break —
// exactly the first k entries of SearchInto's result re-sorted by that
// ranking, but computed by scoring cells in descending upper-bound order
// and skipping every cell that provably cannot alter the answer. The
// returned slice aliases the scratch and is valid until the next call.
func (idx *Index) SearchTopKInto(q textindex.Query, r geo.Rect, k int, s *TopKScratch) ([]ObjScore, error) {
	s.visited, s.pruned = 0, 0
	if len(q.Terms) == 0 || q.Norm == 0 || k <= 0 {
		return nil, nil
	}
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	x0, x1, y0, y1, ok := idx.cellRange(r)
	if !ok {
		return s.out[:0], nil
	}
	// Phase 1: bound every overlapping cell that shares a term with the
	// query. The bound sum mirrors scoreCell's merge-join (ascending
	// TermID), which is what makes it a floating-point-safe majorant.
	s.cells = s.cells[:0]
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			cell := uint32(cy*idx.nx + cx)
			dir := idx.cellDir[cell]
			if len(dir) == 0 {
				continue
			}
			var bsum float64
			matched := false
			qi, di := 0, 0
			for qi < len(q.Terms) && di < len(dir) {
				switch {
				case q.Terms[qi] < dir[di].term:
					qi++
				case q.Terms[qi] > dir[di].term:
					di++
				default:
					bsum += q.IDF[qi] * dir[di].maxW
					matched = true
					qi++
					di++
				}
			}
			if !matched {
				continue
			}
			s.cells = append(s.cells, cellBound{cell: cell, fullInside: idx.cellInside(cell, r), bound: bsum / q.Norm})
		}
	}
	// Phase 2: visit cells best-bound first (cell id breaks bound ties for
	// a deterministic order; the result does not depend on it).
	slices.SortFunc(s.cells, func(a, b cellBound) int {
		switch {
		case a.bound > b.bound:
			return -1
		case a.bound < b.bound:
			return 1
		case a.cell < b.cell:
			return -1
		case a.cell > b.cell:
			return 1
		}
		return 0
	})
	s.heap = s.heap[:0]
	for ci, cb := range s.cells {
		if len(s.heap) == k && cb.bound < s.heap[0].Score {
			// No object in this — or any later — cell can beat the current
			// k-th entry, even on a tie-break.
			s.pruned = len(s.cells) - ci
			if tr := s.s.Trace; tr != nil {
				tr.CellsPrunedWAND += int64(s.pruned)
			}
			break
		}
		s.visited++
		// Score one cell in isolation: the scratch epoch is bumped per
		// cell, so touched lists the cell's objects and score holds their
		// complete pre-norm sums (an object's postings never span cells).
		s.s.reset(len(idx.objects))
		if err := idx.scoreCell(q, r, cb.cell, idx.cellDir[cb.cell], cb.fullInside, &s.s); err != nil {
			return nil, err
		}
		for _, id := range s.s.touched {
			cand := ObjScore{Obj: id, Score: s.s.score[id] / q.Norm}
			if len(s.heap) < k {
				s.heap = append(s.heap, cand)
				topkSiftUp(s.heap, len(s.heap)-1)
			} else if topkWorse(s.heap[0], cand) {
				s.heap[0] = cand
				topkSiftDown(s.heap, 0)
			}
		}
	}
	// Phase 3: order the survivors by the ranking.
	if cap(s.out) < len(s.heap) {
		s.out = make([]ObjScore, 0, k)
	}
	s.out = append(s.out[:0], s.heap...)
	slices.SortFunc(s.out, func(a, b ObjScore) int {
		switch {
		case topkWorse(b, a):
			return -1
		case topkWorse(a, b):
			return 1
		}
		return 0
	})
	return s.out, nil
}

// topkSiftUp restores the heap property after appending at i.
func topkSiftUp(h []ObjScore, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !topkWorse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// topkSiftDown restores the heap property after replacing the root.
func topkSiftDown(h []ObjScore, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && topkWorse(h[l], h[worst]) {
			worst = l
		}
		if r < n && topkWorse(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
