package grid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// UpdateKind discriminates the three live object mutations.
type UpdateKind uint8

const (
	// UpdateInsert adds a new object (its id is the next dense ObjectID).
	UpdateInsert UpdateKind = 1
	// UpdateDelete removes an object's postings; the id is never reused.
	UpdateDelete UpdateKind = 2
	// UpdateReweight replaces an object's term weights.
	UpdateReweight UpdateKind = 3
)

func (k UpdateKind) String() string {
	switch k {
	case UpdateInsert:
		return "insert"
	case UpdateDelete:
		return "delete"
	case UpdateReweight:
		return "reweight"
	}
	return fmt.Sprintf("UpdateKind(%d)", uint8(k))
}

// Update is one logical object mutation, the unit of the live-update
// path: exactly one WAL record, applied atomically. An object lives in
// exactly one grid cell, so all of its (cell, term) posting keys belong
// to one shard — which is what makes the single-record framing atomic
// without any cross-shard coordination.
//
// Weights are absolute values (the object's new wto per term), not
// deltas or factors, so replaying a record over a state that already
// includes its effects is idempotent — the recovery path depends on
// that, because a crash between memtable flush and WAL truncation
// replays already-flushed records.
type Update struct {
	// Seq is the store-assigned global sequence number, strictly
	// increasing across shards; replay ordering and the meta snapshot's
	// high-water mark are expressed in it.
	Seq  uint64
	Kind UpdateKind
	Obj  ObjectID
	// Cell is the object's grid cell (derived from Point, recorded so
	// replay does not depend on geometry code).
	Cell  uint32
	Point geo.Point
	// Terms lists the object's distinct terms, ascending.
	Terms []textindex.TermID
	// Weights holds the absolute wto per term (insert, reweight).
	Weights []float64
	// TF holds raw term frequencies (insert only; vocabulary replay).
	TF []int32
	// Strs holds the term strings (insert only; vocabulary replay
	// re-interns them at their original TermIDs).
	Strs []string
}

// ErrCorruptUpdate marks a WAL record whose checksum verified but whose
// payload does not decode — unlike a torn tail this is real corruption,
// and recovery must fail typed rather than guess.
var ErrCorruptUpdate = errors.New("grid: corrupt update record")

// encodeUpdate serializes an update for its WAL record.
func encodeUpdate(u *Update) []byte {
	size := 1 + 8 + 4 + 4 + 16 + 4
	switch u.Kind {
	case UpdateInsert:
		for _, s := range u.Strs {
			size += 4 + 8 + 4 + 2 + len(s)
		}
	case UpdateDelete:
		size += 4 * len(u.Terms)
	case UpdateReweight:
		size += (4 + 8) * len(u.Terms)
	}
	out := make([]byte, 0, size)
	out = append(out, byte(u.Kind))
	out = binary.LittleEndian.AppendUint64(out, u.Seq)
	out = binary.LittleEndian.AppendUint32(out, uint32(u.Obj))
	out = binary.LittleEndian.AppendUint32(out, u.Cell)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(u.Point.X))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(u.Point.Y))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(u.Terms)))
	for i, t := range u.Terms {
		out = binary.LittleEndian.AppendUint32(out, uint32(t))
		switch u.Kind {
		case UpdateInsert:
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(u.Weights[i]))
			out = binary.LittleEndian.AppendUint32(out, uint32(u.TF[i]))
			out = binary.LittleEndian.AppendUint16(out, uint16(len(u.Strs[i])))
			out = append(out, u.Strs[i]...)
		case UpdateReweight:
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(u.Weights[i]))
		}
	}
	return out
}

// decodeUpdate parses an encodeUpdate payload.
func decodeUpdate(b []byte) (Update, error) {
	r := updReader{b: b}
	var u Update
	kind := r.u8()
	u.Kind = UpdateKind(kind)
	u.Seq = r.u64()
	u.Obj = ObjectID(r.u32())
	u.Cell = r.u32()
	u.Point.X = math.Float64frombits(r.u64())
	u.Point.Y = math.Float64frombits(r.u64())
	n := r.u32()
	if r.err != nil {
		return Update{}, fmt.Errorf("%w: short header", ErrCorruptUpdate)
	}
	switch u.Kind {
	case UpdateInsert, UpdateDelete, UpdateReweight:
	default:
		return Update{}, fmt.Errorf("%w: unknown kind %d", ErrCorruptUpdate, kind)
	}
	const maxTerms = 1 << 20 // sanity bound; real objects have a handful
	if n > maxTerms {
		return Update{}, fmt.Errorf("%w: implausible term count %d", ErrCorruptUpdate, n)
	}
	u.Terms = make([]textindex.TermID, 0, n)
	if u.Kind != UpdateDelete {
		u.Weights = make([]float64, 0, n)
	}
	if u.Kind == UpdateInsert {
		u.TF = make([]int32, 0, n)
		u.Strs = make([]string, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		u.Terms = append(u.Terms, textindex.TermID(r.u32()))
		switch u.Kind {
		case UpdateInsert:
			u.Weights = append(u.Weights, math.Float64frombits(r.u64()))
			u.TF = append(u.TF, int32(r.u32()))
			u.Strs = append(u.Strs, string(r.bytes(int(r.u16()))))
		case UpdateReweight:
			u.Weights = append(u.Weights, math.Float64frombits(r.u64()))
		}
	}
	if r.err != nil {
		return Update{}, fmt.Errorf("%w: short body", ErrCorruptUpdate)
	}
	if r.off != len(b) {
		return Update{}, fmt.Errorf("%w: %d trailing bytes", ErrCorruptUpdate, len(b)-r.off)
	}
	for i := 1; i < len(u.Terms); i++ {
		if u.Terms[i] <= u.Terms[i-1] {
			return Update{}, fmt.Errorf("%w: terms not strictly ascending", ErrCorruptUpdate)
		}
	}
	return u, nil
}

// updReader is a bounds-checked little-endian cursor over one record.
type updReader struct {
	b   []byte
	off int
	err error
}

func (r *updReader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		if r.err == nil {
			r.err = ErrCorruptUpdate
		}
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *updReader) u8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *updReader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *updReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *updReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
