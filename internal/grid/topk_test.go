package grid

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/geo"
)

// rankTopK sorts a full result set by the top-k ranking and truncates.
func rankTopK(full []ObjScore, k int) []ObjScore {
	ranked := append([]ObjScore(nil), full...)
	slices.SortFunc(ranked, func(a, b ObjScore) int {
		switch {
		case topkWorse(b, a):
			return -1
		case topkWorse(a, b):
			return 1
		}
		return 0
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}

// TestSearchTopKGolden is the bit-identicality gate for the pruned top-k
// mode: across random queries, rectangles and k, SearchTopKInto must equal
// the full scan re-ranked and truncated — same objects, same order, same
// float bits — and the bound ordering must actually skip cells somewhere
// in the sweep (otherwise the pruning path is untested).
func TestSearchTopKGolden(t *testing.T) {
	v, vocab, objs := randomCorpus(t, 400, 61)
	idx, err := NewIndex(copyObjs(objs), crashBounds, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	var full SearchScratch
	var tk TopKScratch
	prunedTotal, nonEmpty := 0, 0
	for trial := 0; trial < 200; trial++ {
		kws := []string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]}
		q := v.PrepareQuery(kws)
		x, y := rng.Float64()*800, rng.Float64()*800
		r := geo.Rect{MinX: x, MinY: y, MaxX: x + 50 + rng.Float64()*600, MaxY: y + 50 + rng.Float64()*600}
		k := 1 + rng.Intn(12)
		fullRes, err := idx.SearchInto(q, r, &full)
		if err != nil {
			t.Fatal(err)
		}
		want := rankTopK(fullRes, k)
		got, err := idx.SearchTopKInto(q, r, k, &tk)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d): %d results, want %d", trial, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (k=%d) result %d: %+v, want %+v", trial, k, i, got[i], want[i])
			}
		}
		prunedTotal += tk.Pruned()
		if len(want) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every trial returned no results; test is vacuous")
	}
	if prunedTotal == 0 {
		t.Fatal("no cell was ever pruned; the bound path is untested")
	}
}

// TestSearchTopKLiveAndReopen runs the same gate while the index absorbs
// live updates over a sharded disk store, and again after a close/reopen:
// the maxW bounds maintained incrementally by Insert/Delete/Reweight (and
// re-derived from postings on reopen) must keep pruning sound.
func TestSearchTopKLiveAndReopen(t *testing.T) {
	v, vocab, objs := randomCorpus(t, crashBaseObjs, 71)
	ops := liveScript(vocab, objs)
	sb, idx := buildLiveBoard(t, objs)
	rng := rand.New(rand.NewSource(72))

	var full SearchScratch
	var tk TopKScratch
	check := func(ix *Index, step string) {
		t.Helper()
		for trial := 0; trial < 12; trial++ {
			q := v.PrepareQuery([]string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]})
			x, y := rng.Float64()*700, rng.Float64()*700
			r := geo.Rect{MinX: x, MinY: y, MaxX: x + 100 + rng.Float64()*400, MaxY: y + 100 + rng.Float64()*400}
			k := 1 + rng.Intn(8)
			fullRes, err := ix.SearchInto(q, r, &full)
			if err != nil {
				t.Fatal(err)
			}
			want := rankTopK(fullRes, k)
			got, err := ix.SearchTopKInto(q, r, k, &tk)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s trial %d (k=%d): %d results, want %d", step, trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d (k=%d) result %d: %+v, want %+v", step, trial, k, i, got[i], want[i])
				}
			}
		}
	}

	check(idx, "pre-update")
	for i := range ops {
		if _, err := applyLiveOps(idx, ops[i:i+1], nil); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if i%6 == 0 {
			check(idx, "live")
		}
	}
	check(idx, "post-script")
	if err := idx.CloseStore(); err != nil {
		t.Fatal(err)
	}
	reopened, err := reopenLive(sb.Fork(true), objs)
	if err != nil {
		t.Fatal(err)
	}
	check(reopened, "reopened")
}

// TestSearchTopKEdgeCases covers degenerate inputs: k <= 0, empty query,
// disjoint rectangle, and k larger than the matching population (the
// result is then the full ranked set).
func TestSearchTopKEdgeCases(t *testing.T) {
	v, _, objs := randomCorpus(t, 60, 3)
	idx, err := NewIndex(copyObjs(objs), crashBounds, crashCell, nil)
	if err != nil {
		t.Fatal(err)
	}
	var tk TopKScratch
	q := v.PrepareQuery([]string{"cafe"})
	if got, err := idx.SearchTopKInto(q, crashBounds, 0, &tk); err != nil || got != nil {
		t.Errorf("k=0: got %v, %v", got, err)
	}
	if got, err := idx.SearchTopKInto(v.PrepareQuery([]string{"nosuchterm"}), crashBounds, 5, &tk); err != nil || got != nil {
		t.Errorf("unknown keyword: got %v, %v", got, err)
	}
	far := geo.Rect{MinX: 5000, MinY: 5000, MaxX: 6000, MaxY: 6000}
	if got, err := idx.SearchTopKInto(q, far, 5, &tk); err != nil || len(got) != 0 {
		t.Errorf("disjoint rect: got %v, %v", got, err)
	}
	var full SearchScratch
	fullRes, err := idx.SearchInto(q, crashBounds, &full)
	if err != nil {
		t.Fatal(err)
	}
	want := rankTopK(fullRes, len(fullRes)+10)
	got, err := idx.SearchTopKInto(q, crashBounds, len(fullRes)+10, &tk)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("oversized k: %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("oversized k result %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}
