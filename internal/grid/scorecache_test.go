package grid

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// assertSameResults fails unless got and want hold identical ObjScore
// sequences (same objects, bit-identical scores).
func assertSameResults(t *testing.T, label string, got, want []ObjScore) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s result %d: %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestScoreCacheDifferentialLiveUpdates is the cache-invalidation golden
// test: while a live-update script (inserts, deletes, reweights, compacts)
// runs, hot repeated queries through the cached path must stay
// bit-identical to the uncached map-based Search at every step — on both
// the MemStore serial path and the sharded fan-out path. Repeats within a
// quiet period must actually hit the cache; every mutation must invalidate
// it (served results reflect the new state immediately).
func TestScoreCacheDifferentialLiveUpdates(t *testing.T) {
	v, vocab, objs := randomCorpus(t, crashBaseObjs, 77)
	ops := liveScript(vocab, objs)

	memIdx, err := NewIndex(copyObjs(objs), crashBounds, crashCell, nil)
	if err != nil {
		t.Fatal(err)
	}
	memIdx.SetScoreCache(256)
	store, err := CreateShardedStore(filepath.Join(t.TempDir(), "store"), ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	shIdx, err := NewIndex(copyObjs(objs), crashBounds, crashCell, store)
	if err != nil {
		t.Fatal(err)
	}
	defer shIdx.CloseStore()
	shIdx.SetScoreCache(256)

	rng := rand.New(rand.NewSource(78))
	// A small pool of hot queries and rectangles: repeats are what make
	// the cache fill and then serve, including across invalidations.
	type hotQ struct {
		q textindex.Query
		r geo.Rect
	}
	hot := make([]hotQ, 4)
	for i := range hot {
		x, y := rng.Float64()*500, rng.Float64()*500
		hot[i] = hotQ{
			q: v.PrepareQuery([]string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]}),
			r: geo.Rect{MinX: x, MinY: y, MaxX: x + 300 + rng.Float64()*200, MaxY: y + 300 + rng.Float64()*200},
		}
	}
	var memScratch, shScratch SearchScratch
	check := func(step string) {
		t.Helper()
		for qi, h := range hot {
			// Twice per quiet period: the first fills, the second replays.
			for rep := 0; rep < 2; rep++ {
				want, err := memIdx.Search(h.q, h.r)
				if err != nil {
					t.Fatal(err)
				}
				got, err := memIdx.SearchInto(h.q, h.r, &memScratch)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, step+": mem cached q"+string(rune('0'+qi)), got, want)
				got, err = shIdx.SearchInto(h.q, h.r, &shScratch)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, step+": sharded cached q"+string(rune('0'+qi)), got, want)
			}
		}
	}

	check("pre-update")
	for i := range ops {
		if _, err := applyLiveOps(memIdx, ops[i:i+1], nil); err != nil {
			t.Fatalf("op %d on MemStore: %v", i, err)
		}
		if _, err := applyLiveOps(shIdx, ops[i:i+1], nil); err != nil {
			t.Fatalf("op %d on sharded store: %v", i, err)
		}
		if i%7 == 0 {
			check("after op")
		}
	}
	check("final")

	for _, idx := range []*Index{memIdx, shIdx} {
		st, ok := idx.ScoreCacheStats()
		if !ok {
			t.Fatal("cache stats unavailable on a cache-enabled index")
		}
		if st.Hits == 0 {
			t.Fatal("hot repeats never hit the cache; the differential is vacuous")
		}
		if st.Misses == 0 {
			t.Fatal("mutations never forced a miss; invalidation is untested")
		}
	}
}

// TestScoreCacheCollisionGuard is the white-box collision test: an entry
// reachable under the right signature but filled by a different query
// (same sig forged, different terms or different IDFs) must MISS, never
// serve the other query's scores.
func TestScoreCacheCollisionGuard(t *testing.T) {
	v, _, objs := randomCorpus(t, 80, 13)
	idx, err := NewIndex(copyObjs(objs), crashBounds, crashCell, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx.SetScoreCache(64)
	q1 := v.PrepareQuery([]string{"cafe", "bar"})
	q2 := v.PrepareQuery([]string{"museum"})
	var scratch SearchScratch
	if _, err := idx.SearchInto(q1, crashBounds, &scratch); err != nil {
		t.Fatal(err)
	}
	sc := idx.scoreCache
	sig1 := q1.Signature()
	// Forge q2 under q1's signature against every cell: the term-list
	// check must reject each entry.
	scratch.reset(len(idx.objects))
	for cell := range idx.cellDir {
		if sc.replay(cell, q2, sig1, idx.epoch, &scratch) {
			t.Fatalf("cell %d: colliding signature served another query's scores", cell)
		}
	}
	// Same terms but drifted IDFs (the vocabulary re-weighted as documents
	// were indexed) must miss too.
	q1drift := textindex.Query{Terms: q1.Terms, IDF: append([]float64(nil), q1.IDF...), Norm: q1.Norm}
	q1drift.IDF[0] *= 1.5
	scratch.reset(len(idx.objects))
	for cell := range idx.cellDir {
		if sc.replay(cell, q1drift, sig1, idx.epoch, &scratch) {
			t.Fatalf("cell %d: entry served despite drifted IDF weights", cell)
		}
	}
	// Sanity: the genuine query does hit at least one interior cell.
	hitsBefore := sc.stats().Hits
	if _, err := idx.SearchInto(q1, crashBounds, &scratch); err != nil {
		t.Fatal(err)
	}
	if sc.stats().Hits == hitsBefore {
		t.Fatal("genuine repeat never hit; guard test is vacuous")
	}
}

// TestScoreCacheEviction bounds the cache: far more distinct queries than
// slots must evict (counter moves) while every answer stays correct, and
// the live entry count must never exceed the configured bound (rounded up
// to the stripe count).
func TestScoreCacheEviction(t *testing.T) {
	v, vocab, objs := randomCorpus(t, 150, 53)
	idx, err := NewIndex(copyObjs(objs), crashBounds, crashCell, nil)
	if err != nil {
		t.Fatal(err)
	}
	const bound = 32
	idx.SetScoreCache(bound)
	rng := rand.New(rand.NewSource(54))
	var scratch SearchScratch
	for trial := 0; trial < 300; trial++ {
		kws := []string{vocab[rng.Intn(len(vocab))]}
		if rng.Intn(2) == 0 {
			kws = append(kws, vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))])
		}
		q := v.PrepareQuery(kws)
		want, err := idx.Search(q, crashBounds)
		if err != nil {
			t.Fatal(err)
		}
		got, err := idx.SearchInto(q, crashBounds, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "trial", got, want)
	}
	st, _ := idx.ScoreCacheStats()
	if st.Evictions == 0 {
		t.Fatal("300 distinct-ish queries over 32 slots never evicted")
	}
	per := (bound + scoreCacheStripes - 1) / scoreCacheStripes
	if st.Entries > per*scoreCacheStripes {
		t.Fatalf("cache holds %d entries, bound is %d", st.Entries, per*scoreCacheStripes)
	}
}

// FuzzQuerySignature feeds arbitrary term-id lists through the cached
// search path: whatever the two queries hash to — equal signatures
// included — the cached answers must match the uncached oracle for both.
func FuzzQuerySignature(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add([]byte{0}, []byte{0, 0})
	f.Add([]byte{5, 5, 5, 5}, []byte{})
	_, vocab, objs := randomCorpus(f, 100, 91)
	idx, err := NewIndex(copyObjs(objs), crashBounds, crashCell, nil)
	if err != nil {
		f.Fatal(err)
	}
	idx.SetScoreCache(64)
	nTerms := len(vocab)
	mkQuery := func(b []byte) textindex.Query {
		var q textindex.Query
		seen := make(map[textindex.TermID]bool)
		for _, c := range b {
			t := textindex.TermID(int(c) % nTerms)
			if !seen[t] {
				seen[t] = true
				q.Terms = append(q.Terms, t)
			}
		}
		// Terms ascending with IDF 1 and norm 1: valid query shape, scores
		// are raw posting-weight sums.
		if len(q.Terms) == 0 {
			return q
		}
		sortTerms(q.Terms)
		q.IDF = make([]float64, len(q.Terms))
		for i := range q.IDF {
			q.IDF[i] = 1
		}
		q.Norm = 1
		return q
	}
	var scratch SearchScratch
	f.Fuzz(func(t *testing.T, a, b []byte) {
		for _, q := range []textindex.Query{mkQuery(a), mkQuery(b), mkQuery(a)} {
			want, err := idx.Search(q, crashBounds)
			if err != nil {
				t.Fatal(err)
			}
			got, err := idx.SearchInto(q, crashBounds, &scratch)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%d results, want %d (terms %v)", len(got), len(want), q.Terms)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("result %d: %+v, want %+v (terms %v)", i, got[i], want[i], q.Terms)
				}
			}
		}
	})
}

// sortTerms sorts a term list ascending (insertion sort; fuzz inputs are
// tiny).
func sortTerms(ts []textindex.TermID) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
