package grid

import (
	"fmt"
	"slices"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// SearchScratch is pooled accumulator state for Index.SearchInto. The zero
// value is ready to use; a scratch may be reused across indexes (its arrays
// grow to the largest object count seen). It serves one search at a time
// and is not safe for concurrent use; pool one per worker.
type SearchScratch struct {
	epoch uint32
	// stamp[o] == epoch marks object o as touched by the current search;
	// its partial score lives in score[o]. Resetting between queries is a
	// single counter increment, not an O(objects) clear.
	stamp   []uint32
	score   []float64
	touched []ObjectID
	out     []ObjScore
}

// reset prepares the scratch for an index with n objects.
func (s *SearchScratch) reset(n int) {
	if cap(s.stamp) < n {
		s.stamp = make([]uint32, n)
		s.score = make([]float64, n)
	}
	s.stamp = s.stamp[:n]
	s.score = s.score[:n]
	s.epoch++
	if s.epoch == 0 { // wrapped after 2³² queries: stale stamps could collide
		clear(s.stamp[:cap(s.stamp)]) // full capacity: the tail may serve a larger index later
		s.epoch = 1
	}
	s.touched = s.touched[:0]
}

// SearchInto is Search with caller-owned scratch: it returns exactly the
// same ObjScore slice as Search(q, r) — same objects, bit-identical scores,
// ascending ObjectID — but accumulates into s's epoch-stamped arrays
// instead of a per-query map and reuses s's result slice. The returned
// slice aliases s and is valid only until the next SearchInto call on the
// same scratch. With a MemStore-backed index the steady state performs
// zero allocations.
func (idx *Index) SearchInto(q textindex.Query, r geo.Rect, s *SearchScratch) ([]ObjScore, error) {
	if len(q.Terms) == 0 || q.Norm == 0 {
		return nil, nil
	}
	s.reset(len(idx.objects))
	// Same cell walk as cellsOverlapping, without materializing the list.
	x0, x1, y0, y1, ok := idx.cellRange(r)
	if !ok {
		return s.out[:0], nil
	}
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			cell := uint32(cy*idx.nx + cx)
			dir := idx.cellDir[cell]
			if len(dir) == 0 {
				continue
			}
			cr := idx.cellRect(cell)
			fullInside := cr.MinX >= r.MinX && cr.MaxX <= r.MaxX &&
				cr.MinY >= r.MinY && cr.MaxY <= r.MaxY
			if err := idx.scoreCell(q, r, cell, dir, fullInside, s); err != nil {
				return nil, err
			}
		}
	}
	slices.Sort(s.touched)
	if cap(s.out) < len(s.touched) {
		s.out = make([]ObjScore, 0, len(s.touched))
	}
	s.out = s.out[:0]
	for _, id := range s.touched {
		s.out = append(s.out, ObjScore{Obj: id, Score: s.score[id] / q.Norm})
	}
	return s.out, nil
}

// scoreCell merge-joins the query terms against one cell's directory and
// accumulates posting contributions into the scratch. Both lists are sorted
// by ascending TermID, so the join visits terms in the same order Search
// does and stops as soon as either side is exhausted.
func (idx *Index) scoreCell(q textindex.Query, r geo.Rect, cell uint32, dir []termEntry, fullInside bool, s *SearchScratch) error {
	qi, di := 0, 0
	for qi < len(q.Terms) && di < len(dir) {
		switch {
		case q.Terms[qi] < dir[di].term:
			qi++
		case q.Terms[qi] > dir[di].term:
			di++
		default:
			ps, err := idx.store.Postings(CellKey{Cell: cell, Term: q.Terms[qi]})
			if err != nil {
				return fmt.Errorf("grid: postings(%d,%d): %w", cell, q.Terms[qi], err)
			}
			// The directory records the list length, so the touched set can
			// grow once up front instead of reallocating mid-scan.
			s.touched = slices.Grow(s.touched, int(dir[di].count))
			for _, p := range ps {
				if !fullInside && !r.Contains(idx.objects[p.Obj].Point) {
					continue
				}
				if s.stamp[p.Obj] != s.epoch {
					s.stamp[p.Obj] = s.epoch
					s.score[p.Obj] = 0
					s.touched = append(s.touched, p.Obj)
				}
				s.score[p.Obj] += q.IDF[qi] * p.Weight
			}
			qi++
			di++
		}
	}
	return nil
}

// clampCell clamps a cell coordinate to [0, hi].
func clampCell(v, hi int) int {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}
