package grid

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"repro/internal/btree"
	"repro/internal/geo"
	"repro/internal/textindex"
)

// ErrShardIO marks a search failure caused by the posting store — a shard
// read that still failed after one retry. The query's result is unusable,
// but the failure is contained to that query: the HTTP layer maps it to
// 503 (retryable) rather than 400/500, and the server keeps serving.
var ErrShardIO = errors.New("grid: shard I/O failure")

// fetchPostings reads one posting list with a single retry for transient
// faults (a lost read on a loaded disk succeeds on the second attempt).
// A checksum failure (btree.ErrCorrupt) is deterministic — the page is
// bad on disk and re-reading it can only double the I/O and blur the
// scrub signal — so corruption fails typed on the first attempt. Either
// way a persistent failure surfaces as ErrShardIO wrapping the cause, so
// callers can tell "this query lost its data" from "this query was bad".
func (idx *Index) fetchPostings(key CellKey) ([]Posting, error) {
	ps, err := idx.store.Postings(key)
	if err == nil {
		return ps, nil
	}
	if !errors.Is(err, btree.ErrCorrupt) {
		if ps, rerr := idx.store.Postings(key); rerr == nil {
			return ps, nil
		}
	}
	return nil, fmt.Errorf("%w: postings(%d,%d): %w", ErrShardIO, key.Cell, key.Term, err)
}

// SearchScratch is pooled accumulator state for Index.SearchInto. The zero
// value is ready to use; a scratch may be reused across indexes (its arrays
// grow to the largest object count seen). It serves one search at a time
// and is not safe for concurrent use; pool one per worker.
type SearchScratch struct {
	epoch uint32
	// stamp[o] == epoch marks object o as touched by the current search;
	// its partial score lives in score[o]. Resetting between queries is a
	// single counter increment, not an O(objects) clear.
	stamp   []uint32
	score   []float64
	touched []ObjectID
	out     []ObjScore
	// Sharded fan-out state (used only with a sharded disk store): the
	// fetch plan in deterministic accumulation order, the fetched lists
	// (parallel to plan), the plan indices bucketed per shard, and one
	// error slot per shard.
	plan    []fetchRef
	fetched [][]Posting
	byShard [][]int32
	errs    []error
	// Trace, when non-nil, makes the search record its scan/skip decisions
	// there (see SearchTrace). nil — the default — keeps the search on its
	// untraced branches: no counting, no extra work on the hot path. The
	// search increments, never resets; the trace's owner resets between
	// queries.
	Trace *SearchTrace
}

// fetchRef is one planned posting-list fetch: cell, the query-term index
// qi (the key's term is q.Terms[qi]), the directory's recorded list
// length, and whether the cell lies fully inside the query rectangle.
type fetchRef struct {
	cell       uint32
	qi         int32
	count      int32
	fullInside bool
}

// reset prepares the scratch for an index with n objects.
func (s *SearchScratch) reset(n int) {
	if cap(s.stamp) < n {
		s.stamp = make([]uint32, n)
		s.score = make([]float64, n)
	}
	s.stamp = s.stamp[:n]
	s.score = s.score[:n]
	s.epoch++
	if s.epoch == 0 { // wrapped after 2³² queries: stale stamps could collide
		clear(s.stamp[:cap(s.stamp)]) // full capacity: the tail may serve a larger index later
		s.epoch = 1
	}
	s.touched = s.touched[:0]
}

// SearchInto is Search with caller-owned scratch: it returns exactly the
// same ObjScore slice as Search(q, r) — same objects, bit-identical scores,
// ascending ObjectID — but accumulates into s's epoch-stamped arrays
// instead of a per-query map and reuses s's result slice. The returned
// slice aliases s and is valid only until the next SearchInto call on the
// same scratch. With a MemStore-backed index the steady state performs
// zero allocations; with a sharded disk store the posting fetches of one
// query fan out across the shards concurrently (the accumulation order —
// and therefore every floating-point sum — stays identical).
func (idx *Index) SearchInto(q textindex.Query, r geo.Rect, s *SearchScratch) ([]ObjScore, error) {
	return idx.SearchRangeInto(q, r, 0, ^uint32(0), s)
}

// SearchRangeInto is SearchInto restricted to the cells whose id lies in
// [cellLo, cellHi): it accumulates exactly the contributions SearchInto
// would accumulate from those cells — same per-cell accumulation order,
// same floating-point sums — and nothing else. Because every object's
// postings live entirely in its one cell, the results of SearchRangeInto
// over a partition of the cell space are disjoint per object, and their
// union (re-sorted by ObjectID) is bit-identical to one SearchInto over
// the whole grid. That property is what lets a cluster node answer a
// partial search for its owned cell range (see internal/cluster).
func (idx *Index) SearchRangeInto(q textindex.Query, r geo.Rect, cellLo, cellHi uint32, s *SearchScratch) ([]ObjScore, error) {
	if len(q.Terms) == 0 || q.Norm == 0 {
		return nil, nil
	}
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	s.reset(len(idx.objects))
	// Same cell walk as cellsOverlapping, without materializing the list.
	x0, x1, y0, y1, ok := idx.cellRange(r)
	if !ok {
		return s.out[:0], nil
	}
	if idx.sharded != nil {
		if err := idx.searchSharded(q, r, x0, x1, y0, y1, cellLo, cellHi, s); err != nil {
			return nil, err
		}
	} else {
		sc := idx.scoreCache
		var sig uint64
		if sc != nil {
			sig = q.Signature()
		}
		tr := s.Trace
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				cell := uint32(cy*idx.nx + cx)
				if cell < cellLo || cell >= cellHi {
					continue
				}
				if tr != nil {
					tr.CellsInRect++
				}
				dir := idx.cellDir[cell]
				if len(dir) == 0 {
					if tr != nil {
						tr.CellsEmpty++
					}
					continue
				}
				fullInside := idx.cellInside(cell, r)
				// Only interior cells are cacheable: their contribution does
				// not depend on the exact query rectangle. Replay order does
				// not matter for bit-identicality — an object's postings all
				// live in its one cell, and the touched set is sorted below.
				if sc != nil && fullInside && sc.replay(cell, q, sig, idx.epoch, s) {
					if tr != nil {
						tr.CellsCacheHit++
					}
					continue
				}
				pre := len(s.touched)
				var preLists int64
				if tr != nil {
					preLists = tr.Lists
				}
				if err := idx.scoreCell(q, r, cell, dir, fullInside, s); err != nil {
					return nil, err
				}
				if tr != nil {
					// A merge-join that fetched nothing is the term-directory
					// miss; anything else was a real scan.
					if tr.Lists == preLists {
						tr.CellsNoTerm++
					} else {
						tr.CellsScanned++
					}
				}
				if sc != nil && fullInside {
					sc.fill(cell, q, sig, idx.epoch, s.touched[pre:], s.score)
				}
			}
		}
	}
	if tr := s.Trace; tr != nil {
		tr.Objects += int64(len(s.touched))
	}
	slices.Sort(s.touched)
	if cap(s.out) < len(s.touched) {
		s.out = make([]ObjScore, 0, len(s.touched))
	}
	s.out = s.out[:0]
	for _, id := range s.touched {
		s.out = append(s.out, ObjScore{Obj: id, Score: s.score[id] / q.Norm})
	}
	return s.out, nil
}

// cellInside reports whether cell lies fully inside r (objects then need
// no per-point containment check).
func (idx *Index) cellInside(cell uint32, r geo.Rect) bool {
	cr := idx.cellRect(cell)
	return cr.MinX >= r.MinX && cr.MaxX <= r.MaxX && cr.MinY >= r.MinY && cr.MaxY <= r.MaxY
}

// scoreCell merge-joins the query terms against one cell's directory and
// accumulates posting contributions into the scratch. Both lists are sorted
// by ascending TermID, so the join visits terms in the same order Search
// does and stops as soon as either side is exhausted.
func (idx *Index) scoreCell(q textindex.Query, r geo.Rect, cell uint32, dir []termEntry, fullInside bool, s *SearchScratch) error {
	qi, di := 0, 0
	for qi < len(q.Terms) && di < len(dir) {
		switch {
		case q.Terms[qi] < dir[di].term:
			qi++
		case q.Terms[qi] > dir[di].term:
			di++
		default:
			ps, err := idx.fetchPostings(CellKey{Cell: cell, Term: q.Terms[qi]})
			if err != nil {
				return err
			}
			if s.Trace != nil {
				s.Trace.Lists++
			}
			// The directory records the list length, so the touched set can
			// grow once up front instead of reallocating mid-scan.
			s.touched = slices.Grow(s.touched, int(dir[di].count))
			idx.accumulate(r, ps, q.IDF[qi], fullInside, s)
			qi++
			di++
		}
	}
	return nil
}

// accumulate folds one posting list into the scratch with the query-side
// weight idf. It is the one shared inner loop of the serial and sharded
// search paths, so both accumulate bit-identically. Tracing takes a
// separate copy of the loop so the untraced (serving) path carries no
// per-posting branch.
func (idx *Index) accumulate(r geo.Rect, ps []Posting, idf float64, fullInside bool, s *SearchScratch) {
	if s.Trace != nil {
		idx.accumulateTraced(r, ps, idf, fullInside, s)
		return
	}
	for _, p := range ps {
		if !fullInside && !r.Contains(idx.objects[p.Obj].Point) {
			continue
		}
		if s.stamp[p.Obj] != s.epoch {
			s.stamp[p.Obj] = s.epoch
			s.score[p.Obj] = 0
			s.touched = append(s.touched, p.Obj)
		}
		s.score[p.Obj] += idf * p.Weight
	}
}

// accumulateTraced is accumulate with per-posting trace counting. The
// scoring logic is identical line for line; only the counters differ, so
// traced answers stay bit-identical to untraced ones.
func (idx *Index) accumulateTraced(r geo.Rect, ps []Posting, idf float64, fullInside bool, s *SearchScratch) {
	tr := s.Trace
	tr.Postings += int64(len(ps))
	for _, p := range ps {
		if !fullInside && !r.Contains(idx.objects[p.Obj].Point) {
			tr.PostingsFiltered++
			continue
		}
		if s.stamp[p.Obj] != s.epoch {
			s.stamp[p.Obj] = s.epoch
			s.score[p.Obj] = 0
			s.touched = append(s.touched, p.Obj)
		}
		s.score[p.Obj] += idf * p.Weight
	}
}

// searchSharded is SearchInto's fetch path for a sharded store. It runs
// in three phases: (1) plan — walk the cells in row-major order and
// merge-join the query terms against each cell directory, recording every
// (cell, term) posting list the serial path would read, in the order it
// would read them; (2) fetch — bucket the planned reads by owning shard
// and fetch each shard's lists from its own goroutine, so one query's
// cold reads load all shards concurrently and never block on a foreign
// shard's lock; (3) accumulate — fold the fetched lists into the scratch
// serially in plan order, which is exactly the serial path's order, so
// scores stay bit-identical.
func (idx *Index) searchSharded(q textindex.Query, r geo.Rect, x0, x1, y0, y1 int, cellLo, cellHi uint32, s *SearchScratch) error {
	sc := idx.scoreCache
	var sig uint64
	if sc != nil {
		sig = q.Signature()
	}
	s.plan = s.plan[:0]
	tr := s.Trace
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			cell := uint32(cy*idx.nx + cx)
			if cell < cellLo || cell >= cellHi {
				continue
			}
			if tr != nil {
				tr.CellsInRect++
			}
			dir := idx.cellDir[cell]
			if len(dir) == 0 {
				if tr != nil {
					tr.CellsEmpty++
				}
				continue
			}
			fullInside := idx.cellInside(cell, r)
			// Cached interior cells replay during planning and are excluded
			// from the fetch plan entirely — a hot query over a warm cache
			// plans zero posting fetches. Cell processing order does not
			// affect the result: every object's score comes wholly from its
			// one cell, and the touched set is sorted by the caller.
			if sc != nil && fullInside && sc.replay(cell, q, sig, idx.epoch, s) {
				if tr != nil {
					tr.CellsCacheHit++
				}
				continue
			}
			planStart := len(s.plan)
			qi, di := 0, 0
			for qi < len(q.Terms) && di < len(dir) {
				switch {
				case q.Terms[qi] < dir[di].term:
					qi++
				case q.Terms[qi] > dir[di].term:
					di++
				default:
					s.plan = append(s.plan, fetchRef{cell: cell, qi: int32(qi), count: dir[di].count, fullInside: fullInside})
					qi++
					di++
				}
			}
			if tr != nil {
				if len(s.plan) == planStart {
					tr.CellsNoTerm++
				} else {
					tr.CellsScanned++
					tr.Lists += int64(len(s.plan) - planStart)
				}
			}
			if sc != nil && fullInside && len(s.plan) == planStart {
				// The cell shares no terms with the query: cache that as an
				// empty contribution so the next repeat skips the merge-join.
				sc.fill(cell, q, sig, idx.epoch, nil, nil)
			}
		}
	}
	if len(s.plan) == 0 {
		return nil
	}
	n := idx.sharded.NumShards()
	if cap(s.byShard) < n {
		s.byShard = make([][]int32, n)
		s.errs = make([]error, n)
	}
	byShard := s.byShard[:n]
	errs := s.errs[:n]
	for i := range byShard {
		byShard[i] = byShard[i][:0]
		errs[i] = nil
	}
	for i, ref := range s.plan {
		sh := idx.sharded.ShardOf(CellKey{Cell: ref.cell, Term: q.Terms[ref.qi]})
		byShard[sh] = append(byShard[sh], int32(i))
	}
	s.fetched = slices.Grow(s.fetched[:0], len(s.plan))[:len(s.plan)]
	var wg sync.WaitGroup
	for sh := 0; sh < n; sh++ {
		if len(byShard[sh]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			for _, pi := range byShard[sh] {
				ref := s.plan[pi]
				ps, err := idx.fetchPostings(CellKey{Cell: ref.cell, Term: q.Terms[ref.qi]})
				if err != nil {
					errs[sh] = err
					return
				}
				s.fetched[pi] = ps
			}
		}(sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Accumulate in plan order — the serial path's order — grouping the
	// consecutive fetches of each cell (the plan is built cell-major) so a
	// just-computed interior cell can be cached as one entry.
	for i := 0; i < len(s.plan); {
		cell := s.plan[i].cell
		fullInside := s.plan[i].fullInside
		pre := len(s.touched)
		j := i
		for ; j < len(s.plan) && s.plan[j].cell == cell; j++ {
			ref := s.plan[j]
			s.touched = slices.Grow(s.touched, int(ref.count))
			idx.accumulate(r, s.fetched[j], q.IDF[ref.qi], ref.fullInside, s)
			s.fetched[j] = nil // drop the reference; the lists die with this query
		}
		if sc != nil && fullInside {
			sc.fill(cell, q, sig, idx.epoch, s.touched[pre:], s.score)
		}
		i = j
	}
	return nil
}

// clampCell clamps a cell coordinate to [0, hi].
func clampCell(v, hi int) int {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}
