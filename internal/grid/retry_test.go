package grid

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/btree"
	"repro/internal/iofault"
)

// retryProbeStore wraps a Store and fails the next failN Postings calls with a
// fixed error, counting every attempt — the probe for fetchPostings'
// retry policy.
type retryProbeStore struct {
	inner Store
	calls int
	failN int
	err   error
}

func (s *retryProbeStore) Append(key CellKey, ps []Posting) error { return s.inner.Append(key, ps) }

func (s *retryProbeStore) Postings(key CellKey) ([]Posting, error) {
	s.calls++
	if s.failN > 0 {
		s.failN--
		return nil, s.err
	}
	return s.inner.Postings(key)
}

// TestFetchPostingsRetryPolicy pins the two halves of the retry contract:
// a transient store failure is retried once and the query succeeds, while
// a checksum failure (btree.ErrCorrupt) fails typed on the FIRST attempt —
// re-reading a page that is bad on disk only doubles the I/O — even though
// a retry would have succeeded here.
func TestFetchPostingsRetryPolicy(t *testing.T) {
	v, _, objs := randomCorpus(t, 120, 31)
	fs := &retryProbeStore{inner: NewMemStore()}
	idx, err := NewIndex(objs, crashBounds, 100, fs)
	if err != nil {
		t.Fatal(err)
	}
	q := v.PrepareQuery([]string{"cafe", "bar"})

	// Fault-free baseline (copied out: the scratch is reused below).
	var scratch SearchScratch
	res, err := idx.SearchInto(q, crashBounds, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("baseline returned no results; test is vacuous")
	}
	want := append([]ObjScore(nil), res...)

	// Transient failure: one retry recovers, results are bit-identical.
	fs.failN, fs.err = 1, errors.New("injected transient read failure")
	before := fs.calls
	res, err = idx.SearchInto(q, crashBounds, &scratch)
	if err != nil {
		t.Fatalf("transient fault not recovered: %v", err)
	}
	if len(res) != len(want) {
		t.Fatalf("recovered query: %d results, want %d", len(res), len(want))
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("recovered result %d: %+v, want %+v", i, res[i], want[i])
		}
	}
	if fs.failN != 0 {
		t.Fatal("injected failure was never consumed")
	}
	transientCalls := fs.calls - before

	// Corruption: typed failure with NO second attempt, even though the
	// fault clears after one call (the old code would have masked it).
	fs.failN, fs.err = 1, fmt.Errorf("shard 0 page 7: %w", btree.ErrCorrupt)
	before = fs.calls
	if _, err = idx.SearchInto(q, crashBounds, &scratch); err == nil {
		t.Fatal("corrupt store error was swallowed by a retry")
	} else {
		if !errors.Is(err, ErrShardIO) {
			t.Fatalf("corrupt failure not typed as ErrShardIO: %v", err)
		}
		if !errors.Is(err, btree.ErrCorrupt) {
			t.Fatalf("corrupt failure does not preserve the cause: %v", err)
		}
	}
	if got := fs.calls - before; got != 1 {
		t.Fatalf("corrupt read attempted %d times, want exactly 1 (no retry)", got)
	}
	if transientCalls < 2 {
		t.Fatalf("transient read attempted %d times, want the failed call plus its retry", transientCalls)
	}

	// The failed query must not leave the index unusable.
	res, err = idx.SearchInto(q, crashBounds, &scratch)
	if err != nil || len(res) != len(want) {
		t.Fatalf("query after typed failure: %d results, err %v", len(res), err)
	}
}

// TestSearchRecoversTransientShardRead drives the retry end-to-end over
// the real sharded disk store: a cold reopen whose Nth physical ReadAt
// fails (iofault fail-Nth) must still answer the query, bit-identical to
// the fault-free run, for every injection point in the query's read
// sequence.
func TestSearchRecoversTransientShardRead(t *testing.T) {
	v, _, objs := randomCorpus(t, 150, 41)
	sb, idx := buildLiveBoard(t, objs)
	q := v.PrepareQuery([]string{"cafe", "museum"})
	res, err := idx.Search(q, crashBounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("baseline returned no results; test is vacuous")
	}
	want := append([]ObjScore(nil), res...)

	for failN := 1; failN <= 6; failN++ {
		img := sb.Fork(true)
		cold, err := reopenLive(img, objs)
		if err != nil {
			t.Fatalf("failN %d: reopen: %v", failN, err)
		}
		img.SetPlan(iofault.Plan{FailRead: failN})
		got, err := cold.Search(q, crashBounds)
		if err != nil {
			t.Fatalf("failN %d: query not recovered: %v", failN, err)
		}
		reads, _, _ := img.Counts()
		if reads < failN {
			// The query finished under failN physical reads, so this and
			// every later injection point never fires: the page cache
			// absorbed the plan. The earlier iterations already exercised
			// the retry.
			break
		}
		if len(got) != len(want) {
			t.Fatalf("failN %d: %d results, want %d", failN, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("failN %d result %d: %+v, want %+v", failN, i, got[i], want[i])
			}
		}
	}
}
