package grid

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/btree"
	"repro/internal/iofault"
)

// storeFS is the file surface a sharded store needs, factored out so the
// crash suites can run the real store code — WAL appends, memtable
// flushes, meta-slot commits, manifest writes — over an iofault
// Switchboard with one global kill-point counter, while production runs
// over the OS filesystem. Names are store-relative ("MANIFEST",
// "shard-0001.bt", "wal-0001.log", "META.0").
type storeFS interface {
	// CreateTree creates a fresh B+-tree under name.
	CreateTree(name string, opts btree.Options) (*btree.Tree, error)
	// OpenTree opens an existing tree under name.
	OpenTree(name string, opts btree.Options) (*btree.Tree, error)
	// OpenFile opens name read-write, creating it empty when absent (the
	// WAL open-or-create path; a store written before WALs existed grows
	// empty logs on first open).
	OpenFile(name string) (iofault.File, error)
	// ReadFile returns the whole content of name.
	ReadFile(name string) ([]byte, error)
	// WriteFile replaces name with data and, when sync is set, makes it
	// durable before returning.
	WriteFile(name string, data []byte, sync bool) error
	// Exists reports whether name exists.
	Exists(name string) bool
	// Remove deletes name.
	Remove(name string) error
	// Path renders name for error messages (absolute for the OS
	// filesystem, bare for a memory board).
	Path(name string) string
}

// osFS is the production storeFS: a directory on the OS filesystem.
type osFS struct {
	dir string
}

func (fs osFS) Path(name string) string { return filepath.Join(fs.dir, name) }

func (fs osFS) CreateTree(name string, opts btree.Options) (*btree.Tree, error) {
	return btree.Create(fs.Path(name), opts)
}

func (fs osFS) OpenTree(name string, opts btree.Options) (*btree.Tree, error) {
	return btree.Open(fs.Path(name), opts)
}

func (fs osFS) OpenFile(name string) (iofault.File, error) {
	f, err := os.OpenFile(fs.Path(name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("grid: open %s: %w", fs.Path(name), err)
	}
	return f, nil
}

func (fs osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(fs.Path(name)) }

func (fs osFS) WriteFile(name string, data []byte, sync bool) error {
	return writeFileOver(fs, name, data, sync)
}

func (fs osFS) Exists(name string) bool {
	_, err := os.Stat(fs.Path(name))
	return err == nil
}

func (fs osFS) Remove(name string) error { return os.Remove(fs.Path(name)) }

// memFS is a storeFS over an iofault Switchboard, the substrate of the
// live-update crash suites: every write and sync of every store file
// shares one fault plan and one kill-point counter.
type memFS struct {
	sb *iofault.Switchboard
}

func (fs memFS) Path(name string) string { return name }

func (fs memFS) CreateTree(name string, opts btree.Options) (*btree.Tree, error) {
	f := fs.sb.Open(name)
	if err := f.Truncate(0); err != nil {
		return nil, err
	}
	return btree.CreateFile(f, opts)
}

func (fs memFS) OpenTree(name string, opts btree.Options) (*btree.Tree, error) {
	if !fs.sb.Exists(name) {
		return nil, fmt.Errorf("btree: open: %s does not exist", name)
	}
	return btree.OpenFile(fs.sb.Open(name), opts)
}

func (fs memFS) OpenFile(name string) (iofault.File, error) { return fs.sb.Open(name), nil }

func (fs memFS) ReadFile(name string) ([]byte, error) {
	if !fs.sb.Exists(name) {
		return nil, fmt.Errorf("%s: %w", name, os.ErrNotExist)
	}
	f := fs.sb.Open(name)
	var out []byte
	buf := make([]byte, 4096)
	for off := int64(0); ; {
		n, err := f.ReadAt(buf, off)
		out = append(out, buf[:n]...)
		off += int64(n)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

func (fs memFS) WriteFile(name string, data []byte, sync bool) error {
	return writeFileOver(fs, name, data, sync)
}

func (fs memFS) Exists(name string) bool { return fs.sb.Exists(name) }

func (fs memFS) Remove(name string) error { return fs.sb.Remove(name) }

// writeFileOver replaces a file's content through the File interface, so
// both filesystems share one code path — and its writes/syncs land on the
// crash suites' kill-point counter.
func writeFileOver(fs storeFS, name string, data []byte, sync bool) error {
	f, err := fs.OpenFile(name)
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		_ = f.Close()
		return fmt.Errorf("grid: write %s: %w", fs.Path(name), err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("grid: write %s: %w", fs.Path(name), err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("grid: sync %s: %w", fs.Path(name), err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("grid: close %s: %w", fs.Path(name), err)
	}
	return nil
}
