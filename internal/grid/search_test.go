package grid

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// randomCorpus builds a randomized object set for equivalence trials.
func randomCorpus(t testing.TB, n int, seed int64) (*textindex.Vocabulary, []string, []Object) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v := textindex.NewVocabulary()
	vocab := []string{"cafe", "restaurant", "bar", "pizza", "museum", "park", "shop"}
	objs := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		toks := make([]string, 1+rng.Intn(3))
		for j := range toks {
			toks[j] = vocab[rng.Intn(len(vocab))]
		}
		objs = append(objs, Object{
			Point: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Doc:   v.IndexDoc(toks),
		})
	}
	return v, vocab, objs
}

// TestSearchIntoMatchesSearch is the golden comparison: across random
// queries and rectangles (boundary cells included), the pooled variant must
// return exactly what the allocating variant does — same objects in the
// same order with bit-identical scores — while reusing one scratch.
func TestSearchIntoMatchesSearch(t *testing.T) {
	v, vocab, objs := randomCorpus(t, 300, 17)
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	idx, err := NewIndex(objs, bounds, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	var scratch SearchScratch
	nonEmpty := 0
	for trial := 0; trial < 100; trial++ {
		kws := []string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]}
		q := v.PrepareQuery(kws)
		x, y := rng.Float64()*900, rng.Float64()*900
		r := geo.Rect{MinX: x, MinY: y, MaxX: x + 25 + rng.Float64()*300, MaxY: y + 25 + rng.Float64()*300}
		want, err := idx.Search(q, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := idx.SearchInto(q, r, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: SearchInto %d results, Search %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d result %d: SearchInto %+v, Search %+v", trial, i, got[i], want[i])
			}
		}
		if len(want) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every trial returned no results; test is vacuous")
	}
}

// TestSearchIntoEdgeCases covers the empty-query and disjoint-rectangle
// paths and the epoch reset across many reuses.
func TestSearchIntoEdgeCases(t *testing.T) {
	v, _, objs := randomCorpus(t, 50, 5)
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	idx, err := NewIndex(objs, bounds, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	var scratch SearchScratch
	if got, err := idx.SearchInto(v.PrepareQuery([]string{"nosuchterm"}), bounds, &scratch); err != nil || got != nil {
		t.Errorf("unknown keyword: got %v, %v", got, err)
	}
	q := v.PrepareQuery([]string{"cafe"})
	if got, err := idx.SearchInto(q, geo.Rect{MinX: 5000, MinY: 5000, MaxX: 6000, MaxY: 6000}, &scratch); err != nil || len(got) != 0 {
		t.Errorf("disjoint rect: got %v, %v", got, err)
	}
	// Reuse the scratch many times; stale stamps must never leak scores.
	for i := 0; i < 50; i++ {
		want, _ := idx.Search(q, bounds)
		got, err := idx.SearchInto(q, bounds, &scratch)
		if err != nil || len(got) != len(want) {
			t.Fatalf("reuse %d: %d results (want %d), err %v", i, len(got), len(want), err)
		}
	}
}

// TestSearchIntoBTreeStore checks the pooled path against the disk-backed
// posting store too (it allocates there, but results must be identical).
func TestSearchIntoBTreeStore(t *testing.T) {
	v, vocab, objs := randomCorpus(t, 200, 23)
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	store, err := NewBTreeStore(filepath.Join(t.TempDir(), "postings.bt"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	diskIdx, err := NewIndex(objs, bounds, 50, store)
	if err != nil {
		t.Fatal(err)
	}
	memIdx, err := NewIndex(objs, bounds, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	var scratch SearchScratch
	for trial := 0; trial < 20; trial++ {
		q := v.PrepareQuery([]string{vocab[rng.Intn(len(vocab))]})
		x, y := rng.Float64()*800, rng.Float64()*800
		r := geo.Rect{MinX: x, MinY: y, MaxX: x + 200, MaxY: y + 200}
		want, err := memIdx.Search(q, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := diskIdx.SearchInto(q, r, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: disk SearchInto %d results, mem Search %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d result %d: disk %+v, mem %+v", trial, i, got[i], want[i])
			}
		}
	}
}
