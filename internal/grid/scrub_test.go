package grid

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/btree"
	"repro/internal/geo"
)

// buildShardedStore creates a populated sharded store on disk and closes
// it, returning the directory.
func buildShardedStore(t *testing.T, shards int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	s, err := CreateShardedStore(dir, ShardedOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	for cell := uint32(0); cell < 40; cell++ {
		ps := make([]Posting, 0, 8)
		for o := 0; o < 8; o++ {
			ps = append(ps, Posting{Obj: ObjectID(cell*8 + uint32(o)), Weight: float64(o) * 0.25})
		}
		if err := s.Append(CellKey{Cell: cell, Term: 3}, ps); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestScrubCleanStores(t *testing.T) {
	dir := buildShardedStore(t, 4)
	s, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep := s.Scrub()
	if len(rep.Shards) != 4 {
		t.Fatalf("scrub reported %d shards, want 4", len(rep.Shards))
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("clean store scrub failed: %v\n%s", err, rep)
	}
	var keys uint64
	for _, sh := range rep.Shards {
		keys += sh.Stats.Keys
	}
	if keys != 40 {
		t.Errorf("scrub counted %d keys across shards, want 40", keys)
	}

	// Single-tree layout reports as shard 0.
	path := filepath.Join(t.TempDir(), "single.bt")
	bs, err := NewBTreeStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	if err := bs.Append(CellKey{Cell: 1, Term: 2}, []Posting{{Obj: 9, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	brep := bs.Scrub()
	if err := brep.Err(); err != nil || len(brep.Shards) != 1 || brep.Shards[0].Shard != 0 {
		t.Fatalf("single-tree scrub: %+v, %v", brep, err)
	}
}

// TestScrubDetectsShardCorruption flips one byte in one shard's data page;
// the scrub must flag exactly that shard, typed btree.ErrCorrupt, while
// the other shards verify clean.
func TestScrubDetectsShardCorruption(t *testing.T) {
	dir := buildShardedStore(t, 4)
	victim := filepath.Join(dir, shardFileName(1))
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[2*btree.PageSize+100] ^= 0x40
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenShardedStore(dir)
	if err != nil {
		// Lazy page reads mean Open may or may not trip over the damage;
		// if it does, it must at least be typed.
		if !errors.Is(err, btree.ErrCorrupt) {
			t.Fatalf("open of corrupted store failed untyped: %v", err)
		}
		return
	}
	defer s.Close()
	rep := s.Scrub()
	if err := rep.Err(); !errors.Is(err, btree.ErrCorrupt) {
		t.Fatalf("scrub of corrupted shard returned %v, want ErrCorrupt\n%s", err, rep)
	}
	for _, sh := range rep.Shards {
		if sh.Shard == 1 {
			if sh.Err == nil {
				t.Error("corrupted shard 1 scrubbed clean")
			}
		} else if sh.Err != nil {
			t.Errorf("healthy shard %d reported %v", sh.Shard, sh.Err)
		}
	}
	if !strings.Contains(rep.String(), "CORRUPT") {
		t.Errorf("report rendering lacks CORRUPT marker:\n%s", rep)
	}
}

// TestManifestChecksum: a tampered MANIFEST is refused, and the legacy
// three-line manifest (pre-checksum) still opens.
func TestManifestChecksum(t *testing.T) {
	dir := buildShardedStore(t, 2)
	mpath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "crc ") {
		t.Fatalf("manifest missing crc line:\n%s", raw)
	}

	// Tamper with the shard count but keep the old checksum.
	bad := strings.Replace(string(raw), "shards 2", "shards 3", 1)
	if err := os.WriteFile(mpath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardedStore(dir); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered manifest opened (err = %v)", err)
	}

	// Legacy layout: drop the crc line entirely; must still open.
	lines := strings.SplitN(string(raw), "\n", 4)
	legacy := lines[0] + "\n" + lines[1] + "\n" + lines[2] + "\n"
	if err := os.WriteFile(mpath, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatalf("legacy manifest refused: %v", err)
	}
	if s.NumShards() != 2 {
		t.Errorf("legacy open: %d shards, want 2", s.NumShards())
	}
	s.Close()

	// The open must have upgraded the manifest in place: the checksummed
	// four-line form is back on disk, byte-identical to the original, so
	// every later open (and Scrub) verifies a crc again.
	upgraded, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if string(upgraded) != string(raw) {
		t.Errorf("legacy manifest not upgraded on open:\n got %q\nwant %q", upgraded, raw)
	}

	// Typed rejects: every malformed manifest fails as ErrBadManifest,
	// never as a silent mis-open.
	for name, img := range map[string]string{
		"wrong magic":     "some-other-store v9\nshards 2\npartition cell-mod\n",
		"bad shard count": lines[0] + "\nshards zero\n" + lines[2] + "\n",
		"huge count":      lines[0] + "\nshards 100000\n" + lines[2] + "\n",
		"bad partition":   lines[0] + "\n" + lines[1] + "\npartition round-robin\n",
		"truncated":       lines[0] + "\n",
	} {
		if err := os.WriteFile(mpath, []byte(img), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenShardedStore(dir); !errors.Is(err, ErrBadManifest) {
			t.Errorf("%s: open returned %v, want ErrBadManifest", name, err)
		}
	}
}

// TestManifestUpgradeReopenCycle: the legacy 3-line path end to end —
// legacy open upgrades the header in place, the store then reopens on the
// checksummed path with its data intact, and the upgraded header accepts
// a later cell-range assignment that itself survives reopen.
func TestManifestUpgradeReopenCycle(t *testing.T) {
	dir := buildShardedStore(t, 2)
	mpath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}

	// Rewind the header to the legacy checksum-free format.
	lines := strings.SplitN(string(raw), "\n", 4)
	legacy := lines[0] + "\n" + lines[1] + "\n" + lines[2] + "\n"
	if err := os.WriteFile(mpath, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}

	// Legacy open upgrades; the data must be readable through it.
	s, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatalf("legacy open: %v", err)
	}
	if ps, err := s.Postings(CellKey{Cell: 7, Term: 3}); err != nil || len(ps) != 8 {
		t.Fatalf("postings through legacy-opened store: %d, %v (want 8, nil)", len(ps), err)
	}
	if _, _, ok := s.CellRange(); ok {
		t.Error("legacy store reports a cell range it never recorded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: now on the checksummed path, same data, no further rewrite.
	s, err = OpenShardedStore(dir)
	if err != nil {
		t.Fatalf("reopen after upgrade: %v", err)
	}
	if ps, err := s.Postings(CellKey{Cell: 7, Term: 3}); err != nil || len(ps) != 8 {
		t.Fatalf("postings after reopen: %d, %v (want 8, nil)", len(ps), err)
	}
	upgraded, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if string(upgraded) != string(raw) {
		t.Errorf("upgrade not byte-stable:\n got %q\nwant %q", upgraded, raw)
	}

	// Record a cell-range assignment on the upgraded store; it must come
	// back on the next open, still checksummed (tamper is refused).
	if err := s.RecordCellRange(10, 20); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = OpenShardedStore(dir)
	if err != nil {
		t.Fatalf("reopen after RecordCellRange: %v", err)
	}
	lo, hi, ok := s.CellRange()
	if !ok || lo != 10 || hi != 20 {
		t.Fatalf("cell range after reopen: [%d, %d) ok=%v, want [10, 20) true", lo, hi, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	withCells, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(withCells), "cells 10 20", "cells 0 99", 1)
	if tampered == string(withCells) {
		t.Fatalf("manifest lacks cells line:\n%s", withCells)
	}
	if err := os.WriteFile(mpath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardedStore(dir); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("tampered cell range opened (err = %v)", err)
	}
}

// flakyStore fails the first failEvery-th Postings calls once each: call n
// fails if n is a designated failure and the immediate retry succeeds —
// unless permanent is set, in which case designated keys always fail.
type flakyStore struct {
	inner     Store
	failNext  int  // countdown: fail Postings when it reaches 0 (one-shot)
	permanent bool // every Postings call fails
	calls     int
	failures  int
}

func (f *flakyStore) Append(key CellKey, ps []Posting) error { return f.inner.Append(key, ps) }

func (f *flakyStore) Postings(key CellKey) ([]Posting, error) {
	f.calls++
	if f.permanent {
		f.failures++
		return nil, errors.New("disk on fire")
	}
	if f.failNext > 0 {
		f.failNext--
		if f.failNext == 0 {
			f.failures++
			return nil, errors.New("transient read fault")
		}
	}
	return f.inner.Postings(key)
}

// TestFetchPostingsRetry: a transient store fault is absorbed by the
// single retry (results bit-identical to the healthy run); a persistent
// fault surfaces typed as ErrShardIO.
func TestFetchPostingsRetry(t *testing.T) {
	v, vocab, objs := randomCorpus(t, 200, 41)
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	flaky := &flakyStore{inner: NewMemStore()}
	idx, err := NewIndex(objs, bounds, 50, flaky)
	if err != nil {
		t.Fatal(err)
	}
	q := v.PrepareQuery([]string{vocab[0], vocab[1]})
	want, err := idx.Search(q, bounds)
	if err != nil || len(want) == 0 {
		t.Fatalf("baseline search: %d results, err %v", len(want), err)
	}

	flaky.failNext = 3 // third fetch of the next search fails once
	got, err := idx.Search(q, bounds)
	if err != nil {
		t.Fatalf("search did not absorb transient fault: %v", err)
	}
	if flaky.failures != 1 {
		t.Fatalf("transient fault never fired (failures = %d)", flaky.failures)
	}
	if len(got) != len(want) {
		t.Fatalf("retried search: %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d after retry: %+v, want %+v", i, got[i], want[i])
		}
	}

	flaky.permanent = true
	if _, err := idx.Search(q, bounds); !errors.Is(err, ErrShardIO) {
		t.Fatalf("persistent fault returned %v, want ErrShardIO", err)
	}
	var scratch SearchScratch
	if _, err := idx.SearchInto(q, bounds, &scratch); !errors.Is(err, ErrShardIO) {
		t.Fatalf("SearchInto persistent fault returned %v, want ErrShardIO", err)
	}
}
