package grid

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/textindex"
)

// TestLiveSnapshotReopenGolden is the snapshot-reopen golden test: a
// sharded store that absorbed live updates must, after CloseStore and
// NewIndexOver, serve bit-identical state — and a store closed WITHOUT a
// final compaction (raw tree close, WAL still holding updates) must
// recover the same state through WAL replay on the next open.
func TestLiveSnapshotReopenGolden(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	v, vocab, objs := randomCorpus(t, crashBaseObjs, 99)
	nTerms := v.NumTerms()
	ops := liveScript(vocab, objs)

	store, err := CreateShardedStore(dir, ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewIndex(copyObjs(objs), crashBounds, crashCell, store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := applyLiveOps(idx, ops, nil); err != nil {
		t.Fatal(err)
	}
	want, err := fingerprintLive(idx, nTerms)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: everything comes from the committed meta snapshot.
	store2, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	idx2, err := NewIndexOver(copyObjs(objs), crashBounds, crashCell, store2)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(idx2.Replayed()); n != 0 {
		t.Errorf("clean reopen replayed %d WAL records, want 0", n)
	}
	assertExactState(t, idx2, want, nTerms, "clean reopen")

	// Mutate after reopen, then close the store WITHOUT compacting: the
	// new updates live only in the WAL.
	id, err := idx2.Insert(geo.Point{X: 500, Y: 500},
		textindex.Doc{Terms: []textindex.TermID{0}, Weights: []float64{0.7}, TF: []int32{2}},
		[]string{vocab[0]})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx2.Delete(id - 1); err != nil {
		t.Fatal(err)
	}
	if err := idx2.Reweight(id, []float64{0.9}); err != nil {
		t.Fatal(err)
	}
	want2, err := fingerprintLive(idx2, nTerms)
	if err != nil {
		t.Fatal(err)
	}
	if err := store2.Close(); err != nil { // raw close: no compaction
		t.Fatal(err)
	}

	// Dirty reopen: the state must come back through WAL replay.
	store3, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	idx3, err := NewIndexOver(copyObjs(objs), crashBounds, crashCell, store3)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(idx3.Replayed()); n != 3 {
		t.Errorf("dirty reopen replayed %d WAL records, want 3", n)
	}
	assertExactState(t, idx3, want2, nTerms, "dirty reopen")
	if idx3.PendingUpdates() != 0 {
		// Replayed records are not "pending": they are either already
		// flushed or will be re-covered by the next compaction.
		t.Errorf("dirty reopen starts with %d pending updates", idx3.PendingUpdates())
	}
	if err := idx3.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// Third open is clean again (close compacted the replayed records).
	store4, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	idx4, err := NewIndexOver(copyObjs(objs), crashBounds, crashCell, store4)
	if err != nil {
		t.Fatal(err)
	}
	defer idx4.CloseStore()
	if n := len(idx4.Replayed()); n != 0 {
		t.Errorf("post-compaction reopen replayed %d WAL records, want 0", n)
	}
	assertExactState(t, idx4, want2, nTerms, "post-compaction reopen")
}

// TestLiveMemVsShardedParity replays the same update script against a
// MemStore-backed index (in-place posting edits) and a sharded
// disk-backed index (WAL + memtable): both must serve bit-identical
// state at every step.
func TestLiveMemVsShardedParity(t *testing.T) {
	v, vocab, objs := randomCorpus(t, crashBaseObjs, 99)
	nTerms := v.NumTerms()
	ops := liveScript(vocab, objs)

	memIdx, err := NewIndex(copyObjs(objs), crashBounds, crashCell, nil)
	if err != nil {
		t.Fatal(err)
	}
	store, err := CreateShardedStore(filepath.Join(t.TempDir(), "store"), ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	shIdx, err := NewIndex(copyObjs(objs), crashBounds, crashCell, store)
	if err != nil {
		t.Fatal(err)
	}
	defer shIdx.CloseStore()

	for i := range ops {
		if _, err := applyLiveOps(memIdx, ops[i:i+1], nil); err != nil {
			t.Fatalf("op %d on MemStore: %v", i, err)
		}
		if _, err := applyLiveOps(shIdx, ops[i:i+1], nil); err != nil {
			t.Fatalf("op %d on sharded store: %v", i, err)
		}
		if i%9 != 0 {
			continue
		}
		want, err := fingerprintLive(memIdx, nTerms)
		if err != nil {
			t.Fatal(err)
		}
		assertExactState(t, shIdx, want, nTerms, "after op "+string(rune('0'+i%10)))
	}
	want, err := fingerprintLive(memIdx, nTerms)
	if err != nil {
		t.Fatal(err)
	}
	assertExactState(t, shIdx, want, nTerms, "final")
}

// TestLiveValidation covers the typed rejections of the mutation API.
func TestLiveValidation(t *testing.T) {
	_, _, objs := randomCorpus(t, 20, 3)
	idx, err := NewIndex(copyObjs(objs), crashBounds, crashCell, nil)
	if err != nil {
		t.Fatal(err)
	}
	okDoc := textindex.Doc{Terms: []textindex.TermID{1}, Weights: []float64{0.5}, TF: []int32{1}}
	if _, err := idx.Insert(geo.Point{X: -5000, Y: 0}, okDoc, []string{"a"}); err == nil {
		t.Error("insert outside bounds accepted")
	}
	bad := textindex.Doc{Terms: []textindex.TermID{3, 2}, Weights: []float64{1, 1}, TF: []int32{1, 1}}
	if _, err := idx.Insert(geo.Point{X: 1, Y: 1}, bad, []string{"a", "b"}); err == nil {
		t.Error("descending terms accepted")
	}
	if _, err := idx.Insert(geo.Point{X: 1, Y: 1}, okDoc, nil); err == nil {
		t.Error("missing term strings accepted")
	}
	if err := idx.Delete(999); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("delete unknown id: %v, want ErrNoSuchObject", err)
	}
	if err := idx.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := idx.Delete(3); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("double delete: %v, want ErrNoSuchObject", err)
	}
	if err := idx.Reweight(3, []float64{1}); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("reweight deleted id: %v, want ErrNoSuchObject", err)
	}
	alive := ObjectID(5)
	if err := idx.Reweight(alive, make([]float64, len(objs[alive].Doc.Terms)+1)); err == nil {
		t.Error("reweight with wrong arity accepted")
	}

	// Single-file B+-tree stores have no update path.
	bs, err := NewBTreeStore(filepath.Join(t.TempDir(), "s.bt"))
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	bIdx, err := NewIndex(copyObjs(objs), crashBounds, crashCell, bs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bIdx.Insert(geo.Point{X: 1, Y: 1}, okDoc, []string{"a"}); !errors.Is(err, ErrUpdatesUnsupported) {
		t.Errorf("insert on BTreeStore: %v, want ErrUpdatesUnsupported", err)
	}
}

// TestLiveConcurrentSearchUpdate hammers SearchInto from reader
// goroutines while the main goroutine mutates — under -race this proves
// the Index/shard lock discipline; functionally every search must see a
// consistent index (no errors, scores finite).
func TestLiveConcurrentSearchUpdate(t *testing.T) {
	v, vocab, objs := randomCorpus(t, crashBaseObjs, 99)
	store, err := CreateShardedStore(filepath.Join(t.TempDir(), "store"), ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewIndex(copyObjs(objs), crashBounds, crashCell, store)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.CloseStore()
	idx.SetAutoCompact(16)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch SearchScratch
			q := v.PrepareQuery([]string{vocab[0], vocab[2]})
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := idx.SearchInto(q, crashBounds, &scratch); err != nil {
					t.Errorf("concurrent search: %v", err)
					return
				}
			}
		}()
	}
	ops := liveScript(vocab, objs)
	if _, err := applyLiveOps(idx, ops, nil); err != nil {
		t.Errorf("updates under concurrent search: %v", err)
	}
	close(stop)
	wg.Wait()
}
