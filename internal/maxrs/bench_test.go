package maxrs

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func BenchmarkSolve5000(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]Point, 5000)
	for i := range pts {
		pts[i] = Point{
			P:      geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000},
			Weight: rng.Float64(),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(pts, 500, 500); err != nil {
			b.Fatal(err)
		}
	}
}
