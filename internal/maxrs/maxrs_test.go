package maxrs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

// naive computes the exact MaxRS optimum by evaluating every candidate
// centre implied by pairs of influence-rectangle boundaries (the optimum
// of a closed-rectangle arrangement is attained at one of them).
func naive(points []Point, w, h float64) float64 {
	var xs, ys []float64
	for _, p := range points {
		if p.Weight <= 0 {
			continue
		}
		xs = append(xs, p.P.X-w/2, p.P.X+w/2)
		ys = append(ys, p.P.Y-h/2, p.P.Y+h/2)
	}
	// Containment uses a small tolerance: the candidate x = p.x − w/2 can
	// differ from the exact boundary by one ulp, which would spuriously
	// exclude the pinning point itself.
	const tol = 1e-9
	var best float64
	for _, x := range xs {
		for _, y := range ys {
			var sum float64
			for _, p := range points {
				if p.Weight <= 0 {
					continue
				}
				if math.Abs(p.P.X-x) <= w/2+tol && math.Abs(p.P.Y-y) <= h/2+tol {
					sum += p.Weight
				}
			}
			if sum > best {
				best = sum
			}
		}
	}
	return best
}

// coveredWeight sums the positive weights inside the w×h rectangle at c,
// with one-ulp tolerance: optimal centres sit exactly on influence-
// rectangle boundaries, where exact float containment can flip.
func coveredWeight(points []Point, c geo.Point, w, h float64) float64 {
	const tol = 1e-9
	var sum float64
	for _, p := range points {
		if p.Weight <= 0 {
			continue
		}
		if math.Abs(p.P.X-c.X) <= w/2+tol && math.Abs(p.P.Y-c.Y) <= h/2+tol {
			sum += p.Weight
		}
	}
	return sum
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(nil, 0, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Solve(nil, 1, -1); err == nil {
		t.Error("negative height accepted")
	}
	if _, err := Solve(nil, math.NaN(), 1); err == nil {
		t.Error("NaN width accepted")
	}
}

func TestSolveEmpty(t *testing.T) {
	r, err := Solve(nil, 1, 1)
	if err != nil || r.Weight != 0 {
		t.Errorf("empty input: %+v, %v", r, err)
	}
	// Only non-positive weights: same as empty.
	r, err = Solve([]Point{{P: geo.Point{}, Weight: 0}, {P: geo.Point{X: 1}, Weight: -3}}, 1, 1)
	if err != nil || r.Weight != 0 {
		t.Errorf("non-positive weights: %+v, %v", r, err)
	}
}

func TestSolveSinglePoint(t *testing.T) {
	pts := []Point{{P: geo.Point{X: 5, Y: 7}, Weight: 2.5}}
	r, err := Solve(pts, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Weight != 2.5 {
		t.Errorf("weight = %v, want 2.5", r.Weight)
	}
	if got := coveredWeight(pts, r.Center, 2, 2); got != 2.5 {
		t.Errorf("returned centre covers %v, want 2.5", got)
	}
}

func TestSolveTwoClusters(t *testing.T) {
	// Cluster A: 3 points weight 1 each within a 1x1 area; cluster B:
	// 1 point weight 2, far away. 2x2 rectangle must take cluster A.
	pts := []Point{
		{P: geo.Point{X: 0, Y: 0}, Weight: 1},
		{P: geo.Point{X: 0.5, Y: 0.5}, Weight: 1},
		{P: geo.Point{X: 0.9, Y: 0.1}, Weight: 1},
		{P: geo.Point{X: 100, Y: 100}, Weight: 2},
	}
	r, err := Solve(pts, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Weight != 3 {
		t.Errorf("weight = %v, want 3", r.Weight)
	}
}

func TestSolveMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				P:      geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20},
				Weight: rng.Float64() * 3,
			}
		}
		w := 0.5 + rng.Float64()*5
		h := 0.5 + rng.Float64()*5
		want := naive(pts, w, h)
		got, err := Solve(pts, w, h)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Weight-want) > 1e-6 {
			t.Fatalf("trial %d: Solve = %v, naive = %v", trial, got.Weight, want)
		}
		// The returned centre must actually cover the reported weight.
		if cov := coveredWeight(pts, got.Center, w, h); math.Abs(cov-got.Weight) > 1e-9 {
			t.Fatalf("trial %d: centre %v covers %v, reported %v", trial, got.Center, cov, got.Weight)
		}
	}
}

func TestSolveCenterCoversProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				P:      geo.Point{X: rng.NormFloat64() * 10, Y: rng.NormFloat64() * 10},
				Weight: rng.Float64(),
			}
		}
		res, err := Solve(pts, 3, 2)
		if err != nil {
			return false
		}
		return math.Abs(coveredWeight(pts, res.Center, 3, 2)-res.Weight) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCovered(t *testing.T) {
	pts := []Point{
		{P: geo.Point{X: 0, Y: 0}, Weight: 1},
		{P: geo.Point{X: 1, Y: 1}, Weight: 1}, // exactly on the corner
		{P: geo.Point{X: 2, Y: 2}, Weight: 1},
	}
	got := Covered(pts, geo.Point{}, 2, 2)
	if len(got) != 2 {
		t.Errorf("Covered = %d points, want 2 (boundary inclusive)", len(got))
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	pts := []Point{
		{P: geo.Point{X: 1, Y: 1}, Weight: 1},
		{P: geo.Point{X: 1, Y: 1}, Weight: 2},
		{P: geo.Point{X: 1, Y: 1}, Weight: 3},
	}
	r, err := Solve(pts, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Weight != 6 {
		t.Errorf("weight = %v, want 6", r.Weight)
	}
}
