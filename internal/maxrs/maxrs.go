// Package maxrs implements the maximizing range sum (MaxRS) baseline the
// paper compares against in §7.5 (Choi et al., PVLDB'12; Tao et al.,
// PVLDB'13): given weighted points and a fixed w×h rectangle, find the
// rectangle position maximizing the total weight of covered points.
//
// The classic reduction is used: a rectangle centred at c covers point p
// iff c lies in the w×h rectangle centred at p, so the answer is the point
// of maximum total cover weight over the arrangement of those influence
// rectangles — found with a left-to-right sweep line over their vertical
// edges and a max segment tree with range addition over the compressed
// y-intervals.
package maxrs

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/container"
	"repro/internal/geo"
)

// Point is a weighted point.
type Point struct {
	P      geo.Point
	Weight float64
}

// Result is the best rectangle placement found.
type Result struct {
	Center geo.Point // centre of the optimal w×h rectangle
	Weight float64   // total weight covered
}

// Solve returns the w×h axis-aligned rectangle position covering the
// maximum total point weight. Points with non-positive weight are ignored
// (they can never help a maximum). An error is returned for non-positive
// dimensions; an empty input yields a zero Result.
func Solve(points []Point, w, h float64) (Result, error) {
	if w <= 0 || h <= 0 || math.IsNaN(w) || math.IsNaN(h) {
		return Result{}, fmt.Errorf("maxrs: rectangle dimensions must be positive, got %v x %v", w, h)
	}
	type rect struct {
		x0, x1, y0, y1 float64
		wgt            float64
	}
	var rects []rect
	for _, p := range points {
		if p.Weight <= 0 || math.IsNaN(p.Weight) {
			continue
		}
		rects = append(rects, rect{
			x0: p.P.X - w/2, x1: p.P.X + w/2,
			y0: p.P.Y - h/2, y1: p.P.Y + h/2,
			wgt: p.Weight,
		})
	}
	if len(rects) == 0 {
		return Result{}, nil
	}

	// Compress the y-interval endpoints into elementary slabs
	// [ys[i], ys[i+1]); slab i is leaf i of the segment tree.
	ys := make([]float64, 0, 2*len(rects))
	for _, r := range rects {
		ys = append(ys, r.y0, r.y1)
	}
	sort.Float64s(ys)
	ys = dedup(ys)
	slabOf := func(y float64) int {
		// Index of the slab starting at y.
		return sort.SearchFloat64s(ys, y)
	}

	type ev struct {
		x    float64
		open bool
		yLo  int // first slab index covered
		yHi  int // last slab index covered (inclusive)
		wgt  float64
	}
	events := make([]ev, 0, 2*len(rects))
	for _, r := range rects {
		lo := slabOf(r.y0)
		hi := slabOf(r.y1) - 1 // cover slabs [y0, y1): last slab ends at y1
		if hi < lo {
			hi = lo
		}
		events = append(events, ev{x: r.x0, open: true, yLo: lo, yHi: hi, wgt: r.wgt})
		events = append(events, ev{x: r.x1, open: false, yLo: lo, yHi: hi, wgt: r.wgt})
	}
	// Sweep distinct x positions: apply all opens at x, evaluate (so
	// rectangles touching at the boundary count, the closed-rectangle
	// convention), then apply all closes at x.
	sort.Slice(events, func(i, j int) bool {
		if events[i].x != events[j].x {
			return events[i].x < events[j].x
		}
		return events[i].open && !events[j].open
	})

	st := container.NewMaxAddSegTree(len(ys))
	var best Result
	for i := 0; i < len(events); {
		x := events[i].x
		j := i
		for ; j < len(events) && events[j].x == x && events[j].open; j++ {
			st.Add(events[j].yLo, events[j].yHi, events[j].wgt)
		}
		if m := st.Max(); m > best.Weight {
			slab := st.MaxIndex()
			yCenter := ys[slab]
			if slab+1 < len(ys) {
				yCenter = (ys[slab] + ys[slab+1]) / 2
			}
			best = Result{Weight: m, Center: geo.Point{X: x, Y: yCenter}}
		}
		for ; j < len(events) && events[j].x == x; j++ {
			st.Add(events[j].yLo, events[j].yHi, -events[j].wgt)
		}
		i = j
	}
	return best, nil
}

// Covered returns the points covered by the w×h rectangle centred at c.
func Covered(points []Point, c geo.Point, w, h float64) []Point {
	r := geo.Rect{MinX: c.X - w/2, MinY: c.Y - h/2, MaxX: c.X + w/2, MaxY: c.Y + h/2}
	var out []Point
	for _, p := range points {
		if r.Contains(p.P) {
			out = append(out, p)
		}
	}
	return out
}

func dedup(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
