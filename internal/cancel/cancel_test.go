package cancel

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilAndBackgroundAreFree(t *testing.T) {
	var nilCheck *Check
	if nilCheck.Tick() || nilCheck.Now() || nilCheck.Cancelled() || nilCheck.Err() != nil {
		t.Fatal("nil Check must never report cancellation")
	}
	var c Check
	c.Reset(context.Background())
	for i := 0; i < 4*checkInterval; i++ {
		if c.Tick() {
			t.Fatal("background context reported cancelled")
		}
	}
	if c.Now() || c.Cancelled() || c.Err() != nil {
		t.Fatal("background context reported cancelled")
	}
}

func TestTickObservesWithinInterval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var c Check
	c.Reset(ctx)
	if c.Tick() {
		t.Fatal("cancelled before cancel()")
	}
	cancel()
	hit := -1
	for i := 0; i < 2*checkInterval; i++ {
		if c.Tick() {
			hit = i
			break
		}
	}
	if hit < 0 || hit >= checkInterval {
		t.Fatalf("cancellation observed after %d ticks, want < %d", hit, checkInterval)
	}
	// Sticky: every later checkpoint fires immediately.
	if !c.Tick() || !c.Now() || !c.Cancelled() {
		t.Fatal("cancellation not sticky")
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", c.Err())
	}
}

func TestNowProbesImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var c Check
	c.Reset(ctx)
	if !c.Now() {
		t.Fatal("Now missed an already-cancelled context")
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", c.Err())
	}
}

func TestResetClearsStickyState(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var c Check
	c.Reset(ctx)
	if !c.Now() {
		t.Fatal("setup: expected cancelled")
	}
	c.Reset(context.Background())
	if c.Now() || c.Cancelled() || c.Err() != nil {
		t.Fatal("Reset kept sticky cancellation")
	}
}

func TestDeadlineErrSurfaced(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var c Check
	c.Reset(ctx)
	<-ctx.Done()
	if !c.Now() {
		t.Fatal("expired deadline not observed")
	}
	if !errors.Is(c.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", c.Err())
	}
}
