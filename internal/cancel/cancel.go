// Package cancel provides the amortized cancellation checkpoint the
// solver hot loops share. A Check wraps a context.Context so that inner
// loops can poll for cancellation at a bounded, nearly-free cost: Tick is
// a plain counter increment that probes the context's Done channel only
// once every checkInterval calls, so a cancelled context is observed
// within a bounded number of loop iterations without a per-iteration
// atomic or channel operation.
//
// Checks are sticky: once a probe observes cancellation, every later Tick
// and Now returns true immediately and Err returns the context's error,
// so nested loops unwind quickly after the first hit. A Check built from
// a context that can never be cancelled (Done() == nil, e.g.
// context.Background()) makes every checkpoint a nil-channel comparison.
//
// A nil *Check never reports cancellation, so optional call paths thread
// nil instead of building a dummy context. A Check serves one goroutine;
// Reset it at the start of each unit of work.
package cancel

import "context"

// checkInterval is how many Tick calls elapse between channel probes. A
// power of two keeps the modulus a mask; 256 bounds the post-cancel delay
// to a few hundred cheap iterations while keeping steady-state cost to an
// increment and a branch.
const checkInterval = 256

// Check is an amortized cancellation checkpoint over one context.
type Check struct {
	done  <-chan struct{}
	ctx   context.Context
	n     uint32
	fired bool
}

// Reset points the check at ctx and clears the sticky state. A ctx whose
// Done returns nil disables every checkpoint (the zero-cost path).
func (c *Check) Reset(ctx context.Context) {
	c.ctx = ctx
	c.done = ctx.Done()
	c.n = 0
	c.fired = false
}

// Tick is the hot-loop checkpoint: it reports whether the context has
// been observed cancelled, probing the Done channel once every
// checkInterval calls. Safe on a nil receiver (always false).
func (c *Check) Tick() bool {
	if c == nil || c.done == nil {
		return false
	}
	if c.fired {
		return true
	}
	c.n++
	if c.n%checkInterval != 0 {
		return false
	}
	return c.probe()
}

// Now probes the context immediately — for coarse per-phase checkpoints
// (a binary-search step, a solve entry) where the amortization of Tick
// would delay the observation. Safe on a nil receiver (always false).
func (c *Check) Now() bool {
	if c == nil || c.done == nil {
		return false
	}
	if c.fired {
		return true
	}
	return c.probe()
}

func (c *Check) probe() bool {
	select {
	case <-c.done:
		c.fired = true
		return true
	default:
		return false
	}
}

// Release drops the context reference once the unit of work is done, so
// a completed solve does not pin its caller's context tree (and whatever
// hangs off it) until the owner's next Reset. The check reports no
// cancellation afterwards. Safe on a nil receiver.
func (c *Check) Release() {
	if c == nil {
		return
	}
	c.ctx = nil
	c.done = nil
	c.fired = false
}

// Cancelled reports whether any checkpoint has observed cancellation
// since the last Reset, without probing. Safe on a nil receiver.
func (c *Check) Cancelled() bool { return c != nil && c.fired }

// Err returns the context's error once a checkpoint has observed
// cancellation, nil otherwise. Safe on a nil receiver.
func (c *Check) Err() error {
	if c == nil || !c.fired {
		return nil
	}
	return c.ctx.Err()
}
