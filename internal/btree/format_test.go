package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/iofault"
)

// writeV1File hand-crafts a legacy (v1) tree file: a single header page and
// one leaf holding the given inline entries. This is what Create produced
// before the checksummed v2 format.
func writeV1File(t *testing.T, path string, entries map[uint64][]byte) {
	t.Helper()
	var keys []uint64
	for k := range entries {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ { // insertion sort; tiny inputs
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	img := make([]byte, 2*PageSize)
	binary.LittleEndian.PutUint64(img[0:], magicV1)
	binary.LittleEndian.PutUint64(img[8:], 1)  // root
	binary.LittleEndian.PutUint64(img[16:], 2) // numPages
	binary.LittleEndian.PutUint64(img[24:], 0) // freeHead
	binary.LittleEndian.PutUint64(img[32:], uint64(len(entries)))
	leaf := img[PageSize:]
	leaf[0] = typeLeaf
	binary.LittleEndian.PutUint16(leaf[1:], uint16(len(keys)))
	off := pageHeaderLen
	for _, k := range keys {
		binary.LittleEndian.PutUint64(leaf[off:], k)
		off += 8
		binary.LittleEndian.PutUint32(leaf[off:], uint32(len(entries[k])))
		off += 4
		off += copy(leaf[off:], entries[k])
	}
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestOpenReadsV1Files(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.bt")
	writeV1File(t, path, map[uint64][]byte{7: []byte("seven"), 9: []byte("nine")})
	tr, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version() != 1 {
		t.Fatalf("Version = %d, want 1", tr.Version())
	}
	got, err := tr.Get(7)
	if err != nil || string(got) != "seven" {
		t.Fatalf("Get(7) = %q, %v", got, err)
	}
	// v1 files stay writable in their original format.
	if err := tr.Put(8, []byte("eight")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Verify(); err != nil {
		t.Fatalf("Verify on v1: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Version() != 1 {
		t.Fatalf("reopened Version = %d, want 1", tr2.Version())
	}
	for k, want := range map[uint64]string{7: "seven", 8: "eight", 9: "nine"} {
		got, err := tr2.Get(k)
		if err != nil || string(got) != want {
			t.Fatalf("Get(%d) = %q, %v, want %q", k, got, err, want)
		}
	}
}

func TestCreateWritesV2(t *testing.T) {
	tr, path := newTempTree(t, Options{})
	if tr.Version() != 2 {
		t.Fatalf("Version = %d, want 2", tr.Version())
	}
	if err := tr.Put(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	head, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ValidMagic(head) {
		t.Error("ValidMagic rejects a v2 file")
	}
	if binary.LittleEndian.Uint64(head) != magicV2 {
		t.Errorf("file magic = %#x, want v2", binary.LittleEndian.Uint64(head))
	}
}

func TestHeaderSlotFallback(t *testing.T) {
	mem := iofault.NewMemFile()
	tr, err := CreateFile(mem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 200; k++ {
		if err := tr.Put(k, []byte{byte(k), byte(k >> 3)}); err != nil {
			t.Fatal(err)
		}
	}
	// Two commits of the same logical state: both slots describe it, with
	// different sequence numbers.
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	newest := tr.seq % 2
	img := mem.Snapshot()

	// Tear the newest slot mid-page: Open must fall back to the older
	// valid slot and recover the full tree.
	torn := append([]byte(nil), img...)
	for i := 0; i < 512; i++ {
		torn[int(newest)*PageSize+1024+i] ^= 0xA5
	}
	tr2, err := OpenFile(iofault.NewMemFileFrom(torn), Options{})
	if err != nil {
		t.Fatalf("open with one torn header slot: %v", err)
	}
	if tr2.seq >= tr.seq {
		t.Fatalf("recovered seq %d, want the older slot (< %d)", tr2.seq, tr.seq)
	}
	if tr2.Count() != 200 {
		t.Fatalf("recovered Count = %d, want 200", tr2.Count())
	}
	if _, err := tr2.Verify(); err != nil {
		t.Fatalf("Verify after fallback: %v", err)
	}

	// Both slots torn: a typed corruption error, not a panic or garbage.
	torn2 := append([]byte(nil), img...)
	for i := 0; i < 512; i++ {
		torn2[1024+i] ^= 0xA5
		torn2[PageSize+1024+i] ^= 0xA5
	}
	if _, err := OpenFile(iofault.NewMemFileFrom(torn2), Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with both slots torn: %v, want ErrCorrupt", err)
	}
}

func TestVerifyDetectsBitRot(t *testing.T) {
	mem := iofault.NewMemFile()
	tr, err := CreateFile(mem, Options{CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xCD}, 3*PageSize) // overflow chains too
	for k := uint64(0); k < 500; k++ {
		v := []byte{byte(k)}
		if k%50 == 0 {
			v = big
		}
		if err := tr.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	if vs, err := tr.Verify(); err != nil {
		t.Fatalf("Verify on clean tree: %v", err)
	} else if vs.Keys != 500 {
		t.Fatalf("Verify counted %d keys, want 500", vs.Keys)
	}
	img := mem.Snapshot()
	// Flip one bit in every data page in turn; Verify must catch each one.
	caught, total := 0, 0
	for page := 2; int64(page+1)*PageSize <= int64(len(img)); page++ {
		total++
		rotted := append([]byte(nil), img...)
		rotted[int64(page)*PageSize+2000] ^= 0x01
		tr2, err := OpenFile(iofault.NewMemFileFrom(rotted), Options{CachePages: 8})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("page %d: open failed with untyped error: %v", page, err)
			}
			caught++
			continue
		}
		if _, err := tr2.Verify(); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("page %d: Verify failed with untyped error: %v", page, err)
			}
			caught++
		}
	}
	if caught != total {
		t.Errorf("bit rot caught on %d/%d pages; every page must be protected", caught, total)
	}
}

func TestNoSyncSkipsFsync(t *testing.T) {
	mem := iofault.NewMemFile()
	inj := iofault.Wrap(mem, iofault.Plan{})
	tr, err := CreateFile(inj, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if err := tr.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, syncs := inj.Counts(); syncs != 0 {
		t.Errorf("NoSync tree issued %d fsyncs, want 0", syncs)
	}

	mem2 := iofault.NewMemFile()
	inj2 := iofault.Wrap(mem2, iofault.Plan{})
	tr2, err := CreateFile(inj2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, syncs := inj2.Counts(); syncs == 0 {
		t.Error("default options issued no fsyncs; durability discipline missing")
	}
}

func TestInjectedReadFailureSurfaces(t *testing.T) {
	mem := iofault.NewMemFile()
	tr, err := CreateFile(mem, Options{CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 2000; k++ {
		if err := tr.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	// Reopen over an injector failing one mid-stream read: some Get must
	// surface the injected error rather than fabricate an answer.
	inj := iofault.Wrap(iofault.NewMemFileFrom(mem.Snapshot()), iofault.Plan{FailRead: 10})
	tr2, err := OpenFile(inj, Options{CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	var sawInjected bool
	for k := uint64(0); k < 2000; k++ {
		if _, err := tr2.Get(k); err != nil {
			if errors.Is(err, iofault.ErrInjected) {
				sawInjected = true
				break
			}
			t.Fatalf("Get(%d): unexpected error %v", k, err)
		}
	}
	if !sawInjected {
		t.Error("injected read failure never surfaced through Get")
	}
}
