//go:build unix

package btree

import (
	"testing"
)

// The exclusive-open contract only holds where flock exists (see
// lock_unix.go); on other platforms locking is a documented no-op.
func TestOpenIsExclusive(t *testing.T) {
	tr, path := newTempTree(t, Options{})
	if err := tr.Put(7, []byte("seven")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	// A second Open while the first Tree is live must fail — two page
	// caches over one file would silently lose writes.
	if tr2, err := Open(path, Options{}); err == nil {
		tr2.Close()
		t.Fatal("second Open of a live tree succeeded")
	}
	// Create on a live path must fail too, and must NOT truncate the data.
	if tr2, err := Create(path, Options{}); err == nil {
		tr2.Close()
		t.Fatal("Create over a live tree succeeded")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr3, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	defer tr3.Close()
	if v, err := tr3.Get(7); err != nil || string(v) != "seven" {
		t.Fatalf("data lost across the failed Create: %q, %v", v, err)
	}
}
