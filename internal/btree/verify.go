package btree

import (
	"encoding/binary"
	"fmt"
)

// VerifyStats summarizes what a Verify pass examined.
type VerifyStats struct {
	// Pages is the number of pages read and checked (headers excluded).
	Pages int
	// Leaves, Internals and Overflows break Pages down by type.
	Leaves, Internals, Overflows int
	// FreePages is the length of the free list.
	FreePages int
	// Leaked is the number of pages neither reachable from the root nor on
	// the free list. Crash recovery can legitimately leak pages (a
	// quarantined free page whose graduation was lost), so this is a
	// statistic, not an error.
	Leaked int
	// Keys is the number of keys found in the leaves.
	Keys uint64
}

// String formats the stats as one readable line.
func (vs VerifyStats) String() string {
	return fmt.Sprintf("pages=%d (leaf=%d internal=%d overflow=%d) free=%d leaked=%d keys=%d",
		vs.Pages, vs.Leaves, vs.Internals, vs.Overflows, vs.FreePages, vs.Leaked, vs.Keys)
}

// Verify checks the on-disk image of the tree: it flushes any dirty state
// (via Sync), then walks every page reachable from the root and the whole
// free list, verifying checksums (v2), page types, key ordering, separator
// bounds, overflow chain lengths, the absence of cross-references (no page
// reachable twice), and that the leaf key count matches the header. All
// failures wrap ErrCorrupt. Verify bypasses the page cache so it checks
// what a fresh Open would read.
func (t *Tree) Verify() (VerifyStats, error) {
	var vs VerifyStats
	if err := t.Sync(); err != nil {
		return vs, err
	}
	if t.root < t.firstData() || t.root >= t.numPages {
		return vs, fmt.Errorf("%w: root page %d out of range", ErrCorrupt, t.root)
	}
	visited := make([]bool, t.numPages)
	if err := t.verifySubtree(t.root, 0, ^uint64(0), visited, &vs); err != nil {
		return vs, err
	}
	if vs.Keys != t.count {
		return vs, fmt.Errorf("%w: header counts %d keys, leaves hold %d", ErrCorrupt, t.count, vs.Keys)
	}
	if err := t.verifyFreeList(visited, &vs); err != nil {
		return vs, err
	}
	for id := t.firstData(); id < t.numPages; id++ {
		if !visited[id] {
			vs.Leaked++
		}
	}
	return vs, nil
}

// verifyVisit range-checks id, detects double references, and reads the
// page raw (checksum included) into buf.
func (t *Tree) verifyVisit(id uint64, visited []bool, vs *VerifyStats, buf []byte) error {
	if id < t.firstData() || id >= t.numPages {
		return fmt.Errorf("%w: page %d out of range [%d,%d)", ErrCorrupt, id, t.firstData(), t.numPages)
	}
	if visited[id] {
		return fmt.Errorf("%w: page %d reachable twice", ErrCorrupt, id)
	}
	visited[id] = true
	if err := t.readPage(id, buf); err != nil {
		return err
	}
	vs.Pages++
	return nil
}

// verifySubtree checks the subtree rooted at id; every key in it must lie
// in [lo, hi] (inclusive bounds — uint64 has no sentinel beyond its max).
func (t *Tree) verifySubtree(id, lo, hi uint64, visited []bool, vs *VerifyStats) error {
	var buf [PageSize]byte
	if err := t.verifyVisit(id, visited, vs, buf[:]); err != nil {
		return err
	}
	n, err := decodeNode(id, buf[:], t.pageCap())
	if err != nil {
		return err
	}
	if n.leaf {
		vs.Leaves++
		for i := range n.entries {
			e := &n.entries[i]
			if i > 0 && n.entries[i-1].key >= e.key {
				return fmt.Errorf("%w: leaf %d keys out of order at index %d", ErrCorrupt, id, i)
			}
			if e.key < lo || e.key > hi {
				return fmt.Errorf("%w: leaf %d key %d outside separator bounds [%d,%d]", ErrCorrupt, id, e.key, lo, hi)
			}
			if e.ovfPage != 0 {
				if err := t.verifyChain(e.ovfPage, e.ovfLen, visited, vs); err != nil {
					return fmt.Errorf("leaf %d key %d: %w", id, e.key, err)
				}
			}
		}
		vs.Keys += uint64(len(n.entries))
		return nil
	}
	vs.Internals++
	for i, k := range n.keys {
		if i > 0 && n.keys[i-1] >= k {
			return fmt.Errorf("%w: internal %d separators out of order at index %d", ErrCorrupt, id, i)
		}
		if k < lo || k > hi {
			return fmt.Errorf("%w: internal %d separator %d outside bounds [%d,%d]", ErrCorrupt, id, k, lo, hi)
		}
	}
	for i, child := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.keys[i-1]
		}
		if i < len(n.keys) {
			if n.keys[i] == 0 {
				return fmt.Errorf("%w: internal %d separator 0 leaves child %d empty-ranged", ErrCorrupt, id, i)
			}
			chi = n.keys[i] - 1 // children[i] holds keys < keys[i]
		}
		if err := t.verifySubtree(child, clo, chi, visited, vs); err != nil {
			return err
		}
	}
	return nil
}

// verifyChain checks one overflow chain: types, per-page used sizes, and
// that the chained lengths add up to the advertised total.
func (t *Tree) verifyChain(first uint64, total uint32, visited []bool, vs *VerifyStats) error {
	var buf [PageSize]byte
	var got uint64
	for first != 0 {
		if err := t.verifyVisit(first, visited, vs, buf[:]); err != nil {
			return err
		}
		if buf[0] != typeOverflow {
			return fmt.Errorf("%w: page %d in overflow chain has type %d", ErrCorrupt, first, buf[0])
		}
		vs.Overflows++
		used := binary.LittleEndian.Uint32(buf[9:])
		if used > uint32(t.ovfCap()) {
			return fmt.Errorf("%w: overflow page %d claims %d bytes", ErrCorrupt, first, used)
		}
		got += uint64(used)
		first = binary.LittleEndian.Uint64(buf[1:])
	}
	if got != uint64(total) {
		return fmt.Errorf("%w: overflow chain holds %d bytes, expected %d", ErrCorrupt, got, total)
	}
	return nil
}

// verifyFreeList walks the free list; every member must be a valid
// overflow-typed page not reachable from the root.
func (t *Tree) verifyFreeList(visited []bool, vs *VerifyStats) error {
	var buf [PageSize]byte
	for id := t.freeHead; id != 0; {
		if err := t.verifyVisit(id, visited, vs, buf[:]); err != nil {
			return fmt.Errorf("free list: %w", err)
		}
		if buf[0] != typeOverflow {
			return fmt.Errorf("%w: free page %d has type %d", ErrCorrupt, id, buf[0])
		}
		vs.FreePages++
		id = binary.LittleEndian.Uint64(buf[1:])
	}
	return nil
}
