// Package btree implements the disk-based B+-tree of §3 of the paper, used
// to index the per-grid-cell inverted lists: "The inverted lists may not
// fit in memory, and we use a disk-based B+-tree to index them for each
// grid cell."
//
// Keys are uint64 (the grid package composes cellID<<32 | termID) and
// values are opaque byte slices (encoded posting lists). The tree is a
// classic page-based B+-tree: fixed-size pages, size-based node splits,
// values larger than an inline threshold spill to overflow page chains,
// and an in-memory page cache with write-back on eviction/sync. A freed
// overflow chain is recycled through a free list threaded through the
// header, so repeated updates do not grow the file unboundedly.
//
// # Durability (format v2)
//
// Files written by Create use format v2 ("LCMSRBK2"): every page carries a
// CRC32-C trailer in its last 4 bytes, and the header is double-slot —
// pages 0 and 1 alternate as commit targets (slot = seq mod 2), each
// stamped with a monotonically increasing sequence number and a checksum,
// and Open picks the newest valid slot. A crash that tears the in-flight
// header therefore falls back to the previous committed header instead of
// losing the tree. Sync orders its writes for crash safety: dirty pages,
// fsync, header slot, fsync — so a committed header never points at pages
// the disk has not durably absorbed. Freed pages are quarantined until the
// commit that stops referencing them is durable, so a crash can never
// resurface a recycled page under the older header. Open still reads v1
// files ("LCMSRBK1": single header page, no checksums) and serves them in
// their original format. Options.NoSync skips every fsync for bulk loads
// and benchmarks, trading crash safety for speed.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/iofault"
)

const (
	// PageSize is the on-disk page size in bytes.
	PageSize = 4096

	magicV1       = 0x4C434D5352424B31 // "LCMSRBK1": single header, no checksums
	magicV2       = 0x4C434D5352424B32 // "LCMSRBK2": CRC32-C trailers, double-slot header
	trailerLen    = 4                  // CRC32-C over buf[:PageSize-trailerLen], v2 pages only
	pageHeaderLen = 3                  // 1 byte type + 2 bytes nkeys
	maxInline     = 1024               // values longer than this go to overflow pages

	typeLeaf     = 1
	typeInternal = 2
	typeOverflow = 3
)

// castagnoli is the CRC32-C polynomial table shared by every checksum in
// the file format (page trailers, header slots, and the store manifest).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC32-C of data with the same polynomial the page
// trailers use; the grid store reuses it for its manifest line.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// ErrNotFound is returned by Get when the key is absent.
var ErrNotFound = errors.New("btree: key not found")

// ErrCorrupt wraps every corruption diagnosis — bad magic, checksum
// mismatch, malformed page, broken chain or link — so callers can
// recognize damage with errors.Is and distinguish it from transient I/O
// failures.
var ErrCorrupt = errors.New("btree: corrupt page")

// ValidMagic reports whether buf starts with a tree file magic (either
// format version) — callers use it to recognize a tree file without
// opening (and locking) it.
func ValidMagic(buf []byte) bool {
	if len(buf) < 8 {
		return false
	}
	m := binary.LittleEndian.Uint64(buf)
	return m == magicV1 || m == magicV2
}

type leafEntry struct {
	key     uint64
	val     []byte // inline value; nil when stored in an overflow chain
	ovfPage uint64 // first overflow page, 0 when inline
	ovfLen  uint32 // total overflow value length
}

type node struct {
	id    uint64
	leaf  bool
	dirty bool
	// Leaf payload.
	entries []leafEntry
	// Internal payload: len(children) == len(keys)+1; subtree children[i]
	// holds keys < keys[i]; children[len] holds keys >= keys[len-1].
	keys     []uint64
	children []uint64
}

// Tree is a disk-backed B+-tree. It is not safe for concurrent use; when
// opened by path the file is held under an exclusive advisory lock while
// the Tree is open, so a second Create/Open of the same path (from this or
// another process) fails instead of corrupting the shared page cache.
type Tree struct {
	file     iofault.File
	osf      *os.File // non-nil only for path-opened trees (advisory lock holder)
	version  int      // 1 = legacy, 2 = checksummed double-header
	noSync   bool
	seq      uint64 // v2 header commit sequence; slot = seq mod 2
	root     uint64
	numPages uint64
	freeHead uint64 // head of the allocatable freed-page list (0 = none)
	count    uint64 // number of stored keys

	// pendingFree holds pages freed since the last durable header commit.
	// They must not be reallocated before that commit: the previous header
	// still references them, and recycling one early would let a crash
	// recover an older header whose pages now hold foreign (but
	// internally valid) content — a silent wrong answer no checksum can
	// catch. Sync graduates them onto the free list after the commit
	// fsync.
	pendingFree []uint64

	cache    map[uint64]*node
	cacheCap int
	clock    []uint64 // FIFO eviction order
	stats    CacheStats
}

// CacheStats counts page-cache traffic on one Tree since it was opened.
type CacheStats struct {
	// Hits is the number of loadNode calls served from the cache.
	Hits uint64
	// Misses is the number of loadNode calls that read a page from disk.
	Misses uint64
	// Evictions is the number of pages dropped to stay under the cap.
	Evictions uint64
	// Resident is the number of decoded pages currently cached.
	Resident int
}

// Add accumulates other into s (for aggregating per-shard trees).
func (s *CacheStats) Add(other CacheStats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Resident += other.Resident
}

// CacheStats returns the tree's page-cache counters.
func (t *Tree) CacheStats() CacheStats {
	st := t.stats
	st.Resident = len(t.cache)
	return st
}

// Options configures tree creation.
type Options struct {
	// CachePages caps the number of decoded pages kept in memory.
	// Zero means a default of 256 pages (1 MiB).
	CachePages int
	// NoSync skips every fsync (page flush, header commit, directory
	// entry). Bulk loads and benchmarks get back the pre-durability write
	// speed; a crash may then lose or corrupt the tree, exactly as before
	// format v2.
	NoSync bool
}

// Create creates a new empty v2 tree at path, truncating any existing
// file. The file is locked first and truncated only after the lock is
// acquired, so Create on a path another Tree holds open fails without
// destroying that tree's data. Unless opts.NoSync is set the parent
// directory is fsynced so the new file's directory entry is durable.
func Create(path string, opts Options) (*Tree, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("btree: create: %w", err)
	}
	if err := lockFile(f); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.Truncate(0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("btree: create: %w", err)
	}
	t, err := createOver(f, f, opts)
	if err != nil {
		unlockFile(f)
		_ = f.Close()
		return nil, err
	}
	if !opts.NoSync {
		if err := syncDir(filepath.Dir(path)); err != nil {
			_ = t.Close()
			return nil, err
		}
	}
	return t, nil
}

// CreateFile initializes a new empty v2 tree over f — typically an
// iofault.MemFile or Injector in crash tests. The caller owns f's
// lifecycle apart from the final Close, and no advisory lock is taken.
func CreateFile(f iofault.File, opts Options) (*Tree, error) {
	return createOver(f, nil, opts)
}

func createOver(f iofault.File, osf *os.File, opts Options) (*Tree, error) {
	t := newTree(f, osf, opts)
	t.version = 2
	t.numPages = 3 // two header slots + root
	t.root = 2
	t.cacheInsert(&node{id: 2, leaf: true, dirty: true})
	// Seed slot 0 with seq 0, then commit seq 1 into slot 1: a freshly
	// created tree has two valid header slots from the start.
	if err := t.writeHeader(); err != nil {
		return nil, err
	}
	if err := t.Sync(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open opens an existing tree created by Create (either format version).
// It fails when another Tree (in this or any other process) already holds
// the file open. On a v2 file with one torn or corrupt header slot, Open
// recovers from the other (older but valid) slot.
func Open(path string, opts Options) (*Tree, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("btree: open: %w", err)
	}
	if err := lockFile(f); err != nil {
		_ = f.Close()
		return nil, err
	}
	t := newTree(f, f, opts)
	if err := t.readHeader(); err != nil {
		unlockFile(f)
		_ = f.Close()
		return nil, err
	}
	return t, nil
}

// OpenFile opens an existing tree over f — typically a frozen post-crash
// byte image in tests. No advisory lock is taken; on error f is left open
// for the caller.
func OpenFile(f iofault.File, opts Options) (*Tree, error) {
	t := newTree(f, nil, opts)
	if err := t.readHeader(); err != nil {
		return nil, err
	}
	return t, nil
}

func newTree(f iofault.File, osf *os.File, opts Options) *Tree {
	cap := opts.CachePages
	if cap <= 0 {
		cap = 256
	}
	if cap < 8 {
		cap = 8
	}
	return &Tree{
		file:     f,
		osf:      osf,
		noSync:   opts.NoSync,
		cache:    make(map[uint64]*node, cap),
		cacheCap: cap,
	}
}

// Count returns the number of keys stored in the tree.
func (t *Tree) Count() int { return int(t.count) }

// Version returns the on-disk format version (1 or 2).
func (t *Tree) Version() int { return t.version }

// Close flushes all dirty pages, releases the file lock and closes the
// file.
func (t *Tree) Close() error {
	syncErr := t.Sync()
	if t.osf != nil {
		unlockFile(t.osf) // closing the descriptor would release it anyway; be explicit
	}
	closeErr := t.file.Close()
	return errors.Join(syncErr, closeErr)
}

// Sync commits the tree durably: it writes all dirty pages, fsyncs them,
// writes the next header slot, and fsyncs again, so the new header never
// becomes durable before the pages it references. With Options.NoSync the
// same writes happen without the fsyncs.
func (t *Tree) Sync() error {
	for _, n := range t.cache {
		if n.dirty {
			if err := t.writeNode(n); err != nil {
				return err
			}
			n.dirty = false
		}
	}
	if err := t.syncFile(); err != nil {
		return err
	}
	if t.version >= 2 {
		t.seq++
	}
	if err := t.writeHeader(); err != nil {
		return err
	}
	if err := t.syncFile(); err != nil {
		return err
	}
	return t.graduateFree()
}

func (t *Tree) syncFile() error {
	if t.noSync {
		return nil
	}
	if err := t.file.Sync(); err != nil {
		return fmt.Errorf("btree: fsync: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a freshly created file's entry survives a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("btree: open dir for fsync: %w", err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("btree: fsync dir: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("btree: close dir: %w", closeErr)
	}
	return nil
}

// --- header ---
//
// v1: single header at page 0: magic, root, numPages, freeHead, count.
// v2: slots at pages 0 and 1 (slot = seq mod 2): magic, seq, root,
// numPages, freeHead, count, CRC32-C trailer. Open picks the valid slot
// with the highest seq.

func (t *Tree) writeHeader() error {
	var buf [PageSize]byte
	if t.version == 1 {
		binary.LittleEndian.PutUint64(buf[0:], magicV1)
		binary.LittleEndian.PutUint64(buf[8:], t.root)
		binary.LittleEndian.PutUint64(buf[16:], t.numPages)
		binary.LittleEndian.PutUint64(buf[24:], t.freeHead)
		binary.LittleEndian.PutUint64(buf[32:], t.count)
		if _, err := t.file.WriteAt(buf[:], 0); err != nil {
			return fmt.Errorf("btree: write header: %w", err)
		}
		return nil
	}
	binary.LittleEndian.PutUint64(buf[0:], magicV2)
	binary.LittleEndian.PutUint64(buf[8:], t.seq)
	binary.LittleEndian.PutUint64(buf[16:], t.root)
	binary.LittleEndian.PutUint64(buf[24:], t.numPages)
	binary.LittleEndian.PutUint64(buf[32:], t.freeHead)
	binary.LittleEndian.PutUint64(buf[40:], t.count)
	stampTrailer(buf[:])
	slot := t.seq % 2
	if _, err := t.file.WriteAt(buf[:], int64(slot)*PageSize); err != nil {
		return fmt.Errorf("btree: write header slot %d: %w", slot, err)
	}
	return nil
}

// headerV2 is one decoded header slot.
type headerV2 struct {
	seq, root, numPages, freeHead, count uint64
}

// parseHeaderV2 validates one slot image: magic, checksum, and field
// sanity.
func parseHeaderV2(buf []byte) (headerV2, bool) {
	var h headerV2
	if binary.LittleEndian.Uint64(buf[0:]) != magicV2 || !checkTrailer(buf) {
		return h, false
	}
	h.seq = binary.LittleEndian.Uint64(buf[8:])
	h.root = binary.LittleEndian.Uint64(buf[16:])
	h.numPages = binary.LittleEndian.Uint64(buf[24:])
	h.freeHead = binary.LittleEndian.Uint64(buf[32:])
	h.count = binary.LittleEndian.Uint64(buf[40:])
	if h.numPages < 3 || h.root < 2 || h.root >= h.numPages {
		return h, false
	}
	if h.freeHead != 0 && (h.freeHead < 2 || h.freeHead >= h.numPages) {
		return h, false
	}
	return h, true
}

func (t *Tree) readHeader() error {
	var slot0, slot1 [PageSize]byte
	err0 := readFullAt(t.file, slot0[:], 0)
	if err0 == nil && binary.LittleEndian.Uint64(slot0[0:]) == magicV1 {
		t.version = 1
		t.root = binary.LittleEndian.Uint64(slot0[8:])
		t.numPages = binary.LittleEndian.Uint64(slot0[16:])
		t.freeHead = binary.LittleEndian.Uint64(slot0[24:])
		t.count = binary.LittleEndian.Uint64(slot0[32:])
		if t.root == 0 || t.root >= t.numPages {
			return fmt.Errorf("%w: root page %d out of range", ErrCorrupt, t.root)
		}
		return nil
	}
	err1 := readFullAt(t.file, slot1[:], PageSize)
	var best headerV2
	found := false
	if err0 == nil {
		if h, ok := parseHeaderV2(slot0[:]); ok {
			best, found = h, true
		}
	}
	if err1 == nil {
		if h, ok := parseHeaderV2(slot1[:]); ok && (!found || h.seq > best.seq) {
			best, found = h, true
		}
	}
	if !found {
		// A short/failed read, bad magic or torn slot all land here; the
		// underlying read errors (if any) are preserved for diagnosis.
		return fmt.Errorf("%w: no valid header slot (slot0: %v, slot1: %v)", ErrCorrupt, err0, err1)
	}
	t.version = 2
	t.seq = best.seq
	t.root = best.root
	t.numPages = best.numPages
	t.freeHead = best.freeHead
	t.count = best.count
	return nil
}

func readFullAt(f io.ReaderAt, buf []byte, off int64) error {
	_, err := io.ReadFull(io.NewSectionReader(f, off, int64(len(buf))), buf)
	return err
}

// --- page trailers ---

func stampTrailer(buf []byte) {
	binary.LittleEndian.PutUint32(buf[PageSize-trailerLen:], crc32.Checksum(buf[:PageSize-trailerLen], castagnoli))
}

func checkTrailer(buf []byte) bool {
	return binary.LittleEndian.Uint32(buf[PageSize-trailerLen:]) == crc32.Checksum(buf[:PageSize-trailerLen], castagnoli)
}

// pageCap is the number of bytes of a page available to node payload: v2
// reserves the checksum trailer.
func (t *Tree) pageCap() int {
	if t.version >= 2 {
		return PageSize - trailerLen
	}
	return PageSize
}

// firstData is the id of the first data page (after the header page(s)).
func (t *Tree) firstData() uint64 {
	if t.version >= 2 {
		return 2
	}
	return 1
}

// --- page allocation ---

func (t *Tree) allocPage() (uint64, error) {
	if t.freeHead != 0 {
		id := t.freeHead
		next, err := t.readOverflowNext(id)
		if err != nil {
			return 0, err
		}
		t.freeHead = next
		return id, nil
	}
	id := t.numPages
	t.numPages++
	return id, nil
}

// freeChain quarantines the pages of an overflow chain. They join the
// allocatable free list only after the next header commit (see
// graduateFree): until that commit is durable the previous header still
// references them, and reusing one early would let a crash serve foreign
// page content under the old header.
func (t *Tree) freeChain(first uint64) error {
	for first != 0 {
		next, err := t.readOverflowNext(first)
		if err != nil {
			return err
		}
		t.pendingFree = append(t.pendingFree, first)
		first = next
	}
	return nil
}

// graduateFree threads the quarantined pages onto the free list. Called
// after the header commit fsync: the committed tree no longer references
// these pages, so overwriting them can no longer damage any recoverable
// state. The updated freeHead rides in the next commit; a crash before
// then merely leaks these pages (space, not correctness).
func (t *Tree) graduateFree() error {
	for _, id := range t.pendingFree {
		if err := t.writeOverflowRaw(id, t.freeHead, nil); err != nil {
			return err
		}
		t.freeHead = id
	}
	t.pendingFree = t.pendingFree[:0]
	return nil
}

// --- raw page IO ---

func (t *Tree) readPage(id uint64, buf []byte) error {
	if id < t.firstData() || id >= t.numPages {
		return fmt.Errorf("%w: page %d out of range [%d,%d)", ErrCorrupt, id, t.firstData(), t.numPages)
	}
	n, err := t.file.ReadAt(buf, int64(id)*PageSize)
	if err != nil && !(err == io.EOF && n == PageSize) {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// A header that references pages beyond the end of the file is
			// damage (e.g. a crash before the pages landed), not I/O.
			return fmt.Errorf("%w: page %d truncated: %v", ErrCorrupt, id, err)
		}
		return fmt.Errorf("btree: read page %d: %w", id, err)
	}
	if t.version >= 2 && !checkTrailer(buf) {
		return fmt.Errorf("%w: page %d checksum mismatch", ErrCorrupt, id)
	}
	return nil
}

func (t *Tree) writePage(id uint64, buf []byte) error {
	if t.version >= 2 {
		stampTrailer(buf)
	}
	if _, err := t.file.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("btree: write page %d: %w", id, err)
	}
	return nil
}

// --- overflow pages: [1B type][8B next][4B used][data...] ---

const ovfHeaderLen = 13

// ovfCap is the data capacity of one overflow page (v2 loses the trailer).
func (t *Tree) ovfCap() int { return t.pageCap() - ovfHeaderLen }

func (t *Tree) writeOverflowRaw(id, next uint64, data []byte) error {
	var buf [PageSize]byte
	buf[0] = typeOverflow
	binary.LittleEndian.PutUint64(buf[1:], next)
	binary.LittleEndian.PutUint32(buf[9:], uint32(len(data)))
	copy(buf[ovfHeaderLen:], data)
	return t.writePage(id, buf[:])
}

func (t *Tree) readOverflowNext(id uint64) (uint64, error) {
	var buf [PageSize]byte
	if err := t.readPage(id, buf[:]); err != nil {
		return 0, err
	}
	if buf[0] != typeOverflow {
		return 0, fmt.Errorf("%w: page %d is not an overflow page", ErrCorrupt, id)
	}
	return binary.LittleEndian.Uint64(buf[1:]), nil
}

func (t *Tree) writeOverflowChain(val []byte) (uint64, error) {
	// Write the chain back-to-front so each page knows its successor.
	var chunks [][]byte
	for len(val) > 0 {
		n := len(val)
		if n > t.ovfCap() {
			n = t.ovfCap()
		}
		chunks = append(chunks, val[:n])
		val = val[n:]
	}
	var next uint64
	for i := len(chunks) - 1; i >= 0; i-- {
		id, err := t.allocPage()
		if err != nil {
			return 0, err
		}
		if err := t.writeOverflowRaw(id, next, chunks[i]); err != nil {
			return 0, err
		}
		next = id
	}
	return next, nil
}

func (t *Tree) readOverflowChain(first uint64, total uint32) ([]byte, error) {
	out := make([]byte, 0, total)
	var buf [PageSize]byte
	for first != 0 {
		if err := t.readPage(first, buf[:]); err != nil {
			return nil, err
		}
		if buf[0] != typeOverflow {
			return nil, fmt.Errorf("%w: page %d in overflow chain has type %d", ErrCorrupt, first, buf[0])
		}
		used := binary.LittleEndian.Uint32(buf[9:])
		if used > uint32(t.ovfCap()) {
			return nil, fmt.Errorf("%w: overflow page %d claims %d bytes", ErrCorrupt, first, used)
		}
		out = append(out, buf[ovfHeaderLen:ovfHeaderLen+used]...)
		first = binary.LittleEndian.Uint64(buf[1:])
	}
	if uint32(len(out)) != total {
		return nil, fmt.Errorf("%w: overflow chain length %d, expected %d", ErrCorrupt, len(out), total)
	}
	return out, nil
}

// --- node encode/decode ---

func leafEntrySize(e *leafEntry) int {
	if e.ovfPage != 0 {
		return 8 + 4 + 12 // key + len marker + (page, totalLen)
	}
	return 8 + 4 + len(e.val)
}

const ovfMark = uint32(1) << 31

func encodeNode(n *node, buf []byte, limit int) error {
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		buf[0] = typeLeaf
		binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.entries)))
		off := pageHeaderLen
		for i := range n.entries {
			e := &n.entries[i]
			binary.LittleEndian.PutUint64(buf[off:], e.key)
			off += 8
			if e.ovfPage != 0 {
				binary.LittleEndian.PutUint32(buf[off:], ovfMark|e.ovfLen)
				off += 4
				binary.LittleEndian.PutUint64(buf[off:], e.ovfPage)
				off += 8
				binary.LittleEndian.PutUint32(buf[off:], e.ovfLen)
				off += 4
			} else {
				binary.LittleEndian.PutUint32(buf[off:], uint32(len(e.val)))
				off += 4
				copy(buf[off:], e.val)
				off += len(e.val)
			}
			if off > limit {
				return fmt.Errorf("btree: leaf %d overflows page (%d bytes)", n.id, off)
			}
		}
		return nil
	}
	buf[0] = typeInternal
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	off := pageHeaderLen
	binary.LittleEndian.PutUint64(buf[off:], n.children[0])
	off += 8
	for i, k := range n.keys {
		binary.LittleEndian.PutUint64(buf[off:], k)
		off += 8
		binary.LittleEndian.PutUint64(buf[off:], n.children[i+1])
		off += 8
	}
	if off > limit {
		return fmt.Errorf("btree: internal node %d overflows page", n.id)
	}
	return nil
}

func decodeNode(id uint64, buf []byte, limit int) (*node, error) {
	n := &node{id: id}
	nk := int(binary.LittleEndian.Uint16(buf[1:]))
	switch buf[0] {
	case typeLeaf:
		n.leaf = true
		off := pageHeaderLen
		n.entries = make([]leafEntry, nk)
		for i := 0; i < nk; i++ {
			if off+12 > limit {
				return nil, fmt.Errorf("%w: leaf %d truncated", ErrCorrupt, id)
			}
			e := &n.entries[i]
			e.key = binary.LittleEndian.Uint64(buf[off:])
			off += 8
			marker := binary.LittleEndian.Uint32(buf[off:])
			off += 4
			if marker&ovfMark != 0 {
				if off+12 > limit {
					return nil, fmt.Errorf("%w: leaf %d truncated overflow ref", ErrCorrupt, id)
				}
				e.ovfPage = binary.LittleEndian.Uint64(buf[off:])
				off += 8
				e.ovfLen = binary.LittleEndian.Uint32(buf[off:])
				off += 4
			} else {
				vlen := int(marker)
				if vlen < 0 || off+vlen > limit {
					return nil, fmt.Errorf("%w: leaf %d value overruns page", ErrCorrupt, id)
				}
				e.val = append([]byte(nil), buf[off:off+vlen]...)
				off += vlen
			}
		}
		return n, nil
	case typeInternal:
		off := pageHeaderLen
		need := 8 + nk*16
		if pageHeaderLen+need > limit {
			return nil, fmt.Errorf("%w: internal node %d too wide", ErrCorrupt, id)
		}
		n.children = make([]uint64, nk+1)
		n.keys = make([]uint64, nk)
		n.children[0] = binary.LittleEndian.Uint64(buf[off:])
		off += 8
		for i := 0; i < nk; i++ {
			n.keys[i] = binary.LittleEndian.Uint64(buf[off:])
			off += 8
			n.children[i+1] = binary.LittleEndian.Uint64(buf[off:])
			off += 8
		}
		return n, nil
	default:
		return nil, fmt.Errorf("%w: page %d has unexpected type %d", ErrCorrupt, id, buf[0])
	}
}

// --- cache ---

func (t *Tree) cacheInsert(n *node) {
	t.cache[n.id] = n
	t.clock = append(t.clock, n.id)
	t.evictIfNeeded()
}

func (t *Tree) evictIfNeeded() {
	for len(t.cache) > t.cacheCap && len(t.clock) > 0 {
		victim := t.clock[0]
		t.clock = t.clock[1:]
		n, ok := t.cache[victim]
		if !ok {
			continue
		}
		if n.dirty {
			if err := t.writeNode(n); err != nil {
				// Keep the page cached rather than losing data; it will be
				// retried at the next Sync.
				t.clock = append(t.clock, victim)
				return
			}
			n.dirty = false
		}
		delete(t.cache, victim)
		t.stats.Evictions++
	}
}

func (t *Tree) loadNode(id uint64) (*node, error) {
	if n, ok := t.cache[id]; ok {
		t.stats.Hits++
		return n, nil
	}
	t.stats.Misses++
	var buf [PageSize]byte
	if err := t.readPage(id, buf[:]); err != nil {
		return nil, err
	}
	n, err := decodeNode(id, buf[:], t.pageCap())
	if err != nil {
		return nil, err
	}
	t.cacheInsert(n)
	return n, nil
}

func (t *Tree) writeNode(n *node) error {
	var buf [PageSize]byte
	if err := encodeNode(n, buf[:], t.pageCap()); err != nil {
		return err
	}
	return t.writePage(n.id, buf[:])
}

// --- public operations ---

// Get returns the value stored under key, or ErrNotFound.
func (t *Tree) Get(key uint64) ([]byte, error) {
	n, err := t.loadNode(t.root)
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		idx := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		n, err = t.loadNode(n.children[idx])
		if err != nil {
			return nil, err
		}
	}
	i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].key >= key })
	if i >= len(n.entries) || n.entries[i].key != key {
		return nil, ErrNotFound
	}
	return t.entryValue(&n.entries[i])
}

func (t *Tree) entryValue(e *leafEntry) ([]byte, error) {
	if e.ovfPage != 0 {
		return t.readOverflowChain(e.ovfPage, e.ovfLen)
	}
	return append([]byte(nil), e.val...), nil
}

// Put stores val under key, replacing any previous value.
func (t *Tree) Put(key uint64, val []byte) error {
	entry := leafEntry{key: key}
	if len(val) > maxInline {
		first, err := t.writeOverflowChain(val)
		if err != nil {
			return err
		}
		entry.ovfPage = first
		entry.ovfLen = uint32(len(val))
	} else {
		entry.val = append([]byte(nil), val...)
	}
	promoted, newChild, err := t.insert(t.root, entry)
	if err != nil {
		return err
	}
	if newChild != 0 {
		// Root split: grow the tree by one level.
		id, err := t.allocPage()
		if err != nil {
			return err
		}
		newRoot := &node{
			id:       id,
			keys:     []uint64{promoted},
			children: []uint64{t.root, newChild},
			dirty:    true,
		}
		t.cacheInsert(newRoot)
		t.root = id
	}
	return nil
}

// insert adds entry under page id. If the node splits it returns the
// promoted separator key and the new right-sibling page id.
func (t *Tree) insert(id uint64, entry leafEntry) (promoted uint64, newChild uint64, err error) {
	n, err := t.loadNode(id)
	if err != nil {
		return 0, 0, err
	}
	if n.leaf {
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].key >= entry.key })
		if i < len(n.entries) && n.entries[i].key == entry.key {
			// Replace: recycle any old overflow chain.
			if old := n.entries[i].ovfPage; old != 0 {
				if err := t.freeChain(old); err != nil {
					return 0, 0, err
				}
			}
			n.entries[i] = entry
		} else {
			n.entries = append(n.entries, leafEntry{})
			copy(n.entries[i+1:], n.entries[i:])
			n.entries[i] = entry
			t.count++
		}
		n.dirty = true
		if t.leafSize(n) > t.pageCap() {
			return t.splitLeaf(n)
		}
		return 0, 0, nil
	}
	idx := sort.Search(len(n.keys), func(i int) bool { return entry.key < n.keys[i] })
	promo, child, err := t.insert(n.children[idx], entry)
	if err != nil {
		return 0, 0, err
	}
	if child == 0 {
		return 0, 0, nil
	}
	// The recursion may have evicted this node from the cache; mutating the
	// stale pointer would silently lose the update. Reload (cheap when still
	// cached) so the mutation lands on the cached copy.
	n, err = t.loadNode(id)
	if err != nil {
		return 0, 0, err
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[idx+1:], n.keys[idx:])
	n.keys[idx] = promo
	n.children = append(n.children, 0)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = child
	n.dirty = true
	if t.internalSize(n) > t.pageCap() {
		return t.splitInternal(n)
	}
	return 0, 0, nil
}

func (t *Tree) leafSize(n *node) int {
	size := pageHeaderLen
	for i := range n.entries {
		size += leafEntrySize(&n.entries[i])
	}
	return size
}

func (t *Tree) internalSize(n *node) int {
	return pageHeaderLen + 8 + len(n.keys)*16
}

func (t *Tree) splitLeaf(n *node) (uint64, uint64, error) {
	// Split at the byte midpoint so both halves fit comfortably.
	total := t.leafSize(n) - pageHeaderLen
	acc, cut := 0, 0
	for i := range n.entries {
		acc += leafEntrySize(&n.entries[i])
		if acc >= total/2 {
			cut = i + 1
			break
		}
	}
	if cut == 0 || cut >= len(n.entries) {
		cut = len(n.entries) / 2
	}
	id, err := t.allocPage()
	if err != nil {
		return 0, 0, err
	}
	right := &node{id: id, leaf: true, dirty: true,
		entries: append([]leafEntry(nil), n.entries[cut:]...)}
	n.entries = n.entries[:cut:cut]
	n.dirty = true
	t.cacheInsert(right)
	return right.entries[0].key, id, nil
}

func (t *Tree) splitInternal(n *node) (uint64, uint64, error) {
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	id, err := t.allocPage()
	if err != nil {
		return 0, 0, err
	}
	right := &node{id: id, dirty: true,
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]uint64(nil), n.children[mid+1:]...)}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	n.dirty = true
	t.cacheInsert(right)
	return promoted, id, nil
}

// Delete removes key from the tree. It returns ErrNotFound when absent.
// Underfull pages are tolerated (no rebalancing): the workload in this
// system is build-once/read-many, and tolerating sparse leaves keeps the
// on-disk structure simple without affecting lookup correctness.
func (t *Tree) Delete(key uint64) error {
	n, err := t.loadNode(t.root)
	if err != nil {
		return err
	}
	for !n.leaf {
		idx := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		n, err = t.loadNode(n.children[idx])
		if err != nil {
			return err
		}
	}
	i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].key >= key })
	if i >= len(n.entries) || n.entries[i].key != key {
		return ErrNotFound
	}
	if ovf := n.entries[i].ovfPage; ovf != 0 {
		if err := t.freeChain(ovf); err != nil {
			return err
		}
	}
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	n.dirty = true
	t.count--
	return nil
}

// Scan calls fn for every key in [lo, hi] in ascending order. Iteration
// stops early when fn returns false.
func (t *Tree) Scan(lo, hi uint64, fn func(key uint64, val []byte) bool) error {
	if err := t.scan(t.root, lo, hi, fn); err != nil && err != errStop {
		return err
	}
	return nil
}

func (t *Tree) scan(id, lo, hi uint64, fn func(uint64, []byte) bool) error {
	n, err := t.loadNode(id)
	if err != nil {
		return err
	}
	if n.leaf {
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].key >= lo })
		for ; i < len(n.entries) && n.entries[i].key <= hi; i++ {
			val, err := t.entryValue(&n.entries[i])
			if err != nil {
				return err
			}
			if !fn(n.entries[i].key, val) {
				return errStop
			}
		}
		return nil
	}
	start := sort.Search(len(n.keys), func(i int) bool { return lo < n.keys[i] })
	for idx := start; idx < len(n.children); idx++ {
		if idx > 0 && n.keys[idx-1] > hi {
			break
		}
		// Recursion may evict n from the cache, but the pointer we hold
		// keeps its decoded fields valid for the rest of this loop.
		if err := t.scan(n.children[idx], lo, hi, fn); err != nil {
			return err // errStop propagates to Scan, which absorbs it
		}
	}
	return nil
}

var errStop = errors.New("btree: scan stopped")
