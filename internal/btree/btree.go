// Package btree implements the disk-based B+-tree of §3 of the paper, used
// to index the per-grid-cell inverted lists: "The inverted lists may not
// fit in memory, and we use a disk-based B+-tree to index them for each
// grid cell."
//
// Keys are uint64 (the grid package composes cellID<<32 | termID) and
// values are opaque byte slices (encoded posting lists). The tree is a
// classic page-based B+-tree: fixed-size pages, size-based node splits,
// values larger than an inline threshold spill to overflow page chains,
// and an in-memory page cache with write-back on eviction/sync. A freed
// overflow chain is recycled through a free list threaded through the
// header, so repeated updates do not grow the file unboundedly.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

const (
	// PageSize is the on-disk page size in bytes.
	PageSize = 4096

	magic         = 0x4C434D5352424B31 // "LCMSRBK1"
	pageHeaderLen = 3                  // 1 byte type + 2 bytes nkeys
	maxInline     = 1024               // values longer than this go to overflow pages

	typeLeaf     = 1
	typeInternal = 2
	typeOverflow = 3
)

// ErrNotFound is returned by Get when the key is absent.
var ErrNotFound = errors.New("btree: key not found")

// ValidMagic reports whether buf starts with the tree file magic —
// callers use it to recognize a tree file without opening (and locking)
// it.
func ValidMagic(buf []byte) bool {
	return len(buf) >= 8 && binary.LittleEndian.Uint64(buf) == magic
}

// errCorrupt wraps corruption diagnoses so callers can detect them.
var errCorrupt = errors.New("btree: corrupt page")

type leafEntry struct {
	key     uint64
	val     []byte // inline value; nil when stored in an overflow chain
	ovfPage uint64 // first overflow page, 0 when inline
	ovfLen  uint32 // total overflow value length
}

type node struct {
	id    uint64
	leaf  bool
	dirty bool
	// Leaf payload.
	entries []leafEntry
	// Internal payload: len(children) == len(keys)+1; subtree children[i]
	// holds keys < keys[i]; children[len] holds keys >= keys[len-1].
	keys     []uint64
	children []uint64
}

// Tree is a disk-backed B+-tree. It is not safe for concurrent use; the
// file is held under an exclusive advisory lock while the Tree is open, so
// a second Create/Open of the same path (from this or another process)
// fails instead of corrupting the shared page cache.
type Tree struct {
	f        *os.File
	root     uint64
	numPages uint64
	freeHead uint64 // head of the freed-page list (0 = none)
	count    uint64 // number of stored keys

	cache    map[uint64]*node
	cacheCap int
	clock    []uint64 // FIFO eviction order
	stats    CacheStats
}

// CacheStats counts page-cache traffic on one Tree since it was opened.
type CacheStats struct {
	// Hits is the number of loadNode calls served from the cache.
	Hits uint64
	// Misses is the number of loadNode calls that read a page from disk.
	Misses uint64
	// Evictions is the number of pages dropped to stay under the cap.
	Evictions uint64
	// Resident is the number of decoded pages currently cached.
	Resident int
}

// Add accumulates other into s (for aggregating per-shard trees).
func (s *CacheStats) Add(other CacheStats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Resident += other.Resident
}

// CacheStats returns the tree's page-cache counters.
func (t *Tree) CacheStats() CacheStats {
	st := t.stats
	st.Resident = len(t.cache)
	return st
}

// Options configures tree creation.
type Options struct {
	// CachePages caps the number of decoded pages kept in memory.
	// Zero means a default of 256 pages (1 MiB).
	CachePages int
}

// Create creates a new empty tree at path, truncating any existing file.
// The file is locked first and truncated only after the lock is acquired,
// so Create on a path another Tree holds open fails without destroying
// that tree's data.
func Create(path string, opts Options) (*Tree, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("btree: create: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("btree: create: %w", err)
	}
	t := newTree(f, opts)
	t.numPages = 2 // header + root
	root := &node{id: 1, leaf: true, dirty: true}
	t.cacheInsert(root)
	t.root = 1
	if err := t.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// Open opens an existing tree created by Create. It fails when another
// Tree (in this or any other process) already holds the file open.
func Open(path string, opts Options) (*Tree, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("btree: open: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, err
	}
	t := newTree(f, opts)
	if err := t.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

func newTree(f *os.File, opts Options) *Tree {
	cap := opts.CachePages
	if cap <= 0 {
		cap = 256
	}
	if cap < 8 {
		cap = 8
	}
	return &Tree{f: f, cache: make(map[uint64]*node, cap), cacheCap: cap}
}

// Count returns the number of keys stored in the tree.
func (t *Tree) Count() int { return int(t.count) }

// Close flushes all dirty pages, releases the file lock and closes the
// file.
func (t *Tree) Close() error {
	if err := t.Sync(); err != nil {
		unlockFile(t.f)
		t.f.Close()
		return err
	}
	unlockFile(t.f) // closing the descriptor would release it anyway; be explicit
	return t.f.Close()
}

// Sync writes all dirty pages and the header to disk.
func (t *Tree) Sync() error {
	for _, n := range t.cache {
		if n.dirty {
			if err := t.writeNode(n); err != nil {
				return err
			}
			n.dirty = false
		}
	}
	return t.writeHeader()
}

// --- header ---

func (t *Tree) writeHeader() error {
	var buf [PageSize]byte
	binary.LittleEndian.PutUint64(buf[0:], magic)
	binary.LittleEndian.PutUint64(buf[8:], t.root)
	binary.LittleEndian.PutUint64(buf[16:], t.numPages)
	binary.LittleEndian.PutUint64(buf[24:], t.freeHead)
	binary.LittleEndian.PutUint64(buf[32:], t.count)
	_, err := t.f.WriteAt(buf[:], 0)
	if err != nil {
		return fmt.Errorf("btree: write header: %w", err)
	}
	return nil
}

func (t *Tree) readHeader() error {
	var buf [PageSize]byte
	if _, err := io.ReadFull(io.NewSectionReader(t.f, 0, PageSize), buf[:]); err != nil {
		return fmt.Errorf("btree: read header: %w", err)
	}
	if binary.LittleEndian.Uint64(buf[0:]) != magic {
		return fmt.Errorf("%w: bad magic", errCorrupt)
	}
	t.root = binary.LittleEndian.Uint64(buf[8:])
	t.numPages = binary.LittleEndian.Uint64(buf[16:])
	t.freeHead = binary.LittleEndian.Uint64(buf[24:])
	t.count = binary.LittleEndian.Uint64(buf[32:])
	if t.root == 0 || t.root >= t.numPages {
		return fmt.Errorf("%w: root page %d out of range", errCorrupt, t.root)
	}
	return nil
}

// --- page allocation ---

func (t *Tree) allocPage() (uint64, error) {
	if t.freeHead != 0 {
		id := t.freeHead
		next, err := t.readOverflowNext(id)
		if err != nil {
			return 0, err
		}
		t.freeHead = next
		return id, nil
	}
	id := t.numPages
	t.numPages++
	return id, nil
}

func (t *Tree) freeChain(first uint64) error {
	for first != 0 {
		next, err := t.readOverflowNext(first)
		if err != nil {
			return err
		}
		// Thread this page onto the free list.
		if err := t.writeOverflowRaw(first, t.freeHead, nil); err != nil {
			return err
		}
		t.freeHead = first
		first = next
	}
	return nil
}

// --- raw page IO ---

func (t *Tree) readPage(id uint64, buf []byte) error {
	if id == 0 || id >= t.numPages {
		return fmt.Errorf("%w: page %d out of range [1,%d)", errCorrupt, id, t.numPages)
	}
	n, err := t.f.ReadAt(buf, int64(id)*PageSize)
	if err != nil && !(err == io.EOF && n == PageSize) {
		return fmt.Errorf("btree: read page %d: %w", id, err)
	}
	return nil
}

func (t *Tree) writePage(id uint64, buf []byte) error {
	if _, err := t.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("btree: write page %d: %w", id, err)
	}
	return nil
}

// --- overflow pages: [1B type][8B next][4B used][data...] ---

const ovfHeaderLen = 13
const ovfDataCap = PageSize - ovfHeaderLen

func (t *Tree) writeOverflowRaw(id, next uint64, data []byte) error {
	var buf [PageSize]byte
	buf[0] = typeOverflow
	binary.LittleEndian.PutUint64(buf[1:], next)
	binary.LittleEndian.PutUint32(buf[9:], uint32(len(data)))
	copy(buf[ovfHeaderLen:], data)
	return t.writePage(id, buf[:])
}

func (t *Tree) readOverflowNext(id uint64) (uint64, error) {
	var buf [PageSize]byte
	if err := t.readPage(id, buf[:]); err != nil {
		return 0, err
	}
	if buf[0] != typeOverflow {
		return 0, fmt.Errorf("%w: page %d is not an overflow page", errCorrupt, id)
	}
	return binary.LittleEndian.Uint64(buf[1:]), nil
}

func (t *Tree) writeOverflowChain(val []byte) (uint64, error) {
	// Write the chain back-to-front so each page knows its successor.
	var chunks [][]byte
	for len(val) > 0 {
		n := len(val)
		if n > ovfDataCap {
			n = ovfDataCap
		}
		chunks = append(chunks, val[:n])
		val = val[n:]
	}
	var next uint64
	for i := len(chunks) - 1; i >= 0; i-- {
		id, err := t.allocPage()
		if err != nil {
			return 0, err
		}
		if err := t.writeOverflowRaw(id, next, chunks[i]); err != nil {
			return 0, err
		}
		next = id
	}
	return next, nil
}

func (t *Tree) readOverflowChain(first uint64, total uint32) ([]byte, error) {
	out := make([]byte, 0, total)
	var buf [PageSize]byte
	for first != 0 {
		if err := t.readPage(first, buf[:]); err != nil {
			return nil, err
		}
		if buf[0] != typeOverflow {
			return nil, fmt.Errorf("%w: page %d in overflow chain has type %d", errCorrupt, first, buf[0])
		}
		used := binary.LittleEndian.Uint32(buf[9:])
		if used > ovfDataCap {
			return nil, fmt.Errorf("%w: overflow page %d claims %d bytes", errCorrupt, first, used)
		}
		out = append(out, buf[ovfHeaderLen:ovfHeaderLen+used]...)
		first = binary.LittleEndian.Uint64(buf[1:])
	}
	if uint32(len(out)) != total {
		return nil, fmt.Errorf("%w: overflow chain length %d, expected %d", errCorrupt, len(out), total)
	}
	return out, nil
}

// --- node encode/decode ---

func leafEntrySize(e *leafEntry) int {
	if e.ovfPage != 0 {
		return 8 + 4 + 12 // key + len marker + (page, totalLen)
	}
	return 8 + 4 + len(e.val)
}

const ovfMark = uint32(1) << 31

func encodeNode(n *node, buf []byte) error {
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		buf[0] = typeLeaf
		binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.entries)))
		off := pageHeaderLen
		for i := range n.entries {
			e := &n.entries[i]
			binary.LittleEndian.PutUint64(buf[off:], e.key)
			off += 8
			if e.ovfPage != 0 {
				binary.LittleEndian.PutUint32(buf[off:], ovfMark|e.ovfLen)
				off += 4
				binary.LittleEndian.PutUint64(buf[off:], e.ovfPage)
				off += 8
				binary.LittleEndian.PutUint32(buf[off:], e.ovfLen)
				off += 4
			} else {
				binary.LittleEndian.PutUint32(buf[off:], uint32(len(e.val)))
				off += 4
				copy(buf[off:], e.val)
				off += len(e.val)
			}
			if off > PageSize {
				return fmt.Errorf("btree: leaf %d overflows page (%d bytes)", n.id, off)
			}
		}
		return nil
	}
	buf[0] = typeInternal
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	off := pageHeaderLen
	binary.LittleEndian.PutUint64(buf[off:], n.children[0])
	off += 8
	for i, k := range n.keys {
		binary.LittleEndian.PutUint64(buf[off:], k)
		off += 8
		binary.LittleEndian.PutUint64(buf[off:], n.children[i+1])
		off += 8
	}
	if off > PageSize {
		return fmt.Errorf("btree: internal node %d overflows page", n.id)
	}
	return nil
}

func decodeNode(id uint64, buf []byte) (*node, error) {
	n := &node{id: id}
	nk := int(binary.LittleEndian.Uint16(buf[1:]))
	switch buf[0] {
	case typeLeaf:
		n.leaf = true
		off := pageHeaderLen
		n.entries = make([]leafEntry, nk)
		for i := 0; i < nk; i++ {
			if off+12 > PageSize {
				return nil, fmt.Errorf("%w: leaf %d truncated", errCorrupt, id)
			}
			e := &n.entries[i]
			e.key = binary.LittleEndian.Uint64(buf[off:])
			off += 8
			marker := binary.LittleEndian.Uint32(buf[off:])
			off += 4
			if marker&ovfMark != 0 {
				if off+12 > PageSize {
					return nil, fmt.Errorf("%w: leaf %d truncated overflow ref", errCorrupt, id)
				}
				e.ovfPage = binary.LittleEndian.Uint64(buf[off:])
				off += 8
				e.ovfLen = binary.LittleEndian.Uint32(buf[off:])
				off += 4
			} else {
				vlen := int(marker)
				if off+vlen > PageSize {
					return nil, fmt.Errorf("%w: leaf %d value overruns page", errCorrupt, id)
				}
				e.val = append([]byte(nil), buf[off:off+vlen]...)
				off += vlen
			}
		}
		return n, nil
	case typeInternal:
		off := pageHeaderLen
		need := 8 + nk*16
		if pageHeaderLen+need > PageSize {
			return nil, fmt.Errorf("%w: internal node %d too wide", errCorrupt, id)
		}
		n.children = make([]uint64, nk+1)
		n.keys = make([]uint64, nk)
		n.children[0] = binary.LittleEndian.Uint64(buf[off:])
		off += 8
		for i := 0; i < nk; i++ {
			n.keys[i] = binary.LittleEndian.Uint64(buf[off:])
			off += 8
			n.children[i+1] = binary.LittleEndian.Uint64(buf[off:])
			off += 8
		}
		return n, nil
	default:
		return nil, fmt.Errorf("%w: page %d has unexpected type %d", errCorrupt, id, buf[0])
	}
}

// --- cache ---

func (t *Tree) cacheInsert(n *node) {
	t.cache[n.id] = n
	t.clock = append(t.clock, n.id)
	t.evictIfNeeded()
}

func (t *Tree) evictIfNeeded() {
	for len(t.cache) > t.cacheCap && len(t.clock) > 0 {
		victim := t.clock[0]
		t.clock = t.clock[1:]
		n, ok := t.cache[victim]
		if !ok {
			continue
		}
		if n.dirty {
			if err := t.writeNode(n); err != nil {
				// Keep the page cached rather than losing data; it will be
				// retried at the next Sync.
				t.clock = append(t.clock, victim)
				return
			}
			n.dirty = false
		}
		delete(t.cache, victim)
		t.stats.Evictions++
	}
}

func (t *Tree) loadNode(id uint64) (*node, error) {
	if n, ok := t.cache[id]; ok {
		t.stats.Hits++
		return n, nil
	}
	t.stats.Misses++
	var buf [PageSize]byte
	if err := t.readPage(id, buf[:]); err != nil {
		return nil, err
	}
	n, err := decodeNode(id, buf[:])
	if err != nil {
		return nil, err
	}
	t.cacheInsert(n)
	return n, nil
}

func (t *Tree) writeNode(n *node) error {
	var buf [PageSize]byte
	if err := encodeNode(n, buf[:]); err != nil {
		return err
	}
	return t.writePage(n.id, buf[:])
}

// --- public operations ---

// Get returns the value stored under key, or ErrNotFound.
func (t *Tree) Get(key uint64) ([]byte, error) {
	n, err := t.loadNode(t.root)
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		idx := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		n, err = t.loadNode(n.children[idx])
		if err != nil {
			return nil, err
		}
	}
	i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].key >= key })
	if i >= len(n.entries) || n.entries[i].key != key {
		return nil, ErrNotFound
	}
	return t.entryValue(&n.entries[i])
}

func (t *Tree) entryValue(e *leafEntry) ([]byte, error) {
	if e.ovfPage != 0 {
		return t.readOverflowChain(e.ovfPage, e.ovfLen)
	}
	return append([]byte(nil), e.val...), nil
}

// Put stores val under key, replacing any previous value.
func (t *Tree) Put(key uint64, val []byte) error {
	entry := leafEntry{key: key}
	if len(val) > maxInline {
		first, err := t.writeOverflowChain(val)
		if err != nil {
			return err
		}
		entry.ovfPage = first
		entry.ovfLen = uint32(len(val))
	} else {
		entry.val = append([]byte(nil), val...)
	}
	promoted, newChild, err := t.insert(t.root, entry)
	if err != nil {
		return err
	}
	if newChild != 0 {
		// Root split: grow the tree by one level.
		id, err := t.allocPage()
		if err != nil {
			return err
		}
		newRoot := &node{
			id:       id,
			keys:     []uint64{promoted},
			children: []uint64{t.root, newChild},
			dirty:    true,
		}
		t.cacheInsert(newRoot)
		t.root = id
	}
	return nil
}

// insert adds entry under page id. If the node splits it returns the
// promoted separator key and the new right-sibling page id.
func (t *Tree) insert(id uint64, entry leafEntry) (promoted uint64, newChild uint64, err error) {
	n, err := t.loadNode(id)
	if err != nil {
		return 0, 0, err
	}
	if n.leaf {
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].key >= entry.key })
		if i < len(n.entries) && n.entries[i].key == entry.key {
			// Replace: recycle any old overflow chain.
			if old := n.entries[i].ovfPage; old != 0 {
				if err := t.freeChain(old); err != nil {
					return 0, 0, err
				}
			}
			n.entries[i] = entry
		} else {
			n.entries = append(n.entries, leafEntry{})
			copy(n.entries[i+1:], n.entries[i:])
			n.entries[i] = entry
			t.count++
		}
		n.dirty = true
		if t.leafSize(n) > PageSize {
			return t.splitLeaf(n)
		}
		return 0, 0, nil
	}
	idx := sort.Search(len(n.keys), func(i int) bool { return entry.key < n.keys[i] })
	promo, child, err := t.insert(n.children[idx], entry)
	if err != nil {
		return 0, 0, err
	}
	if child == 0 {
		return 0, 0, nil
	}
	// The recursion may have evicted this node from the cache; mutating the
	// stale pointer would silently lose the update. Reload (cheap when still
	// cached) so the mutation lands on the cached copy.
	n, err = t.loadNode(id)
	if err != nil {
		return 0, 0, err
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[idx+1:], n.keys[idx:])
	n.keys[idx] = promo
	n.children = append(n.children, 0)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = child
	n.dirty = true
	if t.internalSize(n) > PageSize {
		return t.splitInternal(n)
	}
	return 0, 0, nil
}

func (t *Tree) leafSize(n *node) int {
	size := pageHeaderLen
	for i := range n.entries {
		size += leafEntrySize(&n.entries[i])
	}
	return size
}

func (t *Tree) internalSize(n *node) int {
	return pageHeaderLen + 8 + len(n.keys)*16
}

func (t *Tree) splitLeaf(n *node) (uint64, uint64, error) {
	// Split at the byte midpoint so both halves fit comfortably.
	total := t.leafSize(n) - pageHeaderLen
	acc, cut := 0, 0
	for i := range n.entries {
		acc += leafEntrySize(&n.entries[i])
		if acc >= total/2 {
			cut = i + 1
			break
		}
	}
	if cut == 0 || cut >= len(n.entries) {
		cut = len(n.entries) / 2
	}
	id, err := t.allocPage()
	if err != nil {
		return 0, 0, err
	}
	right := &node{id: id, leaf: true, dirty: true,
		entries: append([]leafEntry(nil), n.entries[cut:]...)}
	n.entries = n.entries[:cut:cut]
	n.dirty = true
	t.cacheInsert(right)
	return right.entries[0].key, id, nil
}

func (t *Tree) splitInternal(n *node) (uint64, uint64, error) {
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	id, err := t.allocPage()
	if err != nil {
		return 0, 0, err
	}
	right := &node{id: id, dirty: true,
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]uint64(nil), n.children[mid+1:]...)}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	n.dirty = true
	t.cacheInsert(right)
	return promoted, id, nil
}

// Delete removes key from the tree. It returns ErrNotFound when absent.
// Underfull pages are tolerated (no rebalancing): the workload in this
// system is build-once/read-many, and tolerating sparse leaves keeps the
// on-disk structure simple without affecting lookup correctness.
func (t *Tree) Delete(key uint64) error {
	n, err := t.loadNode(t.root)
	if err != nil {
		return err
	}
	for !n.leaf {
		idx := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		n, err = t.loadNode(n.children[idx])
		if err != nil {
			return err
		}
	}
	i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].key >= key })
	if i >= len(n.entries) || n.entries[i].key != key {
		return ErrNotFound
	}
	if ovf := n.entries[i].ovfPage; ovf != 0 {
		if err := t.freeChain(ovf); err != nil {
			return err
		}
	}
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	n.dirty = true
	t.count--
	return nil
}

// Scan calls fn for every key in [lo, hi] in ascending order. Iteration
// stops early when fn returns false.
func (t *Tree) Scan(lo, hi uint64, fn func(key uint64, val []byte) bool) error {
	if err := t.scan(t.root, lo, hi, fn); err != nil && err != errStop {
		return err
	}
	return nil
}

func (t *Tree) scan(id, lo, hi uint64, fn func(uint64, []byte) bool) error {
	n, err := t.loadNode(id)
	if err != nil {
		return err
	}
	if n.leaf {
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].key >= lo })
		for ; i < len(n.entries) && n.entries[i].key <= hi; i++ {
			val, err := t.entryValue(&n.entries[i])
			if err != nil {
				return err
			}
			if !fn(n.entries[i].key, val) {
				return errStop
			}
		}
		return nil
	}
	start := sort.Search(len(n.keys), func(i int) bool { return lo < n.keys[i] })
	for idx := start; idx < len(n.children); idx++ {
		if idx > 0 && n.keys[idx-1] > hi {
			break
		}
		// Recursion may evict n from the cache, but the pointer we hold
		// keeps its decoded fields valid for the rest of this loop.
		if err := t.scan(n.children[idx], lo, hi, fn); err != nil {
			return err // errStop propagates to Scan, which absorbs it
		}
	}
	return nil
}

var errStop = errors.New("btree: scan stopped")
