package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"repro/internal/iofault"
)

// replayAll reopens a log image and collects every replayed record.
func replayAll(t *testing.T, img []byte) [][]byte {
	t.Helper()
	var got [][]byte
	w, err := OpenWAL(iofault.NewMemFileFrom(img), false, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()
	return got
}

func TestWALRoundTrip(t *testing.T) {
	f := iofault.NewMemFile()
	w, err := OpenWAL(f, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf("record-%d-%s", i, string(make([]byte, i*7))))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, f.DurableSnapshot())
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
}

// TestWALTornTail: replay must stop at the first invalid frame — for every
// possible cut of the final record, the intact prefix replays and the tail
// is discarded without error.
func TestWALTornTail(t *testing.T) {
	f := iofault.NewMemFile()
	w, err := OpenWAL(f, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("gamma-gamma-gamma")}
	var fullLens []int64
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		fullLens = append(fullLens, w.Size())
	}
	img := f.Snapshot()
	start := fullLens[1] // keep the first two records intact
	for cut := start; cut < int64(len(img)); cut++ {
		got := replayAll(t, img[:cut])
		if len(got) != 2 {
			t.Fatalf("cut at %d: replayed %d records, want 2", cut, len(got))
		}
	}
}

// TestWALCorruptFrameStopsReplay: a bit flip inside an earlier record makes
// its checksum fail, and replay must stop there — later (intact) records
// are unreachable by design, because record boundaries after a corrupt
// frame cannot be trusted.
func TestWALCorruptFrameStopsReplay(t *testing.T) {
	f := iofault.NewMemFile()
	w, err := OpenWAL(f, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	img := f.Snapshot()
	img[walHeaderLen+2] ^= 0xff // corrupt the first record's payload
	if got := replayAll(t, img); len(got) != 0 {
		t.Fatalf("replayed %d records past a corrupt frame, want 0", len(got))
	}
}

// TestWALImplausibleLength: a garbage length field must not make replay
// attempt a huge allocation; the frame is treated as torn.
func TestWALImplausibleLength(t *testing.T) {
	f := iofault.NewMemFile()
	w, err := OpenWAL(f, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	img := f.Snapshot()
	var huge [walHeaderLen]byte
	binary.LittleEndian.PutUint32(huge[0:], 1<<31)
	img = append(img, huge[:]...)
	if got := replayAll(t, img); len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
}

// TestWALReplayErrorPropagates: a replay callback error (a corrupt but
// checksum-valid record at a higher layer) aborts the open, typed.
func TestWALReplayErrorPropagates(t *testing.T) {
	f := iofault.NewMemFile()
	w, err := OpenWAL(f, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, err = OpenWAL(iofault.NewMemFileFrom(f.Snapshot()), false, func([]byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("OpenWAL error = %v, want wrapped callback error", err)
	}
}

// TestWALReset: after a reset nothing replays, even from the durable image.
func TestWALReset(t *testing.T) {
	f := iofault.NewMemFile()
	w, err := OpenWAL(f, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, f.DurableSnapshot())
	if len(got) != 1 || string(got[0]) != "kept" {
		t.Fatalf("after reset replayed %q, want just \"kept\"", got)
	}
}

// TestWALNoSyncSkipsDurability: under NoSync an append leaves the durable
// image untouched (the volatile image has the record) — the bulk-load
// contract, same as the tree's.
func TestWALNoSyncSkipsDurability(t *testing.T) {
	f := iofault.NewMemFile()
	w, err := OpenWAL(f, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("volatile-only")); err != nil {
		t.Fatal(err)
	}
	if n := len(f.DurableSnapshot()); n != 0 {
		t.Fatalf("NoSync append made %d bytes durable, want 0", n)
	}
	if got := replayAll(t, f.Snapshot()); len(got) != 1 {
		t.Fatalf("volatile image replayed %d records, want 1", len(got))
	}
}

// TestWALOpenResumesAfterTornTail: reopening a log with a torn tail must
// truncate it so subsequent appends start exactly after the intact prefix.
func TestWALOpenResumesAfterTornTail(t *testing.T) {
	f := iofault.NewMemFile()
	w, err := OpenWAL(f, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	// Torn tail: half a frame of garbage.
	if _, err := f.WriteAt([]byte{9, 9, 9}, w.Size()); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenWAL(f, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := reopened.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, f.Snapshot())
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("replayed %q, want [first second]", got)
	}
}
