package btree

import (
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"testing"
)

func benchTree(b *testing.B, n int) *Tree {
	b.Helper()
	tr, err := Create(filepath.Join(b.TempDir(), "bench.bt"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var v [16]byte
	for _, k := range rng.Perm(n) {
		binary.LittleEndian.PutUint64(v[:], uint64(k))
		if err := tr.Put(uint64(k), v[:]); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

func BenchmarkPut(b *testing.B) {
	tr, err := Create(filepath.Join(b.TempDir(), "bench.bt"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	var v [16]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(uint64(i*2654435761), v[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr := benchTree(b, 50000)
	defer tr.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(uint64(i % 50000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan1000(b *testing.B) {
	tr := benchTree(b, 50000)
	defer tr.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		lo := uint64((i * 997) % 49000)
		if err := tr.Scan(lo, lo+999, func(uint64, []byte) bool {
			count++
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
}
