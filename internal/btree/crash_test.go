package btree

// Crash-consistency suite: replay a scripted build against a fault-injected
// in-memory file, cut it at randomized kill points (after exactly N page
// writes, with a torn final write, or with fsyncs silently dropped before
// power loss), reopen the frozen byte image, and require that Open+Verify
// either recovers a consistent tree or reports a typed ErrCorrupt — and
// that every value still readable is byte-identical to a version that was
// actually written for that key. A silently wrong value is the one outcome
// that must never happen.

import (
	"bytes"
	"errors"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/iofault"
)

// crashVal derives the deterministic value for key k at write version ver.
// Lengths straddle the inline threshold so the script exercises inline
// values, overflow chains, and chain recycling.
func crashVal(k uint64, ver int) []byte {
	ln := int(k%7)*700 + ver*123 + 5
	b := make([]byte, ln)
	for i := range b {
		b[i] = byte(uint64(i)*31 + k*17 + uint64(ver)*101)
	}
	return b
}

type crashOp struct {
	key  uint64
	ver  int  // 0 = delete
	sync bool // Sync after applying
}

const crashKeys = 48

// crashScript is the deterministic build every kill-point run replays:
// insert all keys, then a churn phase of replacements and deletes (free
// list + recycling traffic), with periodic commits.
func crashScript() []crashOp {
	rng := rand.New(rand.NewSource(1207))
	var ops []crashOp
	for _, k := range rng.Perm(crashKeys) {
		ops = append(ops, crashOp{key: uint64(k), ver: 1, sync: len(ops)%9 == 8})
	}
	for i := 0; i < 60; i++ {
		k := uint64(rng.Intn(crashKeys))
		ver := 2
		if i%11 == 10 {
			ver = 0 // delete
		}
		ops = append(ops, crashOp{key: k, ver: ver, sync: i%7 == 6})
	}
	ops = append(ops, crashOp{key: 0, ver: 3, sync: true})
	return ops
}

// crashVersions maps each key to the value versions the script ever wrote
// for it — the set a recovered value must belong to.
func crashVersions(ops []crashOp) map[uint64]map[int]bool {
	vers := make(map[uint64]map[int]bool)
	for _, op := range ops {
		if op.ver == 0 {
			continue
		}
		if vers[op.key] == nil {
			vers[op.key] = make(map[int]bool)
		}
		vers[op.key][op.ver] = true
	}
	return vers
}

// runCrashScript replays the script over f. It stops at the first error
// (the injected crash) and reports it.
func runCrashScript(f iofault.File, ops []crashOp) error {
	tr, err := CreateFile(f, Options{CachePages: 8})
	if err != nil {
		return err
	}
	for _, op := range ops {
		if op.ver == 0 {
			if err := tr.Delete(op.key); err != nil && err != ErrNotFound {
				return err
			}
		} else if err := tr.Put(op.key, crashVal(op.key, op.ver)); err != nil {
			return err
		}
		if op.sync {
			if err := tr.Sync(); err != nil {
				return err
			}
		}
	}
	return tr.Close()
}

// checkRecovered opens a post-crash image and enforces the contract:
// Open/Verify succeed (consistent tree) or fail with ErrCorrupt (typed
// detection) — and on success every readable value matches a version the
// script really wrote. Returns whether the image verified clean.
func checkRecovered(t *testing.T, img []byte, vers map[uint64]map[int]bool, tag string) bool {
	t.Helper()
	tr, err := OpenFile(iofault.NewMemFileFrom(img), Options{CachePages: 8})
	if err != nil {
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Open failed with untyped error: %v", tag, err)
		}
		return false
	}
	if _, err := tr.Verify(); err != nil {
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Verify failed with untyped error: %v", tag, err)
		}
		return false
	}
	err = tr.Scan(0, ^uint64(0), func(k uint64, v []byte) bool {
		ok := false
		for ver := range vers[k] {
			if bytes.Equal(v, crashVal(k, ver)) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: key %d holds %d bytes never written for it — silent wrong answer", tag, k, len(v))
			return false
		}
		return true
	})
	if err != nil && !errors.Is(err, ErrCorrupt) {
		t.Errorf("%s: Scan failed with untyped error: %v", tag, err)
	}
	return err == nil
}

// countScriptWrites replays the script fault-free and returns the total
// number of page writes — the kill-point space.
func countScriptWrites(t *testing.T, ops []crashOp) int {
	t.Helper()
	inj := iofault.Wrap(iofault.NewMemFile(), iofault.Plan{})
	if err := runCrashScript(inj, ops); err != nil {
		t.Fatalf("fault-free run failed: %v", err)
	}
	_, writes, _ := inj.Counts()
	return writes
}

// killPoints picks which write indices to crash at: every index in
// [1, max] when the space is small, otherwise both edges plus a random
// sample, always at least 100 points (the acceptance floor). max must be
// total-1: a kill point equal to the write count never fires.
func killPoints(t *testing.T, max int) []int {
	t.Helper()
	const floor = 100
	if max <= floor+40 {
		if max < floor {
			t.Fatalf("script produces only %d kill points; need >= %d", max, floor)
		}
		pts := make([]int, 0, max)
		for n := 1; n <= max; n++ {
			pts = append(pts, n)
		}
		return pts
	}
	seen := make(map[int]bool)
	var pts []int
	add := func(n int) {
		if n >= 1 && n <= max && !seen[n] {
			seen[n] = true
			pts = append(pts, n)
		}
	}
	for n := 1; n <= 15; n++ {
		add(n)
	}
	for n := max - 15; n <= max; n++ {
		add(n)
	}
	rng := rand.New(rand.NewSource(4242))
	for len(pts) < 140 {
		add(1 + rng.Intn(max))
	}
	return pts
}

func TestCrashKillPoints(t *testing.T) {
	ops := crashScript()
	vers := crashVersions(ops)
	total := countScriptWrites(t, ops)
	pts := killPoints(t, total-1)
	if len(pts) < 100 {
		t.Fatalf("only %d kill points; acceptance requires >= 100", len(pts))
	}
	clean := 0
	for _, n := range pts {
		mem := iofault.NewMemFile()
		inj := iofault.Wrap(mem, iofault.Plan{CrashAfterWrites: n})
		if err := runCrashScript(inj, ops); err == nil {
			t.Fatalf("kill@%d: build finished despite crash plan (total writes %d)", n, total)
		}
		// Write-through model: every completed write is on the platter.
		if checkRecovered(t, mem.Snapshot(), vers, "kill@"+strconv.Itoa(n)) {
			clean++
		}
	}
	// Sanity: the fault-free image verifies clean with the full contents.
	mem := iofault.NewMemFile()
	if err := runCrashScript(mem, ops); err != nil {
		t.Fatal(err)
	}
	if !checkRecovered(t, mem.Snapshot(), vers, "fault-free") {
		t.Error("fault-free image did not verify clean")
	}
	t.Logf("%d kill points, %d recovered clean, %d detected corrupt", len(pts), clean, len(pts)-clean)
}

func TestCrashTornWrites(t *testing.T) {
	ops := crashScript()
	vers := crashVersions(ops)
	total := countScriptWrites(t, ops)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		n := 1 + rng.Intn(total)
		torn := 1 + rng.Intn(PageSize-1)
		mem := iofault.NewMemFile()
		inj := iofault.Wrap(mem, iofault.Plan{TornWrite: n, TornBytes: torn})
		if err := runCrashScript(inj, ops); err == nil {
			t.Fatalf("torn@%d: build finished despite torn-write plan", n)
		}
		checkRecovered(t, mem.Snapshot(), vers, "torn@"+strconv.Itoa(n))
	}
}

func TestCrashDroppedFsyncs(t *testing.T) {
	ops := crashScript()
	vers := crashVersions(ops)
	total := countScriptWrites(t, ops)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		n := 1 + rng.Intn(total-1)
		keep := rng.Intn(12) // fsyncs honored before the disk starts lying
		mem := iofault.NewMemFile()
		inj := iofault.Wrap(mem, iofault.Plan{CrashAfterWrites: n, DropSyncAfter: keep, DropAllSyncs: keep == 0})
		if err := runCrashScript(inj, ops); err == nil {
			t.Fatalf("fsync-drop@%d: build finished despite crash plan", n)
		}
		// Power loss: the page cache is gone; only fsynced bytes survive.
		mem.Crash()
		checkRecovered(t, mem.Snapshot(), vers, "fsync-drop@"+strconv.Itoa(n))
	}
}

// TestCrashAfterCloseLosesNothing is the positive durability claim: a
// crash after a clean Close recovers the full tree bit-for-bit even though
// the page cache is discarded.
func TestCrashAfterCloseLosesNothing(t *testing.T) {
	ops := crashScript()
	mem := iofault.NewMemFile()
	if err := runCrashScript(mem, ops); err != nil {
		t.Fatal(err)
	}
	mem.Crash() // drop everything not fsynced
	tr, err := OpenFile(iofault.NewMemFileFrom(mem.Snapshot()), Options{CachePages: 8})
	if err != nil {
		t.Fatalf("open after post-close crash: %v", err)
	}
	if _, err := tr.Verify(); err != nil {
		t.Fatalf("verify after post-close crash: %v", err)
	}
	// Replay the script against a map to compute the exact expected state.
	want := map[uint64]int{}
	for _, op := range ops {
		if op.ver == 0 {
			delete(want, op.key)
		} else {
			want[op.key] = op.ver
		}
	}
	got := 0
	err = tr.Scan(0, ^uint64(0), func(k uint64, v []byte) bool {
		got++
		ver, ok := want[k]
		if !ok {
			t.Errorf("key %d present but deleted before close", k)
			return false
		}
		if !bytes.Equal(v, crashVal(k, ver)) {
			t.Errorf("key %d: value mismatch after recovery", k)
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Errorf("recovered %d keys, want %d", got, len(want))
	}
}
