//go:build !unix

package btree

import "os"

// Non-unix platforms have no flock; trees open without advisory locking
// and callers are responsible for not opening one file twice.
func lockFile(*os.File) error { return nil }

func unlockFile(*os.File) {}
