package btree

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/iofault"
)

// WAL is an append-only write-ahead log of opaque records, the durability
// front for the live-update path of the sharded posting store: an update
// is acknowledged only after its record is on the log, so the volatile
// memtable layered over the B+-trees can always be rebuilt by replay.
//
// The segment format reuses the tree's checksum discipline (Checksum,
// CRC32-C): each record is framed as
//
//	[4B payload length LE] [4B CRC32-C of payload LE] [payload]
//
// and records are written back to back. A record is written with a single
// WriteAt followed by one Sync (unless noSync), so a crash can tear at
// most the final record; replay stops at the first frame whose length or
// checksum does not verify — by construction that frame was never
// acknowledged, so stopping loses nothing that was promised durable.
type WAL struct {
	f      iofault.File
	off    int64
	noSync bool
}

// maxWALRecord bounds a single record so a torn or garbage length field
// cannot make replay attempt a multi-gigabyte read. One record holds one
// object update (a handful of terms), so 64 MiB is far beyond legitimate.
const maxWALRecord = 64 << 20

// walHeaderLen is the per-record frame header: length + checksum.
const walHeaderLen = 8

// OpenWAL opens (or starts) a write-ahead log over f, replaying every
// intact record through replay in append order. The log is positioned
// after the last intact record and truncated there, discarding a torn
// tail — bytes past the first invalid frame were never acknowledged to
// any caller. A non-nil error from replay aborts the open and is returned
// wrapped (it typically marks a corrupt but checksum-valid record, which
// unlike a torn tail is a real consistency failure).
func OpenWAL(f iofault.File, noSync bool, replay func(payload []byte) error) (*WAL, error) {
	off, err := replayWAL(f, replay)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(off); err != nil {
		return nil, fmt.Errorf("btree: wal truncate: %w", err)
	}
	return &WAL{f: f, off: off, noSync: noSync}, nil
}

// replayWAL scans the log from the start, calling replay for every intact
// record, and returns the offset just past the last one. Torn frames
// (short header, implausible length, short payload, checksum mismatch)
// end the scan without error.
func replayWAL(f iofault.File, replay func(payload []byte) error) (int64, error) {
	var off int64
	var hdr [walHeaderLen]byte
	for {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return off, nil // short header: clean end or torn tail
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n > maxWALRecord {
			return off, nil // implausible length: torn frame
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(io.NewSectionReader(f, off+walHeaderLen, int64(n)), payload); err != nil {
			return off, nil // short payload: torn tail
		}
		if Checksum(payload) != crc {
			return off, nil // checksum mismatch: torn frame
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				return off, fmt.Errorf("btree: wal replay at offset %d: %w", off, err)
			}
		}
		off += walHeaderLen + int64(n)
	}
}

// Append writes one record and, unless the log runs NoSync, makes it
// durable before returning. The frame is a single WriteAt, so a crash
// mid-append leaves a tail that replay discards whole.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > maxWALRecord {
		return fmt.Errorf("btree: wal record of %d bytes exceeds the %d limit", len(payload), maxWALRecord)
	}
	frame := make([]byte, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], Checksum(payload))
	copy(frame[walHeaderLen:], payload)
	if _, err := w.f.WriteAt(frame, w.off); err != nil {
		return fmt.Errorf("btree: wal append: %w", err)
	}
	w.off += int64(len(frame))
	return w.Sync()
}

// Sync makes every appended record durable (a no-op under NoSync).
func (w *WAL) Sync() error {
	if w.noSync {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("btree: wal sync: %w", err)
	}
	return nil
}

// Size returns the log length in bytes (0 means no records).
func (w *WAL) Size() int64 { return w.off }

// Reset discards every record — the caller has flushed their effects to a
// durable home (tree pages plus a committed meta slot) and the log must
// not replay them onto a future state. The truncation is synced (unless
// NoSync) so a crash cannot resurrect the old records.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("btree: wal reset: %w", err)
	}
	w.off = 0
	return w.Sync()
}

// Close releases the underlying file without an implicit sync: callers
// that need durability sync through Append/Reset already.
func (w *WAL) Close() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("btree: wal close: %w", err)
	}
	return nil
}
