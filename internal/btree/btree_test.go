package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func newTempTree(t *testing.T, opts Options) (*Tree, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "idx.bt")
	tr, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr, path
}

func TestPutGetSmall(t *testing.T) {
	tr, _ := newTempTree(t, Options{})
	defer tr.Close()
	if err := tr.Put(42, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get(42)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := tr.Get(43); err != ErrNotFound {
		t.Errorf("missing key: err = %v, want ErrNotFound", err)
	}
	if tr.Count() != 1 {
		t.Errorf("Count = %d, want 1", tr.Count())
	}
}

func TestPutReplace(t *testing.T) {
	tr, _ := newTempTree(t, Options{})
	defer tr.Close()
	for i := 0; i < 3; i++ {
		if err := tr.Put(7, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.Get(7)
	if err != nil || string(got) != "v2" {
		t.Fatalf("Get = %q, %v, want v2", got, err)
	}
	if tr.Count() != 1 {
		t.Errorf("Count = %d after replaces, want 1", tr.Count())
	}
}

func TestManyKeysSplitsAndPersistence(t *testing.T) {
	tr, path := newTempTree(t, Options{CachePages: 16})
	const n = 5000
	rng := rand.New(rand.NewSource(5))
	keys := rng.Perm(n)
	for _, k := range keys {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], uint64(k*3))
		if err := tr.Put(uint64(k), v[:]); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != n {
		t.Fatalf("Count = %d, want %d", tr.Count(), n)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify everything survived.
	tr2, err := Open(path, Options{CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Count() != n {
		t.Fatalf("reopened Count = %d, want %d", tr2.Count(), n)
	}
	for k := 0; k < n; k++ {
		v, err := tr2.Get(uint64(k))
		if err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		if binary.LittleEndian.Uint64(v) != uint64(k*3) {
			t.Fatalf("Get(%d) value mismatch", k)
		}
	}
}

func TestOverflowValues(t *testing.T) {
	tr, path := newTempTree(t, Options{})
	big := make([]byte, 3*PageSize+123) // forces a 4-page overflow chain
	rand.New(rand.NewSource(9)).Read(big)
	if err := tr.Put(1, big); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get(1)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("overflow round trip failed: err=%v equal=%v", err, bytes.Equal(got, big))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	got, err = tr2.Get(1)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatal("overflow value lost after reopen")
	}
}

func TestOverflowReplaceRecyclesPages(t *testing.T) {
	tr, _ := newTempTree(t, Options{})
	defer tr.Close()
	big := make([]byte, 2*PageSize)
	// Put writes the fresh chain before releasing the old one, and freed
	// pages become allocatable only at the next commit (crash safety), so
	// the file stabilizes at ~2x the chain size after a put+sync cycle;
	// after that it must not grow at all.
	for i := 0; i < 2; i++ {
		if err := tr.Put(1, big); err != nil {
			t.Fatal(err)
		}
		if err := tr.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	steady := tr.numPages
	for i := 0; i < 20; i++ {
		if err := tr.Put(1, big); err != nil {
			t.Fatal(err)
		}
		if err := tr.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if tr.numPages != steady {
		t.Errorf("file grew from %d to %d pages across replaces; free list not working",
			steady, tr.numPages)
	}
}

func TestDelete(t *testing.T) {
	tr, _ := newTempTree(t, Options{})
	defer tr.Close()
	for k := uint64(0); k < 100; k++ {
		if err := tr.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Delete(50); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get(50); err != ErrNotFound {
		t.Error("deleted key still present")
	}
	if err := tr.Delete(50); err != ErrNotFound {
		t.Error("double delete should report ErrNotFound")
	}
	if tr.Count() != 99 {
		t.Errorf("Count = %d, want 99", tr.Count())
	}
	// Neighbours unaffected.
	if _, err := tr.Get(49); err != nil {
		t.Error("neighbour key lost")
	}
}

func TestScanRange(t *testing.T) {
	tr, _ := newTempTree(t, Options{CachePages: 8})
	defer tr.Close()
	for k := uint64(0); k < 1000; k += 2 { // even keys only
		if err := tr.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := tr.Scan(101, 199, func(k uint64, v []byte) bool {
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []uint64
	for k := uint64(102); k <= 198; k += 2 {
		want = append(want, k)
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr, _ := newTempTree(t, Options{CachePages: 8})
	defer tr.Close()
	for k := uint64(0); k < 2000; k++ {
		if err := tr.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	err := tr.Scan(0, 1999, func(k uint64, v []byte) bool {
		calls++
		return calls < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("early stop: %d calls, want 5", calls)
	}
}

func TestMatchesMapModel(t *testing.T) {
	// Property test: a random interleaving of Put/Delete/Get behaves like
	// a map[uint64][]byte.
	f := func(seed int64) bool {
		tr, _ := newTempTree(t, Options{CachePages: 8})
		defer tr.Close()
		rng := rand.New(rand.NewSource(seed))
		model := map[uint64][]byte{}
		for op := 0; op < 400; op++ {
			k := uint64(rng.Intn(60))
			switch rng.Intn(3) {
			case 0: // put
				v := make([]byte, rng.Intn(50))
				rng.Read(v)
				if tr.Put(k, v) != nil {
					return false
				}
				model[k] = v
			case 1: // delete
				err := tr.Delete(k)
				_, exists := model[k]
				if exists != (err == nil) {
					return false
				}
				delete(model, k)
			case 2: // get
				v, err := tr.Get(k)
				want, exists := model[k]
				if exists != (err == nil) {
					return false
				}
				if exists && !bytes.Equal(v, want) {
					return false
				}
			}
		}
		// Final full-scan comparison.
		var scanned []uint64
		if err := tr.Scan(0, ^uint64(0), func(k uint64, v []byte) bool {
			scanned = append(scanned, k)
			if !bytes.Equal(v, model[k]) {
				scanned = nil
				return false
			}
			return true
		}); err != nil {
			return false
		}
		if len(scanned) != len(model) {
			return false
		}
		var wantKeys []uint64
		for k := range model {
			wantKeys = append(wantKeys, k)
		}
		sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
		for i := range wantKeys {
			if scanned[i] != wantKeys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.bt")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xAB}, 2*PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Error("opening garbage succeeded")
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.bt")
	if err := os.WriteFile(path, []byte("tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Error("opening truncated file succeeded")
	}
}

func TestCorruptPageDetected(t *testing.T) {
	tr, path := newTempTree(t, Options{CachePages: 8})
	for k := uint64(0); k < 3000; k++ {
		if err := tr.Put(k, []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// Smash a non-header page with an invalid type byte.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(2)*PageSize); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tr2, err := Open(path, Options{CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	sawError := false
	for k := uint64(0); k < 3000; k++ {
		if _, err := tr2.Get(k); err != nil && err != ErrNotFound {
			sawError = true
			break
		}
	}
	if !sawError {
		t.Error("no corruption error surfaced after smashing a page")
	}
}

func TestTinyCacheStillCorrect(t *testing.T) {
	// A pathologically small cache forces constant eviction/reload.
	tr, _ := newTempTree(t, Options{CachePages: 1}) // clamped to 8
	defer tr.Close()
	const n = 2000
	for k := 0; k < n; k++ {
		if err := tr.Put(uint64(k), []byte{byte(k), byte(k >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < n; k++ {
		v, err := tr.Get(uint64(k))
		if err != nil || v[0] != byte(k) || v[1] != byte(k>>8) {
			t.Fatalf("Get(%d) = %v, %v", k, v, err)
		}
	}
}

func TestCacheStats(t *testing.T) {
	tr, path := newTempTree(t, Options{CachePages: 8})
	const n = 2000
	val := bytes.Repeat([]byte{0xAB}, 200) // ~15 entries per leaf → many pages
	for k := 0; k < n; k++ {
		if err := tr.Put(uint64(k), val); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < n; k++ { // cold reads through the tiny cache
		if _, err := tr.Get(uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.CacheStats()
	if st.Hits == 0 || st.Misses == 0 || st.Evictions == 0 {
		t.Errorf("after %d inserts through an 8-page cache, stats = %+v; want all counters nonzero", n, st)
	}
	if st.Resident > 8 {
		t.Errorf("resident pages %d exceed the cache cap", st.Resident)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(path, Options{CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if st := tr2.CacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("fresh open should start with zero counters, got %+v", st)
	}
	if _, err := tr2.Get(0); err != nil {
		t.Fatal(err)
	}
	if st := tr2.CacheStats(); st.Misses == 0 {
		t.Errorf("cold Get should count at least one miss, got %+v", st)
	}
}
