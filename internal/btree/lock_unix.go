//go:build unix

package btree

import (
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory lock on f, failing immediately when
// another Tree — in this process or any other — already holds one. The
// lock lives on the open file description, so two Opens of the same path
// within one process conflict just like two processes do.
func lockFile(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("btree: %s is already open by another tree (flock: %w)", f.Name(), err)
	}
	return nil
}

// unlockFile releases the advisory lock; closing the descriptor releases
// it too, so errors here are ignorable.
func unlockFile(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
