package iofault

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestMemFileReadWrite(t *testing.T) {
	m := NewMemFile()
	if _, err := m.WriteAt([]byte("hello"), 3); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 8 {
		t.Fatalf("Size = %d, want 8", m.Size())
	}
	buf := make([]byte, 5)
	if _, err := m.ReadAt(buf, 3); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("ReadAt = %q", buf)
	}
	// Reads past the end report EOF like *os.File.
	if n, err := m.ReadAt(buf, 6); err != io.EOF || n != 2 {
		t.Fatalf("short read = %d, %v; want 2, EOF", n, err)
	}
	if _, err := m.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("read past end: %v, want EOF", err)
	}
}

func TestMemFileCrashDropsUnsynced(t *testing.T) {
	m := NewMemFile()
	if _, err := m.WriteAt([]byte("durable"), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteAt([]byte("VOLATILE"), 0); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	buf := make([]byte, 7)
	if _, err := m.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "durable" {
		t.Fatalf("after crash: %q, want the synced image", buf)
	}
	if m.Size() != 7 {
		t.Fatalf("Size after crash = %d, want 7", m.Size())
	}
}

func TestMemFileTruncate(t *testing.T) {
	m := NewMemFileFrom([]byte("0123456789"))
	if err := m.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 4 {
		t.Fatalf("Size = %d, want 4", m.Size())
	}
	if err := m.Truncate(6); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := m.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("0123\x00\x00")) {
		t.Fatalf("grown image = %q", buf)
	}
}

func TestInjectorFailNth(t *testing.T) {
	m := NewMemFileFrom(make([]byte, 64))
	in := Wrap(m, Plan{FailRead: 2, FailWrite: 3})
	buf := make([]byte, 8)
	if _, err := in.ReadAt(buf, 0); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if _, err := in.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2: %v, want ErrInjected", err)
	}
	if _, err := in.ReadAt(buf, 0); err != nil {
		t.Fatalf("read 3 (fault is transient): %v", err)
	}
	for i := 1; i <= 4; i++ {
		_, err := in.WriteAt([]byte{byte(i)}, int64(i))
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write 3: %v, want ErrInjected", err)
			}
		} else if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// The failed write must not have been applied.
	if _, err := in.ReadAt(buf[:4], 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:4], []byte{1, 2, 0, 4}) {
		t.Fatalf("image after failed write = %v", buf[:4])
	}
}

func TestInjectorTornWrite(t *testing.T) {
	m := NewMemFile()
	in := Wrap(m, Plan{TornWrite: 1, TornBytes: 3})
	n, err := in.WriteAt([]byte("abcdef"), 0)
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("torn write = %d, %v", n, err)
	}
	if !in.Crashed() {
		t.Fatal("torn write should crash the file")
	}
	if _, err := in.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v, want ErrCrashed", err)
	}
	if _, err := in.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v, want ErrCrashed", err)
	}
	if err := in.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v, want ErrCrashed", err)
	}
	// Only the torn prefix reached the underlying image.
	if got := m.Snapshot(); !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("underlying image = %q, want the 3-byte prefix", got)
	}
}

func TestInjectorCrashAfterWrites(t *testing.T) {
	m := NewMemFile()
	in := Wrap(m, Plan{CrashAfterWrites: 2})
	for i := 0; i < 2; i++ {
		if _, err := in.WriteAt([]byte{1}, int64(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := in.WriteAt([]byte{1}, 2); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write 3: %v, want ErrCrashed", err)
	}
	if got := m.Size(); got != 2 {
		t.Fatalf("image size = %d, want 2 (third write dropped)", got)
	}
}

func TestInjectorDropSyncs(t *testing.T) {
	m := NewMemFile()
	in := Wrap(m, Plan{DropSyncAfter: 1})
	if _, err := in.WriteAt([]byte("one"), 0); err != nil {
		t.Fatal(err)
	}
	if err := in.Sync(); err != nil { // forwarded
		t.Fatal(err)
	}
	if _, err := in.WriteAt([]byte("TWO"), 0); err != nil {
		t.Fatal(err)
	}
	if err := in.Sync(); err != nil { // dropped, still reports success
		t.Fatal(err)
	}
	m.Crash()
	if got := m.Snapshot(); !bytes.Equal(got, []byte("one")) {
		t.Fatalf("durable image = %q, want %q (second sync was dropped)", got, "one")
	}
	if _, _, syncs := in.Counts(); syncs != 2 {
		t.Fatalf("sync count = %d, want 2", syncs)
	}
}
