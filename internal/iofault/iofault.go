// Package iofault abstracts the file surface the storage layer needs and
// provides fault-injecting implementations of it, so crash-safety can be
// tested deterministically: a MemFile models a disk with an explicit
// page-cache/durable split (only synced bytes survive Crash), and an
// Injector wraps any File to fail the Nth read or write, tear a write
// mid-page, or silently drop fsyncs before a simulated power loss.
//
// The btree package opens trees over this File interface (*os.File
// implements it), which is what lets the crash kill-point suites replay a
// build, cut it at an arbitrary write, and reopen the frozen byte image.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// File is the I/O surface a disk-backed tree needs. *os.File implements
// it; MemFile and Injector implement it for tests.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync makes previously written bytes durable (fsync).
	Sync() error
	// Truncate resizes the file.
	Truncate(size int64) error
	// Close releases the file.
	Close() error
}

// ErrInjected marks a fault delivered by an Injector's plan (a failed or
// torn read/write). Use errors.Is to recognize it.
var ErrInjected = errors.New("iofault: injected fault")

// ErrCrashed is returned by every operation on an Injector after its plan
// crashed the file (torn write or write-count crash point). Use errors.Is
// to recognize it.
var ErrCrashed = errors.New("iofault: file crashed")

// MemFile is an in-memory File with crash semantics: writes land in a
// volatile image (the OS page cache), Sync copies the volatile image to
// the durable one (the platter), and Crash discards everything volatile.
// Reads observe the volatile image, exactly like reads through a page
// cache. A MemFile is safe for concurrent use.
type MemFile struct {
	mu      sync.Mutex
	volatil []byte
	durable []byte
}

// NewMemFile returns an empty MemFile.
func NewMemFile() *MemFile { return &MemFile{} }

// NewMemFileFrom returns a MemFile whose volatile and durable images both
// hold a copy of img — the file a process finds on disk after a reboot.
func NewMemFileFrom(img []byte) *MemFile {
	return &MemFile{
		volatil: append([]byte(nil), img...),
		durable: append([]byte(nil), img...),
	}
}

// ReadAt implements io.ReaderAt over the volatile image.
func (m *MemFile) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("iofault: negative read offset %d", off)
	}
	if off >= int64(len(m.volatil)) {
		return 0, io.EOF
	}
	n := copy(p, m.volatil[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the volatile image as needed.
func (m *MemFile) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("iofault: negative write offset %d", off)
	}
	if end := off + int64(len(p)); end > int64(len(m.volatil)) {
		grown := make([]byte, end)
		copy(grown, m.volatil)
		m.volatil = grown
	}
	return copy(m.volatil[off:], p), nil
}

// Sync makes the volatile image durable.
func (m *MemFile) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.durable = append(m.durable[:0], m.volatil...)
	return nil
}

// Truncate resizes the volatile image.
func (m *MemFile) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("iofault: negative truncate size %d", size)
	}
	if size <= int64(len(m.volatil)) {
		m.volatil = m.volatil[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, m.volatil)
	m.volatil = grown
	return nil
}

// Close is a no-op; the images stay inspectable after Close so a test can
// reopen the post-crash state.
func (m *MemFile) Close() error { return nil }

// Crash simulates power loss: every byte not covered by a completed Sync
// is discarded and the volatile image reverts to the durable one.
func (m *MemFile) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.volatil = append(m.volatil[:0], m.durable...)
}

// Snapshot returns a copy of the volatile image — the bytes a crash with
// an intact page cache (write-through model) would leave behind.
func (m *MemFile) Snapshot() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.volatil...)
}

// DurableSnapshot returns a copy of the durable image — the bytes a crash
// that loses the page cache leaves behind.
func (m *MemFile) DurableSnapshot() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.durable...)
}

// Size returns the volatile image length.
func (m *MemFile) Size() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.volatil))
}

// Plan scripts the faults an Injector delivers. Counters are 1-based
// operation indices; zero disables that fault.
type Plan struct {
	// FailRead fails the Nth ReadAt with ErrInjected (transient: later
	// reads succeed).
	FailRead int
	// FailWrite fails the Nth WriteAt with ErrInjected without applying
	// it (transient: later writes succeed).
	FailWrite int
	// TornWrite applies only a prefix of the Nth WriteAt (TornBytes
	// bytes, clamped to len-1) and then crashes the file: the classic
	// torn page at power loss.
	TornWrite int
	// TornBytes is the prefix length a torn write persists; <= 0 selects
	// half the buffer.
	TornBytes int
	// CrashAfterWrites crashes the file once that many WriteAt calls have
	// been applied: the next write (and every operation after it) fails
	// with ErrCrashed and changes nothing.
	CrashAfterWrites int
	// DropSyncAfter makes every Sync past the first N report success
	// without persisting anything (a lying disk); 0 with DropAllSyncs
	// false forwards every Sync.
	DropSyncAfter int
	// DropAllSyncs makes every Sync a silent no-op.
	DropAllSyncs bool
}

// Injector wraps a File and delivers the faults its Plan scripts. It is
// safe for concurrent use; operation indices are assigned under its lock.
type Injector struct {
	mu      sync.Mutex
	f       File
	plan    Plan
	reads   int
	writes  int
	syncs   int
	crashed bool
}

// Wrap returns an Injector delivering plan over f.
func Wrap(f File, plan Plan) *Injector {
	return &Injector{f: f, plan: plan}
}

// Counts reports how many reads, writes and syncs reached the injector
// (including faulted ones).
func (in *Injector) Counts() (reads, writes, syncs int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.reads, in.writes, in.syncs
}

// Crashed reports whether the plan has crashed the file.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// ReadAt implements File.
func (in *Injector) ReadAt(p []byte, off int64) (int, error) {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return 0, ErrCrashed
	}
	in.reads++
	fail := in.plan.FailRead > 0 && in.reads == in.plan.FailRead
	in.mu.Unlock()
	if fail {
		return 0, fmt.Errorf("%w: read %d", ErrInjected, in.plan.FailRead)
	}
	return in.f.ReadAt(p, off)
}

// WriteAt implements File.
func (in *Injector) WriteAt(p []byte, off int64) (int, error) {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return 0, ErrCrashed
	}
	if in.plan.CrashAfterWrites > 0 && in.writes >= in.plan.CrashAfterWrites {
		in.crashed = true
		in.mu.Unlock()
		return 0, ErrCrashed
	}
	in.writes++
	w := in.writes
	in.mu.Unlock()
	switch {
	case in.plan.FailWrite > 0 && w == in.plan.FailWrite:
		return 0, fmt.Errorf("%w: write %d", ErrInjected, w)
	case in.plan.TornWrite > 0 && w == in.plan.TornWrite:
		n := in.plan.TornBytes
		if n <= 0 {
			n = len(p) / 2
		}
		if n >= len(p) {
			n = len(p) - 1
		}
		if n > 0 {
			if _, err := in.f.WriteAt(p[:n], off); err != nil {
				return 0, err
			}
		}
		in.mu.Lock()
		in.crashed = true
		in.mu.Unlock()
		return n, fmt.Errorf("%w: torn write %d (%d/%d bytes)", ErrInjected, w, n, len(p))
	}
	return in.f.WriteAt(p, off)
}

// Sync implements File.
func (in *Injector) Sync() error {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return ErrCrashed
	}
	in.syncs++
	drop := in.plan.DropAllSyncs || (in.plan.DropSyncAfter > 0 && in.syncs > in.plan.DropSyncAfter)
	in.mu.Unlock()
	if drop {
		return nil // the lying disk reports success
	}
	return in.f.Sync()
}

// Truncate implements File.
func (in *Injector) Truncate(size int64) error {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return ErrCrashed
	}
	in.mu.Unlock()
	return in.f.Truncate(size)
}

// Close implements File. Closing a crashed file fails: the simulated
// process cannot flush anything after power loss.
func (in *Injector) Close() error {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return ErrCrashed
	}
	in.mu.Unlock()
	return in.f.Close()
}
