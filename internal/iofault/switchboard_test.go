package iofault

import (
	"errors"
	"testing"
)

func TestSwitchboardGlobalWriteCounter(t *testing.T) {
	sb := NewSwitchboard()
	a := sb.Open("a")
	b := sb.Open("b")
	sb.SetPlan(Plan{CrashAfterWrites: 2})
	if _, err := a.WriteAt([]byte("one"), 0); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := b.WriteAt([]byte("two"), 0); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	// The third write — back on file a — must hit the global kill point.
	if _, err := a.WriteAt([]byte("three"), 3); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write 3 error = %v, want ErrCrashed", err)
	}
	if !sb.Crashed() {
		t.Fatal("board not marked crashed")
	}
	// Every file is dead after the crash.
	if _, err := b.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read error = %v, want ErrCrashed", err)
	}
	if err := b.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync error = %v, want ErrCrashed", err)
	}
}

func TestSwitchboardTruncateIsWriteBoundary(t *testing.T) {
	sb := NewSwitchboard()
	f := sb.Open("wal")
	if _, err := f.WriteAt([]byte("record"), 0); err != nil {
		t.Fatal(err)
	}
	sb.SetPlan(Plan{CrashAfterWrites: 1})
	if _, err := f.WriteAt([]byte("x"), 6); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("truncate error = %v, want ErrCrashed (truncate counts as a write)", err)
	}
}

func TestSwitchboardFork(t *testing.T) {
	sb := NewSwitchboard()
	f := sb.Open("data")
	if _, err := f.WriteAt([]byte("durable"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("volatile"), 7); err != nil {
		t.Fatal(err)
	}

	// Power loss: only synced bytes survive.
	powerLoss := sb.Fork(true)
	buf := make([]byte, 32)
	n, _ := powerLoss.Open("data").ReadAt(buf, 0)
	if string(buf[:n]) != "durable" {
		t.Fatalf("durable fork read %q, want %q", buf[:n], "durable")
	}

	// Process kill: the page cache is intact.
	kill := sb.Fork(false)
	n, _ = kill.Open("data").ReadAt(buf, 0)
	if string(buf[:n]) != "durablevolatile" {
		t.Fatalf("volatile fork read %q, want %q", buf[:n], "durablevolatile")
	}

	// Forks are fault-free and independent of the original.
	sb.SetPlan(Plan{CrashAfterWrites: 1})
	if _, err := kill.Open("data").WriteAt([]byte("y"), 0); err != nil {
		t.Fatalf("fork write: %v", err)
	}
}

func TestSwitchboardTornWrite(t *testing.T) {
	sb := NewSwitchboard()
	f := sb.Open("page")
	sb.SetPlan(Plan{TornWrite: 1, TornBytes: 3})
	if _, err := f.WriteAt([]byte("abcdef"), 0); !errors.Is(err, ErrInjected) {
		t.Fatal("torn write not reported injected")
	}
	if !sb.Crashed() {
		t.Fatal("torn write must crash the board")
	}
	img := sb.Fork(false)
	buf := make([]byte, 16)
	n, _ := img.Open("page").ReadAt(buf, 0)
	if string(buf[:n]) != "abc" {
		t.Fatalf("torn write persisted %q, want %q", buf[:n], "abc")
	}
}

func TestSwitchboardDroppedSyncs(t *testing.T) {
	sb := NewSwitchboard()
	f := sb.Open("data")
	sb.SetPlan(Plan{DropAllSyncs: true})
	if _, err := f.WriteAt([]byte("never-durable"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err) // the lying disk reports success
	}
	powerLoss := sb.Fork(true)
	if _, err := powerLoss.Open("data").ReadAt(make([]byte, 1), 0); err == nil {
		t.Fatal("dropped sync still made bytes durable")
	}
}

func TestSwitchboardRemoveAndNames(t *testing.T) {
	sb := NewSwitchboard()
	sb.Open("b")
	sb.Open("a")
	if got := sb.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names = %v", got)
	}
	if err := sb.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if sb.Exists("a") || !sb.Exists("b") {
		t.Fatal("Remove removed the wrong file")
	}
	if err := sb.Remove("a"); err == nil {
		t.Fatal("Remove of a missing file must fail")
	}
}
