package iofault

import (
	"fmt"
	"sort"
	"sync"
)

// Switchboard is a named collection of MemFiles behind one shared fault
// Plan: its read/write/sync counters are global across every file, so a
// single "crash after N writes" kill point can cut a multi-file commit
// protocol — WAL append on one file, tree page flushes on others, a meta
// slot on a third — at any write boundary, which a per-file Injector
// cannot express. It models one process over one disk: once the plan
// crashes the board, every operation on every file fails with ErrCrashed.
//
// A Switchboard is safe for concurrent use; operation indices are assigned
// under its lock, so a concurrent workload still gets a total order of
// write boundaries (the order is schedule-dependent, which is why the
// crash suites drive their scripted workloads serially).
type Switchboard struct {
	mu      sync.Mutex
	plan    Plan
	files   map[string]*MemFile
	reads   int
	writes  int
	syncs   int
	crashed bool
}

// NewSwitchboard returns an empty board with a zero (fault-free) plan.
func NewSwitchboard() *Switchboard {
	return &Switchboard{files: make(map[string]*MemFile)}
}

// SetPlan installs a fault plan and resets the operation counters and the
// crashed flag, so one board can replay a workload under successive plans.
func (sb *Switchboard) SetPlan(plan Plan) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.plan = plan
	sb.reads, sb.writes, sb.syncs = 0, 0, 0
	sb.crashed = false
}

// Counts reports the global operation counters (including faulted ops).
func (sb *Switchboard) Counts() (reads, writes, syncs int) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.reads, sb.writes, sb.syncs
}

// Crashed reports whether the plan has crashed the board.
func (sb *Switchboard) Crashed() bool {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.crashed
}

// Open returns the named file, creating it empty if needed. The handle
// routes every operation through the board's plan.
func (sb *Switchboard) Open(name string) File {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	m, ok := sb.files[name]
	if !ok {
		m = NewMemFile()
		sb.files[name] = m
	}
	return &boardFile{sb: sb, m: m}
}

// Exists reports whether the named file has been created.
func (sb *Switchboard) Exists(name string) bool {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	_, ok := sb.files[name]
	return ok
}

// Remove deletes the named file from the board.
func (sb *Switchboard) Remove(name string) error {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if _, ok := sb.files[name]; !ok {
		return fmt.Errorf("iofault: remove %s: no such file", name)
	}
	delete(sb.files, name)
	return nil
}

// Names returns the board's file names, sorted.
func (sb *Switchboard) Names() []string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	out := make([]string, 0, len(sb.files))
	for name := range sb.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Fork returns a fresh fault-free board holding copies of every file — the
// disk a rebooted process finds. durable true models power loss (only
// synced bytes survive, MemFile.DurableSnapshot); false models a process
// kill with the page cache intact (MemFile.Snapshot). The original board
// is left untouched, so one crashed run can be reopened both ways.
func (sb *Switchboard) Fork(durable bool) *Switchboard {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	out := NewSwitchboard()
	for name, m := range sb.files {
		var img []byte
		if durable {
			img = m.DurableSnapshot()
		} else {
			img = m.Snapshot()
		}
		out.files[name] = NewMemFileFrom(img)
	}
	return out
}

// boardFile is a handle on one board file; the board applies the shared
// plan before forwarding to the MemFile.
type boardFile struct {
	sb *Switchboard
	m  *MemFile
}

func (f *boardFile) ReadAt(p []byte, off int64) (int, error) {
	sb := f.sb
	sb.mu.Lock()
	if sb.crashed {
		sb.mu.Unlock()
		return 0, ErrCrashed
	}
	sb.reads++
	fail := sb.plan.FailRead > 0 && sb.reads == sb.plan.FailRead
	sb.mu.Unlock()
	if fail {
		return 0, fmt.Errorf("%w: read %d", ErrInjected, sb.plan.FailRead)
	}
	return f.m.ReadAt(p, off)
}

func (f *boardFile) WriteAt(p []byte, off int64) (int, error) {
	sb := f.sb
	sb.mu.Lock()
	if sb.crashed {
		sb.mu.Unlock()
		return 0, ErrCrashed
	}
	if sb.plan.CrashAfterWrites > 0 && sb.writes >= sb.plan.CrashAfterWrites {
		sb.crashed = true
		sb.mu.Unlock()
		return 0, ErrCrashed
	}
	sb.writes++
	w := sb.writes
	sb.mu.Unlock()
	switch {
	case sb.plan.FailWrite > 0 && w == sb.plan.FailWrite:
		return 0, fmt.Errorf("%w: write %d", ErrInjected, w)
	case sb.plan.TornWrite > 0 && w == sb.plan.TornWrite:
		n := sb.plan.TornBytes
		if n <= 0 {
			n = len(p) / 2
		}
		if n >= len(p) {
			n = len(p) - 1
		}
		if n > 0 {
			if _, err := f.m.WriteAt(p[:n], off); err != nil {
				return 0, err
			}
		}
		sb.mu.Lock()
		sb.crashed = true
		sb.mu.Unlock()
		return n, fmt.Errorf("%w: torn write %d (%d/%d bytes)", ErrInjected, w, n, len(p))
	}
	return f.m.WriteAt(p, off)
}

func (f *boardFile) Sync() error {
	sb := f.sb
	sb.mu.Lock()
	if sb.crashed {
		sb.mu.Unlock()
		return ErrCrashed
	}
	sb.syncs++
	drop := sb.plan.DropAllSyncs || (sb.plan.DropSyncAfter > 0 && sb.syncs > sb.plan.DropSyncAfter)
	sb.mu.Unlock()
	if drop {
		return nil // the lying disk reports success
	}
	return f.m.Sync()
}

// Truncate counts as a write boundary: WAL resets and torn-tail trims
// mutate on-disk state, so a kill point must be able to land between a
// flush and its truncate. A torn-write index landing on a truncate crashes
// without applying it (a truncate has no partial form).
func (f *boardFile) Truncate(size int64) error {
	sb := f.sb
	sb.mu.Lock()
	if sb.crashed {
		sb.mu.Unlock()
		return ErrCrashed
	}
	if sb.plan.CrashAfterWrites > 0 && sb.writes >= sb.plan.CrashAfterWrites {
		sb.crashed = true
		sb.mu.Unlock()
		return ErrCrashed
	}
	sb.writes++
	w := sb.writes
	fail := sb.plan.FailWrite > 0 && w == sb.plan.FailWrite
	torn := sb.plan.TornWrite > 0 && w == sb.plan.TornWrite
	if torn {
		sb.crashed = true
	}
	sb.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: write %d", ErrInjected, w)
	}
	if torn {
		return fmt.Errorf("%w: torn write %d (truncate)", ErrInjected, w)
	}
	return f.m.Truncate(size)
}

func (f *boardFile) Close() error {
	sb := f.sb
	sb.mu.Lock()
	if sb.crashed {
		sb.mu.Unlock()
		return ErrCrashed
	}
	sb.mu.Unlock()
	return f.m.Close()
}
