package container

// MaxAddSegTree is a segment tree over n leaves supporting range addition
// and whole-tree maximum queries, with lazy propagation folded into the
// classic "max of children + pending add" formulation. It is the core of
// the MaxRS sweep-line baseline (Choi et al., PVLDB'12): each horizontal
// slab is a leaf, inserting/removing a point adds ±w to a contiguous range
// of slabs, and the best rectangle position at any sweep x is the tree max.
type MaxAddSegTree struct {
	n   int
	max []float64 // max over the subtree, including this node's pending add
	add []float64 // pending addition applying to the whole subtree
}

// NewMaxAddSegTree returns a tree over leaves 0..n-1, all zero.
func NewMaxAddSegTree(n int) *MaxAddSegTree {
	if n < 1 {
		n = 1
	}
	return &MaxAddSegTree{
		n:   n,
		max: make([]float64, 4*n),
		add: make([]float64, 4*n),
	}
}

// Len returns the number of leaves.
func (t *MaxAddSegTree) Len() int { return t.n }

// Add adds v to every leaf in [lo, hi] (inclusive, clamped to the domain).
func (t *MaxAddSegTree) Add(lo, hi int, v float64) {
	if lo < 0 {
		lo = 0
	}
	if hi >= t.n {
		hi = t.n - 1
	}
	if lo > hi {
		return
	}
	t.update(1, 0, t.n-1, lo, hi, v)
}

// Max returns the maximum leaf value.
func (t *MaxAddSegTree) Max() float64 { return t.max[1] }

// MaxIndex returns a leaf index attaining the maximum value.
func (t *MaxAddSegTree) MaxIndex() int {
	node, lo, hi := 1, 0, t.n-1
	var pending float64
	for lo < hi {
		pending += t.add[node]
		mid := (lo + hi) / 2
		l, r := 2*node, 2*node+1
		if t.max[l]+pending >= t.max[r]+pending {
			node, hi = l, mid
		} else {
			node, lo = r, mid+1
		}
	}
	return lo
}

func (t *MaxAddSegTree) update(node, lo, hi, qlo, qhi int, v float64) {
	if qlo <= lo && hi <= qhi {
		t.max[node] += v
		t.add[node] += v
		return
	}
	mid := (lo + hi) / 2
	if qlo <= mid {
		t.update(2*node, lo, mid, qlo, qhi, v)
	}
	if qhi > mid {
		t.update(2*node+1, mid+1, hi, qlo, qhi, v)
	}
	t.max[node] = t.add[node] + maxf(t.max[2*node], t.max[2*node+1])
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
