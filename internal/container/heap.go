// Package container provides the small generic data structures shared by
// the substrates: a binary min-heap, a disjoint-set forest (union–find),
// and a max segment tree with range addition (used by the MaxRS baseline).
package container

// Heap is a binary min-heap ordered by the provided less function.
// The zero value is not usable; construct with NewHeap, or embed a Heap
// value in pooled scratch state and call Init once before first use.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Init prepares a zero-value (typically embedded) heap: it installs the
// ordering and empties the heap, keeping any backing storage. Calling Init
// on an already-initialized heap is equivalent to Reset with a new order.
func (h *Heap[T]) Init(less func(a, b T) bool) {
	h.less = less
	h.Reset()
}

// Reset empties the heap while keeping its backing storage, so a pooled
// heap can serve many rounds without reallocating. Elements are zeroed to
// release any references they hold.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

// Len returns the number of elements in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push inserts v into the heap.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Peek returns the minimum element without removing it.
// The second return is false when the heap is empty.
func (h *Heap[T]) Peek() (T, bool) {
	var zero T
	if len(h.items) == 0 {
		return zero, false
	}
	return h.items[0], true
}

// Pop removes and returns the minimum element.
// The second return is false when the heap is empty.
func (h *Heap[T]) Pop() (T, bool) {
	var zero T
	n := len(h.items)
	if n == 0 {
		return zero, false
	}
	top := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = zero
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top, true
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
