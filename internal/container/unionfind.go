package container

// UnionFind is a disjoint-set forest with union by rank and path compression.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// NewUnionFind returns a forest of n singleton sets labelled 0..n-1.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{}
	uf.Reset(n)
	return uf
}

// Reset re-initializes the forest to n singleton sets in place, reusing the
// backing arrays once they have grown to the workload's high-water mark
// (zero value usable: Reset on a zero UnionFind behaves like NewUnionFind).
func (uf *UnionFind) Reset(n int) {
	if cap(uf.parent) < n {
		uf.parent = make([]int32, n)
		uf.rank = make([]int8, n)
	}
	uf.parent = uf.parent[:n]
	uf.rank = uf.rank[:n]
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.rank[i] = 0
	}
	uf.count = n
}

// Find returns the canonical representative of x's set.
func (uf *UnionFind) Find(x int) int {
	root := int32(x)
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	// Path compression.
	for int32(x) != root {
		next := uf.parent[x]
		uf.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets containing x and y and reports whether they were
// previously distinct.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = int32(rx)
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Count returns the current number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }
