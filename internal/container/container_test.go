package container

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrdering(t *testing.T) {
	h := NewHeap[int](func(a, b int) bool { return a < b })
	in := []int{5, 1, 9, 3, 3, -2, 7}
	for _, v := range in {
		h.Push(v)
	}
	if h.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(in))
	}
	want := append([]int(nil), in...)
	sort.Ints(want)
	for i, w := range want {
		got, ok := h.Pop()
		if !ok || got != w {
			t.Fatalf("pop %d = %d,%v want %d", i, got, ok, w)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Error("pop on empty heap should report false")
	}
}

func TestHeapPeek(t *testing.T) {
	h := NewHeap[string](func(a, b string) bool { return a < b })
	if _, ok := h.Peek(); ok {
		t.Error("peek on empty heap should report false")
	}
	h.Push("b")
	h.Push("a")
	if v, ok := h.Peek(); !ok || v != "a" {
		t.Errorf("Peek = %q,%v", v, ok)
	}
	if h.Len() != 2 {
		t.Error("Peek must not remove")
	}
}

func TestHeapSortsArbitraryInput(t *testing.T) {
	f := func(in []int16) bool {
		h := NewHeap[int16](func(a, b int16) bool { return a < b })
		for _, v := range in {
			h.Push(v)
		}
		prev := int16(-32768)
		for h.Len() > 0 {
			v, _ := h.Pop()
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionFindBasic(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Count() != 6 {
		t.Fatalf("initial count = %d", uf.Count())
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) || !uf.Union(1, 2) {
		t.Fatal("fresh unions must report true")
	}
	if uf.Union(0, 3) {
		t.Error("union of already-joined sets must report false")
	}
	if uf.Count() != 3 {
		t.Errorf("count = %d, want 3", uf.Count())
	}
	if !uf.Connected(0, 3) || uf.Connected(0, 4) {
		t.Error("connectivity wrong")
	}
}

func TestUnionFindMatchesNaive(t *testing.T) {
	const n = 40
	rng := rand.New(rand.NewSource(1))
	uf := NewUnionFind(n)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	relabel := func(from, to int) {
		for i := range labels {
			if labels[i] == from {
				labels[i] = to
			}
		}
	}
	for step := 0; step < 500; step++ {
		a, b := rng.Intn(n), rng.Intn(n)
		wantFresh := labels[a] != labels[b]
		if got := uf.Union(a, b); got != wantFresh {
			t.Fatalf("step %d: Union(%d,%d) = %v, want %v", step, a, b, got, wantFresh)
		}
		if wantFresh {
			relabel(labels[b], labels[a])
		}
		c, d := rng.Intn(n), rng.Intn(n)
		if uf.Connected(c, d) != (labels[c] == labels[d]) {
			t.Fatalf("step %d: Connected(%d,%d) mismatch", step, c, d)
		}
	}
}

func TestSegTreeBasic(t *testing.T) {
	st := NewMaxAddSegTree(8)
	if st.Max() != 0 {
		t.Fatal("empty tree max should be 0")
	}
	st.Add(0, 3, 5)
	st.Add(2, 5, 4)
	if st.Max() != 9 {
		t.Errorf("max = %v, want 9", st.Max())
	}
	if idx := st.MaxIndex(); idx != 2 && idx != 3 {
		t.Errorf("MaxIndex = %d, want 2 or 3", idx)
	}
	st.Add(2, 3, -100)
	if st.Max() != 5 {
		t.Errorf("max after removal = %v, want 5", st.Max())
	}
}

func TestSegTreeClamping(t *testing.T) {
	st := NewMaxAddSegTree(4)
	st.Add(-10, 100, 2) // clamps to full range
	if st.Max() != 2 {
		t.Errorf("max = %v, want 2", st.Max())
	}
	st.Add(3, 1, 50) // empty range after clamp: no-op
	if st.Max() != 2 {
		t.Errorf("max = %v, want 2 after empty-range add", st.Max())
	}
}

func TestSegTreeMatchesNaive(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(7))
	st := NewMaxAddSegTree(n)
	naive := make([]float64, n)
	for step := 0; step < 1000; step++ {
		lo, hi := rng.Intn(n), rng.Intn(n)
		if lo > hi {
			lo, hi = hi, lo
		}
		v := float64(rng.Intn(21) - 10)
		st.Add(lo, hi, v)
		for i := lo; i <= hi; i++ {
			naive[i] += v
		}
		want, argmax := naive[0], 0
		for i, x := range naive {
			if x > want {
				want, argmax = x, i
			}
		}
		if st.Max() != want {
			t.Fatalf("step %d: Max = %v, want %v", step, st.Max(), want)
		}
		if idx := st.MaxIndex(); naive[idx] != want {
			t.Fatalf("step %d: MaxIndex = %d (val %v), want argmax %d (val %v)",
				step, idx, naive[idx], argmax, want)
		}
	}
}

func TestSegTreeSizeOne(t *testing.T) {
	st := NewMaxAddSegTree(0) // clamps to 1 leaf
	st.Add(0, 0, 3)
	if st.Max() != 3 || st.MaxIndex() != 0 {
		t.Errorf("Max=%v MaxIndex=%d", st.Max(), st.MaxIndex())
	}
}
