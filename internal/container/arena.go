package container

// Arena is a chunked bump allocator for pooled per-query storage: Alloc
// returns slices whose backing memory never moves, so earlier allocations
// stay valid while the arena grows, and Reset reuses every chunk from the
// start without freeing. Once the chunks cover a workload's high-water
// mark, steady-state Alloc/Reset cycles perform no heap allocations.
//
// The zero value is ready to use. An Arena is not safe for concurrent use.
type Arena[T any] struct {
	chunks  [][]T
	ci, off int
}

// arenaChunk is the default chunk capacity (in elements).
const arenaChunk = 1 << 12

// Alloc returns a slice of length and capacity n. The contents are
// whatever the previous cycle left there — callers must overwrite.
func (a *Arena[T]) Alloc(n int) []T {
	for {
		if a.ci == len(a.chunks) {
			size := arenaChunk
			if n > size {
				size = n
			}
			a.chunks = append(a.chunks, make([]T, size))
		}
		c := a.chunks[a.ci]
		if a.off+n <= len(c) {
			s := c[a.off : a.off+n : a.off+n]
			a.off += n
			return s
		}
		a.ci++
		a.off = 0
	}
}

// Reset invalidates every slice handed out since the last Reset and makes
// their storage available for reuse.
func (a *Arena[T]) Reset() { a.ci, a.off = 0, 0 }

// GrowTo returns s with length n, reusing its backing array when its
// capacity suffices; existing contents are not preserved on reallocation.
// It is the shared resize step of the pooled scratch types.
func GrowTo[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
