package core

import (
	"context"
	"math/bits"

	"repro/internal/cancel"
	"repro/internal/container"
	"repro/internal/kmst"
	"repro/internal/pcst"
)

// SolveScratch is the pooled per-worker working state of the solve phase:
// an epoch-stamped replacement for every per-query boolean map/array the
// solvers build (TGEN's processed/enqueued/edgeDone, Greedy's region
// membership), a free-list Region arena behind the tuple machinery, the
// sorted-slice replacement for the map-backed tuple arrays, and the pooled
// kmst/pcst solver state APP drives. SolveTGEN, SolveAPP, and SolveGreedy
// run the same algorithms as TGEN, APP, and Greedy — bit-identical
// results — but a warm scratch answers queries with zero steady-state
// allocations.
//
// Ownership rules: a SolveScratch serves one goroutine; pool one per
// worker (dataset.Planner embeds one). The *Region returned by a SolveX
// call aliases the scratch's arenas and is valid only until the next
// SolveX call on the same scratch — copy it out to retain it.
type SolveScratch struct {
	pool    regionPool
	scaling Scaling
	best    *poolRegion
	cancel  cancel.Check

	// Tuple arrays (TGEN: graph-indexed; findOptTree: tree-local indexed).
	arrays [][]tupleEntry

	// TGEN traversal state.
	processed stampSet
	enqueued  stampSet
	edgeDone  stampSet
	queue     []int32
	newTuples []*poolRegion
	order     []int32 // OrderAscLength edge order
	remaining []int32 // OrderAscLength per-node unprocessed-edge counts

	// Greedy state.
	inRegion stampSet
	noBan    []bool // all-false banned slice (nothing ever writes true)
	gRegion  Region

	// APP state.
	pcstEdges []pcst.Edge
	tcEdges   []int32 // kmst.Result.Edges converted to int32
	garg      *kmst.GargSolver
	spt       *kmst.SPTSolver

	// findOptTree state (local tree indices via pos remap).
	pos      []int32
	deg      []int32
	removed  []bool
	adjOffs  []int32
	adjTo    []int32
	adjEdge  []int32
	cursor   []int32
	foQueue  []int32
	snapshot []*poolRegion
}

// NewSolveScratch returns an empty scratch; it warms up as it serves.
func NewSolveScratch() *SolveScratch { return &SolveScratch{} }

// begin starts a new query: all regions handed out by the previous query
// die and their storage is recycled, and the cancellation checkpoint is
// re-armed on ctx. Because every solve starts from this full reset, a
// solve abandoned mid-way by cancellation leaves the scratch safe to
// reuse: the next begin reclaims every region and re-stamps every set.
func (s *SolveScratch) begin(ctx context.Context) {
	s.pool.reset()
	s.best = nil
	s.cancel.Reset(ctx)
}

// ensureArrays sizes the per-node tuple arrays to n empty arrays, keeping
// grown entry capacity from earlier queries.
func (s *SolveScratch) ensureArrays(n int) {
	if cap(s.arrays) < n {
		s.arrays = append(s.arrays[:cap(s.arrays)], make([][]tupleEntry, n-cap(s.arrays))...)
	}
	s.arrays = s.arrays[:n]
	for i := range s.arrays {
		s.arrays[i] = s.arrays[i][:0]
	}
}

// considerScore offers r as the query answer under betterScore (original
// weights), taking a reference when it wins.
func (s *SolveScratch) considerScore(r *poolRegion) {
	var cur *Region
	if s.best != nil {
		cur = &s.best.Region
	}
	if r.Region.betterScore(cur) {
		if s.best != nil {
			s.pool.deref(s.best)
		}
		s.pool.ref(r)
		s.best = r
	}
}

// considerFeasible is considerScore gated on the length budget (the
// findOptTree consider).
func (s *SolveScratch) considerFeasible(r *poolRegion, delta float64) {
	if r.Length <= delta {
		s.considerScore(r)
	}
}

// bestRegion returns the tracked best as a plain *Region (nil when none).
func (s *SolveScratch) bestRegion() *Region {
	if s.best == nil {
		return nil
	}
	return &s.best.Region
}

// singleton builds the one-node region {v} in the arena (scaled weight
// from the scratch's current scaling).
func (s *SolveScratch) singleton(in *Instance, v NodeID) *poolRegion {
	r := s.pool.newRegion()
	nodes := s.pool.allocInts(1)
	nodes[0] = v
	r.Region = Region{Score: in.Weights[v], Scaled: s.scaling.Scaled[v], Nodes: nodes}
	return r
}

// combine is combine into arena storage: it joins two node-disjoint
// regions through the edge with index edgeIdx.
func (s *SolveScratch) combine(in *Instance, a, b *poolRegion, edgeIdx int32) *poolRegion {
	e := in.Edges[edgeIdx]
	out := s.pool.newRegion()
	nodes := s.pool.allocInts(len(a.Nodes) + len(b.Nodes))
	mergeSortedInto(nodes, a.Nodes, b.Nodes)
	edges := s.pool.allocInts(len(a.Edges) + len(b.Edges) + 1)
	copy(edges, a.Edges)
	copy(edges[len(a.Edges):], b.Edges)
	edges[len(edges)-1] = edgeIdx
	out.Region = Region{
		Length: a.Length + b.Length + e.Length,
		Score:  a.Score + b.Score,
		Scaled: a.Scaled + b.Scaled,
		Nodes:  nodes,
		Edges:  edges,
	}
	return out
}

// mergeSortedInto merges sorted a and b into dst (len(dst) = len(a)+len(b)).
func mergeSortedInto(dst, a, b []int32) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// update installs r into the tuple array at index idx — the sorted-slice
// form of tupleArray.update: per scaled weight keep the shortest region,
// with identical replace-on-strictly-shorter semantics. Returns whether
// the array changed.
func (s *SolveScratch) update(idx int32, r *poolRegion) bool {
	ta := s.arrays[idx]
	lo, hi := 0, len(ta)
	for lo < hi {
		mid := (lo + hi) / 2
		if ta[mid].scaled < r.Scaled {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ta) && ta[lo].scaled == r.Scaled {
		if r.Length < ta[lo].r.Length {
			s.pool.deref(ta[lo].r)
			s.pool.ref(r)
			ta[lo].r = r
			return true
		}
		return false
	}
	ta = append(ta, tupleEntry{})
	copy(ta[lo+1:], ta[lo:])
	ta[lo] = tupleEntry{scaled: r.Scaled, r: r}
	s.pool.ref(r)
	s.arrays[idx] = ta
	return true
}

// dropArray releases every tuple of the array at idx (the §5 memory
// optimization: a finished node's array is discarded).
func (s *SolveScratch) dropArray(idx int32) {
	ta := s.arrays[idx]
	for i := range ta {
		s.pool.deref(ta[i].r)
		ta[i].r = nil
	}
	s.arrays[idx] = ta[:0]
}

// tupleEntry is one slot of a sorted-by-scaled-weight tuple array.
type tupleEntry struct {
	scaled int64
	r      *poolRegion
}

// poolRegion is a Region plus the reference count of the free-list arena:
// how many tuple arrays (and possibly the best-answer slot) point at it.
type poolRegion struct {
	Region
	refs int32
}

// regionPool is the free-list Region arena: region structs come from
// chunked storage so pointers stay stable, node/edge lists come from
// power-of-two size classes, and both are recycled the moment a region's
// last reference drops. reset reclaims everything at once between queries.
type regionPool struct {
	chunks   [][]poolRegion
	ci, off  int
	freeRegs []*poolRegion

	ints      container.Arena[int32]
	freeSlice [32][][]int32 // by log2(capacity)
}

const regionChunk = 512

// reset recycles every region and slice handed out since the last reset.
func (p *regionPool) reset() {
	p.ci, p.off = 0, 0
	p.freeRegs = p.freeRegs[:0]
	for c := range p.freeSlice {
		p.freeSlice[c] = p.freeSlice[c][:0]
	}
	p.ints.Reset()
}

// newRegion returns a region with refs == 0; the caller sets every field.
func (p *regionPool) newRegion() *poolRegion {
	if n := len(p.freeRegs); n > 0 {
		r := p.freeRegs[n-1]
		p.freeRegs = p.freeRegs[:n-1]
		r.refs = 0
		return r
	}
	for {
		if p.ci == len(p.chunks) {
			p.chunks = append(p.chunks, make([]poolRegion, regionChunk))
		}
		if p.off < len(p.chunks[p.ci]) {
			r := &p.chunks[p.ci][p.off]
			p.off++
			r.refs = 0
			return r
		}
		p.ci++
		p.off = 0
	}
}

// allocInts returns a slice of length n whose capacity is the n's
// power-of-two size class, recycled from the class free list when
// possible. n == 0 returns nil (singleton regions have nil edge lists,
// matching the allocating implementations).
func (p *regionPool) allocInts(n int) []int32 {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if l := len(p.freeSlice[c]); l > 0 {
		s := p.freeSlice[c][l-1]
		p.freeSlice[c] = p.freeSlice[c][:l-1]
		return s[:n]
	}
	return p.ints.Alloc(1 << c)[:n]
}

// sizeClass returns ceil(log2(n)) for n >= 1.
func sizeClass(n int) int {
	return bits.Len(uint(n - 1))
}

// ref takes a reference on r.
func (p *regionPool) ref(r *poolRegion) { r.refs++ }

// deref drops a reference, recycling r when it was the last one.
func (p *regionPool) deref(r *poolRegion) {
	r.refs--
	if r.refs == 0 {
		p.free(r)
	}
}

// free recycles an unreferenced region: its node/edge lists return to
// their size-class free lists and the struct to the region free list.
// The caller guarantees no live pointer to r remains.
func (p *regionPool) free(r *poolRegion) {
	if cap(r.Nodes) > 0 {
		p.freeSlice[sizeClass(cap(r.Nodes))] = append(p.freeSlice[sizeClass(cap(r.Nodes))], r.Nodes[:cap(r.Nodes)])
	}
	if cap(r.Edges) > 0 {
		p.freeSlice[sizeClass(cap(r.Edges))] = append(p.freeSlice[sizeClass(cap(r.Edges))], r.Edges[:cap(r.Edges)])
	}
	r.Region = Region{}
	p.freeRegs = append(p.freeRegs, r)
}

// stampSet is an epoch-stamped boolean array: begin starts a new
// generation in O(1), membership is stamp[i] == epoch. It replaces the
// per-query map[NodeID]bool / []bool working sets of the solvers.
type stampSet struct {
	stamp []uint32
	epoch uint32
}

// begin resets the set to empty over the domain [0, n).
func (s *stampSet) begin(n int) {
	if cap(s.stamp) < n {
		s.stamp = make([]uint32, n)
	}
	s.stamp = s.stamp[:n]
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: stale stamps would alias the new epoch
		full := s.stamp[:cap(s.stamp)] // clear the whole capacity, not just [0,n)
		for i := range full {
			full[i] = 0
		}
		s.epoch = 1
	}
}

// has reports membership of i.
func (s *stampSet) has(i int32) bool { return s.stamp[i] == s.epoch }

// add inserts i.
func (s *stampSet) add(i int32) { s.stamp[i] = s.epoch }
