// Package core implements the paper's primary contribution: answering the
// length-constrained maximum-sum region (LCMSR) query. Given a working
// graph — the road network restricted to the query rectangle Q.Λ, with
// per-node relevance weights σv for the query keywords — the algorithms
// here find a connected subgraph ("region") of total edge length at most
// Q.∆ maximizing the total node weight:
//
//   - APP (§4): the (5+ε)-approximation built on node-weight scaling, a
//     binary search over node-weight quotas against a k-MST solver, and a
//     dynamic program (findOptTree) extracting the best feasible subtree;
//   - TGEN (§5): the tuple-generation heuristic that runs the same
//     dominance-pruned tuple machinery directly on the graph;
//   - Greedy (§6.1): frontier expansion balancing node weight and edge
//     length with the µ parameter;
//   - top-k variants of all three (§6.2);
//   - Exact: exhaustive baselines for small instances (used to measure
//     approximation quality in tests and benchmarks).
//
// # Pooling ownership
//
// Each algorithm exists in two forms: the original allocating functions
// (TGEN, APP, Greedy) and pooled counterparts (SolveTGEN, SolveAPP,
// SolveGreedy) that draw all per-query working state — epoch-stamped node
// and edge sets, the free-list Region arena behind the tuple arrays, and
// the kmst/pcst solver state — from a per-worker SolveScratch. The two
// forms return bit-identical regions (golden-tested); a warm scratch
// answers queries with zero steady-state allocations.
//
// A SolveScratch serves one goroutine. The *Region returned by a pooled
// solve aliases the scratch's arenas and is invalidated by the next SolveX
// call on the same scratch: consume or copy it before solving again. The
// allocating forms return independently-owned regions with no lifetime
// restrictions (the top-k variants always use them).
package core

import (
	"fmt"
	"math"

	"repro/internal/pcst"
)

// NodeID is a node index local to an Instance (0..N-1).
type NodeID = int32

// Edge is an undirected edge of the working graph.
type Edge struct {
	U, V   NodeID
	Length float64
}

// Halfedge is one direction of an edge in the adjacency structure.
type Halfedge struct {
	To   NodeID
	Edge int32
}

// Instance is the per-query working graph: the subgraph of the road
// network inside Q.Λ with query-dependent node weights σv ≥ 0. The zero
// weight marks nodes irrelevant to the query (junctions, dead ends,
// non-matching objects).
//
// The adjacency is stored in CSR form (halfedges of node v are
// adj[offs[v]:offs[v+1]]), and Reset rebuilds it in place, so a pooled
// Instance can serve many queries without reallocating.
type Instance struct {
	NumNodes int
	Edges    []Edge
	Weights  []float64 // σv per node

	offs   []int32
	adj    []Halfedge
	cursor []int32 // CSR fill scratch, reused by Reset
}

// NewInstance validates and indexes a working graph.
func NewInstance(numNodes int, edges []Edge, weights []float64) (*Instance, error) {
	inst := &Instance{}
	if err := inst.Reset(numNodes, edges, weights); err != nil {
		return nil, err
	}
	return inst, nil
}

// Reset re-initializes the instance in place with a new working graph,
// reusing the adjacency storage from previous queries (zero allocations
// once the buffers have grown to the workload's high-water mark). The
// instance keeps references to edges and weights. On error the instance is
// left unusable and must be Reset again before use.
func (in *Instance) Reset(numNodes int, edges []Edge, weights []float64) error {
	if len(weights) != numNodes {
		return fmt.Errorf("core: %d weights for %d nodes", len(weights), numNodes)
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("core: node %d has invalid weight %v", i, w)
		}
	}
	for i, e := range edges {
		if e.U < 0 || int(e.U) >= numNodes || e.V < 0 || int(e.V) >= numNodes {
			return fmt.Errorf("core: edge %d endpoints (%d,%d) out of range", i, e.U, e.V)
		}
		if e.U == e.V {
			return fmt.Errorf("core: edge %d is a self loop", i)
		}
		if e.Length < 0 || math.IsNaN(e.Length) || math.IsInf(e.Length, 0) {
			return fmt.Errorf("core: edge %d has invalid length %v", i, e.Length)
		}
	}
	in.NumNodes = numNodes
	in.Edges = edges
	in.Weights = weights
	in.offs = growTo(in.offs, numNodes+1)
	for i := range in.offs {
		in.offs[i] = 0
	}
	for _, e := range edges {
		in.offs[e.U+1]++
		in.offs[e.V+1]++
	}
	for i := 0; i < numNodes; i++ {
		in.offs[i+1] += in.offs[i]
	}
	in.cursor = growTo(in.cursor, numNodes)
	copy(in.cursor, in.offs[:numNodes])
	in.adj = growTo(in.adj, 2*len(edges))
	for i, e := range edges {
		in.adj[in.cursor[e.U]] = Halfedge{To: e.V, Edge: int32(i)}
		in.cursor[e.U]++
		in.adj[in.cursor[e.V]] = Halfedge{To: e.U, Edge: int32(i)}
		in.cursor[e.V]++
	}
	return nil
}

// growTo returns s with length n, reusing its backing array when possible.
func growTo[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Neighbors returns the halfedges out of v (aliases internal storage).
func (in *Instance) Neighbors(v NodeID) []Halfedge {
	return in.adj[in.offs[v]:in.offs[v+1]]
}

// MaxWeight returns σmax, the maximum node weight, and its node.
func (in *Instance) MaxWeight() (float64, NodeID) {
	best, arg := 0.0, NodeID(-1)
	for v, w := range in.Weights {
		if w > best {
			best, arg = w, NodeID(v)
		}
	}
	return best, arg
}

// MaxEdgeLength returns τmax over the instance's edges (0 if edgeless).
func (in *Instance) MaxEdgeLength() float64 {
	var best float64
	for _, e := range in.Edges {
		if e.Length > best {
			best = e.Length
		}
	}
	return best
}

// pcstEdges converts the instance's edge list to the solver's edge type.
// The layouts are identical; the copy keeps the packages decoupled.
func (in *Instance) pcstEdges() []pcst.Edge {
	out := make([]pcst.Edge, len(in.Edges))
	for i, e := range in.Edges {
		out[i] = pcst.Edge{U: e.U, V: e.V, Cost: e.Length}
	}
	return out
}
