// Package core implements the paper's primary contribution: answering the
// length-constrained maximum-sum region (LCMSR) query. Given a working
// graph — the road network restricted to the query rectangle Q.Λ, with
// per-node relevance weights σv for the query keywords — the algorithms
// here find a connected subgraph ("region") of total edge length at most
// Q.∆ maximizing the total node weight:
//
//   - APP (§4): the (5+ε)-approximation built on node-weight scaling, a
//     binary search over node-weight quotas against a k-MST solver, and a
//     dynamic program (findOptTree) extracting the best feasible subtree;
//   - TGEN (§5): the tuple-generation heuristic that runs the same
//     dominance-pruned tuple machinery directly on the graph;
//   - Greedy (§6.1): frontier expansion balancing node weight and edge
//     length with the µ parameter;
//   - top-k variants of all three (§6.2);
//   - Exact: exhaustive baselines for small instances (used to measure
//     approximation quality in tests and benchmarks).
package core

import (
	"fmt"
	"math"

	"repro/internal/pcst"
)

// NodeID is a node index local to an Instance (0..N-1).
type NodeID = int32

// Edge is an undirected edge of the working graph.
type Edge struct {
	U, V   NodeID
	Length float64
}

// Halfedge is one direction of an edge in the adjacency structure.
type Halfedge struct {
	To   NodeID
	Edge int32
}

// Instance is the per-query working graph: the subgraph of the road
// network inside Q.Λ with query-dependent node weights σv ≥ 0. The zero
// weight marks nodes irrelevant to the query (junctions, dead ends,
// non-matching objects).
type Instance struct {
	NumNodes int
	Edges    []Edge
	Weights  []float64 // σv per node

	adj [][]Halfedge
}

// NewInstance validates and indexes a working graph.
func NewInstance(numNodes int, edges []Edge, weights []float64) (*Instance, error) {
	if len(weights) != numNodes {
		return nil, fmt.Errorf("core: %d weights for %d nodes", len(weights), numNodes)
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("core: node %d has invalid weight %v", i, w)
		}
	}
	inst := &Instance{NumNodes: numNodes, Edges: edges, Weights: weights}
	inst.adj = make([][]Halfedge, numNodes)
	for i, e := range edges {
		if e.U < 0 || int(e.U) >= numNodes || e.V < 0 || int(e.V) >= numNodes {
			return nil, fmt.Errorf("core: edge %d endpoints (%d,%d) out of range", i, e.U, e.V)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("core: edge %d is a self loop", i)
		}
		if e.Length < 0 || math.IsNaN(e.Length) || math.IsInf(e.Length, 0) {
			return nil, fmt.Errorf("core: edge %d has invalid length %v", i, e.Length)
		}
		inst.adj[e.U] = append(inst.adj[e.U], Halfedge{To: e.V, Edge: int32(i)})
		inst.adj[e.V] = append(inst.adj[e.V], Halfedge{To: e.U, Edge: int32(i)})
	}
	return inst, nil
}

// Neighbors returns the halfedges out of v (aliases internal storage).
func (in *Instance) Neighbors(v NodeID) []Halfedge { return in.adj[v] }

// MaxWeight returns σmax, the maximum node weight, and its node.
func (in *Instance) MaxWeight() (float64, NodeID) {
	best, arg := 0.0, NodeID(-1)
	for v, w := range in.Weights {
		if w > best {
			best, arg = w, NodeID(v)
		}
	}
	return best, arg
}

// MaxEdgeLength returns τmax over the instance's edges (0 if edgeless).
func (in *Instance) MaxEdgeLength() float64 {
	var best float64
	for _, e := range in.Edges {
		if e.Length > best {
			best = e.Length
		}
	}
	return best
}

// pcstEdges converts the instance's edge list to the solver's edge type.
// The layouts are identical; the copy keeps the packages decoupled.
func (in *Instance) pcstEdges() []pcst.Edge {
	out := make([]pcst.Edge, len(in.Edges))
	for i, e := range in.Edges {
		out[i] = pcst.Edge{U: e.U, V: e.V, Cost: e.Length}
	}
	return out
}
