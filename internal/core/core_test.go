package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/container"
)

// checkRegion asserts r is a well-formed connected feasible region of in.
func checkRegion(t *testing.T, in *Instance, r *Region, delta float64) {
	t.Helper()
	if r == nil {
		t.Fatal("nil region")
	}
	if len(r.Nodes) == 0 {
		t.Fatal("empty region")
	}
	seen := map[int32]bool{}
	var score float64
	for i, v := range r.Nodes {
		if i > 0 && r.Nodes[i-1] >= v {
			t.Fatal("region nodes not sorted ascending / duplicate")
		}
		if v < 0 || int(v) >= in.NumNodes {
			t.Fatalf("node %d out of range", v)
		}
		seen[v] = true
		score += in.Weights[v]
	}
	uf := container.NewUnionFind(in.NumNodes)
	var length float64
	for _, ei := range r.Edges {
		e := in.Edges[ei]
		if !seen[e.U] || !seen[e.V] {
			t.Fatal("region edge leaves the node set")
		}
		if !uf.Union(int(e.U), int(e.V)) {
			t.Fatal("region contains a cycle")
		}
		length += e.Length
	}
	if len(r.Edges) != len(r.Nodes)-1 {
		t.Fatalf("|E|=%d |V|=%d: not a tree", len(r.Edges), len(r.Nodes))
	}
	if math.Abs(length-r.Length) > 1e-9 {
		t.Fatalf("Length %v, recomputed %v", r.Length, length)
	}
	if math.Abs(score-r.Score) > 1e-9 {
		t.Fatalf("Score %v, recomputed %v", r.Score, score)
	}
	if r.Length > delta+1e-9 {
		t.Fatalf("Length %v exceeds budget %v", r.Length, delta)
	}
}

func mustInstance(t *testing.T, n int, edges []Edge, weights []float64) *Instance {
	t.Helper()
	in, err := NewInstance(n, edges, weights)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// pathInstance builds a path 0-1-...-n-1 with the given edge lengths.
func pathInstance(t *testing.T, weights []float64, lengths []float64) *Instance {
	t.Helper()
	var edges []Edge
	for i, l := range lengths {
		edges = append(edges, Edge{U: int32(i), V: int32(i + 1), Length: l})
	}
	return mustInstance(t, len(weights), edges, weights)
}

// randomInstance makes a connected random graph with nonneg weights.
// t may be nil when called from quick.Check property functions.
func randomInstance(t *testing.T, rng *rand.Rand, n int) *Instance {
	if t != nil {
		t.Helper()
	}
	var edges []Edge
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: int32(rng.Intn(i)), V: int32(i), Length: 0.5 + 2*rng.Float64()})
	}
	extra := rng.Intn(n)
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{U: int32(u), V: int32(v), Length: 0.5 + 2*rng.Float64()})
		}
	}
	weights := make([]float64, n)
	for i := range weights {
		if rng.Float64() < 0.7 {
			weights[i] = rng.Float64()
		}
	}
	weights[rng.Intn(n)] = 0.5 + rng.Float64()/2 // ensure σmax > 0
	in, err := NewInstance(n, edges, weights)
	if err != nil {
		panic(err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(2, nil, []float64{1}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := NewInstance(1, nil, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewInstance(1, nil, []float64{math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := NewInstance(2, []Edge{{U: 0, V: 0, Length: 1}}, []float64{1, 1}); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := NewInstance(2, []Edge{{U: 0, V: 5, Length: 1}}, []float64{1, 1}); err == nil {
		t.Error("bad endpoint accepted")
	}
	if _, err := NewInstance(2, []Edge{{U: 0, V: 1, Length: -1}}, []float64{1, 1}); err == nil {
		t.Error("negative length accepted")
	}
}

func TestInstanceResetReuse(t *testing.T) {
	// A pooled instance must serve successive working graphs of different
	// shapes with a correct CSR adjacency each time.
	var in Instance
	check := func(numNodes int, edges []Edge) {
		t.Helper()
		weights := make([]float64, numNodes)
		for i := range weights {
			weights[i] = float64(i)
		}
		if err := in.Reset(numNodes, edges, weights); err != nil {
			t.Fatal(err)
		}
		deg := make([]int, numNodes)
		for _, e := range edges {
			deg[e.U]++
			deg[e.V]++
		}
		seen := make(map[int32]int)
		for v := 0; v < numNodes; v++ {
			nb := in.Neighbors(NodeID(v))
			if len(nb) != deg[v] {
				t.Fatalf("node %d degree %d, want %d", v, len(nb), deg[v])
			}
			for _, he := range nb {
				e := edges[he.Edge]
				if e.U != NodeID(v) && e.V != NodeID(v) {
					t.Fatalf("edge %d in adjacency of non-endpoint %d", he.Edge, v)
				}
				if he.To != e.U && he.To != e.V {
					t.Fatalf("halfedge target %d not an endpoint of edge %d", he.To, he.Edge)
				}
				seen[he.Edge]++
			}
		}
		for id, c := range seen {
			if c != 2 {
				t.Fatalf("edge %d appears %d times, want 2", id, c)
			}
		}
		if len(seen) != len(edges) {
			t.Fatalf("adjacency covers %d edges, want %d", len(seen), len(edges))
		}
	}
	check(4, []Edge{{U: 0, V: 1, Length: 1}, {U: 1, V: 2, Length: 2}, {U: 2, V: 3, Length: 3}})
	check(2, []Edge{{U: 0, V: 1, Length: 5}})                          // shrink
	check(6, []Edge{{U: 0, V: 5, Length: 1}, {U: 4, V: 1, Length: 2}}) // regrow
	if err := in.Reset(2, []Edge{{U: 0, V: 0, Length: 1}}, []float64{1, 1}); err == nil {
		t.Error("Reset accepted a self loop")
	}
}

// Example 2 of the paper: α = 0.15, σmax = 0.4, |VQ| = 6 gives θ = 0.01.
func TestScaleExample2(t *testing.T) {
	in := mustInstance(t, 6, nil, []float64{0.2, 0.3, 0.4, 0.2, 0.2, 0.4})
	sc, err := Scale(in, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sc.Theta-0.01) > 1e-12 {
		t.Errorf("θ = %v, want 0.01", sc.Theta)
	}
	// "the weight of each node is scaled to 100 times its original value"
	want := []int64{20, 30, 40, 20, 20, 40}
	for v, w := range want {
		// Floating division can land at 39.999...; the floor must still
		// be within one of the ideal value and satisfy Theorem 2's bound.
		if sc.Scaled[v] != w && sc.Scaled[v] != w-1 {
			t.Errorf("σ̂[%d] = %d, want %d (±1 for float floor)", v, sc.Scaled[v], w)
		}
	}
}

// Theorem 2's scaling inequality: σv − θ < θσ̂v ≤ σv for every node.
func TestScaleInvariant(t *testing.T) {
	f := func(seed int64, alphaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		in := randomInstance(nil, rng, n)
		alpha := 0.01 + float64(alphaRaw)/64.0 // 0.01 .. ~4
		sc, err := Scale(in, alpha)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			lhs := in.Weights[v] - sc.Theta
			mid := sc.Theta * float64(sc.Scaled[v])
			if !(lhs < mid+1e-12 && mid <= in.Weights[v]+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScaleRejectsBadInput(t *testing.T) {
	in := mustInstance(t, 2, nil, []float64{1, 0})
	for _, alpha := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Scale(in, alpha); err == nil {
			t.Errorf("α=%v accepted", alpha)
		}
	}
	empty := mustInstance(t, 0, nil, nil)
	if _, err := Scale(empty, 0.5); err == nil {
		t.Error("empty instance accepted")
	}
	zero := mustInstance(t, 3, nil, []float64{0, 0, 0})
	if _, err := Scale(zero, 0.5); err == nil {
		t.Error("all-zero weights accepted (no relevant node)")
	}
}

// The DP over a tree must match brute force over all subtrees.
func TestFindOptTreeMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		// Random tree.
		var edges []Edge
		for i := 1; i < n; i++ {
			edges = append(edges, Edge{U: int32(rng.Intn(i)), V: int32(i), Length: float64(1 + rng.Intn(5))})
		}
		weights := make([]float64, n)
		scaled := make([]int64, n)
		for i := range weights {
			scaled[i] = int64(rng.Intn(5))
			weights[i] = float64(scaled[i])
		}
		in := mustInstance(t, n, edges, weights)
		sc := &Scaling{Alpha: 1, Theta: 1, Scaled: scaled}
		delta := float64(1 + rng.Intn(12))

		treeNodes := make([]int32, n)
		treeEdges := make([]int32, len(edges))
		for i := range treeNodes {
			treeNodes[i] = int32(i)
		}
		for i := range treeEdges {
			treeEdges[i] = int32(i)
		}
		got := findOptTree(in, sc, treeNodes, treeEdges, delta, nil)
		want, err := Exact(in, delta)
		if err != nil {
			t.Fatal(err)
		}
		if (got == nil) != (want == nil) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
		if got == nil {
			continue
		}
		checkRegion(t, in, got, delta)
		if math.Abs(got.Score-want.Score) > 1e-9 {
			t.Fatalf("trial %d: DP score %v, exact %v (Δ=%v)", trial, got.Score, want.Score, delta)
		}
	}
}

// findOptTree also honours the tie-break: equal weight, shorter region.
func TestFindOptTreeTieBreak(t *testing.T) {
	// Path a(1) -2- b(0) -5- c(1): with Δ=10 both {a} and {c} weigh 1 but
	// {a,b,c} weighs 2; with Δ=1 only singletons fit and weight-1 nodes tie.
	in := pathInstance(t, []float64{1, 0, 1}, []float64{2, 5})
	sc := &Scaling{Alpha: 1, Theta: 1, Scaled: []int64{1, 0, 1}}
	r := findOptTree(in, sc, []int32{0, 1, 2}, []int32{0, 1}, 1, nil)
	if r == nil || r.Scaled != 1 || r.Length != 0 || len(r.Nodes) != 1 {
		t.Fatalf("tie-break region = %v", r)
	}
}

func TestAPPBoundsOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	alpha, beta := 0.3, 0.1
	lower := (1 - alpha) / (5 + 5*beta) // Theorem 4
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(10)
		in := randomInstance(t, rng, n)
		delta := 1 + rng.Float64()*8
		opt, err := Exact(in, delta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := APP(in, delta, APPOptions{Alpha: alpha, Beta: beta})
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			t.Fatalf("trial %d: APP returned nil on instance with σmax > 0", trial)
		}
		checkRegion(t, in, got, delta)
		if got.Score > opt.Score+1e-9 {
			t.Fatalf("trial %d: APP %v beats exact %v", trial, got.Score, opt.Score)
		}
		if got.Score < lower*opt.Score-1e-9 {
			t.Fatalf("trial %d: APP %v below (1−α)/(5+5β)·OPT = %v·%v",
				trial, got.Score, lower, opt.Score)
		}
	}
}

func TestAPPNoRelevantNode(t *testing.T) {
	in := mustInstance(t, 3, []Edge{{U: 0, V: 1, Length: 1}}, []float64{0, 0, 0})
	r, err := APP(in, 5, APPOptions{})
	if err != nil || r != nil {
		t.Errorf("no-relevant-node: region=%v err=%v, want nil/nil", r, err)
	}
	r, err = TGEN(in, 5, TGENOptions{})
	if err != nil || r != nil {
		t.Errorf("TGEN no-relevant-node: region=%v err=%v", r, err)
	}
	r, err = Greedy(in, 5, GreedyOptions{})
	if err != nil || r != nil {
		t.Errorf("Greedy no-relevant-node: region=%v err=%v", r, err)
	}
}

func TestAPPRejectsBadDelta(t *testing.T) {
	in := mustInstance(t, 1, nil, []float64{1})
	if _, err := APP(in, -1, APPOptions{}); err == nil {
		t.Error("negative ∆ accepted by APP")
	}
	if _, err := TGEN(in, math.NaN(), TGENOptions{}); err == nil {
		t.Error("NaN ∆ accepted by TGEN")
	}
	if _, err := Greedy(in, -2, GreedyOptions{}); err == nil {
		t.Error("negative ∆ accepted by Greedy")
	}
}

func TestAPPTinyDelta(t *testing.T) {
	// Budget smaller than every edge: only singletons are feasible, and
	// the best single node must be returned.
	in := pathInstance(t, []float64{0.3, 0.9, 0.1}, []float64{5, 5})
	r, err := APP(in, 1, APPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkRegion(t, in, r, 1)
	if len(r.Nodes) != 1 || r.Nodes[0] != 1 {
		t.Errorf("tiny-∆ region = %v, want single node 1", r)
	}
}

func TestAPPTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomInstance(t, rng, 12)
	var trace []TraceStep
	if _, err := APP(in, 3, APPOptions{Trace: &trace}); err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("no trace rows")
	}
	for i, s := range trace {
		if s.X < s.L || s.X > s.U {
			t.Errorf("row %d: X=%v outside [%v,%v]", i, s.X, s.L, s.U)
		}
		if i > 0 && trace[i].U-trace[i].L > trace[i-1].U-trace[i-1].L {
			t.Errorf("row %d: interval grew", i)
		}
	}
}

func TestTGENMatchesExactWithFineScaling(t *testing.T) {
	// With integer weights and θ=1 scaling, TGEN's enumeration is close to
	// exhaustive on small trees. Dominance pruning can still discard a
	// tuple the optimum needs (§5: "it is possible that the optimal region
	// is missed"), so assert TGEN never beats Exact and stays within 85%
	// of it in aggregate.
	var gotSum, wantSum float64
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		var edges []Edge
		for i := 1; i < n; i++ {
			edges = append(edges, Edge{U: int32(rng.Intn(i)), V: int32(i), Length: float64(1 + rng.Intn(4))})
		}
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(rng.Intn(4))
		}
		if maxF(weights) == 0 {
			weights[0] = 1
		}
		in := mustInstance(t, n, edges, weights)
		delta := float64(1 + rng.Intn(10))
		want, err := Exact(in, delta)
		if err != nil {
			t.Fatal(err)
		}
		// α chosen so θ = α·σmax/n ≤ 1/(anything): make scaling lossless
		// by picking θ dividing 1: α = n/σmax gives θ = 1.
		alpha := float64(n) / maxF(weights)
		got, err := TGEN(in, delta, TGENOptions{Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			t.Fatalf("trial %d: TGEN nil", trial)
		}
		checkRegion(t, in, got, delta)
		if got.Score > want.Score+1e-9 {
			t.Fatalf("trial %d: TGEN %v beats exact %v", trial, got.Score, want.Score)
		}
		gotSum += got.Score
		wantSum += want.Score
	}
	if gotSum < 0.85*wantSum {
		t.Errorf("TGEN aggregate %.3f below 85%% of exact aggregate %.3f", gotSum, wantSum)
	}
}

func maxF(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestTGENFeasibleOnGeneralGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(t, rng, 4+rng.Intn(12))
		delta := 1 + rng.Float64()*8
		got, err := TGEN(in, delta, TGENOptions{Alpha: 50})
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			t.Fatalf("trial %d: nil region", trial)
		}
		checkRegion(t, in, got, delta)
		opt, err := Exact(in, delta)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score > opt.Score+1e-9 {
			t.Fatalf("trial %d: TGEN %v beats exact %v", trial, got.Score, opt.Score)
		}
	}
}

func TestGreedyBudgetAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(t, rng, 5+rng.Intn(20))
		delta := rng.Float64() * 10
		r, err := Greedy(in, delta, GreedyOptions{Mu: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		checkRegion(t, in, r, delta)
	}
}

func TestGreedyMuExtremes(t *testing.T) {
	// Star: center weight 0.1; spokes: heavy-far (weight 1, length 10) and
	// light-near (weight 0.2, length 1). µ=0 (weight only) must take the
	// heavy spoke first; µ=1 (length only) must take the near spoke first.
	in := mustInstance(t, 3,
		[]Edge{{U: 0, V: 1, Length: 10}, {U: 0, V: 2, Length: 1}},
		[]float64{5, 1, 0.2}) // node 0 is the seed (σmax)
	rW, err := Greedy(in, 10, GreedyOptions{Mu: 0, MuSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rW.Contains(1) {
		t.Errorf("µ=0 region %v skipped the heavy far node", rW)
	}
	rL, err := Greedy(in, 10, GreedyOptions{Mu: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rL.Contains(2) || rL.Contains(1) {
		t.Errorf("µ=1 region %v should take only the near node (budget excludes both)", rL)
	}
}

func TestGreedyRejectsBadMu(t *testing.T) {
	in := mustInstance(t, 1, nil, []float64{1})
	for _, mu := range []float64{-0.1, 1.5, math.NaN()} {
		if _, err := Greedy(in, 1, GreedyOptions{Mu: mu, MuSet: true}); err == nil {
			t.Errorf("µ=%v accepted", mu)
		}
	}
}

func TestExactRefusesLargeInstances(t *testing.T) {
	weights := make([]float64, 30)
	in := mustInstance(t, 30, nil, weights)
	if _, err := Exact(in, 1); err == nil {
		t.Error("Exact accepted a 30-node instance")
	}
}

func TestTopKDisjointAndOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	in := randomInstance(t, rng, 18)
	delta := 4.0
	for name, run := range map[string]func() ([]*Region, error){
		"APP":    func() ([]*Region, error) { return TopKAPP(context.Background(), in, delta, 3, APPOptions{}) },
		"TGEN":   func() ([]*Region, error) { return TopKTGEN(context.Background(), in, delta, 3, TGENOptions{Alpha: 30}) },
		"Greedy": func() ([]*Region, error) { return TopKGreedy(context.Background(), in, delta, 3, GreedyOptions{}) },
	} {
		regions, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(regions) == 0 || len(regions) > 3 {
			t.Fatalf("%s: %d regions", name, len(regions))
		}
		for i, r := range regions {
			checkRegion(t, in, r, delta)
			for j := i + 1; j < len(regions); j++ {
				if r.sharesNode(regions[j]) {
					t.Errorf("%s: regions %d and %d overlap", name, i, j)
				}
			}
		}
		for i := 1; i < len(regions); i++ {
			if regions[i].Score > regions[i-1].Score+0.5 {
				t.Errorf("%s: region %d (%.3f) much better than region %d (%.3f): ordering broken",
					name, i, regions[i].Score, i-1, regions[i-1].Score)
			}
		}
	}
}

func TestTopKZero(t *testing.T) {
	in := mustInstance(t, 1, nil, []float64{1})
	if rs, err := TopKAPP(context.Background(), in, 1, 0, APPOptions{}); err != nil || rs != nil {
		t.Error("k=0 should be empty")
	}
}

// The algorithms' relative quality on a moderately sized instance must
// reflect the paper's finding: TGEN ≥ APP ≥ Greedy is the usual order;
// we assert the weaker stable property APP ≥ 60% of TGEN and both ≥ the
// single best node, averaged over instances.
func TestRelativeQualityOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	var appSum, tgenSum, greedySum float64
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		in := randomInstance(t, rng, 40)
		delta := 6.0
		app, err := APP(in, delta, APPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// α sized so that σ̂max = ⌊n/α⌋ ≈ 8, mirroring the paper's α=400
		// on thousands of nodes (too coarse a scale zeroes every weight).
		tg, err := TGEN(in, delta, TGENOptions{Alpha: 5})
		if err != nil {
			t.Fatal(err)
		}
		gr, err := Greedy(in, delta, GreedyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		appSum += app.Score
		tgenSum += tg.Score
		greedySum += gr.Score
	}
	if appSum < 0.6*tgenSum {
		t.Errorf("APP total %.3f below 60%% of TGEN total %.3f", appSum, tgenSum)
	}
	if tgenSum < greedySum*0.95 {
		t.Errorf("TGEN total %.3f clearly below Greedy total %.3f", tgenSum, greedySum)
	}
}

func TestSolverSPTVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomInstance(t, rng, 25)
	r, err := APP(in, 5, APPOptions{Solver: SolverSPT})
	if err != nil {
		t.Fatal(err)
	}
	checkRegion(t, in, r, 5)
}

func TestRegionHelpers(t *testing.T) {
	a := &Region{Scaled: 5, Length: 2, Nodes: []int32{1, 3, 5}}
	b := &Region{Scaled: 5, Length: 3, Nodes: []int32{2, 4}}
	if !a.betterThan(b) {
		t.Error("equal weight shorter region must win")
	}
	if a.sharesNode(b) {
		t.Error("disjoint sets reported overlapping")
	}
	c := &Region{Nodes: []int32{5, 9}}
	if !a.sharesNode(c) {
		t.Error("overlap missed")
	}
	if !a.Contains(3) || a.Contains(2) {
		t.Error("Contains wrong")
	}
	if (*Region)(nil).String() != "Region(nil)" {
		t.Error("nil String")
	}
	var nilR *Region
	if nilR.betterThan(nil) {
		t.Error("nil not better than nil")
	}
	if !a.betterScore(b) { // scores both 0; falls to length
		t.Error("betterScore tie-break failed")
	}
}

func TestTGENEdgeOrders(t *testing.T) {
	// §5: the edge processing order changes accuracy only slightly.
	rng := rand.New(rand.NewSource(404))
	var bfsSum, ascSum float64
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(t, rng, 30)
		delta := 5.0
		alpha := float64(in.NumNodes) / 8
		bfs, err := TGEN(in, delta, TGENOptions{Alpha: alpha, Order: OrderBFS})
		if err != nil {
			t.Fatal(err)
		}
		asc, err := TGEN(in, delta, TGENOptions{Alpha: alpha, Order: OrderAscLength})
		if err != nil {
			t.Fatal(err)
		}
		checkRegion(t, in, bfs, delta)
		checkRegion(t, in, asc, delta)
		bfsSum += bfs.Score
		ascSum += asc.Score
	}
	lo, hi := bfsSum*0.7, bfsSum*1.3
	if ascSum < lo || ascSum > hi {
		t.Errorf("asc-length order aggregate %.3f far from BFS aggregate %.3f", ascSum, bfsSum)
	}
}
