package core

import (
	"context"
	"math/rand"
	"testing"
)

// regionEq reports whether two regions are bit-identical answers: same
// length, score, scaled weight, and the same node and edge lists (nil and
// empty compare equal — the pooled path reuses zero-length buffers).
func regionEq(a, b *Region) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Length != b.Length || a.Score != b.Score || a.Scaled != b.Scaled {
		return false
	}
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

// goldenInstances builds the shared golden workload: random instances of
// varying size across several RNG seeds, with a spread of length budgets.
// One pooled scratch is reused across every solve, so reuse contamination
// (stale stamps, leaked arena state) would surface as a mismatch.
func goldenInstances(t *testing.T, seed int64) []*Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sizes := []int{2, 5, 12, 30, 60}
	out := make([]*Instance, 0, len(sizes))
	for _, n := range sizes {
		out = append(out, randomInstance(t, rng, n))
	}
	return out
}

var goldenSeeds = []int64{1, 2, 3, 4}
var goldenDeltas = []float64{0, 1.5, 4, 10, 1e9}

// TestSolveTGENMatchesTGEN: the pooled tuple-generation path must return
// bit-identical regions to the allocating TGEN across seeds, budgets, and
// both edge-processing orders, with the scratch reused throughout.
func TestSolveTGENMatchesTGEN(t *testing.T) {
	s := NewSolveScratch()
	for _, seed := range goldenSeeds {
		for _, in := range goldenInstances(t, seed) {
			for _, delta := range goldenDeltas {
				for _, order := range []EdgeOrder{OrderBFS, OrderAscLength} {
					opts := TGENOptions{Alpha: float64(in.NumNodes) / 9, Order: order}
					if opts.Alpha < 1 {
						opts.Alpha = 1
					}
					want, err := TGEN(in, delta, opts)
					if err != nil {
						t.Fatalf("seed %d n %d δ %v: TGEN: %v", seed, in.NumNodes, delta, err)
					}
					got, err := SolveTGEN(context.Background(), s, in, delta, opts)
					if err != nil {
						t.Fatalf("seed %d n %d δ %v: SolveTGEN: %v", seed, in.NumNodes, delta, err)
					}
					if !regionEq(got, want) {
						t.Fatalf("seed %d n %d δ %v order %d: pooled %v != %v", seed, in.NumNodes, delta, order, got, want)
					}
					if want != nil {
						checkRegion(t, in, got, delta)
					}
				}
			}
		}
	}
}

// TestSolveAPPMatchesAPP: the pooled approximation path — including the
// pooled kmst and pcst solvers underneath — must match the allocating APP
// bit-identically under both quota-tree solvers (Garg and SPT).
func TestSolveAPPMatchesAPP(t *testing.T) {
	s := NewSolveScratch()
	for _, seed := range goldenSeeds {
		for _, in := range goldenInstances(t, seed) {
			for _, delta := range goldenDeltas {
				for _, kind := range []SolverKind{SolverGarg, SolverSPT} {
					opts := APPOptions{Solver: kind}
					want, err := APP(in, delta, opts)
					if err != nil {
						t.Fatalf("seed %d n %d δ %v: APP: %v", seed, in.NumNodes, delta, err)
					}
					got, err := SolveAPP(context.Background(), s, in, delta, opts)
					if err != nil {
						t.Fatalf("seed %d n %d δ %v: SolveAPP: %v", seed, in.NumNodes, delta, err)
					}
					if !regionEq(got, want) {
						t.Fatalf("seed %d n %d δ %v solver %d: pooled %v != %v", seed, in.NumNodes, delta, kind, got, want)
					}
				}
			}
		}
	}
}

// TestSolveGreedyMatchesGreedy: the pooled greedy path (epoch-stamped
// membership, reused region buffers) must match the allocating Greedy.
func TestSolveGreedyMatchesGreedy(t *testing.T) {
	s := NewSolveScratch()
	for _, seed := range goldenSeeds {
		for _, in := range goldenInstances(t, seed) {
			for _, delta := range goldenDeltas {
				for _, mu := range []float64{0, 0.2, 0.7, 1} {
					opts := GreedyOptions{Mu: mu, MuSet: true}
					want, err := Greedy(in, delta, opts)
					if err != nil {
						t.Fatalf("seed %d n %d δ %v: Greedy: %v", seed, in.NumNodes, delta, err)
					}
					got, err := SolveGreedy(context.Background(), s, in, delta, opts)
					if err != nil {
						t.Fatalf("seed %d n %d δ %v: SolveGreedy: %v", seed, in.NumNodes, delta, err)
					}
					if !regionEq(got, want) {
						t.Fatalf("seed %d n %d δ %v µ %v: pooled %v != %v", seed, in.NumNodes, delta, mu, got, want)
					}
				}
			}
		}
	}
}

// TestSolveScratchMethodInterleaving reuses one scratch across all three
// methods query after query, the way a serving worker alternating request
// types would, and checks every answer against the allocating baselines.
func TestSolveScratchMethodInterleaving(t *testing.T) {
	s := NewSolveScratch()
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 30; round++ {
		in := randomInstance(t, rng, 3+rng.Intn(40))
		delta := rng.Float64() * 8
		switch round % 3 {
		case 0:
			want, _ := TGEN(in, delta, TGENOptions{})
			got, err := SolveTGEN(context.Background(), s, in, delta, TGENOptions{})
			if err != nil || !regionEq(got, want) {
				t.Fatalf("round %d TGEN: got %v (%v), want %v", round, got, err, want)
			}
		case 1:
			want, _ := APP(in, delta, APPOptions{})
			got, err := SolveAPP(context.Background(), s, in, delta, APPOptions{})
			if err != nil || !regionEq(got, want) {
				t.Fatalf("round %d APP: got %v (%v), want %v", round, got, err, want)
			}
		default:
			want, _ := Greedy(in, delta, GreedyOptions{})
			got, err := SolveGreedy(context.Background(), s, in, delta, GreedyOptions{})
			if err != nil || !regionEq(got, want) {
				t.Fatalf("round %d Greedy: got %v (%v), want %v", round, got, err, want)
			}
		}
	}
}

// TestSolveValidation mirrors the baseline error contract.
func TestSolveValidation(t *testing.T) {
	s := NewSolveScratch()
	in := pathInstance(t, []float64{1, 2}, []float64{1})
	if _, err := SolveTGEN(context.Background(), s, in, -1, TGENOptions{}); err == nil {
		t.Error("SolveTGEN accepted negative δ")
	}
	if _, err := SolveAPP(context.Background(), s, in, -1, APPOptions{}); err == nil {
		t.Error("SolveAPP accepted negative δ")
	}
	if _, err := SolveGreedy(context.Background(), s, in, -1, GreedyOptions{}); err == nil {
		t.Error("SolveGreedy accepted negative δ")
	}
	if _, err := SolveGreedy(context.Background(), s, in, 1, GreedyOptions{Mu: 2}); err == nil {
		t.Error("SolveGreedy accepted µ > 1")
	}
	// No relevant node: nil region, nil error, like the baselines.
	zero := pathInstance(t, []float64{0, 0}, []float64{1})
	for name, got := range map[string]func() (*Region, error){
		"TGEN":   func() (*Region, error) { return SolveTGEN(context.Background(), s, zero, 1, TGENOptions{}) },
		"APP":    func() (*Region, error) { return SolveAPP(context.Background(), s, zero, 1, APPOptions{}) },
		"Greedy": func() (*Region, error) { return SolveGreedy(context.Background(), s, zero, 1, GreedyOptions{}) },
	} {
		r, err := got()
		if r != nil || err != nil {
			t.Errorf("%s on irrelevant instance: region %v err %v, want nil/nil", name, r, err)
		}
	}
}
