package core

import (
	"context"
	"testing"
)

// FuzzRegionMerge drives the free-list Region arena through random
// sequences of singleton/combine/release/reset operations while mirroring
// every live region in a shadow copy with ordinary heap slices. Any
// recycling bug — a slice handed to two regions, a combine writing into
// freed-but-still-referenced storage, a reset leaking state into the next
// generation — shows up as a live region diverging from its shadow or as a
// malformed merge (unsorted/duplicated node list).
func FuzzRegionMerge(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 0, 1, 16, 32, 2, 3, 255, 128, 64, 9, 9, 9})
	f.Add([]byte{3, 0, 1, 3, 0, 1, 2, 2, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		// A fixed instance: an 8-node cycle with chords, deterministic
		// lengths, all nodes relevant.
		var edges []Edge
		for i := 0; i < 8; i++ {
			edges = append(edges, Edge{U: int32(i), V: int32((i + 1) % 8), Length: 1 + float64(i)/4})
		}
		edges = append(edges, Edge{U: 0, V: 4, Length: 2.5}, Edge{U: 1, V: 5, Length: 3.25})
		weights := []float64{1, 2, 0.5, 3, 1.5, 2.5, 0.25, 4}
		in, err := NewInstance(8, edges, weights)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSolveScratch()
		begin := func() {
			s.begin(context.Background())
			if err := ScaleInto(in, 1, &s.scaling); err != nil {
				t.Fatal(err)
			}
		}
		begin()

		type tracked struct {
			pr     *poolRegion
			shadow Region // deep copy on ordinary heap slices
		}
		var live []tracked
		snap := func(r *Region) Region {
			return Region{
				Length: r.Length,
				Score:  r.Score,
				Scaled: r.Scaled,
				Nodes:  append([]int32(nil), r.Nodes...),
				Edges:  append([]int32(nil), r.Edges...),
			}
		}
		verify := func(stage string) {
			t.Helper()
			for i := range live {
				got, want := &live[i].pr.Region, &live[i].shadow
				if !regionEq(got, want) {
					t.Fatalf("%s: live region %d corrupted:\n got %+v\nwant %+v", stage, i, got, want)
				}
			}
		}
		hold := func(pr *poolRegion) {
			s.pool.ref(pr)
			live = append(live, tracked{pr: pr, shadow: snap(&pr.Region)})
		}

		for k := 0; k+1 < len(ops); k += 2 {
			op, arg := ops[k]%4, int(ops[k+1])
			switch op {
			case 0: // singleton
				hold(s.singleton(in, NodeID(arg%in.NumNodes)))
			case 1: // combine two disjoint live regions through some edge
				if len(live) < 2 {
					continue
				}
				a := live[arg%len(live)].pr
				b := live[(arg/16+1)%len(live)].pr
				if a == b || a.Region.sharesNode(&b.Region) {
					continue
				}
				nr := s.combine(in, a, b, int32(arg%len(in.Edges)))
				// Merge invariant: node lists stay sorted and duplicate-free.
				for i := 1; i < len(nr.Nodes); i++ {
					if nr.Nodes[i-1] >= nr.Nodes[i] {
						t.Fatalf("combine produced unsorted/duplicate nodes %v from %v + %v",
							nr.Nodes, a.Nodes, b.Nodes)
					}
				}
				if len(nr.Edges) != len(a.Edges)+len(b.Edges)+1 {
					t.Fatalf("combine edge count %d, want %d", len(nr.Edges), len(a.Edges)+len(b.Edges)+1)
				}
				hold(nr)
			case 2: // release one live region back to the free lists
				if len(live) == 0 {
					continue
				}
				i := arg % len(live)
				s.pool.deref(live[i].pr)
				live = append(live[:i], live[i+1:]...)
			default: // reset: everything dies, storage is recycled
				live = live[:0]
				begin()
			}
			verify("after op")
		}
	})
}
