package core

import (
	"context"
	"math/rand"
	"testing"
)

// benchInstance builds a grid-like weighted instance comparable to a query
// region of the NY dataset (~900 nodes).
func benchInstance(b *testing.B) (*Instance, float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(12))
	const side = 30
	n := side * side
	var edges []Edge
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := int32(y*side + x)
			if x+1 < side {
				edges = append(edges, Edge{U: v, V: v + 1, Length: 250 + rng.Float64()*100})
			}
			if y+1 < side {
				edges = append(edges, Edge{U: v, V: v + int32(side), Length: 250 + rng.Float64()*100})
			}
		}
	}
	// Relevance density mirrors real keyword queries: a few percent of
	// nodes carry weight (dense weights invert the TGEN/APP cost order).
	weights := make([]float64, n)
	for i := range weights {
		if rng.Float64() < 0.06 {
			weights[i] = rng.Float64()
		}
	}
	in, err := NewInstance(n, edges, weights)
	if err != nil {
		b.Fatal(err)
	}
	return in, 10000 // ∆ = 10 km
}

func BenchmarkAPP(b *testing.B) {
	in, delta := benchInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := APP(in, delta, APPOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTGEN(b *testing.B) {
	in, delta := benchInstance(b)
	alpha := float64(in.NumNodes) / 9
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TGEN(in, delta, TGENOptions{Alpha: alpha}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	in, delta := benchInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(in, delta, GreedyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindOptTreeDP(b *testing.B) {
	// A 200-node random tree with integer weights, the inner DP of APP.
	rng := rand.New(rand.NewSource(9))
	const n = 200
	var edges []Edge
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: int32(rng.Intn(i)), V: int32(i), Length: 100 + rng.Float64()*400})
	}
	weights := make([]float64, n)
	scaled := make([]int64, n)
	for i := range weights {
		scaled[i] = int64(rng.Intn(8))
		weights[i] = float64(scaled[i])
	}
	in, err := NewInstance(n, edges, weights)
	if err != nil {
		b.Fatal(err)
	}
	sc := &Scaling{Alpha: 1, Theta: 1, Scaled: scaled}
	treeNodes := make([]int32, n)
	treeEdges := make([]int32, n-1)
	for i := range treeNodes {
		treeNodes[i] = int32(i)
	}
	for i := range treeEdges {
		treeEdges[i] = int32(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := findOptTree(in, sc, treeNodes, treeEdges, 5000, nil); r == nil {
			b.Fatal("nil result")
		}
	}
}

func BenchmarkTopK3TGEN(b *testing.B) {
	in, delta := benchInstance(b)
	alpha := float64(in.NumNodes) / 9
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopKTGEN(context.Background(), in, delta, 3, TGENOptions{Alpha: alpha}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- pooled-scratch counterparts: same workloads, zero steady-state allocs

func BenchmarkSolveAPP(b *testing.B) {
	in, delta := benchInstance(b)
	s := NewSolveScratch()
	if _, err := SolveAPP(context.Background(), s, in, delta, APPOptions{}); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveAPP(context.Background(), s, in, delta, APPOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveTGEN(b *testing.B) {
	in, delta := benchInstance(b)
	alpha := float64(in.NumNodes) / 9
	s := NewSolveScratch()
	if _, err := SolveTGEN(context.Background(), s, in, delta, TGENOptions{Alpha: alpha}); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveTGEN(context.Background(), s, in, delta, TGENOptions{Alpha: alpha}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveGreedy(b *testing.B) {
	in, delta := benchInstance(b)
	s := NewSolveScratch()
	if _, err := SolveGreedy(context.Background(), s, in, delta, GreedyOptions{}); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveGreedy(context.Background(), s, in, delta, GreedyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
