package core

import (
	"context"
	"sort"
)

// The top-k LCMSR query (§6.2) returns the k best-scoring feasible
// regions. Regions are pairwise node-disjoint — the natural reading of
// "k best regions" for user exploration (a region and itself minus one
// node are not two answers), and exactly how the paper's Greedy variant
// behaves (each next region is seeded outside all previous ones).
//
// Rank 1 comes from the algorithm's native machinery (tuple arrays for
// APP/TGEN). Later ranks re-run the algorithm on the instance with the
// previous regions' nodes removed; the per-node tuple arrays of a single
// run concentrate on the best cluster, so re-running after exclusion is
// what actually yields k distinct exploration areas.

// TopKAPP returns up to k disjoint regions using APP (§4) repeatedly.
// Cancellation is honored at rank granularity: ctx is checked before each
// rank's solve, so a cancel returns ctx.Err() after at most one more
// single-region solve.
func TopKAPP(ctx context.Context, in *Instance, delta float64, k int, opts APPOptions) ([]*Region, error) {
	return topKByExclusion(ctx, in, delta, k, func(sub *Instance) (*Region, error) {
		return APP(sub, delta, opts)
	})
}

// TopKTGEN returns up to k disjoint regions using TGEN (§5) repeatedly.
// TGEN's α is resized for each shrunken instance so the scaled-weight
// granularity σ̂max stays constant across ranks. Cancellation is honored
// at rank granularity (see TopKAPP).
func TopKTGEN(ctx context.Context, in *Instance, delta float64, k int, opts TGENOptions) ([]*Region, error) {
	opts = opts.withDefaults()
	granularity := float64(in.NumNodes) / opts.Alpha // σ̂max regime to hold
	if granularity < 1 {
		granularity = 1
	}
	return topKByExclusion(ctx, in, delta, k, func(sub *Instance) (*Region, error) {
		o := opts
		o.Alpha = float64(sub.NumNodes) / granularity
		if o.Alpha < 1 {
			o.Alpha = 1
		}
		return TGEN(sub, delta, o)
	})
}

// TopKGreedy returns up to k disjoint regions by repeated greedy growth,
// seeding each next region at the heaviest node outside all previous
// regions (§6.2). Cancellation is honored at rank granularity (see
// TopKAPP).
func TopKGreedy(ctx context.Context, in *Instance, delta float64, k int, opts GreedyOptions) ([]*Region, error) {
	if k <= 0 {
		return nil, nil
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	sigmaMax, _ := in.MaxWeight()
	if sigmaMax <= 0 {
		return nil, nil
	}
	banned := make([]bool, in.NumNodes)
	var inRegion stampSet
	var out []*Region
	for len(out) < k {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		// Heaviest unbanned node seeds the next region.
		seed := NodeID(-1)
		bestW := 0.0
		for v := 0; v < in.NumNodes; v++ {
			if !banned[v] && in.Weights[v] > bestW {
				bestW, seed = in.Weights[v], NodeID(v)
			}
		}
		if seed < 0 {
			break
		}
		r := greedyFrom(in, delta, opts.Mu, sigmaMax, seed, banned, &inRegion, &Region{}, nil)
		out = append(out, r)
		for _, v := range r.Nodes {
			banned[v] = true
		}
	}
	return out, nil
}

// topKByExclusion runs solve on progressively shrunken instances: after
// each region is found, its nodes are removed and the next rank is solved
// on the remainder. Node IDs in the returned regions refer to the original
// instance. ctx bounds the whole extraction at rank granularity.
func topKByExclusion(ctx context.Context, in *Instance, delta float64, k int, solve func(*Instance) (*Region, error)) ([]*Region, error) {
	if k <= 0 {
		return nil, nil
	}
	banned := make([]bool, in.NumNodes)
	var out []*Region
	for len(out) < k {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		sub := excludeNodes(in, banned)
		if sub.in.NumNodes == 0 {
			break
		}
		if w, _ := sub.in.MaxWeight(); w <= 0 {
			break // nothing relevant remains
		}
		r, err := solve(sub.in)
		if err != nil {
			return out, err
		}
		if r == nil || r.Score <= 0 {
			break
		}
		mapped := sub.remap(r)
		out = append(out, mapped)
		for _, v := range mapped.Nodes {
			banned[v] = true
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].betterScore(out[j]) })
	return out, nil
}

// subInstance is a shrunken instance plus the mappings back to the
// original node and edge IDs.
type subInstance struct {
	in       *Instance
	nodeOrig []int32
	edgeOrig []int32
}

// excludeNodes builds the sub-instance without banned nodes.
func excludeNodes(in *Instance, banned []bool) subInstance {
	toLocal := make([]int32, in.NumNodes)
	var nodeOrig []int32
	n := 0
	for v := 0; v < in.NumNodes; v++ {
		if banned[v] {
			toLocal[v] = -1
			continue
		}
		toLocal[v] = int32(n)
		nodeOrig = append(nodeOrig, int32(v))
		n++
	}
	var edges []Edge
	var edgeOrig []int32
	for i, e := range in.Edges {
		lu, lv := toLocal[e.U], toLocal[e.V]
		if lu >= 0 && lv >= 0 {
			edges = append(edges, Edge{U: lu, V: lv, Length: e.Length})
			edgeOrig = append(edgeOrig, int32(i))
		}
	}
	weights := make([]float64, n)
	for v := 0; v < in.NumNodes; v++ {
		if toLocal[v] >= 0 {
			weights[toLocal[v]] = in.Weights[v]
		}
	}
	sub, err := NewInstance(n, edges, weights)
	if err != nil {
		// The sub-instance is derived from a valid instance; failure here
		// is a programming error.
		panic(err)
	}
	return subInstance{in: sub, nodeOrig: nodeOrig, edgeOrig: edgeOrig}
}

// remap rewrites a region of the sub-instance in the original IDs.
func (s subInstance) remap(r *Region) *Region {
	out := &Region{
		Length: r.Length,
		Score:  r.Score,
		Scaled: r.Scaled,
		Nodes:  make([]int32, len(r.Nodes)),
		Edges:  make([]int32, len(r.Edges)),
	}
	for i, v := range r.Nodes {
		out.Nodes[i] = s.nodeOrig[v]
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i] < out.Nodes[j] })
	for i, e := range r.Edges {
		out.Edges[i] = s.edgeOrig[e]
	}
	return out
}
